(* Command-line front end: transpile a benchmark circuit for a device
   topology and report the paper's metrics, optionally emitting OpenQASM. *)

open Cmdliner

let benchmark_arg =
  let doc = "Benchmark name (see `list`), e.g. 'VQE 8-qubits'." in
  Arg.(value & opt string "VQE 8-qubits" & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc)

let topology_arg =
  let doc =
    "Device topology: montreal | linear | ring | heavy_hex | grid | full | eagle (127q) \
     | osprey (433q)."
  in
  Arg.(value & opt string "montreal" & info [ "t"; "topology" ] ~docv:"TOPOLOGY" ~doc)

let size_arg =
  let doc = "Qubit count for linear/full (grid uses the nearest square)." in
  Arg.(value & opt int 27 & info [ "n"; "size" ] ~docv:"N" ~doc)

let router_arg =
  let doc = "Router: sabre | nassc | sabre-ha | nassc-ha | hybrid | none." in
  Arg.(value & opt string "nassc" & info [ "r"; "router" ] ~docv:"ROUTER" ~doc)

let seed_arg =
  let doc = "Routing seed." in
  Arg.(value & opt int 11 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let trials_arg =
  let doc =
    "Run N independently-seeded routing trials in parallel and keep the best result \
     (lowest cx_total, then depth).  1 reproduces the paper's single-shot pipeline."
  in
  Arg.(value & opt int 1 & info [ "trials" ] ~docv:"N" ~doc)

let workers_arg =
  let doc = "Domain pool size for --trials (default: the machine's core count)." in
  Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"W" ~doc)

let qasm_arg =
  let doc = "Print the transpiled circuit as OpenQASM 2." in
  Arg.(value & flag & info [ "qasm" ] ~doc)

let lint_arg =
  let doc =
    "Run the full Qlint rule set (structural rules, basis conformance, CheckMap, layout \
     validity) over the transpiled result and exit non-zero on any violation."
  in
  Arg.(value & flag & info [ "lint" ] ~doc)

let trace_arg =
  let doc =
    "Record an observability trace (per-pass spans, counters, per-trial gauges) and emit \
     it as JSON lines to $(docv) ('-' = stderr).  When a file is given, a human-readable \
     profile summary is also printed to stderr.  Without --trace-times the trace is \
     deterministic: byte-identical for any worker count."
  in
  Arg.(value & opt ~vopt:(Some "-") (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_times_arg =
  let doc = "Include wall/CPU milliseconds on span lines (nondeterministic)." in
  Arg.(value & flag & info [ "trace-times" ] ~doc)

let record_arg =
  let doc =
    "Enable the routing flight recorder and write the decision trail (front-layer size, \
     every candidate SWAP with its heuristic components and savings bucket, the chosen \
     SWAP, per-trial realized CNOT savings) to $(docv) ('-' = stderr)."
  in
  Arg.(
    value
    & opt ~vopt:(Some "record.jsonl") (some string) None
    & info [ "record" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Export the run's observability registry as a Prometheus/OpenMetrics text page to \
     $(docv) ('-' = stderr): counters as _total series, per-trial gauges with a trial \
     label, histograms as cumulative _bucket/_sum/_count.  Implies collecting a trace \
     and enables the extended pipeline gauges (input sizes, trial settings).  The page \
     is linted before it is written; violations are reported on stderr."
  in
  Arg.(
    value & opt ~vopt:(Some "-") (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let wide_arg =
  let doc =
    "Append one wide event — a single structured JSON object describing this whole \
     transpile job (identity, input/output metrics, per-trial outcomes, cache hit \
     rates, flight-recorder savings buckets, lint verdict when --lint ran) — to the \
     JSONL sink $(docv) ('-' = stderr).  Deterministic: byte-identical for any worker \
     count; add --trace-times to append an 'rt' object with wall/CPU/stage durations."
  in
  Arg.(
    value
    & opt ~vopt:(Some "wide.jsonl") (some string) None
    & info [ "wide-events" ] ~docv:"FILE" ~doc)

let sample_arg =
  let doc =
    "Run the background resource sampler during the transpile, polling every $(docv) \
     milliseconds (GC stats, RSS from /proc/self/status, routing-pool utilization).  A \
     one-paragraph summary goes to stderr, and with --trace/--metrics the qtel.* \
     gauges are merged into the trace (nondeterministic values — opt-in only)."
  in
  Arg.(
    value & opt ~vopt:(Some 10.0) (some float) None & info [ "sample" ] ~docv:"MS" ~doc)

let stream_arg =
  let doc =
    "Stream the circuit through the O(window)-memory routing engine instead of the batch \
     pipeline: gates are pulled through a bounded sliding DAG window and routed output \
     is emitted in chunks, so peak memory is independent of circuit length.  Only \
     whole-stream routers are supported (sabre, nassc and their -ha variants) and a \
     single trial; pre/post optimization bundles are skipped."
  in
  Arg.(value & flag & info [ "stream" ] ~doc)

let window_arg =
  let doc = "Sliding DAG window size (gates resident) for --stream." in
  Arg.(value & opt int 4096 & info [ "window" ] ~docv:"N" ~doc)

let trace_format_arg =
  let doc =
    "Export format for --trace and --record: $(b,jsonl) (deterministic JSON lines) or \
     $(b,chrome) (Chrome trace_event JSON, loadable in Perfetto or about://tracing; \
     wall-clock timestamps, so nondeterministic)."
  in
  Arg.(
    value
    & opt (Arg.enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
    & info [ "trace-format" ] ~docv:"FMT" ~doc)

let write_dest dest s =
  match dest with
  | "-" -> output_string stderr s
  | file ->
      let oc = open_out file in
      output_string oc s;
      close_out oc

(* run [f] under a collector, flight recorder and/or resource sampler as
   requested and export afterwards; `--trace FILE` with the default jsonl
   format behaves exactly as it did before the recorder existed.  Returns
   the trace and recorder totals alongside the result so callers can
   assemble a wide event without re-running anything. *)
let with_obs ~trace ~times ~record ~fmt ~metrics ~wide ~sample f =
  (* --trace-times also opts into the per-step scoring-time histogram
     (engine.step_score_ms); without it the engine never reads the clock on
     the hot path and traces stay deterministic *)
  Qobs.set_timing times;
  (* extended pipeline gauges (input sizes, trial settings) only exist for
     exposition: default traces keep their historical bytes *)
  if metrics <> None then Qobs.set_extended_metrics true;
  let collector =
    if trace <> None || metrics <> None || wide <> None then
      Some (Qobs.Collector.create ~label:"main" ())
    else None
  in
  let recorder =
    (* wide events carry the recorder's savings buckets, so --wide-events
       turns the recorder on even without --record *)
    if record <> None || wide <> None then Some (Qobs.Recorder.create ~label:"main" ())
    else None
  in
  let sampler =
    match sample with
    | None -> None
    | Some interval_ms ->
        Qtel.Sampler.set_enabled true;
        Qtel.Sampler.start ~interval_ms ()
  in
  let under_recorder g =
    match recorder with None -> g () | Some r -> Qobs.Recorder.with_recorder r g
  in
  let result =
    Fun.protect ~finally:(fun () -> Option.iter Qtel.Sampler.stop sampler) @@ fun () ->
    match collector with
    | None -> under_recorder f
    | Some c -> Qobs.with_collector c (fun () -> under_recorder f)
  in
  (* merge the resource story before the trace is frozen so --trace and
     --metrics both see the qtel.* gauges *)
  (match (sampler, collector) with Some s, Some c -> Qtel.Sampler.attach s c | _ -> ());
  Option.iter (Qtel.Sampler.pp_summary Format.err_formatter) sampler;
  let trace_v = Option.map Qobs.Trace.of_root collector in
  (match (trace, trace_v) with
  | Some dest, Some tr -> begin
      match fmt with
      | `Jsonl ->
          write_dest dest (Qobs.Trace.to_jsonl ~times tr);
          if dest <> "-" then Qobs.Trace.pp_summary Format.err_formatter tr
      | `Chrome -> write_dest dest (Qobs.Trace.to_chrome tr)
    end
  | _ -> ());
  (match (metrics, trace_v) with
  | Some dest, Some tr ->
      let page = Qtel.Expose.to_string tr in
      List.iter
        (fun (e : Qtel.Promlint.error) ->
          Printf.eprintf "metrics: lint: line %d: %s\n" e.line e.msg)
        (Qtel.Promlint.lint page);
      write_dest dest page
  | _ -> ());
  (match (record, recorder) with
  | Some dest, Some r ->
      write_dest dest
        (match fmt with
        | `Jsonl -> Qobs.Recorder.to_jsonl r
        | `Chrome -> Qobs.Recorder.to_chrome r)
  | _ -> ());
  (result, trace_v, Option.map Qobs.Recorder.totals recorder)

let router_of_string cal = function
  | "sabre" -> Ok Qroute.Pipeline.Sabre_router
  | "nassc" -> Ok (Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config)
  | "sabre-ha" ->
      ignore cal;
      Ok Qroute.Pipeline.Sabre_ha
  | "nassc-ha" -> Ok (Qroute.Pipeline.Nassc_ha Qroute.Nassc.default_config)
  | "hybrid" -> Ok (Qroute.Pipeline.Hybrid_router Qroute.Hybrid.default_config)
  | "none" -> Ok Qroute.Pipeline.Full_connectivity
  | r -> Error ("unknown router " ^ r)

let check_pool_args trials workers =
  if trials < 1 then Error "--trials must be >= 1"
  else
    match workers with
    | Some w when w < 1 -> Error "--workers must be >= 1"
    | _ -> Ok ()

(* surface lint diagnostics on stderr and return them so the caller can
   derive both the exit code and the wide event's lint verdict *)
let lint_result coupling (r : Qroute.Pipeline.result) =
  let diags = Qlint.Checked.check_result ~coupling r in
  List.iter (fun d -> Format.eprintf "%a@." Qlint.Diagnostic.pp d) diags;
  Format.eprintf "%a@." (fun ppf -> Qlint.Diagnostic.pp_summary ppf ~checks:(Qlint.Rules.checks_run ())) diags;
  diags

(* assemble and append the per-job wide event; [times] (--trace-times)
   gates the nondeterministic "rt" sub-object *)
let emit_wide ~dest ~label ~router ~topology ~trials ~workers ~seed ~original ~trace
    ~totals ~lint_diags ~times r =
  let lint_errors =
    Option.map (fun d -> List.length (Qlint.Diagnostic.errors d)) lint_diags
  in
  let ev =
    Qtel.Wideevent.build ~label ~router ~topology ~trials ?workers ~seed ~original
      ?trace ?recorder:totals ?lint_errors ~result:r ()
  in
  Qtel.Wideevent.append ~dest (Qtel.Wideevent.to_json ~times ev)

let print_trial_stats (r : Qroute.Pipeline.result) =
  if List.length r.trial_stats > 1 then begin
    Printf.printf "trials:          %d\n" (List.length r.trial_stats);
    Printf.printf "  %-6s %-10s %8s %6s %6s %9s  %s\n" "trial" "seed" "cx" "depth" "swaps"
      "wall(s)" "status";
    List.iter
      (fun (s : Qroute.Trials.stat) ->
        match s.error with
        | Some msg ->
            Printf.printf "  %-6d %-10d %8s %6s %6s %9.3f  failed: %s\n" s.trial s.seed "-"
              "-" "-" s.wall_time msg
        | None ->
            Printf.printf "  %-6d %-10d %8d %6d %6d %9.3f  ok\n" s.trial s.seed s.cx_total
              s.depth s.n_swaps s.wall_time)
      r.trial_stats
  end

(* streaming mode: incompatible options are reported as located diagnostics
   (rule route.stream-unsupported), never exceptions *)
let stream_diag rule msg =
  Format.eprintf "%a@." Qlint.Diagnostic.pp
    (Qlint.Diagnostic.error ~loc:(Qlint.Diagnostic.Stage "route") ~rule msg);
  1

let run_stream ~router_name ~router ~trials ~window ~seed ~cal coupling label circuit =
  if not (Qroute.Pipeline.streamable router) then
    stream_diag "route.stream-unsupported"
      (Printf.sprintf
         "--stream needs a windowable router (sabre | nassc | sabre-ha | nassc-ha); %s \
          requires the whole circuit"
         router_name)
  else if trials > 1 then
    stream_diag "route.stream-unsupported" "--stream routes a single trial; drop --trials"
  else if window < 1 then stream_diag "route.stream-unsupported" "--window must be >= 1"
  else begin
    let params = { Qroute.Engine.default_params with seed } in
    let t0 = Unix.gettimeofday () in
    let chunks = ref 0 in
    match
      Qroute.Pipeline.transpile_stream ~params ~calibration:cal ~window ~router
        ~sink:(fun _ -> incr chunks)
        coupling
        (Qcircuit.Source.of_circuit circuit)
    with
    | exception (Qroute.Engine.Routing_stuck _ as e) ->
        stream_diag "route.stuck" (Printexc.to_string e)
    | r ->
        let dt = Unix.gettimeofday () -. t0 in
        let open Qroute.Pipeline in
        Printf.printf "input:           %s (%d qubits, %d ops)\n" label
          (Qcircuit.Circuit.n_qubits circuit)
          (Qcircuit.Circuit.size circuit);
        Printf.printf "topology:        %d qubits\n" (Topology.Coupling.n_qubits coupling);
        Printf.printf "window:          %d gates (peak resident %d)\n" window
          r.sr_peak_resident;
        Printf.printf "gates in/out:    %d / %d (%d chunks)\n" r.sr_gates_in r.sr_gates_out
          r.sr_chunks;
        Printf.printf "cx_total:        %d\n" r.sr_cx_out;
        Printf.printf "depth:           %d\n" r.sr_depth_out;
        Printf.printf "swaps inserted:  %d\n" r.sr_n_swaps;
        Printf.printf "wall time:       %.3f s (%.0f gates/s)\n" dt
          (float_of_int r.sr_gates_in /. Float.max dt 1e-9);
        0
  end

let transpile_cmd benchmark topology size router seed trials workers qasm lint trace
    trace_times record fmt metrics wide sample stream window =
  match
    Result.bind (check_pool_args trials workers) (fun () ->
        try Ok (Qbench.Suite.find benchmark)
        with Not_found -> Error ("unknown benchmark " ^ benchmark))
  with
  | Error e ->
      prerr_endline e;
      1
  | Ok entry -> begin
      let coupling =
        try Topology.Devices.by_name topology size
        with Invalid_argument m ->
          prerr_endline m;
          exit 1
      in
      let cal = Topology.Calibration.generate coupling in
      let router_name = router in
      match router_of_string cal router with
      | Error e ->
          prerr_endline e;
          1
      | Ok router ->
          let circuit = entry.build () in
          if stream then
            run_stream ~router_name ~router ~trials ~window ~seed ~cal coupling entry.name
              circuit
          else begin
          let params = { Qroute.Engine.default_params with seed } in
          match
            with_obs ~trace ~times:trace_times ~record ~fmt ~metrics ~wide ~sample
              (fun () ->
                Qroute.Pipeline.transpile ~params ~calibration:cal ~trials ?workers ~router
                  coupling circuit)
          with
          | exception (Qroute.Engine.Routing_stuck _ as e) ->
              Format.eprintf "%a@." Qlint.Diagnostic.pp
                (Qlint.Diagnostic.error ~loc:(Qlint.Diagnostic.Stage "route")
                   ~rule:"route.stuck" (Printexc.to_string e));
              1
          | r, trace_v, totals ->
          Printf.printf "benchmark:       %s (%d qubits)\n" entry.name entry.n_qubits;
          Printf.printf "topology:        %s (%d qubits)\n" topology
            (Topology.Coupling.n_qubits coupling);
          Printf.printf "cx_total:        %d\n" r.cx_total;
          Printf.printf "depth:           %d\n" r.depth;
          Printf.printf "swaps inserted:  %d\n" r.n_swaps;
          Printf.printf "wall time:       %.3f s\n" r.transpile_time;
          Printf.printf "cpu time:        %.3f s\n" r.cpu_time;
          print_trial_stats r;
          (match r.final_layout with
          | Some fl ->
              Printf.printf "final layout:    %s\n"
                (String.concat " " (Array.to_list (Array.map string_of_int fl)))
          | None -> ());
          if qasm then print_string (Qcircuit.Qasm.to_string r.circuit);
          let lint_diags = if lint then Some (lint_result coupling r) else None in
          Option.iter
            (fun dest ->
              emit_wide ~dest ~label:entry.name ~router:router_name ~topology ~trials
                ~workers ~seed ~original:circuit ~trace:trace_v ~totals ~lint_diags
                ~times:trace_times r)
            wide;
          (match lint_diags with
          | Some d when Qlint.Diagnostic.has_errors d -> 1
          | _ -> 0)
        end
    end

let file_arg =
  let doc = "OpenQASM 2 file to transpile." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let transpile_file_cmd path topology size router seed trials workers qasm lint trace
    trace_times record fmt metrics wide sample stream window =
  match
    Result.bind (check_pool_args trials workers) (fun () ->
        try Ok (Qcircuit.Qasm_parser.parse_file path) with
        | Qcircuit.Qasm_parser.Parse_error m -> Error m
        | Sys_error m -> Error m)
  with
  | Error e ->
      prerr_endline e;
      1
  | Ok circuit -> begin
      let coupling =
        try Topology.Devices.by_name topology size
        with Invalid_argument m ->
          prerr_endline m;
          exit 1
      in
      let cal = Topology.Calibration.generate coupling in
      let router_name = router in
      match router_of_string cal router with
      | Error e ->
          prerr_endline e;
          1
      | Ok router ->
          if stream then
            run_stream ~router_name ~router ~trials ~window ~seed ~cal coupling path
              circuit
          else begin
          let params = { Qroute.Engine.default_params with seed } in
          match
            with_obs ~trace ~times:trace_times ~record ~fmt ~metrics ~wide ~sample
              (fun () ->
                Qroute.Pipeline.transpile ~params ~calibration:cal ~trials ?workers ~router
                  coupling circuit)
          with
          | exception (Qroute.Engine.Routing_stuck _ as e) ->
              Format.eprintf "%a@." Qlint.Diagnostic.pp
                (Qlint.Diagnostic.error ~loc:(Qlint.Diagnostic.Stage "route")
                   ~rule:"route.stuck" (Printexc.to_string e));
              1
          | r, trace_v, totals ->
          Printf.printf "input:           %s (%d qubits, %d ops)\n" path
            (Qcircuit.Circuit.n_qubits circuit)
            (Qcircuit.Circuit.size circuit);
          Printf.printf "cx_total:        %d\n" r.cx_total;
          Printf.printf "depth:           %d\n" r.depth;
          Printf.printf "swaps inserted:  %d\n" r.n_swaps;
          Printf.printf "wall time:       %.3f s\n" r.transpile_time;
          print_trial_stats r;
          if qasm then print_string (Qcircuit.Qasm.to_string r.circuit);
          let lint_diags = if lint then Some (lint_result coupling r) else None in
          Option.iter
            (fun dest ->
              emit_wide ~dest ~label:(Filename.basename path) ~router:router_name
                ~topology ~trials ~workers ~seed ~original:circuit ~trace:trace_v ~totals
                ~lint_diags ~times:trace_times r)
            wide;
          (match lint_diags with
          | Some d when Qlint.Diagnostic.has_errors d -> 1
          | _ -> 0)
        end
    end

(* ---- verify: symbolic equivalence certification ---- *)

let corpus_arg =
  let doc =
    "Certify every cell of the routing golden corpus (circuits x topologies x routers x \
     trials, the same axis test/goldens/routing.golden pins)."
  in
  Arg.(value & flag & info [ "corpus" ] ~doc)

let verify_jsonl_arg =
  let doc = "Append one certificate JSON line per verified cell to $(docv)." in
  Arg.(value & opt (some string) None & info [ "jsonl" ] ~docv:"FILE" ~doc)

let verify_files_arg =
  let doc = "OpenQASM 2 files to transpile (with -t/-r/-s) and certify." in
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc)

(* worst-verdict exit code: 0 all equivalent, 1 any not_equivalent,
   2 otherwise if any unknown *)
let verify_cmd files topology size router_name seed corpus jsonl =
  let buf = Buffer.create 256 in
  let n_ne = ref 0 and n_unknown = ref 0 and n_cells = ref 0 in
  let cell ~name ~tname ~rname ~trials ~original (r : Qroute.Pipeline.result) =
    incr n_cells;
    let v =
      Qverify.verify_routed ~original ~routed:r.Qroute.Pipeline.circuit
        ?initial_layout:r.Qroute.Pipeline.initial_layout
        ?final_layout:r.Qroute.Pipeline.final_layout ()
    in
    (match v with
    | Qverify.Equivalent _ -> ()
    | Qverify.Not_equivalent _ -> incr n_ne
    | Qverify.Unknown _ -> incr n_unknown);
    Buffer.add_string buf
      (Printf.sprintf
         "{\"kind\":\"certificate\",\"circuit\":\"%s\",\"topology\":\"%s\",\
          \"router\":\"%s\",\"trials\":%d,\"verdict\":%s}\n"
         name tname rname trials (Qverify.to_json v));
    Printf.printf "%-8s %-12s %-9s trials=%d  %s\n" name tname rname trials
      (Qverify.verdict_name v)
  in
  if corpus then
    List.iter
      (fun (name, original) ->
        List.iter
          (fun (tname, coupling) ->
            List.iter
              (fun (rname, router) ->
                List.iter
                  (fun trials ->
                    let params =
                      { Qroute.Engine.default_params with seed = Golden_defs.seed }
                    in
                    let r =
                      Qroute.Pipeline.transpile ~params ~trials ~workers:2 ~router
                        coupling original
                    in
                    cell ~name ~tname ~rname ~trials ~original r)
                  Golden_defs.trials_axis)
              Golden_defs.routers)
          (Golden_defs.topologies ()))
      (Golden_defs.circuits ());
  let file_errors = ref 0 in
  if files <> [] then begin
    let coupling =
      try Topology.Devices.by_name topology size
      with Invalid_argument m ->
        prerr_endline m;
        exit 1
    in
    let cal = Topology.Calibration.generate coupling in
    match router_of_string cal router_name with
    | Error e ->
        prerr_endline e;
        incr file_errors
    | Ok router ->
        let params = { Qroute.Engine.default_params with seed } in
        List.iter
          (fun f ->
            match Qcircuit.Qasm_parser.parse_file f with
            | exception Qcircuit.Qasm_parser.Parse_error m ->
                Printf.eprintf "%s: %s\n" f m;
                incr file_errors
            | exception Sys_error m ->
                Printf.eprintf "%s\n" m;
                incr file_errors
            | original ->
                let r = Qroute.Pipeline.transpile ~params ~router coupling original in
                cell ~name:(Filename.basename f) ~tname:topology ~rname:router_name
                  ~trials:1 ~original r)
          files
  end;
  if not corpus && files = [] then begin
    prerr_endline "verify: nothing to do (give FILEs or --corpus)";
    exit 2
  end;
  (match jsonl with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      Buffer.output_buffer oc buf;
      close_out oc);
  Printf.printf "verified %d cells: %d not equivalent, %d unknown\n" !n_cells !n_ne
    !n_unknown;
  if !n_ne > 0 || !file_errors > 0 then 1 else if !n_unknown > 0 then 2 else 0

(* ---- check: the static-analysis entry point ---- *)

let files_arg =
  let doc = "OpenQASM 2 files to lint and transpile-check." in
  Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc)

let pipeline_arg =
  let doc =
    "Validate this comma-separated pass sequence against the pass contracts instead of \
     the canonical pipeline, e.g. 'lower_to_2q,peephole,route,basis'."
  in
  Arg.(value & opt (some string) None & info [ "pipeline" ] ~docv:"SPEC" ~doc)

let suite_arg =
  let doc = "Also transpile-check every circuit of the qbench paper suite." in
  Arg.(value & flag & info [ "suite" ] ~doc)

let no_audit_arg =
  let doc = "Skip the commutation-table and CNOT-savings audit." in
  Arg.(value & flag & info [ "no-audit" ] ~doc)

let jsonl_arg =
  let doc = "Append every diagnostic as a JSON line to $(docv)." in
  Arg.(value & opt (some string) None & info [ "jsonl" ] ~docv:"FILE" ~doc)

let equiv_arg =
  let doc =
    "Also certify each transpiled circuit semantically equivalent to its input under the \
     routed layouts (Qverify symbolic check; a Not_equivalent verdict is an error, an \
     Unknown verdict a warning)."
  in
  Arg.(value & flag & info [ "equiv" ] ~doc)

let check_cmd files topology size router_name seed pipeline suite no_audit jsonl equiv =
  let buf = Buffer.create 256 in
  let n_errors = ref 0 in
  let report target diags =
    List.iter
      (fun d ->
        Buffer.add_string buf (Qlint.Diagnostic.to_json d);
        Buffer.add_char buf '\n';
        Format.printf "%s: %a@." target Qlint.Diagnostic.pp d)
      diags;
    n_errors := !n_errors + List.length (Qlint.Diagnostic.errors diags)
  in
  let coupling =
    try Topology.Devices.by_name topology size
    with Invalid_argument m ->
      prerr_endline m;
      exit 1
  in
  let cal = Topology.Calibration.generate coupling in
  match router_of_string cal router_name with
  | Error e ->
      prerr_endline e;
      1
  | Ok router ->
      (* 1. static pipeline validation: the user's --pipeline spec, or the
         canonical sequence the selected router would run *)
      (match pipeline with
      | Some spec ->
          let names =
            String.split_on_char ',' spec |> List.map String.trim
            |> List.filter (fun s -> s <> "")
          in
          let diags = Qlint.Contract.validate names in
          report "pipeline" diags;
          Printf.printf "pipeline: %d stages, %s\n" (List.length names)
            (if Qlint.Diagnostic.has_errors diags then "REJECTED" else "legal")
      | None ->
          let diags = Qlint.Checked.validate_pipeline ~router in
          report (Printf.sprintf "pipeline(%s)" router_name) diags;
          Printf.printf "pipeline(%s): %d stages, %s\n" router_name
            (List.length (Qlint.Checked.canonical_stage_names ~router))
            (if Qlint.Diagnostic.has_errors diags then "REJECTED" else "legal"));
      (* 2. commutation / savings audit against dense-unitary ground truth *)
      if not no_audit then begin
        let rep = Qlint.Audit.run ~seed () in
        report "audit" rep.diags;
        Printf.printf "audit: %d commutation pairs, %d savings scenarios, %s\n"
          rep.pairs_checked rep.scenarios_checked
          (if Qlint.Diagnostic.has_errors rep.diags then "FAILED" else "sound")
      end;
      (* 3. lint + guarded transpile of each input circuit *)
      let params = { Qroute.Engine.default_params with seed } in
      let check_circuit target circuit =
        match
          Qlint.Checked.transpile ~params ~calibration:cal ~router coupling circuit
        with
        | Ok r ->
            let sem =
              if equiv then Qlint.Checked.verify_result ~original:circuit r else []
            in
            report target sem;
            if not (Qlint.Diagnostic.has_errors sem) then
              Printf.printf "%s: ok%s (cx=%d depth=%d swaps=%d)\n" target
                (if equiv && sem = [] then " [equivalent]" else "")
                r.Qroute.Pipeline.cx_total r.Qroute.Pipeline.depth
                r.Qroute.Pipeline.n_swaps
        | Error diags -> report target diags
        | exception Invalid_argument m ->
            report target [ Qlint.Diagnostic.error ~rule:"check.invalid-input" m ]
      in
      List.iter
        (fun f ->
          match Qlint.Rules.lint_qasm_file f with
          | Error d -> report f [ d ]
          | Ok circuit -> check_circuit f circuit)
        files;
      if suite then
        List.iter
          (fun (e : Qbench.Suite.entry) -> check_circuit ("suite:" ^ e.name) (e.build ()))
          Qbench.Suite.paper_suite;
      (match jsonl with
      | None -> ()
      | Some file ->
          let oc = open_out file in
          Buffer.output_buffer oc buf;
          close_out oc);
      Printf.printf "checks run: %d, errors: %d\n" (Qlint.Rules.checks_run ()) !n_errors;
      if !n_errors > 0 then 1 else 0

let list_cmd () =
  Printf.printf "%-24s %7s %6s %6s\n" "name" "qubits" "heavy" "noise";
  List.iter
    (fun (e : Qbench.Suite.entry) ->
      Printf.printf "%-24s %7d %6b %6b\n" e.name e.n_qubits e.heavy e.noise_subset)
    Qbench.Suite.paper_suite;
  0

let transpile_t =
  Term.(
    const transpile_cmd $ benchmark_arg $ topology_arg $ size_arg $ router_arg $ seed_arg
    $ trials_arg $ workers_arg $ qasm_arg $ lint_arg $ trace_arg $ trace_times_arg
    $ record_arg $ trace_format_arg $ metrics_arg $ wide_arg $ sample_arg $ stream_arg
    $ window_arg)

let cmd_transpile =
  Cmd.v (Cmd.info "transpile" ~doc:"Transpile a benchmark and report metrics") transpile_t

let cmd_list = Cmd.v (Cmd.info "list" ~doc:"List available benchmarks") Term.(const list_cmd $ const ())

let transpile_file_t =
  Term.(
    const transpile_file_cmd $ file_arg $ topology_arg $ size_arg $ router_arg $ seed_arg
    $ trials_arg $ workers_arg $ qasm_arg $ lint_arg $ trace_arg $ trace_times_arg
    $ record_arg $ trace_format_arg $ metrics_arg $ wide_arg $ sample_arg $ stream_arg
    $ window_arg)

let cmd_transpile_file =
  Cmd.v
    (Cmd.info "transpile-file" ~doc:"Transpile an OpenQASM 2 file")
    transpile_file_t

let check_t =
  Term.(
    const check_cmd $ files_arg $ topology_arg $ size_arg $ router_arg $ seed_arg
    $ pipeline_arg $ suite_arg $ no_audit_arg $ jsonl_arg $ equiv_arg)

let cmd_check =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Static analysis: validate pass-contract orderings, audit the commutation and \
          CNOT-savings tables against ground truth, and lint circuits end to end. Exit \
          status is 1 when any $(b,error)-severity diagnostic fired and 0 otherwise — \
          warnings (e.g. gate.dead, distmat.legacy) never fail the run. With --jsonl \
          FILE every diagnostic is also appended to FILE as one JSON object per line \
          with the stable fields kind/severity/rule/message plus the location when \
          known."
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"all checks passed (warnings allowed)";
           Cmd.Exit.info 1 ~doc:"at least one error-severity diagnostic";
         ])
    check_t

let verify_t =
  Term.(
    const verify_cmd $ verify_files_arg $ topology_arg $ size_arg $ router_arg $ seed_arg
    $ corpus_arg $ verify_jsonl_arg)

let cmd_verify =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Certify routed circuits semantically equivalent to their inputs with the \
          symbolic Pauli-tableau checker (no simulation, device scale); certificates \
          can be exported as JSON lines"
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"every cell certified equivalent";
           Cmd.Exit.info 1 ~doc:"at least one cell is not equivalent (transpiler bug)";
           Cmd.Exit.info 2 ~doc:"no counterexample, but at least one cell is unknown";
         ])
    verify_t

let main =
  Cmd.group
    (Cmd.info "nassc" ~version:"1.0.0"
       ~doc:"Optimization-aware qubit routing (NASSC, HPCA 2022) in OCaml")
    [ cmd_transpile; cmd_transpile_file; cmd_check; cmd_verify; cmd_list ]

let () = exit (Cmd.eval' main)
