(* Standalone trend analyzer over BENCH_*.json regression snapshots.

   Same engine as `bench --only history`, but with the thresholds exposed
   and an opt-in failure mode, so CI and humans can run it over an archive
   of snapshots without building the whole bench harness's inputs. *)

let usage () =
  print_endline
    "usage: trend [--dir DIR] [--out BASE] [--window N] [--fail-on-anomaly]\n\
     \            [--max-wall-pct P] [--max-cx-pct P] [--max-depth-pct P]\n\
     \            [--max-swaps-pct P]\n\
     Align every BENCH_*.json snapshot in DIR (default .) by\n\
     (suite, circuit, topology, router), compare the newest against the\n\
     rolling median of the preceding N (default 5), print a markdown report\n\
     and, with --out BASE, write BASE.md and BASE.json.\n\
     --fail-on-anomaly  exit 1 when any metric exceeds its threshold"

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let () =
  let dir = ref "." in
  let out = ref None in
  let window = ref 5 in
  let fail_on_anomaly = ref false in
  let th = ref Qtel.Trend.default_thresholds in
  let rec parse = function
    | [] -> ()
    | "--dir" :: v :: rest ->
        dir := v;
        parse rest
    | "--out" :: v :: rest ->
        out := Some v;
        parse rest
    | "--window" :: v :: rest ->
        window := int_of_string v;
        parse rest
    | "--fail-on-anomaly" :: rest ->
        fail_on_anomaly := true;
        parse rest
    | "--max-wall-pct" :: v :: rest ->
        th := { !th with Qtel.Trend.max_wall_pct = float_of_string v };
        parse rest
    | "--max-cx-pct" :: v :: rest ->
        th := { !th with Qtel.Trend.max_cx_pct = float_of_string v };
        parse rest
    | "--max-depth-pct" :: v :: rest ->
        th := { !th with Qtel.Trend.max_depth_pct = float_of_string v };
        parse rest
    | "--max-swaps-pct" :: v :: rest ->
        th := { !th with Qtel.Trend.max_swaps_pct = float_of_string v };
        parse rest
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | x :: _ ->
        Printf.eprintf "unknown argument %s\n" x;
        usage ();
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let snapshots, skipped = Qtel.Trend.load_dir !dir in
  List.iter
    (fun (file, reason) -> Printf.eprintf "trend: skipping %s: %s\n" file reason)
    skipped;
  if snapshots = [] then begin
    Printf.eprintf "trend: no BENCH_*.json snapshots in %s\n" !dir;
    exit 2
  end;
  let report = Qtel.Trend.analyze ~window:!window ~thresholds:!th snapshots in
  print_string (Qtel.Trend.to_markdown report);
  (match !out with
  | None -> ()
  | Some base ->
      write_file (base ^ ".md") (Qtel.Trend.to_markdown report);
      write_file (base ^ ".json") (Qtel.Trend.to_json report);
      Printf.eprintf "trend: wrote %s.md and %s.json\n" base base);
  let n = List.length (Qtel.Trend.anomalies report) in
  if n > 0 && !fail_on_anomaly then exit 1
