(* Regenerate the golden corpora:
     dune exec tools/golden_gen/main.exe > test/goldens/routing.golden
     dune exec tools/golden_gen/main.exe -- gap > test/goldens/gap.golden
     dune exec tools/golden_gen/main.exe -- matrix > test/goldens/matrix.golden
   Only legitimate when the pinned outputs are *supposed* to change; perf
   PRs must leave the routing file untouched.  The gap mode certifies
   optima with the exact oracle, so it takes a minute or two. *)

let () =
  match Array.to_list Sys.argv with
  | _ :: [ "gap" ] -> print_string (Golden_defs.generate_gap ())
  | _ :: [ "matrix" ] -> print_string (Golden_defs.generate_matrix ())
  | [ _ ] -> print_string (Golden_defs.generate ())
  | _ ->
      prerr_endline "usage: golden_gen [gap|matrix]";
      exit 2
