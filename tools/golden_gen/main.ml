(* Regenerate the routing golden corpus:
     dune exec tools/golden_gen/main.exe > test/goldens/routing.golden
   Only legitimate when the routed outputs are *supposed* to change; perf
   PRs must leave the file untouched. *)

let () = print_string (Golden_defs.generate ())
