(** The hardware topologies evaluated in the paper (Figure 10). *)

val montreal : Coupling.t
(** The 27-qubit [ibmq_montreal] heavy-hex lattice, transcribed from the
    public IBM Falcon coupling map. *)

val linear : int -> Coupling.t
(** Linear nearest-neighbour chain of [n] qubits. *)

val grid : int -> int -> Coupling.t
(** [grid rows cols] 2D lattice; qubit [r*cols + c]. *)

val heavy_hex : int -> int -> Coupling.t
(** [heavy_hex rows cols]: brick-wall hexagonal lattice over a
    [rows x cols] vertex grid with every edge subdivided by a middle qubit
    - the scalable "heavy-hex" family the paper motivates montreal with.
    [heavy_hex 3 3] has 18 qubits; sizes grow roughly as [2.5 * rows *
    cols]. *)

val heavy_hex_ibm : distance:int -> Coupling.t
(** IBM's production heavy-hex lattice at code distance [d]:
    [10d^2 + 12d + 1] qubits, every qubit at degree <= 3.  [d = 3] is the
    127-qubit Eagle shape, [d = 6] the 433-qubit Osprey shape.  Built in
    O(qubits + edges); distances stay lazy (see [Coupling.dist_row]). *)

val eagle : unit -> Coupling.t
(** Memoized [heavy_hex_ibm ~distance:3] — 127 qubits. *)

val osprey : unit -> Coupling.t
(** Memoized [heavy_hex_ibm ~distance:6] — 433 qubits. *)

val ring : int -> Coupling.t
(** Cycle of [n] qubits; the simplest topology where shortest-path choice
    is ambiguous, useful for routing tests and examples. *)

val fully_connected : int -> Coupling.t
(** All-to-all coupling; routing inserts no SWAPs there, which is how the
    "original circuit optimized by Qiskit" baseline columns are produced. *)

val by_name : string -> int -> Coupling.t
(** ["montreal" | "linear" | "ring" | "heavy_hex" | "grid" | "full" |
    "eagle" | "osprey"], with the qubit count used by [linear]/[full];
    [grid] interprets it as the side of a square; [eagle]/[osprey] ignore
    it (fixed 127/433-qubit devices).
    @raise Invalid_argument on unknown names. *)
