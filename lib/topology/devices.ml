let montreal_edges =
  [
    (0, 1); (1, 2); (1, 4); (2, 3); (3, 5); (4, 7); (5, 8); (6, 7); (7, 10);
    (8, 9); (8, 11); (10, 12); (11, 14); (12, 13); (12, 15); (13, 14); (14, 16);
    (15, 18); (16, 19); (17, 18); (18, 21); (19, 20); (19, 22); (21, 23);
    (22, 25); (23, 24); (24, 25); (25, 26);
  ]

let montreal = Coupling.create 27 montreal_edges

let linear n = Coupling.create n (List.init (n - 1) (fun i -> (i, i + 1)))

let grid rows cols =
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (idx r c, idx r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (idx r c, idx (r + 1) c) :: !edges
    done
  done;
  Coupling.create (rows * cols) !edges

(* Brick-wall hexagonal lattice with every edge subdivided by an extra
   qubit: the "heavy-hex" family IBM projects for large error-corrected
   machines (the paper cites montreal's heavy-hex as that future shape).
   Base vertices form a rows x cols grid with horizontal edges complete and
   vertical edges present where (r + c) is even; each edge then gets a
   middle qubit. *)
let heavy_hex rows cols =
  if rows < 2 || cols < 2 then invalid_arg "Devices.heavy_hex: need a 2x2 grid at least";
  let base r c = (r * cols) + c in
  let base_edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then base_edges := (base r c, base r (c + 1)) :: !base_edges;
      if r + 1 < rows && (r + c) mod 2 = 0 then
        base_edges := (base r c, base (r + 1) c) :: !base_edges
    done
  done;
  let base_count = rows * cols in
  let edges = ref [] in
  List.iteri
    (fun i (a, b) ->
      let mid = base_count + i in
      edges := (a, mid) :: (mid, b) :: !edges)
    (List.rev !base_edges);
  Coupling.create (base_count + List.length !base_edges) !edges

(* IBM's production heavy-hex lattice, parameterized by code distance [d]:
   10d^2 + 12d + 1 qubits (d=2 -> 65 Hummingbird, d=3 -> 127 Eagle,
   d=6 -> 433 Osprey).  Layout: 2d+1 long rows of 4d+3 columns (row 0
   drops its last column, row 2d its first), interleaved with 2d connector
   rows of d+1 bridge qubits; connector row k bridges column [4i] when k
   is even and [4i + 2] when k is odd, which keeps every qubit at degree
   <= 3.  Ids are assigned row-major, long and connector rows
   interleaved. *)
let heavy_hex_ibm ~distance:d =
  if d < 1 then invalid_arg "Devices.heavy_hex_ibm: distance must be >= 1";
  let cols = (4 * d) + 3 in
  let id_of = Hashtbl.create 64 in
  let next = ref 0 in
  let long_cols r =
    if r = 0 then List.init (cols - 1) Fun.id
    else if r = 2 * d then List.init (cols - 1) (fun c -> c + 1)
    else List.init cols Fun.id
  in
  for r = 0 to 2 * d do
    List.iter
      (fun c ->
        Hashtbl.add id_of (`Long, r, c) !next;
        incr next)
      (long_cols r);
    if r < 2 * d then begin
      let offset = if r mod 2 = 0 then 0 else 2 in
      for i = 0 to d do
        Hashtbl.add id_of (`Bridge, r, offset + (4 * i)) !next;
        incr next
      done
    end
  done;
  let edges = ref [] in
  for r = 0 to 2 * d do
    (match long_cols r with
    | first :: rest ->
        ignore
          (List.fold_left
             (fun prev c ->
               edges :=
                 (Hashtbl.find id_of (`Long, r, prev), Hashtbl.find id_of (`Long, r, c))
                 :: !edges;
               c)
             first rest)
    | [] -> ());
    if r < 2 * d then begin
      let offset = if r mod 2 = 0 then 0 else 2 in
      for i = 0 to d do
        let c = offset + (4 * i) in
        let b = Hashtbl.find id_of (`Bridge, r, c) in
        edges := (Hashtbl.find id_of (`Long, r, c), b) :: !edges;
        edges := (b, Hashtbl.find id_of (`Long, r + 1, c)) :: !edges
      done
    end
  done;
  Coupling.create !next !edges

let eagle_lazy = lazy (heavy_hex_ibm ~distance:3)
let osprey_lazy = lazy (heavy_hex_ibm ~distance:6)
let eagle () = Lazy.force eagle_lazy
let osprey () = Lazy.force osprey_lazy

let ring n =
  if n < 3 then invalid_arg "Devices.ring: need at least 3 qubits";
  Coupling.create n (List.init n (fun i -> (i, (i + 1) mod n)))

let fully_connected n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  Coupling.create n !edges

let by_name name n =
  match name with
  | "montreal" -> montreal
  | "linear" -> linear n
  | "ring" -> ring n
  | "heavy_hex" ->
      let side = max 2 (int_of_float (Float.round (sqrt (float_of_int (max 4 n) /. 2.5)))) in
      heavy_hex side side
  | "eagle" -> eagle ()
  | "osprey" -> osprey ()
  | "grid" ->
      let side = int_of_float (Float.round (sqrt (float_of_int n))) in
      grid side side
  | "full" -> fully_connected n
  | _ -> invalid_arg ("Devices.by_name: unknown topology " ^ name)
