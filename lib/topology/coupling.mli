(** Device coupling maps.

    A coupling map is an undirected graph over physical qubits; an edge
    means a CX can be executed natively between the two qubits (we model
    bidirectional links, as on IBM heavy-hex devices). *)

type t

val create : int -> (int * int) list -> t
(** [create n edges] builds a coupling map.  Self-loops, duplicate and
    out-of-range edges are rejected. *)

val n_qubits : t -> int
val edges : t -> (int * int) list
(** Normalized (lo, hi) edge list, sorted. *)

val connected : t -> int -> int -> bool
val neighbors : t -> int -> int list
val degree : t -> int -> int

val distance : t -> int -> int -> int
(** Shortest-path hop count (on-demand per-source BFS, cached).
    @raise Invalid_argument if the qubits are in different components. *)

val dist_row : t -> int -> int array
(** [dist_row t src] is the BFS distance row from [src] ([max_int] where
    unreachable), materialized on first request and cached (thread-safe;
    treat the row as read-only).  Creating a coupling map no longer runs
    all-pairs BFS, so mega-scale devices only pay for the rows routing
    actually touches. *)

val rows_materialized : t -> int
(** How many distance rows have been computed so far (observability for
    the lazy-row claim). *)

val distance_matrix : t -> int array array
(** The full matrix (forces every row); unreachable pairs hold
    [max_int]. *)

val is_connected_graph : t -> bool
val diameter : t -> int
val shortest_path : t -> int -> int -> int list
(** Inclusive endpoint-to-endpoint vertex path. *)

val pp : Format.formatter -> t -> unit
