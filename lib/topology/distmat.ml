type t = { size : int; data : float array; legacy : bool }

let n t = t.size
let get t a b = t.data.((a * t.size) + b)
let raw t = t.data

let hops coupling =
  let m = Coupling.distance_matrix coupling in
  let size = Coupling.n_qubits coupling in
  let data = Array.make (size * size) infinity in
  for a = 0 to size - 1 do
    for b = 0 to size - 1 do
      let v = m.(a).(b) in
      if v <> max_int then data.((a * size) + b) <- float_of_int v
    done
  done;
  { size; data; legacy = false }

let of_flat ~n data =
  if Array.length data <> n * n then invalid_arg "Distmat.of_flat: length <> n*n";
  { size = n; data; legacy = false }

let of_rows rows =
  let size = Array.length rows in
  let data = Array.make (size * size) infinity in
  Array.iteri
    (fun a row ->
      if Array.length row <> size then invalid_arg "Distmat.of_rows: ragged matrix";
      Array.blit row 0 data (a * size) size)
    rows;
  { size; data; legacy = true }

let to_rows t =
  Array.init t.size (fun a -> Array.sub t.data (a * t.size) t.size)

let is_legacy t = t.legacy
