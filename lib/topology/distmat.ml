type t = {
  size : int;
  data : float array;  (* flat row-major; [||] for on-demand matrices *)
  rows : float array option array;  (* row cache, on-demand matrices only *)
  producer : (int -> float array) option;
  lock : Mutex.t;
  legacy : bool;
}

let c_rows = Qobs.counter "distmat.rows_materialized"

let dense ~size ~legacy data =
  { size; data; rows = [||]; producer = None; lock = Mutex.create (); legacy }

let n t = t.size
let is_dense t = Array.length t.data > 0 || t.size = 0

(* Same double-checked pattern as [Coupling.dist_row]: rows are immutable
   once published, the lock only serializes production. *)
let row t a =
  if a < 0 || a >= t.size then invalid_arg "Distmat.row: qubit out of range";
  match t.rows.(a) with
  | Some r -> r
  | None ->
      Mutex.lock t.lock;
      let r =
        match t.rows.(a) with
        | Some r -> r
        | None ->
            let produce =
              match t.producer with
              | Some f -> f
              | None -> assert false
            in
            let r = produce a in
            if Array.length r <> t.size then
              invalid_arg "Distmat: row producer returned wrong length";
            t.rows.(a) <- Some r;
            Qobs.incr c_rows;
            r
      in
      Mutex.unlock t.lock;
      r

let get t a b =
  if is_dense t then t.data.((a * t.size) + b) else (row t a).(b)

let raw t =
  if is_dense t then t.data
  else invalid_arg "Distmat.raw: on-demand matrix has no dense backing (use raw_opt/get)"

let raw_opt t = if is_dense t then Some t.data else None

let rows_materialized t =
  if is_dense t then t.size
  else Array.fold_left (fun acc r -> if r = None then acc else acc + 1) 0 t.rows

let hops coupling =
  let m = Coupling.distance_matrix coupling in
  let size = Coupling.n_qubits coupling in
  let data = Array.make (size * size) infinity in
  for a = 0 to size - 1 do
    for b = 0 to size - 1 do
      let v = m.(a).(b) in
      if v <> max_int then data.((a * size) + b) <- float_of_int v
    done
  done;
  dense ~size ~legacy:false data

let lazy_rows ~n:size produce =
  if size <= 0 then invalid_arg "Distmat.lazy_rows: need at least one qubit";
  {
    size;
    data = [||];
    rows = Array.make size None;
    producer = Some produce;
    lock = Mutex.create ();
    legacy = false;
  }

let hops_lazy coupling =
  let size = Coupling.n_qubits coupling in
  lazy_rows ~n:size (fun a ->
      Array.map
        (fun v -> if v = max_int then infinity else float_of_int v)
        (Coupling.dist_row coupling a))

let of_flat ~n data =
  if Array.length data <> n * n then invalid_arg "Distmat.of_flat: length <> n*n";
  dense ~size:n ~legacy:false data

let of_rows nested =
  let size = Array.length nested in
  let data = Array.make (size * size) infinity in
  Array.iteri
    (fun a r ->
      if Array.length r <> size then invalid_arg "Distmat.of_rows: ragged matrix";
      Array.blit r 0 data (a * size) size)
    nested;
  dense ~size ~legacy:true data

let to_rows t =
  if is_dense t then Array.init t.size (fun a -> Array.sub t.data (a * t.size) t.size)
  else Array.init t.size (fun a -> Array.copy (row t a))

let is_legacy t = t.legacy
