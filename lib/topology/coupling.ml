type t = {
  n : int;
  adj : int list array;
  conn : Bytes.t;  (* flat n*n adjacency; O(1) [connected] for the routers *)
  edges : (int * int) list;
  dist : int array option array;  (* BFS rows, materialized on demand *)
  dist_lock : Mutex.t;
}

let bfs_row adj n src =
  let d = Array.make n max_int in
  d.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if d.(v) = max_int then begin
          d.(v) <- d.(u) + 1;
          Queue.add v q
        end)
      adj.(u)
  done;
  d

let create n raw_edges =
  if n <= 0 then invalid_arg "Coupling.create: need at least one qubit";
  let norm (a, b) =
    if a = b then invalid_arg "Coupling.create: self-loop";
    if a < 0 || b < 0 || a >= n || b >= n then invalid_arg "Coupling.create: edge out of range";
    (min a b, max a b)
  in
  let edges = List.sort_uniq compare (List.map norm raw_edges) in
  if List.length edges <> List.length raw_edges then
    invalid_arg "Coupling.create: duplicate edge";
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    edges;
  Array.iteri (fun i l -> adj.(i) <- List.sort compare l) adj;
  let conn = Bytes.make (n * n) '\000' in
  List.iter
    (fun (a, b) ->
      Bytes.set conn ((a * n) + b) '\001';
      Bytes.set conn ((b * n) + a) '\001')
    edges;
  (* distance rows are computed on demand ([dist_row]): creating a
     mega-scale device costs O(edges), not O(n^2) BFS *)
  { n; adj; conn; edges; dist = Array.make n None; dist_lock = Mutex.create () }

let n_qubits t = t.n
let edges t = t.edges
let neighbors t q = t.adj.(q)
let degree t q = List.length t.adj.(q)
let connected t a b =
  a >= 0 && a < t.n && b >= 0 && b < t.n
  && Bytes.unsafe_get t.conn ((a * t.n) + b) = '\001'

(* Double-checked materialization: the unlocked read either sees the row
   (immutable once published) or [None]; the lock serializes the BFS so
   concurrent routing trials never duplicate work or tear a write. *)
let dist_row t src =
  if src < 0 || src >= t.n then invalid_arg "Coupling.dist_row: qubit out of range";
  match t.dist.(src) with
  | Some row -> row
  | None ->
      Mutex.lock t.dist_lock;
      let row =
        match t.dist.(src) with
        | Some row -> row
        | None ->
            let row = bfs_row t.adj t.n src in
            t.dist.(src) <- Some row;
            row
      in
      Mutex.unlock t.dist_lock;
      row

let rows_materialized t =
  Array.fold_left (fun acc r -> if r = None then acc else acc + 1) 0 t.dist

let distance_matrix t = Array.init t.n (fun src -> dist_row t src)

let distance t a b =
  let d = (dist_row t a).(b) in
  if d = max_int then invalid_arg "Coupling.distance: disconnected qubits";
  d

let is_connected_graph t =
  Array.for_all (fun d -> d <> max_int) (dist_row t 0)

let diameter t =
  let acc = ref 0 in
  for src = 0 to t.n - 1 do
    Array.iter
      (fun d -> if d <> max_int && d > !acc then acc := d)
      (dist_row t src)
  done;
  !acc

let shortest_path t src dst =
  let d = dist_row t src in
  if d.(dst) = max_int then invalid_arg "Coupling.shortest_path: disconnected";
  (* walk back from dst following decreasing distance *)
  let rec back cur acc =
    if cur = src then cur :: acc
    else
      let prev = List.find (fun v -> d.(v) = d.(cur) - 1) t.adj.(cur) in
      back prev (cur :: acc)
  in
  back dst []

let pp ppf t =
  Format.fprintf ppf "coupling(%d qubits, %d edges)" t.n (List.length t.edges)
