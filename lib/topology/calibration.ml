open Mathkit

type t = {
  coupling : Coupling.t;
  cx_err : (int * int, float) Hashtbl.t;
  cx_t : (int * int, float) Hashtbl.t;
  ro_err : float array;
  sq_err : float array;
}

let key a b = (min a b, max a b)

let generate ?(seed = 2022) coupling =
  let rng = Rng.create seed in
  let cx_err = Hashtbl.create 64 and cx_t = Hashtbl.create 64 in
  List.iter
    (fun (a, b) ->
      (* lognormal-ish spread inside the published montreal band *)
      let e = 0.005 +. (Rng.float rng 1.0 ** 2.0 *. 0.02) in
      let tm = 250e-9 +. Rng.float rng 300e-9 in
      Hashtbl.replace cx_err (key a b) e;
      Hashtbl.replace cx_t (key a b) tm)
    (Coupling.edges coupling);
  let n = Coupling.n_qubits coupling in
  let ro_err = Array.init n (fun _ -> 0.01 +. Rng.float rng 0.03) in
  let sq_err = Array.init n (fun _ -> 2e-4 +. Rng.float rng 3e-4) in
  { coupling; cx_err; cx_t; ro_err; sq_err }

let create ~coupling ~cx_error ?(cx_time = fun _ _ -> 400e-9) ?(readout_error = fun _ -> 0.0)
    ?(sq_error = fun _ -> 0.0) () =
  let cx_err = Hashtbl.create 64 and cx_t = Hashtbl.create 64 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace cx_err (key a b) (cx_error a b);
      Hashtbl.replace cx_t (key a b) (cx_time a b))
    (Coupling.edges coupling);
  let n = Coupling.n_qubits coupling in
  {
    coupling;
    cx_err;
    cx_t;
    ro_err = Array.init n readout_error;
    sq_err = Array.init n sq_error;
  }

let lookup tbl a b what =
  match Hashtbl.find_opt tbl (key a b) with
  | Some v -> v
  | None -> invalid_arg ("Calibration." ^ what ^ ": qubits not coupled")

let cx_error t a b = lookup t.cx_err a b "cx_error"
let cx_time t a b = lookup t.cx_t a b "cx_time"
let readout_error t q = t.ro_err.(q)
let sq_error t q = t.sq_err.(q)
let coupling t = t.coupling

let noise_distmat ?(alpha1 = 0.5) ?(alpha2 = 0.0) ?(alpha3 = 0.5) t =
  let n = Coupling.n_qubits t.coupling in
  let edges = Coupling.edges t.coupling in
  let max_err = List.fold_left (fun m (a, b) -> Float.max m (cx_error t a b)) 1e-12 edges in
  let max_t = List.fold_left (fun m (a, b) -> Float.max m (cx_time t a b)) 1e-12 edges in
  let weight a b =
    (alpha1 *. (cx_error t a b /. max_err))
    +. (alpha2 *. (cx_time t a b /. max_t))
    +. (alpha3 *. 1.0)
  in
  (* all-pairs Dijkstra straight into flat row-major storage; graphs are
     tiny (<= dozens of qubits) *)
  let flat = Array.make (n * n) infinity in
  for src = 0 to n - 1 do
    let row = src * n in
    flat.(row + src) <- 0.0;
    let visited = Array.make n false in
    let rec loop () =
      let u = ref (-1) in
      for v = 0 to n - 1 do
        if
          (not visited.(v))
          && flat.(row + v) < infinity
          && (!u = -1 || flat.(row + v) < flat.(row + !u))
        then u := v
      done;
      if !u >= 0 then begin
        visited.(!u) <- true;
        List.iter
          (fun v ->
            let w = flat.(row + !u) +. weight !u v in
            if w < flat.(row + v) then flat.(row + v) <- w)
          (Coupling.neighbors t.coupling !u);
        loop ()
      end
    in
    loop ()
  done;
  Distmat.of_flat ~n flat

let noise_distance_matrix ?alpha1 ?alpha2 ?alpha3 t =
  Distmat.to_rows (noise_distmat ?alpha1 ?alpha2 ?alpha3 t)
