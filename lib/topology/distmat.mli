(** Flat distance matrices for the routing hot path.

    The routing engine reads [D.(a).(b)] once per (candidate, pair) — the
    innermost loop of the whole system.  A nested [float array array] costs
    a bounds-checked indirection per row; storing the matrix row-major in
    one flat [float array] keeps the lookup a single offset computation and
    the whole matrix contiguous in cache.

    Construction provenance is tracked so tooling ({!Qlint}) can flag
    callers still building nested matrices and converting them ([of_rows],
    the legacy adapter) instead of using a flat-native constructor. *)

type t

val n : t -> int
(** Number of physical qubits (the matrix is [n x n]). *)

val get : t -> int -> int -> float
(** [get d a b] is the distance from [a] to [b]; [infinity] when
    unreachable. *)

val raw : t -> float array
(** The backing row-major array, length [n * n]: entry [(a, b)] lives at
    [a * n + b].  Exposed for hot loops; treat as read-only.
    @raise Invalid_argument on an on-demand matrix (see {!raw_opt}). *)

val raw_opt : t -> float array option
(** [Some] flat backing for dense matrices, [None] for on-demand ones.
    Hot loops branch once on this and fall back to {!get}. *)

val hops : Coupling.t -> t
(** BFS hop counts as floats ([infinity] when disconnected) — the default
    routing metric.  Flat-native and fully dense (all-pairs BFS up
    front). *)

val hops_lazy : Coupling.t -> t
(** Like {!hops}, but rows materialize on first access (backed by
    [Coupling.dist_row]) instead of allocating the dense [n * n] matrix —
    O(rows touched * n) memory, which is what lets 433-qubit streaming
    runs avoid the quadratic table.  Each materialized row bumps the
    [distmat.rows_materialized] counter. *)

val lazy_rows : n:int -> (int -> float array) -> t
(** [lazy_rows ~n produce] builds an on-demand matrix whose row [a] is
    [produce a] (must have length [n]; computed once, cached,
    thread-safe). *)

val rows_materialized : t -> int
(** Rows computed so far ([n] for dense matrices). *)

val is_dense : t -> bool

val of_flat : n:int -> float array -> t
(** Wrap an already-flat row-major array (length must be [n * n]).
    Flat-native. *)

val of_rows : float array array -> t
(** Adapter for legacy nested matrices (copies into flat storage).  The
    result is marked {!is_legacy}; prefer {!hops},
    {!Calibration.noise_distmat} or {!of_flat}. *)

val to_rows : t -> float array array
(** Fresh nested copy (for callers that still want rows, e.g. tests). *)

val is_legacy : t -> bool
(** True iff the matrix came through the {!of_rows} compatibility path. *)
