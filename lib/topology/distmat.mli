(** Flat distance matrices for the routing hot path.

    The routing engine reads [D.(a).(b)] once per (candidate, pair) — the
    innermost loop of the whole system.  A nested [float array array] costs
    a bounds-checked indirection per row; storing the matrix row-major in
    one flat [float array] keeps the lookup a single offset computation and
    the whole matrix contiguous in cache.

    Construction provenance is tracked so tooling ({!Qlint}) can flag
    callers still building nested matrices and converting them ([of_rows],
    the legacy adapter) instead of using a flat-native constructor. *)

type t

val n : t -> int
(** Number of physical qubits (the matrix is [n x n]). *)

val get : t -> int -> int -> float
(** [get d a b] is the distance from [a] to [b]; [infinity] when
    unreachable. *)

val raw : t -> float array
(** The backing row-major array, length [n * n]: entry [(a, b)] lives at
    [a * n + b].  Exposed for hot loops; treat as read-only. *)

val hops : Coupling.t -> t
(** BFS hop counts as floats ([infinity] when disconnected) — the default
    routing metric.  Flat-native. *)

val of_flat : n:int -> float array -> t
(** Wrap an already-flat row-major array (length must be [n * n]).
    Flat-native. *)

val of_rows : float array array -> t
(** Adapter for legacy nested matrices (copies into flat storage).  The
    result is marked {!is_legacy}; prefer {!hops},
    {!Calibration.noise_distmat} or {!of_flat}. *)

val to_rows : t -> float array array
(** Fresh nested copy (for callers that still want rows, e.g. tests). *)

val is_legacy : t -> bool
(** True iff the matrix came through the {!of_rows} compatibility path. *)
