(** Synthetic device calibration data.

    The paper's noise-aware experiments (Sections IV-G, VI-D) read CX error
    rates, gate times and readout errors from the real [ibmq_montreal]
    calibration.  We have no device access, so we generate a deterministic
    synthetic snapshot whose magnitudes match the published montreal ranges
    (CX error 0.5-2.5e-2, CX time 250-550 ns, readout error 1-4e-2,
    single-qubit error 2-5e-4).  Routing quality depends on the relative
    ordering of edge fidelities, which any such snapshot exercises. *)

type t

val generate : ?seed:int -> Coupling.t -> t
(** Deterministic synthetic calibration for a device. *)

val create :
  coupling:Coupling.t ->
  cx_error:(int -> int -> float) ->
  ?cx_time:(int -> int -> float) ->
  ?readout_error:(int -> float) ->
  ?sq_error:(int -> float) ->
  unit ->
  t
(** Explicit calibration from per-edge/per-qubit functions — for tests and
    for loading real calibration data.  [cx_error]/[cx_time] are sampled
    once per coupling edge (symmetric); defaults: 400 ns CX, zero readout
    and single-qubit error. *)

val cx_error : t -> int -> int -> float
(** Error rate of the CX on an edge (symmetric).
    @raise Invalid_argument when the qubits are not coupled. *)

val cx_time : t -> int -> int -> float
(** CX duration in seconds. *)

val readout_error : t -> int -> float
val sq_error : t -> int -> float
(** Single-qubit gate error rate. *)

val coupling : t -> Coupling.t

val noise_distmat : ?alpha1:float -> ?alpha2:float -> ?alpha3:float -> t -> Distmat.t
(** The paper's eq. 3: weighted all-pairs shortest paths over edge weights
    [a1 * eps + a2 * T + a3 * 1], with [eps] and [T] normalized to [0, 1]
    across edges.  Defaults are the paper's (0.5, 0, 0.5).  Flat-native:
    this is the constructor the routers should be fed. *)

val noise_distance_matrix :
  ?alpha1:float -> ?alpha2:float -> ?alpha3:float -> t -> float array array
(** {!noise_distmat} as a nested matrix (kept for existing callers and
    tests; entries are identical). *)
