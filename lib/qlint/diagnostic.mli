(** Structured diagnostics for the static-analysis layer.

    Every rule, contract check and audit reports violations as values of
    {!t} instead of raising: a diagnostic names the rule that fired, a
    severity, a human message and (when known) the program location —
    an instruction id, a wire, a source line/column, or a pipeline stage.
    The CLI renders them human-readably or as JSON lines; the exit code is
    derived from {!has_errors}. *)

type severity = Error | Warning | Info

type location =
  | Instr of int  (** instruction index / DAG node id in the circuit *)
  | Wire of int  (** qubit wire *)
  | Source of { line : int; col : int }  (** source text position (QASM) *)
  | Stage of string  (** pipeline stage / pass name *)

type t = {
  rule : string;  (** stable rule id, e.g. ["route.check-map"] *)
  severity : severity;
  message : string;
  loc : location option;
}

val error : ?loc:location -> rule:string -> string -> t
val warning : ?loc:location -> rule:string -> string -> t
val info : ?loc:location -> rule:string -> string -> t

val errorf :
  ?loc:location -> rule:string -> ('a, Format.formatter, unit, t) format4 -> 'a
(** [errorf ~rule fmt ...] builds an [Error] diagnostic with a formatted
    message. *)

val severity_name : severity -> string
val is_error : t -> bool
val has_errors : t list -> bool
val errors : t list -> t list

val pp : Format.formatter -> t -> unit
(** ["error[route.check-map]: cx on uncoupled pair (2, 7) (instr 12)"]. *)

val to_json : t -> string
(** One-line JSON object ([{"kind":"diagnostic","severity":...,"rule":...,
    "message":...,"line":...,...}]); suitable for JSONL export. *)

val pp_summary : Format.formatter -> checks:int -> t list -> unit
(** One-line summary: checks run, diagnostics by severity. *)
