open Contract

let canonical_stage_names ~router = Qroute.Pipeline.stage_names ~router

let validate_pipeline ~router =
  let goal =
    match router with
    | Qroute.Pipeline.Full_connectivity -> [ Hardware_basis ]
    | _ -> [ Hardware_basis; Routed_for ]
  in
  Contract.validate ~initial:[] ~goal (canonical_stage_names ~router)

(* cx-basis cost of the whole circuit: the measure Size_preserving bounds
   (gate *count* may grow — zsx re-emission expands 1q runs — but CX cost
   must not) *)
let cx_cost c =
  List.fold_left
    (fun acc (i : Qcircuit.Circuit.instr) -> acc + Qpasses.Blocks.gate_cx_cost i.gate)
    0
    (Qcircuit.Circuit.instrs c)

let semantics_limit = 8

let verify_prop ?coupling ~check_semantics ~stage ~before after = function
  | Lowered_2q ->
      List.map
        (fun (d : Diagnostic.t) -> { d with loc = Some (Diagnostic.Stage stage) })
        (Rules.lowered_2q after)
  | Hardware_basis ->
      List.map
        (fun (d : Diagnostic.t) -> { d with loc = Some (Diagnostic.Stage stage) })
        (Rules.hardware_basis after)
  | Routed_for -> begin
      match coupling with
      | None -> []
      | Some cm ->
          List.map
            (fun (d : Diagnostic.t) -> { d with loc = Some (Diagnostic.Stage stage) })
            (Rules.check_map cm after)
    end
  | Size_preserving ->
      let cb = cx_cost before and ca = cx_cost after in
      if ca > cb then
        [
          Diagnostic.errorf ~loc:(Diagnostic.Stage stage) ~rule:"contract.ensures"
            "stage %s raised the CX-basis cost from %d to %d (Size_preserving violated)"
            stage cb ca;
        ]
      else []
  | Semantics_preserved ->
      if
        check_semantics
        && Qcircuit.Circuit.n_qubits before = Qcircuit.Circuit.n_qubits after
      then begin
        (* symbolic certification first: width-independent, and the
           three-valued verdict never claims a false positive.  Only an
           Unknown (budget exhausted / unsupported gate) falls back to
           dense unitary comparison, and only where that is tractable. *)
        match Qverify.verify_pair before after with
        | Qverify.Equivalent _ -> []
        | Qverify.Not_equivalent { reason; _ } ->
            [
              Diagnostic.errorf ~loc:(Diagnostic.Stage stage) ~rule:"contract.ensures"
                "stage %s changed the circuit unitary (Semantics_preserved violated): %s"
                stage reason;
            ]
        | Qverify.Unknown _ ->
            if Qcircuit.Circuit.n_qubits before <= semantics_limit then
              if Qsim.Equiv.unitary_equal before after then []
              else
                [
                  Diagnostic.errorf ~loc:(Diagnostic.Stage stage) ~rule:"contract.ensures"
                    "stage %s changed the circuit unitary (Semantics_preserved violated)"
                    stage;
                ]
            else []
      end
      else []

let run_stages ?coupling ?(check_semantics = false) ?(initial = [ Lowered_2q ]) stages
    circuit =
  let diags = ref [] in
  let emit ds = diags := !diags @ ds in
  (* the input itself must satisfy the initial property set *)
  emit
    (List.concat_map
       (verify_prop ?coupling ~check_semantics ~stage:"<input>" ~before:circuit circuit)
       initial);
  let final, _ =
    List.fold_left
      (fun (c, state) (name, f) ->
        (match Contract.find name with
        | None ->
            emit
              [
                Diagnostic.errorf ~loc:(Diagnostic.Stage name)
                  ~rule:"contract.unknown-pass" "unknown pass %S: no contract registered"
                  name;
              ]
        | Some ct ->
            List.iter
              (fun p ->
                if not (List.memq p state) then
                  emit
                    [
                      Diagnostic.errorf ~loc:(Diagnostic.Stage name)
                        ~rule:"contract.requires"
                        "pass %s requires %s, which does not hold here" name (prop_name p);
                    ])
              ct.requires;
            List.iter
              (fun p ->
                if List.memq p state then
                  emit
                    [
                      Diagnostic.errorf ~loc:(Diagnostic.Stage name)
                        ~rule:"contract.conflict"
                        "pass %s must run before %s is established (illegal ordering)"
                        name (prop_name p);
                    ])
              ct.conflicts);
        let c' = f c in
        let state' =
          match Contract.find name with
          | None -> state
          | Some ct ->
              let state = List.filter (fun p -> not (List.memq p ct.invalidates)) state in
              List.fold_left
                (fun s p -> if List.memq p s then s else p :: s)
                state ct.ensures
        in
        emit
          (List.concat_map
             (verify_prop ?coupling ~check_semantics ~stage:name ~before:c c')
             state');
        (c', state'))
      (circuit, initial) stages
  in
  (final, !diags)

let check_result ~coupling (r : Qroute.Pipeline.result) =
  let c = r.Qroute.Pipeline.circuit in
  let base = Rules.check_circuit c ~props:[ Lowered_2q; Hardware_basis ] in
  let routed =
    match (r.Qroute.Pipeline.initial_layout, r.Qroute.Pipeline.final_layout) with
    | None, None -> []
    | il, fl ->
        let layout_checks l =
          match l with Some a -> Rules.layout coupling a | None -> []
        in
        layout_checks il @ layout_checks fl @ Rules.check_map coupling c
  in
  base @ routed

let verify_result ~original (r : Qroute.Pipeline.result) =
  match
    Qverify.verify_routed ~original ~routed:r.Qroute.Pipeline.circuit
      ?initial_layout:r.Qroute.Pipeline.initial_layout
      ?final_layout:r.Qroute.Pipeline.final_layout ()
  with
  | Qverify.Equivalent _ -> []
  | Qverify.Not_equivalent { reason; location } ->
      let loc =
        match location with
        | Some l -> Diagnostic.Instr l.Qverify.index
        | None -> Diagnostic.Stage "route"
      in
      [
        Diagnostic.errorf ~loc ~rule:"route.semantics"
          "routed circuit is not equivalent to the input under its layouts: %s" reason;
      ]
  | Qverify.Unknown { reason } ->
      [
        Diagnostic.warning ~loc:(Diagnostic.Stage "route") ~rule:"route.semantics"
          (Printf.sprintf "equivalence could not be certified: %s" reason);
      ]

let transpile ?params ?calibration ?trials ?workers ~router coupling circuit =
  match Diagnostic.errors (validate_pipeline ~router) with
  | _ :: _ as errs -> Error errs
  | [] -> begin
      match
        Qroute.Pipeline.transpile ?params ?calibration ?trials ?workers ~router coupling
          circuit
      with
      | r -> begin
          match Diagnostic.errors (check_result ~coupling r) with
          | [] -> Ok r
          | errs -> Error errs
        end
      | exception Qroute.Engine.Routing_stuck { front; l2p } ->
          Error
            [
              Diagnostic.errorf ~loc:(Diagnostic.Stage "route") ~rule:"route.stuck"
                "router stuck: no swap candidates for front {%s} under mapping [%s]"
                (String.concat "; "
                   (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) front))
                (String.concat " " (Array.to_list (Array.map string_of_int l2p)));
            ]
    end
