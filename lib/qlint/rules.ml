open Qgate

let c_checks = Qobs.counter "qlint.checks"
let checks_total = Atomic.make 0

let count_check () =
  Qobs.incr c_checks;
  Atomic.incr checks_total

let checks_run () = Atomic.get checks_total

let structural ~n instrs =
  count_check ();
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  List.iteri
    (fun id (i : Qcircuit.Circuit.instr) ->
      let arity = Gate.arity i.gate in
      let k = List.length i.qubits in
      if k <> arity then
        emit
          (Diagnostic.errorf ~loc:(Diagnostic.Instr id) ~rule:"gate.arity"
             "gate %s expects %d qubits, got %d" (Gate.name i.gate) arity k);
      List.iter
        (fun q ->
          if q < 0 || q >= n then
            emit
              (Diagnostic.errorf ~loc:(Diagnostic.Instr id) ~rule:"qubit.bounds"
                 "qubit index %d out of range for a %d-qubit circuit" q n))
        i.qubits;
      if List.length (List.sort_uniq compare i.qubits) <> k then
        emit
          (Diagnostic.errorf ~loc:(Diagnostic.Instr id) ~rule:"gate.repeated-qubit"
             "gate %s repeats a qubit operand (%s)" (Gate.name i.gate)
             (String.concat "," (List.map string_of_int i.qubits))))
    instrs;
  List.rev !diags

let dag_consistency c =
  count_check ();
  let dag = Qcircuit.Dag.of_circuit c in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let n = Qcircuit.Dag.n_nodes dag in
  Array.iter
    (fun (nd : Qcircuit.Dag.node) ->
      List.iter
        (fun (q, p) ->
          if p < 0 || p >= n then
            emit
              (Diagnostic.errorf ~loc:(Diagnostic.Instr nd.id) ~rule:"wire.consistency"
                 "predecessor id %d on wire %d out of range" p q)
          else begin
            (* a dependency must point backwards in instruction order: node
               ids are source positions, so this is exactly acyclicity *)
            if p >= nd.id then
              emit
                (Diagnostic.errorf ~loc:(Diagnostic.Instr nd.id) ~rule:"dag.acyclic"
                   "dependency on node %d does not precede node %d (cycle)" p nd.id);
            let back = (Qcircuit.Dag.node dag p).succs in
            if not (List.exists (fun (q', s) -> q' = q && s = nd.id) back) then
              emit
                (Diagnostic.errorf ~loc:(Diagnostic.Instr nd.id) ~rule:"wire.consistency"
                   "edge from node %d on wire %d has no successor mirror" p q)
          end)
        nd.preds;
      List.iter
        (fun (q, s) ->
          if s < 0 || s >= n then
            emit
              (Diagnostic.errorf ~loc:(Diagnostic.Instr nd.id) ~rule:"wire.consistency"
                 "successor id %d on wire %d out of range" s q)
          else if
            not
              (List.exists (fun (q', p) -> q' = q && p = nd.id) (Qcircuit.Dag.node dag s).preds)
          then
            emit
              (Diagnostic.errorf ~loc:(Diagnostic.Instr nd.id) ~rule:"wire.consistency"
                 "edge to node %d on wire %d has no predecessor mirror" s q))
        nd.succs)
    (Qcircuit.Dag.nodes dag);
  List.rev !diags

let lowered_2q c =
  count_check ();
  List.concat
    (List.mapi
       (fun id (i : Qcircuit.Circuit.instr) ->
         if Gate.arity i.gate > 2 && not (Gate.is_directive i.gate) then
           [
             Diagnostic.errorf ~loc:(Diagnostic.Instr id) ~rule:"basis.two-qubit"
               "gate %s acts on %d qubits; expected at most 2 after lowering"
               (Gate.name i.gate) (Gate.arity i.gate);
           ]
         else [])
       (Qcircuit.Circuit.instrs c))

let hardware_basis c =
  count_check ();
  List.concat
    (List.mapi
       (fun id (i : Qcircuit.Circuit.instr) ->
         if Gate.in_basis i.gate then []
         else
           [
             Diagnostic.errorf ~loc:(Diagnostic.Instr id) ~rule:"basis.hardware"
               "gate %s is outside the hardware basis {rz, sx, x, cx}"
               (Gate.name i.gate);
           ])
       (Qcircuit.Circuit.instrs c))

let check_map coupling c =
  count_check ();
  let n_phys = Topology.Coupling.n_qubits coupling in
  let n = Qcircuit.Circuit.n_qubits c in
  let head =
    if n > n_phys then
      [
        Diagnostic.errorf ~rule:"route.check-map"
          "circuit has %d qubits but the device only %d" n n_phys;
      ]
    else []
  in
  head
  @ List.concat
      (List.mapi
         (fun id (i : Qcircuit.Circuit.instr) ->
           match i.qubits with
           | [ a; b ]
             when Gate.is_two_qubit i.gate
                  && a >= 0 && a < n_phys && b >= 0 && b < n_phys
                  && not (Topology.Coupling.connected coupling a b) ->
               [
                 Diagnostic.errorf ~loc:(Diagnostic.Instr id) ~rule:"route.check-map"
                   "%s on uncoupled physical pair (%d, %d)" (Gate.name i.gate) a b;
               ]
           | _ -> [])
         (Qcircuit.Circuit.instrs c))

let layout coupling l2p =
  count_check ();
  let n_phys = Topology.Coupling.n_qubits coupling in
  let seen = Hashtbl.create 16 in
  let diags = ref [] in
  Array.iteri
    (fun l p ->
      if p < 0 || p >= n_phys then
        diags :=
          Diagnostic.errorf ~loc:(Diagnostic.Wire l) ~rule:"route.layout"
            "logical qubit %d mapped to physical %d, outside the %d-qubit device" l p
            n_phys
          :: !diags
      else begin
        (match Hashtbl.find_opt seen p with
        | Some l' ->
            diags :=
              Diagnostic.errorf ~loc:(Diagnostic.Wire l) ~rule:"route.layout"
                "physical qubit %d assigned to both logical %d and %d" p l' l
              :: !diags
        | None -> ());
        Hashtbl.replace seen p l
      end)
    l2p;
  List.rev !diags

let distmat d =
  count_check ();
  if Topology.Distmat.is_legacy d then
    [
      Diagnostic.warning ~loc:(Diagnostic.Stage "route") ~rule:"distmat.legacy"
        "distance matrix was built from nested rows (Distmat.of_rows); use \
         Distmat.hops, Calibration.noise_distmat or Distmat.of_flat for the \
         flat fast path";
    ]
  else []

(* a parameterized gate whose angles make it the identity (up to global
   phase); 2pi-periodic, matching the rotation semantics of the gate set *)
let angle_dead a =
  let r = Float.rem a (2.0 *. Float.pi) in
  let r = if r < 0.0 then r +. (2.0 *. Float.pi) else r in
  Float.abs r <= 1e-9 || Float.abs (r -. (2.0 *. Float.pi)) <= 1e-9

let is_identity_gate (g : Gate.t) =
  match g with
  | RX a | RY a | RZ a | P a | CRX a | CRY a | CRZ a | CP a | RZZ a -> angle_dead a
  | U (t, p, l) -> angle_dead t && angle_dead (p +. l)
  | _ -> false

let is_self_inverse (g : Gate.t) =
  match g with
  | X | Y | Z | H | CX | CY | CZ | CH | SWAP | CCX | CCZ | CSWAP -> true
  | _ -> false

let dead_gates c =
  count_check ();
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (* last.(w) = index of the last non-directive instruction touching wire w *)
  let last = Array.make (Qcircuit.Circuit.n_qubits c) (-1) in
  let instrs = Array.of_list (Qcircuit.Circuit.instrs c) in
  Array.iteri
    (fun id (i : Qcircuit.Circuit.instr) ->
      if not (Gate.is_directive i.gate) then begin
        let in_range = List.for_all (fun q -> q >= 0 && q < Array.length last) i.qubits in
        (* adjacent self-inverse pair: the previous instruction on every
           operand wire is the same gate on the same operand list *)
        let paired =
          is_self_inverse i.gate && i.qubits <> [] && in_range
          &&
          let p = last.(List.hd i.qubits) in
          p >= 0
          && instrs.(p).gate = i.gate
          && instrs.(p).qubits = i.qubits
          && List.for_all (fun q -> last.(q) = p) i.qubits
        in
        if is_identity_gate i.gate then
          emit
            (Diagnostic.warning ~loc:(Diagnostic.Instr id) ~rule:"gate.dead"
               (Printf.sprintf "gate %s is the identity (dead gate)" (Gate.name i.gate)))
        else if paired then
          emit
            (Diagnostic.warning ~loc:(Diagnostic.Instr id) ~rule:"gate.dead"
               (Printf.sprintf
                  "gate %s cancels the identical %s at instruction %d (dead pair)"
                  (Gate.name i.gate) (Gate.name i.gate)
                  last.(List.hd i.qubits)));
        if in_range then
          (* both members of a cancelled pair drop out of the adjacency
             tracking, so X X X reports one pair, X X X X reports two *)
          List.iter (fun q -> last.(q) <- (if paired then -1 else id)) i.qubits
      end)
    instrs;
  List.rev !diags

let check_circuit ?coupling ?(props = []) c =
  let base =
    structural ~n:(Qcircuit.Circuit.n_qubits c) (Qcircuit.Circuit.instrs c)
    @ dag_consistency c @ dead_gates c
  in
  let for_prop (p : Contract.prop) =
    match p with
    | Contract.Lowered_2q -> lowered_2q c
    | Contract.Hardware_basis -> hardware_basis c
    | Contract.Routed_for -> begin
        match coupling with
        | Some cm -> check_map cm c
        | None ->
            [
              Diagnostic.warning ~rule:"route.check-map"
                "Routed_for requested but no coupling map given; skipped";
            ]
      end
    | Contract.Size_preserving | Contract.Semantics_preserved ->
        (* relational properties: checked between stages, not on one circuit *)
        []
  in
  base @ List.concat_map for_prop props

let lint_qasm ?path src =
  count_check ();
  match Qcircuit.Qasm_parser.parse_result src with
  | Ok c -> Ok c
  | Error { Qcircuit.Qasm_parser.line; col; msg } ->
      let msg = match path with None -> msg | Some p -> Printf.sprintf "%s: %s" p msg in
      Error
        (Diagnostic.error ~loc:(Diagnostic.Source { line; col }) ~rule:"qasm.parse" msg)

let lint_qasm_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | src -> lint_qasm ~path src
  | exception Sys_error msg -> Error (Diagnostic.error ~rule:"qasm.parse" msg)
