open Qgate

let c_checks = Qobs.counter "qlint.checks"
let checks_total = Atomic.make 0

let count_check () =
  Qobs.incr c_checks;
  Atomic.incr checks_total

let checks_run () = Atomic.get checks_total

let structural ~n instrs =
  count_check ();
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  List.iteri
    (fun id (i : Qcircuit.Circuit.instr) ->
      let arity = Gate.arity i.gate in
      let k = List.length i.qubits in
      if k <> arity then
        emit
          (Diagnostic.errorf ~loc:(Diagnostic.Instr id) ~rule:"gate.arity"
             "gate %s expects %d qubits, got %d" (Gate.name i.gate) arity k);
      List.iter
        (fun q ->
          if q < 0 || q >= n then
            emit
              (Diagnostic.errorf ~loc:(Diagnostic.Instr id) ~rule:"qubit.bounds"
                 "qubit index %d out of range for a %d-qubit circuit" q n))
        i.qubits;
      if List.length (List.sort_uniq compare i.qubits) <> k then
        emit
          (Diagnostic.errorf ~loc:(Diagnostic.Instr id) ~rule:"gate.repeated-qubit"
             "gate %s repeats a qubit operand (%s)" (Gate.name i.gate)
             (String.concat "," (List.map string_of_int i.qubits))))
    instrs;
  List.rev !diags

let dag_consistency c =
  count_check ();
  let dag = Qcircuit.Dag.of_circuit c in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let n = Qcircuit.Dag.n_nodes dag in
  Array.iter
    (fun (nd : Qcircuit.Dag.node) ->
      List.iter
        (fun (q, p) ->
          if p < 0 || p >= n then
            emit
              (Diagnostic.errorf ~loc:(Diagnostic.Instr nd.id) ~rule:"wire.consistency"
                 "predecessor id %d on wire %d out of range" p q)
          else begin
            (* a dependency must point backwards in instruction order: node
               ids are source positions, so this is exactly acyclicity *)
            if p >= nd.id then
              emit
                (Diagnostic.errorf ~loc:(Diagnostic.Instr nd.id) ~rule:"dag.acyclic"
                   "dependency on node %d does not precede node %d (cycle)" p nd.id);
            let back = (Qcircuit.Dag.node dag p).succs in
            if not (List.exists (fun (q', s) -> q' = q && s = nd.id) back) then
              emit
                (Diagnostic.errorf ~loc:(Diagnostic.Instr nd.id) ~rule:"wire.consistency"
                   "edge from node %d on wire %d has no successor mirror" p q)
          end)
        nd.preds;
      List.iter
        (fun (q, s) ->
          if s < 0 || s >= n then
            emit
              (Diagnostic.errorf ~loc:(Diagnostic.Instr nd.id) ~rule:"wire.consistency"
                 "successor id %d on wire %d out of range" s q)
          else if
            not
              (List.exists (fun (q', p) -> q' = q && p = nd.id) (Qcircuit.Dag.node dag s).preds)
          then
            emit
              (Diagnostic.errorf ~loc:(Diagnostic.Instr nd.id) ~rule:"wire.consistency"
                 "edge to node %d on wire %d has no predecessor mirror" s q))
        nd.succs)
    (Qcircuit.Dag.nodes dag);
  List.rev !diags

let lowered_2q c =
  count_check ();
  List.concat
    (List.mapi
       (fun id (i : Qcircuit.Circuit.instr) ->
         if Gate.arity i.gate > 2 && not (Gate.is_directive i.gate) then
           [
             Diagnostic.errorf ~loc:(Diagnostic.Instr id) ~rule:"basis.two-qubit"
               "gate %s acts on %d qubits; expected at most 2 after lowering"
               (Gate.name i.gate) (Gate.arity i.gate);
           ]
         else [])
       (Qcircuit.Circuit.instrs c))

let hardware_basis c =
  count_check ();
  List.concat
    (List.mapi
       (fun id (i : Qcircuit.Circuit.instr) ->
         if Gate.in_basis i.gate then []
         else
           [
             Diagnostic.errorf ~loc:(Diagnostic.Instr id) ~rule:"basis.hardware"
               "gate %s is outside the hardware basis {rz, sx, x, cx}"
               (Gate.name i.gate);
           ])
       (Qcircuit.Circuit.instrs c))

let check_map coupling c =
  count_check ();
  let n_phys = Topology.Coupling.n_qubits coupling in
  let n = Qcircuit.Circuit.n_qubits c in
  let head =
    if n > n_phys then
      [
        Diagnostic.errorf ~rule:"route.check-map"
          "circuit has %d qubits but the device only %d" n n_phys;
      ]
    else []
  in
  head
  @ List.concat
      (List.mapi
         (fun id (i : Qcircuit.Circuit.instr) ->
           match i.qubits with
           | [ a; b ]
             when Gate.is_two_qubit i.gate
                  && a >= 0 && a < n_phys && b >= 0 && b < n_phys
                  && not (Topology.Coupling.connected coupling a b) ->
               [
                 Diagnostic.errorf ~loc:(Diagnostic.Instr id) ~rule:"route.check-map"
                   "%s on uncoupled physical pair (%d, %d)" (Gate.name i.gate) a b;
               ]
           | _ -> [])
         (Qcircuit.Circuit.instrs c))

let layout coupling l2p =
  count_check ();
  let n_phys = Topology.Coupling.n_qubits coupling in
  let seen = Hashtbl.create 16 in
  let diags = ref [] in
  Array.iteri
    (fun l p ->
      if p < 0 || p >= n_phys then
        diags :=
          Diagnostic.errorf ~loc:(Diagnostic.Wire l) ~rule:"route.layout"
            "logical qubit %d mapped to physical %d, outside the %d-qubit device" l p
            n_phys
          :: !diags
      else begin
        (match Hashtbl.find_opt seen p with
        | Some l' ->
            diags :=
              Diagnostic.errorf ~loc:(Diagnostic.Wire l) ~rule:"route.layout"
                "physical qubit %d assigned to both logical %d and %d" p l' l
              :: !diags
        | None -> ());
        Hashtbl.replace seen p l
      end)
    l2p;
  List.rev !diags

let distmat d =
  count_check ();
  if Topology.Distmat.is_legacy d then
    [
      Diagnostic.warning ~loc:(Diagnostic.Stage "route") ~rule:"distmat.legacy"
        "distance matrix was built from nested rows (Distmat.of_rows); use \
         Distmat.hops, Calibration.noise_distmat or Distmat.of_flat for the \
         flat fast path";
    ]
  else []

let check_circuit ?coupling ?(props = []) c =
  let base =
    structural ~n:(Qcircuit.Circuit.n_qubits c) (Qcircuit.Circuit.instrs c)
    @ dag_consistency c
  in
  let for_prop (p : Contract.prop) =
    match p with
    | Contract.Lowered_2q -> lowered_2q c
    | Contract.Hardware_basis -> hardware_basis c
    | Contract.Routed_for -> begin
        match coupling with
        | Some cm -> check_map cm c
        | None ->
            [
              Diagnostic.warning ~rule:"route.check-map"
                "Routed_for requested but no coupling map given; skipped";
            ]
      end
    | Contract.Size_preserving | Contract.Semantics_preserved ->
        (* relational properties: checked between stages, not on one circuit *)
        []
  in
  base @ List.concat_map for_prop props

let lint_qasm ?path src =
  count_check ();
  match Qcircuit.Qasm_parser.parse_result src with
  | Ok c -> Ok c
  | Error { Qcircuit.Qasm_parser.line; col; msg } ->
      let msg = match path with None -> msg | Some p -> Printf.sprintf "%s: %s" p msg in
      Error
        (Diagnostic.error ~loc:(Diagnostic.Source { line; col }) ~rule:"qasm.parse" msg)

let lint_qasm_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | src -> lint_qasm ~path src
  | exception Sys_error msg -> Error (Diagnostic.error ~rule:"qasm.parse" msg)
