type prop =
  | Lowered_2q
  | Routed_for
  | Hardware_basis
  | Size_preserving
  | Semantics_preserved

let prop_name = function
  | Lowered_2q -> "Lowered_2q"
  | Routed_for -> "Routed_for"
  | Hardware_basis -> "Hardware_basis"
  | Size_preserving -> "Size_preserving"
  | Semantics_preserved -> "Semantics_preserved"

type t = {
  cname : string;
  requires : prop list;
  ensures : prop list;
  invalidates : prop list;
  conflicts : prop list;
}

let c name ?(requires = []) ?(ensures = []) ?(invalidates = []) ?(conflicts = []) () =
  { cname = name; requires; ensures; invalidates; conflicts }

(* The registry.  Rationale for the non-obvious entries:
   - [cancellation] and [unitary_synthesis] require [Lowered_2q]: commute
     sets and 2q-block collection assume the {1q, 2q} shape the paper's
     Figure 5 establishes before any optimization runs.
   - [route] conflicts with [Hardware_basis]: emission is the final
     lowering step, so routing an already-emitted circuit is an ordering
     bug, not a semantics bug (the paper's pipeline routes first).
   - [optimize_1q.u] invalidates [Hardware_basis] (it re-emits runs as [U]
     gates); the [.zsx] variant stays inside {rz, sx, x}. *)
let all =
  [
    c "lower_to_2q" ~ensures:[ Lowered_2q; Semantics_preserved ]
      ~invalidates:[ Hardware_basis ] ();
    c "peephole" ~ensures:[ Size_preserving; Semantics_preserved ] ();
    c "optimize_1q.u"
      ~ensures:[ Size_preserving; Semantics_preserved ]
      ~invalidates:[ Hardware_basis ] ();
    c "optimize_1q.zsx" ~ensures:[ Size_preserving; Semantics_preserved ] ();
    c "cancellation" ~requires:[ Lowered_2q ]
      ~ensures:[ Size_preserving; Semantics_preserved ]
      ();
    c "unitary_synthesis" ~requires:[ Lowered_2q ]
      ~ensures:[ Size_preserving; Semantics_preserved ]
      ();
    c "route" ~requires:[ Lowered_2q ] ~ensures:[ Routed_for ]
      ~invalidates:[ Size_preserving; Semantics_preserved ]
      ~conflicts:[ Hardware_basis ] ();
    c "basis" ~requires:[ Lowered_2q ]
      ~ensures:[ Hardware_basis; Size_preserving; Semantics_preserved ]
      ();
  ]

let find name = List.find_opt (fun ct -> ct.cname = name) all

let mem p set = List.memq p set
let add p set = if mem p set then set else p :: set
let remove p set = List.filter (fun q -> q != p) set

let validate ?(initial = []) ?(goal = []) names =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let state =
    List.fold_left
      (fun state name ->
        match find name with
        | None ->
            emit
              (Diagnostic.errorf ~loc:(Diagnostic.Stage name) ~rule:"contract.unknown-pass"
                 "unknown pass %S: no contract registered" name);
            state
        | Some ct ->
            List.iter
              (fun p ->
                if not (mem p state) then
                  emit
                    (Diagnostic.errorf ~loc:(Diagnostic.Stage name)
                       ~rule:"contract.requires"
                       "pass %s requires %s, which no earlier stage establishes" name
                       (prop_name p)))
              ct.requires;
            List.iter
              (fun p ->
                if mem p state then
                  emit
                    (Diagnostic.errorf ~loc:(Diagnostic.Stage name)
                       ~rule:"contract.conflict"
                       "pass %s must run before %s is established (illegal ordering)" name
                       (prop_name p)))
              ct.conflicts;
            let state = List.fold_left (fun s p -> remove p s) state ct.invalidates in
            List.fold_left (fun s p -> add p s) state ct.ensures)
      initial names
  in
  List.iter
    (fun p ->
      if not (mem p state) then
        emit
          (Diagnostic.errorf ~rule:"contract.goal"
             "pipeline ends without establishing %s" (prop_name p)))
    goal;
  List.rev !diags
