type severity = Error | Warning | Info

type location =
  | Instr of int
  | Wire of int
  | Source of { line : int; col : int }
  | Stage of string

type t = {
  rule : string;
  severity : severity;
  message : string;
  loc : location option;
}

(* every diagnostic ever constructed is counted, so a traced `check` run
   shows rule traffic next to the pipeline's own counters *)
let c_diags = Qobs.counter "qlint.diagnostics"
let c_errors = Qobs.counter "qlint.errors"

let make severity ?loc ~rule message =
  Qobs.incr c_diags;
  if severity = Error then Qobs.incr c_errors;
  { rule; severity; message; loc }

let error ?loc ~rule message = make Error ?loc ~rule message
let warning ?loc ~rule message = make Warning ?loc ~rule message
let info ?loc ~rule message = make Info ?loc ~rule message

let errorf ?loc ~rule fmt =
  Format.kasprintf (fun message -> error ?loc ~rule message) fmt

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"
let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds
let errors ds = List.filter is_error ds

let pp_location ppf = function
  | Instr i -> Format.fprintf ppf "instr %d" i
  | Wire q -> Format.fprintf ppf "wire %d" q
  | Source { line; col } -> Format.fprintf ppf "line %d, col %d" line col
  | Stage s -> Format.fprintf ppf "stage %s" s

let pp ppf d =
  Format.fprintf ppf "%s[%s]: %s" (severity_name d.severity) d.rule d.message;
  match d.loc with
  | None -> ()
  | Some loc -> Format.fprintf ppf " (%a)" pp_location loc

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  let b = Buffer.create 96 in
  Buffer.add_string b "{\"kind\":\"diagnostic\",\"severity\":\"";
  Buffer.add_string b (severity_name d.severity);
  Buffer.add_string b "\",\"rule\":\"";
  Buffer.add_string b (json_escape d.rule);
  Buffer.add_string b "\",\"message\":\"";
  Buffer.add_string b (json_escape d.message);
  Buffer.add_string b "\"";
  (match d.loc with
  | None -> ()
  | Some (Instr i) -> Buffer.add_string b (Printf.sprintf ",\"instr\":%d" i)
  | Some (Wire q) -> Buffer.add_string b (Printf.sprintf ",\"wire\":%d" q)
  | Some (Source { line; col }) ->
      Buffer.add_string b (Printf.sprintf ",\"line\":%d,\"col\":%d" line col)
  | Some (Stage s) ->
      Buffer.add_string b (Printf.sprintf ",\"stage\":\"%s\"" (json_escape s)));
  Buffer.add_string b "}";
  Buffer.contents b

let pp_summary ppf ~checks ds =
  let count s = List.length (List.filter (fun d -> d.severity = s) ds) in
  Format.fprintf ppf "qlint: %d checks, %d diagnostics (%d errors, %d warnings, %d info)"
    checks (List.length ds) (count Error) (count Warning) (count Info)
