(** Checked execution: verify pass contracts while the pipeline runs.

    The static validator ({!Contract.validate}) proves an ordering legal
    before any gate is touched; this module adds the opt-in dynamic side —
    after every stage, each property the contract dataflow says should hold
    is re-verified on the actual circuit, and violations come back as
    structured diagnostics naming the stage. *)

val canonical_stage_names : router:Qroute.Pipeline.router -> string list
(** The stage sequence {!Qroute.Pipeline.transpile} runs for a router
    (delegates to {!Qroute.Pipeline.stage_names}). *)

val validate_pipeline : router:Qroute.Pipeline.router -> Diagnostic.t list
(** Statically validate the canonical pipeline for [router] against the
    contract registry, with goal {!Contract.Hardware_basis} (plus
    {!Contract.Routed_for} for routing flows).  Empty on the shipped
    pipeline; a refactor that breaks Figure 5's ordering fails here. *)

val run_stages :
  ?coupling:Topology.Coupling.t ->
  ?check_semantics:bool ->
  ?initial:Contract.prop list ->
  Qroute.Pipeline.stage list ->
  Qcircuit.Circuit.t ->
  Qcircuit.Circuit.t * Diagnostic.t list
(** Run the stages, verifying between every pair of stages that all
    properties in the symbolic contract state actually hold:
    {!Contract.Lowered_2q} / {!Contract.Hardware_basis} structurally,
    {!Contract.Routed_for} against [coupling] (skipped without one),
    {!Contract.Size_preserving} as CX-cost non-increase across the stage,
    and — when [check_semantics] is set — {!Contract.Semantics_preserved}
    symbolically via {!Qverify.verify_pair} at any width, falling back to
    dense unitary comparison (at most 8 qubits) only when the symbolic
    checker returns Unknown.
    Requires/conflicts violations are reported too (the stage still runs).
    [initial] (default [[Lowered_2q]]) must hold on the input and seeds the
    symbolic state. *)

val check_result :
  coupling:Topology.Coupling.t ->
  Qroute.Pipeline.result ->
  Diagnostic.t list
(** The full post-hoc rule set over a transpile result: structural rules,
    {!Contract.Lowered_2q} and {!Contract.Hardware_basis} on the final
    circuit, and — when the result carries layouts (i.e. it was routed) —
    layout validity and CheckMap conformance of every two-qubit gate under
    the device coupling map. *)

val verify_result :
  original:Qcircuit.Circuit.t ->
  Qroute.Pipeline.result ->
  Diagnostic.t list
(** [route.semantics]: certify that the transpiled circuit is equivalent
    to [original] under the result's initial/final layouts, using the
    symbolic checker ({!Qverify.verify_routed}) — no simulation, any
    width.  {!Qverify.Not_equivalent} is an error diagnostic (a verified
    transpiler bug, with the first divergent instruction when known);
    {!Qverify.Unknown} is a warning (certification budget exhausted, never
    a claim either way). *)

val transpile :
  ?params:Qroute.Engine.params ->
  ?calibration:Topology.Calibration.t ->
  ?trials:int ->
  ?workers:int ->
  router:Qroute.Pipeline.router ->
  Topology.Coupling.t ->
  Qcircuit.Circuit.t ->
  (Qroute.Pipeline.result, Diagnostic.t list) result
(** Guarded transpile: statically validate the pipeline first and refuse to
    execute ([Error diags]) on an illegal ordering; otherwise run
    {!Qroute.Pipeline.transpile} and verify the result with
    {!check_result}, returning [Error] when any check fails.
    {!Qroute.Engine.Routing_stuck} is caught and reported as a
    [route.stuck] diagnostic instead of escaping. *)
