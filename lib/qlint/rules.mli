(** Rule-based verifiers over circuits, DAGs and routed output.

    Each rule re-derives an invariant from first principles instead of
    trusting the constructors that are supposed to enforce it, and reports
    violations as {!Diagnostic.t} values carrying the offending instruction
    id (or wire).  Rule ids are stable strings ([qubit.bounds],
    [gate.arity], [route.check-map], ...) so tests can assert that a bad
    input trips {e exactly} its intended rule. *)

val structural : n:int -> Qcircuit.Circuit.instr list -> Diagnostic.t list
(** Instruction-level legality over a raw instruction list (usable before a
    {!Qcircuit.Circuit.t} can even be built): qubit-index bounds
    ([qubit.bounds]), gate arity ([gate.arity]) and repeated operands
    ([gate.repeated-qubit]). *)

val dag_consistency : Qcircuit.Circuit.t -> Diagnostic.t list
(** Wire consistency and acyclicity of the circuit's DAG view: every
    predecessor edge is mirrored by a successor edge on the same wire
    ([wire.consistency]) and all dependencies point backwards in the
    instruction order, i.e. the graph is acyclic ([dag.acyclic]). *)

val lowered_2q : Qcircuit.Circuit.t -> Diagnostic.t list
(** [basis.two-qubit]: every non-directive gate acts on at most 2 qubits
    (the contract {!Contract.Lowered_2q}). *)

val hardware_basis : Qcircuit.Circuit.t -> Diagnostic.t list
(** [basis.hardware]: every gate is in the hardware basis {rz, sx, x, cx}
    plus directives (the contract {!Contract.Hardware_basis}). *)

val dead_gates : Qcircuit.Circuit.t -> Diagnostic.t list
(** [gate.dead] (warning): gates that provably do nothing — parameterized
    gates whose angles make them the identity up to global phase (RZ(0),
    U(0,0,0), P(2pi), ...) and adjacent self-inverse pairs on the same
    operand list (X;X, CX a b;CX a b, H;H, ...) with no intervening gate
    on any shared wire.  Dead gates are legal, hence a warning: they cost
    depth (and fidelity on hardware) without effect, and routed output
    containing them usually indicates a missed peephole. *)

val check_map : Topology.Coupling.t -> Qcircuit.Circuit.t -> Diagnostic.t list
(** CheckMap ([route.check-map]): the circuit fits on the device and every
    two-qubit gate acts on a coupled physical pair. *)

val layout : Topology.Coupling.t -> int array -> Diagnostic.t list
(** [route.layout]: the layout is an injection of logical qubits into the
    device's physical qubits (in range, no duplicates). *)

val distmat : Topology.Distmat.t -> Diagnostic.t list
(** [distmat.legacy] (warning): the distance matrix about to be handed to a
    router came through the nested-rows compatibility constructor
    ({!Topology.Distmat.of_rows}) instead of a flat-native one
    ({!Topology.Distmat.hops}, [Calibration.noise_distmat],
    {!Topology.Distmat.of_flat}).  Legacy matrices route correctly but pay a
    copy on construction, and their use is also surfaced at runtime by the
    engine counter [engine.legacy_distmat_routes]. *)

val check_circuit :
  ?coupling:Topology.Coupling.t ->
  ?props:Contract.prop list ->
  Qcircuit.Circuit.t ->
  Diagnostic.t list
(** The full structural rule set ({!structural} + {!dag_consistency} +
    {!dead_gates}), plus
    the checker for each property in [props] ({!Contract.Routed_for} needs
    [coupling] and is skipped with a warning otherwise; the relational
    properties have no single-circuit checker and are ignored here). *)

val lint_qasm : ?path:string -> string -> (Qcircuit.Circuit.t, Diagnostic.t) result
(** Parse an OpenQASM 2 program; a parse failure becomes a [qasm.parse]
    diagnostic carrying the source line/column. *)

val lint_qasm_file : string -> (Qcircuit.Circuit.t, Diagnostic.t) result

val checks_run : unit -> int
(** Process-wide count of rule invocations (also exported as the Qobs
    counter [qlint.checks]). *)
