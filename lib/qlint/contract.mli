(** Pass contracts: the property lattice and the static pipeline validator.

    Every transpiler pass declares which circuit properties it [requires]
    on its input, which it [ensures] on its output, which it [invalidates],
    and which it [conflicts] with (properties that must {e not} hold yet —
    e.g. routing must not run after hardware-basis emission, Figure 5 of
    the paper fixes that ordering).  Properties not named in [ensures] or
    [invalidates] are preserved.

    {!validate} runs the resulting dataflow over a pass-name sequence and
    rejects illegal orderings {e before any gate is touched}: a pass whose
    requirement is unmet, a pass conflicting with an established property,
    an unknown pass name, or a pipeline that ends without its goal
    properties all produce [Error] diagnostics located at the offending
    stage. *)

type prop =
  | Lowered_2q
      (** every instruction acts on at most two qubits (directives exempt):
          the shape routing and the 2q-block passes require *)
  | Routed_for
      (** every two-qubit gate acts on a coupled physical pair of the
          device coupling map in scope (CheckMap) *)
  | Hardware_basis  (** only {rz, sx, x, cx} plus directives remain *)
  | Size_preserving
      (** relational: the stage did not increase the circuit's CX-basis
          cost (what "optimization" means in gate counts) *)
  | Semantics_preserved
      (** relational: the stage preserved the circuit unitary (verified on
          small circuits in checked mode) *)

val prop_name : prop -> string

type t = {
  cname : string;  (** stage name as it appears in {!Qroute.Pipeline} *)
  requires : prop list;
  ensures : prop list;
  invalidates : prop list;
  conflicts : prop list;
}

val all : t list
(** The contract registry: one entry per pass/stage the pipeline can run
    ([lower_to_2q], [peephole], [optimize_1q.u], [optimize_1q.zsx],
    [cancellation], [unitary_synthesis], [route], [basis]). *)

val find : string -> t option

val validate :
  ?initial:prop list -> ?goal:prop list -> string list -> Diagnostic.t list
(** [validate ~initial ~goal names] symbolically executes the contract
    dataflow over the pass sequence.  [initial] (default [[]]) is the
    property set of the input circuit; [goal] (default [[]]) must hold
    after the last stage.  Returns only the violations (empty = legal). *)
