open Qgate
open Mathkit

type report = {
  pairs_checked : int;
  scenarios_checked : int;
  diags : Diagnostic.t list;
}

let c_pairs = Qobs.counter "qlint.audit_pairs"
let c_scenarios = Qobs.counter "qlint.audit_scenarios"

let instr gate qubits = { Qcircuit.Circuit.gate; qubits }

let pp_app ppf (g, qs) =
  Format.fprintf ppf "%s[%s]" (Gate.name g)
    (String.concat "," (List.map string_of_int qs))

(* ---- commutation tables ---- *)

let gates_1q =
  [
    Gate.Id; Gate.X; Gate.Y; Gate.Z; Gate.H; Gate.S; Gate.Sdg; Gate.T; Gate.Tdg;
    Gate.SX; Gate.SXdg; Gate.RX 0.3; Gate.RY 0.7; Gate.RZ 1.1; Gate.P 0.4;
    Gate.U (0.3, 0.2, 0.1);
  ]

let gates_2q =
  [
    Gate.CX; Gate.CY; Gate.CZ; Gate.CH; Gate.SWAP; Gate.CRX 0.5; Gate.CRY 0.2;
    Gate.CRZ 0.9; Gate.CP 0.6; Gate.RZZ 0.8;
  ]

(* all qubit-overlap patterns the routing walks can produce, as (qs1, qs2)
   templates per arity pair *)
let patterns a1 a2 =
  match (a1, a2) with
  | 1, 1 -> [ ([ 0 ], [ 0 ]); ([ 0 ], [ 1 ]) ]
  | 1, 2 -> [ ([ 0 ], [ 0; 1 ]); ([ 1 ], [ 0; 1 ]) ]
  | 2, 1 -> [ ([ 0; 1 ], [ 0 ]); ([ 0; 1 ], [ 1 ]) ]
  | 2, 2 ->
      [
        ([ 0; 1 ], [ 0; 1 ]); ([ 0; 1 ], [ 1; 0 ]); ([ 0; 1 ], [ 1; 2 ]);
        ([ 0; 1 ], [ 2; 1 ]); ([ 0; 1 ], [ 0; 2 ]); ([ 0; 1 ], [ 2; 0 ]);
      ]
  | _ -> []

let commutation_tables () =
  let pairs = ref 0 in
  let diags = ref [] in
  let check (g1, qs1) (g2, qs2) =
    incr pairs;
    Qobs.incr c_pairs;
    let n = 1 + List.fold_left max 0 (qs1 @ qs2) in
    let c12 = Qcircuit.Circuit.create n [ instr g1 qs1; instr g2 qs2 ] in
    let c21 = Qcircuit.Circuit.create n [ instr g2 qs2; instr g1 qs1 ] in
    (* ground truth: exact commutation of the composed circuit unitaries,
       computed through the circuit-semantics path rather than the pass's
       own pairwise embedding *)
    let exact =
      Mat.frobenius_distance (Qcircuit.Circuit.unitary c12) (Qcircuit.Circuit.unitary c21)
      < 1e-9
    in
    let claimed = Qpasses.Commutation.commute (g1, qs1) (g2, qs2) in
    if claimed <> exact then
      diags :=
        Diagnostic.errorf ~rule:"audit.commutation"
          "commute %a vs %a: table says %b, ground truth %b" pp_app (g1, qs1) pp_app
          (g2, qs2) claimed exact
        :: !diags;
    if claimed && not (Qsim.Equiv.unitary_equal c12 c21) then
      diags :=
        Diagnostic.errorf ~rule:"audit.commutation"
          "commute %a vs %a: claimed commuting but reordering changes semantics" pp_app
          (g1, qs1) pp_app (g2, qs2)
        :: !diags
  in
  let catalog = List.map (fun g -> (g, 1)) gates_1q @ List.map (fun g -> (g, 2)) gates_2q in
  List.iter
    (fun (g1, a1) ->
      List.iter
        (fun (g2, a2) ->
          List.iter (fun (qs1, qs2) -> check (g1, qs1) (g2, qs2)) (patterns a1 a2))
        catalog)
    catalog;
  { pairs_checked = !pairs; scenarios_checked = 0; diags = List.rev !diags }

(* ---- savings estimates (paper eq. 1) ---- *)

let swap_u = Unitary.of_gate Gate.SWAP

let count_cx ops = List.length (List.filter (fun (g, _) -> g = Gate.CX) ops)

let circuit_of_ops ops =
  Qcircuit.Circuit.create 2 (List.map (fun (g, qs) -> instr g qs) ops)

(* one 2q unitary: fast chamber classification = exact classification =
   CNOTs the synthesizer actually spends, and the synthesis reconstructs
   the input *)
let audit_unitary ~what diags u =
  let fast = Qpasses.Weyl.cnot_cost_fast u in
  let exact = Qpasses.Weyl.cnot_cost u in
  if fast <> exact then
    diags :=
      Diagnostic.errorf ~rule:"audit.savings"
        "%s: cnot_cost_fast says %d, eigendecomposition says %d" what fast exact
      :: !diags;
  let ops = Qpasses.Synth2q.synthesize u in
  let spent = count_cx ops in
  if spent <> exact then
    diags :=
      Diagnostic.errorf ~rule:"audit.savings"
        "%s: synthesis spends %d CNOTs, chamber position says %d" what spent exact
      :: !diags;
  if not (Mat.equal_up_to_phase (Qpasses.Synth2q.ops_unitary 2 ops) u) then
    diags :=
      Diagnostic.errorf ~rule:"audit.savings"
        "%s: synthesized circuit does not reconstruct the unitary" what
      :: !diags;
  exact

let dress rng u =
  let k1 = Mat.kron (Randmat.su2 rng) (Randmat.su2 rng) in
  let k2 = Mat.kron (Randmat.su2 rng) (Randmat.su2 rng) in
  Mat.mul k1 (Mat.mul u k2)

let cx a b = instr Gate.CX [ a; b ]

let cancellation_savings full =
  let opt = Qpasses.Cancellation.run_fixpoint full in
  (Qcircuit.Circuit.cx_count full - Qcircuit.Circuit.cx_count opt, opt)

let savings ?(seed = 2022) ?(samples = 12) () =
  let rng = Rng.create seed in
  let scenarios = ref 0 in
  let diags = ref [] in
  let scenario () =
    incr scenarios;
    Qobs.incr c_scenarios
  in
  (* chamber classes: a representative per minimal CNOT count, dressed in
     random locals so the classification (not the construction) is tested *)
  let classes =
    [
      ("0-cnot class", Qpasses.Weyl.canonical_gate 0.0 0.0 0.0);
      ("1-cnot class", Qpasses.Weyl.canonical_gate (Float.pi /. 4.0) 0.0 0.0);
      ("2-cnot class", Qpasses.Weyl.canonical_gate 0.7 0.3 0.0);
      ("3-cnot class", Qpasses.Weyl.canonical_gate 0.7 0.5 0.2);
    ]
  in
  List.iter
    (fun (what, n_gate) ->
      scenario ();
      ignore (audit_unitary ~what diags (dress rng n_gate)))
    classes;
  (* C_2q: the SWAP-merge bonus (cost(B) + 3) - cost(SWAP.B) equals the
     CNOTs re-synthesis actually recovers, and merging preserves semantics *)
  for k = 1 to samples do
    scenario ();
    let b = Randmat.su4 rng in
    let merged = Mat.mul swap_u b in
    let what = Printf.sprintf "c2q sample %d" k in
    let cost_b = audit_unitary ~what:(what ^ " (block)") diags b in
    let cost_m = audit_unitary ~what:(what ^ " (merged)") diags merged in
    let claimed =
      max 0 (Qpasses.Weyl.cnot_cost_fast b + 3 - Qpasses.Weyl.cnot_cost_fast merged)
    in
    if claimed <> max 0 (cost_b + 3 - cost_m) then
      diags :=
        Diagnostic.errorf ~rule:"audit.savings"
          "%s: C_2q bonus %d disagrees with realized synthesis savings %d" what claimed
          (max 0 (cost_b + 3 - cost_m))
        :: !diags;
    let separate =
      Qcircuit.Circuit.create 2
        [ instr (Gate.Unitary2 b) [ 0; 1 ]; cx 0 1; cx 1 0; cx 0 1 ]
    in
    let merged_c = circuit_of_ops (Qpasses.Synth2q.synthesize merged) in
    if not (Qsim.Equiv.unitary_equal separate merged_c) then
      diags :=
        Diagnostic.errorf ~rule:"audit.savings" "%s: merged block changes semantics" what
        :: !diags
  done;
  (* C_commute1 = 2: the oriented SWAP's first CNOT cancels an earlier
     cx(c,t), possibly through commuting gates in between *)
  List.iter
    (fun (what, between) ->
      scenario ();
      let full =
        Qcircuit.Circuit.create 2 (((cx 0 1 :: between) @ [ cx 0 1; cx 1 0; cx 0 1 ]))
      in
      let saved, opt = cancellation_savings full in
      if saved <> 2 then
        diags :=
          Diagnostic.errorf ~rule:"audit.savings"
            "%s: C_commute1 claims 2 saved CNOTs, cancellation realized %d" what saved
          :: !diags;
      if not (Qsim.Equiv.unitary_equal full opt) then
        diags :=
          Diagnostic.errorf ~rule:"audit.savings" "%s: cancellation changed semantics" what
          :: !diags)
    [
      ("commute1 adjacent", []);
      ("commute1 through rz on control", [ instr (Gate.RZ 0.7) [ 0 ] ]);
      ("commute1 through x on target", [ instr Gate.X [ 1 ] ]);
    ];
  (* C_commute2 = 2: two same-pair SWAPs sandwiching a commuting gate lose
     one CNOT each *)
  List.iter
    (fun (what, middle) ->
      scenario ();
      let swap_dec = [ cx 0 1; cx 1 0; cx 0 1 ] in
      let full = Qcircuit.Circuit.create 2 (swap_dec @ middle @ swap_dec) in
      let saved, opt = cancellation_savings full in
      if saved < 2 then
        diags :=
          Diagnostic.errorf ~rule:"audit.savings"
            "%s: C_commute2 claims >= 2 saved CNOTs, cancellation realized %d" what saved
          :: !diags;
      if not (Qsim.Equiv.unitary_equal full opt) then
        diags :=
          Diagnostic.errorf ~rule:"audit.savings" "%s: cancellation changed semantics" what
          :: !diags)
    [
      ("commute2 sandwiched cx", [ cx 0 1 ]);
      ("commute2 empty sandwich", []);
    ];
  (* the optimization-aware decomposition itself: an oriented SWAP (with 1q
     gates pulled through) must still implement SWAP *)
  List.iter
    (fun (what, ops, reference) ->
      scenario ();
      let finalized =
        Qcircuit.Circuit.create 2 (Qroute.Nassc.finalize ops)
      in
      if not (Qsim.Equiv.unitary_equal finalized reference) then
        diags :=
          Diagnostic.errorf ~rule:"audit.savings"
            "%s: oriented SWAP decomposition changes semantics" what
          :: !diags)
    [
      ( "oriented swap (1,0)",
        [ { Qroute.Engine.gate = Gate.SWAP; op_qubits = [ 0; 1 ];
            tag = Qroute.Engine.Swap_orient (1, 0) } ],
        Qcircuit.Circuit.create 2 [ instr Gate.SWAP [ 0; 1 ] ] );
      ( "oriented swap pulls 1q through",
        [ { Qroute.Engine.gate = Gate.H; op_qubits = [ 0 ];
            tag = Qroute.Engine.Not_swap };
          { Qroute.Engine.gate = Gate.SWAP; op_qubits = [ 0; 1 ];
            tag = Qroute.Engine.Swap_orient (0, 1) } ],
        Qcircuit.Circuit.create 2 [ instr Gate.H [ 0 ]; instr Gate.SWAP [ 0; 1 ] ] );
    ];
  { pairs_checked = 0; scenarios_checked = !scenarios; diags = List.rev !diags }

(* ---- optimality: no router may beat the exact oracle ----

   The oracle's free-layout minimum is a hard floor for any router's
   inserted-swap count; a router below it means either the oracle's
   search is unsound or the router's swap accounting lies.  Audited on a
   handful of gap-corpus instances small enough that certification is
   milliseconds, so this runs in the same CI lint job as the other
   audits. *)

let optimality ?(seed = 11) () =
  let scenarios = ref 0 in
  let diags = ref [] in
  let params = { Qroute.Engine.default_params with seed } in
  let routers =
    [
      ("sabre", Qroute.Pipeline.Sabre_router);
      ("nassc", Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config);
      ("astar", Qroute.Pipeline.Astar_router);
      ("hybrid", Qroute.Pipeline.Hybrid_router Qroute.Hybrid.default_config);
    ]
  in
  let entry name =
    List.find (fun (e : Qbench.Gapcorpus.entry) -> e.name = name)
      Qbench.Gapcorpus.circuits
  in
  let instances = [ "ghz4"; "qft4"; "bv4" ] in
  let topologies =
    List.filter
      (fun (t, _) -> t = "line5" || t = "ring5")
      Qbench.Gapcorpus.topologies
  in
  List.iter
    (fun cname ->
      let e = entry cname in
      let logical =
        Qroute.Pipeline.pre_optimize (Qroute.Pipeline.lower_to_2q (e.build ()))
      in
      List.iter
        (fun (tname, coupling) ->
          incr scenarios;
          Qobs.incr c_scenarios;
          match Qroute.Exact.min_swaps coupling logical with
          | Qroute.Exact.Route_budget_exceeded ->
              diags :=
                Diagnostic.errorf ~rule:"audit.optimality"
                  "%s/%s: oracle budget exceeded on an audit-sized instance" cname
                  tname
                :: !diags
          | Qroute.Exact.Routed { n_swaps = optimal; _ } ->
              List.iter
                (fun (rname, router) ->
                  let r =
                    Qroute.Pipeline.transpile ~params ~trials:1 ~router coupling
                      (e.build ())
                  in
                  if r.Qroute.Pipeline.n_swaps < optimal then
                    diags :=
                      Diagnostic.errorf ~rule:"audit.optimality"
                        "%s/%s: %s inserted %d swaps, below the certified optimum %d"
                        cname tname rname r.Qroute.Pipeline.n_swaps optimal
                      :: !diags)
                routers)
        topologies)
    instances;
  { pairs_checked = 0; scenarios_checked = !scenarios; diags = List.rev !diags }

let run ?seed () =
  let a = commutation_tables () in
  let b = savings ?seed () in
  let c = optimality ?seed () in
  {
    pairs_checked = a.pairs_checked;
    scenarios_checked = b.scenarios_checked + c.scenarios_checked;
    diags = a.diags @ b.diags @ c.diags;
  }
