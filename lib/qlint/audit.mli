(** Machine-checking the heuristic's inputs (paper eq. 1).

    NASSC's cost model trusts two ingredients: the pairwise commutation
    relation ({!Qpasses.Commutation.commute}) and the CNOT-savings
    estimates [C_2q] / [C_commute1] / [C_commute2].  This audit verifies
    both against small-unitary ground truth:

    - {!commutation_tables} sweeps the whole gate vocabulary over every
      qubit-overlap pattern and checks each claimed answer against an
      independent dense-unitary computation; every pair claimed commuting
      must additionally satisfy {!Qsim.Equiv.unitary_equal} under
      reordering — the semantic fact downstream cancellation relies on.
    - {!savings} checks the Weyl-chamber CNOT cost (fast invariant path vs
      exact eigendecomposition vs the CNOTs {!Qpasses.Synth2q.synthesize}
      actually emits, with the synthesis verified to reconstruct its input),
      the [C_2q] merge bonus [(cost(B) + 3) - cost(SWAP.B)] against
      realized re-synthesis on random blocks, and the [C_commute1] /
      [C_commute2] cancellation claims against what
      {!Qpasses.Cancellation} actually removes on witness fragments. *)

type report = {
  pairs_checked : int;  (** commutation pairs audited *)
  scenarios_checked : int;  (** savings scenarios audited *)
  diags : Diagnostic.t list;  (** violations; empty = the tables are sound *)
}

val commutation_tables : unit -> report
val savings : ?seed:int -> ?samples:int -> unit -> report

val optimality : ?seed:int -> unit -> report
(** Routes a few gap-corpus instances with every router and certifies the
    optimum with {!Qroute.Exact.min_swaps}: any router inserting fewer
    SWAPs than the oracle's free-layout minimum is a soundness violation
    (of the oracle or of the router's swap accounting) and is reported as
    an [audit.optimality] error. *)

val run : ?seed:int -> unit -> report
(** All three audits; [diags] concatenated. *)
