(* Prometheus/OpenMetrics text exposition over a Qobs trace.

   The format is line-oriented and self-describing:

     # HELP nassc_engine_swaps_emitted_total Qobs counter engine.swaps_emitted
     # TYPE nassc_engine_swaps_emitted_total counter
     nassc_engine_swaps_emitted_total 106

   Histograms use the cumulative convention: each _bucket{le="U"} series
   carries the count of observations <= U, ending with le="+Inf" equal to
   _count.  We emit one bucket per shared Hist bucket boundary up to the
   last occupied bucket (145 always-zero lines per histogram would drown
   the page), which is valid: scrapers only require cumulative
   monotonicity and a +Inf bucket. *)

let valid_char = function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false

let metric_name ?(prefix = "nassc_") name =
  prefix ^ String.map (fun c -> if valid_char c then c else '_') name

(* shortest-round-trip float rendering, shared with the BENCH snapshots *)
let num = Qbench.Jsonlite.number_to_string

let help_escape s =
  (* HELP text is free-form to end of line; escape backslash and newline *)
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let family buf name kind help =
  Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name (help_escape help));
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)

(* gauge series: one per (name, trial) key; a later collector in preorder
   overwrites an earlier one with the same key (matching the last-write-wins
   semantics of Qobs.gauge_set), so e.g. a root and a session child that
   both set pipeline.cx_in collapse into one series instead of a duplicate *)
let gauge_series trace =
  let tbl : (string * int option, float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun c ->
      let trial = Qobs.Collector.trial c in
      List.iter
        (fun (name, v) -> Hashtbl.replace tbl (name, trial) v)
        (Qobs.Collector.gauges c))
    (Qobs.Trace.collectors trace);
  let names =
    Hashtbl.fold (fun (n, _) _ acc -> if List.mem n acc then acc else n :: acc) tbl []
    |> List.sort compare
  in
  List.map
    (fun name ->
      let series =
        Hashtbl.fold
          (fun (n, trial) v acc -> if n = name then (trial, v) :: acc else acc)
          tbl []
        |> List.sort compare
      in
      (name, series))
    names

let to_string ?prefix trace =
  let buf = Buffer.create 4096 in
  (* counters: registry totals over the whole trace, sorted by name *)
  List.iter
    (fun (name, v) ->
      let m = metric_name ?prefix name ^ "_total" in
      family buf m "counter" ("Qobs counter " ^ name);
      Buffer.add_string buf (Printf.sprintf "%s %d\n" m v))
    (Qobs.Trace.counters_total trace);
  (* gauges: one series per (name, trial), trial-labelled *)
  List.iter
    (fun (name, series) ->
      let m = metric_name ?prefix name in
      family buf m "gauge" ("Qobs gauge " ^ name);
      List.iter
        (fun (trial, v) ->
          match trial with
          | None -> Buffer.add_string buf (Printf.sprintf "%s %s\n" m (num v))
          | Some k ->
              Buffer.add_string buf (Printf.sprintf "%s{trial=\"%d\"} %s\n" m k (num v)))
        series)
    (gauge_series trace);
  (* histograms: merged totals, cumulative buckets *)
  List.iter
    (fun (name, h) ->
      let m = metric_name ?prefix name in
      family buf m "histogram" ("Qobs histogram " ^ name);
      let cum = ref 0 in
      List.iter
        (fun (i, c) ->
          cum := !cum + c;
          let _, upper = Qobs.Hist.bucket_bounds i in
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" m (num upper) !cum))
        (Qobs.Hist.nonzero_buckets h);
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" m (Qobs.Hist.count h));
      Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" m (num (Qobs.Hist.sum h)));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" m (Qobs.Hist.count h)))
    (Qobs.Trace.histograms_total trace);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let write ?prefix ~dest trace =
  let s = to_string ?prefix trace in
  match dest with
  | "-" -> output_string stderr s
  | file ->
      let oc = open_out file in
      output_string oc s;
      close_out oc
