(* Validator for Prometheus/OpenMetrics text pages.

   Hand-rolled line parser: the format is simple enough (one sample or
   comment per line) that a few string scans beat pulling in a grammar, and
   the validator must not depend on the exporter it is checking. *)

type error = { line : int; msg : string }

type sample = { s_line : int; s_name : string; s_labels : (string * string) list; s_value : float }

let name_ok name =
  name <> ""
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name

(* split a k1=...,k2=... label body with quoted values; values may contain
   anything except an unescaped quote, and we unescape backslash sequences *)
let parse_labels lineno s =
  let fail msg = Error { line = lineno; msg } in
  let n = String.length s in
  let rec pairs i acc =
    if i >= n then Ok (List.rev acc)
    else
      match String.index_from_opt s i '=' with
      | None -> fail "label without '='"
      | Some eq ->
          let key = String.sub s i (eq - i) in
          if eq + 1 >= n || s.[eq + 1] <> '"' then fail "label value not quoted"
          else begin
            let b = Buffer.create 16 in
            let rec scan j =
              if j >= n then fail "unterminated label value"
              else
                match s.[j] with
                | '\\' when j + 1 < n ->
                    Buffer.add_char b
                      (match s.[j + 1] with 'n' -> '\n' | c -> c);
                    scan (j + 2)
                | '"' -> Ok j
                | c ->
                    Buffer.add_char b c;
                    scan (j + 1)
            in
            match scan (eq + 2) with
            | Error e -> Error e
            | Ok close ->
                let acc = (key, Buffer.contents b) :: acc in
                if close + 1 >= n then Ok (List.rev acc)
                else if s.[close + 1] = ',' then pairs (close + 2) acc
                else fail "garbage after label value"
          end
  in
  pairs 0 []

let parse_sample lineno line =
  let fail msg = Error { line = lineno; msg } in
  match String.index_opt line '{' with
  | Some brace -> begin
      match String.rindex_opt line '}' with
      | None -> fail "unmatched '{'"
      | Some close when close < brace -> fail "unmatched '{'"
      | Some close ->
          let name = String.sub line 0 brace in
          let labels_s = String.sub line (brace + 1) (close - brace - 1) in
          let rest = String.trim (String.sub line (close + 1) (String.length line - close - 1)) in
          let value_s =
            match String.index_opt rest ' ' with
            | Some sp -> String.sub rest 0 sp (* a timestamp may follow *)
            | None -> rest
          in
          (match parse_labels lineno labels_s with
          | Error e -> Error e
          | Ok labels -> (
              match float_of_string_opt value_s with
              | None -> fail (Printf.sprintf "value %S does not parse as a float" value_s)
              | Some v ->
                  Ok { s_line = lineno; s_name = name; s_labels = List.sort compare labels; s_value = v }))
    end
  | None -> (
      match String.index_opt line ' ' with
      | None -> fail "sample line without a value"
      | Some sp ->
          let name = String.sub line 0 sp in
          let rest = String.trim (String.sub line (sp + 1) (String.length line - sp - 1)) in
          let value_s =
            match String.index_opt rest ' ' with Some i -> String.sub rest 0 i | None -> rest
          in
          (match float_of_string_opt value_s with
          | None -> fail (Printf.sprintf "value %S does not parse as a float" value_s)
          | Some v -> Ok { s_line = lineno; s_name = name; s_labels = []; s_value = v }))

type decl = { d_line : int; d_name : string; d_value : string }

(* split the page into TYPE decls, HELP decls and samples *)
let scan page =
  let types = ref [] and helps = ref [] and samples = ref [] and errs = ref [] in
  let lines = String.split_on_char '\n' page in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line = "" || line = "# EOF" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        let rest = String.sub line 7 (String.length line - 7) in
        match String.index_opt rest ' ' with
        | None -> errs := { line = lineno; msg = "# TYPE without a kind" } :: !errs
        | Some sp ->
            types :=
              {
                d_line = lineno;
                d_name = String.sub rest 0 sp;
                d_value = String.trim (String.sub rest (sp + 1) (String.length rest - sp - 1));
              }
              :: !types
      end
      else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
        let rest = String.sub line 7 (String.length line - 7) in
        let name = match String.index_opt rest ' ' with Some sp -> String.sub rest 0 sp | None -> rest in
        helps := { d_line = lineno; d_name = name; d_value = "" } :: !helps
      end
      else if String.length line >= 1 && line.[0] = '#' then () (* other comment *)
      else
        match parse_sample lineno line with
        | Ok s -> samples := s :: !samples
        | Error e -> errs := e :: !errs)
    lines;
  (List.rev !types, List.rev !helps, List.rev !samples, List.rev !errs)

let known_kinds = [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ]

let strip_suffix name suffix =
  let nl = String.length name and sl = String.length suffix in
  if nl > sl && String.sub name (nl - sl) sl = suffix then Some (String.sub name 0 (nl - sl))
  else None

(* the family a series belongs to: histogram component suffixes map back to
   the base name when (and only when) the base is declared a histogram *)
let family_of types name =
  let declared n = List.exists (fun d -> d.d_name = n) types in
  let histo n =
    List.exists (fun d -> d.d_name = n && d.d_value = "histogram") types
  in
  let try_suffix suffix =
    match strip_suffix name suffix with Some base when histo base -> Some base | _ -> None
  in
  if declared name then Some name
  else
    match try_suffix "_bucket" with
    | Some b -> Some b
    | None -> (
        match try_suffix "_sum" with
        | Some b -> Some b
        | None -> ( match try_suffix "_count" with Some b -> Some b | None -> None))

let lint page =
  let types, helps, samples, errs = scan page in
  let errs = ref errs in
  let err line fmt = Printf.ksprintf (fun msg -> errs := { line; msg } :: !errs) fmt in
  (* declarations *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun d ->
      if not (name_ok d.d_name) then err d.d_line "invalid metric name %S" d.d_name;
      if not (List.mem d.d_value known_kinds) then
        err d.d_line "unknown TYPE kind %S for %s" d.d_value d.d_name;
      if Hashtbl.mem seen d.d_name then err d.d_line "duplicate # TYPE for %s" d.d_name;
      Hashtbl.replace seen d.d_name ())
    types;
  let seen_help = Hashtbl.create 16 in
  List.iter
    (fun d ->
      if Hashtbl.mem seen_help d.d_name then err d.d_line "duplicate # HELP for %s" d.d_name;
      Hashtbl.replace seen_help d.d_name ())
    helps;
  (* samples: naming, family membership, duplicates *)
  let series_seen = Hashtbl.create 64 in
  List.iter
    (fun s ->
      if not (name_ok s.s_name) then err s.s_line "invalid metric name %S" s.s_name;
      (match family_of types s.s_name with
      | None -> err s.s_line "series %s has no # TYPE declaration" s.s_name
      | Some fam ->
          if not (List.exists (fun d -> d.d_name = fam) helps) then
            err s.s_line "series %s has no # HELP declaration" s.s_name);
      let key = (s.s_name, s.s_labels) in
      if Hashtbl.mem series_seen key then
        err s.s_line "duplicate series %s{%s}" s.s_name
          (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) s.s_labels));
      Hashtbl.replace series_seen key ())
    samples;
  (* histograms: cumulative monotone buckets, +Inf present and = _count *)
  List.iter
    (fun d ->
      if d.d_value = "histogram" then begin
        let bucket_name = d.d_name ^ "_bucket" in
        let buckets =
          List.filter_map
            (fun s ->
              if s.s_name = bucket_name then
                match List.assoc_opt "le" s.s_labels with
                | Some le -> Some (le, s)
                | None ->
                    err s.s_line "bucket of %s without an le label" d.d_name;
                    None
              else None)
            samples
        in
        let le_value = function
          | "+Inf" -> infinity
          | le -> ( match float_of_string_opt le with Some f -> f | None -> nan)
        in
        let sorted =
          List.sort (fun (a, _) (b, _) -> compare (le_value a) (le_value b)) buckets
        in
        let rec monotone = function
          | (le1, s1) :: ((_, s2) :: _ as rest) ->
              if s2.s_value < s1.s_value then
                err s2.s_line "histogram %s buckets not cumulative after le=%s" d.d_name le1;
              monotone rest
          | _ -> ()
        in
        monotone sorted;
        (match List.assoc_opt "+Inf" (List.map (fun (le, s) -> (le, s)) buckets) with
        | None -> err d.d_line "histogram %s has no le=\"+Inf\" bucket" d.d_name
        | Some inf_bucket -> (
            match List.find_opt (fun s -> s.s_name = d.d_name ^ "_count") samples with
            | Some count when count.s_value <> inf_bucket.s_value ->
                err inf_bucket.s_line "histogram %s +Inf bucket (%g) <> _count (%g)"
                  d.d_name inf_bucket.s_value count.s_value
            | Some _ -> ()
            | None -> err d.d_line "histogram %s has no _count series" d.d_name))
      end)
    types;
  List.sort (fun a b -> compare (a.line, a.msg) (b.line, b.msg)) !errs

let parse_series page =
  let _, _, samples, errs = scan page in
  (match errs with
  | [] -> ()
  | e :: _ -> failwith (Printf.sprintf "line %d: %s" e.line e.msg));
  List.map (fun s -> (s.s_name, s.s_labels, s.s_value)) samples
