(** Opt-in background resource sampler: GC statistics, resident-set size
    and routing-pool utilization on a timeline.

    A single extra domain wakes every [interval_ms], records one {!sample}
    into a bounded ring buffer (oldest overwritten first — memory is
    constant however long the process runs), and goes back to sleep.  Each
    sample carries [Gc.quick_stat] words/heap/compactions, VmRSS/VmHWM
    parsed from [/proc/self/status] (0 on platforms without procfs), CPU
    time, and {!Qroute.Trials.inflight} — the live trial count of the
    routing pool, which is the utilization signal the future serve daemon
    needs.

    Discipline mirrors {!Qobs.set_timing}: disabled by default, and when
    disabled {!start} is a single atomic load returning [None] — no domain
    is spawned, nothing allocates, traces stay byte-identical.  Values are
    wall-clock-driven and therefore nondeterministic; they only ever reach
    a trace through {!attach}, which the caller invokes explicitly
    ([--sample]). *)

type sample = {
  t_s : float;  (** seconds since {!start} *)
  cpu_s : float;  (** process CPU seconds at the sample *)
  minor_words : float;
  major_words : float;
  heap_words : int;
  compactions : int;
  rss_kb : int;  (** current VmRSS in kB; 0 without procfs *)
  hwm_kb : int;  (** peak VmHWM in kB; 0 without procfs *)
  inflight : int;  (** {!Qroute.Trials.inflight} at the sample *)
}

type t

val set_enabled : bool -> unit
(** Process-wide master switch (default off). *)

val enabled : unit -> bool

val start : ?interval_ms:float -> ?capacity:int -> unit -> t option
(** Spawn the sampler domain and take a first sample immediately.  [None]
    without {!set_enabled} — the disabled path touches one atomic and
    allocates nothing.  [interval_ms] defaults to 10 ms, [capacity] (ring
    size) to 4096 samples. *)

val stop : t -> unit
(** Take a final sample, stop the domain and join it.  Idempotent. *)

val samples : t -> sample list
(** Chronological retained samples (the ring keeps the newest
    [capacity]).  Call after {!stop}; during a run it returns a consistent
    snapshot under the ring's lock. *)

val peak_rss_kb : t -> int
(** Highest RSS seen across retained samples (VmHWM when available). *)

val max_inflight : t -> int
(** Peak pool utilization across retained samples. *)

val attach : t -> Qobs.Collector.t -> unit
(** Merge the run's resource story into a collector as [qtel.*] gauges
    (sample count, peak/final RSS, GC words and compactions deltas, peak
    inflight, sampled wall seconds) plus a [qtel.sample.rss_kb] histogram
    of the per-sample RSS timeline.  Values are nondeterministic — attach
    only to traces the caller opted into sampling ([--sample]). *)

val pp_summary : Format.formatter -> t -> unit
(** One-paragraph human summary (what [--sample] prints to stderr). *)
