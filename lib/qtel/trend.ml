(* Cross-run trend analysis over BENCH_*.json snapshots.

   Reuses Qbench.Jsonlite for parsing so the trend tool reads exactly what
   the regress harness writes, with no second JSON dialect. *)

module J = Qbench.Jsonlite

type key = { suite : string; circuit : string; topology : string; router : string }

type metrics = { cx_total : float; depth : float; n_swaps : float; wall_s : float }

type snapshot = {
  file : string;
  sha : string;
  mtime : float;
  rows : (key * metrics) list;
}

type thresholds = {
  max_wall_pct : float;
  max_cx_pct : float;
  max_depth_pct : float;
  max_swaps_pct : float;
}

let default_thresholds =
  { max_wall_pct = 25.0; max_cx_pct = 2.0; max_depth_pct = 5.0; max_swaps_pct = 10.0 }

let min_history = 2

type delta = {
  metric : string;
  latest : float;
  median : float;
  pct : float;
  limit : float;
  anomaly : bool;
}

type series = { s_key : key; history : int; deltas : delta list }

type report = { window : int; snapshots : snapshot list; series : series list }

(* ---- snapshot loading ---- *)

let parse_snapshot ~file ~mtime body =
  match J.of_string body with
  | exception J.Parse_error m -> Error (Printf.sprintf "parse error: %s" m)
  | json -> (
      let str k = Option.bind (J.member k json) J.to_string in
      match Option.bind (J.member "kind" json) J.to_string with
      (* the scaling suite shares the regress row shape but carries a
         per-row topology (montreal/eagle/osprey in one snapshot) *)
      | Some k when k <> "nassc-bench-regress" && k <> "nassc-bench-scaling" ->
          Error (Printf.sprintf "kind %S" k)
      | None -> Error "missing kind"
      | Some _ -> (
          let suite = Option.value ~default:"?" (str "suite") in
          let topology = Option.value ~default:"?" (str "topology") in
          let sha = Option.value ~default:"?" (str "git_sha") in
          match Option.bind (J.member "circuits" json) J.to_list with
          | None -> Error "missing circuits array"
          | Some circuits ->
              let rows =
                List.filter_map
                  (fun c ->
                    let s k = Option.bind (J.member k c) J.to_string in
                    let f k = Option.bind (J.member k c) J.to_float in
                    let topology = Option.value ~default:topology (s "topology") in
                    match (s "name", s "router", f "cx_total", f "depth", f "n_swaps", f "wall_s") with
                    | Some circuit, Some router, Some cx_total, Some depth, Some n_swaps, Some wall_s
                      ->
                        Some
                          ( { suite; circuit; topology; router },
                            { cx_total; depth; n_swaps; wall_s } )
                    | _ -> None)
                  circuits
              in
              if rows = [] then Error "no complete circuit rows"
              else Ok { file; sha; mtime; rows }))

let load_dir dir =
  let is_snapshot name =
    String.length name > 6
    && String.sub name 0 6 = "BENCH_"
    && Filename.check_suffix name ".json"
  in
  let entries =
    match Sys.readdir dir with
    | exception Sys_error _ -> []
    | names -> List.filter is_snapshot (Array.to_list names)
  in
  let loaded, skipped =
    List.fold_left
      (fun (ok, bad) name ->
        let path = Filename.concat dir name in
        let body =
          let ic = open_in_bin path in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          s
        in
        match parse_snapshot ~file:name ~mtime:(Unix.stat path).Unix.st_mtime body with
        | Ok snap -> (snap :: ok, bad)
        | Error reason -> (ok, (name, reason) :: bad))
      ([], []) entries
  in
  ( List.sort (fun a b -> compare (a.mtime, a.file) (b.mtime, b.file)) loaded,
    List.sort compare skipped )

(* ---- analysis ---- *)

let median = function
  | [] -> nan
  | vs ->
      let a = Array.of_list vs in
      Array.sort compare a;
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else 0.5 *. (a.((n / 2) - 1) +. a.(n / 2))

let pct_delta reference latest =
  if reference = 0.0 then if latest = 0.0 then 0.0 else infinity
  else 100.0 *. (latest -. reference) /. reference

let compare_key a b =
  compare (a.suite, a.circuit, a.topology, a.router) (b.suite, b.circuit, b.topology, b.router)

let analyze ?(window = 5) ?(thresholds = default_thresholds) snapshots =
  match List.rev snapshots with
  | [] | [ _ ] -> { window; snapshots; series = [] }
  | current :: older_rev ->
      let recent = List.filteri (fun i _ -> i < window) older_rev in
      let metric_specs =
        [
          ("cx_total", (fun m -> m.cx_total), thresholds.max_cx_pct);
          ("depth", (fun m -> m.depth), thresholds.max_depth_pct);
          ("n_swaps", (fun m -> m.n_swaps), thresholds.max_swaps_pct);
          ("wall_s", (fun m -> m.wall_s), thresholds.max_wall_pct);
        ]
      in
      let series =
        List.map
          (fun (k, cur) ->
            (* oldest-first history of this series within the window *)
            let history =
              List.rev
                (List.filter_map
                   (fun snap ->
                     List.find_opt (fun (k', _) -> compare_key k k' = 0) snap.rows
                     |> Option.map snd)
                   recent)
            in
            let deltas =
              List.map
                (fun (metric, get, limit) ->
                  let values = List.map get history in
                  let latest = get cur in
                  let med = median values in
                  let pct = if values = [] then 0.0 else pct_delta med latest in
                  {
                    metric;
                    latest;
                    median = med;
                    pct;
                    limit;
                    anomaly = List.length values >= min_history && pct > limit;
                  })
                metric_specs
            in
            { s_key = k; history = List.length history; deltas })
          (List.sort (fun (a, _) (b, _) -> compare_key a b) current.rows)
      in
      { window; snapshots; series }

let anomalies report =
  List.concat_map
    (fun s -> List.filter_map (fun d -> if d.anomaly then Some (s.s_key, d) else None) s.deltas)
    report.series

(* ---- rendering ---- *)

let pp_pct pct =
  if Float.is_nan pct then "n/a"
  else if Float.is_integer pct && Float.abs pct < 1e6 then Printf.sprintf "%+.0f%%" pct
  else Printf.sprintf "%+.1f%%" pct

let to_markdown report =
  let b = Buffer.create 4096 in
  let an = anomalies report in
  Buffer.add_string b "# Bench trend report\n\n";
  Buffer.add_string b
    (Printf.sprintf "%d snapshot(s), window %d, %d series, %d anomal%s\n\n"
       (List.length report.snapshots) report.window (List.length report.series)
       (List.length an)
       (if List.length an = 1 then "y" else "ies"));
  Buffer.add_string b "## Snapshots (oldest first)\n\n";
  Buffer.add_string b "| file | git sha | rows |\n|---|---|---|\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %s | %d |\n" s.file s.sha (List.length s.rows)))
    report.snapshots;
  if report.series <> [] then begin
    Buffer.add_string b "\n## Newest snapshot vs rolling median\n\n";
    Buffer.add_string b
      "| suite | circuit | topology | router | hist | cx | depth | swaps | wall |\n\
       |---|---|---|---|---|---|---|---|---|\n";
    List.iter
      (fun s ->
        let cell metric =
          match List.find_opt (fun d -> d.metric = metric) s.deltas with
          | None -> "n/a"
          | Some d ->
              if s.history < min_history then "n/a"
              else if d.anomaly then Printf.sprintf "**%s**" (pp_pct d.pct)
              else pp_pct d.pct
        in
        Buffer.add_string b
          (Printf.sprintf "| %s | %s | %s | %s | %d | %s | %s | %s | %s |\n"
             s.s_key.suite s.s_key.circuit s.s_key.topology s.s_key.router s.history
             (cell "cx_total") (cell "depth") (cell "n_swaps") (cell "wall_s")))
      report.series
  end;
  Buffer.add_string b "\n## Anomalies\n\n";
  if an = [] then Buffer.add_string b "none\n"
  else
    List.iter
      (fun (k, d) ->
        Buffer.add_string b
          (Printf.sprintf "- `%s/%s` on %s (%s): %s = %s vs median %s (%s, limit +%.0f%%)\n"
             k.circuit k.router k.topology k.suite d.metric
             (J.number_to_string d.latest) (J.number_to_string d.median) (pp_pct d.pct)
             d.limit))
      an;
  Buffer.contents b

let to_json report =
  let num f = J.Num f in
  let json =
    J.Obj
      [
        ("kind", J.Str "nassc-trend");
        ("schema_version", num 1.0);
        ("window", num (float_of_int report.window));
        ( "snapshots",
          J.List
            (List.map
               (fun s ->
                 J.Obj
                   [
                     ("file", J.Str s.file);
                     ("git_sha", J.Str s.sha);
                     ("rows", num (float_of_int (List.length s.rows)));
                   ])
               report.snapshots) );
        ( "series",
          J.List
            (List.map
               (fun s ->
                 J.Obj
                   [
                     ("suite", J.Str s.s_key.suite);
                     ("circuit", J.Str s.s_key.circuit);
                     ("topology", J.Str s.s_key.topology);
                     ("router", J.Str s.s_key.router);
                     ("history", num (float_of_int s.history));
                     ( "deltas",
                       J.List
                         (List.map
                            (fun d ->
                              J.Obj
                                [
                                  ("metric", J.Str d.metric);
                                  ("latest", num d.latest);
                                  ("median", num d.median);
                                  ("pct", num d.pct);
                                  ("limit", num d.limit);
                                  ("anomaly", J.Bool d.anomaly);
                                ])
                            s.deltas) );
                   ])
               report.series) );
        ("anomalies", num (float_of_int (List.length (anomalies report))));
      ]
  in
  J.serialize ~indent:2 json
