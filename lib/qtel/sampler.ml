(* Background resource sampler on its own domain.

   Concurrency: the sampler domain is the only writer; readers take the
   ring lock for a consistent snapshot.  The stop protocol is an atomic
   flag the domain polls between sleeps, so stop() joins within one
   interval.  Everything is bounded: one domain, one fixed-size ring. *)

type sample = {
  t_s : float;
  cpu_s : float;
  minor_words : float;
  major_words : float;
  heap_words : int;
  compactions : int;
  rss_kb : int;
  hwm_kb : int;
  inflight : int;
}

type t = {
  ring : sample option array;
  mutable next : int;  (** total samples ever taken; ring slot = next mod capacity *)
  lock : Mutex.t;
  stop_flag : bool Atomic.t;
  mutable domain : unit Domain.t option;
  t0 : float;
  baseline : sample;  (** the process state at start, for delta reporting *)
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* /proc/self/status is tiny and seq-read; parsing two lines per sample at
   10 ms cadence is noise.  Returns (rss_kb, hwm_kb), zeros without procfs. *)
let read_proc_status () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> (0, 0)
  | ic ->
      let rss = ref 0 and hwm = ref 0 in
      (try
         while true do
           let line = input_line ic in
           let grab prefix cell =
             let pl = String.length prefix in
             if String.length line > pl && String.sub line 0 pl = prefix then
               (* "VmRSS:\t   12345 kB" -> 12345 *)
               let digits =
                 String.to_seq line
                 |> Seq.filter (fun c -> c >= '0' && c <= '9')
                 |> String.of_seq
               in
               match int_of_string_opt digits with Some v -> cell := v | None -> ()
           in
           grab "VmRSS:" rss;
           grab "VmHWM:" hwm
         done
       with End_of_file -> ());
      close_in ic;
      (!rss, !hwm)

let take t0 =
  let g = Gc.quick_stat () in
  let rss_kb, hwm_kb = read_proc_status () in
  {
    t_s = Unix.gettimeofday () -. t0;
    cpu_s = Sys.time ();
    minor_words = g.Gc.minor_words;
    major_words = g.Gc.major_words;
    heap_words = g.Gc.heap_words;
    compactions = g.Gc.compactions;
    rss_kb;
    hwm_kb;
    inflight = Qroute.Trials.inflight ();
  }

let push t s =
  Mutex.protect t.lock (fun () ->
      t.ring.(t.next mod Array.length t.ring) <- Some s;
      t.next <- t.next + 1)

let start ?(interval_ms = 10.0) ?(capacity = 4096) () =
  if not (Atomic.get enabled_flag) then None
  else begin
    let t0 = Unix.gettimeofday () in
    let baseline = take t0 in
    let t =
      {
        ring = Array.make (max 1 capacity) None;
        next = 0;
        lock = Mutex.create ();
        stop_flag = Atomic.make false;
        domain = None;
        t0;
        baseline;
      }
    in
    push t baseline;
    let interval_s = Float.max 0.0005 (interval_ms /. 1000.0) in
    let d =
      Domain.spawn (fun () ->
          while not (Atomic.get t.stop_flag) do
            Unix.sleepf interval_s;
            if not (Atomic.get t.stop_flag) then push t (take t.t0)
          done)
    in
    t.domain <- Some d;
    Some t
  end

let stop t =
  match t.domain with
  | None -> ()
  | Some d ->
      Atomic.set t.stop_flag true;
      Domain.join d;
      t.domain <- None;
      push t (take t.t0)

let samples t =
  Mutex.protect t.lock (fun () ->
      let cap = Array.length t.ring in
      let n = min t.next cap in
      let first = t.next - n in
      List.init n (fun i ->
          match t.ring.((first + i) mod cap) with Some s -> s | None -> assert false))

let fold_samples f init t = List.fold_left f init (samples t)

let peak_rss_kb t =
  fold_samples (fun acc s -> max acc (max s.rss_kb s.hwm_kb)) 0 t

let max_inflight t = fold_samples (fun acc s -> max acc s.inflight) 0 t

let last_sample t =
  match List.rev (samples t) with [] -> t.baseline | s :: _ -> s

(* gauge identities interned once, like every other instrumented module *)
let g_samples = Qobs.gauge "qtel.samples"
let g_wall = Qobs.gauge "qtel.sampled_wall_s"
let g_cpu = Qobs.gauge "qtel.cpu_s"
let g_peak_rss = Qobs.gauge "qtel.peak_rss_kb"
let g_last_rss = Qobs.gauge "qtel.last_rss_kb"
let g_minor = Qobs.gauge "qtel.gc_minor_words"
let g_major = Qobs.gauge "qtel.gc_major_words"
let g_heap = Qobs.gauge "qtel.gc_heap_words_max"
let g_compactions = Qobs.gauge "qtel.gc_compactions"
let g_inflight = Qobs.gauge "qtel.pool_inflight_max"
let h_rss = Qobs.histogram "qtel.sample.rss_kb"

let attach t collector =
  let ss = samples t in
  let last = last_sample t in
  let base = t.baseline in
  Qobs.with_collector collector (fun () ->
      Qobs.gauge_set g_samples (float_of_int (List.length ss));
      Qobs.gauge_set g_wall last.t_s;
      Qobs.gauge_set g_cpu (last.cpu_s -. base.cpu_s);
      Qobs.gauge_set g_peak_rss (float_of_int (peak_rss_kb t));
      Qobs.gauge_set g_last_rss (float_of_int last.rss_kb);
      Qobs.gauge_set g_minor (last.minor_words -. base.minor_words);
      Qobs.gauge_set g_major (last.major_words -. base.major_words);
      Qobs.gauge_set g_heap
        (float_of_int (List.fold_left (fun acc s -> max acc s.heap_words) 0 ss));
      Qobs.gauge_set g_compactions (float_of_int (last.compactions - base.compactions));
      Qobs.gauge_set g_inflight (float_of_int (max_inflight t));
      List.iter (fun s -> Qobs.observe h_rss (float_of_int s.rss_kb)) ss)

let pp_summary fmt t =
  let ss = samples t in
  let last = last_sample t in
  let base = t.baseline in
  Format.fprintf fmt
    "sampler: %d samples over %.3f s | peak RSS %.1f MB | GC minor %.3g words, major \
     %.3g words, %d compactions | pool inflight max %d@."
    (List.length ss) last.t_s
    (float_of_int (peak_rss_kb t) /. 1024.0)
    (last.minor_words -. base.minor_words)
    (last.major_words -. base.major_words)
    (last.compactions - base.compactions)
    (max_inflight t)
