(** Self-check for the exposition text {!Expose} emits (and for any
    Prometheus/OpenMetrics page): a promlint-style validator run in tests
    and, as a safety net, after every [--metrics] dump.

    Checks performed:
    - series and declared names match the metric-name charset
      [[a-zA-Z_:][a-zA-Z0-9_:]*];
    - every series belongs to a family with exactly one [# TYPE] and one
      [# HELP] declaration (histogram [_bucket]/[_sum]/[_count] suffixes
      resolve to their base family);
    - [# TYPE] kinds are one of counter/gauge/histogram/summary/untyped;
    - no duplicate series (same name and label set);
    - sample values parse as floats;
    - histogram buckets are cumulative: counts are non-decreasing in
      [le] order, an [le="+Inf"] bucket exists and equals [_count]. *)

type error = { line : int;  (** 1-based line in the page; 0 = page-level *) msg : string }

val lint : string -> error list
(** All violations found, in line order; [[]] means the page is clean. *)

val parse_series : string -> (string * (string * string) list * float) list
(** The raw samples of a page — [(name, sorted labels, value)] per series
    line, comment/blank lines skipped.  This is what the round-trip tests
    use to cross-check exposition values against the Qobs registry.
    @raise Failure on lines that do not parse as samples. *)
