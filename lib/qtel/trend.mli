(** Cross-run trend analysis over [BENCH_<sha>*.json] regression snapshots.

    [bench --regress] writes one snapshot per run; point-in-time baseline
    comparison catches step regressions but is blind to slow drift and to
    one-off outliers.  This module ingests a directory of snapshots,
    aligns rows by (suite, circuit, topology, router), and compares the
    newest snapshot's metrics against the rolling median of the preceding
    window — the median makes the reference robust to a single noisy run.

    A series is flagged anomalous only when (a) at least
    {!min_history} prior observations exist, and (b) the positive delta
    vs the median exceeds that metric's threshold.  Wall time gets a loose
    threshold (machines differ); cx/depth/swaps are deterministic for a
    fixed seed, so their thresholds are tight. *)

type key = { suite : string; circuit : string; topology : string; router : string }

type metrics = { cx_total : float; depth : float; n_swaps : float; wall_s : float }

type snapshot = {
  file : string;  (** basename of the snapshot file *)
  sha : string;  (** [git_sha] recorded in the snapshot *)
  mtime : float;
  rows : (key * metrics) list;
}

type thresholds = {
  max_wall_pct : float;
  max_cx_pct : float;
  max_depth_pct : float;
  max_swaps_pct : float;
}

val default_thresholds : thresholds
(** wall +25%, cx +2%, depth +5%, swaps +10%. *)

val min_history : int
(** Prior observations required before a series can be flagged (2). *)

type delta = {
  metric : string;  (** ["cx_total"] etc. *)
  latest : float;
  median : float;  (** rolling median of the history window *)
  pct : float;  (** percent change of [latest] vs [median]; 0 when both 0 *)
  limit : float;
  anomaly : bool;
}

type series = { s_key : key; history : int; deltas : delta list }

type report = {
  window : int;
  snapshots : snapshot list;  (** chronological, the last one is "current" *)
  series : series list;  (** sorted by key; only series present in the newest snapshot *)
}

val parse_snapshot : file:string -> mtime:float -> string -> (snapshot, string) result
(** Parse one [BENCH_*.json] snapshot body ([Error] explains why not). *)

val load_dir : string -> snapshot list * (string * string) list
(** All [BENCH_*.json] snapshots in a directory, sorted oldest-first by
    (mtime, name) so equal timestamps still order deterministically, plus
    the (file, reason) list of files that failed to parse. *)

val analyze : ?window:int -> ?thresholds:thresholds -> snapshot list -> report
(** Compare the newest snapshot against the rolling median of up to
    [window] (default 5) preceding snapshots.  Fewer than two snapshots
    produce a report with no series. *)

val anomalies : report -> (key * delta) list
(** The flagged (series, metric) pairs of a report. *)

val to_markdown : report -> string

val to_json : report -> string
(** Machine-readable report (kind ["nassc-trend"], schema_version 1). *)
