(** Prometheus / OpenMetrics text-format exposition over a {!Qobs.Trace}.

    Dependency-free rendering of the whole Qobs registry — counters,
    gauges and {!Qobs.Hist} histograms — in the exposition format every
    Prometheus-compatible scraper understands, so the future
    routing-as-a-service daemon can mount {!to_string} at [/metrics] and
    the CLI can dump the same text with [--metrics].

    Determinism contract: the output is a pure function of the trace.
    Families are emitted counters first, then gauges, then histograms,
    each section sorted by metric name; within a gauge family, series are
    sorted by trial label.  A deterministic trace therefore renders to
    byte-identical exposition text for any worker count.

    Naming: every Qobs identity [foo.bar_baz] becomes
    [<prefix>foo_bar_baz] (characters outside [[A-Za-z0-9_]] map to [_];
    the default prefix is ["nassc_"]).  Counters additionally get the
    conventional [_total] suffix.  Histograms render as cumulative
    [_bucket{le="..."}] series over the shared {!Qobs.Hist} bucket layout
    (only buckets up to the last occupied one, then [le="+Inf"]), plus
    [_sum] and [_count]. *)

val metric_name : ?prefix:string -> string -> string
(** Sanitized exposition name of a Qobs identity (no kind suffix). *)

val to_string : ?prefix:string -> Qobs.Trace.t -> string
(** Render the full exposition page, terminated by [# EOF]. *)

val write : ?prefix:string -> dest:string -> Qobs.Trace.t -> unit
(** Write {!to_string} to a file, or to stderr when [dest = "-"]. *)
