(** One structured, wide event per {!Qroute.Pipeline.transpile} call — the
    per-request telemetry record of the future routing-as-a-service
    daemon.

    A wide event gathers everything known about one job into a single
    JSON object: identity (label, router, topology, trials, seed), input
    and output circuit metrics, per-trial outcomes, realized-savings
    buckets from the flight recorder, cache hit counters from the trace,
    and lint/verify verdicts when the caller ran them.

    Determinism contract (mirrors the recorder): {!to_json} with the
    default [times:false] is a pure function of the computation —
    byte-identical across runs and worker counts — because every field is
    drawn from worker-count-invariant sources (trace counters, recorder
    totals, trial statistics).  [times:true] appends an ["rt"] sub-object
    with the nondeterministic environment: wall/CPU milliseconds, the
    worker count, and per-stage span durations. *)

type t

val build :
  ?label:string ->
  ?router:string ->
  ?topology:string ->
  ?trials:int ->
  ?workers:int ->
  ?seed:int ->
  ?original:Qcircuit.Circuit.t ->
  ?trace:Qobs.Trace.t ->
  ?recorder:Qobs.Recorder.totals ->
  ?lint_errors:int ->
  ?verify:string ->
  result:Qroute.Pipeline.result ->
  unit ->
  t
(** Assemble the event.  Every context field is optional: omitted ones are
    simply absent from the JSON (the deterministic core never emits
    placeholder values that would differ between call sites). [workers]
    is only ever rendered inside the [times:true] ["rt"] object. *)

val to_json : ?times:bool -> t -> string
(** One compact JSON object (no trailing newline), keys in fixed order. *)

val append : dest:string -> string -> unit
(** Append one line to the JSONL sink [dest] ("-" = stderr). *)
