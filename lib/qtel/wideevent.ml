(* Wide events: one JSON object per transpile job.

   Assembled from worker-count-invariant sources only (the deterministic
   core) plus an opt-in "rt" object for wall-clock facts.  Serialization
   goes through Qbench.Jsonlite so numbers round-trip exactly and field
   order is the assembly order. *)

module J = Qbench.Jsonlite

type t = {
  label : string option;
  router : string option;
  topology : string option;
  trials : int option;
  workers : int option;
  seed : int option;
  original : Qcircuit.Circuit.t option;
  trace : Qobs.Trace.t option;
  recorder : Qobs.Recorder.totals option;
  lint_errors : int option;
  verify : string option;
  result : Qroute.Pipeline.result;
}

let build ?label ?router ?topology ?trials ?workers ?seed ?original ?trace ?recorder
    ?lint_errors ?verify ~result () =
  { label; router; topology; trials; workers; seed; original; trace; recorder;
    lint_errors; verify; result }

let num_i i = J.Num (float_of_int i)

(* best trial by the Trials total order (cx, depth, index) over successful
   trials — recomputed here so the event doesn't depend on internal state *)
let best_trial stats =
  List.fold_left
    (fun acc (s : Qroute.Trials.stat) ->
      if s.error <> None then acc
      else
        match acc with
        | None -> Some s
        | Some (b : Qroute.Trials.stat) ->
            if
              s.cx_total < b.cx_total
              || (s.cx_total = b.cx_total && (s.depth < b.depth || (s.depth = b.depth && s.trial < b.trial)))
            then Some s
            else acc)
    None stats

let ratio num den = if den = 0 then J.Null else J.Num (float_of_int num /. float_of_int den)

(* per-stage wall milliseconds: spans aggregated by name over the whole
   trace, sorted by name (nondeterministic values -> rt-only) *)
let stage_ms trace =
  let tbl : (string, float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun c ->
      List.iter
        (fun (s : Qobs.Collector.span_rec) ->
          let prev = Option.value ~default:0.0 (Hashtbl.find_opt tbl s.sp_name) in
          Hashtbl.replace tbl s.sp_name (prev +. s.sp_wall))
        (Qobs.Collector.spans c))
    (Qobs.Trace.collectors trace);
  Hashtbl.fold (fun k v acc -> (k, J.Num (1000.0 *. v)) :: acc) tbl []
  |> List.sort compare

let to_json ?(times = false) t =
  let r = t.result in
  let opt name v f = match v with None -> [] | Some x -> [ (name, f x) ] in
  let fields =
    [ ("kind", J.Str "wide_event"); ("schema_version", num_i 1) ]
    @ opt "label" t.label (fun s -> J.Str s)
    @ opt "router" t.router (fun s -> J.Str s)
    @ opt "topology" t.topology (fun s -> J.Str s)
    @ opt "trials" t.trials num_i
    @ opt "seed" t.seed num_i
    @ (match t.original with
      | None -> []
      | Some c ->
          [
            ("qubits_in", num_i (Qcircuit.Circuit.n_qubits c));
            ("gates_in", num_i (Qcircuit.Circuit.size c));
            ("cx_in", num_i (Qcircuit.Circuit.cx_count c));
            ("depth_in", num_i (Qcircuit.Circuit.depth c));
          ])
    @ [
        ("qubits_out", num_i (Qcircuit.Circuit.n_qubits r.Qroute.Pipeline.circuit));
        ("cx_out", num_i r.Qroute.Pipeline.cx_total);
        ("depth_out", num_i r.Qroute.Pipeline.depth);
        ("n_swaps", num_i r.Qroute.Pipeline.n_swaps);
      ]
    @ begin
        let stats = r.Qroute.Pipeline.trial_stats in
        let ok = List.length (List.filter (fun (s : Qroute.Trials.stat) -> s.error = None) stats) in
        [
          ("trials_run", num_i (List.length stats));
          ("trials_ok", num_i ok);
          ("trials_failed", num_i (List.length stats - ok));
          ( "best_trial",
            match best_trial stats with
            | None -> J.Null
            | Some s -> num_i s.Qroute.Trials.trial );
          ( "trial_stats",
            J.List
              (List.map
                 (fun (s : Qroute.Trials.stat) ->
                   J.Obj
                     ([
                        ("trial", num_i s.trial);
                        ("seed", num_i s.seed);
                      ]
                     @
                     match s.error with
                     | Some e -> [ ("error", J.Str e) ]
                     | None ->
                         [
                           ("cx_total", num_i s.cx_total);
                           ("depth", num_i s.depth);
                           ("n_swaps", num_i s.n_swaps);
                         ]))
                 stats) );
        ]
      end
    @ (match t.trace with
      | None -> []
      | Some tr ->
          let c name = Qobs.Trace.counter_total tr name in
          let commute_lookups = c "commutation.cache_lookups" in
          let weyl_hits = c "nassc.weyl_cache_hits" in
          let weyl_misses = c "nassc.weyl_cache_misses" in
          [
            ("score_cache_hits", num_i (c "engine.score_cache_hits"));
            ("weyl_cache_hits", num_i weyl_hits);
            ("weyl_cache_misses", num_i weyl_misses);
            ("weyl_cache_hit_rate", ratio weyl_hits (weyl_hits + weyl_misses));
            ("commutation_cache_hits", num_i (c "commutation.cache_hits"));
            ("commutation_cache_hit_rate", ratio (c "commutation.cache_hits") commute_lookups);
            ("swap_candidates_scored", num_i (c "engine.swap_candidates_scored"));
            ("swaps_emitted", num_i (c "engine.swaps_emitted"));
          ])
    @ (match t.recorder with
      | None -> []
      | Some tot ->
          [
            ( "recorder",
              J.Obj
                [
                  ("steps", num_i tot.Qobs.Recorder.steps);
                  ("candidates", num_i tot.Qobs.Recorder.candidates);
                  ("forced", num_i tot.Qobs.Recorder.forced);
                  ("predicted_savings", J.Num tot.Qobs.Recorder.predicted);
                  ("realized_savings", num_i tot.Qobs.Recorder.realized);
                  ("chosen_c2q", num_i tot.Qobs.Recorder.chosen_c2q);
                  ("chosen_commute1", num_i tot.Qobs.Recorder.chosen_commute1);
                  ("chosen_commute2", num_i tot.Qobs.Recorder.chosen_commute2);
                ] );
          ])
    @ opt "lint_errors" t.lint_errors num_i
    @ opt "verify" t.verify (fun s -> J.Str s)
    @
    if not times then []
    else
      [
        ( "rt",
          J.Obj
            ([
               ("wall_ms", J.Num (1000.0 *. r.Qroute.Pipeline.transpile_time));
               ("cpu_ms", J.Num (1000.0 *. r.Qroute.Pipeline.cpu_time));
             ]
            @ opt "workers" t.workers num_i
            @
            match t.trace with
            | None -> []
            | Some tr -> [ ("stage_ms", J.Obj (stage_ms tr)) ]) );
      ]
  in
  J.serialize (J.Obj fields)

let append ~dest line =
  match dest with
  | "-" ->
      output_string stderr line;
      output_string stderr "\n"
  | file ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 file in
      output_string oc line;
      output_string oc "\n";
      close_out oc
