(* A minimal JSON reader, just enough for the regression harness to load its
   checked-in BENCH_*.json baselines (and for tests to poke at exported
   traces) without adding a dependency.  Recursive descent over a string;
   numbers are OCaml floats; strings support the standard single-character
   escapes plus \uXXXX (non-ASCII code points decode to UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail "expected '%c' at offset %d, found '%c'" ch c.pos x
  | None -> fail "expected '%c' at offset %d, found end of input" ch c.pos

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail "invalid literal at offset %d" c.pos

let utf8_of_code b u =
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    if c.pos >= String.length c.s then fail "unterminated string";
    let ch = c.s.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents b
    | '\\' -> begin
        if c.pos >= String.length c.s then fail "unterminated escape";
        let e = c.s.[c.pos] in
        c.pos <- c.pos + 1;
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
            if c.pos + 4 > String.length c.s then fail "truncated \\u escape";
            let hex = String.sub c.s c.pos 4 in
            c.pos <- c.pos + 4;
            let u =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> fail "bad \\u escape '%s'" hex
            in
            utf8_of_code b u
        | _ -> fail "bad escape '\\%c'" e);
        loop ()
      end
    | _ -> Buffer.add_char b ch; loop ()
  in
  loop ()

let parse_number c =
  let start = c.pos in
  let numchar ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while c.pos < String.length c.s && numchar c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let tok = String.sub c.s start (c.pos - start) in
  match float_of_string_opt tok with
  | Some f -> Num f
  | None -> fail "bad number '%s' at offset %d" tok start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
      expect c '[';
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              items (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' at offset %d" c.pos
        in
        List (items [])
      end
  | Some '{' ->
      expect c '{';
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}' at offset %d" c.pos
        in
        Obj (members [])
      end
  | Some _ -> parse_number c

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail "trailing garbage at offset %d" c.pos;
  v

(* ---- printer ---- *)

(* Shortest decimal representation that re-parses to the exact same double:
   try %.15g, %.16g, %.17g in order and keep the first that round-trips
   (17 significant digits always do).  Without this, matrix baselines diff
   spuriously: a float printed with fixed precision parses back to a
   *different* double and every snapshot comparison sees phantom deltas. *)
let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.0f" f
  else
    let s15 = Printf.sprintf "%.15g" f in
    if float_of_string s15 = f then s15
    else
      let s16 = Printf.sprintf "%.16g" f in
      if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f

let escape_to_buffer b s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let serialize ?(indent = 0) v =
  let b = Buffer.create 256 in
  let pad depth = if indent > 0 then Buffer.add_string b (String.make (depth * indent) ' ') in
  let nl () = if indent > 0 then Buffer.add_char b '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Num f ->
        if Float.is_finite f then Buffer.add_string b (number_to_string f)
        else Buffer.add_string b "null" (* JSON has no NaN/inf *)
    | Str s ->
        Buffer.add_char b '"';
        escape_to_buffer b s;
        Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_char b '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) item)
          items;
        nl ();
        pad depth;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
        Buffer.add_char b '{';
        nl ();
        List.iteri
          (fun i (k, item) ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad (depth + 1);
            Buffer.add_char b '"';
            escape_to_buffer b k;
            Buffer.add_string b "\": ";
            go (depth + 1) item)
          kvs;
        nl ();
        pad depth;
        Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

(* ---- accessors ---- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_float = function
  | Num f -> Some f
  | _ -> None

let to_int v = Option.map int_of_float (to_float v)
let to_string = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
