(** The algorithmic benchmark circuits of the paper's evaluation (Table I),
    built from their textbook definitions (Nielsen-Chuang / Qiskit).

    Gate-count calibration notes (original-circuit CNOT totals after
    lowering, vs. the paper's CNOT_total column):
    - [vqe n] with full entanglement and 3 repetitions gives n(n-1)/2 * 3
      CNOTs: 84 at n=8 and 198 at n=12, matching the paper exactly.
    - [bv 19] with the all-ones secret gives 18 CNOTs, matching exactly.
    - [qft n] gives n(n-1) CNOTs: 210 at n=15 (exact) and 380 at n=20
      (paper reports 374 after optimization).
    - [grover 4] with 3 iterations gives 84 CNOTs, matching exactly;
      larger sizes use one iteration.
    - [adder] (4-bit Cuccaro, 10 qubits) gives 65 CNOTs, matching exactly. *)

val grover : int -> Qcircuit.Circuit.t
(** [grover n]: n-qubit Grover search marking the all-ones state, with
    3 iterations at n = 4 and 1 iteration for larger n. *)

val vqe : int -> Qcircuit.Circuit.t
(** Hardware-efficient ansatz, RY layers with full (all-pairs) CX
    entanglement, 3 repetitions; angles drawn from a fixed seed. *)

val bernstein_vazirani : int -> Qcircuit.Circuit.t
(** [bernstein_vazirani n]: n qubits total (n-1 data + oracle ancilla),
    all-ones secret string. *)

val qft : int -> Qcircuit.Circuit.t
(** Standard quantum Fourier transform (no final swaps). *)

val qpe : int -> Qcircuit.Circuit.t
(** [qpe n]: phase estimation with n-1 counting qubits and one eigenstate
    qubit; estimates the phase of a fixed P gate. *)

val adder : int -> Qcircuit.Circuit.t
(** [adder n_qubits]: Cuccaro ripple-carry adder; [n_qubits = 2k + 2] for
    two k-bit operands. *)

val multiplier : int -> Qcircuit.Circuit.t
(** [multiplier n_qubits]: shift-and-add multiplier (partial products via
    Toffolis, accumulation via controlled ripple adds).  25 qubits hosts
    5-bit x 5-bit with a truncated 9-bit product, as in the paper's row. *)

(** {2 Parameterized benchmark-matrix families}

    The workload axes of [bench --only matrix] (IQM-benchmark-style
    scenario diversity, arXiv:2502.03908).  Every generator is a pure
    function of its parameters — equal arguments produce byte-identical
    circuits — and carries a closed-form instruction budget, both pinned
    by the property tests in [test_qbench.ml]. *)

val random_density :
  ?seed:int -> gates:int -> density:float -> int -> Qcircuit.Circuit.t
(** [random_density ~gates ~density n]: exactly [gates] instructions on
    [n] qubits of which exactly [round (density *. gates)] are two-qubit
    gates (CX/CZ/CP on seeded random pairs); the rest are seeded random
    one-qubit gates (H/T/SX/RZ).  The two-qubit slots are spread by a
    seeded shuffle, so the realized 2q-gate density equals the request
    by construction.  Default [seed] 11. *)

val erdos_renyi_edges : ?seed:int -> edge_prob:float -> int -> (int * int) list
(** The G(n, p) edge set underlying {!qaoa_erdos_renyi}: each of the
    [n(n-1)/2] unordered pairs is included independently with probability
    [edge_prob], in sorted [(lo, hi)] order.  Exposed so tests can audit
    the graph against the circuit. *)

val qaoa_erdos_renyi :
  ?seed:int -> ?p:int -> edge_prob:float -> int -> Qcircuit.Circuit.t
(** [qaoa_erdos_renyi ~edge_prob n]: depth-[p] (default 1) QAOA MaxCut
    ansatz on the Erdős–Rényi graph of {!erdos_renyi_edges}: H on every
    qubit, then per layer RZZ(gamma) on every edge and RX(2 beta) on every
    qubit.  Instruction budget: [n + p * (|E| + n)].  The graph depends on
    [(seed, edge_prob, n)] only; angles come from a separate stream. *)

val supremacy_brickwork : ?seed:int -> cycles:int -> int -> Qcircuit.Circuit.t
(** [supremacy_brickwork ~cycles n]: quantum-supremacy-style 1D brickwork —
    per cycle a seeded random single-qubit gate (SX/SXdg/T) on every qubit,
    then CZ bricks on pairs [(0,1)(2,3)...] for even cycles and
    [(1,2)(3,4)...] for odd.  Instruction budget: [cycles * n] one-qubit
    gates plus [floor(n/2)] (even cycle) or [floor((n-1)/2)] (odd cycle)
    CZs per cycle. *)

val ghz_chain : int -> Qcircuit.Circuit.t
(** H + nearest-neighbour CX chain preparing the n-qubit GHZ state:
    exactly [n] instructions ([1] H, [n-1] CX), depth [n]. *)

val cx_ladder : ?rounds:int -> int -> Qcircuit.Circuit.t
(** [cx_ladder n] ([n = 2k] qubits, rails [0..k-1] and [k..2k-1]): one H,
    then per round CX down both rails and CX across every rung (direction
    alternating by round) — dense two-qubit traffic whose ladder shape
    matches no evaluated topology exactly.  Instruction budget:
    [1 + rounds * (3k - 2)]; every gate after the H is a CX. *)

(** {2 Lazy streaming families}

    Pull sources for the scaling benchmarks ([bench --only scaling] and
    the streaming CLI): gates are produced on demand, never materialized
    as a list, so a million-gate circuit costs O(1) generator memory.
    Re-creating a source with equal arguments replays the byte-identical
    stream. *)

val qft_stream : reps:int -> int -> Qcircuit.Source.t
(** [qft_stream ~reps n]: the {!qft} gate sequence repeated [reps] times —
    [reps * (n + n(n-1)/2)] instructions ([reps = 121], [n = 127] is about
    a million gates). *)

val qv_stream : ?seed:int -> depth:int -> int -> Qcircuit.Source.t
(** [qv_stream ~depth n]: quantum-volume-style brickwork — per layer a
    seeded random pairing of the [n] qubits with a 2-CX randomized block
    per pair.  [depth * 8 * floor(n/2)] instructions. *)

val random_density_stream :
  ?seed:int -> gates:int -> density:float -> int -> Qcircuit.Source.t
(** Streaming analogue of {!random_density}: exactly [gates] instructions,
    each independently two-qubit with probability [density] (a per-gate
    Bernoulli draw rather than the batch generator's exact-count shuffled
    slot array, which would cost O(gates) memory). *)
