(** The benchmark registry used by the experiment harness. *)

type entry = {
  name : string;  (** paper row name *)
  n_qubits : int;
  build : unit -> Qcircuit.Circuit.t;
  heavy : bool;  (** RevLib-scale circuit: fewer seeds per run by default *)
  noise_subset : bool;  (** included in the Figure 11 noise experiments *)
}

val paper_suite : entry list
(** The fifteen benchmarks of Tables I-IV, in paper order. *)

val find : string -> entry
(** @raise Not_found for unknown names. *)

val small_suite : entry list
(** The non-heavy entries; handy for quick runs and tests. *)

val matrix_regress_entries : entry list
(** Benchmark-matrix family instances (random-density, QAOA-ER, brickwork,
    ladder, GHZ chain) appended to {!regress_suite} so the regression gate
    covers the broader workload surface of [bench --only matrix]. *)

val regress_suite : quick:bool -> entry list
(** The circuits [bench --regress] runs: with [quick:true] a six-circuit
    spread over sizes 4..15 (what CI compares against the checked-in
    baseline), otherwise {!small_suite} — in both cases followed by
    {!matrix_regress_entries}. *)
