(** The optimality-gap corpus: small circuits and devices on which the
    exact oracle can certify the true minimum SWAP count.  Shared by
    [bench --only gap], the gap golden test, and the golden generator.
    Append-only: recorded optima in [test/goldens/gap.golden] reference
    entries by name. *)

type entry = {
  name : string;
  n_qubits : int;  (** logical qubits, 3..5 *)
  build : unit -> Qcircuit.Circuit.t;
}

val circuits : entry list
(** The full corpus (~20 circuits, 3..5 qubits, bounded depth). *)

val topologies : (string * Topology.Coupling.t) list
(** line5, ring5, grid2x3 — path, cycle, and mesh connectivity. *)

val suite : quick:bool -> entry list
(** [suite ~quick:true] is the CI subset (one entry per family);
    [~quick:false] the full corpus. *)
