(** The benchmark matrix: routers x topologies x circuit families
    ([bench --only matrix]), after the IQM router-benchmarking methodology
    (arXiv:2502.03908).

    Each cell reports [cx_total]/[n_swaps]/[depth] next to the depth
    overhead over the Full-connectivity-optimized baseline and the analytic
    estimated success probability (ESP) under the topology's synthetic
    calibration — the metrics that catch routers which win on SWAP count
    but lose on depth or fidelity.  Every cell value is a deterministic
    function of (instance, topology, router, seed), identical for any
    worker count; there are no wall-clock fields. *)

type instance = {
  family : string;  (** family key: random, qaoa-er, brickwork, ghz, ladder *)
  instance : string;  (** parameter tag, e.g. ["g60-d0.40-8q"] *)
  n_qubits : int;
  build : unit -> Qcircuit.Circuit.t;
}

val instances : quick:bool -> instance list
(** The family axis.  [quick]: one small (<= 5-qubit) instance per family,
    the CI/golden subset.  Full: parameter sweeps (2q-gate density 0.2-0.8,
    QAOA edge probability 0.3-0.8, two sizes per structural family). *)

val quick_topologies : unit -> (string * Topology.Coupling.t) list
(** line5, grid2x3, heavyhex2x2. *)

val golden_topologies : unit -> (string * Topology.Coupling.t) list
(** line5 and grid2x3 only — the checked-in [matrix.golden] subset. *)

val full_topologies : unit -> (string * Topology.Coupling.t) list
(** line12, ring12, grid3x4, heavyhex2x3, montreal. *)

val routers : (string * Qroute.Pipeline.router) list
(** All six routers, in the routing-golden column order:
    sabre, nassc, astar, sabre-ha, nassc-ha, hybrid. *)

type cell = {
  family : string;
  instance : string;
  topology : string;
  router : string;
  n_qubits : int;
  base_cx : int;  (** Full-connectivity-optimized CNOTs of the instance *)
  base_depth : int;  (** ... and its depth: the overhead denominator *)
  cx_total : int;
  depth : int;
  n_swaps : int;
  depth_overhead : float;  (** [depth / max 1 base_depth] *)
  esp : float;
      (** analytic estimated success probability of the routed circuit
          under [Topology.Calibration.generate] for the cell's topology *)
  rec_steps : int;  (** flight-recorder totals across the cell's trials *)
  rec_candidates : int;
}

val default_seed : int
val default_trials : int

val run :
  ?seed:int ->
  ?trials:int ->
  ?workers:int ->
  instances:instance list ->
  topologies:(string * Topology.Coupling.t) list ->
  unit ->
  cell list
(** Evaluate every (instance, topology, router) cell, in axis order
    (instances outermost, routers innermost).  Instances wider than a
    topology are skipped (counted on [matrix.cells_skipped]).  Defaults:
    [seed] 11, [trials] 4; results are independent of [workers].
    Counters: [matrix.cells], [matrix.esp_evals], [matrix.cells_skipped]
    (recorded when a {!Qobs} collector is installed). *)

val schema_version : int
val kind : string

val to_json :
  git_sha:string -> suite:string -> seed:int -> trials:int -> cell list -> Jsonlite.t
(** The schema-versioned [BENCH_<sha>-matrix.json] document. *)

val markdown : cell list -> string
(** The rendered comparison table (GitHub-flavored markdown). *)

val golden_lines : cell list -> string
(** One deterministic line per cell — the [test/goldens/matrix.golden]
    format.  Floats use {!Jsonlite.number_to_string}, so the lines are
    exact. *)
