(** A minimal JSON reader: enough for [bench --regress] to load checked-in
    [BENCH_*.json] baselines without a dependency.  Numbers are floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val of_string : string -> t
(** @raise Parse_error on malformed input (with an offset). *)

val serialize : ?indent:int -> t -> string
(** Serialize.  [indent = 0] (the default) is compact one-line JSON;
    positive values pretty-print with that many spaces per level (what the
    [BENCH_*] snapshot writers use, so checked-in baselines diff cleanly).
    Floats use shortest round-trip formatting ([%.15g]/[%.16g]/[%.17g],
    first that re-parses to the same double; integral values print with no
    fraction), so [of_string (to_string v)] reproduces every finite number
    exactly.  Non-finite floats serialize as [null] (JSON has no NaN). *)

val number_to_string : float -> string
(** The shortest-round-trip float formatter used by {!serialize}:
    [float_of_string (number_to_string f) = f] for every finite [f]. *)

val member : string -> t -> t option
(** Object field lookup; [None] on missing keys and non-objects. *)

val to_float : t -> float option
val to_int : t -> int option
val to_string : t -> string option
val to_list : t -> t list option
