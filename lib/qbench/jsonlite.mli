(** A minimal JSON reader: enough for [bench --regress] to load checked-in
    [BENCH_*.json] baselines without a dependency.  Numbers are floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val of_string : string -> t
(** @raise Parse_error on malformed input (with an offset). *)

val member : string -> t -> t option
(** Object field lookup; [None] on missing keys and non-objects. *)

val to_float : t -> float option
val to_int : t -> int option
val to_string : t -> string option
val to_list : t -> t list option
