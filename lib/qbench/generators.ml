open Qgate

let pi = Float.pi

let all_qubits n = List.init n (fun i -> i)

let mcz_or_cz b qs =
  match qs with
  | [ a; c ] -> Qcircuit.Circuit.Builder.add b Gate.CZ [ a; c ]
  | [ a ] -> Qcircuit.Circuit.Builder.add b Gate.Z [ a ]
  | qs -> Qcircuit.Circuit.Builder.add b (Gate.MCZ (List.length qs - 1)) qs

let grover n =
  let b = Qcircuit.Circuit.Builder.create n in
  let iterations = if n <= 4 then 3 else 1 in
  let layer g = List.iter (fun q -> Qcircuit.Circuit.Builder.add b g [ q ]) (all_qubits n) in
  layer Gate.H;
  for _ = 1 to iterations do
    (* oracle: phase flip on |1...1> *)
    mcz_or_cz b (all_qubits n);
    (* diffusion *)
    layer Gate.H;
    layer Gate.X;
    mcz_or_cz b (all_qubits n);
    layer Gate.X;
    layer Gate.H
  done;
  Qcircuit.Circuit.Builder.circuit b

let vqe n =
  let rng = Mathkit.Rng.create (1000 + n) in
  let b = Qcircuit.Circuit.Builder.create n in
  let ry_layer () =
    List.iter
      (fun q ->
        Qcircuit.Circuit.Builder.add b (Gate.RY (Mathkit.Rng.float rng (2.0 *. pi))) [ q ])
      (all_qubits n)
  in
  for _ = 1 to 3 do
    ry_layer ();
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        Qcircuit.Circuit.Builder.add b Gate.CX [ i; j ]
      done
    done
  done;
  ry_layer ();
  Qcircuit.Circuit.Builder.circuit b

let bernstein_vazirani n =
  let b = Qcircuit.Circuit.Builder.create n in
  let anc = n - 1 in
  List.iter (fun q -> Qcircuit.Circuit.Builder.add b Gate.H [ q ]) (all_qubits (n - 1));
  Qcircuit.Circuit.Builder.add b Gate.X [ anc ];
  Qcircuit.Circuit.Builder.add b Gate.H [ anc ];
  (* all-ones secret *)
  for q = 0 to n - 2 do
    Qcircuit.Circuit.Builder.add b Gate.CX [ q; anc ]
  done;
  List.iter (fun q -> Qcircuit.Circuit.Builder.add b Gate.H [ q ]) (all_qubits (n - 1));
  Qcircuit.Circuit.Builder.circuit b

let qft n =
  let b = Qcircuit.Circuit.Builder.create n in
  for i = 0 to n - 1 do
    Qcircuit.Circuit.Builder.add b Gate.H [ i ];
    for j = i + 1 to n - 1 do
      let angle = pi /. float_of_int (1 lsl (j - i)) in
      Qcircuit.Circuit.Builder.add b (Gate.CP angle) [ j; i ]
    done
  done;
  Qcircuit.Circuit.Builder.circuit b

let inverse_qft_on b qs =
  (* inverse of the [qft] structure restricted to the listed qubits *)
  let arr = Array.of_list qs in
  let n = Array.length arr in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      let angle = -.pi /. float_of_int (1 lsl (j - i)) in
      Qcircuit.Circuit.Builder.add b (Gate.CP angle) [ arr.(j); arr.(i) ]
    done;
    Qcircuit.Circuit.Builder.add b Gate.H [ arr.(i) ]
  done

(* With counting qubit k controlling P(theta * 2^k) and the inverse of the
   [qft] pattern above, the estimate reads out on the counting register with
   qubit 0 as the most significant bit (validated in the test suite against
   an exactly representable phase). *)
let qpe n =
  let t = n - 1 in
  let eigen = n - 1 in
  let b = Qcircuit.Circuit.Builder.create n in
  (* eigenstate |1> of P(theta) *)
  Qcircuit.Circuit.Builder.add b Gate.X [ eigen ];
  List.iter (fun q -> Qcircuit.Circuit.Builder.add b Gate.H [ q ]) (all_qubits t);
  let theta = 2.0 *. pi *. 0.3203125 in
  for k = 0 to t - 1 do
    let angle = theta *. float_of_int (1 lsl k) in
    Qcircuit.Circuit.Builder.add b (Gate.CP angle) [ k; eigen ]
  done;
  inverse_qft_on b (all_qubits t);
  Qcircuit.Circuit.Builder.circuit b

(* ---- parameterized benchmark-matrix families (IQM-style workload sweep) ----

   Every family is a pure function of its parameters: equal arguments give
   byte-identical circuits, and the instruction budget is a closed form of
   the parameters (the property tests in test_qbench.ml pin both). *)

let random_density ?(seed = 11) ~gates ~density n =
  if n < 2 then invalid_arg "Generators.random_density: need at least 2 qubits";
  if gates < 0 then invalid_arg "Generators.random_density: negative gate count";
  if density < 0.0 || density > 1.0 then
    invalid_arg "Generators.random_density: density must lie in [0, 1]";
  let rng = Mathkit.Rng.create seed in
  let n2q = int_of_float (Float.round (density *. float_of_int gates)) in
  (* exactly [n2q] two-qubit slots, spread by a seeded shuffle so the
     realized density matches the requested bucket by construction *)
  let slots = Array.init gates (fun i -> i < n2q) in
  Mathkit.Rng.shuffle rng slots;
  let b = Qcircuit.Circuit.Builder.create n in
  Array.iter
    (fun two_q ->
      if two_q then begin
        let a = Mathkit.Rng.int rng n in
        let c = (a + 1 + Mathkit.Rng.int rng (n - 1)) mod n in
        match Mathkit.Rng.int rng 3 with
        | 0 -> Qcircuit.Circuit.Builder.add b Gate.CX [ a; c ]
        | 1 -> Qcircuit.Circuit.Builder.add b Gate.CZ [ a; c ]
        | _ -> Qcircuit.Circuit.Builder.add b (Gate.CP (Mathkit.Rng.float rng pi)) [ a; c ]
      end
      else begin
        let q = Mathkit.Rng.int rng n in
        match Mathkit.Rng.int rng 4 with
        | 0 -> Qcircuit.Circuit.Builder.add b Gate.H [ q ]
        | 1 -> Qcircuit.Circuit.Builder.add b Gate.T [ q ]
        | 2 -> Qcircuit.Circuit.Builder.add b Gate.SX [ q ]
        | _ ->
            Qcircuit.Circuit.Builder.add b (Gate.RZ (Mathkit.Rng.float rng (2.0 *. pi))) [ q ]
      end)
    slots;
  Qcircuit.Circuit.Builder.circuit b

let erdos_renyi_edges ?(seed = 11) ~edge_prob n =
  if n < 2 then invalid_arg "Generators.erdos_renyi_edges: need at least 2 qubits";
  if edge_prob < 0.0 || edge_prob > 1.0 then
    invalid_arg "Generators.erdos_renyi_edges: edge_prob must lie in [0, 1]";
  let rng = Mathkit.Rng.create seed in
  let edges = ref [] in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      if Mathkit.Rng.float rng 1.0 < edge_prob then edges := (i, j) :: !edges
    done
  done;
  List.rev !edges

let qaoa_erdos_renyi ?(seed = 11) ?(p = 1) ~edge_prob n =
  if p < 0 then invalid_arg "Generators.qaoa_erdos_renyi: negative depth";
  let edges = erdos_renyi_edges ~seed ~edge_prob n in
  (* angles drawn from a separate stream so the graph is a function of
     [seed, edge_prob, n] alone *)
  let rng = Mathkit.Rng.create (seed + 0x9e3779) in
  let b = Qcircuit.Circuit.Builder.create n in
  List.iter (fun q -> Qcircuit.Circuit.Builder.add b Gate.H [ q ]) (all_qubits n);
  for _ = 1 to p do
    let gamma = Mathkit.Rng.float rng pi in
    let beta = Mathkit.Rng.float rng pi in
    List.iter
      (fun (u, v) -> Qcircuit.Circuit.Builder.add b (Gate.RZZ gamma) [ u; v ])
      edges;
    List.iter
      (fun q -> Qcircuit.Circuit.Builder.add b (Gate.RX (2.0 *. beta)) [ q ])
      (all_qubits n)
  done;
  Qcircuit.Circuit.Builder.circuit b

let brickwork_pairs ~cycle n =
  let first = if cycle mod 2 = 0 then 0 else 1 in
  let rec pairs a acc = if a + 1 > n - 1 then List.rev acc else pairs (a + 2) ((a, a + 1) :: acc) in
  pairs first []

let supremacy_brickwork ?(seed = 11) ~cycles n =
  if n < 2 then invalid_arg "Generators.supremacy_brickwork: need at least 2 qubits";
  if cycles < 0 then invalid_arg "Generators.supremacy_brickwork: negative cycles";
  let rng = Mathkit.Rng.create seed in
  let b = Qcircuit.Circuit.Builder.create n in
  for cycle = 0 to cycles - 1 do
    (* one random single-qubit gate per qubit (sqrt-X / sqrt-X^dag / T,
       the Google-supremacy flavor), then a brick layer of CZs *)
    List.iter
      (fun q ->
        match Mathkit.Rng.int rng 3 with
        | 0 -> Qcircuit.Circuit.Builder.add b Gate.SX [ q ]
        | 1 -> Qcircuit.Circuit.Builder.add b Gate.SXdg [ q ]
        | _ -> Qcircuit.Circuit.Builder.add b Gate.T [ q ])
      (all_qubits n);
    List.iter
      (fun (a, c) -> Qcircuit.Circuit.Builder.add b Gate.CZ [ a; c ])
      (brickwork_pairs ~cycle n)
  done;
  Qcircuit.Circuit.Builder.circuit b

let ghz_chain n =
  if n < 2 then invalid_arg "Generators.ghz_chain: need at least 2 qubits";
  let b = Qcircuit.Circuit.Builder.create n in
  Qcircuit.Circuit.Builder.add b Gate.H [ 0 ];
  for i = 0 to n - 2 do
    Qcircuit.Circuit.Builder.add b Gate.CX [ i; i + 1 ]
  done;
  Qcircuit.Circuit.Builder.circuit b

let cx_ladder ?(rounds = 2) n =
  if n < 4 || n mod 2 <> 0 then
    invalid_arg "Generators.cx_ladder: needs an even qubit count >= 4";
  if rounds < 1 then invalid_arg "Generators.cx_ladder: need at least one round";
  let k = n / 2 in
  let a i = i and bq i = k + i in
  let b = Qcircuit.Circuit.Builder.create n in
  Qcircuit.Circuit.Builder.add b Gate.H [ a 0 ];
  for round = 0 to rounds - 1 do
    for i = 0 to k - 2 do
      Qcircuit.Circuit.Builder.add b Gate.CX [ a i; a (i + 1) ];
      Qcircuit.Circuit.Builder.add b Gate.CX [ bq i; bq (i + 1) ]
    done;
    for i = 0 to k - 1 do
      if round mod 2 = 0 then Qcircuit.Circuit.Builder.add b Gate.CX [ a i; bq i ]
      else Qcircuit.Circuit.Builder.add b Gate.CX [ bq i; a i ]
    done
  done;
  Qcircuit.Circuit.Builder.circuit b

(* Cuccaro ripple-carry adder: qubits [cin; a0..ak-1; b0..bk-1; cout] *)
let adder n_qubits =
  if n_qubits < 4 || n_qubits mod 2 <> 0 then
    invalid_arg "Generators.adder: needs 2k + 2 qubits";
  let k = (n_qubits - 2) / 2 in
  let cin = 0 and cout = n_qubits - 1 in
  let a i = 1 + i and bq i = 1 + k + i in
  let b = Qcircuit.Circuit.Builder.create n_qubits in
  let maj c x y =
    Qcircuit.Circuit.Builder.add b Gate.CX [ y; x ];
    Qcircuit.Circuit.Builder.add b Gate.CX [ y; c ];
    Qcircuit.Circuit.Builder.add b Gate.CCX [ c; x; y ]
  in
  let uma c x y =
    Qcircuit.Circuit.Builder.add b Gate.CCX [ c; x; y ];
    Qcircuit.Circuit.Builder.add b Gate.CX [ y; c ];
    Qcircuit.Circuit.Builder.add b Gate.CX [ c; x ]
  in
  (* prepare some inputs so the adder computes something nontrivial *)
  for i = 0 to k - 1 do
    if i mod 2 = 0 then Qcircuit.Circuit.Builder.add b Gate.X [ a i ];
    if i mod 3 = 0 then Qcircuit.Circuit.Builder.add b Gate.X [ bq i ]
  done;
  maj cin (bq 0) (a 0);
  for i = 1 to k - 1 do
    maj (a (i - 1)) (bq i) (a i)
  done;
  Qcircuit.Circuit.Builder.add b Gate.CX [ a (k - 1); cout ];
  for i = k - 1 downto 1 do
    uma (a (i - 1)) (bq i) (a i)
  done;
  uma cin (bq 0) (a 0);
  Qcircuit.Circuit.Builder.circuit b

(* Shift-and-add multiplier with a truncated product register:
   [cin; a(k); b(k); temp(k); prod(p)] where p = n - 3k - 1. *)
let multiplier n_qubits =
  let k = (n_qubits - 1) / 5 in
  let p = n_qubits - 1 - (3 * k) in
  if k < 2 || p < k + 1 then invalid_arg "Generators.multiplier: too few qubits";
  let cin = 0 in
  let a i = 1 + i and bq i = 1 + k + i and temp i = 1 + (2 * k) + i in
  let prod i = 1 + (3 * k) + i in
  let b = Qcircuit.Circuit.Builder.create n_qubits in
  let add_cx x y = Qcircuit.Circuit.Builder.add b Gate.CX [ x; y ] in
  let add_ccx x y z = Qcircuit.Circuit.Builder.add b Gate.CCX [ x; y; z ] in
  (* inputs *)
  for i = 0 to k - 1 do
    if i mod 2 = 0 then Qcircuit.Circuit.Builder.add b Gate.X [ a i ];
    if i mod 2 = 1 then Qcircuit.Circuit.Builder.add b Gate.X [ bq i ]
  done;
  (* for each bit i of b: temp := a AND b_i; prod[i..] += temp; uncompute *)
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      add_ccx (bq i) (a j) (temp j)
    done;
    (* ripple add temp into the product window starting at bit i *)
    let width = min k (p - i - 1) in
    if width > 0 then begin
      let maj c x y =
        add_cx y x;
        add_cx y c;
        add_ccx c x y
      in
      let uma c x y =
        add_ccx c x y;
        add_cx y c;
        add_cx c x
      in
      maj cin (prod i) (temp 0);
      for j = 1 to width - 1 do
        maj (temp (j - 1)) (prod (i + j)) (temp j)
      done;
      add_cx (temp (width - 1)) (prod (i + width));
      for j = width - 1 downto 1 do
        uma (temp (j - 1)) (prod (i + j)) (temp j)
      done;
      uma cin (prod i) (temp 0)
    end;
    for j = k - 1 downto 0 do
      add_ccx (bq i) (a j) (temp j)
    done
  done;
  Qcircuit.Circuit.Builder.circuit b

(* ---- lazy streaming families (10^5 - 10^6 gates) ----

   Pull sources for the scaling benchmarks: gates are produced one at a
   time as the streaming engine admits them, so generator memory is O(1)
   (O(n) for the QV layer buffer) however deep the circuit.  Each source
   is a pure function of its parameters — re-creating it replays the
   byte-identical stream, which is what makes streamed routing runs
   reproducible at a fixed seed. *)

let qft_stream ~reps n =
  if n < 2 then invalid_arg "Generators.qft_stream: need at least 2 qubits";
  if reps < 1 then invalid_arg "Generators.qft_stream: need at least 1 repetition";
  (* same gate sequence as [qft], repeated [reps] times; [j = i] encodes
     "emit the H on qubit i next" *)
  let rep = ref 0 and i = ref 0 and j = ref 0 in
  Qcircuit.Source.create ~n_qubits:n (fun () ->
      if !rep >= reps then None
      else begin
        let instr =
          if !j = !i then { Qcircuit.Circuit.gate = Gate.H; qubits = [ !i ] }
          else
            let angle = pi /. float_of_int (1 lsl (!j - !i)) in
            { Qcircuit.Circuit.gate = Gate.CP angle; qubits = [ !j; !i ] }
        in
        incr j;
        if !j > n - 1 then begin
          incr i;
          j := !i;
          if !i > n - 1 then begin
            incr rep;
            i := 0;
            j := 0
          end
        end;
        Some instr
      end)

let qv_stream ?(seed = 11) ~depth n =
  if n < 2 then invalid_arg "Generators.qv_stream: need at least 2 qubits";
  if depth < 1 then invalid_arg "Generators.qv_stream: need at least 1 layer";
  let rng = Mathkit.Rng.create seed in
  let layer = ref 0 in
  let buf = ref [] in
  (* quantum-volume-style layer: a seeded random pairing of the qubits,
     each pair getting a 2-CX entangling block with randomized phases *)
  let gen_layer () =
    let perm = Mathkit.Rng.permutation rng n in
    let acc = ref [] in
    let add g qs = acc := { Qcircuit.Circuit.gate = g; qubits = qs } :: !acc in
    let th () = Gate.RZ (Mathkit.Rng.float rng (2.0 *. pi)) in
    for k = 0 to (n / 2) - 1 do
      let a = perm.(2 * k) and b = perm.((2 * k) + 1) in
      add (th ()) [ a ];
      add Gate.SX [ a ];
      add (th ()) [ b ];
      add Gate.SX [ b ];
      add Gate.CX [ a; b ];
      add (th ()) [ b ];
      add Gate.CX [ a; b ];
      add (th ()) [ a ]
    done;
    List.rev !acc
  in
  Qcircuit.Source.create ~n_qubits:n (fun () ->
      let rec next () =
        match !buf with
        | instr :: tl ->
            buf := tl;
            Some instr
        | [] ->
            if !layer >= depth then None
            else begin
              incr layer;
              buf := gen_layer ();
              next ()
            end
      in
      next ())

let random_density_stream ?(seed = 11) ~gates ~density n =
  if n < 2 then invalid_arg "Generators.random_density_stream: need at least 2 qubits";
  if gates < 0 then invalid_arg "Generators.random_density_stream: negative gate count";
  if density < 0.0 || density > 1.0 then
    invalid_arg "Generators.random_density_stream: density must lie in [0, 1]";
  let rng = Mathkit.Rng.create seed in
  let k = ref 0 in
  (* per-gate Bernoulli draw instead of [random_density]'s shuffled slot
     array (which is O(gates) memory): realized density converges to the
     request instead of matching it exactly *)
  Qcircuit.Source.create ~n_qubits:n (fun () ->
      if !k >= gates then None
      else begin
        incr k;
        if Mathkit.Rng.float rng 1.0 < density then begin
          let a = Mathkit.Rng.int rng n in
          let c = (a + 1 + Mathkit.Rng.int rng (n - 1)) mod n in
          match Mathkit.Rng.int rng 3 with
          | 0 -> Some { Qcircuit.Circuit.gate = Gate.CX; qubits = [ a; c ] }
          | 1 -> Some { Qcircuit.Circuit.gate = Gate.CZ; qubits = [ a; c ] }
          | _ ->
              Some
                {
                  Qcircuit.Circuit.gate = Gate.CP (Mathkit.Rng.float rng pi);
                  qubits = [ a; c ];
                }
        end
        else begin
          let q = Mathkit.Rng.int rng n in
          match Mathkit.Rng.int rng 4 with
          | 0 -> Some { Qcircuit.Circuit.gate = Gate.H; qubits = [ q ] }
          | 1 -> Some { Qcircuit.Circuit.gate = Gate.T; qubits = [ q ] }
          | 2 -> Some { Qcircuit.Circuit.gate = Gate.SX; qubits = [ q ] }
          | _ ->
              Some
                {
                  Qcircuit.Circuit.gate = Gate.RZ (Mathkit.Rng.float rng (2.0 *. pi));
                  qubits = [ q ];
                }
        end
      end)
