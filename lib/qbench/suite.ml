type entry = {
  name : string;
  n_qubits : int;
  build : unit -> Qcircuit.Circuit.t;
  heavy : bool;
  noise_subset : bool;
}

let entry ?(heavy = false) ?(noise = false) name n build =
  { name; n_qubits = n; build; heavy; noise_subset = noise }

let paper_suite =
  [
    entry "Grover 4-qubits" 4 (fun () -> Generators.grover 4) ~noise:true;
    entry "Grover 6-qubits" 6 (fun () -> Generators.grover 6) ~noise:true;
    entry "Grover 8-qubits" 8 (fun () -> Generators.grover 8);
    entry "VQE 8-qubits" 8 (fun () -> Generators.vqe 8) ~noise:true;
    entry "VQE 12-qubits" 12 (fun () -> Generators.vqe 12);
    entry "BV 19-qubits" 19 (fun () -> Generators.bernstein_vazirani 19);
    entry "QFT 15-qubits" 15 (fun () -> Generators.qft 15);
    entry "QFT 20-qubits" 20 (fun () -> Generators.qft 20);
    entry "QPE 9-qubits" 9 (fun () -> Generators.qpe 9) ~noise:true;
    entry "Adder 10-qubits" 10 (fun () -> Generators.adder 10) ~noise:true;
    entry "Multiplier 25-qubits" 25 (fun () -> Generators.multiplier 25);
    entry "sqn_258" 10 (fun () -> Revlib_like.sqn_258 ()) ~heavy:true;
    entry "rd84_253" 12 (fun () -> Revlib_like.rd84_253 ()) ~heavy:true;
    entry "co14_215" 15 (fun () -> Revlib_like.co14_215 ()) ~heavy:true;
    entry "sym9_193" 11 (fun () -> Revlib_like.sym9_193 ()) ~heavy:true;
  ]

let find name = List.find (fun e -> e.name = name) paper_suite
let small_suite = List.filter (fun e -> not e.heavy) paper_suite

(* matrix-family workloads appended to the regression gate so every PR
   regresses against the broader scenario surface (random-density, QAOA on
   Erdős–Rényi graphs, brickwork, ladder/GHZ chains), not just the paper's
   circuits *)
let matrix_regress_entries =
  [
    entry "RandDense 8-qubits" 8 (fun () ->
        Generators.random_density ~seed:11 ~gates:60 ~density:0.5 8);
    entry "QAOA-ER 8-qubits" 8 (fun () ->
        Generators.qaoa_erdos_renyi ~seed:11 ~p:2 ~edge_prob:0.5 8);
    entry "Brickwork 8-qubits" 8 (fun () ->
        Generators.supremacy_brickwork ~seed:11 ~cycles:6 8);
    entry "Ladder 8-qubits" 8 (fun () -> Generators.cx_ladder ~rounds:3 8);
    entry "GHZ-chain 12-qubits" 12 (fun () -> Generators.ghz_chain 12);
  ]

let regress_suite ~quick =
  (if quick then
     List.map find
       [
         "Grover 4-qubits";
         "Grover 6-qubits";
         "VQE 8-qubits";
         "QPE 9-qubits";
         "Adder 10-qubits";
         "QFT 15-qubits";
       ]
   else small_suite)
  @ matrix_regress_entries
