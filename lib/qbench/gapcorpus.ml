(* The optimality-gap corpus: small instances on which the exact oracle
   (Qroute.Exact) can certify the true minimum SWAP count, so heuristic
   routers can be scored by absolute gap instead of against each other.
   Everything here is deliberately tiny — 3..5 logical qubits, bounded
   depth — because the oracle minimizes over every injective initial
   layout.  The corpus is shared by `bench --only gap`, the gap golden
   test, and the golden generator; keep it append-only so recorded
   optima stay valid. *)

type entry = { name : string; n_qubits : int; build : unit -> Qcircuit.Circuit.t }

let entry name n build = { name; n_qubits = n; build }

let circuits =
  [
    entry "ghz3" 3 (fun () -> Extras.ghz 3);
    entry "ghz4" 4 (fun () -> Extras.ghz 4);
    entry "ghz5" 5 (fun () -> Extras.ghz 5);
    entry "wstate3" 3 (fun () -> Extras.w_state 3);
    entry "wstate4" 4 (fun () -> Extras.w_state 4);
    entry "wstate5" 5 (fun () -> Extras.w_state 5);
    entry "qft3" 3 (fun () -> Generators.qft 3);
    entry "qft4" 4 (fun () -> Generators.qft 4);
    entry "qft5" 5 (fun () -> Generators.qft 5);
    entry "bv3" 3 (fun () -> Generators.bernstein_vazirani 3);
    entry "bv4" 4 (fun () -> Generators.bernstein_vazirani 4);
    entry "bv5" 5 (fun () -> Generators.bernstein_vazirani 5);
    entry "qaoa4" 4 (fun () -> Extras.qaoa_maxcut 4);
    entry "qaoa5" 5 (fun () -> Extras.qaoa_maxcut 5);
    entry "vqe4" 4 (fun () -> Generators.vqe 4);
    entry "vqe5" 5 (fun () -> Generators.vqe 5);
    entry "qpe4" 4 (fun () -> Generators.qpe 4);
    entry "qpe5" 5 (fun () -> Generators.qpe 5);
    entry "grover3" 3 (fun () -> Generators.grover 3);
    entry "adder4" 4 (fun () -> Generators.adder 4);
  ]

(* Devices a 5-qubit circuit still fits on, with genuinely different
   connectivity: path, cycle, and a 2x3 mesh. *)
let topologies =
  [
    ("line5", Topology.Devices.linear 5);
    ("ring5", Topology.Devices.ring 5);
    ("grid2x3", Topology.Devices.grid 2 3);
  ]

(* the CI subset: one representative per circuit family *)
let quick_names =
  [ "ghz4"; "wstate4"; "qft4"; "bv4"; "qaoa4"; "vqe4"; "qpe4"; "grover3" ]

let suite ~quick =
  if quick then List.filter (fun e -> List.mem e.name quick_names) circuits
  else circuits
