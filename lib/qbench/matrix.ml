(* The benchmark matrix: routers x topologies x circuit families, the
   IQM-benchmark-style comparison harness (arXiv:2502.03908) behind
   `bench --only matrix`.

   Each cell transpiles one family instance on one topology with one
   router and reports CNOT totals and SWAP counts next to depth overhead
   (routed depth over the Full_connectivity-optimized depth of the same
   circuit) and the analytic estimated success probability under that
   topology's synthetic calibration.  Every number is a deterministic
   function of (instance, topology, router, seed) — no wall-clock fields —
   so the JSON snapshot, the markdown table and the golden quick subset
   are byte-identical across runs and worker counts. *)

type instance = {
  family : string;
  instance : string;
  n_qubits : int;
  build : unit -> Qcircuit.Circuit.t;
}

let inst family instance n_qubits build = { family; instance; n_qubits; build }

let instances ~quick =
  if quick then
    [
      inst "random" "g30-d0.40-5q" 5 (fun () ->
          Generators.random_density ~seed:11 ~gates:30 ~density:0.4 5);
      inst "qaoa-er" "p1-e0.50-5q" 5 (fun () ->
          Generators.qaoa_erdos_renyi ~seed:11 ~p:1 ~edge_prob:0.5 5);
      inst "brickwork" "c4-5q" 5 (fun () ->
          Generators.supremacy_brickwork ~seed:11 ~cycles:4 5);
      inst "ghz" "5q" 5 (fun () -> Generators.ghz_chain 5);
      inst "ladder" "r2-4q" 4 (fun () -> Generators.cx_ladder ~rounds:2 4);
    ]
  else
    List.map
      (fun d ->
        inst "random"
          (Printf.sprintf "g60-d%.2f-8q" d)
          8
          (fun () -> Generators.random_density ~seed:11 ~gates:60 ~density:d 8))
      [ 0.2; 0.4; 0.6; 0.8 ]
    @ List.map
        (fun p ->
          inst "qaoa-er"
            (Printf.sprintf "p2-e%.2f-8q" p)
            8
            (fun () -> Generators.qaoa_erdos_renyi ~seed:11 ~p:2 ~edge_prob:p 8))
        [ 0.3; 0.5; 0.8 ]
    @ [
        inst "brickwork" "c6-8q" 8 (fun () ->
            Generators.supremacy_brickwork ~seed:11 ~cycles:6 8);
        inst "brickwork" "c6-12q" 12 (fun () ->
            Generators.supremacy_brickwork ~seed:11 ~cycles:6 12);
        inst "ghz" "8q" 8 (fun () -> Generators.ghz_chain 8);
        inst "ghz" "12q" 12 (fun () -> Generators.ghz_chain 12);
        inst "ladder" "r3-8q" 8 (fun () -> Generators.cx_ladder ~rounds:3 8);
        inst "ladder" "r3-12q" 12 (fun () -> Generators.cx_ladder ~rounds:3 12);
      ]

let quick_topologies () =
  [
    ("line5", Topology.Devices.linear 5);
    ("grid2x3", Topology.Devices.grid 2 3);
    ("heavyhex2x2", Topology.Devices.heavy_hex 2 2);
  ]

(* the golden quick subset pins only the two smallest topologies, so the
   checked-in snapshot stays short and regeneration stays cheap *)
let golden_topologies () =
  [ ("line5", Topology.Devices.linear 5); ("grid2x3", Topology.Devices.grid 2 3) ]

let full_topologies () =
  [
    ("line12", Topology.Devices.linear 12);
    ("ring12", Topology.Devices.ring 12);
    ("grid3x4", Topology.Devices.grid 3 4);
    ("heavyhex2x3", Topology.Devices.heavy_hex 2 3);
    ("montreal", Topology.Devices.montreal);
  ]

(* the full router column set of the routing golden corpus *)
let routers =
  [
    ("sabre", Qroute.Pipeline.Sabre_router);
    ("nassc", Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config);
    ("astar", Qroute.Pipeline.Astar_router);
    ("sabre-ha", Qroute.Pipeline.Sabre_ha);
    ("nassc-ha", Qroute.Pipeline.Nassc_ha Qroute.Nassc.default_config);
    ("hybrid", Qroute.Pipeline.Hybrid_router Qroute.Hybrid.default_config);
  ]

type cell = {
  family : string;
  instance : string;
  topology : string;
  router : string;
  n_qubits : int;
  base_cx : int;
  base_depth : int;
  cx_total : int;
  depth : int;
  n_swaps : int;
  depth_overhead : float;
  esp : float;
  rec_steps : int;
  rec_candidates : int;
}

let default_seed = 11
let default_trials = 4

let c_cells = Qobs.counter "matrix.cells"
let c_esp_evals = Qobs.counter "matrix.esp_evals"
let c_skipped = Qobs.counter "matrix.cells_skipped"

let run ?(seed = default_seed) ?(trials = default_trials) ?workers ~instances ~topologies
    () =
  let params = { Qroute.Engine.default_params with seed } in
  List.concat_map
    (fun i ->
      let circuit = i.build () in
      (* the no-routing baseline the depth-overhead column is relative to *)
      let base =
        Qroute.Pipeline.transpile ~params ~router:Qroute.Pipeline.Full_connectivity
          (Topology.Devices.fully_connected i.n_qubits)
          circuit
      in
      List.concat_map
        (fun (tname, coupling) ->
          if Topology.Coupling.n_qubits coupling < i.n_qubits then begin
            Qobs.incr c_skipped;
            []
          end
          else begin
            let cal = Topology.Calibration.generate coupling in
            List.map
              (fun (rname, router) ->
                Qobs.incr c_cells;
                let rec_root = Qobs.Recorder.create ~label:"matrix" () in
                let r =
                  Qobs.Recorder.with_recorder rec_root (fun () ->
                      Qroute.Pipeline.transpile ~params ~trials ?workers ~router coupling
                        circuit)
                in
                let esp =
                  match r.final_layout with
                  | Some fl ->
                      Qobs.incr c_esp_evals;
                      Qsim.Success.routed_esp ~cal ~routed:r.circuit ~final_layout:fl
                  | None -> 1.0
                in
                let t = Qobs.Recorder.totals rec_root in
                {
                  family = i.family;
                  instance = i.instance;
                  topology = tname;
                  router = rname;
                  n_qubits = i.n_qubits;
                  base_cx = base.cx_total;
                  base_depth = base.depth;
                  cx_total = r.cx_total;
                  depth = r.depth;
                  n_swaps = r.n_swaps;
                  depth_overhead =
                    float_of_int r.depth /. float_of_int (max 1 base.depth);
                  esp;
                  rec_steps = t.Qobs.Recorder.steps;
                  rec_candidates = t.Qobs.Recorder.candidates;
                })
              routers
          end)
        topologies)
    instances

(* ---- exports ---- *)

let schema_version = 1
let kind = "nassc-bench-matrix"

let cell_json c =
  Jsonlite.Obj
    [
      ("family", Jsonlite.Str c.family);
      ("instance", Jsonlite.Str c.instance);
      ("topology", Jsonlite.Str c.topology);
      ("router", Jsonlite.Str c.router);
      ("n_qubits", Jsonlite.Num (float_of_int c.n_qubits));
      ("base_cx", Jsonlite.Num (float_of_int c.base_cx));
      ("base_depth", Jsonlite.Num (float_of_int c.base_depth));
      ("cx_total", Jsonlite.Num (float_of_int c.cx_total));
      ("depth", Jsonlite.Num (float_of_int c.depth));
      ("n_swaps", Jsonlite.Num (float_of_int c.n_swaps));
      ("depth_overhead", Jsonlite.Num c.depth_overhead);
      ("esp", Jsonlite.Num c.esp);
      ("recorder_steps", Jsonlite.Num (float_of_int c.rec_steps));
      ("recorder_candidates", Jsonlite.Num (float_of_int c.rec_candidates));
    ]

let to_json ~git_sha ~suite ~seed ~trials cells =
  Jsonlite.Obj
    [
      ("schema_version", Jsonlite.Num (float_of_int schema_version));
      ("kind", Jsonlite.Str kind);
      ("git_sha", Jsonlite.Str git_sha);
      ("suite", Jsonlite.Str suite);
      ("seed", Jsonlite.Num (float_of_int seed));
      ("trials", Jsonlite.Num (float_of_int trials));
      ("cells", Jsonlite.List (List.map cell_json cells));
    ]

let markdown cells =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "| family | instance | topology | router | cx_total | swaps | depth | depth_overhead \
     | esp |\n";
  Buffer.add_string b "|---|---|---|---|---:|---:|---:|---:|---:|\n";
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %s | %s | %s | %d | %d | %d | %.3f | %.4f |\n" c.family
           c.instance c.topology c.router c.cx_total c.n_swaps c.depth c.depth_overhead
           c.esp))
    cells;
  Buffer.contents b

let golden_lines cells =
  String.concat ""
    (List.map
       (fun c ->
         Printf.sprintf "%s %s %s %s cx=%d swaps=%d depth=%d overhead=%s esp=%s steps=%d \
                         cand=%d\n"
           c.family c.instance c.topology c.router c.cx_total c.n_swaps c.depth
           (Jsonlite.number_to_string c.depth_overhead)
           (Jsonlite.number_to_string c.esp)
           c.rec_steps c.rec_candidates)
       cells)
