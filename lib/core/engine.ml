open Mathkit
open Qgate
open Topology

type params = {
  ext_size : int;
  ext_weight : float;
  decay_delta : float;
  stall_limit : int;
  seed : int;
  iterations : int;
  bonus_weight : float;
}

let default_params =
  {
    ext_size = 20;
    ext_weight = 0.5;
    decay_delta = 0.001;
    stall_limit = 30;
    seed = 11;
    iterations = 3;
    bonus_weight = 1.0;
  }

exception Routing_stuck of { front : (int * int) list; l2p : int array }

let () =
  Printexc.register_printer (function
    | Routing_stuck { front; l2p } ->
        Some
          (Printf.sprintf
             "Engine.Routing_stuck: no swap candidates for front {%s} under mapping [%s]"
             (String.concat "; "
                (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) front))
             (String.concat " " (Array.to_list (Array.map string_of_int l2p))))
    | _ -> None)

type tag = Not_swap | Swap_plain | Swap_orient of int * int
type out_op = { mutable gate : Gate.t; op_qubits : int list; mutable tag : tag }
type mapping = { l2p : int array; p2l : int array }

let mapping_of_layout ~n_phys l2p =
  let p2l = Array.make n_phys (-1) in
  Array.iteri
    (fun l p ->
      if p < 0 || p >= n_phys then invalid_arg "Engine.mapping_of_layout: bad layout";
      if p2l.(p) >= 0 then invalid_arg "Engine.mapping_of_layout: duplicate physical qubit";
      p2l.(p) <- l)
    l2p;
  { l2p = Array.copy l2p; p2l }

let apply_swap m p1 p2 =
  let l1 = m.p2l.(p1) and l2 = m.p2l.(p2) in
  m.p2l.(p1) <- l2;
  m.p2l.(p2) <- l1;
  if l1 >= 0 then m.l2p.(l1) <- p2;
  if l2 >= 0 then m.l2p.(l2) <- p1

(* ---- the emitted-op stream ----

   [s_rev] is the routed output, newest first (what [route_once] always
   kept).  [s_wire] additionally indexes the same ops per physical qubit,
   newest first, each carrying its global emission index.  The bonus hooks
   walk a bounded window of recent ops on exactly two wires; with the
   per-wire tails they visit only ops touching those wires and use the
   emission index to honor the global window bound, instead of filtering
   the whole stream with [touches].

   A stream may carry a sink: once retained ops exceed [2 * keep], all but
   the newest [keep] are handed to the sink oldest-first and dropped from
   [s_rev] and the wire index, keeping resident memory O(keep) over
   million-gate runs.  The bonus hooks only scan ops with emission index
   >= total - scan_limit and only retro-mutate ops found by that scan, so
   any [keep >= scan_limit + 1] makes flushing invisible to them. *)

type stream = {
  mutable s_rev : out_op list;
  mutable s_total : int;
  s_wire : (int * out_op) list array;
  s_sink : (out_op -> unit) option;
  s_keep : int;
  mutable s_oldest : int;  (* emission index of the oldest retained op *)
}

let stream_create ?sink ?(keep = 64) ~n_phys () =
  if keep < 1 then invalid_arg "Engine.stream_create: keep must be >= 1";
  {
    s_rev = [];
    s_total = 0;
    s_wire = Array.make n_phys [];
    s_sink = sink;
    s_keep = keep;
    s_oldest = 0;
  }

(* split a list into its first [n] elements (order preserved) and the rest *)
let rec take_rev n acc l =
  if n = 0 then (acc, l)
  else match l with [] -> (acc, []) | x :: tl -> take_rev (n - 1) (x :: acc) tl

let maybe_flush s =
  match s.s_sink with
  | None -> ()
  | Some sink ->
      if s.s_total - s.s_oldest > 2 * s.s_keep then begin
        (* [s_rev] is newest-first: the first [keep] entries stay resident,
           the tail is delivered oldest-first and dropped *)
        let kept_oldest_first, older_newest_first = take_rev s.s_keep [] s.s_rev in
        List.iter sink (List.rev older_newest_first);
        s.s_rev <- List.rev kept_oldest_first;
        s.s_oldest <- s.s_total - s.s_keep;
        let cut = s.s_oldest in
        Array.iteri
          (fun q entries ->
            match entries with
            | [] -> ()
            | _ -> s.s_wire.(q) <- List.filter (fun (i, _) -> i >= cut) entries)
          s.s_wire
      end

let stream_push s op =
  let idx = s.s_total in
  s.s_rev <- op :: s.s_rev;
  s.s_total <- idx + 1;
  List.iter
    (fun q -> if q >= 0 && q < Array.length s.s_wire then s.s_wire.(q) <- (idx, op) :: s.s_wire.(q))
    op.op_qubits;
  maybe_flush s

let stream_drain s =
  match s.s_sink with
  | None -> ()
  | Some sink ->
      List.iter sink (List.rev s.s_rev);
      s.s_rev <- [];
      s.s_oldest <- s.s_total;
      Array.fill s.s_wire 0 (Array.length s.s_wire) []

let stream_rev s = s.s_rev
let stream_total s = s.s_total
let stream_wire s q = s.s_wire.(q)

type bonus_fn =
  stream:stream -> mapping:mapping -> int -> int -> float * (out_op -> unit)

(* shared constants so the no-bonus paths (every SABRE candidate, and every
   NASSC candidate that does not advance the front) allocate nothing *)
let no_action : out_op -> unit = fun _ -> ()
let no_bonus = (0.0, no_action)
let zero_bonus ~stream:_ ~mapping:_ _ _ = no_bonus

type result = {
  routed : out_op list;
  initial_layout : int array;
  final_layout : int array;
  n_swaps : int;
}

type stream_stats = {
  st_initial_layout : int array;
  st_final_layout : int array;
  st_n_swaps : int;
  st_gates_in : int;
  st_peak_resident : int;
}

(* The canonical seed-derived streams.  [route_rng] replays the stream the
   engine historically created inside [route_once] ([Rng.create seed]);
   [layout_rng] the one [find_layout] used for its initial permutation
   ([seed + 7919]).  Keeping these as the defaults means a fixed seed
   reproduces pre-refactor outputs bit-for-bit, while callers (the trials
   engine, tests) can now inject their own streams. *)
let route_rng params = Rng.create params.seed
let layout_rng params = Rng.create (params.seed + 7919)

(* observability probes: all no-ops unless a Qobs collector is installed *)
let c_candidates = Qobs.counter "engine.swap_candidates_scored"
let c_h_basic = Qobs.counter "engine.h_basic_evals"
let c_h_lookahead = Qobs.counter "engine.h_lookahead_evals"
let c_swaps = Qobs.counter "engine.swaps_emitted"
let c_force = Qobs.counter "engine.force_progress_escapes"
let c_score_cache = Qobs.counter "engine.score_cache_hits"
let c_legacy_dist = Qobs.counter "engine.legacy_distmat_routes"
let g_predicted = Qobs.gauge "engine.predicted_cnot_savings"
let g_window_peak = Qobs.gauge "engine.window_peak_resident"

(* score-distribution histograms, fed only while the flight recorder is
   enabled so plain --trace output stays byte-identical to older builds *)
let h_candidate = Qobs.histogram "engine.candidate_h"
let h_chosen = Qobs.histogram "engine.chosen_h"
let h_front = Qobs.histogram "engine.front_size"

(* per-step scoring latency; wall clock, so only fed under the explicit
   Qobs.set_timing opt-in (deterministic traces stay deterministic) *)
let h_score_time = Qobs.histogram "engine.step_score_ms"

(* ---- incremental candidate scoring ----

   The lookahead heuristic needs, per candidate SWAP (p1, p2), the front
   and extended distance sums under the exchanged mapping.  Only pairs
   touching p1 or p2 change, so each step precomputes the unexchanged base
   sums plus a per-physical-qubit -> pairs index, and each candidate is
   scored as base + delta over the touching pairs: O(deg) per candidate
   instead of O(|F| + |E|).

   Seed-compatibility invariant: for the hop metric every distance is a
   small exact integer, so base + delta is the exact same float the full
   rescan produced.  For non-integral metrics (eq. 3) the delta-form sum
   could differ from the rescan in the last ulp; the golden corpus pins
   the routed outputs for those too.  When a base sum is infinite
   (disconnected pairs) delta arithmetic would produce NaN, so scoring
   falls back to the full rescan for that step.

   Dense matrices keep the historical single-offset flat read; on-demand
   matrices ([Distmat.hops_lazy], used by the streaming engine on
   mega-scale devices) go through the row cache — same values, so scores
   and outputs are unchanged either way. *)

module Scoring = struct
  type scratch = {
    touch_f : (int * int) list array;
    touch_e : (int * int) list array;
    mutable dirty : int list;
  }

  type t = {
    d : float array;  (* dense flat backing, [||] for on-demand matrices *)
    dn : int;
    dm : Distmat.t;
    dense : bool;
    front : (int * int) list;
    ext : (int * int) list;
    base_front : float;
    base_ext : float;
    finite : bool;  (** both bases finite: delta scoring is valid *)
    sc : scratch;
    mutable evals : int;  (** pair distance evaluations since [prepare] *)
  }

  let make_scratch ~n_phys =
    {
      touch_f = Array.make n_phys [];
      touch_e = Array.make n_phys [];
      dirty = [];
    }

  let prepare sc ~dist ~front ~ext =
    List.iter
      (fun q ->
        sc.touch_f.(q) <- [];
        sc.touch_e.(q) <- [])
      sc.dirty;
    sc.dirty <- [];
    let dn = Distmat.n dist in
    let d, dense =
      match Distmat.raw_opt dist with Some d -> (d, true) | None -> ([||], false)
    in
    let mark touch (a, b) =
      if touch.(a) = [] && sc.touch_f.(a) = [] && sc.touch_e.(a) = [] then
        sc.dirty <- a :: sc.dirty;
      touch.(a) <- (a, b) :: touch.(a);
      if b <> a then begin
        if touch.(b) = [] && sc.touch_f.(b) = [] && sc.touch_e.(b) = [] then
          sc.dirty <- b :: sc.dirty;
        touch.(b) <- (a, b) :: touch.(b)
      end
    in
    (* base sums fold the pair lists in order, exactly as the full rescan
       did, so the unexchanged sums are bit-identical to the old code's *)
    let base pairs =
      if dense then
        List.fold_left (fun acc (a, b) -> acc +. d.((a * dn) + b)) 0.0 pairs
      else List.fold_left (fun acc (a, b) -> acc +. Distmat.get dist a b) 0.0 pairs
    in
    let base_front = base front and base_ext = base ext in
    List.iter (mark sc.touch_f) front;
    List.iter (mark sc.touch_e) ext;
    {
      d;
      dn;
      dm = dist;
      dense;
      front;
      ext;
      base_front;
      base_ext;
      finite = Float.is_finite base_front && Float.is_finite base_ext;
      sc;
      evals = 0;
    }

  let base_front t = t.base_front
  let base_ext t = t.base_ext
  let pair_evals t = t.evals

  let[@inline] dget t a b =
    if t.dense then t.d.((a * t.dn) + b) else Distmat.get t.dm a b

  let[@inline] mapped t p1 p2 a b =
    let a' = if a = p1 then p2 else if a = p2 then p1 else a in
    let b' = if b = p1 then p2 else if b = p2 then p1 else b in
    dget t a' b'

  let full_after t p1 p2 pairs =
    List.fold_left
      (fun acc (a, b) ->
        t.evals <- t.evals + 1;
        acc +. mapped t p1 p2 a b)
      0.0 pairs

  (* delta over [touch.(p1)] then the pairs of [touch.(p2)] not already
     counted (those touching p1 too) *)
  let delta t touch p1 p2 =
    let acc = ref 0.0 in
    List.iter
      (fun (a, b) ->
        t.evals <- t.evals + 1;
        acc := !acc +. (mapped t p1 p2 a b -. dget t a b))
      touch.(p1);
    List.iter
      (fun (a, b) ->
        if a <> p1 && b <> p1 then begin
          t.evals <- t.evals + 1;
          acc := !acc +. (mapped t p1 p2 a b -. dget t a b)
        end)
      touch.(p2);
    !acc

  let front_after t p1 p2 =
    if t.finite then t.base_front +. delta t t.sc.touch_f p1 p2
    else full_after t p1 p2 t.front

  let ext_after t p1 p2 =
    if t.finite then t.base_ext +. delta t t.sc.touch_e p1 p2
    else full_after t p1 p2 t.ext
end

(* ---- the traversal walker ----

   The routing loop only ever asks six questions of the circuit: the ready
   front, a node's gate and qubits, "execute this node", "are we done",
   and the lookahead window.  Abstracting those as closures lets the same
   loop drive both the materialized [Dag.Traversal] (classic whole-circuit
   routing) and the bounded [Streamdag] window (O(window)-memory streaming)
   without duplicating the scoring/stall/decay machinery.  Both walkers
   answer every question in the exact same order for the same circuit, so
   routed outputs are byte-identical across the two drivers. *)

type walker = {
  wk_front : unit -> int list;
  wk_gate : int -> Gate.t;
  wk_qubits : int -> int list;
  wk_execute : int -> unit;
  wk_finished : unit -> bool;
  wk_lookahead : int -> int list;
}

let two_qubit_front_of wk front_ids mapping =
  List.filter_map
    (fun id ->
      if Gate.is_two_qubit (wk.wk_gate id) then
        match wk.wk_qubits id with
        | [ a; b ] -> Some (mapping.l2p.(a), mapping.l2p.(b))
        | _ -> None
      else None)
    front_ids

(* the main routing loop, generic over the walker; returns the SWAP count.
   [oracle] is the exact-window hook ([?window] of [route_once]). *)
let route_core params coupling ~rng ~dist ~bonus ~oracle ~stream ~mapping wk =
  let n_phys = Coupling.n_qubits coupling in
  let scratch = Scoring.make_scratch ~n_phys in
  let n_swaps = ref 0 in
  let decay = Array.make n_phys 1.0 in
  let stall = ref 0 in
  let emit gate qubits tag =
    let op = { gate; op_qubits = qubits; tag } in
    stream_push stream op;
    op
  in
  let emit_mapped id =
    ignore
      (emit (wk.wk_gate id)
         (List.map (fun q -> mapping.l2p.(q)) (wk.wk_qubits id))
         Not_swap)
  in
  (* execute every currently executable front gate; returns true if any.
     The first round reuses the caller's front snapshot (the single front
     computation of this main-loop iteration); recursion re-reads the
     front only after gates actually retired. *)
  let rec drain_from front_ids =
    let executable id =
      match wk.wk_qubits id with
      | [ a; b ] when Gate.is_two_qubit (wk.wk_gate id) ->
          Coupling.connected coupling mapping.l2p.(a) mapping.l2p.(b)
      | _ -> true
    in
    match List.filter executable front_ids with
    | [] -> false
    | ready ->
        List.iter
          (fun id ->
            emit_mapped id;
            wk.wk_execute id)
          ready;
        ignore (drain_from (wk.wk_front ()));
        true
  in
  let apply_best_swap front_ids =
    let front_pairs = two_qubit_front_of wk front_ids mapping in
    let ext_pairs =
      List.filter_map
        (fun id ->
          match wk.wk_qubits id with
          | [ a; b ] -> Some (mapping.l2p.(a), mapping.l2p.(b))
          | _ -> None)
        (wk.wk_lookahead params.ext_size)
    in
    (* candidate swaps: all couplings touching a physical qubit of a front
       gate.  Enumeration order (hence the tie-break set fed to Rng.pick)
       is kept byte-for-byte: same insertions into a same-sized table, same
       fold. *)
    let candidate_set = Hashtbl.create 32 in
    List.iter
      (fun (pa, pb) ->
        List.iter
          (fun p ->
            List.iter
              (fun nb ->
                let key = (min p nb, max p nb) in
                Hashtbl.replace candidate_set key ())
              (Coupling.neighbors coupling p))
          [ pa; pb ])
      front_pairs;
    let candidates = Hashtbl.fold (fun k () acc -> k :: acc) candidate_set [] in
    let timing = Qobs.timing_enabled () && Qobs.active () in
    let t0 = if timing then Unix.gettimeofday () else 0.0 in
    let sc = Scoring.prepare scratch ~dist ~front:front_pairs ~ext:ext_pairs in
    let base_front = Scoring.base_front sc in
    let nf = float_of_int (max 1 (List.length front_pairs)) in
    let ne = float_of_int (max 1 (List.length ext_pairs)) in
    let scored =
      List.map
        (fun (p1, p2) ->
          let front_after = Scoring.front_after sc p1 p2 in
          (* Optimization bonuses only discriminate between candidates that
             actually advance the front layer; a SWAP that cancels CNOTs but
             moves no qubit closer is still wasted work. *)
          let bonus_v, action =
            if front_after < base_front -. 1e-9 then bonus ~stream ~mapping p1 p2
            else no_bonus
          in
          let h_basic = ((3.0 *. front_after) -. (params.bonus_weight *. bonus_v)) /. nf in
          let h_ext =
            if ext_pairs = [] then 0.0
            else params.ext_weight /. ne *. Scoring.ext_after sc p1 p2
          in
          let h = (h_basic +. h_ext) *. Float.max decay.(p1) decay.(p2) in
          (h, h_basic, h_ext, bonus_v, (p1, p2), action))
        candidates
    in
    if Qobs.active () then begin
      let n_cand = List.length candidates in
      Qobs.add c_candidates n_cand;
      Qobs.add c_h_basic n_cand;
      if ext_pairs <> [] then Qobs.add c_h_lookahead n_cand;
      (* pair evaluations the delta scorer skipped relative to the full
         rescan of every front/extended pair per candidate *)
      let full = n_cand * (List.length front_pairs + List.length ext_pairs) in
      Qobs.add c_score_cache (max 0 (full - Scoring.pair_evals sc))
    end;
    match scored with
    | [] ->
        raise (Routing_stuck { front = front_pairs; l2p = Array.copy mapping.l2p })
    | _ ->
        let best_h =
          List.fold_left (fun m (h, _, _, _, _, _) -> Float.min m h) infinity scored
        in
        let best = List.filter (fun (h, _, _, _, _, _) -> h <= best_h +. 1e-12) scored in
        let _, _, _, bonus_v, (p1, p2), action = Rng.pick rng best in
        if timing then
          Qobs.observe h_score_time ((Unix.gettimeofday () -. t0) *. 1000.0);
        if Qobs.Recorder.active () then begin
          Qobs.Recorder.record_step
            ~front:(List.length front_pairs)
            ~candidates:
              (List.map
                 (fun (h, hb, he, bv, (a, b), _) ->
                   {
                     Qobs.Recorder.p1 = a;
                     p2 = b;
                     h_basic = hb;
                     h_lookahead = he;
                     h;
                     bonus = bv;
                   })
                 scored)
            ~chosen:(p1, p2) ~chosen_bonus:bonus_v ();
          List.iter (fun (h, _, _, _, _, _) -> Qobs.observe h_candidate h) scored;
          Qobs.observe h_chosen best_h;
          Qobs.observe h_front (float_of_int (List.length front_pairs))
        end;
        let op = emit Gate.SWAP [ p1; p2 ] Swap_plain in
        action op;
        apply_swap mapping p1 p2;
        incr n_swaps;
        Qobs.incr c_swaps;
        (* eq. 1's prediction for the chosen SWAP: the CNOTs the downstream
           passes are expected to recover.  Paired with the realized savings
           recorded by the pipeline, this turns the paper's central claim
           into a runtime metric. *)
        Qobs.gauge_add g_predicted bonus_v;
        decay.(p1) <- decay.(p1) +. params.decay_delta;
        decay.(p2) <- decay.(p2) +. params.decay_delta
  in
  (* exact-window hook: on a stuck front, let the caller hand back a full
     SWAP sequence (the hybrid router's oracle).  The swaps are emitted and
     applied verbatim — Swap_plain, so downstream finalizers treat them like
     any heuristic swap — and each is recorded as a single-candidate step so
     flight records stay replayable.  Declining (None / empty) falls through
     to the heuristic path untouched; with no hook installed this is free
     and the engine's behavior is byte-identical to before. *)
  let try_window front_ids =
    match oracle with
    | None -> false
    | Some solve -> (
        let front_pairs = two_qubit_front_of wk front_ids mapping in
        match solve ~front:front_pairs with
        | None | Some [] -> false
        | Some swaps ->
            let front_n = List.length front_pairs in
            List.iter
              (fun (p, q) ->
                ignore (emit Gate.SWAP [ p; q ] Swap_plain);
                if Qobs.Recorder.active () then
                  Qobs.Recorder.record_step ~front:front_n
                    ~candidates:
                      [
                        {
                          Qobs.Recorder.p1 = min p q;
                          p2 = max p q;
                          h_basic = 0.0;
                          h_lookahead = 0.0;
                          h = 0.0;
                          bonus = 0.0;
                        };
                      ]
                    ~chosen:(p, q) ~chosen_bonus:0.0 ();
                apply_swap mapping p q;
                incr n_swaps;
                Qobs.incr c_swaps)
              swaps;
            true)
  in
  let force_progress front_ids =
    (* escape valve: route the first front 2q gate along a shortest path *)
    Qobs.incr c_force;
    match front_ids with
    | [] -> ()
    | id :: _ -> begin
        match wk.wk_qubits id with
        | [ a; b ] ->
            let pa = mapping.l2p.(a) and pb = mapping.l2p.(b) in
            let path = Coupling.shortest_path coupling pa pb in
            let front_n =
              if Qobs.Recorder.active () then
                List.length (two_qubit_front_of wk front_ids mapping)
              else 0
            in
            let rec walk = function
              | p :: q :: rest when rest <> [] ->
                  ignore (emit Gate.SWAP [ p; q ] Swap_plain);
                  if Qobs.Recorder.active () then
                    Qobs.Recorder.record_step ~front:front_n ~forced:true
                      ~candidates:
                        [
                          {
                            Qobs.Recorder.p1 = min p q;
                            p2 = max p q;
                            h_basic = 0.0;
                            h_lookahead = 0.0;
                            h = 0.0;
                            bonus = 0.0;
                          };
                        ]
                      ~chosen:(p, q) ~chosen_bonus:0.0 ();
                  apply_swap mapping p q;
                  incr n_swaps;
                  Qobs.incr c_swaps;
                  walk (q :: rest)
              | _ -> ()
            in
            walk path
        | _ -> ()
      end
  in
  while not (wk.wk_finished ()) do
    (* the single front snapshot of this iteration: drain tries it first,
       and on a stuck front the very same ids feed candidate generation or
       the escape valve (they cannot have changed: nothing retired) *)
    let front_ids = wk.wk_front () in
    if drain_from front_ids then begin
      stall := 0;
      Array.fill decay 0 n_phys 1.0
    end
    else if try_window front_ids then stall := 0
    else begin
      if !stall >= params.stall_limit then begin
        force_progress front_ids;
        stall := 0
      end
      else begin
        apply_best_swap front_ids;
        incr stall
      end
    end
  done;
  !n_swaps

let route_once params coupling ~rng ~dist ~bonus ?window ?dag circuit init_layout =
  Qobs.span "engine.route_once" @@ fun () ->
  let n_phys = Coupling.n_qubits coupling in
  let n_log = Qcircuit.Circuit.n_qubits circuit in
  if n_log > n_phys then invalid_arg "Engine.route_once: circuit larger than device";
  if Distmat.n dist <> n_phys then
    invalid_arg "Engine.route_once: distance matrix size does not match device";
  if Distmat.is_legacy dist then Qobs.incr c_legacy_dist;
  List.iter
    (fun (i : Qcircuit.Circuit.instr) ->
      if Gate.arity i.gate > 2 && not (Gate.is_directive i.gate) then
        invalid_arg "Engine.route_once: lower gates to <=2 qubits before routing")
    (Qcircuit.Circuit.instrs circuit);
  let mapping = mapping_of_layout ~n_phys init_layout in
  let initial_layout = Array.copy mapping.l2p in
  (* the DAG is a pure function of the circuit, so callers that route the
     same circuit repeatedly (the layout search) build it once and pass it
     in; per-pass mutable state lives in the traversal, created below *)
  let dag = match dag with Some d -> d | None -> Qcircuit.Dag.of_circuit circuit in
  let tr = Qcircuit.Dag.Traversal.create dag in
  let wk =
    {
      wk_front = (fun () -> Qcircuit.Dag.Traversal.front tr);
      wk_gate = (fun id -> (Qcircuit.Dag.node dag id).gate);
      wk_qubits = (fun id -> (Qcircuit.Dag.node dag id).qubits);
      wk_execute = (fun id -> Qcircuit.Dag.Traversal.execute tr id);
      wk_finished = (fun () -> Qcircuit.Dag.Traversal.finished tr);
      wk_lookahead = (fun k -> Qcircuit.Dag.Traversal.lookahead tr k);
    }
  in
  let stream = stream_create ~n_phys () in
  let n_swaps =
    route_core params coupling ~rng ~dist ~bonus ~oracle:window ~stream ~mapping wk
  in
  {
    routed = List.rev stream.s_rev;
    initial_layout;
    final_layout = Array.copy mapping.l2p;
    n_swaps;
  }

let route_stream params coupling ~rng ~dist ~bonus ~window ?(keep = 64) ~sink source
    init_layout =
  Qobs.span "engine.route_stream" @@ fun () ->
  let n_phys = Coupling.n_qubits coupling in
  let n_log = Qcircuit.Source.n_qubits source in
  if n_log > n_phys then invalid_arg "Engine.route_stream: circuit larger than device";
  if Distmat.n dist <> n_phys then
    invalid_arg "Engine.route_stream: distance matrix size does not match device";
  if Distmat.is_legacy dist then Qobs.incr c_legacy_dist;
  let mapping = mapping_of_layout ~n_phys init_layout in
  let initial_layout = Array.copy mapping.l2p in
  (* gate arity and qubit-range validation happens per admission inside
     [Streamdag]; [create] already admits the first window *)
  let sd = Qcircuit.Streamdag.create ~window source in
  let wk =
    {
      wk_front = (fun () -> Qcircuit.Streamdag.front sd);
      wk_gate = (fun id -> Qcircuit.Streamdag.gate sd id);
      wk_qubits = (fun id -> Qcircuit.Streamdag.qubits sd id);
      wk_execute = (fun id -> Qcircuit.Streamdag.execute sd id);
      wk_finished = (fun () -> Qcircuit.Streamdag.finished sd);
      wk_lookahead = (fun k -> Qcircuit.Streamdag.lookahead sd k);
    }
  in
  let stream = stream_create ~sink ~keep ~n_phys () in
  let n_swaps =
    route_core params coupling ~rng ~dist ~bonus ~oracle:None ~stream ~mapping wk
  in
  stream_drain stream;
  Qobs.gauge_set g_window_peak (float_of_int (Qcircuit.Streamdag.peak_resident sd));
  {
    st_initial_layout = initial_layout;
    st_final_layout = Array.copy mapping.l2p;
    st_n_swaps = n_swaps;
    st_gates_in = Qcircuit.Streamdag.executed_count sd;
    st_peak_resident = Qcircuit.Streamdag.peak_resident sd;
  }

let reverse_circuit c =
  Qcircuit.Circuit.create (Qcircuit.Circuit.n_qubits c)
    (List.rev
       (List.filter
          (fun (i : Qcircuit.Circuit.instr) -> i.gate <> Gate.Measure)
          (Qcircuit.Circuit.instrs c)))

let find_layout params coupling ~rng ~dist ~bonus ?dag circuit =
  Qobs.span "engine.find_layout" @@ fun () ->
  (* The forward/backward layout search routes the circuit repeatedly; only
     the final routing pass belongs in the flight record. *)
  Qobs.Recorder.without @@ fun () ->
  let n_phys = Coupling.n_qubits coupling in
  let n_log = Qcircuit.Circuit.n_qubits circuit in
  if n_log > n_phys then invalid_arg "Engine.find_layout: circuit larger than device";
  let perm = Rng.permutation rng n_phys in
  let layout = ref (Array.init n_log (fun l -> perm.(l))) in
  let fwd = circuit and bwd = reverse_circuit circuit in
  let fwd_dag = match dag with Some d -> d | None -> Qcircuit.Dag.of_circuit fwd in
  let bwd_dag = Qcircuit.Dag.of_circuit bwd in
  for _ = 1 to params.iterations do
    (* each refinement pass replays a fresh route stream, matching the
       historical behavior (and SABRE's, where every pass is seeded alike) *)
    let r1 =
      route_once params coupling ~rng:(route_rng params) ~dist ~bonus ~dag:fwd_dag fwd
        !layout
    in
    let r2 =
      route_once params coupling ~rng:(route_rng params) ~dist ~bonus ~dag:bwd_dag bwd
        r1.final_layout
    in
    layout := r2.final_layout
  done;
  !layout

let to_circuit ~n_phys ops =
  Qcircuit.Circuit.create n_phys
    (List.map (fun op -> { Qcircuit.Circuit.gate = op.gate; qubits = op.op_qubits }) ops)
