open Qgate
open Topology

type result = {
  circuit : Qcircuit.Circuit.t;
  initial_layout : int array;
  final_layout : int array;
  n_swaps : int;
}

let hop_distance = Distmat.hops

let c_decomposed = Qobs.counter "sabre.swaps_decomposed"

let route ?(params = Engine.default_params) ?dist coupling circuit =
  Qobs.span "sabre.route" @@ fun () ->
  Qobs.Recorder.in_router "sabre" @@ fun () ->
  let dist = match dist with Some d -> d | None -> hop_distance coupling in
  let bonus = Engine.zero_bonus in
  let dag = Qcircuit.Dag.of_circuit circuit in
  let layout =
    Engine.find_layout params coupling ~rng:(Engine.layout_rng params) ~dist ~bonus ~dag
      circuit
  in
  let r =
    Engine.route_once params coupling ~rng:(Engine.route_rng params) ~dist ~bonus ~dag
      circuit layout
  in
  {
    circuit = Engine.to_circuit ~n_phys:(Coupling.n_qubits coupling) r.routed;
    initial_layout = r.initial_layout;
    final_layout = r.final_layout;
    n_swaps = r.n_swaps;
  }

let decompose_swaps c =
  let expand (i : Qcircuit.Circuit.instr) =
    match (i.gate, i.qubits) with
    | Gate.SWAP, [ a; b ] ->
        Qobs.incr c_decomposed;
        [
          { Qcircuit.Circuit.gate = Gate.CX; qubits = [ a; b ] };
          { Qcircuit.Circuit.gate = Gate.CX; qubits = [ b; a ] };
          { Qcircuit.Circuit.gate = Gate.CX; qubits = [ a; b ] };
        ]
    | _ -> [ i ]
  in
  Qcircuit.Circuit.create (Qcircuit.Circuit.n_qubits c)
    (List.concat_map expand (Qcircuit.Circuit.instrs c))

let check_routed coupling c =
  List.for_all
    (fun (i : Qcircuit.Circuit.instr) ->
      match (Gate.is_two_qubit i.gate, i.qubits) with
      | true, [ a; b ] -> Coupling.connected coupling a b
      | _ -> true)
    (Qcircuit.Circuit.instrs c)
