(** SABRE routing (Li, Ding, Xie - ASPLOS 2019), the paper's baseline.

    Random initial layout refined by reverse traversal, then a final forward
    pass with the distance-only lookahead heuristic.  Inserted SWAPs are
    left as [SWAP] gates with the fixed three-CNOT decomposition applied by
    {!decompose_swaps}. *)

type result = {
  circuit : Qcircuit.Circuit.t;  (** over the device's physical qubits *)
  initial_layout : int array;  (** logical -> physical *)
  final_layout : int array;
  n_swaps : int;
}

val hop_distance : Topology.Coupling.t -> Topology.Distmat.t
(** The plain BFS hop-count distance matrix as floats (infinity when
    disconnected); the default routing metric.  Same as
    {!Topology.Distmat.hops}. *)

val route :
  ?params:Engine.params ->
  ?dist:Topology.Distmat.t ->
  Topology.Coupling.t ->
  Qcircuit.Circuit.t ->
  result
(** Route a (<=2-qubit-gate) circuit.  [dist] overrides the hop-count
    distance matrix (used by the noise-aware HA variant). *)

val decompose_swaps : Qcircuit.Circuit.t -> Qcircuit.Circuit.t
(** Expand each SWAP into the fixed cx(a,b) cx(b,a) cx(a,b) template. *)

val check_routed : Topology.Coupling.t -> Qcircuit.Circuit.t -> bool
(** Every two-qubit gate acts on coupled physical qubits. *)
