(** Parallel best-of-N trial engine over OCaml 5 domains.

    SABRE-family routing is randomized, and production transpilers (e.g.
    Qiskit's [SabreSwap]) exploit that by running many seeded trials in
    parallel and keeping the best result.  This module provides that
    machinery generically: trial [k] of a run with base seed [s] always uses
    seed [s + k * seed_stride], shared inputs stay read-only across domains,
    and the winner is picked by a deterministic total order — so results are
    reproducible regardless of worker count or scheduling, and trial 0
    reproduces the single-shot path bit-for-bit.

    Observability: when the calling domain has a {!Qobs} collector
    installed, every trial runs under its own fresh collector (keyed by
    trial index, not by domain) and the collectors are merged into the
    caller's in trial order after the join — so traces, counters and spans
    are identical for any worker count.  [trials.ok] / [trials.failed]
    count per-trial outcomes on the caller's collector.

    Failure policy: a trial that raises is isolated — it is recorded in the
    per-trial statistics with its [error] message and excluded from best
    selection; the pool itself never deadlocks or leaks a domain.  Only when
    {e every} trial fails is the first trial's exception re-raised, so
    systematic errors (circuit wider than the device, say) surface exactly
    as they would from a single-shot call. *)

val seed_stride : int
(** Prime stride between per-trial seeds (104729, the 10000th prime —
    distinct from the +7919 offset {!Engine.layout_rng} uses, so trial
    streams never collide with layout streams). *)

val trial_seed : base:int -> int -> int
(** [trial_seed ~base k] = [base + k * seed_stride]; [trial_seed ~base 0 =
    base], which is what makes a 1-trial run identical to the single-shot
    path. *)

val default_workers : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1. *)

val inflight : unit -> int
(** Number of trials executing right now, across every pool in the
    process.  A lock-free probe for the Qtel resource sampler's
    pool-utilization gauge; 0 whenever no {!run} or {!map} is active.
    Deliberately kept out of traces — its value depends on scheduling. *)

val map : ?workers:int -> n:int -> (int -> 'a) -> ('a, exn) result array
(** [map ~workers ~n f] evaluates [f k] for [k = 0..n-1] on a pool of
    [workers] domains (default {!default_workers}, capped at [n]) and
    returns the outcomes in trial order.  Exceptions are captured per slot.
    With [workers:1] everything runs on the calling domain, in order. *)

type stat = {
  trial : int;
  seed : int;  (** the derived per-trial seed *)
  cx_total : int;
  depth : int;
  n_swaps : int;
  wall_time : float;  (** seconds of wall clock spent in this trial *)
  error : string option;  (** [Some msg] iff the trial raised *)
}
(** Per-trial outcome.  Failed trials carry [max_int] metrics and an
    [error]. *)

type 'a report = {
  best : 'a;
  best_stat : stat;
  stats : stat list;  (** all [n] trials, in trial order *)
  wall_time : float;  (** whole-run wall clock *)
  workers : int;  (** worker count actually used *)
}

val run :
  ?workers:int ->
  n:int ->
  base_seed:int ->
  measure:('a -> int * int * int) ->
  (trial:int -> seed:int -> 'a) ->
  'a report
(** [run ~n ~base_seed ~measure f] executes [f ~trial:k ~seed:(trial_seed
    ~base:base_seed k)] for each [k], scores each finished trial with
    [measure] (returning [(cx_total, depth, n_swaps)]), and returns the
    winner: minimal [cx_total], ties broken by [depth], then by trial
    index.  @raise the first trial's exception if all [n] trials fail. *)
