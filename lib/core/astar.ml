open Qgate
open Topology

type params = { seed : int; max_expansions : int }

let default_params = { seed = 11; max_expansions = 4000 }

let layers c =
  let rev_layers = ref [] in
  let current = ref [] in
  let used = Hashtbl.create 16 in
  let flush () =
    if !current <> [] then begin
      rev_layers := List.rev !current :: !rev_layers;
      current := [];
      Hashtbl.clear used
    end
  in
  List.iter
    (fun (i : Qcircuit.Circuit.instr) ->
      if List.exists (Hashtbl.mem used) i.qubits then flush ();
      current := i :: !current;
      List.iter (fun q -> Hashtbl.replace used q ()) i.qubits)
    (Qcircuit.Circuit.instrs c);
  flush ();
  List.rev !rev_layers

(* search state for one layer *)
type state = { l2p : int array; swaps_rev : (int * int) list; g : int }

let c_expansions = Qobs.counter "astar.node_expansions"
let c_fallbacks = Qobs.counter "astar.budget_fallbacks"
let c_layers = Qobs.counter "astar.layers_solved"

let encode_mapping l2p =
  String.concat "," (Array.to_list (Array.map string_of_int l2p))

let route ?(params = default_params) coupling circuit =
  Qobs.span "astar.route" @@ fun () ->
  Qobs.Recorder.in_router "astar" @@ fun () ->
  let n_phys = Coupling.n_qubits coupling in
  let n_log = Qcircuit.Circuit.n_qubits circuit in
  if n_log > n_phys then invalid_arg "Astar.route: circuit larger than device";
  List.iter
    (fun (i : Qcircuit.Circuit.instr) ->
      if Gate.arity i.gate > 2 && not (Gate.is_directive i.gate) then
        invalid_arg "Astar.route: lower gates to <=2 qubits before routing")
    (Qcircuit.Circuit.instrs circuit);
  let dist = Distmat.hops coupling in
  let d = Distmat.raw dist and dn = Distmat.n dist in
  let rng = Mathkit.Rng.create params.seed in
  let perm = Mathkit.Rng.permutation rng n_phys in
  let l2p = Array.init n_log (fun l -> perm.(l)) in
  let initial_layout = Array.copy l2p in
  let out = ref [] in
  let n_swaps = ref 0 in
  let emit gate qubits = out := { Qcircuit.Circuit.gate; qubits } :: !out in
  (* hop counts are exact small integers in float, so the A* f-ordering and
     the = 0.0 goal tests behave exactly as the integer matrix did *)
  let heuristic l2p pairs =
    List.fold_left
      (fun acc (a, b) -> acc +. (d.((l2p.(a) * dn) + l2p.(b)) -. 1.0))
      0.0 pairs
  in
  let apply_swap_arr l2p (p1, p2) =
    (* exchange whichever logical qubits live on p1/p2 *)
    Array.iteri
      (fun l p -> if p = p1 then l2p.(l) <- p2 else if p = p2 then l2p.(l) <- p1)
      l2p
  in
  let candidate_swaps l2p pairs =
    let set = Hashtbl.create 16 in
    List.iter
      (fun (a, b) ->
        List.iter
          (fun p ->
            List.iter
              (fun nb -> Hashtbl.replace set (min p nb, max p nb) ())
              (Coupling.neighbors coupling p))
          [ l2p.(a); l2p.(b) ])
      pairs;
    Hashtbl.fold (fun k () acc -> k :: acc) set []
  in
  let solve_layer pairs =
    (* returns the swap list (in order) making every pair adjacent *)
    if heuristic l2p pairs = 0.0 then []
    else begin
      let module Pq = Set.Make (struct
        type t = float * int * int (* f, tiebreak, id *)

        let compare = compare
      end) in
      let states = Hashtbl.create 256 in
      let closed = Hashtbl.create 256 in
      let counter = ref 0 in
      let queue = ref Pq.empty in
      let push st =
        let h = heuristic st.l2p pairs in
        incr counter;
        Hashtbl.replace states !counter st;
        queue := Pq.add (float_of_int st.g +. h, !counter, !counter) !queue
      in
      push { l2p = Array.copy l2p; swaps_rev = []; g = 0 };
      let expansions = ref 0 in
      let result = ref None in
      while !result = None && (not (Pq.is_empty !queue)) && !expansions < params.max_expansions do
        let ((_, _, id) as top) = Pq.min_elt !queue in
        queue := Pq.remove top !queue;
        let st = Hashtbl.find states id in
        let key = encode_mapping st.l2p in
        if not (Hashtbl.mem closed key) then begin
          Hashtbl.replace closed key ();
          incr expansions;
          Qobs.incr c_expansions;
          if heuristic st.l2p pairs = 0.0 then result := Some (List.rev st.swaps_rev)
          else
            List.iter
              (fun sw ->
                let l2p' = Array.copy st.l2p in
                apply_swap_arr l2p' sw;
                if not (Hashtbl.mem closed (encode_mapping l2p')) then
                  push { l2p = l2p'; swaps_rev = sw :: st.swaps_rev; g = st.g + 1 })
              (candidate_swaps st.l2p pairs)
        end
      done;
      match !result with
      | Some swaps -> swaps
      | None ->
          (* budget exhausted: greedy shortest-path fallback, one gate at a
             time on a scratch mapping *)
          Qobs.incr c_fallbacks;
          let scratch = Array.copy l2p in
          let swaps = ref [] in
          List.iter
            (fun (a, b) ->
              let path = Coupling.shortest_path coupling scratch.(a) scratch.(b) in
              let rec walk = function
                | p :: q :: rest when rest <> [] ->
                    swaps := (p, q) :: !swaps;
                    apply_swap_arr scratch (p, q);
                    walk (q :: rest)
                | _ -> ()
              in
              walk path)
            pairs;
          List.rev !swaps
    end
  in
  List.iter
    (fun layer ->
      Qobs.incr c_layers;
      let pairs =
        List.filter_map
          (fun (i : Qcircuit.Circuit.instr) ->
            if Gate.is_two_qubit i.gate then
              match i.qubits with [ a; b ] -> Some (a, b) | _ -> None
            else None)
          layer
      in
      let swaps = solve_layer pairs in
      if Qobs.Recorder.active () && swaps <> [] then begin
        (* Replay the solved swap sequence on a scratch mapping to record
           each decision with the candidate set it was chosen from (both the
           A* successors and the greedy-fallback path steps are members of
           [candidate_swaps] of the preceding state). *)
        let sim = Array.copy l2p in
        List.iter
          (fun sw ->
            let cands =
              List.map
                (fun (a, b) ->
                  let l2p' = Array.copy sim in
                  apply_swap_arr l2p' (a, b);
                  let h = heuristic l2p' pairs in
                  { Qobs.Recorder.p1 = a; p2 = b; h_basic = h; h_lookahead = 0.0; h; bonus = 0.0 })
                (candidate_swaps sim pairs)
            in
            Qobs.Recorder.record_step ~front:(List.length pairs) ~candidates:cands
              ~chosen:sw ~chosen_bonus:0.0 ();
            apply_swap_arr sim sw)
          swaps
      end;
      List.iter
        (fun (p1, p2) ->
          emit Gate.SWAP [ p1; p2 ];
          apply_swap_arr l2p (p1, p2);
          incr n_swaps)
        swaps;
      List.iter
        (fun (i : Qcircuit.Circuit.instr) ->
          emit i.gate (List.map (fun q -> l2p.(q)) i.qubits))
        layer)
    (layers circuit);
  {
    Sabre.circuit = Qcircuit.Circuit.create n_phys (List.rev !out);
    initial_layout;
    final_layout = Array.copy l2p;
    n_swaps = !n_swaps;
  }
