(** End-to-end transpilation flows (paper Figures 2 and 5).

    The flow mirrors Qiskit level-3: decompose to {1q, CX} -> pre-routing
    optimization (1q merge, commutative cancellation, two-qubit block
    re-synthesis; NASSC moves these before routing, Section IV-A) -> layout
    + routing -> post-routing optimization -> hardware-basis emission
    ({rz, sx, x, cx}).

    Observability: install a {!Qobs} collector around {!transpile} to
    record per-pass spans ([pipeline.*], [pass.*], [trial.route]), the
    engine/pass counters, and per-trial gauges — including
    [engine.predicted_cnot_savings] (eq. 1's estimate summed over chosen
    SWAPs) next to [trial.realized_cnot_savings] (CNOTs the post-routing
    passes actually recovered), which makes the paper's central claim a
    runtime metric.  Traced runs reset the per-domain commutation cache at
    transpile and trial start, so traces are deterministic across runs and
    worker counts; untraced runs skip all of it. *)

type router =
  | Full_connectivity  (** no routing: the "original circuit" baseline *)
  | Sabre_router
  | Nassc_router of Nassc.config
  | Sabre_ha  (** SABRE with the noise-aware distance matrix (eq. 3) *)
  | Nassc_ha of Nassc.config
  | Astar_router  (** Zulehner-style layered A* baseline (related work) *)
  | Hybrid_router of Hybrid.config
      (** NASSC engine with exact-oracle front windows ({!Hybrid.route}) *)

type result = {
  circuit : Qcircuit.Circuit.t;  (** final circuit in the hardware basis *)
  cx_total : int;
  depth : int;
  n_swaps : int;
  transpile_time : float;
      (** wall-clock seconds for the whole call (meaningful under parallel
          trials, where CPU time sums across domains) *)
  cpu_time : float;  (** process CPU seconds, summed over all domains *)
  initial_layout : int array option;
  final_layout : int array option;
  trial_stats : Trials.stat list;
      (** per-trial outcomes, in trial order; a single entry when
          [trials = 1] *)
}

val lower_to_2q : Qcircuit.Circuit.t -> Qcircuit.Circuit.t
(** Structural lowering to {one-qubit gates, CX, directives}. *)

type stage = string * (Qcircuit.Circuit.t -> Qcircuit.Circuit.t)
(** A named optimization stage.  The name identifies the stage's contract
    in the static-analysis layer ([Qlint.Contract]) and its [pass.<name>]
    observability span. *)

val pre_stages : stage list
(** The logical-circuit optimization bundle run before routing, in order. *)

val post_stages : stage list
(** The physical-circuit optimization bundle run after routing, in order,
    ending in the hardware basis. *)

val run_stages : stage list -> Qcircuit.Circuit.t -> Qcircuit.Circuit.t
(** Fold the stages over a circuit, each under its [pass.<name>] span. *)

val stage_names : router:router -> string list
(** The full pipeline as pass names — [lower_to_2q], the pre-routing
    stages, [route] (absent for {!Full_connectivity}), then the
    post-routing stages.  This is the sequence the static pass-contract
    validator checks. *)

val pre_optimize : Qcircuit.Circuit.t -> Qcircuit.Circuit.t
(** [run_stages pre_stages] under the [pipeline.pre_optimize] span. *)

val post_optimize : Qcircuit.Circuit.t -> Qcircuit.Circuit.t
(** [run_stages post_stages] under the [pipeline.post_optimize] span. *)

val transpile :
  ?params:Engine.params ->
  ?calibration:Topology.Calibration.t ->
  ?trials:int ->
  ?workers:int ->
  router:router ->
  Topology.Coupling.t ->
  Qcircuit.Circuit.t ->
  result
(** Full flow.  For [Full_connectivity] the coupling map is ignored and the
    circuit stays on its logical qubits.

    [trials] (default 1) runs that many independently seeded routing trials
    through {!Trials.run} — trial [k] uses seed [params.seed + k *
    Trials.seed_stride] — and keeps the best post-optimized circuit by
    [cx_total], ties broken by [depth] then trial index.  The default keeps
    the paper's single-shot behavior bit-for-bit, which is what the
    evaluation tables are produced with.  [workers] bounds the domain pool
    (default [Trials.default_workers ()]); results are identical for any
    worker count. *)

(** {2 Streaming transpilation}

    Million-gate circuits on mega-scale devices never fit the batch flow
    (it materializes the circuit, its DAG, and the dense distance matrix).
    {!transpile_stream} instead consumes a pull {!Qcircuit.Source},
    lowers each instruction on the fly, routes through a bounded
    sliding-window DAG ([Engine.route_stream]) with on-demand distance
    rows, finalizes SWAPs incrementally, and emits routed instructions to
    a sink in [chunk]-sized circuits — peak memory is
    O(window + chunk + device), independent of stream length. *)

type stream_result = {
  sr_gates_in : int;  (** gates consumed from the source (after lowering) *)
  sr_gates_out : int;  (** instructions emitted (barriers excluded) *)
  sr_cx_out : int;
  sr_depth_out : int;
      (** running circuit depth of the concatenated chunks (the exact
          [Circuit.depth] of the full output when [optimize] is off) *)
  sr_n_swaps : int;
  sr_chunks : int;
  sr_peak_resident : int;  (** window high-water mark, in gates *)
  sr_initial_layout : int array;
  sr_final_layout : int array;
}

val streamable : router -> bool
(** Routers the streaming flow supports: [Sabre_router], [Nassc_router],
    and their noise-aware variants.  [Astar_router], [Hybrid_router] and
    [Full_connectivity] need the whole circuit. *)

val transpile_stream :
  ?params:Engine.params ->
  ?calibration:Topology.Calibration.t ->
  ?window:int ->
  ?chunk:int ->
  ?optimize:bool ->
  router:router ->
  sink:(Qcircuit.Circuit.t -> unit) ->
  Topology.Coupling.t ->
  Qcircuit.Source.t ->
  stream_result
(** Stream-route [source] onto [coupling], delivering routed instructions
    to [sink] as [chunk]-sized circuits (default 4096) on physical qubits.
    [window] (default 4096) bounds the resident DAG window; the layout
    search runs on the first [window] gates of the stream.  [optimize]
    (default false) runs the {!post_stages} bundle on each chunk before it
    reaches the sink (per-chunk, so cross-chunk cancellations are not
    found).  With [window >= total gates] and [optimize = false] the
    concatenated chunks are byte-identical to the corresponding batch
    router's routed circuit ([Sabre.route] + [decompose_swaps], or
    [Nassc.route]) at the same seed.
    @raise Invalid_argument when the router is not {!streamable}, or on
    invalid [window]/[chunk]. *)
