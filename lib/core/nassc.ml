open Qgate

type config = {
  enable_2q : bool;
  enable_commute1 : bool;
  enable_commute2 : bool;
  orient_swaps : bool;
  scan_limit : int;
}

let default_config =
  {
    enable_2q = true;
    enable_commute1 = true;
    enable_commute2 = true;
    orient_swaps = true;
    scan_limit = 20;
  }

let swap_unitary = Unitary.of_gate Gate.SWAP

let c_c2q = Qobs.counter "nassc.c2q_bonus_evals"
let c_walks = Qobs.counter "nassc.commute_walks"
let c_commute1 = Qobs.counter "nassc.commute1_hits"
let c_commute2 = Qobs.counter "nassc.commute2_hits"
let c_oriented = Qobs.counter "nassc.oriented_swaps_emitted"
let c_weyl_hits = Qobs.counter "nassc.weyl_cache_hits"
let c_weyl_misses = Qobs.counter "nassc.weyl_cache_misses"

(* ---- merged per-wire window walk ----

   Both bonus scans read a bounded window of recently emitted ops and only
   ever act on ops touching the candidate pair.  The stream's per-wire
   tails give exactly those ops; ops on both wires carry the same emission
   index and are deduplicated by the merge.  The historical window bound
   counted *all* ops (touching or not): an op is inside the window of size
   [limit] iff its emission index is >= total - limit, which the indices
   let us enforce without ever visiting the skipped ops. *)

let next_on_pair w1 w2 =
  match (w1, w2) with
  | [], [] -> None
  | (h1 :: t1 : (int * Engine.out_op) list), [] -> Some (h1, t1, [])
  | [], h2 :: t2 -> Some (h2, [], t2)
  | ((i1, _) as h1) :: t1, ((i2, _) as h2) :: t2 ->
      if i1 = i2 then Some (h1, t1, t2)
      else if i1 > i2 then Some (h1, t1, w2)
      else Some (h2, w1, t2)

(* ---- the memoized Weyl-cost cache ----

   [c2q_bonus] re-synthesizes the trailing block and runs the Weyl
   invariant analysis for every candidate; across candidates and steps the
   same local block recurs constantly.  The cache maps an exact bit-level
   signature of the block (gates with parameter bits, local wires) to the
   (before, after) CNOT costs.  Domain-local (no sharing, no locks),
   bounded (reset at [weyl_cache_cap]), and reset per traced trial by the
   pipeline so hit/miss counters are deterministic for any worker count.
   Keys are injective, so caching cannot change any routing decision. *)

let weyl_cache_cap = 4096

let weyl_cache_key : (string, int * int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let reset_weyl_cache () = Hashtbl.reset (Domain.DLS.get weyl_cache_key)

let block_signature ~p1 block =
  let buf = Buffer.create 64 in
  List.iter
    (fun (op : Engine.out_op) ->
      Gate.add_signature buf op.gate;
      List.iter
        (fun q -> Buffer.add_char buf (if q = p1 then '\000' else '\001'))
        op.op_qubits;
      Buffer.add_char buf '\255')
    block;
  Buffer.contents buf

(* C_2q: CNOTs the SWAP saves by merging into the trailing two-qubit block
   on (p1, p2).  The trailing block is the run of ops confined to the pair,
   read from the end of the emitted stream through the per-wire tails. *)
let c2q_bonus ~stream ~scan_limit p1 p2 =
  let cutoff = Engine.stream_total stream - scan_limit in
  let rec collect acc has2q w1 w2 =
    match next_on_pair w1 w2 with
    | None -> (acc, has2q)
    | Some ((idx, op), w1', w2') ->
        if idx < cutoff then (acc, has2q)
        else if Gate.is_one_qubit op.Engine.gate then collect (op :: acc) has2q w1' w2'
        else if
          Gate.is_two_qubit op.gate
          && List.sort compare op.op_qubits = List.sort compare [ p1; p2 ]
        then collect (op :: acc) true w1' w2'
        else (acc, has2q)
  in
  let block, has2q =
    collect [] false (Engine.stream_wire stream p1) (Engine.stream_wire stream p2)
  in
  if not has2q then 0.0
  else begin
    let key = block_signature ~p1 block in
    let cache = Domain.DLS.get weyl_cache_key in
    let before, after =
      match Hashtbl.find_opt cache key with
      | Some costs ->
          Qobs.incr c_weyl_hits;
          costs
      | None ->
          Qobs.incr c_weyl_misses;
          let local q = if q = p1 then 0 else 1 in
          let block_u =
            List.fold_left
              (fun acc (op : Engine.out_op) ->
                Mathkit.Mat.mul
                  (Qcircuit.Circuit.embed ~n:2 (Unitary.of_gate op.gate)
                     (List.map local op.op_qubits))
                  acc)
              (Mathkit.Mat.identity 4) block
          in
          let before = Qpasses.Weyl.cnot_cost_fast block_u in
          let after = Qpasses.Weyl.cnot_cost_fast (Mathkit.Mat.mul swap_unitary block_u) in
          if Hashtbl.length cache >= weyl_cache_cap then Hashtbl.reset cache;
          Hashtbl.add cache key (before, after);
          (before, after)
    in
    float_of_int (max 0 (before + 3 - after))
  end

(* Walk back from the candidate SWAP looking for a cancellable CNOT (case 1)
   or a sandwich SWAP (case 2) with first CNOT oriented (c, t).  Single
   qubit gates contiguous with the SWAP are movable through it; afterwards
   every skipped gate must commute with cx(c, t). *)
type found = Cx_found | Swap_found of Engine.out_op | Nothing

let commute_walk ~scan_limit ~stream p1 p2 c t =
  let cx_ref = (Gate.CX, [ c; t ]) in
  let cutoff = Engine.stream_total stream - scan_limit in
  let rec walk contiguous w1 w2 =
    match next_on_pair w1 w2 with
    | None -> Nothing
    | Some ((idx, op), w1', w2') ->
        if idx < cutoff then Nothing
        else if Gate.is_one_qubit op.Engine.gate then
          if contiguous then walk true w1' w2'
          else if Qpasses.Commutation.commute (op.gate, op.op_qubits) cx_ref then
            walk false w1' w2'
          else Nothing
        else if Gate.is_directive op.gate then Nothing
        else if List.sort compare op.op_qubits = List.sort compare [ p1; p2 ] then begin
          match op.gate with
          | Gate.CX when op.op_qubits = [ c; t ] -> Cx_found
          | Gate.SWAP -> Swap_found op
          | _ -> Nothing
        end
        else if Qpasses.Commutation.commute (op.gate, op.op_qubits) cx_ref then
          walk false w1' w2'
        else Nothing
  in
  walk true (Engine.stream_wire stream p1) (Engine.stream_wire stream p2)

let orientation_tag_compatible (op : Engine.out_op) c t =
  match op.tag with
  | Engine.Swap_plain -> true
  | Engine.Swap_orient (c', t') -> c = c' && t = t'
  | Engine.Not_swap -> false

let commute_bonus cfg ~stream p1 p2 =
  let tag_if_enabled (op : Engine.out_op) c t =
    if cfg.orient_swaps then op.tag <- Engine.Swap_orient (c, t)
  in
  let try_orientation (c, t) =
    Qobs.incr c_walks;
    match commute_walk ~scan_limit:cfg.scan_limit ~stream p1 p2 c t with
    | Cx_found when cfg.enable_commute1 ->
        Qobs.incr c_commute1;
        Some
          ( 2.0,
            Qobs.Recorder.Commute1,
            fun (swap_op : Engine.out_op) -> tag_if_enabled swap_op c t )
    | Swap_found earlier when cfg.enable_commute2 && orientation_tag_compatible earlier c t
      ->
        Qobs.incr c_commute2;
        Some
          ( 2.0,
            Qobs.Recorder.Commute2,
            fun (swap_op : Engine.out_op) ->
              tag_if_enabled earlier c t;
              tag_if_enabled swap_op c t )
    | _ -> None
  in
  match try_orientation (p1, p2) with
  | Some r -> Some r
  | None -> try_orientation (p2, p1)

let bonus cfg : Engine.bonus_fn =
 fun ~stream ~mapping:_ p1 p2 ->
  let c2q =
    if cfg.enable_2q then begin
      Qobs.incr c_c2q;
      c2q_bonus ~stream ~scan_limit:cfg.scan_limit p1 p2
    end
    else 0.0
  in
  let note kind =
    if Qobs.Recorder.active () then Qobs.Recorder.note_bucket ~p1 ~p2 kind
  in
  match commute_bonus cfg ~stream p1 p2 with
  | Some (c_comm, kind, action) when c_comm >= c2q ->
      note kind;
      (c_comm, action)
  | Some _ | None ->
      if c2q > 0.0 then note Qobs.Recorder.C2q;
      if c2q = 0.0 then Engine.no_bonus else (c2q, Engine.no_action)

(* ---- optimization-aware SWAP decomposition ---- *)

let cx a b = { Qcircuit.Circuit.gate = Gate.CX; qubits = [ a; b ] }

module Streaming = struct
  (* Incremental SWAP finalization for the streaming engine.  The only
     backward edit [finalize] ever performs is an oriented swap pulling the
     contiguous run of one-qubit gates sitting directly before it on its
     wires; the pull stops at the first instruction that is not a 1q gate.
     So a pending buffer holding exactly the trailing contiguous 1q run
     reproduces batch finalization byte-for-byte while everything below
     that run flushes downstream immediately. *)

  type t = {
    emit : Qcircuit.Circuit.instr -> unit;
    mutable pend : Qcircuit.Circuit.instr list;  (* newest first *)
  }

  let create ~emit = { emit; pend = [] }

  (* flush everything below the trailing contiguous 1q run (final: no
     future op can pull or reorder it) *)
  let settle t =
    let rec split kept = function
      | (i : Qcircuit.Circuit.instr) :: rest when Gate.is_one_qubit i.gate ->
          split (i :: kept) rest
      | below -> (kept, below)
    in
    match split [] t.pend with
    | _, [] -> ()
    | kept_oldest_first, below ->
        List.iter t.emit (List.rev below);
        t.pend <- List.rev kept_oldest_first

  let push t (op : Engine.out_op) =
    let emit i = t.pend <- i :: t.pend in
    (match (op.gate, op.op_qubits, op.tag) with
    | Gate.SWAP, [ a; b ], Engine.Swap_plain -> List.iter emit [ cx a b; cx b a; cx a b ]
    | Gate.SWAP, [ a; b ], Engine.Swap_orient (c, tg) ->
        Qobs.incr c_oriented;
        let moved = ref [] in
        let rec pull () =
          match t.pend with
          | (i : Qcircuit.Circuit.instr) :: rest
            when Gate.is_one_qubit i.gate
                 && (i.qubits = [ a ] || i.qubits = [ b ]) ->
              t.pend <- rest;
              moved := i :: !moved;
              pull ()
          | _ -> ()
        in
        pull ();
        List.iter emit [ cx c tg; cx tg c; cx c tg ];
        (* re-emit moved gates after the swap on the exchanged wire,
           preserving their relative order *)
        List.iter
          (fun (i : Qcircuit.Circuit.instr) ->
            let q = List.hd i.qubits in
            let q' = if q = a then b else a in
            emit { i with qubits = [ q' ] })
          !moved
    | _, qs, _ -> emit { Qcircuit.Circuit.gate = op.gate; qubits = qs });
    settle t

  let flush t =
    List.iter t.emit (List.rev t.pend);
    t.pend <- []

  let pending t = List.length t.pend
end

let finalize ops =
  (* batch finalization is the streaming finalizer draining into a list *)
  let acc = ref [] in
  let st = Streaming.create ~emit:(fun i -> acc := i :: !acc) in
  List.iter (Streaming.push st) ops;
  Streaming.flush st;
  List.rev !acc

let route ?(params = Engine.default_params) ?(config = default_config) ?dist coupling
    circuit =
  Qobs.span "nassc.route" @@ fun () ->
  Qobs.Recorder.in_router "nassc" @@ fun () ->
  let dist = match dist with Some d -> d | None -> Sabre.hop_distance coupling in
  let b = bonus config in
  let dag = Qcircuit.Dag.of_circuit circuit in
  (* layout search uses the plain heuristic (same mapping algorithm as
     SABRE, Section IV-A) *)
  let layout =
    Engine.find_layout params coupling ~rng:(Engine.layout_rng params) ~dist
      ~bonus:Engine.zero_bonus ~dag circuit
  in
  let r =
    Engine.route_once params coupling ~rng:(Engine.route_rng params) ~dist ~bonus:b ~dag
      circuit layout
  in
  let instrs = finalize r.routed in
  {
    Sabre.circuit = Qcircuit.Circuit.create (Topology.Coupling.n_qubits coupling) instrs;
    initial_layout = r.initial_layout;
    final_layout = r.final_layout;
    n_swaps = r.n_swaps;
  }
