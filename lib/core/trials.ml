(* Parallel best-of-N trial engine.

   Qiskit runs SabreSwap as CPU_COUNT seeded trials and keeps the best; this
   module is that machinery for our routers, built on OCaml 5 domains.  The
   scheduling-independence invariant: every trial draws from its own RNG
   stream derived only from (base_seed, trial index), results land in a
   per-trial slot, and the winner is chosen by a deterministic total order —
   so the report is identical whatever the worker count or interleaving. *)

let seed_stride = 104729
let trial_seed ~base k = base + (k * seed_stride)

let default_workers () =
  (* recommended_domain_count counts the running domain; never go below 1 *)
  max 1 (Domain.recommended_domain_count ())

let map ?workers ~n f =
  if n < 0 then invalid_arg "Trials.map: n must be >= 0";
  let workers =
    match workers with
    | Some w when w < 1 -> invalid_arg "Trials.map: workers must be >= 1"
    | Some w -> min w (max 1 n)
    | None -> min (default_workers ()) (max 1 n)
  in
  let results = Array.make (max 1 n) None in
  let run k = results.(k) <- Some (try Ok (f k) with e -> Error e) in
  if workers <= 1 then
    for k = 0 to n - 1 do
      run k
    done
  else begin
    (* work-stealing over an atomic counter: no locks, so a raising trial
       can neither deadlock the pool nor leak a domain — every spawned
       domain drains the counter and is joined below *)
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let k = Atomic.fetch_and_add next 1 in
        if k < n then begin
          run k;
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned
  end;
  Array.init n (fun k ->
      match results.(k) with Some r -> r | None -> assert false)

type stat = {
  trial : int;
  seed : int;
  cx_total : int;
  depth : int;
  n_swaps : int;
  wall_time : float;
  error : string option;
}

type 'a report = {
  best : 'a;
  best_stat : stat;
  stats : stat list;
  wall_time : float;
  workers : int;
}

let better a b =
  (* deterministic total order: cx_total, then depth, then trial index *)
  if a.cx_total <> b.cx_total then a.cx_total < b.cx_total
  else if a.depth <> b.depth then a.depth < b.depth
  else a.trial < b.trial

let c_ok = Qobs.counter "trials.ok"
let c_failed = Qobs.counter "trials.failed"

(* live trial count across every pool in the process, for the Qtel resource
   sampler: a plain atomic the sampler domain polls, never part of a trace
   (it would differ between worker counts and break trace determinism) *)
let inflight_counter = Atomic.make 0
let inflight () = Atomic.get inflight_counter

let run ?workers ~n ~base_seed ~measure f =
  if n < 1 then invalid_arg "Trials.run: n must be >= 1";
  let workers =
    match workers with
    | Some w when w < 1 -> invalid_arg "Trials.run: workers must be >= 1"
    | Some w -> min w n
    | None -> min (default_workers ()) n
  in
  let wall0 = Unix.gettimeofday () in
  (* tracing: one collector per TRIAL (not per domain), created on whichever
     domain runs the trial and merged below on the joining domain in trial
     order — so the trace is identical for any worker count *)
  let parent_collector = Qobs.current () in
  let collectors = Array.make n None in
  (* the flight recorder mirrors the collector discipline exactly: one
     recorder per trial, merged in trial order on the joining domain *)
  let parent_recorder = Qobs.Recorder.current () in
  let recorders = Array.make n None in
  let outcomes =
    map ~workers ~n (fun k ->
        let seed = trial_seed ~base:base_seed k in
        let t0 = Unix.gettimeofday () in
        Atomic.incr inflight_counter;
        Fun.protect ~finally:(fun () -> Atomic.decr inflight_counter) @@ fun () ->
        let body () =
          match parent_collector with
          | None -> f ~trial:k ~seed
          | Some _ ->
              let c = Qobs.Collector.create ~trial:k ~label:"trial" () in
              collectors.(k) <- Some c;
              Qobs.with_collector c (fun () -> f ~trial:k ~seed)
        in
        let v =
          match parent_recorder with
          | None -> body ()
          | Some _ ->
              let r = Qobs.Recorder.create ~trial:k ~label:"trial" () in
              recorders.(k) <- Some r;
              Qobs.Recorder.with_recorder r body
        in
        (v, Unix.gettimeofday () -. t0))
  in
  (match parent_collector with
  | None -> ()
  | Some p ->
      Array.iter (function Some c -> Qobs.Collector.add_child p c | None -> ()) collectors;
      Array.iter
        (function Ok _ -> Qobs.incr c_ok | Error _ -> Qobs.incr c_failed)
        outcomes);
  (match parent_recorder with
  | None -> ()
  | Some p ->
      Array.iter
        (function Some r -> Qobs.Recorder.add_child p r | None -> ())
        recorders);
  let stats =
    Array.to_list
      (Array.mapi
         (fun k outcome ->
           let seed = trial_seed ~base:base_seed k in
           match outcome with
           | Ok (v, wall) ->
               let cx_total, depth, n_swaps = measure v in
               ( { trial = k; seed; cx_total; depth; n_swaps; wall_time = wall; error = None },
                 Some v )
           | Error e ->
               ( {
                   trial = k;
                   seed;
                   cx_total = max_int;
                   depth = max_int;
                   n_swaps = max_int;
                   wall_time = 0.0;
                   error = Some (Printexc.to_string e);
                 },
                 None ))
         outcomes)
  in
  let winner =
    List.fold_left
      (fun acc (stat, v) ->
        match (v, acc) with
        | None, _ -> acc
        | Some _, None -> Some (stat, v)
        | Some _, Some (best_stat, _) -> if better stat best_stat then Some (stat, v) else acc)
      None stats
  in
  match winner with
  | Some (best_stat, Some best) ->
      {
        best;
        best_stat;
        stats = List.map fst stats;
        wall_time = Unix.gettimeofday () -. wall0;
        workers;
      }
  | _ ->
      (* every trial failed: surface the first trial's exception so the
         caller sees the same error the single-shot path would raise *)
      let first_failure =
        Array.to_list outcomes
        |> List.find_map (function Error e -> Some e | Ok _ -> None)
      in
      raise (Option.get first_failure)
