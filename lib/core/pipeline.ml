open Qpasses

type router =
  | Full_connectivity
  | Sabre_router
  | Nassc_router of Nassc.config
  | Sabre_ha
  | Nassc_ha of Nassc.config
  | Astar_router
  | Hybrid_router of Hybrid.config

type result = {
  circuit : Qcircuit.Circuit.t;
  cx_total : int;
  depth : int;
  n_swaps : int;
  transpile_time : float;
  cpu_time : float;
  initial_layout : int array option;
  final_layout : int array option;
  trial_stats : Trials.stat list;
}

let lower_to_2q c =
  let lowered =
    Qcircuit.Circuit.instrs c
    |> List.map (fun (i : Qcircuit.Circuit.instr) -> (i.gate, i.qubits))
    |> Qgate.Decompose.to_cx_basis
    |> List.map (fun (g, qs) -> { Qcircuit.Circuit.gate = g; qubits = qs })
  in
  Qcircuit.Circuit.create (Qcircuit.Circuit.n_qubits c) lowered

(* each optimization stage runs under a named span so `--trace` / `bench
   --only profile` can attribute time per pass; a no-op without a collector *)
let pass name f c = Qobs.span ("pass." ^ name) (fun () -> f c)

type stage = string * (Qcircuit.Circuit.t -> Qcircuit.Circuit.t)

(* the optimization bundles as data: static analysis (Qlint) validates the
   ordering against pass contracts and a checked runner can verify the
   declared properties between stages, without duplicating the stage list *)
let pre_stages : stage list =
  [
    ("peephole", Peephole.run);
    ("optimize_1q.u", Optimize_1q.run Optimize_1q.U_gate);
    ("cancellation", Cancellation.run_fixpoint ~max_rounds:3);
    ("unitary_synthesis", Unitary_synthesis.run);
    ("optimize_1q.u", Optimize_1q.run Optimize_1q.U_gate);
  ]

let post_stages : stage list =
  [
    ("peephole", Peephole.run);
    ("cancellation", Cancellation.run_fixpoint ~max_rounds:3);
    ("unitary_synthesis", Unitary_synthesis.run);
    ("basis", Basis.run);
    ("cancellation", Cancellation.run_fixpoint ~max_rounds:2);
    ("optimize_1q.zsx", Optimize_1q.run Optimize_1q.Zsx);
  ]

let run_stages stages c = List.fold_left (fun c (name, f) -> pass name f c) c stages

let stage_names ~router =
  let names stages = List.map fst stages in
  ("lower_to_2q" :: names pre_stages)
  @ (match router with Full_connectivity -> [] | _ -> [ "route" ])
  @ names post_stages

let pre_optimize c =
  Qobs.span "pipeline.pre_optimize" @@ fun () -> run_stages pre_stages c

let post_optimize c =
  Qobs.span "pipeline.post_optimize" @@ fun () -> run_stages post_stages c

let noise_dist calibration coupling =
  match calibration with
  | Some cal -> Topology.Calibration.noise_distmat cal
  | None -> Topology.Calibration.noise_distmat (Topology.Calibration.generate coupling)

(* per-trial outcome gauges; recorded on the trial's own collector *)
let g_cx = Qobs.gauge "trial.cx_total"
let g_depth = Qobs.gauge "trial.depth"
let g_swaps = Qobs.gauge "trial.n_swaps"
let g_routed_cx = Qobs.gauge "trial.routed_cx"
let g_realized = Qobs.gauge "trial.realized_cnot_savings"

(* job-level input gauges for the Qtel telemetry layer (metrics exposition
   and wide events).  Deterministic — a pure function of the input circuit
   and the requested trial count — but recorded only under the
   extended-metrics opt-in so pre-Qtel trace exports stay byte-identical.
   The worker count is deliberately NOT recorded: every recorded series
   must be invariant under the worker count. *)
let g_gates_in = Qobs.gauge "pipeline.gates_in"
let g_cx_in = Qobs.gauge "pipeline.cx_in"
let g_depth_in = Qobs.gauge "pipeline.depth_in"
let g_qubits_in = Qobs.gauge "pipeline.qubits_in"
let g_trials_req = Qobs.gauge "pipeline.trials"

(* ---- streaming transpilation ---- *)

type stream_result = {
  sr_gates_in : int;
  sr_gates_out : int;
  sr_cx_out : int;
  sr_depth_out : int;
  sr_n_swaps : int;
  sr_chunks : int;
  sr_peak_resident : int;
  sr_initial_layout : int array;
  sr_final_layout : int array;
}

let streamable = function
  | Sabre_router | Nassc_router _ | Sabre_ha | Nassc_ha _ -> true
  | Full_connectivity | Astar_router | Hybrid_router _ -> false

let transpile_stream ?(params = Engine.default_params) ?calibration ?(window = 4096)
    ?(chunk = 4096) ?(optimize = false) ~router ~sink coupling source =
  if window < 1 then invalid_arg "Pipeline.transpile_stream: window must be >= 1";
  if chunk < 1 then invalid_arg "Pipeline.transpile_stream: chunk must be >= 1";
  if not (streamable router) then
    invalid_arg
      "Pipeline.transpile_stream: router needs the whole circuit (streaming supports \
       sabre/nassc/sabre-ha/nassc-ha)";
  Qobs.span "pipeline.transpile_stream" @@ fun () ->
  let n_phys = Topology.Coupling.n_qubits coupling in
  (* streaming lowering to the <=2q basis: each pulled instruction expands
     in place, so no materialized circuit ever exists *)
  let lowered =
    Qcircuit.Source.map source (fun (i : Qcircuit.Circuit.instr) ->
        Qgate.Decompose.to_cx_basis [ (i.gate, i.qubits) ]
        |> List.map (fun (g, qs) -> { Qcircuit.Circuit.gate = g; qubits = qs }))
  in
  let dist =
    match router with
    | Sabre_ha | Nassc_ha _ ->
        Qobs.span "pipeline.noise_dist" (fun () -> noise_dist calibration coupling)
    | _ ->
        (* on-demand rows: mega-scale devices never allocate the dense
           n^2 hop matrix *)
        Topology.Distmat.hops_lazy coupling
  in
  let bonus, keep =
    match router with
    | Nassc_router config | Nassc_ha config ->
        (* the emitted-op holdback must cover the bonus scan window so
           flushed ops are never retro-tagged (see Engine.stream_create) *)
        (Nassc.bonus config, max 64 (config.Nassc.scan_limit + 8))
    | _ -> (Engine.zero_bonus, 64)
  in
  (* layout search runs on a bounded prefix of the stream (the routers'
     bidirectional search needs a materialized circuit); the prefix then
     replays so routing still consumes the stream from gate zero *)
  let prefix_instrs, lowered = Qcircuit.Source.prefix lowered window in
  let prefix_circuit =
    Qcircuit.Circuit.create (Qcircuit.Source.n_qubits lowered) prefix_instrs
  in
  let layout =
    Qobs.span "pipeline.stream_layout" @@ fun () ->
    Engine.find_layout params coupling ~rng:(Engine.layout_rng params) ~dist
      ~bonus:Engine.zero_bonus prefix_circuit
  in
  (* chunked emission: finalized instructions accumulate into [chunk]-sized
     circuits, optionally post-optimized per chunk, then flow to [sink].
     Output depth/counts are tracked incrementally with the same per-qubit
     level recurrence as [Circuit.depth], so with [optimize = false] they
     equal the whole-circuit metrics of the concatenated chunks. *)
  let gates_out = ref 0 and cx_out = ref 0 and chunks = ref 0 in
  let level = Array.make (max n_phys 1) 0 in
  let depth_out = ref 0 in
  let buf = ref [] and buf_n = ref 0 in
  let flush_chunk () =
    if !buf_n > 0 then begin
      let c = Qcircuit.Circuit.create n_phys (List.rev !buf) in
      buf := [];
      buf_n := 0;
      let c = if optimize then post_optimize c else c in
      incr chunks;
      List.iter
        (fun (i : Qcircuit.Circuit.instr) ->
          match i.gate with
          | Qgate.Gate.Barrier _ -> ()
          | g ->
              incr gates_out;
              (match g with Qgate.Gate.CX -> incr cx_out | _ -> ());
              let d = 1 + List.fold_left (fun acc q -> max acc level.(q)) 0 i.qubits in
              List.iter (fun q -> level.(q) <- d) i.qubits;
              if d > !depth_out then depth_out := d)
        (Qcircuit.Circuit.instrs c);
      sink c
    end
  in
  let emit_instr i =
    buf := i :: !buf;
    incr buf_n;
    if !buf_n >= chunk then flush_chunk ()
  in
  (* the streaming finalizer handles both routers: SABRE's untagged swaps
     take the plain 3-CX decomposition, NASSC's tagged ones the oriented
     path with 1q pull-through *)
  let fin = Nassc.Streaming.create ~emit:emit_instr in
  let stats =
    Engine.route_stream params coupling ~rng:(Engine.route_rng params) ~dist ~bonus
      ~window ~keep
      ~sink:(fun op -> Nassc.Streaming.push fin op)
      lowered layout
  in
  Nassc.Streaming.flush fin;
  flush_chunk ();
  {
    sr_gates_in = stats.Engine.st_gates_in;
    sr_gates_out = !gates_out;
    sr_cx_out = !cx_out;
    sr_depth_out = !depth_out;
    sr_n_swaps = stats.Engine.st_n_swaps;
    sr_chunks = !chunks;
    sr_peak_resident = stats.Engine.st_peak_resident;
    sr_initial_layout = stats.Engine.st_initial_layout;
    sr_final_layout = stats.Engine.st_final_layout;
  }

let transpile ?(params = Engine.default_params) ?calibration ?(trials = 1) ?workers ~router
    coupling circuit =
  if trials < 1 then invalid_arg "Pipeline.transpile: trials must be >= 1";
  Qobs.span "pipeline.transpile" @@ fun () ->
  (* traced runs start from empty commutation and Weyl-cost caches so the
     cache counters (and hence the whole trace) are a pure function of this
     transpile call, not of whatever ran earlier in the process *)
  if Qobs.active () then begin
    Qpasses.Commutation.reset_cache ();
    Nassc.reset_weyl_cache ()
  end;
  if Qobs.active () && Qobs.extended_metrics_enabled () then begin
    Qobs.gauge_set g_gates_in (float_of_int (Qcircuit.Circuit.size circuit));
    Qobs.gauge_set g_cx_in (float_of_int (Qcircuit.Circuit.cx_count circuit));
    Qobs.gauge_set g_depth_in (float_of_int (Qcircuit.Circuit.depth circuit));
    Qobs.gauge_set g_qubits_in (float_of_int (Qcircuit.Circuit.n_qubits circuit));
    Qobs.gauge_set g_trials_req (float_of_int trials)
  end;
  let wall0 = Unix.gettimeofday () in
  let cpu0 = Sys.time () in
  (* shared read-only inputs, computed once before the fan-out: the
     pre-optimized logical circuit and (for the HA routers) the noise-aware
     distance matrix.  Per-trial mutable state (mappings, decay, RNG) lives
     inside the routers, domain-locally. *)
  let logical = pre_optimize (Qobs.span "pipeline.lower_to_2q" (fun () -> lower_to_2q circuit)) in
  let dist_ha =
    match router with
    | Sabre_ha | Nassc_ha _ ->
        Some (Qobs.span "pipeline.noise_dist" (fun () -> noise_dist calibration coupling))
    | _ -> None
  in
  let route_with params =
    match router with
    | Full_connectivity -> (logical, 0, None)
    | Sabre_router ->
        let r = Sabre.route ~params coupling logical in
        (Sabre.decompose_swaps r.circuit, r.n_swaps, Some (r.initial_layout, r.final_layout))
    | Nassc_router config ->
        let r = Nassc.route ~params ~config coupling logical in
        (r.circuit, r.n_swaps, Some (r.initial_layout, r.final_layout))
    | Astar_router ->
        let r =
          Astar.route ~params:{ Astar.default_params with seed = params.Engine.seed }
            coupling logical
        in
        (Sabre.decompose_swaps r.circuit, r.n_swaps, Some (r.initial_layout, r.final_layout))
    | Hybrid_router config ->
        let r = Hybrid.route ~params ~config coupling logical in
        (r.circuit, r.n_swaps, Some (r.initial_layout, r.final_layout))
    | Sabre_ha ->
        let dist = Option.get dist_ha in
        let r = Sabre.route ~params ~dist coupling logical in
        (Sabre.decompose_swaps r.circuit, r.n_swaps, Some (r.initial_layout, r.final_layout))
    | Nassc_ha config ->
        let dist = Option.get dist_ha in
        let r = Nassc.route ~params ~config ~dist coupling logical in
        (r.circuit, r.n_swaps, Some (r.initial_layout, r.final_layout))
  in
  let report =
    Qobs.span "pipeline.trials" @@ fun () ->
    Trials.run ?workers ~n:trials ~base_seed:params.Engine.seed
      ~measure:(fun (final, n_swaps, _) ->
        (Qcircuit.Circuit.cx_count final, Qcircuit.Circuit.depth final, n_swaps))
      (fun ~trial:_ ~seed ->
        (* fresh per-trial caches: hit/miss counts become a pure function of
           this trial's work, whatever domain it lands on *)
        if Qobs.active () then begin
          Qpasses.Commutation.reset_cache ();
          Nassc.reset_weyl_cache ()
        end;
        let routed, n_swaps, layouts =
          Qobs.span "trial.route" (fun () -> route_with { params with Engine.seed })
        in
        let final = post_optimize routed in
        if Qobs.active () || Qobs.Recorder.active () then begin
          let cx_routed = Qcircuit.Circuit.cx_count routed in
          let cx_final = Qcircuit.Circuit.cx_count final in
          if Qobs.active () then begin
            Qobs.gauge_set g_cx (float_of_int cx_final);
            Qobs.gauge_set g_depth (float_of_int (Qcircuit.Circuit.depth final));
            Qobs.gauge_set g_swaps (float_of_int n_swaps);
            Qobs.gauge_set g_routed_cx (float_of_int cx_routed);
            (* CNOTs the post-routing passes actually recovered, the realized
               side of eq. 1's prediction (engine.predicted_cnot_savings) *)
            Qobs.gauge_set g_realized (float_of_int (cx_routed - cx_final))
          end;
          (* the realized side of the recorder's per-step predictions *)
          if Qobs.Recorder.active () then
            Qobs.Recorder.record_result ~cx_routed ~cx_final
        end;
        (final, n_swaps, layouts))
  in
  let final, n_swaps, layouts = report.Trials.best in
  {
    circuit = final;
    cx_total = report.Trials.best_stat.Trials.cx_total;
    depth = report.Trials.best_stat.Trials.depth;
    n_swaps;
    transpile_time = Unix.gettimeofday () -. wall0;
    cpu_time = Sys.time () -. cpu0;
    initial_layout = Option.map fst layouts;
    final_layout = Option.map snd layouts;
    trial_stats = report.Trials.stats;
  }
