open Qpasses

type router =
  | Full_connectivity
  | Sabre_router
  | Nassc_router of Nassc.config
  | Sabre_ha
  | Nassc_ha of Nassc.config
  | Astar_router

type result = {
  circuit : Qcircuit.Circuit.t;
  cx_total : int;
  depth : int;
  n_swaps : int;
  transpile_time : float;
  cpu_time : float;
  initial_layout : int array option;
  final_layout : int array option;
  trial_stats : Trials.stat list;
}

let lower_to_2q c =
  let lowered =
    Qcircuit.Circuit.instrs c
    |> List.map (fun (i : Qcircuit.Circuit.instr) -> (i.gate, i.qubits))
    |> Qgate.Decompose.to_cx_basis
    |> List.map (fun (g, qs) -> { Qcircuit.Circuit.gate = g; qubits = qs })
  in
  Qcircuit.Circuit.create (Qcircuit.Circuit.n_qubits c) lowered

let pre_optimize c =
  c
  |> Peephole.run
  |> Optimize_1q.run Optimize_1q.U_gate
  |> Cancellation.run_fixpoint ~max_rounds:3
  |> Unitary_synthesis.run
  |> Optimize_1q.run Optimize_1q.U_gate

let post_optimize c =
  c
  |> Peephole.run
  |> Cancellation.run_fixpoint ~max_rounds:3
  |> Unitary_synthesis.run
  |> Basis.run
  |> Cancellation.run_fixpoint ~max_rounds:2
  |> Optimize_1q.run Optimize_1q.Zsx

let noise_dist calibration coupling =
  match calibration with
  | Some cal -> Topology.Calibration.noise_distance_matrix cal
  | None -> Topology.Calibration.noise_distance_matrix (Topology.Calibration.generate coupling)

let transpile ?(params = Engine.default_params) ?calibration ?(trials = 1) ?workers ~router
    coupling circuit =
  if trials < 1 then invalid_arg "Pipeline.transpile: trials must be >= 1";
  let wall0 = Unix.gettimeofday () in
  let cpu0 = Sys.time () in
  (* shared read-only inputs, computed once before the fan-out: the
     pre-optimized logical circuit and (for the HA routers) the noise-aware
     distance matrix.  Per-trial mutable state (mappings, decay, RNG) lives
     inside the routers, domain-locally. *)
  let logical = pre_optimize (lower_to_2q circuit) in
  let dist_ha =
    match router with
    | Sabre_ha | Nassc_ha _ -> Some (noise_dist calibration coupling)
    | _ -> None
  in
  let route_with params =
    match router with
    | Full_connectivity -> (logical, 0, None)
    | Sabre_router ->
        let r = Sabre.route ~params coupling logical in
        (Sabre.decompose_swaps r.circuit, r.n_swaps, Some (r.initial_layout, r.final_layout))
    | Nassc_router config ->
        let r = Nassc.route ~params ~config coupling logical in
        (r.circuit, r.n_swaps, Some (r.initial_layout, r.final_layout))
    | Astar_router ->
        let r =
          Astar.route ~params:{ Astar.default_params with seed = params.Engine.seed }
            coupling logical
        in
        (Sabre.decompose_swaps r.circuit, r.n_swaps, Some (r.initial_layout, r.final_layout))
    | Sabre_ha ->
        let dist = Option.get dist_ha in
        let r = Sabre.route ~params ~dist coupling logical in
        (Sabre.decompose_swaps r.circuit, r.n_swaps, Some (r.initial_layout, r.final_layout))
    | Nassc_ha config ->
        let dist = Option.get dist_ha in
        let r = Nassc.route ~params ~config ~dist coupling logical in
        (r.circuit, r.n_swaps, Some (r.initial_layout, r.final_layout))
  in
  let report =
    Trials.run ?workers ~n:trials ~base_seed:params.Engine.seed
      ~measure:(fun (final, n_swaps, _) ->
        (Qcircuit.Circuit.cx_count final, Qcircuit.Circuit.depth final, n_swaps))
      (fun ~trial:_ ~seed ->
        let routed, n_swaps, layouts = route_with { params with Engine.seed } in
        (post_optimize routed, n_swaps, layouts))
  in
  let final, n_swaps, layouts = report.Trials.best in
  {
    circuit = final;
    cx_total = report.Trials.best_stat.Trials.cx_total;
    depth = report.Trials.best_stat.Trials.depth;
    n_swaps;
    transpile_time = Unix.gettimeofday () -. wall0;
    cpu_time = Sys.time () -. cpu0;
    initial_layout = Option.map fst layouts;
    final_layout = Option.map snd layouts;
    trial_stats = report.Trials.stats;
  }
