open Topology

(* Optimal SWAP minimization as token swapping (Wagner et al. 2206.01294,
   Ito et al. 2305.02059): IDA* / branch-and-bound over mapping states with
   an admissible distance lower bound and canonical state hashing for
   transposition pruning.  Dependency-free by construction — no ILP solver,
   just the flat Topology.Distmat and the coupling edge list. *)

type budget = { max_nodes : int; max_seconds : float }

let default_budget = { max_nodes = 200_000; max_seconds = infinity }

type outcome = Optimal of (int * int) list | Budget_exceeded

type route_outcome =
  | Routed of { n_swaps : int; initial_layout : int array }
  | Route_budget_exceeded

let c_nodes = Qobs.counter "exact.nodes_expanded"
let c_trips = Qobs.counter "exact.budget_trips"
let c_solved = Qobs.counter "exact.windows_solved"

exception Out_of_budget

(* per-solve budget bookkeeping; the node count doubles as the time-check
   throttle so the hot loop reads the clock at most once per 256 nodes *)
type gas = { mutable nodes : int; b : budget; t0 : float }

let gas_of b = { nodes = 0; b; t0 = Unix.gettimeofday () }

let burn gas =
  gas.nodes <- gas.nodes + 1;
  Qobs.incr c_nodes;
  if gas.nodes > gas.b.max_nodes then raise Out_of_budget;
  if
    gas.b.max_seconds < infinity
    && gas.nodes land 255 = 0
    && Unix.gettimeofday () -. gas.t0 > gas.b.max_seconds
  then raise Out_of_budget

(* ---- the admissible lower bound ----

   For pairwise-disjoint pairs at hop distances d_i, any solution needs at
   least max_i (d_i - 1) swaps (one pair's distance drops by at most 1 per
   swap) and at least ceil(sum_i (d_i - 1) / 2) swaps (a swap moves two
   physical qubits; with disjoint pairs it touches at most two pairs, each
   by at most 1).  Both remain valid when gates execute one at a time: a
   pair leaves the sum only once its term is already 0. *)

let lower_bound ~dist pairs =
  let d = Distmat.raw dist and dn = Distmat.n dist in
  let mx = ref 0 and sum = ref 0 in
  List.iter
    (fun (a, b) ->
      let dd = d.((a * dn) + b) in
      if not (Float.is_finite dd) then invalid_arg "Exact.lower_bound: unreachable pair";
      let need = max 0 (int_of_float dd - 1) in
      if need > !mx then mx := need;
      sum := !sum + need)
    pairs;
  max !mx ((!sum + 1) / 2)

let check_disjoint pairs =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      if a = b then invalid_arg "Exact: degenerate pair";
      List.iter
        (fun q ->
          if Hashtbl.mem seen q then invalid_arg "Exact: pairs must be disjoint";
          Hashtbl.replace seen q ())
        [ a; b ])
    pairs

(* ---- window solve: minimal swaps to make every pair adjacent ----

   The state is the position of each tracked token (the qubits named by the
   pairs); untracked qubits are interchangeable, so the canonical key is
   just the token-position vector.  Candidate swaps are the coupling edges
   touching at least one token — a swap of two untracked qubits leaves the
   state unchanged and can never appear in a minimal solution. *)

let solve_window ?(budget = default_budget) coupling ~dist ~pairs =
  Qobs.span "exact.solve_window" @@ fun () ->
  check_disjoint pairs;
  let n_phys = Coupling.n_qubits coupling in
  if n_phys > 255 then invalid_arg "Exact.solve_window: device too large for the oracle";
  let d = Distmat.raw dist and dn = Distmat.n dist in
  if dn <> n_phys then invalid_arg "Exact.solve_window: distance matrix size mismatch";
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n_phys || b < 0 || b >= n_phys then
        invalid_arg "Exact.solve_window: pair out of range")
    pairs;
  if pairs = [] then Optimal []
  else begin
    (* token t lives at loc.(t); pos.(p) holds the token at p or -1 *)
    let qubits = List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) pairs) in
    let n_tok = List.length qubits in
    let loc = Array.of_list qubits in
    let pos = Array.make n_phys (-1) in
    Array.iteri (fun t p -> pos.(p) <- t) loc;
    let tok_pairs =
      List.map (fun (a, b) -> (pos.(a), pos.(b))) pairs
    in
    let h () =
      let mx = ref 0 and sum = ref 0 in
      List.iter
        (fun (ta, tb) ->
          let dd = d.((loc.(ta) * dn) + loc.(tb)) in
          if not (Float.is_finite dd) then raise Exit;
          let need = max 0 (int_of_float dd - 1) in
          if need > !mx then mx := need;
          sum := !sum + need)
        tok_pairs;
      max !mx ((!sum + 1) / 2)
    in
    let h0 = try h () with Exit -> invalid_arg "Exact.solve_window: unreachable pair" in
    if h0 = 0 then Optimal []
    else begin
      let edges = Coupling.edges coupling in
      let key () = String.init n_tok (fun t -> Char.chr loc.(t)) in
      let apply (u, v) =
        let tu = pos.(u) and tv = pos.(v) in
        pos.(u) <- tv;
        pos.(v) <- tu;
        if tu >= 0 then loc.(tu) <- v;
        if tv >= 0 then loc.(tv) <- u
      in
      let gas = gas_of budget in
      (* transposition table for the current threshold iteration: canonical
         state -> best g reached; re-entering no cheaper is pruned *)
      let seen = Hashtbl.create 1024 in
      let rec dfs g bound path =
        let hh = h () in
        if hh = 0 then Some (List.rev path)
        else if g + hh > bound then None
        else begin
          burn gas;
          let rec try_edges = function
            | [] -> None
            | ((u, v) as e) :: rest ->
                if pos.(u) < 0 && pos.(v) < 0 then try_edges rest
                else begin
                  apply e;
                  let k = key () in
                  let worth =
                    match Hashtbl.find_opt seen k with
                    | Some g' when g' <= g + 1 -> false
                    | _ ->
                        Hashtbl.replace seen k (g + 1);
                        true
                  in
                  let r = if worth then dfs (g + 1) bound (e :: path) else None in
                  match r with
                  | Some _ -> r
                  | None ->
                      apply e;
                      (* undo *)
                      try_edges rest
                end
          in
          try_edges edges
        end
      in
      let rec deepen bound =
        Hashtbl.reset seen;
        Hashtbl.replace seen (key ()) 0;
        match dfs 0 bound [] with
        | Some swaps -> Optimal swaps
        | None -> deepen (bound + 1)
      in
      match deepen h0 with
      | r ->
          Qobs.incr c_solved;
          r
      | exception Out_of_budget ->
          Qobs.incr c_trips;
          Budget_exceeded
    end
  end

(* ---- whole-circuit optimum ----

   Only the two-qubit structure constrains routing: one-qubit gates and
   directives execute under any mapping.  A gate is ready once its per-wire
   predecessors have executed; ready gates whose mapped qubits are adjacent
   are executed greedily (execution never changes the mapping, so eager
   execution preserves optimality).  The search state is therefore
   (mapping, executed set), with the executed set a bitmask — circuits with
   more than 62 two-qubit gates are out of scope for the oracle and report
   Route_budget_exceeded immediately. *)

type problem = {
  gates : (int * int) array;  (** logical qubit pairs, circuit order *)
  prev : (int * int) array;  (** per-gate (prev on wire a, prev on wire b), -1 = none *)
  n_log : int;
}

let problem_of_circuit circuit =
  let n_log = Qcircuit.Circuit.n_qubits circuit in
  let gates =
    List.filter_map
      (fun (i : Qcircuit.Circuit.instr) ->
        if Qgate.Gate.is_two_qubit i.gate then
          match i.qubits with [ a; b ] -> Some (a, b) | _ -> None
        else begin
          if Qgate.Gate.arity i.gate > 2 && not (Qgate.Gate.is_directive i.gate) then
            invalid_arg "Exact.min_swaps: lower gates to <=2 qubits first";
          None
        end)
      (Qcircuit.Circuit.instrs circuit)
    |> Array.of_list
  in
  let last = Array.make n_log (-1) in
  let prev =
    Array.mapi
      (fun i (a, b) ->
        let pa = last.(a) and pb = last.(b) in
        last.(a) <- i;
        last.(b) <- i;
        (pa, pb))
      gates
  in
  { gates; prev; n_log }

(* ready = unexecuted with both wire predecessors executed *)
let front_gates pb mask =
  let ready = ref [] in
  Array.iteri
    (fun i (pa, pb') ->
      if
        mask land (1 lsl i) = 0
        && (pa < 0 || mask land (1 lsl pa) <> 0)
        && (pb' < 0 || mask land (1 lsl pb') <> 0)
      then ready := i :: !ready)
    pb.prev;
  List.rev !ready

let solve_fixed ~gas ~coupling ~dist pb l2p0 ~best_bound =
  let d = Distmat.raw dist and dn = Distmat.n dist in
  let n_gates = Array.length pb.gates in
  let all_done = (1 lsl n_gates) - 1 in
  let edges = Coupling.edges coupling in
  let l2p = Array.copy l2p0 in
  let n_phys = Coupling.n_qubits coupling in
  let occupied = Array.make n_phys false in
  Array.iter (fun p -> occupied.(p) <- true) l2p;
  let apply (u, v) =
    Array.iteri (fun l p -> if p = u then l2p.(l) <- v else if p = v then l2p.(l) <- u) l2p;
    let ou = occupied.(u) in
    occupied.(u) <- occupied.(v);
    occupied.(v) <- ou
  in
  (* drain: execute every ready gate whose mapped pair is adjacent *)
  let rec drain mask =
    let progressed = ref false in
    let mask = ref mask in
    List.iter
      (fun i ->
        let a, b = pb.gates.(i) in
        if Coupling.connected coupling l2p.(a) l2p.(b) then begin
          mask := !mask lor (1 lsl i);
          progressed := true
        end)
      (front_gates pb !mask);
    if !progressed then drain !mask else !mask
  in
  let front_pairs mask =
    List.filter_map
      (fun i ->
        let a, b = pb.gates.(i) in
        if Coupling.connected coupling l2p.(a) l2p.(b) then None
        else Some (l2p.(a), l2p.(b)))
      (front_gates pb mask)
  in
  let h mask =
    let mx = ref 0 and sum = ref 0 in
    List.iter
      (fun (a, b) ->
        let dd = d.((a * dn) + b) in
        if not (Float.is_finite dd) then raise Exit;
        let need = max 0 (int_of_float dd - 1) in
        if need > !mx then mx := need;
        sum := !sum + need)
      (front_pairs mask);
    max !mx ((!sum + 1) / 2)
  in
  let key mask = (String.init pb.n_log (fun l -> Char.chr l2p.(l)), mask) in
  let seen = Hashtbl.create 4096 in
  let mask0 = drain 0 in
  let rec dfs g mask bound =
    if mask = all_done then Some g
    else begin
      let hh = h mask in
      if g + hh > bound then None
      else begin
        burn gas;
        let rec try_edges best = function
          | [] -> best
          | ((u, v) as e) :: rest ->
              if (not occupied.(u)) && not occupied.(v) then try_edges best rest
              else begin
                apply e;
                let mask' = drain mask in
                let k = key mask' in
                let worth =
                  match Hashtbl.find_opt seen k with
                  | Some g' when g' <= g + 1 -> false
                  | _ ->
                      Hashtbl.replace seen k (g + 1);
                      true
                in
                let r = if worth then dfs (g + 1) mask' bound else None in
                apply e;
                match r with Some _ -> r | None -> try_edges best rest
              end
        in
        try_edges None edges
      end
    end
  in
  if mask0 = all_done then Some 0
  else
    (* [h] raising [Exit] anywhere means some front gate's qubits sit in
       different components under this placement: component membership is
       invariant under swaps, so the layout is unroutable outright *)
    let rec deepen bound =
      if bound > best_bound then None
      else begin
        Hashtbl.reset seen;
        Hashtbl.replace seen (key mask0) 0;
        match dfs 0 mask0 bound with
        | Some g -> Some g
        | None -> deepen (bound + 1)
        | exception Exit -> None
      end
    in
    match h mask0 with exception Exit -> None | h0 -> deepen h0

(* enumerate injective layouts (logical -> physical), calling [f] on each;
   the scratch array is reused, so [f] must copy if it keeps the layout *)
let iter_layouts ~n_log ~n_phys f =
  let layout = Array.make n_log 0 in
  let used = Array.make n_phys false in
  let rec go l =
    if l = n_log then f layout
    else
      for p = 0 to n_phys - 1 do
        if not used.(p) then begin
          used.(p) <- true;
          layout.(l) <- p;
          go (l + 1);
          used.(p) <- false
        end
      done
  in
  go 0

let min_swaps ?(budget = default_budget) ?init_layout coupling circuit =
  Qobs.span "exact.min_swaps" @@ fun () ->
  let n_phys = Coupling.n_qubits coupling in
  let pb = problem_of_circuit circuit in
  if pb.n_log > n_phys then invalid_arg "Exact.min_swaps: circuit larger than device";
  if n_phys > 255 then invalid_arg "Exact.min_swaps: device too large for the oracle";
  if Array.length pb.gates > 62 then Route_budget_exceeded
  else begin
    let dist = Distmat.hops coupling in
    let gas = gas_of budget in
    match init_layout with
    | Some l2p ->
        if Array.length l2p <> pb.n_log then
          invalid_arg "Exact.min_swaps: layout size mismatch";
        begin
          match solve_fixed ~gas ~coupling ~dist pb l2p ~best_bound:max_int with
          | Some n ->
              Qobs.incr c_solved;
              Routed { n_swaps = n; initial_layout = Array.copy l2p }
          | None ->
              Qobs.incr c_trips;
              Route_budget_exceeded
          | exception Out_of_budget ->
              Qobs.incr c_trips;
              Route_budget_exceeded
        end
    | None ->
        (* free-layout optimum: branch-and-bound over every injective
           placement, sharing one budget; the incumbent tightens the bound
           so most layouts are cut off at their root h *)
        let best = ref None in
        let best_layout = ref [||] in
        begin
          match
            iter_layouts ~n_log:pb.n_log ~n_phys (fun l2p ->
                let bound =
                  match !best with None -> max_int | Some b -> b - 1
                in
                if bound >= 0 then
                  match solve_fixed ~gas ~coupling ~dist pb l2p ~best_bound:bound with
                  | Some n ->
                      best := Some n;
                      best_layout := Array.copy l2p
                  | None -> ())
          with
          | () -> begin
              match !best with
              | Some n ->
                  Qobs.incr c_solved;
                  Routed { n_swaps = n; initial_layout = !best_layout }
              | None ->
                  Qobs.incr c_trips;
                  Route_budget_exceeded
            end
          | exception Out_of_budget ->
              Qobs.incr c_trips;
              Route_budget_exceeded
        end
  end
