(* Hybrid windowed-exact router: the NASSC engine with an exact-oracle
   window hook, run as a two-pass portfolio.

   Pass 1 installs Exact.solve_window as the engine's window hook: every
   stuck front layer within the configured width is routed to adjacency
   with a provably minimal SWAP sequence (under a node budget); wider
   fronts and budget trips fall back to the heuristic scoring for that
   step.  Pass 2 is the plain NASSC route from the same layout.  The
   router keeps whichever pass inserted fewer SWAPs, ties going to the
   heuristic — so the hybrid is never worse than NASSC at equal seeds,
   while the oracle windows win exactly where joint multi-gate fronts
   defeat the one-swap-at-a-time heuristic.

   Budgets are node counts, never wall clock, so the router stays a pure
   function of (circuit, coupling, seed) and sits inside the same
   fixed-seed reproducibility envelope as the other routers. *)

type config = {
  min_window_pairs : int;
  max_window_pairs : int;
  node_budget : int;
  nassc : Nassc.config;
}

let default_config =
  {
    min_window_pairs = 2;
    max_window_pairs = 3;
    node_budget = 4096;
    nassc = Nassc.default_config;
  }

let c_windows = Qobs.counter "hybrid.windows_solved"
let c_fallback = Qobs.counter "hybrid.fallback_steps"
let c_exact_wins = Qobs.counter "hybrid.exact_pass_selected"

(* The window hook handed to Engine.route_once.  [dist] must be the hop
   metric: the oracle's admissible bound reads integral distances.
   Single-pair fronts are left to the heuristic by default
   ([min_window_pairs = 2]): with one stuck gate the oracle can only walk
   the shortest path, which discards the lookahead term for no gain. *)
let oracle_window cfg coupling ~dist =
  let budget = { Exact.default_budget with max_nodes = cfg.node_budget } in
  fun ~front ->
    let n = List.length front in
    if n < cfg.min_window_pairs || n > cfg.max_window_pairs then None
    else
      match Exact.solve_window ~budget coupling ~dist ~pairs:front with
      | Exact.Optimal ((_ :: _) as swaps) ->
          Qobs.incr c_windows;
          Some swaps
      | Exact.Optimal [] ->
          (* a stuck front can't be already adjacent, but stay safe *)
          None
      | Exact.Budget_exceeded ->
          Qobs.incr c_fallback;
          None
      | exception Invalid_argument _ ->
          (* unreachable pair (disconnected device): the heuristic path owns
             the failure mode (Routing_stuck with full context) *)
          Qobs.incr c_fallback;
          None

let route ?(params = Engine.default_params) ?(config = default_config) coupling
    circuit =
  Qobs.span "hybrid.route" @@ fun () ->
  Qobs.Recorder.in_router "hybrid" @@ fun () ->
  let dist = Sabre.hop_distance coupling in
  let b = Nassc.bonus config.nassc in
  let dag = Qcircuit.Dag.of_circuit circuit in
  (* layout search stays heuristic (same mapping algorithm as SABRE/NASSC):
     the oracle only steers the routing passes *)
  let layout =
    Engine.find_layout params coupling ~rng:(Engine.layout_rng params) ~dist
      ~bonus:Engine.zero_bonus ~dag circuit
  in
  let pass ?window () =
    Engine.route_once params coupling ~rng:(Engine.route_rng params) ~dist ~bonus:b
      ?window ~dag circuit layout
  in
  let w = oracle_window config coupling ~dist in
  (* portfolio probes stay out of the flight record; only the winning pass
     is replayed under the recorder (the replay is deterministic, so it is
     the probe, step for step) *)
  let r_exact, r_plain = Qobs.Recorder.without (fun () -> (pass ~window:w (), pass ())) in
  let use_exact = r_exact.Engine.n_swaps < r_plain.Engine.n_swaps in
  if use_exact then Qobs.incr c_exact_wins;
  let r =
    if Qobs.Recorder.active () then if use_exact then pass ~window:w () else pass ()
    else if use_exact then r_exact
    else r_plain
  in
  let instrs = Nassc.finalize r.routed in
  {
    Sabre.circuit = Qcircuit.Circuit.create (Topology.Coupling.n_qubits coupling) instrs;
    initial_layout = r.initial_layout;
    final_layout = r.final_layout;
    n_swaps = r.n_swaps;
  }
