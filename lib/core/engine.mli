(** Shared SABRE-style routing engine (Section IV-B of the paper).

    Both routers walk the circuit DAG layer by layer: executable gates are
    emitted onto their mapped physical qubits; when the front layer is stuck,
    every SWAP touching a front-gate qubit is scored with the lookahead cost
    function (paper eq. 2) and the cheapest one is applied.  The two routers
    differ only in the [bonus] hook: SABRE's is constantly zero, NASSC's
    estimates the CNOT savings that downstream optimizations will realize
    (C_2q, C_commute1, C_commute2) and tags the chosen SWAP's decomposition.

    A decay penalty on recently swapped qubits (as in Qiskit's SabreSwap)
    prevents ping-ponging, and a stall valve falls back to shortest-path
    routing if no gate retires for too long. *)

type params = {
  ext_size : int;  (** |E|, the paper uses 20 *)
  ext_weight : float;  (** W, the paper uses 0.5 *)
  decay_delta : float;  (** decay increment per swap on a qubit *)
  stall_limit : int;  (** swaps without progress before the escape valve *)
  seed : int;
  iterations : int;  (** forward/backward layout-refinement rounds *)
  bonus_weight : float;
      (** scale on the optimization bonus inside H_basic; 1.0 applies the
          paper's eq. 1 literally, smaller values confine the bonus to
          tie-breaking between equal-distance candidates *)
}

val default_params : params

exception Routing_stuck of { front : (int * int) list; l2p : int array }
(** The search found a front layer of two-qubit gates with no candidate
    SWAP at all (e.g. the mapped qubits sit on isolated device vertices).
    [front] holds the stuck gates as physical pairs under [l2p], the
    logical-to-physical mapping at the point of failure — enough context
    to report the failure as a structured diagnostic instead of a crash.
    A printer is registered, so [Printexc.to_string] renders it fully. *)

type tag = Not_swap | Swap_plain | Swap_orient of int * int
(** Decoration on emitted SWAPs: [Swap_orient (c, t)] requests the
    decomposition whose first and last CNOTs have control [c], target [t]. *)

type out_op = {
  mutable gate : Qgate.Gate.t;
  op_qubits : int list;
  mutable tag : tag;
}

type mapping = { l2p : int array; p2l : int array }

val mapping_of_layout : n_phys:int -> int array -> mapping
(** [mapping_of_layout ~n_phys l2p] builds the two-way mapping; physical
    qubits not in the image hold no logical qubit ([p2l] = -1). *)

type stream
(** The emitted-op stream: the routed ops newest-first plus a per-physical-
    qubit index of the same ops (each with its global emission index).
    Bonus hooks walk a bounded window of recent ops on two wires; the
    per-wire tails let them visit only ops touching those wires while the
    emission indices enforce the global window bound. *)

val stream_create : ?sink:(out_op -> unit) -> ?keep:int -> n_phys:int -> unit -> stream
(** Without [sink] (the classic mode) every emitted op stays resident.
    With [sink], whenever more than [2 * keep] ops are retained the stream
    hands all but the newest [keep] to the sink oldest-first and drops them
    — O(keep) resident ops however long the route.  [keep] (default 64)
    must exceed the largest bonus scan window ([scan_limit + 1] for the
    NASSC hooks) so flushed ops are never retro-tagged; {!stream_drain}
    flushes the remainder at end of route. *)

val stream_push : stream -> out_op -> unit
(** Append an op (it becomes the newest on its wires).  [route_once] emits
    through this; exposed so tests can build streams directly. *)

val stream_drain : stream -> unit
(** Deliver every still-retained op to the sink (no-op without one). *)

val stream_rev : stream -> out_op list
(** All emitted ops, newest first (the classic [out_rev]); under a sink,
    only the ops not yet flushed. *)

val stream_total : stream -> int
(** Number of ops emitted so far; the newest op has index [total - 1]. *)

val stream_wire : stream -> int -> (int * out_op) list
(** Ops touching a physical qubit, newest first, with emission indices. *)

type bonus_fn =
  stream:stream -> mapping:mapping -> int -> int -> float * (out_op -> unit)
(** [bonus ~stream ~mapping p1 p2] scores the candidate SWAP on physical
    qubits [(p1, p2)]: returns the estimated CNOT reduction and a callback
    run on the emitted SWAP op if this candidate wins (used for tagging). *)

val zero_bonus : bonus_fn

val no_action : out_op -> unit
(** Shared no-op winner callback (allocation-free). *)

val no_bonus : float * (out_op -> unit)
(** [(0.0, no_action)], the shared "no savings" bonus result. *)

type result = {
  routed : out_op list;  (** in circuit order *)
  initial_layout : int array;
  final_layout : int array;
  n_swaps : int;
}

type stream_stats = {
  st_initial_layout : int array;
  st_final_layout : int array;
  st_n_swaps : int;
  st_gates_in : int;  (** gates consumed from the source *)
  st_peak_resident : int;  (** window high-water mark (the O(window) claim) *)
}
(** What {!route_stream} returns: the routed ops themselves went to the
    sink, so only layouts and counts remain. *)

val route_rng : params -> Mathkit.Rng.t
(** The canonical routing stream for a seed: [Rng.create params.seed],
    exactly the stream [route_once] historically created internally.
    [route_once ~rng:(route_rng params)] reproduces pre-refactor output
    bit-for-bit. *)

val layout_rng : params -> Mathkit.Rng.t
(** The canonical layout-permutation stream: [Rng.create (params.seed +
    7919)], as [find_layout] historically used. *)

module Scoring : sig
  (** The incremental candidate scorer (exposed for equivalence tests).

      Per routing step, {!prepare} computes the front/extended distance
      sums once plus a per-physical-qubit -> pairs index; {!front_after} /
      {!ext_after} then score a candidate SWAP [(p1, p2)] by adjusting only
      the pairs touching [p1] or [p2] — O(deg) instead of O(|F| + |E|).
      For integral (hop) metrics the result is bit-identical to a full
      rescan; for non-integral metrics it agrees within accumulated ulps
      (the engine's 1e-12 tie tolerance absorbs this).  Infinite base sums
      (disconnected pairs) fall back to the full rescan internally. *)

  type scratch
  (** Reusable per-[route_once] workspace (the qubit -> pairs index). *)

  type t
  (** One prepared step: base sums + index over a fixed front/ext set. *)

  val make_scratch : n_phys:int -> scratch
  val prepare :
    scratch ->
    dist:Topology.Distmat.t ->
    front:(int * int) list ->
    ext:(int * int) list ->
    t

  val base_front : t -> float
  (** Sum of [D.(a).(b)] over the front pairs under the current mapping. *)

  val base_ext : t -> float
  val front_after : t -> int -> int -> float
  (** [front_after t p1 p2]: the front sum if [(p1, p2)] were swapped. *)

  val ext_after : t -> int -> int -> float

  val pair_evals : t -> int
  (** Pair-distance evaluations performed since [prepare] — what the
      [engine.score_cache_hits] counter is computed from. *)
end

val route_once :
  params ->
  Topology.Coupling.t ->
  rng:Mathkit.Rng.t ->
  dist:Topology.Distmat.t ->
  bonus:bonus_fn ->
  ?window:(front:(int * int) list -> (int * int) list option) ->
  ?dag:Qcircuit.Dag.t ->
  Qcircuit.Circuit.t ->
  int array ->
  result
(** One routing pass from a given initial layout (logical -> physical).
    All tie-breaking randomness is drawn from [rng], which the caller owns;
    pass {!route_rng} for the canonical seeded stream, or an independent
    per-trial stream for multi-trial search.  The input circuit must contain
    only <=2-qubit gates and directives.  [dag] must be the DAG of
    [circuit] when given (the DAG is a pure function of the circuit, so
    callers routing the same circuit repeatedly build it once).

    [window], when given, is consulted on every stuck front layer with the
    front's two-qubit gates as physical pairs under the current mapping
    (pairwise disjoint by construction).  Returning [Some swaps] emits and
    applies the whole sequence — bypassing the heuristic for that front and
    resetting the stall counter — which is how the hybrid router injects
    exact window solutions; [None] (or [Some []]) falls through to the
    heuristic scoring path unchanged.  A returned sequence must consist of
    coupling edges and is trusted to make the front executable.  Without
    [window] the engine behaves byte-identically to previous releases.
    @raise Invalid_argument otherwise, or when the layout is unusable.
    @raise Routing_stuck when a front gate has no swap candidates. *)

val route_stream :
  params ->
  Topology.Coupling.t ->
  rng:Mathkit.Rng.t ->
  dist:Topology.Distmat.t ->
  bonus:bonus_fn ->
  window:int ->
  ?keep:int ->
  sink:(out_op -> unit) ->
  Qcircuit.Source.t ->
  int array ->
  stream_stats
(** Streaming counterpart of {!route_once}: consume gates from a pull
    [source] through a bounded [window]-gate sliding DAG ({!
    Qcircuit.Streamdag}), emitting routed ops to [sink] as soon as the
    emitted-op holdback allows (see {!stream_create}; [keep] defaults to
    64).  Resident memory is O(window + keep + n_phys) regardless of
    stream length.  With [window >= total gates] the ops delivered to
    [sink], the layouts and the SWAP count are byte-identical to
    [route_once] on the materialized circuit — smaller windows may route
    differently (the lookahead horizon is clipped to admitted gates) but
    remain valid.  [dist] may be an on-demand matrix
    ([Distmat.hops_lazy]), which is what avoids the dense n^2 table on
    mega-scale devices.
    @raise Invalid_argument as [route_once], checked per admission.
    @raise Routing_stuck when a front gate has no swap candidates. *)

val find_layout :
  params ->
  Topology.Coupling.t ->
  rng:Mathkit.Rng.t ->
  dist:Topology.Distmat.t ->
  bonus:bonus_fn ->
  ?dag:Qcircuit.Dag.t ->
  Qcircuit.Circuit.t ->
  int array
(** Random initial layout refined by reverse-traversal rounds (the paper
    reuses SABRE's bidirectional scheme).  [rng] drives the initial
    permutation; each refinement pass replays the canonical {!route_rng}
    stream so a fixed seed reproduces historical layouts exactly. *)

val to_circuit : n_phys:int -> out_op list -> Qcircuit.Circuit.t
(** Materialize routed ops (SWAP tags ignored: swaps stay SWAP gates). *)
