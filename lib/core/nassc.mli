(** NASSC: optimization-aware qubit routing (the paper's contribution).

    NASSC runs the same layered search as SABRE but scores each candidate
    SWAP with the CNOT savings that downstream optimizations will realize
    (paper eq. 1-2):

    - [C_2q]: the SWAP merges into the trailing two-qubit block on its pair
      and KAK re-synthesis absorbs some (or all) of its three CNOTs;
    - [C_commute1]: the SWAP's first CNOT cancels against an earlier CNOT on
      the same pair, reachable through commuting gates (single-qubit gates
      in between are moved through the SWAP);
    - [C_commute2]: two SWAPs on the same pair sandwich a set of commuting
      gates, cancelling one CNOT from each.

    Selected SWAPs are tagged with the decomposition orientation that lets
    {!Qpasses.Cancellation} actually perform the cancellation
    (optimization-aware SWAP decomposition, Section IV-E). *)

type config = {
  enable_2q : bool;
  enable_commute1 : bool;
  enable_commute2 : bool;
  orient_swaps : bool;
      (** apply the optimization-aware SWAP decomposition (Section IV-E);
          disabling it is the ablation that keeps the cost model but uses
          the fixed decomposition template *)
  scan_limit : int;
      (** emitted-op window bound for both bonus scans (the C_2q trailing
          block and the commute-set search); the paper uses 20 *)
}

val default_config : config
(** All optimizations on (the paper's choice, Section IV-F). *)

val reset_weyl_cache : unit -> unit
(** Clear this domain's memoized Weyl-cost cache (trailing-block signature
    -> (before, after) CNOT costs).  The pipeline resets it per traced
    trial so the [nassc.weyl_cache_{hits,misses}] counters are a pure
    function of the trial, whatever domain it lands on.  Caching never
    affects routing decisions — keys are exact bit-level signatures. *)

val route :
  ?params:Engine.params ->
  ?config:config ->
  ?dist:Topology.Distmat.t ->
  Topology.Coupling.t ->
  Qcircuit.Circuit.t ->
  Sabre.result
(** Route with optimization-aware cost and SWAP decomposition.  The result
    circuit has SWAPs already decomposed into oriented CNOT triples, with
    single-qubit gates moved through oriented SWAPs. *)

val bonus : config -> Engine.bonus_fn
(** The scoring hook itself (exposed for tests and ablations). *)

val finalize : Engine.out_op list -> Qcircuit.Circuit.instr list
(** Decompose tagged SWAPs and move single-qubit gates through oriented
    ones (exposed for tests). *)

module Streaming : sig
  (** Incremental {!finalize} for the streaming engine: ops are pushed as
      the routed stream emits them, finished instructions flow to [emit]
      immediately, and only the trailing contiguous run of one-qubit gates
      stays buffered (the only thing a future oriented swap can pull).
      Pushing a whole route and flushing is byte-identical to batch
      {!finalize}. *)

  type t

  val create : emit:(Qcircuit.Circuit.instr -> unit) -> t
  val push : t -> Engine.out_op -> unit
  val flush : t -> unit
  (** Emit everything still buffered (end of stream). *)

  val pending : t -> int
  (** Buffered instruction count (observability/tests). *)
end
