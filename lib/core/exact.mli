(** Exact SWAP-minimization oracle.

    Routing-to-adjacency is token swapping (Wagner et al., arXiv:2206.01294;
    Ito et al., arXiv:2305.02059): tokens (logical qubits) sit on the
    vertices of the coupling graph, a SWAP exchanges two adjacent tokens,
    and the goal is to bring designated token pairs next to each other with
    as few SWAPs as possible.  This module solves that exactly, with no
    external solver dependency: IDA* / branch-and-bound over mapping states,
    the admissible bound [max (max_i (d_i - 1)) (ceil (sum_i (d_i - 1) / 2))]
    read from the flat {!Topology.Distmat}, and canonical state hashing for
    transposition pruning.

    Two entry points:
    - {!solve_window} — minimal SWAP sequence making a set of disjoint
      physical pairs simultaneously adjacent (the hybrid router's
      front-layer subproblem);
    - {!min_swaps} — minimal total SWAP count to route a whole (small)
      circuit, from a fixed initial layout or minimized over {e all}
      injective layouts (the optimality-gap harness's ground truth).

    Everything is budgeted: the search reports {!Budget_exceeded} instead
    of running away.  With the default infinite time budget the solver is a
    pure function of its inputs — deterministic across runs, machines, and
    worker counts — which is what lets the hybrid router sit inside the
    fixed-seed reproducibility envelope.

    Observability: [exact.nodes_expanded], [exact.windows_solved] and
    [exact.budget_trips] counters, plus [exact.solve_window] /
    [exact.min_swaps] spans. *)

type budget = {
  max_nodes : int;  (** search-node expansions before giving up *)
  max_seconds : float;
      (** wall-clock cap; [infinity] (the default) keeps the solver
          deterministic — prefer node budgets anywhere reproducibility
          matters *)
}

val default_budget : budget
(** 200k nodes, no time limit. *)

type outcome =
  | Optimal of (int * int) list
      (** provably minimal SWAP sequence, in application order *)
  | Budget_exceeded

type route_outcome =
  | Routed of { n_swaps : int; initial_layout : int array }
  | Route_budget_exceeded

val lower_bound : dist:Topology.Distmat.t -> (int * int) list -> int
(** Admissible lower bound on the SWAPs needed to make every pair
    adjacent.  Pairs must be pairwise disjoint (a routing front layer
    always is).  Exposed for the admissibility property tests.
    @raise Invalid_argument on an unreachable pair. *)

val solve_window :
  ?budget:budget ->
  Topology.Coupling.t ->
  dist:Topology.Distmat.t ->
  pairs:(int * int) list ->
  outcome
(** [solve_window coupling ~dist ~pairs] returns a minimal SWAP sequence
    (as physical coupling edges, in order) after which every pair in
    [pairs] is adjacent on [coupling].  [pairs] are physical-qubit pairs
    under the current mapping and must be pairwise disjoint.
    @raise Invalid_argument on overlapping, out-of-range or unreachable
    pairs. *)

val min_swaps :
  ?budget:budget ->
  ?init_layout:int array ->
  Topology.Coupling.t ->
  Qcircuit.Circuit.t ->
  route_outcome
(** [min_swaps coupling circuit] is the provably minimal number of SWAPs
    that routes [circuit] (lowered to <=2-qubit gates; only the two-qubit
    structure constrains the answer) on [coupling].  With [init_layout]
    the optimum is relative to that fixed logical->physical placement;
    without it the oracle minimizes over {e every} injective initial
    layout (branch-and-bound with a shared incumbent), which is the true
    circuit-level optimum every heuristic router — layout search included —
    is compared against.  Circuits with more than 62 two-qubit gates
    report {!Route_budget_exceeded} immediately (the executed set is a
    bitmask). *)
