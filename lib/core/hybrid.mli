(** Hybrid windowed-exact router.

    The NASSC routing engine with {!Exact.solve_window} installed as the
    engine's window hook, run as a two-pass portfolio: one pass where
    every stuck front layer of [min_window_pairs]..[max_window_pairs]
    two-qubit gates is routed to adjacency with a provably minimal SWAP
    sequence (wider fronts and windows whose exact search exceeds
    [node_budget] nodes fall back to the heuristic scoring for that
    step), and one plain NASSC pass from the same layout.  The pass that
    inserted fewer SWAPs wins, ties going to the heuristic — so at equal
    seeds the hybrid never inserts more SWAPs than NASSC, and the oracle
    pays off exactly where joint multi-gate fronts defeat the
    one-swap-at-a-time heuristic.  Layout search is the same
    bidirectional heuristic scheme the other routers use.

    Budgets are node counts, never wall clock, so the router is a pure
    function of (circuit, coupling, seed): byte-identical across runs and
    worker counts, like every other router in the repo.

    Observability: [hybrid.windows_solved] / [hybrid.fallback_steps] /
    [hybrid.exact_pass_selected] counters, the [hybrid.route] span, and
    the oracle's own [exact.*] counters.  Only the winning pass is
    replayed into the flight recorder; oracle swaps appear there as
    single-candidate steps under router ["hybrid"]. *)

type config = {
  min_window_pairs : int;
      (** narrowest front handed to the oracle; below this the heuristic's
          lookahead term is strictly more informed (default 2) *)
  max_window_pairs : int;
      (** widest front layer (in two-qubit gates) handed to the oracle *)
  node_budget : int;  (** per-window node budget for the exact search *)
  nassc : Nassc.config;  (** bonus configuration for the heuristic steps *)
}

val default_config : config
(** 2–3-pair windows, 4096 nodes per window, NASSC defaults. *)

val route :
  ?params:Engine.params ->
  ?config:config ->
  Topology.Coupling.t ->
  Qcircuit.Circuit.t ->
  Sabre.result
(** Route [circuit] (lowered to <=2-qubit gates) onto [coupling].  Same
    contract as {!Nassc.route}: SWAPs are decomposed by {!Nassc.finalize}
    (oriented when the bonus tagged them), and the result carries the
    initial/final layouts and the SWAP count. *)
