(** Symbolic equivalence certification for routed circuits.

    Certifies [routed o initial_layout = final_layout o original] (as
    maps from logical states to physical states, up to one global phase)
    without simulation, at device scale: the cost is polynomial in wire
    count and gate count, never exponential, so 27-qubit (and larger)
    routed circuits are checked in milliseconds where statevector
    comparison ({!Qsim.Equiv}) stops at a handful of qubits.

    Method: the composite [W = routed . embed(original^{-1})] is swept
    once, maintaining [W_prefix = C . R] with [C] a Clifford held as an
    inverse-frame {!Tableau} and [R] a list of pending Pauli-axis
    rotations (the phase-folding canonical form).  Clifford gates update
    the tableau in O(n); non-Clifford rotations are pushed through [C]
    and merged against pending rotations modulo commutation, with
    Clifford-angle merges folded back into [C].  Rotations that survive
    the sweep are partitioned into independent clusters and resolved
    exactly on a dense representation of their (small) symplectic span.
    [W] is equivalent iff the residue vanishes and the final frame is the
    wire permutation the two layouts prescribe.

    The verdict is three-valued and never claims a false positive:
    {!Equivalent} and {!Not_equivalent} are certified (the latter in the
    strict sense that [W] provably is not a wire permutation up to global
    phase — every pipeline pass promises exact unitary preservation, so
    any such divergence is a transpiler bug); everything the budgets
    cannot decide is {!Unknown}.  All float comparisons (angle snapping,
    dense residue checks) use [eps], mirroring the tolerance already
    inherent in the float-parameterized gate set. *)

type location = {
  segment : string;  (** ["original"] or ["routed"] *)
  index : int;  (** instruction index within that segment *)
  gate : string;  (** {!Qgate.Gate.name} of the instruction *)
}

type certificate = {
  n_wires : int;  (** physical wires of the composite *)
  gates : int;  (** non-directive instructions swept *)
  cliffords : int;  (** tableau-only updates *)
  rotations : int;  (** non-Clifford rotations pushed *)
  merges : int;  (** pending-list merges *)
  folds : int;  (** Clifford-angle folds into the frame *)
  residues : int;  (** rotations left for dense cluster resolution *)
  clusters : int;  (** dense clusters resolved *)
  permutation : int array;
      (** [tau]: final-frame wire map, [C^dag X_w C = X_{tau w}] *)
}

type verdict =
  | Equivalent of certificate
  | Not_equivalent of { reason : string; location : location option }
  | Unknown of { reason : string }

val verdict_name : verdict -> string
(** ["equivalent"] | ["not_equivalent"] | ["unknown"]. *)

val to_json : verdict -> string
(** One-line JSON object ([{"kind":"verdict","verdict":...}] plus the
    certificate counters or the reason/location), JSONL-ready. *)

val verify_routed :
  ?budget:int ->
  ?max_dense:int ->
  ?eps:float ->
  ?trace:(string -> unit) ->
  original:Qcircuit.Circuit.t ->
  routed:Qcircuit.Circuit.t ->
  ?initial_layout:int array ->
  ?final_layout:int array ->
  unit ->
  verdict
(** Certify a routing result.  [initial_layout] / [final_layout] are
    logical->physical injections exactly as {!Qroute.Pipeline.result}
    carries them (default: identity, requiring equal wire counts).

    [budget] (default 512) bounds the commutation scan depth when merging
    a pushed rotation into the pending list; [max_dense] (default 6)
    bounds the symplectic dimension (= dense qubits, so [2^max_dense]
    matrices) a residue cluster may occupy.  Exceeding either can only
    produce {!Unknown}, never a wrong verdict.  [trace] receives one line
    per significant event (segment boundaries, folds, residue clusters).

    Emits [qverify.*] Qobs counters when a collector is installed.
    @raise Invalid_argument on malformed layouts. *)

val verify_pair :
  ?budget:int ->
  ?max_dense:int ->
  ?eps:float ->
  ?trace:(string -> unit) ->
  Qcircuit.Circuit.t ->
  Qcircuit.Circuit.t ->
  verdict
(** [verify_pair a b]: equivalence of two same-width circuits up to
    global phase (identity layouts) — the form optimization passes must
    preserve, usable as {!Contract.Semantics_preserved} evidence at any
    width. *)

(**/**)

module Pauli = Pauli
module Tableau = Tableau
