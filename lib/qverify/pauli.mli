(** Signed Pauli strings over [n] wires.

    A value represents [i^phase * (s_0 (x) s_1 (x) ... (x) s_{n-1})] where
    each per-wire factor [s_w] is one of I, X, Z, Y, encoded as an integer
    code: [0 = I], [1 = X], [2 = Z], [3 = Y] (bit 0 is the X component,
    bit 1 the Z component; [Y = i X Z], so code 3 — both bits — is Y
    itself, not iXZ).  The phase exponent lives in [0..3].

    These are the rows of the {!Tableau} and the rotation axes of the
    {!Qverify} phase-folding canonical form; everything is O(n) per
    operation and allocation-light (one [Bytes.t] per string). *)

type t

val n_wires : t -> int

val identity : int -> t
(** The all-[I] string with phase [+1]. *)

val single : n:int -> int -> int -> t
(** [single ~n w c] is the weight-one string with code [c] (1, 2 or 3) on
    wire [w]. *)

val of_codes : n:int -> ?phase:int -> (int * int) list -> t
(** [of_codes ~n ?phase codes] builds a string from (wire, code) pairs
    (default phase 0). *)

val code : t -> int -> int
(** Per-wire code, [0..3]. *)

val phase : t -> int
(** Exponent [k] of the [i^k] prefactor, [0..3]. *)

val with_phase : t -> int -> t
(** Same string, phase replaced (reduced mod 4). *)

val mul_phase : t -> int -> t
(** Multiply by [i^k] (phase added mod 4). *)

val neg : t -> t

val mul : t -> t -> t
(** Full operator product, with the per-wire phase bookkeeping
    ([X*Z = -iY] and friends) folded into the result's phase. *)

val commutes : t -> t -> bool
(** Symplectic test: strings either commute or anticommute. *)

val same_string : t -> t -> bool
(** Equal letters, phase ignored. *)

val equal : t -> t -> bool
(** Equal letters and equal phase. *)

val is_identity_string : t -> bool
(** All letters are [I] (the operator is the scalar [i^phase]). *)

val is_identity : t -> bool
(** All letters [I] and phase [+1]. *)

val is_hermitian : t -> bool
(** Phase in [{0, 2}]: the operator is [+/-] a Hermitian Pauli string. *)

val support : t -> int list
(** Wires with a non-[I] letter, ascending. *)

val weight : t -> int

val to_string : t -> string
(** ["+XIZY"], ["-iZZ"], ... for traces and test failure messages. *)
