(** Inverse-frame stabilizer tableau.

    The checker maintains the invariant [prefix = C . R]: the circuit
    prefix consumed so far equals the accumulated Clifford [C] followed
    (to the right, i.e. applied first) by a product of Pauli rotations
    [R].  This module holds [C], represented by the images of the wire
    generators under inverse conjugation:

    {v  row_x w = C^dag X_w C        row_z w = C^dag Z_w C  v}

    Appending a Clifford gate [g] (so [C <- g C]) rewrites only the rows
    of [g]'s wires: [row'(P) = row(g^dag P g)], with the local
    conjugation identities hard-coded per gate, then evaluated as a
    product of existing rows — O(n) per gate.  Pushing a rotation about a
    local axis [Q] through [C] turns it into a rotation about
    [image Q = C^dag Q C]; when the angle is a multiple of pi/2 the
    rotation is itself Clifford and is folded into [C] instead
    ({!fold_local} from the left at push time, {!fold_frame} from the
    right when a deferred merge turns Clifford). *)

type t

(** The Clifford vocabulary.  [SY = exp(-i pi/4 Y)] and its adjoint are
    internal gates needed to fold RY at Clifford angles; the rest mirror
    {!Qgate.Gate} constructors. *)
type gate =
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | SX
  | SXdg
  | SY
  | SYdg
  | CX
  | CY
  | CZ
  | SWAP

val create : int -> t
(** Identity frame on [n] wires. *)

val n_wires : t -> int

val row_x : t -> int -> Pauli.t
val row_z : t -> int -> Pauli.t

val apply : t -> gate -> int list -> unit
(** [C <- g C].  @raise Invalid_argument on an arity mismatch. *)

val image_local : t -> (int * int) list -> Pauli.t
(** Image [C^dag Q C] of the phase-free local Pauli [Q] given as
    (wire, code) pairs — the push of a rotation axis through [C]. *)

val image : t -> Pauli.t -> Pauli.t
(** Image of an arbitrary signed Pauli string. *)

val fold_local : t -> quarters:int -> (int * int) list -> unit
(** [fold_local t ~quarters q]: append the Clifford rotation
    [exp(-i (quarters * pi/2) / 2 * Q)] from the left ([C <- E C]),
    [quarters] in [{1, 2, 3}].  Only rows of [Q]'s wires change. *)

val fold_frame : t -> quarters:int -> Pauli.t -> unit
(** [fold_frame t ~quarters s]: absorb the Clifford rotation
    [exp(-i (quarters * pi/2) / 2 * S)] from the right ([C <- C E]) —
    used when a deferred rotation merge lands on a Clifford angle.  [s]
    is already a frame-side string (an element of the row algebra), so
    every row anticommuting with it is rewritten: O(n^2). *)

val map_rows : t -> (Pauli.t -> Pauli.t) -> unit
(** Rewrite every row through [f] — the frame-side absorption of a
    residual Clifford whose conjugation action is known row-by-row
    ([C <- C V] with [f row = V^dag row V]). *)

val permutation : t -> int array option
(** [Some tau] when [C] is exactly a wire permutation up to global phase:
    every row pair is [(+X_{tau w}, +Z_{tau w})] and [tau] is a
    bijection.  [C = P_sigma] then holds with [tau = sigma^{-1}]. *)
