module Pauli = Pauli
module Tableau = Tableau
module P = Pauli
module Mat = Mathkit.Mat
open Qcircuit

let c_runs = Qobs.counter "qverify.runs"
let c_gates = Qobs.counter "qverify.gates"
let c_cliffords = Qobs.counter "qverify.cliffords"
let c_rotations = Qobs.counter "qverify.rotations"
let c_merges = Qobs.counter "qverify.merges"
let c_folds = Qobs.counter "qverify.folds"
let c_residues = Qobs.counter "qverify.residues"
let c_clusters = Qobs.counter "qverify.clusters"
let c_not_equivalent = Qobs.counter "qverify.not_equivalent"
let c_unknowns = Qobs.counter "qverify.unknowns"

type location = { segment : string; index : int; gate : string }

type certificate = {
  n_wires : int;
  gates : int;
  cliffords : int;
  rotations : int;
  merges : int;
  folds : int;
  residues : int;
  clusters : int;
  permutation : int array;
}

type verdict =
  | Equivalent of certificate
  | Not_equivalent of { reason : string; location : location option }
  | Unknown of { reason : string }

let verdict_name = function
  | Equivalent _ -> "equivalent"
  | Not_equivalent _ -> "not_equivalent"
  | Unknown _ -> "unknown"

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json v =
  match v with
  | Equivalent c ->
      Printf.sprintf
        "{\"kind\":\"verdict\",\"verdict\":\"equivalent\",\"n_wires\":%d,\"gates\":%d,\
         \"cliffords\":%d,\"rotations\":%d,\"merges\":%d,\"folds\":%d,\"residues\":%d,\
         \"clusters\":%d,\"permutation\":[%s]}"
        c.n_wires c.gates c.cliffords c.rotations c.merges c.folds c.residues c.clusters
        (String.concat "," (Array.to_list (Array.map string_of_int c.permutation)))
  | Not_equivalent { reason; location } ->
      let loc =
        match location with
        | None -> ""
        | Some l ->
            Printf.sprintf ",\"segment\":\"%s\",\"index\":%d,\"gate\":\"%s\""
              (json_escape l.segment) l.index (json_escape l.gate)
      in
      Printf.sprintf "{\"kind\":\"verdict\",\"verdict\":\"not_equivalent\",\"reason\":\"%s\"%s}"
        (json_escape reason) loc
  | Unknown { reason } ->
      Printf.sprintf "{\"kind\":\"verdict\",\"verdict\":\"unknown\",\"reason\":\"%s\"}"
        (json_escape reason)

(* ---- the sweep state ---- *)

type rot = { angle : float; str : P.t; rloc : location }

type state = {
  tab : Tableau.t;
  budget : int;
  max_dense : int;
  eps : float;
  trace : (string -> unit) option;
  mutable pending : rot list;  (** newest first *)
  mutable gates : int;
  mutable cliffords : int;
  mutable rotations : int;
  mutable merges : int;
  mutable folds : int;
}

exception Fail_not_equiv of string * location option
exception Fail_unknown of string

let tracef st fmt = Printf.ksprintf (fun s -> match st.trace with Some f -> f s | None -> ()) fmt

let two_pi = 2.0 *. Float.pi
let half_pi = 0.5 *. Float.pi

let norm_angle th =
  let r = Float.rem th two_pi in
  if r < 0.0 then r +. two_pi else r

(* snap an angle to the nearest multiple of pi/2 within eps; `Zero means the
   rotation is a global phase, `Quarter k a Clifford rotation *)
let snap eps th =
  let r = norm_angle th in
  let k = int_of_float (Float.round (r /. half_pi)) land 3 in
  if Float.abs (r -. (Float.round (r /. half_pi) *. half_pi)) <= eps then
    if k = 0 then `Zero else `Quarter k
  else `Generic r

(* ---- GF(2) symplectic linear algebra for residue clusters ----

   Strings become vectors in F_2^{2n} (bit 2w = X component on wire w, bit
   2w+1 = Z component), packed into int limbs; independence and span
   queries go through a standard highest-bit xor basis. *)

module Bv = struct
  type t = int array

  let bits_per_limb = 62

  let of_pauli n p : t =
    let v = Array.make (((2 * n) + bits_per_limb - 1) / bits_per_limb) 0 in
    for w = 0 to n - 1 do
      let c = P.code p w in
      if c land 1 <> 0 then begin
        let b = 2 * w in
        v.(b / bits_per_limb) <- v.(b / bits_per_limb) lor (1 lsl (b mod bits_per_limb))
      end;
      if c land 2 <> 0 then begin
        let b = (2 * w) + 1 in
        v.(b / bits_per_limb) <- v.(b / bits_per_limb) lor (1 lsl (b mod bits_per_limb))
      end
    done;
    v

  let xor a b = Array.mapi (fun i x -> x lxor b.(i)) a
  let is_zero v = Array.for_all (fun x -> x = 0) v

  let highest_bit v =
    let rec msb x acc = if x = 0 then acc else msb (x lsr 1) (acc + 1) in
    let rec go i =
      if i < 0 then None
      else if v.(i) = 0 then go (i - 1)
      else Some ((i * bits_per_limb) + msb v.(i) (-1))
    in
    go (Array.length v - 1)
end

(* xor basis with optional combination masks (mask = int bitset over the
   generator indices that sum to the stored vector) *)
type xbasis = { mutable rows : (int * Bv.t * int) list (* msb, vec, mask *) }

let xb_create () = { rows = [] }

(* reduce [v] against the basis; returns the residual and its mask *)
let xb_reduce xb v mask =
  let rec go v mask =
    match Bv.highest_bit v with
    | None -> (v, mask)
    | Some h -> begin
        match List.find_opt (fun (m, _, _) -> m = h) xb.rows with
        | None -> (v, mask)
        | Some (_, bv, bm) -> go (Bv.xor v bv) (mask lxor bm)
      end
  in
  go v mask

let xb_insert xb v mask =
  let v', mask' = xb_reduce xb v mask in
  match Bv.highest_bit v' with
  | None -> `Dependent mask'
  | Some h ->
      xb.rows <- (h, v', mask') :: xb.rows;
      `Independent

(* ---- symplectic Gram-Schmidt over a cluster's strings ----

   Returns hyperbolic pairs (a_i, b_i) and central elements c_j, all
   concrete phase-positive Hermitian strings that are products of the
   inputs, spanning the same subgroup.  Pairs anticommute within
   themselves and commute with everything else; centrals commute with the
   whole span. *)
let sympl_gs n strings =
  let canon p = P.with_phase p 0 in
  let rec go todo pairs centrals central_vecs =
    match todo with
    | [] -> (List.rev pairs, List.rev centrals)
    | a :: rest when P.is_identity_string a -> go rest pairs centrals central_vecs
    | a :: rest -> begin
        match List.partition (fun c -> not (P.commutes a c)) rest with
        | b :: anti, comm ->
            (* (a, b) is a hyperbolic pair; make the remainder commute with
               both: c -> c.b if <c,a> = 1, then c -> c.a if <c,b> = 1 *)
            let fix c =
              let c = if P.commutes c a then c else P.mul c b in
              if P.commutes c b then c else P.mul c a
            in
            go (List.map fix (anti @ comm)) ((canon a, canon b) :: pairs) centrals
              central_vecs
        | [], _ ->
            (* commutes with everything left: central; keep only if
               independent of the centrals found so far (its pairings with
               the hyperbolic part are all zero, so independence is a pure
               central-span question) *)
            let v = Bv.of_pauli n a in
            let xb = xb_create () in
            List.iter (fun cv -> ignore (xb_insert xb cv 0)) central_vecs;
            (match xb_insert xb v 0 with
            | `Dependent _ -> go rest pairs centrals central_vecs
            | `Independent -> go rest pairs (canon a :: centrals) (v :: central_vecs))
      end
  in
  go strings [] [] []

(* Decode [m] as [zeta . X^a Z^b] (entrywise within eps): the xor
   pattern [a], the sign pattern [b] and the unit scalar [zeta], with
   index bit [p] belonging to qubit [nbits - 1 - p] (the {!Circuit.embed}
   convention).  [None] when [m] is not a global phase times a Pauli. *)
let decode_phase_pauli ?(eps = 1e-6) m =
  let dim = Mat.rows m in
  let abs2 z = (z.Complex.re *. z.Complex.re) +. (z.Complex.im *. z.Complex.im) in
  (* xor pattern from column 0 *)
  let a = ref (-1) in
  (try
     for r = 0 to dim - 1 do
       if abs2 (Mat.get m r 0) > 0.25 then
         if !a < 0 then a := r else raise Exit
     done
   with Exit -> a := -2);
  if !a < 0 then None
  else begin
    let a = !a in
    let u = Array.init dim (fun j -> Mat.get m (j lxor a) j) in
    let pattern_ok = ref true in
    for r = 0 to dim - 1 do
      for j = 0 to dim - 1 do
        let e = Mat.get m r j in
        if r = j lxor a then begin
          if Float.abs (abs2 e -. 1.0) > eps then pattern_ok := false
        end
        else if abs2 e > eps *. eps then pattern_ok := false
      done
    done;
    if not !pattern_ok then None
    else begin
      (* entry ratios must follow (-1)^(j & b) for some sign support b *)
      let ratio j = Complex.div u.(j) u.(0) in
      let b = ref 0 in
      let ok = ref true in
      let bits =
        int_of_float (Float.round (Float.log (float_of_int dim) /. Float.log 2.0))
      in
      for p = 0 to bits - 1 do
        let r = ratio (1 lsl p) in
        if Float.abs r.Complex.im > eps then ok := false
        else if r.Complex.re < 0.0 then b := !b lor (1 lsl p)
      done;
      if not !ok then None
      else begin
        let popcount x =
          let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
          go x 0
        in
        try
          for j = 0 to dim - 1 do
            let expect = if popcount (j land !b) land 1 = 1 then -1.0 else 1.0 in
            let r = ratio j in
            if Float.abs (r.Complex.re -. expect) > eps || Float.abs r.Complex.im > eps
            then raise Exit
          done;
          Some (a, !b, u.(0))
        with Exit -> None
      end
    end
  end

(* zeta as a power of i (within eps), if it is one *)
let quarter_phase ?(eps = 1e-6) (z : Complex.t) =
  let cand = [ (0, 1.0, 0.0); (1, 0.0, 1.0); (2, -1.0, 0.0); (3, 0.0, -1.0) ] in
  List.find_map
    (fun (d, re, im) ->
      if Float.abs (z.Complex.re -. re) <= eps && Float.abs (z.Complex.im -. im) <= eps
      then Some d
      else None)
    cand

let x2 = Mat.of_real_rows [ [ 0.0; 1.0 ]; [ 1.0; 0.0 ] ]
let z2 = Mat.of_real_rows [ [ 1.0; 0.0 ]; [ 0.0; -1.0 ] ]

(* resolve one contiguous window of a residue cluster exactly on the
   dense representation of its symplectic span *)
let resolve_window ~eps ~max_dense ~others n members =
  let strings = List.map (fun r -> r.str) members in
  let pairs, centrals = sympl_gs n strings in
  let k = List.length pairs in
  let m = k + List.length centrals in
  if m = 0 then `Resolved
  else if m > max_dense then
    `Unknown (Printf.sprintf "residue cluster spans %d > %d dense qubits" m max_dense)
  else begin
    (* basis order is fixed: a_1 b_1 ... a_k b_k c_1 ... c_r, with matrix
       images X_1 Z_1 ... X_k Z_k Z_{k+1} ... Z_m; phases of arbitrary span
       elements are pinned by multiplying concrete strings in this order on
       both sides, which is a genuine homomorphism because the symplectic
       form and the squares of the basis agree by construction *)
    let basis_strs =
      List.concat_map (fun (a, b) -> [ a; b ]) pairs @ centrals
    in
    let basis_mats =
      List.mapi
        (fun i _ ->
          let qubit = if i < 2 * k then i / 2 else i - k in
          let local = if i < 2 * k && i mod 2 = 0 then x2 else z2 in
          Circuit.embed ~n:m local [ qubit ])
        basis_strs
    in
    let basis = List.combine basis_strs basis_mats in
    let pair_list = pairs in
    let central_xb = xb_create () in
    List.iteri
      (fun j c -> ignore (xb_insert central_xb (Bv.of_pauli n c) (1 lsl j)))
      centrals;
    let dim = 1 lsl m in
    let id = Mat.identity dim in
    let rep s =
      (* exponents over the hyperbolic pairs come from symplectic products
         with the partner element; the central residual is solved over the
         central xor basis *)
      let expts = Array.make (List.length basis_strs) false in
      List.iteri
        (fun i (a, b) ->
          if not (P.commutes s b) then expts.(2 * i) <- true;
          if not (P.commutes s a) then expts.(2 * i + 1) <- true)
        pair_list;
      let target = ref (Bv.of_pauli n s) in
      List.iteri
        (fun i (bs, _) ->
          if i < 2 * k && expts.(i) then target := Bv.xor !target (Bv.of_pauli n bs))
        basis;
      let residual, mask = xb_reduce central_xb !target 0 in
      if not (Bv.is_zero residual) then None
      else begin
        for j = 0 to List.length centrals - 1 do
          if mask land (1 lsl j) <> 0 then expts.(2 * k + j) <- true
        done;
        (* multiply strings and matrices in the same fixed order *)
        let f = ref (P.identity n) and mt = ref id in
        List.iteri
          (fun i (bs, bm) ->
            if expts.(i) then begin
              f := P.mul !f bs;
              mt := Mat.mul !mt bm
            end)
          basis;
        if not (P.same_string !f s) then None
        else begin
          let d = (P.phase s - P.phase !f) land 3 in
          let phase =
            match d with
            | 0 -> Complex.one
            | 1 -> Complex.{ re = 0.0; im = 1.0 }
            | 2 -> Complex.{ re = -1.0; im = 0.0 }
            | _ -> Complex.{ re = 0.0; im = -1.0 }
          in
          Some (Mat.scale phase !mt)
        end
      end
    in
    (* product of the cluster's rotations, newest leftmost *)
    let rec product acc = function
      | [] -> Some acc
      | r :: tl -> begin
          match rep r.str with
          | None -> None
          | Some sm ->
              let c = Complex.{ re = cos (r.angle /. 2.0); im = 0.0 }
              and s = Complex.{ re = 0.0; im = -.sin (r.angle /. 2.0) } in
              let rot = Mat.add (Mat.scale c id) (Mat.scale s sm) in
              product (Mat.mul acc rot) tl
        end
    in
    (* conjugation transfer: for a real Pauli Q with pairing bits sigma
       against the basis (sigma_i = <Q, basis_i>), V^dag Q V = Q . A where
       rep(A) = G^dag M^dag G M for the rep-side pattern G whose pairings
       with the rep basis match sigma.  This identity is exact algebra (no
       Clifford assumption); when the matrix decodes as a phase-Pauli in
       the rep image, A is recovered exactly as i^d . F(e). *)
    let sigma_of q =
      List.fold_left
        (fun (i, acc) bs ->
          (i + 1, if P.commutes q bs then acc else acc lor (1 lsl i)))
        (0, 0) basis_strs
      |> snd
    in
    let g_mat sigma =
      (* qubit i < k: Z-exp = sigma bit 2i, X-exp = sigma bit 2i+1;
         central qubit k+j: X-exp = sigma bit 2k+j *)
      let acc = ref id in
      for q = 0 to m - 1 do
        let xe, ze =
          if q < k then (sigma lsr ((2 * q) + 1) land 1, sigma lsr (2 * q) land 1)
          else (sigma lsr (k + q) land 1, 0)
        in
        let local = ref (Mat.identity 2) in
        if xe = 1 then local := Mat.mul !local x2;
        if ze = 1 then local := Mat.mul !local z2;
        if xe + ze > 0 then acc := Mat.mul !acc (Circuit.embed ~n:m !local [ q ])
      done;
      !acc
    in
    match product id members with
    | None -> `Unknown "residue cluster decomposition failed"
    | Some prod ->
        if Mat.equal_up_to_phase ~eps:1e-6 prod id then `Resolved
        else begin
          ignore eps;
          let adj = Mat.adjoint prod in
          (* decode A for a pairing pattern; None when the conjugate is
             provably outside the Pauli group *)
          let transfer sigma =
            if sigma = 0 then Some (P.identity n)
            else begin
              let g = g_mat sigma in
              let nmat = Mat.mul (Mat.adjoint g) (Mat.mul adj (Mat.mul g prod)) in
              match decode_phase_pauli nmat with
              | None -> None
              | Some (na, nb, zeta) -> begin
                  match quarter_phase zeta with
                  | None -> None
                  | Some d -> begin
                      (* index bit p is qubit m-1-p; rebuild the exponent
                         vector e over the basis order *)
                      let bit pat q = (pat lsr (m - 1 - q)) land 1 in
                      let ok = ref true in
                      let expts = Array.make (List.length basis_strs) false in
                      for q = 0 to m - 1 do
                        if q < k then begin
                          if bit na q = 1 then expts.(2 * q) <- true;
                          if bit nb q = 1 then expts.((2 * q) + 1) <- true
                        end
                        else begin
                          (* rep image is Z-only on central qubits *)
                          if bit na q = 1 then ok := false;
                          if bit nb q = 1 then expts.(k + q) <- true
                        end
                      done;
                      if not !ok then None
                      else begin
                        let f = ref (P.identity n) in
                        List.iteri
                          (fun i bs -> if expts.(i) then f := P.mul !f bs)
                          basis_strs;
                        Some (P.mul_phase !f d)
                      end
                    end
                end
            end
          in
          (* all 2m single-generator patterns must transfer; products of
             decodable conjugates decode, so this is complete *)
          let patterns =
            (* sigma patterns of the rep generators X_q / Z_q: X_q pairs
               only with rep Z_q, i.e. basis b_q (pairs) or c_{q-k}
               (centrals); Z_q pairs only with rep X_q, i.e. basis a_q
               (pairs) *)
            List.concat
              (List.init m (fun q ->
                   if q < k then [ 1 lsl ((2 * q) + 1); 1 lsl (2 * q) ]
                   else [ 1 lsl (k + q) ]))
          in
          (* which rep-generator conjugations are sound witnesses?  Pair
             directions and central Z always are (they are images of real
             span elements).  The X direction of central j stands for a
             real partner Pauli pairing 1 with c_j and 0 with everything
             else in the residue set; it exists iff c_j is independent of
             the span of (other clusters' members + this cluster's other
             basis elements). *)
          let central_x_sound =
            List.mapi
              (fun j cj ->
                let xb = xb_create () in
                List.iter (fun v -> ignore (xb_insert xb v 0)) others;
                List.iteri
                  (fun i bs ->
                    if i <> (2 * k) + j then
                      ignore (xb_insert xb (Bv.of_pauli n bs) 0))
                  basis_strs;
                ignore cj;
                match xb_insert xb (Bv.of_pauli n (List.nth centrals j)) 0 with
                | `Independent -> true
                | `Dependent _ -> false)
              centrals
          in
          let g_checks =
            (* (generator matrix, is the witness sound?) *)
            List.concat
              (List.init m (fun q ->
                   let x = Circuit.embed ~n:m x2 [ q ]
                   and z = Circuit.embed ~n:m z2 [ q ] in
                   if q < k then [ (x, true); (z, true) ]
                   else [ (x, List.nth central_x_sound (q - k)); (z, true) ]))
          in
          let bad = ref false and tainted = ref false in
          List.iter
            (fun (g, sound) ->
              if not !bad then
                let c = Mat.mul adj (Mat.mul g prod) in
                if decode_phase_pauli c = None then
                  if sound then bad := true else tainted := true)
            g_checks;
          if !bad then `Non_clifford
          else if !tainted then
            `Unknown "residual cluster is entangled with other residues"
          else begin
            (* the residual is a genuine Clifford on the cluster span: it
               can be absorbed into the frame exactly.  Precheck the
               single-generator transfers so later row rewrites cannot
               fail *)
            if List.exists (fun sg -> transfer sg = None) patterns then
              `Unknown "residual Clifford cluster did not decode"
            else begin
              let cache = Hashtbl.create 16 in
              let rewrite q =
                let sigma = sigma_of q in
                match Hashtbl.find_opt cache sigma with
                | Some (Some a) -> P.mul q a
                | Some None -> raise (Fail_unknown "residual Clifford transfer failed")
                | None -> begin
                    let a = transfer sigma in
                    Hashtbl.replace cache sigma a;
                    match a with
                    | Some a -> P.mul q a
                    | None -> raise (Fail_unknown "residual Clifford transfer failed")
                  end
              in
              `Clifford rewrite
            end
          end
        end
  end

(* ---- symbolic Heisenberg propagation for oversized residues ---- *)

(* Conjugate one Pauli term-by-term through a rotation list:
   e^{i t/2 S} Q e^{-i t/2 S} = Q when [Q,S] = 0, else
   cos t . Q - i sin t . (Q S).  The expansion is exact (up to float
   rounding) and only grows when the residue genuinely entangles many
   virtual qubits; past [terms_cap] live terms we give up with [None]
   (-> Unknown), never a wrong answer.  Used when a residue cluster's
   symplectic span exceeds the dense bound: the final permutation test
   only needs each frame row's image under the residue, not the residue
   itself, so no dense representation is ever built. *)
let propagate ~terms_cap members p0 =
  let open Complex in
  let bare p = P.with_phase p 0 in
  (* i^k *)
  let quarter k = match k land 3 with
    | 0 -> one
    | 1 -> i
    | 2 -> { re = -1.0; im = 0.0 }
    | _ -> { re = 0.0; im = -1.0 }
  in
  let terms = Hashtbl.create 64 in
  let add tbl b c =
    let k = P.to_string b in
    let c = match Hashtbl.find_opt tbl k with
      | None -> c
      | Some (_, c0) -> Complex.add c0 c
    in
    if Complex.norm c < 1e-14 then Hashtbl.remove tbl k else Hashtbl.replace tbl k (b, c)
  in
  add terms (bare p0) (quarter (P.phase p0));
  try
    List.iter
      (fun r ->
        let s = r.str in
        let next = Hashtbl.create (2 * Hashtbl.length terms) in
        Hashtbl.iter
          (fun _ (b, c) ->
            if P.commutes b s then add next b c
            else begin
              let ct = cos r.angle and st = sin r.angle in
              add next b (Complex.mul c { re = ct; im = 0.0 });
              let m = P.mul b s in
              (* -i sin t . i^{phase(b.s)} *)
              let w = Complex.mul (quarter (3 + P.phase m)) { re = st; im = 0.0 } in
              add next (bare m) (Complex.mul c w)
            end)
          terms;
        if Hashtbl.length next > terms_cap then raise Exit;
        Hashtbl.reset terms;
        Hashtbl.iter (fun k v -> Hashtbl.replace terms k v) next)
      members;
    Some (Hashtbl.fold (fun _ v acc -> v :: acc) terms [])
  with Exit -> None

(* Collapse test: the image must be one Pauli with coefficient +1.
   [`Pauli b] when it is, [`Mixed] when it provably is not (some other
   term carries weight >= eps, or the dominant coefficient is not +1),
   [`Grey] when float dust makes the call unsafe. *)
let collapsed ~eps terms =
  match List.sort (fun (_, c1) (_, c2) -> compare (Complex.norm c2) (Complex.norm c1)) terms with
  | [] -> `Mixed
  | (b, c) :: rest ->
      let rest_big = List.exists (fun (_, c') -> Complex.norm c' >= eps) rest in
      if rest_big then `Mixed
      else if List.exists (fun (_, c') -> Complex.norm c' >= 1e-12) rest then `Grey
      else if Complex.norm (Complex.sub c Complex.one) < eps then `Pauli b
      else if Complex.norm (Complex.sub c Complex.one) < 1e-3 then `Grey
      else `Mixed

(* ---- pushing rotations through the frame ---- *)

(* the merge scan result: a same-string partner with only commuting
   strings in between, a definite anticommuting blocker, or nothing *)
let rec scan_pending budget s depth before rest =
  match rest with
  | r :: tl when depth < budget ->
      if P.same_string r.str s then `Found (before, r, tl)
      else if P.commutes r.str s then scan_pending budget s (depth + 1) (r :: before) tl
      else `Blocked
  | _ -> `Not_found

let push_rotation st loc theta codes =
  match snap st.eps theta with
  | `Zero -> ()
  | `Quarter k ->
      st.cliffords <- st.cliffords + 1;
      Tableau.fold_local st.tab ~quarters:k codes
  | `Generic th ->
      st.rotations <- st.rotations + 1;
      let s = Tableau.image_local st.tab codes in
      let th, s =
        match P.phase s with
        | 0 -> (th, s)
        | 2 -> (-.th, P.with_phase s 0)
        | _ -> assert false (* images of Hermitian axes stay Hermitian *)
      in
      let prepend () = st.pending <- { angle = th; str = s; rloc = loc } :: st.pending in
      begin
        match scan_pending st.budget s 0 [] st.pending with
        | `Not_found | `Blocked -> prepend ()
        | `Found (before, r, tl) -> begin
            st.merges <- st.merges + 1;
            match snap st.eps (r.angle +. th) with
            | `Zero -> st.pending <- List.rev_append before tl
            | `Quarter k ->
                (* the merged rotation turned Clifford: it commutes with
                   every newer pending rotation (the scan passed them), so
                   it folds into the frame from the right *)
                st.folds <- st.folds + 1;
                st.pending <- List.rev_append before tl;
                Tableau.fold_frame st.tab ~quarters:k s;
                tracef st "fold %d*pi/2 about %s" k (P.to_string s)
            | `Generic a ->
                st.pending <- List.rev_append before ({ r with angle = a } :: tl)
          end
      end

let clifford st g qs =
  st.cliffords <- st.cliffords + 1;
  Tableau.apply st.tab g qs

let rec process st loc (g, qs) =
  match ((g : Qgate.Gate.t), qs) with
  | (Id | Barrier _ | Measure), _ -> ()
  | X, [ q ] -> clifford st Tableau.X [ q ]
  | Y, [ q ] -> clifford st Tableau.Y [ q ]
  | Z, [ q ] -> clifford st Tableau.Z [ q ]
  | H, [ q ] -> clifford st Tableau.H [ q ]
  | S, [ q ] -> clifford st Tableau.S [ q ]
  | Sdg, [ q ] -> clifford st Tableau.Sdg [ q ]
  | SX, [ q ] -> clifford st Tableau.SX [ q ]
  | SXdg, [ q ] -> clifford st Tableau.SXdg [ q ]
  | CX, [ c; t ] -> clifford st Tableau.CX [ c; t ]
  | CY, [ c; t ] -> clifford st Tableau.CY [ c; t ]
  | CZ, [ c; t ] -> clifford st Tableau.CZ [ c; t ]
  | SWAP, [ a; b ] -> clifford st Tableau.SWAP [ a; b ]
  | T, [ q ] -> push_rotation st loc (Float.pi /. 4.0) [ (q, 2) ]
  | Tdg, [ q ] -> push_rotation st loc (-.Float.pi /. 4.0) [ (q, 2) ]
  | RX a, [ q ] -> push_rotation st loc a [ (q, 1) ]
  | RY a, [ q ] -> push_rotation st loc a [ (q, 3) ]
  | RZ a, [ q ] -> push_rotation st loc a [ (q, 2) ]
  | P a, [ q ] -> push_rotation st loc a [ (q, 2) ]
  | U (t, p, l), [ q ] ->
      (* U = e^{i phase} RZ(p) RY(t) RZ(l): lam first, then theta, then phi *)
      push_rotation st loc l [ (q, 2) ];
      push_rotation st loc t [ (q, 3) ];
      push_rotation st loc p [ (q, 2) ]
  | RZZ a, [ c; t ] -> push_rotation st loc a [ (c, 2); (t, 2) ]
  | Unitary2 _, _ ->
      raise
        (Fail_unknown
           (Printf.sprintf "raw unitary block at %s[%d] is outside the symbolic gate set"
              loc.segment loc.index))
  | (CH | CRX _ | CRY _ | CRZ _ | CP _ | CCX | CCZ | CSWAP | MCX _ | MCZ _), qs ->
      List.iter (process st loc) (Qgate.Decompose.lower (g, qs))
  | g, qs ->
      raise
        (Fail_unknown
           (Printf.sprintf "unsupported gate %s/%d at %s[%d]" (Qgate.Gate.name g)
              (List.length qs) loc.segment loc.index))

(* partition surviving rotations into clusters under anticommutation:
   strings in different clusters all commute, which is what licenses the
   per-cluster factorization of the residue product *)
let clusters_of (rots : rot array) =
  let m = Array.length rots in
  let parent = Array.init m (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      if not (P.commutes rots.(i).str rots.(j).str) then union i j
    done
  done;
  let tbl = Hashtbl.create 8 in
  for i = m - 1 downto 0 do
    (* downto: member lists come out newest-first (ascending i) *)
    let r = find i in
    Hashtbl.replace tbl r (i :: (try Hashtbl.find tbl r with Not_found -> []))
  done;
  Hashtbl.fold (fun _ members acc -> List.map (fun i -> rots.(i)) members :: acc) tbl []

(* ---- driver ---- *)

let check_layout ~what ~n_log ~n_phys a =
  if Array.length a <> n_log then
    invalid_arg
      (Printf.sprintf "Qverify: %s has %d entries for %d logical qubits" what
         (Array.length a) n_log);
  let seen = Array.make n_phys false in
  Array.iter
    (fun p ->
      if p < 0 || p >= n_phys then
        invalid_arg (Printf.sprintf "Qverify: %s wire %d out of range" what p);
      if seen.(p) then invalid_arg (Printf.sprintf "Qverify: %s repeats wire %d" what p);
      seen.(p) <- true)
    a

let verify_routed ?(budget = 512) ?(max_dense = 6) ?(eps = 1e-7) ?trace ~original
    ~routed ?initial_layout ?final_layout () =
  Qobs.incr c_runs;
  let n_log = Circuit.n_qubits original and n_phys = Circuit.n_qubits routed in
  if n_log > n_phys then
    invalid_arg "Qverify: original circuit is wider than the routed circuit";
  let il = match initial_layout with Some a -> a | None -> Array.init n_log Fun.id in
  let fl = match final_layout with Some a -> a | None -> Array.init n_log Fun.id in
  check_layout ~what:"initial layout" ~n_log ~n_phys il;
  check_layout ~what:"final layout" ~n_log ~n_phys fl;
  let st =
    {
      tab = Tableau.create n_phys;
      budget;
      max_dense;
      eps;
      trace;
      pending = [];
      gates = 0;
      cliffords = 0;
      rotations = 0;
      merges = 0;
      folds = 0;
    }
  in
  let finish v =
    Qobs.add c_gates st.gates;
    Qobs.add c_cliffords st.cliffords;
    Qobs.add c_rotations st.rotations;
    Qobs.add c_merges st.merges;
    Qobs.add c_folds st.folds;
    (match v with
    | Not_equivalent _ -> Qobs.incr c_not_equivalent
    | Unknown _ -> Qobs.incr c_unknowns
    | Equivalent _ -> ());
    v
  in
  try
    (* the composite W = routed . embed(original^-1): if routing is correct
       W is exactly the wire permutation the layouts prescribe *)
    let inv = Circuit.lift (Circuit.inverse original) ~n:n_phys ~map:il in
    let inv_len = List.length (Circuit.instrs inv) in
    let sweep segment ?(flip = 0) c =
      List.iteri
        (fun i (instr : Circuit.instr) ->
          let index = if flip > 0 then flip - 1 - i else i in
          let loc = { segment; index; gate = Qgate.Gate.name instr.gate } in
          (match instr.gate with
          | Qgate.Gate.Id | Qgate.Gate.Barrier _ | Qgate.Gate.Measure -> ()
          | _ -> st.gates <- st.gates + 1);
          process st loc (instr.gate, instr.qubits))
        (Circuit.instrs c)
    in
    tracef st "sweep original^-1: %d instrs on %d wires" inv_len n_phys;
    sweep "original" ~flip:inv_len inv;
    tracef st "sweep routed: %d instrs" (List.length (Circuit.instrs routed));
    sweep "routed" routed;
    (* residues: rotations the commutation scan could not cancel *)
    let residues = Array.of_list (List.rev (List.rev st.pending)) in
    let n_residues = Array.length residues in
    Qobs.add c_residues n_residues;
    let n_clusters = ref 0 in
    let deferred = ref [] in
    if n_residues > 0 then begin
      tracef st "%d residual rotations" n_residues;
      let clusters = clusters_of residues in
      List.iter
        (fun members ->
          incr n_clusters;
          Qobs.incr c_clusters;
          tracef st "cluster: %s"
            (String.concat " "
               (List.map (fun r -> Printf.sprintf "(%g)%s" r.angle (P.to_string r.str)) members));
          let others =
            List.concat_map
              (fun ms ->
                if ms == members then []
                else List.map (fun r -> Bv.of_pauli n_phys r.str) ms)
              clusters
          in
          match resolve_window ~eps ~max_dense ~others n_phys members with
          | `Resolved -> ()
          | `Clifford rewrite ->
              (* absorb the residual Clifford into the frame: every row
                 Q becomes Q . A(Q) *)
              st.folds <- st.folds + 1;
              tracef st "absorbing residual Clifford cluster into the frame";
              Tableau.map_rows st.tab rewrite
          | `Non_clifford ->
              let first = List.nth members (List.length members - 1) in
              raise
                (Fail_not_equiv
                   ( Printf.sprintf
                       "non-Clifford rotation residue about %s (angle %g) does not cancel"
                       (P.to_string first.str) first.angle,
                     Some first.rloc ))
          | `Unknown reason ->
              (* the dense bound gave up on this cluster: defer its
                 leftover to symbolic row propagation at the final
                 permutation test (clusters commute, so deferred
                 leftovers concatenate in any cluster order) *)
              tracef st "deferring cluster (%s) to symbolic row propagation" reason;
              deferred := !deferred @ members)
        clusters
    end;
    (* the frame (with any deferred residue conjugated through) must now
       be exactly the layout-prescribed permutation *)
    let residue_tail = !deferred in
    let perm =
      match residue_tail with
      | [] -> Tableau.permutation st.tab
      | _ ->
          let cap = 4096 in
          let img p =
            match propagate ~terms_cap:cap residue_tail p with
            | None ->
                raise
                  (Fail_unknown
                     (Printf.sprintf "residual row expansion exceeded %d terms" cap))
            | Some terms -> (
                match collapsed ~eps:(Float.max eps 1e-7) terms with
                | `Pauli b -> b
                | `Grey ->
                    raise (Fail_unknown "residual row image is numerically ambiguous")
                | `Mixed -> raise Exit)
          in
          let tau = Array.make n_phys (-1) in
          let ok = ref true in
          (try
             for w = 0 to n_phys - 1 do
               let rx = img (Tableau.row_x st.tab w) and rz = img (Tableau.row_z st.tab w) in
               if P.phase rx <> 0 || P.phase rz <> 0 then raise Exit;
               match P.support rx with
               | [ u ] when P.code rx u = 1 -> begin
                   match P.support rz with
                   | [ v ] when v = u && P.code rz v = 2 -> tau.(w) <- u
                   | _ -> raise Exit
                 end
               | _ -> raise Exit
             done;
             let seen = Array.make n_phys false in
             Array.iter
               (fun u -> if u < 0 || seen.(u) then raise Exit else seen.(u) <- true)
               tau
           with Exit -> ok := false);
          if !ok then Some tau else None
    in
    match perm with
    | None ->
        let reason =
          if residue_tail <> [] then
            "final frame conjugated through the residual rotations is not a wire \
             permutation"
          else begin
            let w = ref 0 in
            (try
               for i = 0 to n_phys - 1 do
                 let rx = Tableau.row_x st.tab i and rz = Tableau.row_z st.tab i in
                 match (P.phase rx, P.support rx, P.phase rz, P.support rz) with
                 | 0, [ u ], 0, [ v ] when u = v && P.code rx u = 1 && P.code rz v = 2 -> ()
                 | _ ->
                     w := i;
                     raise Exit
               done
             with Exit -> ());
            Printf.sprintf "final frame is not a wire permutation: wire %d maps to %s / %s"
              !w
              (P.to_string (Tableau.row_x st.tab !w))
              (P.to_string (Tableau.row_z st.tab !w))
          end
        in
        finish (Not_equivalent { reason; location = None })
    | Some tau ->
        let bad = ref None in
        for l = 0 to n_log - 1 do
          if !bad = None && tau.(fl.(l)) <> il.(l) then bad := Some l
        done;
        (match !bad with
        | Some l ->
            finish
              (Not_equivalent
                 {
                   reason =
                     Printf.sprintf
                       "wire permutation contradicts the layouts: logical %d starts at \
                        wire %d but the composite returns it to wire %d"
                       l il.(l)
                       tau.(fl.(l));
                   location = None;
                 })
        | None ->
            finish
              (Equivalent
                 {
                   n_wires = n_phys;
                   gates = st.gates;
                   cliffords = st.cliffords;
                   rotations = st.rotations;
                   merges = st.merges;
                   folds = st.folds;
                   residues = n_residues;
                   clusters = !n_clusters;
                   permutation = tau;
                 }))
  with
  | Fail_not_equiv (reason, location) -> finish (Not_equivalent { reason; location })
  | Fail_unknown reason -> finish (Unknown { reason })

let verify_pair ?budget ?max_dense ?eps ?trace a b =
  if Circuit.n_qubits a <> Circuit.n_qubits b then
    invalid_arg "Qverify.verify_pair: wire-count mismatch";
  verify_routed ?budget ?max_dense ?eps ?trace ~original:a ~routed:b ()
