module P = Pauli

type t = { n : int; rx : P.t array; rz : P.t array }

type gate = X | Y | Z | H | S | Sdg | SX | SXdg | SY | SYdg | CX | CY | CZ | SWAP

let create n =
  {
    n;
    rx = Array.init n (fun w -> P.single ~n w 1);
    rz = Array.init n (fun w -> P.single ~n w 2);
  }

let n_wires t = t.n
let row_x t w = t.rx.(w)
let row_z t w = t.rz.(w)

(* r(Y_w) = i r(X_w) r(Z_w), from Y = iXZ *)
let y_img t w = P.mul_phase (P.mul t.rx.(w) t.rz.(w)) 1

(* Every arm rewrites the rows with [row'(P) = row(g^dag P g)], the local
   inverse-conjugation identities spelled out per gate (derived from the
   usual forward tables; e.g. S X S^dag = Y gives S^dag X S = -Y). *)
let apply t g qs =
  match (g, qs) with
  | X, [ q ] -> t.rz.(q) <- P.neg t.rz.(q)
  | Y, [ q ] ->
      t.rx.(q) <- P.neg t.rx.(q);
      t.rz.(q) <- P.neg t.rz.(q)
  | Z, [ q ] -> t.rx.(q) <- P.neg t.rx.(q)
  | H, [ q ] ->
      let ox = t.rx.(q) in
      t.rx.(q) <- t.rz.(q);
      t.rz.(q) <- ox
  | S, [ q ] -> t.rx.(q) <- P.neg (y_img t q) (* X -> -Y, Z fixed *)
  | Sdg, [ q ] -> t.rx.(q) <- y_img t q
  | SX, [ q ] -> t.rz.(q) <- y_img t q (* Z -> Y, X fixed *)
  | SXdg, [ q ] -> t.rz.(q) <- P.neg (y_img t q)
  | SY, [ q ] ->
      (* X -> Z, Z -> -X *)
      let ox = t.rx.(q) in
      t.rx.(q) <- t.rz.(q);
      t.rz.(q) <- P.neg ox
  | SYdg, [ q ] ->
      let ox = t.rx.(q) in
      t.rx.(q) <- P.neg t.rz.(q);
      t.rz.(q) <- ox
  | CX, [ c; tq ] ->
      let nxc = P.mul t.rx.(c) t.rx.(tq) and nzt = P.mul t.rz.(c) t.rz.(tq) in
      t.rx.(c) <- nxc;
      t.rz.(tq) <- nzt
  | CZ, [ c; tq ] ->
      let nxc = P.mul t.rx.(c) t.rz.(tq) and nxt = P.mul t.rz.(c) t.rx.(tq) in
      t.rx.(c) <- nxc;
      t.rx.(tq) <- nxt
  | CY, [ c; tq ] ->
      let nxc = P.mul t.rx.(c) (y_img t tq)
      and nxt = P.mul t.rz.(c) t.rx.(tq)
      and nzt = P.mul t.rz.(c) t.rz.(tq) in
      t.rx.(c) <- nxc;
      t.rx.(tq) <- nxt;
      t.rz.(tq) <- nzt
  | SWAP, [ a; b ] ->
      let xa = t.rx.(a) and za = t.rz.(a) in
      t.rx.(a) <- t.rx.(b);
      t.rz.(a) <- t.rz.(b);
      t.rx.(b) <- xa;
      t.rz.(b) <- za
  | _ -> invalid_arg "Tableau.apply: gate arity mismatch"

let image_local t codes =
  List.fold_left
    (fun acc (w, c) ->
      let f =
        match c with
        | 1 -> t.rx.(w)
        | 2 -> t.rz.(w)
        | 3 -> y_img t w
        | _ -> invalid_arg "Tableau.image_local: bad code"
      in
      P.mul acc f)
    (P.identity t.n) codes

let image t p =
  let codes = List.map (fun w -> (w, P.code p w)) (P.support p) in
  P.mul_phase (image_local t codes) (P.phase p)

(* Rewrite one row under conjugation by exp(-i (k pi/2)/2 S) given that the
   row anticommutes with S: row e^{-i theta S} = row cos theta - i sin theta
   row.S, so k=2 negates, k=1 is -i row.S, k=3 is +i row.S.  The same
   identity serves both fold directions (left fold passes the *image* of the
   local axis and selects rows by local anticommutation with the axis; right
   fold passes the frame-side string and tests the full symplectic form). *)
let folded_row ~quarters row s =
  match quarters with
  | 2 -> P.neg row
  | 1 -> P.mul_phase (P.mul row s) 3
  | 3 -> P.mul_phase (P.mul row s) 1
  | _ -> invalid_arg "Tableau.fold: quarters must be 1, 2 or 3"

let fold_local t ~quarters codes =
  let s = image_local t codes in
  List.iter
    (fun (w, c) ->
      (* generator X_w anticommutes with the axis iff the axis letter on w
         is Z or Y; Z_w iff it is X or Y *)
      if c = 2 || c = 3 then t.rx.(w) <- folded_row ~quarters t.rx.(w) s;
      if c = 1 || c = 3 then t.rz.(w) <- folded_row ~quarters t.rz.(w) s)
    codes

let fold_frame t ~quarters s =
  for w = 0 to t.n - 1 do
    if not (P.commutes t.rx.(w) s) then t.rx.(w) <- folded_row ~quarters t.rx.(w) s;
    if not (P.commutes t.rz.(w) s) then t.rz.(w) <- folded_row ~quarters t.rz.(w) s
  done

let permutation t =
  let tau = Array.make t.n (-1) in
  let ok = ref true in
  (try
     for w = 0 to t.n - 1 do
       let rx = t.rx.(w) and rz = t.rz.(w) in
       if P.phase rx <> 0 || P.phase rz <> 0 then raise Exit;
       match P.support rx with
       | [ u ] when P.code rx u = 1 -> begin
           match P.support rz with
           | [ v ] when v = u && P.code rz v = 2 -> tau.(w) <- u
           | _ -> raise Exit
         end
       | _ -> raise Exit
     done;
     let seen = Array.make t.n false in
     Array.iter
       (fun u -> if seen.(u) then raise Exit else seen.(u) <- true)
       tau
   with Exit -> ok := false);
  if !ok then Some tau else None

let map_rows t f =
  for w = 0 to t.n - 1 do
    t.rx.(w) <- f t.rx.(w);
    t.rz.(w) <- f t.rz.(w)
  done
