type t = { ph : int; bits : Bytes.t }

let n_wires p = Bytes.length p.bits
let phase p = p.ph
let code p w = Char.code (Bytes.get p.bits w)
let identity n = { ph = 0; bits = Bytes.make n '\000' }

let check_code c =
  if c < 0 || c > 3 then invalid_arg (Printf.sprintf "Pauli: bad code %d" c)

let single ~n w c =
  check_code c;
  if c = 0 then invalid_arg "Pauli.single: identity code";
  let bits = Bytes.make n '\000' in
  Bytes.set bits w (Char.chr c);
  { ph = 0; bits }

let of_codes ~n ?(phase = 0) codes =
  let bits = Bytes.make n '\000' in
  List.iter
    (fun (w, c) ->
      check_code c;
      if w < 0 || w >= n then invalid_arg "Pauli.of_codes: wire out of range";
      Bytes.set bits w (Char.chr c))
    codes;
  { ph = phase land 3; bits }

let with_phase p k = { p with ph = k land 3 }
let mul_phase p k = { p with ph = (p.ph + k) land 3 }
let neg p = mul_phase p 2

(* i-power contributed by the per-wire product sigma_a * sigma_b, indexed
   a*4+b with codes 0=I 1=X 2=Z 3=Y: X*Z = -iY, Z*X = iY, X*Y = iZ,
   Y*X = -iZ, Z*Y = -iX, Y*Z = iX, squares and identities phase-free *)
let phase_table =
  [| 0; 0; 0; 0; 0; 0; 3; 1; 0; 1; 0; 3; 0; 3; 1; 0 |]

let mul a b =
  let n = Bytes.length a.bits in
  if Bytes.length b.bits <> n then invalid_arg "Pauli.mul: wire-count mismatch";
  let bits = Bytes.create n in
  let ph = ref (a.ph + b.ph) in
  for w = 0 to n - 1 do
    let ca = Char.code (Bytes.unsafe_get a.bits w)
    and cb = Char.code (Bytes.unsafe_get b.bits w) in
    ph := !ph + Array.unsafe_get phase_table ((ca lsl 2) lor cb);
    Bytes.unsafe_set bits w (Char.unsafe_chr (ca lxor cb))
  done;
  { ph = !ph land 3; bits }

let commutes a b =
  let n = Bytes.length a.bits in
  if Bytes.length b.bits <> n then invalid_arg "Pauli.commutes: wire-count mismatch";
  let anti = ref 0 in
  for w = 0 to n - 1 do
    let ca = Char.code (Bytes.unsafe_get a.bits w)
    and cb = Char.code (Bytes.unsafe_get b.bits w) in
    if ca <> 0 && cb <> 0 && ca <> cb then incr anti
  done;
  !anti land 1 = 0

let same_string a b = Bytes.equal a.bits b.bits
let equal a b = a.ph = b.ph && Bytes.equal a.bits b.bits

let is_identity_string p =
  let n = Bytes.length p.bits in
  let rec go w = w >= n || (Bytes.get p.bits w = '\000' && go (w + 1)) in
  go 0

let is_identity p = p.ph = 0 && is_identity_string p
let is_hermitian p = p.ph land 1 = 0

let support p =
  let acc = ref [] in
  for w = n_wires p - 1 downto 0 do
    if code p w <> 0 then acc := w :: !acc
  done;
  !acc

let weight p = List.length (support p)

let to_string p =
  let prefix = match p.ph with 0 -> "+" | 1 -> "+i" | 2 -> "-" | _ -> "-i" in
  let letter = function 0 -> 'I' | 1 -> 'X' | 2 -> 'Z' | _ -> 'Y' in
  prefix ^ String.init (n_wires p) (fun w -> letter (code p w))
