(* The routing flight recorder.

   One recorder per logical unit of work (the main pipeline, or one routing
   trial), installed domain-locally exactly like a Qobs collector: the only
   cross-domain state is one atomic count of installed recorders, read as
   the fast-path gate, so with no recorder anywhere in the process every
   hook is a single atomic-load-and-branch.

   What gets recorded is the router's decision trail, not timings: per
   routing step the two-qubit front-layer size, every candidate SWAP with
   its H_basic / H_lookahead components and the savings bucket its bonus
   drew from (C_2q / C_commute1 / C_commute2, eq. 1 of the paper), and the
   chosen SWAP; per trial the routed-vs-final CNOT counts, i.e. the
   realized side of the predicted-vs-realized savings claim.  Steps carry a
   wall-clock stamp used only by the Chrome export — the JSONL export is a
   pure function of the routing computation, byte-identical across runs
   and worker counts for a fixed seed.

   The trial engine creates one child recorder per trial and merges the
   children into the parent in trial order at join (mirroring
   Qobs.Collector), which is what keeps the export deterministic. *)

type bucket = No_bucket | C2q | Commute1 | Commute2

let bucket_name = function
  | No_bucket -> "none"
  | C2q -> "c2q"
  | Commute1 -> "commute1"
  | Commute2 -> "commute2"

type cand = {
  p1 : int;
  p2 : int;
  h_basic : float;
  h_lookahead : float;
  h : float;
  bonus : float;
}

type candidate = { cd : cand; cd_bucket : bucket }

type step = {
  st_seq : int;
  st_router : string;
  st_front : int;
  st_forced : bool;
  st_candidates : candidate list;  (* sorted by (p1, p2) *)
  st_chosen : int * int;
  st_chosen_bonus : float;
  st_chosen_bucket : bucket;
  st_time : float;  (* wall clock at record time; Chrome export only *)
}

type summary = { sm_cx_routed : int; sm_cx_final : int }

type t = {
  label : string;
  trial : int option;
  mutable router : string;
  mutable steps_rev : step list;
  mutable next_seq : int;
  (* buckets noted by the cost model during the current scoring round,
     consumed by the next [record_step] *)
  mutable scratch : ((int * int) * bucket) list;
  mutable summary : summary option;
  mutable children_rev : t list;
}

let create ?trial ?(label = "") () =
  {
    label;
    trial;
    router = "";
    steps_rev = [];
    next_seq = 0;
    scratch = [];
    summary = None;
    children_rev = [];
  }

let trial t = t.trial
let label t = t.label
let steps t = List.rev t.steps_rev
let summary t = t.summary
let add_child parent child = parent.children_rev <- child :: parent.children_rev
let children t = List.rev t.children_rev

(* ---- the per-domain install point (mirrors Qobs collectors) ---- *)

let installed = Atomic.make 0
let dls_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = if Atomic.get installed = 0 then None else Domain.DLS.get dls_key
let active () = current () <> None

let with_recorder r f =
  let prev = Domain.DLS.get dls_key in
  Domain.DLS.set dls_key (Some r);
  Atomic.incr installed;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr installed;
      Domain.DLS.set dls_key prev)
    f

let without f =
  match Domain.DLS.get dls_key with
  | None -> f ()
  | Some _ as prev ->
      Domain.DLS.set dls_key None;
      Atomic.decr installed;
      Fun.protect
        ~finally:(fun () ->
          Atomic.incr installed;
          Domain.DLS.set dls_key prev)
        f

let in_router name f =
  match current () with
  | None -> f ()
  | Some r ->
      let prev = r.router in
      r.router <- name;
      Fun.protect ~finally:(fun () -> r.router <- prev) f

(* ---- hooks ---- *)

let note_bucket ~p1 ~p2 b =
  match current () with
  | None -> ()
  | Some r ->
      let key = (min p1 p2, max p1 p2) in
      r.scratch <- (key, b) :: r.scratch

let record_step ~front ?(forced = false) ~candidates ~chosen ~chosen_bonus () =
  match current () with
  | None -> ()
  | Some r ->
      let bucket_for p1 p2 =
        match List.assoc_opt (min p1 p2, max p1 p2) r.scratch with
        | Some b -> b
        | None -> No_bucket
      in
      let cands =
        List.map (fun (c : cand) -> { cd = c; cd_bucket = bucket_for c.p1 c.p2 }) candidates
        |> List.sort (fun a b ->
               compare (a.cd.p1, a.cd.p2) (b.cd.p1, b.cd.p2))
      in
      let c1, c2 = chosen in
      let step =
        {
          st_seq = r.next_seq;
          st_router = r.router;
          st_front = front;
          st_forced = forced;
          st_candidates = cands;
          st_chosen = chosen;
          st_chosen_bonus = chosen_bonus;
          st_chosen_bucket = (if forced then No_bucket else bucket_for c1 c2);
          st_time = Unix.gettimeofday ();
        }
      in
      r.next_seq <- r.next_seq + 1;
      r.steps_rev <- step :: r.steps_rev;
      r.scratch <- []

let record_result ~cx_routed ~cx_final =
  match current () with
  | None -> ()
  | Some r -> r.summary <- Some { sm_cx_routed = cx_routed; sm_cx_final = cx_final }

(* ---- aggregation ---- *)

type totals = {
  steps : int;
  candidates : int;
  forced : int;
  cand_c2q : int;
  cand_commute1 : int;
  cand_commute2 : int;
  chosen_c2q : int;
  chosen_commute1 : int;
  chosen_commute2 : int;
  predicted : float;
  cx_routed : int;
  cx_final : int;
  realized : int;
  trials_summarized : int;
}

let recorders t = t :: children t

let totals t =
  let z =
    {
      steps = 0;
      candidates = 0;
      forced = 0;
      cand_c2q = 0;
      cand_commute1 = 0;
      cand_commute2 = 0;
      chosen_c2q = 0;
      chosen_commute1 = 0;
      chosen_commute2 = 0;
      predicted = 0.0;
      cx_routed = 0;
      cx_final = 0;
      realized = 0;
      trials_summarized = 0;
    }
  in
  List.fold_left
    (fun acc r ->
      let acc =
        List.fold_left
          (fun acc s ->
            let cand_bucket acc c =
              match c.cd_bucket with
              | No_bucket -> acc
              | C2q -> { acc with cand_c2q = acc.cand_c2q + 1 }
              | Commute1 -> { acc with cand_commute1 = acc.cand_commute1 + 1 }
              | Commute2 -> { acc with cand_commute2 = acc.cand_commute2 + 1 }
            in
            let acc = List.fold_left cand_bucket acc s.st_candidates in
            let acc =
              match s.st_chosen_bucket with
              | No_bucket -> acc
              | C2q -> { acc with chosen_c2q = acc.chosen_c2q + 1 }
              | Commute1 -> { acc with chosen_commute1 = acc.chosen_commute1 + 1 }
              | Commute2 -> { acc with chosen_commute2 = acc.chosen_commute2 + 1 }
            in
            {
              acc with
              steps = acc.steps + 1;
              candidates = acc.candidates + List.length s.st_candidates;
              forced = (acc.forced + if s.st_forced then 1 else 0);
              predicted = acc.predicted +. s.st_chosen_bonus;
            })
          acc (steps r)
      in
      match r.summary with
      | None -> acc
      | Some sm ->
          {
            acc with
            cx_routed = acc.cx_routed + sm.sm_cx_routed;
            cx_final = acc.cx_final + sm.sm_cx_final;
            realized = acc.realized + (sm.sm_cx_routed - sm.sm_cx_final);
            trials_summarized = acc.trials_summarized + 1;
          })
    z (recorders t)

(* ---- export ---- *)

let schema_version = 1

let trial_field r = match r.trial with None -> "null" | Some k -> string_of_int k

let to_jsonl t =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line {|{"type":"recorder_meta","version":%d}|} schema_version;
  List.iter
    (fun r ->
      List.iter
        (fun s ->
          let cands =
            String.concat ","
              (List.map
                 (fun c ->
                   Printf.sprintf
                     {|{"swap":[%d,%d],"h_basic":%.9g,"h_lookahead":%.9g,"h":%.9g,"bonus":%.9g,"bucket":"%s"}|}
                     c.cd.p1 c.cd.p2 c.cd.h_basic c.cd.h_lookahead c.cd.h c.cd.bonus
                     (bucket_name c.cd_bucket))
                 s.st_candidates)
          in
          let c1, c2 = s.st_chosen in
          line
            {|{"type":"step","trial":%s,"seq":%d,"router":"%s","front":%d,"forced":%b,"chosen":[%d,%d],"chosen_bonus":%.9g,"chosen_bucket":"%s","candidates":[%s]}|}
            (trial_field r) s.st_seq s.st_router s.st_front s.st_forced c1 c2
            s.st_chosen_bonus (bucket_name s.st_chosen_bucket) cands)
        (steps r))
    (recorders t);
  List.iter
    (fun r ->
      match r.summary with
      | None -> ()
      | Some sm ->
          let tt = totals { r with children_rev = [] } in
          line
            {|{"type":"trial_summary","trial":%s,"steps":%d,"predicted":%.9g,"cx_routed":%d,"cx_final":%d,"realized":%d}|}
            (trial_field r) tt.steps tt.predicted sm.sm_cx_routed sm.sm_cx_final
            (sm.sm_cx_routed - sm.sm_cx_final))
    (recorders t);
  Buffer.contents buf

(* Chrome trace_event JSON (load in Perfetto or about://tracing): each
   routing step is an instant event on its trial's track, with a "front"
   counter track showing front-layer size over time.  Timestamps are the
   recording wall clock, so unlike the JSONL this is nondeterministic. *)
let to_chrome t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf {|{"traceEvents":[|};
  let first = ref true in
  let event fmt =
    Printf.ksprintf
      (fun s ->
        if not !first then Buffer.add_char buf ',';
        first := false;
        Buffer.add_string buf s)
      fmt
  in
  let t0 =
    List.fold_left
      (fun acc r -> List.fold_left (fun acc s -> Float.min acc s.st_time) acc (steps r))
      infinity (recorders t)
  in
  let t0 = if t0 = infinity then 0.0 else t0 in
  List.iteri
    (fun tid r ->
      let tname =
        match r.trial with
        | Some k -> Printf.sprintf "trial %d" k
        | None -> if r.label = "" then "main" else r.label
      in
      event
        {|{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"%s"}}|}
        tid tname;
      List.iter
        (fun s ->
          let ts = 1e6 *. (s.st_time -. t0) in
          let c1, c2 = s.st_chosen in
          event
            {|{"name":"%s","cat":"routing","ph":"i","s":"t","ts":%.3f,"pid":1,"tid":%d,"args":{"router":"%s","front":%d,"forced":%b,"chosen":"(%d,%d)","chosen_bonus":%.9g,"chosen_bucket":"%s","candidates":%d}}|}
            (if s.st_forced then "forced-swap" else "swap")
            ts tid s.st_router s.st_front s.st_forced c1 c2 s.st_chosen_bonus
            (bucket_name s.st_chosen_bucket)
            (List.length s.st_candidates);
          event
            {|{"name":"front","cat":"routing","ph":"C","ts":%.3f,"pid":1,"tid":%d,"args":{"gates":%d}}|}
            ts tid s.st_front)
        (steps r))
    (recorders t);
  Buffer.add_string buf "]}";
  Buffer.contents buf
