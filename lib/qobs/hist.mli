(** Bounded-memory log-bucketed histogram.

    Every histogram shares one fixed bucket layout (bucket 0 for values
    <= 1e-6, then 144 geometric buckets at ratio 2^(1/4), the last
    absorbing overflow), so memory is constant per histogram and
    {!merge_into} is plain bucket-count addition — associative and
    commutative, which is what lets per-trial histograms be merged in
    trial order with a worker-count-independent result.

    This is the value type; interning by name and per-collector storage
    live in {!Qobs} ([Qobs.histogram] / [Qobs.observe]). *)

type t

val n_buckets : int
val create : unit -> t

val observe : t -> float -> unit
(** O(1): one bucket increment plus running n/sum/min/max updates. *)

val bucket_of : float -> int
val bucket_bounds : int -> float * float
(** [(lower, upper)] value bounds of a bucket; upper is inclusive. *)

val count : t -> int
val sum : t -> float

val min_value : t -> float
(** [infinity] when empty. *)

val max_value : t -> float
(** [neg_infinity] when empty. *)

val mean : t -> float
(** [nan] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0, 100]: the representative value
    (geometric bucket midpoint, clamped to the observed min/max) of the
    bucket holding the rank [ceil (p/100 * n)] observation.  Edge cases
    are exact and total: [nan] when empty or when [p] is NaN; [p <= 0]
    reports {!min_value} and [p >= 100] reports {!max_value} (out-of-range
    [p] clamps into [0, 100]); a single observation reports itself at
    every percentile. *)

val merge_into : into:t -> t -> unit
val merge : t -> t -> t
val copy : t -> t
val equal : t -> t -> bool

val nonzero_buckets : t -> (int * int) list
(** [(bucket index, count)] for every non-empty bucket, ascending. *)
