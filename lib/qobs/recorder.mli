(** The routing flight recorder: the router's decision trail as data.

    When a recorder is installed (see {!with_recorder}) every routing step
    records the two-qubit front-layer size, each candidate SWAP with its
    [H_basic] / [H_lookahead] components and the savings bucket its bonus
    drew from ([C_2q] / [C_commute1] / [C_commute2], eq. 1 of the paper),
    and the chosen SWAP; after the downstream passes run, the per-trial
    routed-vs-final CNOT counts (the {e realized} savings).  With no
    recorder installed anywhere in the process, every hook is a single
    atomic-load-and-branch and the routers behave byte-identically to an
    unrecorded run.

    Like {!Qobs.Collector}, one recorder exists per logical unit of work
    (the main pipeline, or one routing trial); the trial engine merges
    per-trial recorders into the parent in trial order, so {!to_jsonl} is
    byte-identical for any worker count.  {!to_chrome} emits the same steps
    as a Chrome [trace_event] file (loadable in Perfetto /
    [about://tracing]); it uses wall-clock stamps and is therefore
    nondeterministic. *)

type bucket = No_bucket | C2q | Commute1 | Commute2

val bucket_name : bucket -> string
(** ["none"], ["c2q"], ["commute1"], ["commute2"]. *)

type cand = {
  p1 : int;
  p2 : int;
  h_basic : float;  (** front-layer term of eq. 1, bonus already applied *)
  h_lookahead : float;  (** extended-layer term of eq. 2 *)
  h : float;  (** decayed total the router compared *)
  bonus : float;  (** estimated CNOT savings of this SWAP *)
}

type candidate = { cd : cand; cd_bucket : bucket }

type step = {
  st_seq : int;
  st_router : string;  (** innermost {!in_router} label ("" if none) *)
  st_front : int;  (** two-qubit front-layer size *)
  st_forced : bool;  (** emitted by the stall-escape valve, not scored *)
  st_candidates : candidate list;  (** sorted by [(p1, p2)] *)
  st_chosen : int * int;
  st_chosen_bonus : float;
  st_chosen_bucket : bucket;
  st_time : float;  (** wall clock at record time; Chrome export only *)
}

type summary = { sm_cx_routed : int; sm_cx_final : int }

type t

val create : ?trial:int -> ?label:string -> unit -> t
val trial : t -> int option
val label : t -> string
val steps : t -> step list
(** Recorded steps in order. *)

val summary : t -> summary option
val add_child : t -> t -> unit
(** Call from the joining domain only, in trial order. *)

val children : t -> t list

val with_recorder : t -> (unit -> 'a) -> 'a
(** Install on the calling domain for the duration of [f]. *)

val current : unit -> t option
val active : unit -> bool
(** One atomic load when no recorder is installed process-wide. *)

val without : (unit -> 'a) -> 'a
(** Suspend recording for the duration of [f] (the layout search uses this
    so only the final routing pass lands in the flight record). *)

val in_router : string -> (unit -> 'a) -> 'a
(** Label steps recorded during [f] with the given router name. *)

(* {2 Hooks (no-ops without an installed recorder)} *)

val note_bucket : p1:int -> p2:int -> bucket -> unit
(** Called by the cost model while scoring the candidate [(p1, p2)]:
    remembers which savings bucket its bonus drew from until the next
    {!record_step} consumes it. *)

val record_step :
  front:int ->
  ?forced:bool ->
  candidates:cand list ->
  chosen:int * int ->
  chosen_bonus:float ->
  unit ->
  unit

val record_result : cx_routed:int -> cx_final:int -> unit
(** Called once per trial after the downstream passes run. *)

(* {2 Aggregation and export} *)

type totals = {
  steps : int;
  candidates : int;
  forced : int;
  cand_c2q : int;  (** candidates whose bonus drew from [C_2q]... *)
  cand_commute1 : int;
  cand_commute2 : int;
  chosen_c2q : int;  (** ...and chosen SWAPs that did *)
  chosen_commute1 : int;
  chosen_commute2 : int;
  predicted : float;  (** sum of chosen bonuses (eq. 1's prediction) *)
  cx_routed : int;
  cx_final : int;
  realized : int;  (** [cx_routed - cx_final], summed over summaries *)
  trials_summarized : int;
}

val totals : t -> totals
(** Aggregated over this recorder and its children. *)

val schema_version : int

val to_jsonl : t -> string
(** One [recorder_meta] line, then one [step] line per step (this recorder
    first, then each child in merge order), then [trial_summary] lines.  A
    pure function of the routing computation: byte-identical across runs
    and worker counts for a fixed seed. *)

val to_chrome : t -> string
(** Chrome [trace_event] JSON (one instant event per step plus a
    front-layer-size counter track, one track per trial); nondeterministic
    timestamps. *)
