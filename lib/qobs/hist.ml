(* Bounded-memory log-bucketed histogram.

   Fixed layout shared by every histogram in the process: bucket 0 catches
   everything at or below [lo] (including zero and negatives, which the
   metrics here never produce but must not crash on), then [mid_buckets]
   geometric buckets growing by [ratio] per step, with the last bucket
   absorbing overflow.  With lo = 1e-6 and four buckets per octave the
   resolvable range is [1e-6, ~7e4] at <= 19% relative error — wide enough
   for pass latencies in seconds and heuristic scores alike, at a fixed
   ~1.2 kB per histogram.

   Merging sums bucket counts (plus n/sum/min/max), so it is associative
   and commutative: per-trial histograms merged in trial order give the
   same aggregate whatever the worker count. *)

let lo = 1e-6
let mid_buckets = 144
let n_buckets = mid_buckets + 1
let log_ratio = log 2.0 /. 4.0 (* ratio = 2^(1/4) *)

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create () =
  { counts = Array.make n_buckets 0; n = 0; sum = 0.0; vmin = infinity; vmax = neg_infinity }

let bucket_of v =
  if not (v > lo) then 0
  else
    let i = 1 + int_of_float (Float.floor (log (v /. lo) /. log_ratio)) in
    if i >= n_buckets then n_buckets - 1 else i

(* (inclusive-upper) value bounds of bucket [i]: bucket 0 is (-inf, lo],
   bucket i >= 1 is (lo * r^(i-1), lo * r^i] *)
let bucket_bounds i =
  if i <= 0 then (neg_infinity, lo)
  else (lo *. exp (float_of_int (i - 1) *. log_ratio), lo *. exp (float_of_int i *. log_ratio))

let observe t v =
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count t = t.n
let sum t = t.sum
let min_value t = t.vmin
let max_value t = t.vmax
let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n

let merge_into ~into src =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.n <- into.n + src.n;
  into.sum <- into.sum +. src.sum;
  if src.vmin < into.vmin then into.vmin <- src.vmin;
  if src.vmax > into.vmax then into.vmax <- src.vmax

let merge a b =
  let t = create () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

let copy t =
  let c = create () in
  merge_into ~into:c t;
  c

let equal a b =
  a.n = b.n && a.sum = b.sum && a.vmin = b.vmin && a.vmax = b.vmax && a.counts = b.counts

let nonzero_buckets t =
  let out = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.counts.(i) > 0 then out := (i, t.counts.(i)) :: !out
  done;
  !out

(* representative value of a bucket: the geometric midpoint of its bounds,
   clamped into the observed [vmin, vmax] so estimates never leave the data
   range (and bucket 0, whose lower bound is -inf, reports vmin) *)
let representative t i =
  let clamp v = Float.min t.vmax (Float.max t.vmin v) in
  if i = 0 then t.vmin
  else
    let a, b = bucket_bounds i in
    clamp (sqrt (a *. b))

let percentile t p =
  if t.n = 0 || Float.is_nan p then nan
  else begin
    (* out-of-range requests clamp to the data extremes, and the extremes
       themselves are answered exactly: p <= 0 is the observed minimum,
       p >= 100 the observed maximum (a bucket midpoint would land strictly
       inside the range and mis-report both) *)
    let p = Float.max 0.0 (Float.min 100.0 p) in
    if p <= 0.0 then t.vmin
    else if p >= 100.0 then t.vmax
    else begin
      let rank =
        let r = int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.n)) in
        if r < 1 then 1 else if r > t.n then t.n else r
      in
      let rec find i cum =
        if i >= n_buckets then t.vmax
        else
          let cum = cum + t.counts.(i) in
          if cum >= rank then representative t i else find (i + 1) cum
      in
      find 0 0
    end
  end
