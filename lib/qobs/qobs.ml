(* Spans + counters + gauges with a disabled fast path.

   Counter/gauge identities are process-global interned ids; values live in
   per-collector arrays indexed by id.  The only cross-domain state is the
   registry (touched at module init, mutex-protected) and one atomic count
   of installed collectors, read on every probe as the fast-path gate. *)

(* ---- submodules re-exported as part of the public interface ---- *)

module Hist = Hist
module Recorder = Recorder

(* ---- registries ---- *)

type counter = int
type gauge = int
type histogram = int

let registry_lock = Mutex.create ()

type registry = { mutable names : string array; mutable count : int; tbl : (string, int) Hashtbl.t }

let mk_registry () = { names = Array.make 16 ""; count = 0; tbl = Hashtbl.create 32 }
let counter_reg = mk_registry ()
let gauge_reg = mk_registry ()
let hist_reg = mk_registry ()

let intern reg name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt reg.tbl name with
      | Some id -> id
      | None ->
          let id = reg.count in
          if id >= Array.length reg.names then begin
            let bigger = Array.make (2 * Array.length reg.names) "" in
            Array.blit reg.names 0 bigger 0 id;
            reg.names <- bigger
          end;
          reg.names.(id) <- name;
          reg.count <- reg.count + 1;
          Hashtbl.replace reg.tbl name id;
          id)

let counter name = intern counter_reg name
let gauge name = intern gauge_reg name
let histogram name = intern hist_reg name

(* ---- timing histograms opt-in ----

   Wall-clock observations (e.g. the engine's per-step scoring time) are
   inherently nondeterministic, so feeding them into histograms would break
   the byte-identical-trace guarantee of the default export.  They are off
   unless a caller that wants times (--trace-times, the profile/score
   benches) opts in process-wide. *)

let timing_flag = Atomic.make false
let set_timing b = Atomic.set timing_flag b
let timing_enabled () = Atomic.get timing_flag

(* ---- extended (telemetry) metrics opt-in ----

   The Qtel layer wants a handful of extra gauges recorded by the pipeline
   (input circuit size, requested trial count) that older traces never
   carried.  They are deterministic, but unconditionally recording them
   would change the bytes of every existing `--trace` export, so they hide
   behind the same process-wide opt-in discipline as [set_timing]: off by
   default, flipped on by `--metrics` / `--wide-events` / the telemetry
   benches. *)

let extended_flag = Atomic.make false
let set_extended_metrics b = Atomic.set extended_flag b
let extended_metrics_enabled () = Atomic.get extended_flag

let registered reg =
  Mutex.protect registry_lock (fun () -> Array.sub reg.names 0 reg.count)

(* ---- collectors ---- *)

module Collector = struct
  type span_rec = {
    sp_name : string;
    sp_seq : int;
    sp_parent : int;
    sp_depth : int;
    sp_start : float;
    mutable sp_wall : float;
    mutable sp_cpu : float;
  }

  type t = {
    label : string;
    trial : int option;
    mutable counts : int array;
    mutable gvals : float array;
    mutable gset : bool array;
    mutable hists : Hist.t option array;
    mutable done_rev : span_rec list;
    mutable stack : span_rec list;
    mutable next_seq : int;
    mutable children_rev : t list;
  }

  let create ?trial ?(label = "") () =
    {
      label;
      trial;
      counts = Array.make 16 0;
      gvals = Array.make 8 0.0;
      gset = Array.make 8 false;
      hists = Array.make 8 None;
      done_rev = [];
      stack = [];
      next_seq = 0;
      children_rev = [];
    }

  let trial t = t.trial
  let label t = t.label

  let spans t =
    List.sort (fun a b -> compare a.sp_seq b.sp_seq) (List.rev t.done_rev)

  let open_spans t = List.length t.stack

  let count_of t id = if id < Array.length t.counts then t.counts.(id) else 0

  let counters t =
    let names = registered counter_reg in
    Array.to_list (Array.mapi (fun id name -> (name, count_of t id)) names)
    |> List.sort compare

  let gauges t =
    let names = registered gauge_reg in
    let out = ref [] in
    Array.iteri
      (fun id name ->
        if id < Array.length t.gset && t.gset.(id) then out := (name, t.gvals.(id)) :: !out)
      names;
    List.sort compare !out

  let hist_of t id = if id < Array.length t.hists then t.hists.(id) else None

  let histograms t =
    let names = registered hist_reg in
    let out = ref [] in
    Array.iteri
      (fun id name ->
        match hist_of t id with Some h -> out := (name, h) :: !out | None -> ())
      names;
    List.sort (fun (a, _) (b, _) -> compare a b) !out

  let add_child parent child = parent.children_rev <- child :: parent.children_rev
  let children t = List.rev t.children_rev

  (* growth helpers for the value arrays *)
  let ensure_counts t id =
    if id >= Array.length t.counts then begin
      let bigger = Array.make (max (2 * Array.length t.counts) (id + 1)) 0 in
      Array.blit t.counts 0 bigger 0 (Array.length t.counts);
      t.counts <- bigger
    end

  let ensure_gauges t id =
    if id >= Array.length t.gvals then begin
      let n = max (2 * Array.length t.gvals) (id + 1) in
      let gv = Array.make n 0.0 and gs = Array.make n false in
      Array.blit t.gvals 0 gv 0 (Array.length t.gvals);
      Array.blit t.gset 0 gs 0 (Array.length t.gset);
      t.gvals <- gv;
      t.gset <- gs
    end

  let hist_slot t id =
    if id >= Array.length t.hists then begin
      let bigger = Array.make (max (2 * Array.length t.hists) (id + 1)) None in
      Array.blit t.hists 0 bigger 0 (Array.length t.hists);
      t.hists <- bigger
    end;
    match t.hists.(id) with
    | Some h -> h
    | None ->
        let h = Hist.create () in
        t.hists.(id) <- Some h;
        h
end

(* ---- the per-domain install point ---- *)

let installed = Atomic.make 0
let dls_key : Collector.t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () =
  if Atomic.get installed = 0 then None else Domain.DLS.get dls_key

let active () = current () <> None

let with_collector c f =
  let prev = Domain.DLS.get dls_key in
  Domain.DLS.set dls_key (Some c);
  Atomic.incr installed;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr installed;
      Domain.DLS.set dls_key prev)
    f

(* ---- probes ---- *)

let add id by =
  match current () with
  | None -> ()
  | Some c ->
      Collector.ensure_counts c id;
      c.Collector.counts.(id) <- c.Collector.counts.(id) + by

let incr id = add id 1

let gauge_set id v =
  match current () with
  | None -> ()
  | Some c ->
      Collector.ensure_gauges c id;
      c.Collector.gvals.(id) <- v;
      c.Collector.gset.(id) <- true

let gauge_add id v =
  match current () with
  | None -> ()
  | Some c ->
      Collector.ensure_gauges c id;
      c.Collector.gvals.(id) <- c.Collector.gvals.(id) +. v;
      c.Collector.gset.(id) <- true

let observe id v =
  match current () with None -> () | Some c -> Hist.observe (Collector.hist_slot c id) v

let span name f =
  match current () with
  | None -> f ()
  | Some c ->
      let open Collector in
      let parent, depth =
        match c.stack with [] -> (-1, 0) | top :: _ -> (top.sp_seq, top.sp_depth + 1)
      in
      let w0 = Unix.gettimeofday () and t0 = Sys.time () in
      let r =
        { sp_name = name; sp_seq = c.next_seq; sp_parent = parent; sp_depth = depth;
          sp_start = w0; sp_wall = 0.0; sp_cpu = 0.0 }
      in
      c.next_seq <- c.next_seq + 1;
      c.stack <- r :: c.stack;
      Fun.protect
        ~finally:(fun () ->
          r.sp_wall <- Unix.gettimeofday () -. w0;
          r.sp_cpu <- Sys.time () -. t0;
          (* pop back to r even if an exception skipped inner closes *)
          let rec pop = function
            | top :: rest when top == r -> rest
            | _ :: rest -> pop rest
            | [] -> []
          in
          c.stack <- pop c.stack;
          c.done_rev <- r :: c.done_rev)
        f

(* ---- export ---- *)

module Trace = struct
  type t = { root : Collector.t }

  let of_root root = { root }

  (* preorder over the whole collector tree: the root, then each child's
     subtree in merge order.  Depth used to be at most 1 (a pipeline root
     plus its per-trial children), for which this reduces to the old
     root-then-children list byte for byte; the bench harnesses now also
     build session-level collectors whose children are themselves roots of
     per-run trees, and those grandchildren must not be dropped from
     counter totals or exports. *)
  let collectors t =
    let rec walk acc c = List.fold_left walk (c :: acc) (Collector.children c) in
    List.rev (walk [] t.root)

  let counters_total t =
    let names = registered counter_reg in
    let totals = Array.make (Array.length names) 0 in
    List.iter
      (fun c ->
        Array.iteri (fun id _ -> totals.(id) <- totals.(id) + Collector.count_of c id) names)
      (collectors t);
    Array.to_list (Array.mapi (fun id name -> (name, totals.(id))) names)
    |> List.sort compare

  let counter_total t name =
    match List.assoc_opt name (counters_total t) with Some v -> v | None -> 0

  let json_escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let trial_field c =
    match Collector.trial c with None -> "null" | Some k -> string_of_int k

  let histograms_total t =
    let names = registered hist_reg in
    let totals = Array.make (Array.length names) None in
    List.iter
      (fun c ->
        Array.iteri
          (fun id _ ->
            match Collector.hist_of c id with
            | None -> ()
            | Some h -> (
                match totals.(id) with
                | None -> totals.(id) <- Some (Hist.copy h)
                | Some acc -> Hist.merge_into ~into:acc h))
          names)
      (collectors t);
    let out = ref [] in
    Array.iteri
      (fun id name -> match totals.(id) with Some h -> out := (name, h) :: !out | None -> ())
      names;
    List.sort (fun (a, _) (b, _) -> compare a b) !out

  let to_jsonl ?(times = false) t =
    let buf = Buffer.create 4096 in
    let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
    List.iter
      (fun c ->
        List.iter
          (fun (s : Collector.span_rec) ->
            if times then
              line
                {|{"type":"span","trial":%s,"seq":%d,"parent":%d,"depth":%d,"name":"%s","wall_ms":%.3f,"cpu_ms":%.3f}|}
                (trial_field c) s.sp_seq s.sp_parent s.sp_depth (json_escape s.sp_name)
                (1000.0 *. s.sp_wall) (1000.0 *. s.sp_cpu)
            else
              line {|{"type":"span","trial":%s,"seq":%d,"parent":%d,"depth":%d,"name":"%s"}|}
                (trial_field c) s.sp_seq s.sp_parent s.sp_depth (json_escape s.sp_name))
          (Collector.spans c))
      (collectors t);
    List.iter
      (fun (name, v) -> line {|{"type":"counter","name":"%s","value":%d}|} (json_escape name) v)
      (counters_total t);
    List.iter
      (fun c ->
        List.iter
          (fun (name, v) ->
            line {|{"type":"gauge","trial":%s,"name":"%s","value":%.12g}|} (trial_field c)
              (json_escape name) v)
          (Collector.gauges c))
      (collectors t);
    (* histogram lines appear only once something was observed, so traces
       from runs that touch no histogram stay byte-identical to older
       builds *)
    List.iter
      (fun (name, h) ->
        let buckets =
          String.concat ","
            (List.map (fun (i, c) -> Printf.sprintf "[%d,%d]" i c) (Hist.nonzero_buckets h))
        in
        line
          {|{"type":"hist","name":"%s","n":%d,"sum":%.12g,"min":%.12g,"max":%.12g,"p50":%.9g,"p90":%.9g,"p99":%.9g,"buckets":[%s]}|}
          (json_escape name) (Hist.count h) (Hist.sum h) (Hist.min_value h)
          (Hist.max_value h) (Hist.percentile h 50.0) (Hist.percentile h 90.0)
          (Hist.percentile h 99.0) buckets)
      (histograms_total t);
    Buffer.contents buf

  (* Chrome trace_event JSON (load in Perfetto or about://tracing): one
     complete ("X") event per span, one track per collector.  Uses the
     spans' wall-clock start stamps, so unlike [to_jsonl] the output is
     nondeterministic. *)
  let to_chrome t =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf {|{"traceEvents":[|};
    let first = ref true in
    let event fmt =
      Printf.ksprintf
        (fun s ->
          if not !first then Buffer.add_char buf ',';
          first := false;
          Buffer.add_string buf s)
        fmt
    in
    let t0 =
      List.fold_left
        (fun acc c ->
          List.fold_left
            (fun acc (s : Collector.span_rec) -> Float.min acc s.sp_start)
            acc (Collector.spans c))
        infinity (collectors t)
    in
    let t0 = if t0 = infinity then 0.0 else t0 in
    List.iteri
      (fun tid c ->
        let tname =
          match Collector.trial c with
          | Some k -> Printf.sprintf "trial %d" k
          | None -> (match Collector.label c with "" -> "main" | l -> l)
        in
        event {|{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"%s"}}|} tid
          (json_escape tname);
        List.iter
          (fun (s : Collector.span_rec) ->
            event
              {|{"name":"%s","cat":"span","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d,"args":{"cpu_ms":%.3f}}|}
              (json_escape s.sp_name)
              (1e6 *. (s.sp_start -. t0))
              (1e6 *. s.sp_wall) tid (1000.0 *. s.sp_cpu))
          (Collector.spans c))
      (collectors t);
    Buffer.add_string buf "]}";
    Buffer.contents buf

  (* spans aggregated by slash-joined ancestor path, across collectors; the
     per-call wall times additionally feed a histogram per path so the
     summary can report latency percentiles through the same Hist path the
     regression harness uses *)
  let aggregate t =
    let rows : (string, int * float * float) Hashtbl.t = Hashtbl.create 64 in
    let hists : (string, Hist.t) Hashtbl.t = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun c ->
        let spans = Collector.spans c in
        let path_of = Hashtbl.create 32 in
        List.iter
          (fun (s : Collector.span_rec) ->
            let prefix =
              match Hashtbl.find_opt path_of s.sp_parent with
              | Some p -> p ^ "/"
              | None -> ""
            in
            let path = prefix ^ s.sp_name in
            Hashtbl.replace path_of s.sp_seq path;
            (match Hashtbl.find_opt hists path with
            | Some h -> Hist.observe h s.sp_wall
            | None ->
                let h = Hist.create () in
                Hist.observe h s.sp_wall;
                Hashtbl.replace hists path h);
            (match Hashtbl.find_opt rows path with
            | None ->
                order := path :: !order;
                Hashtbl.replace rows path (1, s.sp_wall, s.sp_cpu)
            | Some (n, w, cp) -> Hashtbl.replace rows path (n + 1, w +. s.sp_wall, cp +. s.sp_cpu)))
          spans)
      (collectors t);
    List.rev_map
      (fun path -> (path, Hashtbl.find rows path, Hashtbl.find hists path))
      !order

  let pp_summary fmt t =
    let rows = aggregate t in
    let width =
      List.fold_left (fun acc (p, _, _) -> max acc (String.length p)) 24 rows
    in
    Format.fprintf fmt "%-*s %8s %12s %12s %9s %9s %9s@." width "span" "calls" "wall(ms)"
      "cpu(ms)" "p50(ms)" "p90(ms)" "p99(ms)";
    Format.fprintf fmt "%s@." (String.make (width + 66) '-');
    List.iter
      (fun (path, (calls, wall, cpu), h) ->
        Format.fprintf fmt "%-*s %8d %12.3f %12.3f %9.3f %9.3f %9.3f@." width path calls
          (1000.0 *. wall) (1000.0 *. cpu)
          (1000.0 *. Hist.percentile h 50.0)
          (1000.0 *. Hist.percentile h 90.0)
          (1000.0 *. Hist.percentile h 99.0))
      rows;
    let nonzero = List.filter (fun (_, v) -> v <> 0) (counters_total t) in
    if nonzero <> [] then begin
      Format.fprintf fmt "@.%-*s %12s@." width "counter" "value";
      Format.fprintf fmt "%s@." (String.make (width + 13) '-');
      List.iter (fun (name, v) -> Format.fprintf fmt "%-*s %12d@." width name v) nonzero
    end;
    (* name-major, then trial: every gauge's per-trial values read as one
       contiguous block, and the ordering is a pure function of the trace
       (never of hash-table iteration or collector construction order) *)
    let gauge_rows =
      List.concat_map
        (fun c ->
          List.map (fun (name, v) -> (Collector.trial c, name, v)) (Collector.gauges c))
        (collectors t)
      |> List.sort (fun (t1, n1, _) (t2, n2, _) ->
             match compare (n1 : string) n2 with 0 -> compare t1 t2 | c -> c)
    in
    if gauge_rows <> [] then begin
      Format.fprintf fmt "@.%-*s %8s %12s@." width "gauge" "trial" "value";
      Format.fprintf fmt "%s@." (String.make (width + 22) '-');
      List.iter
        (fun (trial, name, v) ->
          let tr = match trial with None -> "-" | Some k -> string_of_int k in
          Format.fprintf fmt "%-*s %8s %12.4g@." width name tr v)
        gauge_rows
    end;
    let hist_rows = histograms_total t in
    if hist_rows <> [] then begin
      Format.fprintf fmt "@.%-*s %8s %12s %9s %9s %9s %12s@." width "histogram" "n" "mean"
        "p50" "p90" "p99" "max";
      Format.fprintf fmt "%s@." (String.make (width + 66) '-');
      List.iter
        (fun (name, h) ->
          Format.fprintf fmt "%-*s %8d %12.4g %9.4g %9.4g %9.4g %12.4g@." width name
            (Hist.count h) (Hist.mean h) (Hist.percentile h 50.0) (Hist.percentile h 90.0)
            (Hist.percentile h 99.0) (Hist.max_value h))
        hist_rows
    end
end
