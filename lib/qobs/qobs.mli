(** Lightweight observability: hierarchical spans, named counters and
    gauges, with near-zero overhead when disabled.

    The pipeline is instrumented unconditionally; whether anything is
    *recorded* depends on a collector being installed on the current domain
    (see {!with_collector}).  With no collector anywhere in the process,
    every probe is a single atomic-load-and-branch, so instrumented code
    stays within noise of the uninstrumented build.

    Identities are interned once at module-initialization time
    ([let c = Qobs.counter "engine.swaps_emitted"]) so hot-path updates are
    an array increment, never a string hash.

    Concurrency model: one collector per logical unit of work (the main
    pipeline, or one routing trial), installed domain-locally.  The trial
    engine creates a fresh collector per {e trial} — not per domain — and
    merges them into the parent in trial order at join, which is what keeps
    traces deterministic across worker counts. *)

module Hist = Hist
(** The bounded log-bucketed histogram value type (see {!Hist}). *)

module Recorder = Recorder
(** The routing flight recorder (see {!Recorder}): decision-trail events,
    installed per unit of work like collectors, gated by its own single
    atomic load. *)

type counter
type gauge

type histogram
(** A named histogram identity; per-collector {!Hist.t} instances are
    created lazily on first {!observe}. *)

val counter : string -> counter
(** Intern a counter by name (idempotent; call at module init). *)

val gauge : string -> gauge
(** Intern a float-valued gauge by name (idempotent). *)

val histogram : string -> histogram
(** Intern a histogram by name (idempotent). *)

val active : unit -> bool
(** True iff a collector is installed on the calling domain. *)

val set_timing : bool -> unit
(** Opt in to wall-clock histogram observations (per-step scoring time and
    friends).  Off by default: timing values are nondeterministic, and
    recording them would break the byte-identical guarantee of the default
    [--trace] export.  Enabled by [--trace-times] and the profile/score
    benches. *)

val timing_enabled : unit -> bool
(** Current state of the {!set_timing} opt-in (process-wide). *)

val set_extended_metrics : bool -> unit
(** Opt in to the extended telemetry gauges (input-circuit size, requested
    trial count, and friends) that the Qtel layer consumes.  Off by
    default: the values are deterministic, but recording them would add
    lines to every existing [--trace] export, so they follow the same
    opt-in discipline as {!set_timing}.  Enabled by [--metrics] /
    [--wide-events] and the telemetry benches. *)

val extended_metrics_enabled : unit -> bool
(** Current state of the {!set_extended_metrics} opt-in (process-wide). *)

val incr : counter -> unit
val add : counter -> int -> unit

val gauge_set : gauge -> float -> unit
(** Last write wins. *)

val gauge_add : gauge -> float -> unit

val observe : histogram -> float -> unit
(** Record one observation on the calling domain's collector (no-op
    without one).  Bounded memory: a fixed-size {!Hist.t} per histogram
    per collector, created on first use. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] (wall and CPU) as a child of the innermost
    open span on this domain's collector.  Exceptions propagate; the span
    still closes.  Without a collector this is just [f ()]. *)

module Collector : sig
  type t

  type span_rec = {
    sp_name : string;
    sp_seq : int;  (** preorder index within this collector, from 0 *)
    sp_parent : int;  (** [sp_seq] of the parent span, [-1] for roots *)
    sp_depth : int;  (** 0 for roots, parent depth + 1 otherwise *)
    sp_start : float;  (** wall clock at open (Chrome export only) *)
    mutable sp_wall : float;  (** seconds of wall clock *)
    mutable sp_cpu : float;  (** seconds of process CPU time *)
  }

  val create : ?trial:int -> ?label:string -> unit -> t
  (** Fresh empty collector.  [trial] tags every exported record (the trial
      engine sets it); [label] is a human-readable name ("main"). *)

  val trial : t -> int option
  val label : t -> string

  val spans : t -> span_rec list
  (** Completed spans in preorder ([sp_seq] ascending). *)

  val open_spans : t -> int
  (** Number of spans currently open (0 once collection is balanced). *)

  val counters : t -> (string * int) list
  (** Every registered counter with this collector's value (0 when never
      touched here), sorted by name. *)

  val gauges : t -> (string * float) list
  (** Gauges written on this collector, sorted by name. *)

  val histograms : t -> (string * Hist.t) list
  (** Histograms observed on this collector, sorted by name. *)

  val add_child : t -> t -> unit
  (** [add_child parent child] appends [child] to [parent]'s merge list;
      call from the joining domain only, in a deterministic order. *)

  val children : t -> t list
  (** Children in [add_child] order. *)
end

val with_collector : Collector.t -> (unit -> 'a) -> 'a
(** Install a collector on the calling domain for the duration of [f]
    (restoring whatever was installed before).  Nesting installs shadow. *)

val current : unit -> Collector.t option
(** The calling domain's installed collector, if any. *)

module Trace : sig
  type t
  (** A completed collection: a root collector plus its merged children. *)

  val of_root : Collector.t -> t

  val collectors : t -> Collector.t list
  (** Every collector of the trace in preorder: the root, then each child's
      subtree in merge order.  This is the traversal all aggregates and
      exports use (and what the Qtel metrics exposition walks to label
      per-trial gauge series). *)

  val counters_total : t -> (string * int) list
  (** Registered counters summed over the root and every child, sorted by
      name. *)

  val counter_total : t -> string -> int
  (** One counter's total over the whole trace; [0] for names never
      registered (what the bench harnesses use to pull single metrics). *)

  val histograms_total : t -> (string * Hist.t) list
  (** Histograms merged (bucket-count addition, root first then children
      in merge order) over the whole trace, sorted by name. *)

  val to_jsonl : ?times:bool -> t -> string
  (** JSON-lines export: one [span] line per span (root collector first,
      then each child in merge order), then aggregated [counter] lines,
      then per-collector [gauge] lines, then aggregated [hist] lines (only
      for histograms that were actually observed — a run touching no
      histogram exports exactly the pre-histogram format).  With
      [times:false] (the default) the output is a pure function of the
      computation — byte-identical across runs, worker counts and
      machines; [times:true] adds [wall_ms] / [cpu_ms] fields to spans,
      which are inherently nondeterministic. *)

  val to_chrome : t -> string
  (** Chrome [trace_event] JSON (loadable in Perfetto or
      [about://tracing]): one complete event per span, one track per
      collector.  Timestamps are wall clock, so this export is
      nondeterministic. *)

  val pp_summary : Format.formatter -> t -> unit
  (** Human-readable profile: spans aggregated by path (calls, total wall
      and CPU milliseconds, plus p50/p90/p99 per-call wall latency through
      the shared {!Hist} percentile path), then counters, gauges and
      histograms. *)
end
