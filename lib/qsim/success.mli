(** Success-rate experiments (paper Figure 11b).

    The success rate of a routed circuit is the fraction of noisy shots
    whose measured logical bitstring equals the noiseless circuit's most
    likely outcome, as in the paper's Qiskit-simulator experiments. *)

val compact : Qcircuit.Circuit.t -> Qcircuit.Circuit.t * int array
(** Restrict a circuit to its touched wires.  Returns the compacted circuit
    and [where], with [where.(old_qubit)] = new index or -1. *)

val ideal_outcome : Qcircuit.Circuit.t -> int
(** Most likely basis index of the (logical, noiseless) circuit.
    @raise Invalid_argument above 20 qubits. *)

type outcome = {
  success_rate : float;
  esp : float;  (** analytic estimated-success-probability *)
  shots : int;
}

val routed_esp :
  cal:Topology.Calibration.t ->
  routed:Qcircuit.Circuit.t ->
  final_layout:int array ->
  float
(** Analytic ESP of a routed circuit (no sampling, any width): the product
    of [1 - error] over instructions times [1 - readout] over the wires of
    [final_layout], with the routed circuit compacted to its touched wires
    and the calibration viewed through the renaming — exactly the [esp]
    field {!routed_success} reports, without the Monte-Carlo part.  This is
    the success-probability column of [bench --only matrix]. *)

val routed_success :
  ?shots:int ->
  ?seed:int ->
  cal:Topology.Calibration.t ->
  ideal:Qcircuit.Circuit.t ->
  routed:Qcircuit.Circuit.t ->
  final_layout:int array ->
  unit ->
  outcome
(** [routed_success ~cal ~ideal ~routed ~final_layout ()] measures logical
    qubit [l] on physical wire [final_layout.(l)] of the routed circuit and
    compares against {!ideal_outcome} of the logical circuit.  Default
    [shots] = 2048.  Falls back to the analytic ESP (returned either way)
    when the compacted routed circuit is too wide to simulate (> 18
    wires), reporting [success_rate = esp *. p_ideal]. *)
