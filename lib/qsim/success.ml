open Mathkit

let compact c =
  let n = Qcircuit.Circuit.n_qubits c in
  let touched = Array.make n false in
  List.iter
    (fun (i : Qcircuit.Circuit.instr) -> List.iter (fun q -> touched.(q) <- true) i.qubits)
    (Qcircuit.Circuit.instrs c);
  let where = Array.make n (-1) in
  let count = ref 0 in
  Array.iteri
    (fun q t ->
      if t then begin
        where.(q) <- !count;
        incr count
      end)
    touched;
  let m = max 1 !count in
  let instrs =
    List.map
      (fun (i : Qcircuit.Circuit.instr) ->
        { i with qubits = List.map (fun q -> where.(q)) i.qubits })
      (Qcircuit.Circuit.instrs c)
  in
  (Qcircuit.Circuit.create m instrs, where)

let ideal_outcome c =
  let n = Qcircuit.Circuit.n_qubits c in
  if n > 20 then invalid_arg "Success.ideal_outcome: too many qubits";
  let s = State.create n in
  State.apply_circuit s (Qcircuit.Circuit.drop_measures c);
  State.most_likely s

type outcome = { success_rate : float; esp : float; shots : int }

(* Compact the routed circuit to its touched wires and view the device
   noise model through the renaming; shared by the Monte-Carlo success
   estimator and the analytic ESP path below. *)
let compact_with_model ~cal ~routed ~final_layout ~n_log =
  let small, where = compact routed in
  let m = Qcircuit.Circuit.n_qubits small in
  let base_model = Noise.of_calibration cal in
  (* wire q of the compacted circuit is physical wire old.(q) *)
  let old_of = Array.make m 0 in
  Array.iteri (fun phys w -> if w >= 0 then old_of.(w) <- phys) where;
  let model = Noise.remap base_model (fun q -> old_of.(q)) in
  let measured_new =
    List.init n_log (fun l ->
        let phys = final_layout.(l) in
        if phys < 0 || phys >= Array.length where then -1 else where.(phys))
  in
  (small, model, measured_new)

let routed_esp ~cal ~routed ~final_layout =
  let small, model, measured_new =
    compact_with_model ~cal ~routed ~final_layout ~n_log:(Array.length final_layout)
  in
  Noise.esp model small ~measured:(List.filter (fun w -> w >= 0) measured_new)

let routed_success ?(shots = 2048) ?(seed = 97) ~cal ~ideal ~routed ~final_layout () =
  let n_log = Qcircuit.Circuit.n_qubits ideal in
  let correct = ideal_outcome ideal in
  let ideal_bit l = (correct lsr (n_log - 1 - l)) land 1 in
  let small, model, measured_new = compact_with_model ~cal ~routed ~final_layout ~n_log in
  let m = Qcircuit.Circuit.n_qubits small in
  let esp = Noise.esp model small ~measured:(List.filter (fun w -> w >= 0) measured_new) in
  if m > 18 then begin
    (* too wide to simulate: analytic fallback *)
    let s = State.create n_log in
    State.apply_circuit s (Qcircuit.Circuit.drop_measures ideal);
    let p_ideal = State.probability s correct in
    { success_rate = esp *. p_ideal; esp; shots = 0 }
  end
  else begin
    let rng = Rng.create seed in
    let outcomes = Noise.sample model small ~shots rng in
    let hits = ref 0 in
    Array.iter
      (fun outcome ->
        let ok = ref true in
        List.iteri
          (fun l w ->
            let bit = if w < 0 then 0 else (outcome lsr (m - 1 - w)) land 1 in
            if bit <> ideal_bit l then ok := false)
          measured_new;
        if !ok then incr hits)
      outcomes;
    { success_rate = float_of_int !hits /. float_of_int shots; esp; shots }
  end
