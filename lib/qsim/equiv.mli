(** Equivalence checking for compiled circuits.

    Routing and optimization must preserve circuit semantics; these checks
    make that verifiable by users (and are what the test suite runs on
    every router).  Unitary comparison is exact but exponential; the routed
    check compares statevectors from |0...0>, which is the relevant notion
    for routed circuits whose extra device wires start (and must remain)
    in |0>.

    These checks are exponential in qubit count (dense matrices or
    statevectors); for device-scale circuits use the symbolic certifier
    [Qverify.verify_routed], which proves equivalence by stabilizer-tableau
    conjugation at any width and degrades to [Unknown] (never a wrong
    verdict) when its budgets run out.  The test suite cross-checks the
    two on every circuit small enough for both. *)

val unitary_equal : Qcircuit.Circuit.t -> Qcircuit.Circuit.t -> bool
(** Dense unitary comparison up to global phase (<= 12 qubits). *)

val routed_equal :
  logical:Qcircuit.Circuit.t ->
  routed:Qcircuit.Circuit.t ->
  final_layout:int array ->
  bool
(** [routed_equal ~logical ~routed ~final_layout] checks that running
    [routed] on the device's |0...0> reproduces exactly the state of
    [logical], with logical qubit [l] living on physical wire
    [final_layout.(l)] and every other wire back in |0>.  Amplitudes are
    compared up to one global phase.  Statevector-based: needs
    [n_phys <= 24]; measures and barriers are ignored. *)

val distribution_distance :
  logical:Qcircuit.Circuit.t ->
  routed:Qcircuit.Circuit.t ->
  final_layout:int array ->
  float
(** Total-variation distance between the logical circuit's measurement
    distribution and the routed circuit's distribution marginalized onto
    the final layout (0 when equivalent); useful for diagnosing *how*
    wrong a transformation is. *)
