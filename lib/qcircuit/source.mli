(** Pull-based instruction sources for streaming transpilation.

    A source is a qubit count plus a [unit -> instr option] thunk: [pull]
    returns the next instruction or [None] once the stream is exhausted.
    Million-gate circuits are generated and consumed through sources
    without ever materializing an instruction list — the streaming engine
    ([Qroute.Engine.route_stream]) holds only a bounded window of a
    source's gates at any time. *)

type t

val create : n_qubits:int -> (unit -> Circuit.instr option) -> t
(** Wrap a pull thunk.  The thunk owns its own state; callers must treat
    the source as single-consumer (each instruction is delivered once). *)

val n_qubits : t -> int

val pull : t -> Circuit.instr option
(** Next instruction, or [None] forever after exhaustion. *)

val of_circuit : Circuit.t -> t
(** Replay a materialized circuit in order (for tests and the CLI, where
    the input already exists as a list). *)

val of_list : n_qubits:int -> Circuit.instr list -> t

val prefix : t -> int -> Circuit.instr list * t
(** [prefix s k] pulls up to [k] instructions eagerly and returns them
    together with a source that replays exactly those instructions and
    then continues with the untouched remainder of [s].  The streaming
    pipeline uses this to run the layout search on a bounded prefix while
    still routing the full stream from the beginning. *)

val to_circuit : t -> Circuit.t
(** Drain the whole source into a circuit (materializes; tests only). *)

val map : t -> (Circuit.instr -> Circuit.instr list) -> t
(** [map s f] expands every pulled instruction through [f], preserving
    order — the streaming analogue of [List.concat_map] (used for
    on-the-fly lowering to the 2-qubit basis). *)
