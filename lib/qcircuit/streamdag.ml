type node = {
  id : int;
  gate : Qgate.Gate.t;
  qubits : int list;
  mutable indeg : int;
  mutable succs : node list;  (* ascending id order; at most one per wire *)
  mutable executed : bool;
  mutable seen : int;  (* lookahead BFS epoch stamp *)
}

type t = {
  source : Source.t;
  n : int;
  window : int;
  wire : node option array;  (* latest admitted node per wire *)
  tbl : (int, node) Hashtbl.t;  (* admitted, unexecuted *)
  mutable next_id : int;
  mutable exhausted : bool;
  mutable front_ : int list;
  mutable n_exec : int;
  mutable peak : int;
  mutable epoch : int;
  mutable la_cache : (int * int * int * int list) option;
      (** (n_exec, next_id, k, result): admission extends succ lists, so
          the cache keys on the admission horizon as well as the executed
          count (unlike [Dag.Traversal], whose graph is static). *)
}

let n_qubits t = t.n
let front t = t.front_
let finished t = t.exhausted && Hashtbl.length t.tbl = 0
let executed_count t = t.n_exec
let admitted_count t = t.next_id
let resident t = Hashtbl.length t.tbl
let peak_resident t = t.peak

let node t id = Hashtbl.find t.tbl id
let gate t id = (node t id).gate
let qubits t id = (node t id).qubits

let admit_one t =
  match Source.pull t.source with
  | None ->
      t.exhausted <- true;
      false
  | Some (i : Circuit.instr) ->
      let g = i.gate in
      if Qgate.Gate.arity g > 2 && not (Qgate.Gate.is_directive g) then
        invalid_arg "Streamdag: lower gates to <=2 qubits before streaming";
      List.iter
        (fun q ->
          if q < 0 || q >= t.n then invalid_arg "Streamdag: qubit out of range")
        i.qubits;
      let nd =
        { id = t.next_id; gate = g; qubits = i.qubits; indeg = 0; succs = [];
          executed = false; seen = 0 }
      in
      t.next_id <- t.next_id + 1;
      (* predecessors: the latest admitted gate on each wire; a gate
         sharing both wires with the same predecessor counts once, exactly
         like the distinct-id pred cache of the materialized DAG *)
      let linked = ref [] in
      List.iter
        (fun q ->
          match t.wire.(q) with
          | Some p when not p.executed && not (List.memq p !linked) ->
              linked := p :: !linked;
              p.succs <- p.succs @ [ nd ];
              nd.indeg <- nd.indeg + 1
          | _ -> ())
        i.qubits;
      List.iter (fun q -> t.wire.(q) <- Some nd) i.qubits;
      Hashtbl.add t.tbl nd.id nd;
      let r = Hashtbl.length t.tbl in
      if r > t.peak then t.peak <- r;
      if nd.indeg = 0 then t.front_ <- t.front_ @ [ nd.id ];
      true

let refill t =
  while (not t.exhausted) && Hashtbl.length t.tbl < t.window do
    ignore (admit_one t)
  done

let create ~window source =
  if window < 1 then invalid_arg "Streamdag.create: window must be >= 1";
  let n = Source.n_qubits source in
  let t =
    {
      source;
      n;
      window;
      wire = Array.make n None;
      tbl = Hashtbl.create 256;
      next_id = 0;
      exhausted = false;
      front_ = [];
      n_exec = 0;
      peak = 0;
      epoch = 0;
      la_cache = None;
    }
  in
  refill t;
  t

let execute t id =
  let nd =
    match Hashtbl.find_opt t.tbl id with
    | Some nd -> nd
    | None -> invalid_arg "Streamdag.execute: node not resident"
  in
  if not (List.mem id t.front_) then invalid_arg "Streamdag.execute: node not ready";
  t.front_ <- List.filter (fun x -> x <> id) t.front_;
  nd.executed <- true;
  Hashtbl.remove t.tbl id;
  t.n_exec <- t.n_exec + 1;
  let promoted = ref [] in
  List.iter
    (fun s ->
      s.indeg <- s.indeg - 1;
      if s.indeg = 0 then promoted := s.id :: !promoted)
    nd.succs;
  t.front_ <- t.front_ @ List.rev !promoted;
  nd.succs <- [];
  refill t

let lookahead t k =
  match t.la_cache with
  | Some (d, a, k', ids) when d = t.n_exec && a = t.next_id && k' = k -> ids
  | _ ->
      (* same BFS as [Dag.Traversal.lookahead]: seed with the successors of
         every front node in front order, pop-head / append, collect up to
         [k] unexecuted two-qubit gates.  Epoch stamps live on the resident
         nodes themselves, so the sweep allocates only the queue. *)
      t.epoch <- t.epoch + 1;
      let ep = t.epoch in
      let q : node Queue.t = Queue.create () in
      List.iter
        (fun id -> List.iter (fun s -> Queue.add s q) (node t id).succs)
        t.front_;
      let out = ref [] in
      let count = ref 0 in
      while !count < k && not (Queue.is_empty q) do
        let nd = Queue.pop q in
        if nd.seen <> ep then begin
          nd.seen <- ep;
          if (not nd.executed) && Qgate.Gate.is_two_qubit nd.gate then begin
            out := nd.id :: !out;
            incr count
          end;
          List.iter (fun s -> Queue.add s q) nd.succs
        end
      done;
      let ids = List.rev !out in
      t.la_cache <- Some (t.n_exec, t.next_id, k, ids);
      ids
