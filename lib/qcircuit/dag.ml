type node = {
  id : int;
  gate : Qgate.Gate.t;
  qubits : int list;
  preds : (int * int) list;
  succs : (int * int) list;
}

type t = {
  n : int;
  arr : node array;
  pred_cache : int list array;  (** distinct predecessor ids, by node id *)
  succ_cache : int list array;
}

let distinct l = List.sort_uniq compare l

let of_circuit c =
  let instrs = Array.of_list (Circuit.instrs c) in
  let n = Circuit.n_qubits c in
  let last = Array.make n (-1) in
  let preds = Array.make (Array.length instrs) [] in
  let succs = Array.make (Array.length instrs) [] in
  Array.iteri
    (fun id (i : Circuit.instr) ->
      List.iter
        (fun q ->
          if last.(q) >= 0 then begin
            preds.(id) <- (q, last.(q)) :: preds.(id);
            succs.(last.(q)) <- (q, id) :: succs.(last.(q))
          end;
          last.(q) <- id)
        i.qubits)
    instrs;
  let arr =
    Array.mapi
      (fun id (i : Circuit.instr) ->
        { id; gate = i.gate; qubits = i.qubits; preds = List.rev preds.(id); succs = List.rev succs.(id) })
      instrs
  in
  (* the traversal hot path asks for distinct pred/succ ids once per BFS
     visit; computing the sort_uniq once per node here instead makes those
     lookups allocation-free *)
  let pred_cache = Array.map (fun nd -> distinct (List.map snd nd.preds)) arr in
  let succ_cache = Array.map (fun nd -> distinct (List.map snd nd.succs)) arr in
  { n; arr; pred_cache; succ_cache }

let n_qubits d = d.n
let n_nodes d = Array.length d.arr
let node d i = d.arr.(i)
let nodes d = d.arr

let to_circuit d =
  Circuit.create d.n
    (Array.to_list (Array.map (fun nd -> { Circuit.gate = nd.gate; qubits = nd.qubits }) d.arr))

let pred_on d id q = List.assoc_opt q d.arr.(id).preds
let succ_on d id q = List.assoc_opt q d.arr.(id).succs

let first_on_wire d q =
  let best = ref None in
  Array.iter
    (fun nd ->
      if !best = None && List.mem q nd.qubits && List.assoc_opt q nd.preds = None then
        best := Some nd.id)
    d.arr;
  !best

let pred_ids d id = d.pred_cache.(id)
let succ_ids d id = d.succ_cache.(id)

module Traversal = struct
  type dag = t

  type t = {
    dag : dag;
    indeg : int array;
    done_ : bool array;
    mutable front_ : int list;
    mutable n_done : int;
    mutable la_cache : (int * int * int list) option;
        (** (n_done, k, result) of the last lookahead; the BFS reads only
            [front_] and [done_], both mutated solely by [execute], so
            between executions the cached result is exact.  The routers call
            lookahead once per SWAP insertion while the front is stuck, so
            this collapses a BFS per step into one per front change. *)
    la_seen : int array;  (** epoch stamps replacing a per-BFS hashtable *)
    mutable la_epoch : int;
    mutable la_queue : int array;  (** FIFO scratch; grown on demand *)
  }

  let create dag =
    let n = Array.length dag.arr in
    let indeg = Array.map (fun nd -> List.length dag.pred_cache.(nd.id)) dag.arr in
    let front_ = ref [] in
    Array.iteri (fun i d -> if d = 0 then front_ := i :: !front_) indeg;
    {
      dag;
      indeg;
      done_ = Array.make n false;
      front_ = List.rev !front_;
      n_done = 0;
      la_cache = None;
      la_seen = Array.make n 0;
      la_epoch = 0;
      la_queue = Array.make (max 16 (4 * n)) 0;
    }

  let front t = t.front_

  let execute t id =
    if not (List.mem id t.front_) then invalid_arg "Dag.Traversal.execute: node not ready";
    t.front_ <- List.filter (fun x -> x <> id) t.front_;
    t.done_.(id) <- true;
    t.n_done <- t.n_done + 1;
    let promoted = ref [] in
    List.iter
      (fun s ->
        t.indeg.(s) <- t.indeg.(s) - 1;
        if t.indeg.(s) = 0 then promoted := s :: !promoted)
      (succ_ids t.dag id);
    t.front_ <- t.front_ @ List.rev !promoted

  let finished t = t.n_done = Array.length t.dag.arr
  let executed_count t = t.n_done

  let lookahead t k =
    match t.la_cache with
    | Some (d, k', ids) when d = t.n_done && k' = k -> ids
    | _ ->
        (* BFS forward from the front layer, collecting 2q gates in
           dependency order, without mutating traversal state.  Epoch-stamped
           [la_seen] and the [la_queue] scratch replace a per-call hashtable
           and queue; visiting order (append / pop-head) is unchanged. *)
        t.la_epoch <- t.la_epoch + 1;
        let ep = t.la_epoch in
        let head = ref 0 and tail = ref 0 in
        let push id =
          if !tail = Array.length t.la_queue then begin
            let q' = Array.make ((2 * Array.length t.la_queue) + 4) 0 in
            Array.blit t.la_queue 0 q' 0 !tail;
            t.la_queue <- q'
          end;
          t.la_queue.(!tail) <- id;
          incr tail
        in
        let out = ref [] in
        let count = ref 0 in
        List.iter (fun id -> List.iter push (succ_ids t.dag id)) t.front_;
        while !count < k && !head < !tail do
          let id = t.la_queue.(!head) in
          incr head;
          if t.la_seen.(id) <> ep then begin
            t.la_seen.(id) <- ep;
            let nd = t.dag.arr.(id) in
            if (not t.done_.(id)) && Qgate.Gate.is_two_qubit nd.gate then begin
              out := id :: !out;
              incr count
            end;
            List.iter push (succ_ids t.dag id)
          end
        done;
        let ids = List.rev !out in
        t.la_cache <- Some (t.n_done, k, ids);
        ids
end
