open Qgate

type instr = { gate : Gate.t; qubits : int list }
type t = { n : int; instrs : instr list }

let check_instr n { gate; qubits } =
  let k = List.length qubits in
  if k <> Gate.arity gate then
    invalid_arg
      (Printf.sprintf "Circuit: gate %s expects %d qubits, got %d" (Gate.name gate)
         (Gate.arity gate) k);
  List.iter
    (fun q ->
      if q < 0 || q >= n then
        invalid_arg
          (Printf.sprintf "Circuit: qubit index %d out of range for %d-qubit circuit" q n))
    qubits;
  let sorted = List.sort_uniq compare qubits in
  if List.length sorted <> k then
    invalid_arg
      (Printf.sprintf "Circuit: repeated qubit in %s %s" (Gate.name gate)
         (String.concat "," (List.map string_of_int qubits)))

let create n instrs =
  if n < 0 then
    invalid_arg (Printf.sprintf "Circuit.create: negative qubit count %d" n);
  List.iter (check_instr n) instrs;
  { n; instrs }

let empty n = create n []
let n_qubits c = c.n
let instrs c = c.instrs

let is_barrier i = match i.gate with Gate.Barrier _ -> true | _ -> false

let size c = List.length (List.filter (fun i -> not (is_barrier i)) c.instrs)

let append c gate qubits =
  let i = { gate; qubits } in
  check_instr c.n i;
  { c with instrs = c.instrs @ [ i ] }

let concat a b =
  if a.n <> b.n then
    invalid_arg
      (Printf.sprintf "Circuit.concat: qubit-count mismatch (%d vs %d)" a.n b.n);
  { a with instrs = a.instrs @ b.instrs }

let inverse c =
  let keep i = match i.gate with Gate.Measure -> false | _ -> true in
  let inv i = { i with gate = Gate.inverse i.gate } in
  { c with instrs = List.rev_map inv (List.filter keep c.instrs) }

let remap c perm =
  if Array.length perm <> c.n then
    invalid_arg
      (Printf.sprintf "Circuit.remap: permutation size %d does not match %d qubits"
         (Array.length perm) c.n);
  let f i = { i with qubits = List.map (fun q -> perm.(q)) i.qubits } in
  { c with instrs = List.map f c.instrs }

let lift c ~n ~map =
  if Array.length map <> c.n then
    invalid_arg
      (Printf.sprintf "Circuit.lift: map size %d does not match %d qubits"
         (Array.length map) c.n);
  let seen = Array.make (max n 1) false in
  Array.iter
    (fun p ->
      if p < 0 || p >= n then
        invalid_arg (Printf.sprintf "Circuit.lift: wire %d out of range for %d" p n);
      if seen.(p) then
        invalid_arg (Printf.sprintf "Circuit.lift: map repeats wire %d" p);
      seen.(p) <- true)
    map;
  let f i = { i with qubits = List.map (fun q -> map.(q)) i.qubits } in
  { n; instrs = List.map f c.instrs }

let drop_measures c =
  { c with instrs = List.filter (fun i -> i.gate <> Gate.Measure) c.instrs }

let gate_count c name_ =
  List.length (List.filter (fun i -> Gate.name i.gate = name_) c.instrs)

let cx_count c = gate_count c "cx"

let two_qubit_count c =
  List.length (List.filter (fun i -> Gate.is_two_qubit i.gate) c.instrs)

let depth c =
  let level = Array.make (max c.n 1) 0 in
  let out = ref 0 in
  let visit i =
    if not (is_barrier i) then begin
      let d = 1 + List.fold_left (fun acc q -> max acc level.(q)) 0 i.qubits in
      List.iter (fun q -> level.(q) <- d) i.qubits;
      if d > !out then out := d
    end
  in
  List.iter visit c.instrs;
  !out

let embed ~n g qs =
  let open Mathkit in
  let k = List.length qs in
  let dim = 1 lsl n in
  if Mat.rows g <> 1 lsl k then invalid_arg "Circuit.embed: matrix size mismatch";
  let qs = Array.of_list qs in
  (* bit of qubit q within a full index (qubit 0 = most significant) *)
  let bit x q = (x lsr (n - 1 - q)) land 1 in
  let local x = Array.to_list qs |> List.fold_left (fun acc q -> (acc lsl 1) lor bit x q) 0 in
  let rest_mask =
    let m = ref 0 in
    for q = 0 to n - 1 do
      if not (Array.exists (( = ) q) qs) then m := !m lor (1 lsl (n - 1 - q))
    done;
    !m
  in
  Mat.init dim dim (fun i j ->
      if i land rest_mask <> j land rest_mask then Cx.zero
      else Mat.get g (local i) (local j))

let unitary c =
  let open Mathkit in
  if c.n > 12 then invalid_arg "Circuit.unitary: too many qubits";
  let acc = ref (Mat.identity (1 lsl c.n)) in
  let visit i =
    match i.gate with
    | Gate.Barrier _ | Gate.Measure -> ()
    | g -> acc := Mat.mul (embed ~n:c.n (Unitary.of_gate g) i.qubits) !acc
  in
  List.iter visit c.instrs;
  !acc

let equal a b =
  a.n = b.n
  && List.length a.instrs = List.length b.instrs
  && List.for_all2
       (fun x y -> Gate.equal x.gate y.gate && x.qubits = y.qubits)
       a.instrs b.instrs

let pp ppf c =
  Format.fprintf ppf "@[<v>circuit %d qubits, %d ops@," c.n (List.length c.instrs);
  List.iter
    (fun i ->
      Format.fprintf ppf "  %a %s@," Gate.pp i.gate
        (String.concat "," (List.map string_of_int i.qubits)))
    c.instrs;
  Format.fprintf ppf "@]"

module Builder = struct
  type circuit = t
  type nonrec t = { bn : int; mutable rev : instr list }

  let create n = { bn = n; rev = [] }

  let add b gate qubits =
    let i = { gate; qubits } in
    check_instr b.bn i;
    b.rev <- i :: b.rev

  let add_instr b i =
    check_instr b.bn i;
    b.rev <- i :: b.rev

  let circuit b : circuit = { n = b.bn; instrs = List.rev b.rev }
  let n_qubits b = b.bn
end
