(** Quantum circuit intermediate representation.

    A circuit is an ordered list of instructions over [n] qubits (indices
    [0..n-1]).  Classical bits are implicit: [Measure] on qubit [q] stores
    into classical bit [q]. *)

type instr = { gate : Qgate.Gate.t; qubits : int list }

type t = private { n : int; instrs : instr list }

val create : int -> instr list -> t
(** @raise Invalid_argument when an instruction is out of range, repeats a
    qubit, or has the wrong arity. *)

val empty : int -> t
val n_qubits : t -> int
val instrs : t -> instr list
val size : t -> int
(** Number of instructions, barriers excluded. *)

val append : t -> Qgate.Gate.t -> int list -> t
val concat : t -> t -> t
(** @raise Invalid_argument on qubit-count mismatch. *)

val inverse : t -> t
(** Reverse gate order, invert each gate.  Measures are dropped. *)

val remap : t -> int array -> t
(** [remap c perm] relabels qubit [q] as [perm.(q)] (size preserved). *)

val lift : t -> n:int -> map:int array -> t
(** [lift c ~n ~map] embeds [c] into an [n]-qubit circuit, relabelling
    qubit [q] as [map.(q)].  [map] must be an injection of
    [0..n_qubits c - 1] into [0..n-1] — exactly the shape of a routing
    layout array (logical -> physical).  Wires outside the image of [map]
    carry no instructions.  @raise Invalid_argument on a non-injective or
    out-of-range map. *)

val drop_measures : t -> t

val gate_count : t -> string -> int
(** Count instructions whose {!Qgate.Gate.name} matches. *)

val cx_count : t -> int
val two_qubit_count : t -> int
val depth : t -> int
(** Circuit depth over all non-barrier instructions (Qiskit convention). *)

val unitary : t -> Mathkit.Mat.t
(** Dense unitary of the circuit (measures and barriers ignored).  Only for
    small circuits: raises [Invalid_argument] above 12 qubits. *)

val embed : n:int -> Mathkit.Mat.t -> int list -> Mathkit.Mat.t
(** [embed ~n g qs] lifts gate matrix [g] (on qubits [qs], first qubit =
    most significant) to the full [2^n] space, qubit 0 = most significant. *)

val equal : t -> t -> bool
(** Structural equality of instruction lists. *)

val pp : Format.formatter -> t -> unit

module Builder : sig
  type circuit := t
  type t

  val create : int -> t
  val add : t -> Qgate.Gate.t -> int list -> unit
  val add_instr : t -> instr -> unit
  val circuit : t -> circuit
  val n_qubits : t -> int
end
