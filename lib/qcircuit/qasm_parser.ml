type error = { line : int; col : int; msg : string }

let string_of_error { line; col; msg } = Printf.sprintf "line %d, col %d: %s" line col msg

exception Parse_error of string

(* internal: rejections carry their source position and are converted to the
   public representation at the parse_result boundary *)
exception Located of error

let fail (line, col) msg = raise (Located { line; col; msg })

(* ---- angle expression evaluator (pi, literals, + - * /, parens) ---- *)

type tok = Num of float | Op of char | LPar | RPar

let lex_expr pos s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '(' then begin
      toks := LPar :: !toks;
      incr i
    end
    else if c = ')' then begin
      toks := RPar :: !toks;
      incr i
    end
    else if c = '+' || c = '-' || c = '*' || c = '/' then begin
      toks := Op c :: !toks;
      incr i
    end
    else if (c >= '0' && c <= '9') || c = '.' then begin
      let j = ref !i in
      while
        !j < n
        && ((s.[!j] >= '0' && s.[!j] <= '9')
           || s.[!j] = '.' || s.[!j] = 'e' || s.[!j] = 'E'
           || (s.[!j] = '-' && !j > !i && (s.[!j - 1] = 'e' || s.[!j - 1] = 'E'))
           || (s.[!j] = '+' && !j > !i && (s.[!j - 1] = 'e' || s.[!j - 1] = 'E')))
      do
        incr j
      done;
      toks := Num (float_of_string (String.sub s !i (!j - !i))) :: !toks;
      i := !j
    end
    else if c = 'p' && !i + 1 < n && s.[!i + 1] = 'i' then begin
      toks := Num Float.pi :: !toks;
      i := !i + 2
    end
    else fail pos (Printf.sprintf "unexpected character %c in expression %S" c s)
  done;
  List.rev !toks

(* recursive-descent: expr := term (('+'|'-') term)*; term := factor
   (('*'|'/') factor)*; factor := '-' factor | '(' expr ')' | number *)
let eval_expr pos s =
  let toks = ref (lex_expr pos s) in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () = match !toks with [] -> () | _ :: rest -> toks := rest in
  let rec expr () =
    let v = ref (term ()) in
    let rec loop () =
      match peek () with
      | Some (Op '+') ->
          advance ();
          v := !v +. term ();
          loop ()
      | Some (Op '-') ->
          advance ();
          v := !v -. term ();
          loop ()
      | _ -> ()
    in
    loop ();
    !v
  and term () =
    let v = ref (factor ()) in
    let rec loop () =
      match peek () with
      | Some (Op '*') ->
          advance ();
          v := !v *. factor ();
          loop ()
      | Some (Op '/') ->
          advance ();
          v := !v /. factor ();
          loop ()
      | _ -> ()
    in
    loop ();
    !v
  and factor () =
    match peek () with
    | Some (Op '-') ->
        advance ();
        -.factor ()
    | Some LPar ->
        advance ();
        let v = expr () in
        (match peek () with
        | Some RPar -> advance ()
        | _ -> fail pos "expected )");
        v
    | Some (Num x) ->
        advance ();
        x
    | _ -> fail pos ("bad expression: " ^ s)
  in
  let v = expr () in
  if !toks <> [] then fail pos ("trailing tokens in expression: " ^ s);
  v

(* ---- statement parsing ---- *)

let strip s = String.trim s

let strip_comment s =
  match String.index_opt s '/' with
  | Some i when i + 1 < String.length s && s.[i + 1] = '/' -> String.sub s 0 i
  | _ -> s

(* "name(args) q[1],q[2]" -> (name, Some args, operands) *)
let split_application pos stmt =
  let stmt = strip stmt in
  let head, rest =
    match String.index_opt stmt ' ' with
    | None -> (stmt, "")
    | Some i -> (String.sub stmt 0 i, strip (String.sub stmt (i + 1) (String.length stmt - i - 1)))
  in
  match String.index_opt head '(' with
  | None -> (head, None, rest)
  | Some i ->
      if head.[String.length head - 1] <> ')' then fail pos "malformed parameter list";
      let name = String.sub head 0 i in
      let args = String.sub head (i + 1) (String.length head - i - 2) in
      (name, Some args, rest)

let parse_qubit pos (reg, size) s =
  let s = strip s in
  let fail_q () = fail pos (Printf.sprintf "bad operand %S" s) in
  match (String.index_opt s '[', String.index_opt s ']') with
  | Some i, Some j when j > i ->
      let name = String.sub s 0 i in
      if name <> reg then fail pos (Printf.sprintf "unknown register %s" name);
      let q =
        try int_of_string (String.sub s (i + 1) (j - i - 1)) with _ -> fail_q ()
      in
      if q < 0 || q >= size then
        fail pos (Printf.sprintf "qubit index %d out of range for %s[%d]" q reg size);
      q
  | _ -> fail_q ()

let split_args s =
  (* split on commas not inside parentheses *)
  let out = ref [] and buf = Buffer.create 8 and depth = ref 0 in
  String.iter
    (fun c ->
      if c = '(' then begin
        incr depth;
        Buffer.add_char buf c
      end
      else if c = ')' then begin
        decr depth;
        Buffer.add_char buf c
      end
      else if c = ',' && !depth = 0 then begin
        out := Buffer.contents buf :: !out;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    s;
  if Buffer.length buf > 0 then out := Buffer.contents buf :: !out;
  List.rev_map strip !out

let gate_of_name pos name params =
  let p k = List.nth params k in
  let arity_check n =
    if List.length params <> n then
      fail pos (Printf.sprintf "%s expects %d parameters" name n)
  in
  match (name, List.length params) with
  | "id", 0 -> Qgate.Gate.Id
  | "x", 0 -> Qgate.Gate.X
  | "y", 0 -> Qgate.Gate.Y
  | "z", 0 -> Qgate.Gate.Z
  | "h", 0 -> Qgate.Gate.H
  | "s", 0 -> Qgate.Gate.S
  | "sdg", 0 -> Qgate.Gate.Sdg
  | "t", 0 -> Qgate.Gate.T
  | "tdg", 0 -> Qgate.Gate.Tdg
  | "sx", 0 -> Qgate.Gate.SX
  | "sxdg", 0 -> Qgate.Gate.SXdg
  | "rx", _ ->
      arity_check 1;
      Qgate.Gate.RX (p 0)
  | "ry", _ ->
      arity_check 1;
      Qgate.Gate.RY (p 0)
  | "rz", _ ->
      arity_check 1;
      Qgate.Gate.RZ (p 0)
  | ("p" | "u1"), _ ->
      arity_check 1;
      Qgate.Gate.P (p 0)
  | "u2", _ ->
      arity_check 2;
      Qgate.Gate.U (Float.pi /. 2.0, p 0, p 1)
  | ("u" | "u3"), _ ->
      arity_check 3;
      Qgate.Gate.U (p 0, p 1, p 2)
  | "cx", 0 -> Qgate.Gate.CX
  | "cy", 0 -> Qgate.Gate.CY
  | "cz", 0 -> Qgate.Gate.CZ
  | "ch", 0 -> Qgate.Gate.CH
  | "swap", 0 -> Qgate.Gate.SWAP
  | "crx", _ ->
      arity_check 1;
      Qgate.Gate.CRX (p 0)
  | "cry", _ ->
      arity_check 1;
      Qgate.Gate.CRY (p 0)
  | "crz", _ ->
      arity_check 1;
      Qgate.Gate.CRZ (p 0)
  | ("cp" | "cu1"), _ ->
      arity_check 1;
      Qgate.Gate.CP (p 0)
  | "rzz", _ ->
      arity_check 1;
      Qgate.Gate.RZZ (p 0)
  | "ccx", 0 -> Qgate.Gate.CCX
  | "ccz", 0 -> Qgate.Gate.CCZ
  | "cswap", 0 -> Qgate.Gate.CSWAP
  | "mcx", 0 -> Qgate.Gate.MCX 0 (* arity fixed by operand count below *)
  | _ -> fail pos (Printf.sprintf "unsupported gate %s" name)

(* located legality check, mirroring Circuit.check_instr: report arity and
   operand errors at their source statement instead of from Circuit.create *)
let check_operands pos gate qs =
  let arity = Qgate.Gate.arity gate in
  let k = List.length qs in
  if k <> arity then
    fail pos
      (Printf.sprintf "gate %s expects %d qubit operands, got %d" (Qgate.Gate.name gate)
         arity k);
  if List.length (List.sort_uniq compare qs) <> k then
    fail pos
      (Printf.sprintf "repeated qubit operand in %s %s" (Qgate.Gate.name gate)
         (String.concat "," (List.map string_of_int qs)))

(* statements of one physical line as (1-based column, text) pairs; several
   statements may share a line, separated by ';' *)
let statements_of_line raw =
  let body = strip_comment raw in
  let n = String.length body in
  let out = ref [] in
  let flush start stop =
    let s = String.sub body start (stop - start) in
    (* point the column at the first non-blank character *)
    let lead = ref 0 in
    let len = String.length s in
    while !lead < len && (s.[!lead] = ' ' || s.[!lead] = '\t') do
      incr lead
    done;
    if strip s <> "" then out := (start + !lead + 1, strip s) :: !out
  in
  let start = ref 0 in
  for i = 0 to n - 1 do
    if body.[i] = ';' then begin
      flush !start i;
      start := i + 1
    end
  done;
  if !start < n then flush !start n;
  List.rev !out

let parse_result text =
  let lines = String.split_on_char '\n' text in
  let qreg = ref None in
  let instrs = ref [] in
  let lineno = ref 0 in
  let handle_statement pos stmt =
    let name, args, operands = split_application pos stmt in
    match name with
    | "OPENQASM" | "include" -> ()
    | "qreg" -> begin
        match (String.index_opt operands '[', String.index_opt operands ']') with
        | Some i, Some j when j > i ->
            let reg = String.sub operands 0 i in
            let size =
              try int_of_string (String.sub operands (i + 1) (j - i - 1))
              with _ -> fail pos "malformed qreg size"
            in
            if size < 0 then fail pos (Printf.sprintf "negative qreg size %d" size);
            if !qreg <> None then fail pos "multiple qreg declarations unsupported";
            qreg := Some (reg, size)
        | _ -> fail pos "malformed qreg"
      end
    | "creg" -> ()
    | "barrier" -> begin
        match !qreg with
        | None -> fail pos "barrier before qreg"
        | Some reg ->
            let qs = List.map (parse_qubit pos reg) (split_args operands) in
            instrs :=
              { Circuit.gate = Qgate.Gate.Barrier (List.length qs); qubits = qs } :: !instrs
      end
    | "measure" -> begin
        match !qreg with
        | None -> fail pos "measure before qreg"
        | Some reg -> begin
            match String.index_opt operands '-' with
            | Some i when i + 1 < String.length operands && operands.[i + 1] = '>' ->
                let q = parse_qubit pos reg (String.sub operands 0 i) in
                instrs := { Circuit.gate = Qgate.Gate.Measure; qubits = [ q ] } :: !instrs
            | _ -> fail pos "malformed measure"
          end
      end
    | _ -> begin
        match !qreg with
        | None -> fail pos "gate before qreg"
        | Some reg ->
            let params =
              match args with
              | None -> []
              | Some a -> List.map (eval_expr pos) (split_args a)
            in
            let qs = List.map (parse_qubit pos reg) (split_args operands) in
            let gate =
              match gate_of_name pos name params with
              | Qgate.Gate.MCX _ -> Qgate.Gate.MCX (List.length qs - 1)
              | g -> g
            in
            check_operands pos gate qs;
            instrs := { Circuit.gate; qubits = qs } :: !instrs
      end
  in
  try
    List.iter
      (fun raw ->
        incr lineno;
        List.iter
          (fun (col, stmt) -> handle_statement (!lineno, col) stmt)
          (statements_of_line raw))
      lines;
    match !qreg with
    | None -> Error { line = !lineno; col = 1; msg = "no qreg declaration found" }
    | Some (_, size) -> Ok (Circuit.create size (List.rev !instrs))
  with Located e -> Error e

let parse text =
  match parse_result text with
  | Ok c -> c
  | Error e -> raise (Parse_error (string_of_error e))

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let buf = really_input_string ic n in
  close_in ic;
  buf

let parse_file_result path = parse_result (read_file path)

let parse_file path = parse (read_file path)
