(** Parser for the OpenQASM 2 subset emitted by {!Qasm} and produced by
    common benchmark suites (QASMBench, RevLib exports).

    Supported: one [qreg]/[creg] pair, the qelib1 gates that map onto
    {!Qgate.Gate.t} (id x y z h s sdg t tdg sx sxdg rx ry rz p u1 u2 u3 u
    cx cy cz ch swap crx cry crz cp cu1 rzz ccx ccz cswap), [barrier], and
    [measure q[i] -> c[j]].  Angle expressions may use [pi], numeric
    literals, unary minus, [* / + -] and parentheses.

    Every rejection carries the source position: qubit indices are checked
    against the declared register size, and gate arity / repeated operands
    are validated per statement, so a bad program fails here with a line
    and column instead of deep inside {!Circuit.create}. *)

type error = { line : int; col : int; msg : string }
(** A parse failure at a 1-based source position.  [col] points at the
    start of the offending statement. *)

val string_of_error : error -> string
(** ["line 4, col 12: unsupported gate foo"]. *)

exception Parse_error of string
(** Raised by {!parse} / {!parse_file} with {!string_of_error} applied. *)

val parse_result : string -> (Circuit.t, error) result
(** Parse a full OpenQASM 2 program, returning the structured error. *)

val parse_file_result : string -> (Circuit.t, error) result
(** Like {!parse_result}, from disk.  @raise Sys_error on I/O failure. *)

val parse : string -> Circuit.t
(** Parse a full OpenQASM 2 program.  @raise Parse_error on failure. *)

val parse_file : string -> Circuit.t
(** Parse a file from disk. *)
