(** Bounded sliding-window dependency DAG over an instruction {!Source}.

    [Dag.Traversal] materializes the whole circuit graph before routing.
    This module admits gates lazily from a pull source, building pred/succ
    links from per-wire tails as gates enter the window, and retires a
    node's storage as soon as it executes — resident memory is
    O(window + n_qubits) however long the stream is.

    Window invariant (DESIGN.md §16): a node stays resident from admission
    until execution; per-wire tails keep at most one already-executed node
    per wire (the latest admitted gate on that wire, needed to link the
    next admission).  Everything older is unreachable and collected.

    With [window >= total gates] the admission order, front order,
    promotion order and lookahead BFS order are identical to
    [Dag.Traversal] on the materialized circuit, which is what keeps
    windowed routing byte-compatible with the classic engine (the golden
    corpus pins this). *)

type t

val create : window:int -> Source.t -> t
(** Admit up to [window] gates immediately.  Gates must act on at most two
    qubits (directives excepted) and on wires within the source's qubit
    count. @raise Invalid_argument otherwise (checked per admission). *)

val n_qubits : t -> int

val front : t -> int list
(** Ready (indegree-0, unexecuted) node ids in the same order
    [Dag.Traversal.front] maintains: admission order seeds, promotions
    append in ascending id order. *)

val gate : t -> int -> Qgate.Gate.t
(** Gate of a resident (admitted, unexecuted) node.
    @raise Not_found once the node executed or before admission. *)

val qubits : t -> int -> int list

val execute : t -> int -> unit
(** Retire a front node: emit its successors' indegree decrements, append
    newly-ready nodes to the front, drop the node's storage, and admit
    replacement gates from the source until the window is full again.
    @raise Invalid_argument if the node is not on the front. *)

val finished : t -> bool
(** True when the source is exhausted and every admitted gate executed. *)

val executed_count : t -> int

val admitted_count : t -> int

val resident : t -> int
(** Unexecuted admitted nodes — the live window occupancy. *)

val peak_resident : t -> int
(** High-water mark of {!resident} since creation (the O(window) claim,
    measured). *)

val lookahead : t -> int -> int list
(** [lookahead t k]: up to [k] two-qubit gate ids reachable from the front
    by the same BFS [Dag.Traversal.lookahead] runs, restricted to admitted
    gates.  Cached until the front or the admission horizon changes. *)
