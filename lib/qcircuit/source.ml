type t = { n_qubits : int; pull : unit -> Circuit.instr option }

let create ~n_qubits pull =
  if n_qubits <= 0 then invalid_arg "Source.create: need at least one qubit";
  { n_qubits; pull }

let n_qubits s = s.n_qubits
let pull s = s.pull ()

let of_list ~n_qubits instrs =
  let rest = ref instrs in
  create ~n_qubits (fun () ->
      match !rest with
      | [] -> None
      | i :: tl ->
          rest := tl;
          Some i)

let of_circuit c = of_list ~n_qubits:(Circuit.n_qubits c) (Circuit.instrs c)

let prefix s k =
  let buf = ref [] in
  let n = ref 0 in
  (try
     while !n < k do
       match s.pull () with
       | None -> raise Exit
       | Some i ->
           buf := i :: !buf;
           incr n
     done
   with Exit -> ());
  let taken = List.rev !buf in
  let replay = ref taken in
  let replayed =
    create ~n_qubits:s.n_qubits (fun () ->
        match !replay with
        | i :: tl ->
            replay := tl;
            Some i
        | [] -> s.pull ())
  in
  (taken, replayed)

let to_circuit s =
  let buf = ref [] in
  let rec drain () =
    match s.pull () with
    | None -> ()
    | Some i ->
        buf := i :: !buf;
        drain ()
  in
  drain ();
  Circuit.create s.n_qubits (List.rev !buf)

let map s f =
  let pending = ref [] in
  let rec next () =
    match !pending with
    | i :: tl ->
        pending := tl;
        Some i
    | [] -> (
        match s.pull () with
        | None -> None
        | Some i ->
            pending := f i;
            next ())
  in
  create ~n_qubits:s.n_qubits next
