let c_considered = Qobs.counter "synth.blocks_considered"
let c_accepted = Qobs.counter "synth.blocks_resynthesized"

let resynth_gain b =
  let current = Blocks.block_cx_cost b in
  let optimal = Weyl.cnot_cost (Blocks.block_unitary b) in
  max 0 (current - optimal)

let synthesize_block (b : Blocks.block) =
  let lo, hi = b.pair in
  let ops = Synth2q.synthesize (Blocks.block_unitary b) in
  List.map
    (fun (g, qs) ->
      { Qcircuit.Circuit.gate = g; qubits = List.map (fun q -> if q = 0 then lo else hi) qs })
    ops

let run c =
  let segments = Blocks.collect c in
  let improve = function
    | Blocks.Single i -> [ i ]
    | Blocks.Block b ->
        Qobs.incr c_considered;
        let replacement = synthesize_block b in
        let cx_of l =
          List.fold_left
            (fun acc (i : Qcircuit.Circuit.instr) ->
              acc + (match i.gate with Qgate.Gate.CX -> 1 | g -> Blocks.gate_cx_cost g))
            0 l
        in
        let old_cx = Blocks.block_cx_cost b in
        let new_cx = cx_of replacement in
        if
          new_cx < old_cx
          || (new_cx = old_cx && List.length replacement < List.length b.ops)
        then begin
          Qobs.incr c_accepted;
          replacement
        end
        else b.ops
  in
  Qcircuit.Circuit.create (Qcircuit.Circuit.n_qubits c)
    (List.concat_map improve segments)
