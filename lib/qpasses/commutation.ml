open Mathkit
open Qgate

(* cache of pairwise commutation results, keyed by gate pair + qubit overlap
   pattern.  One cache per domain (DLS), so the trials engine's parallel
   optimization passes never contend on a lock; entries are pure functions
   of the key, so a cold cache costs only recomputes.  [reset_cache] empties
   the calling domain's cache — the trial engine calls it at the start of
   every traced trial so cache hit/miss counters are a pure function of the
   trial's own work (deterministic across worker counts). *)
let cache_key : (string, bool) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let reset_cache () = Hashtbl.reset (Domain.DLS.get cache_key)

let c_lookups = Qobs.counter "commutation.cache_lookups"
let c_hits = Qobs.counter "commutation.cache_hits"
let c_misses = Qobs.counter "commutation.cache_misses"
let c_uncached = Qobs.counter "commutation.uncached_evals"

(* cache key: exact binary gate signatures (Gate.add_signature — injective,
   no Format round-trips on the hot path) plus the relative qubit layout of
   the two operand lists *)
let key (g1, qs1) (g2, qs2) =
  let all = List.sort_uniq compare (qs1 @ qs2) in
  let buf = Buffer.create 32 in
  let rel qs =
    List.iter
      (fun q ->
        Buffer.add_char buf
          (Char.chr (Option.get (List.find_index (( = ) q) all))))
      qs;
    Buffer.add_char buf '\255'
  in
  Gate.add_signature buf g1;
  rel qs1;
  Gate.add_signature buf g2;
  rel qs2;
  Buffer.contents buf

let compute_commute (g1, qs1) (g2, qs2) =
  let all = List.sort_uniq compare (qs1 @ qs2) in
  let n = List.length all in
  let local qs = List.map (fun q -> Option.get (List.find_index (( = ) q) all)) qs in
  let u1 = Qcircuit.Circuit.embed ~n (Unitary.of_gate g1) (local qs1) in
  let u2 = Qcircuit.Circuit.embed ~n (Unitary.of_gate g2) (local qs2) in
  Mat.frobenius_distance (Mat.mul u1 u2) (Mat.mul u2 u1) < 1e-9

let commute (g1, qs1) (g2, qs2) =
  if Gate.is_directive g1 || Gate.is_directive g2 then false
  else if not (List.exists (fun q -> List.mem q qs2) qs1) then true
  else
    match ((g1 : Gate.t), (g2 : Gate.t)) with
    | Gate.Unitary2 _, _ | _, Gate.Unitary2 _ ->
        Qobs.incr c_uncached;
        compute_commute (g1, qs1) (g2, qs2)
    | _ ->
        let k = key (g1, qs1) (g2, qs2) in
        let cache = Domain.DLS.get cache_key in
        Qobs.incr c_lookups;
        (match Hashtbl.find_opt cache k with
        | Some v ->
            Qobs.incr c_hits;
            v
        | None ->
            Qobs.incr c_misses;
            let v = compute_commute (g1, qs1) (g2, qs2) in
            Hashtbl.replace cache k v;
            v)

type t = {
  wire_sets : int list list array;  (* per wire: sets in order, ops in order *)
  index : (int * int, int) Hashtbl.t;  (* (wire, op) -> set index *)
}

let analyze c =
  let n = Qcircuit.Circuit.n_qubits c in
  let instrs = Array.of_list (Qcircuit.Circuit.instrs c) in
  let wire_sets = Array.make (max n 1) [] in
  let index = Hashtbl.create 64 in
  for q = 0 to n - 1 do
    let ops_on_wire =
      Array.to_list
        (Array.of_seq
           (Seq.filter
              (fun id -> List.mem q instrs.(id).Qcircuit.Circuit.qubits)
              (Seq.init (Array.length instrs) (fun i -> i))))
    in
    (* group consecutive ops: a new op joins the current set iff it commutes
       with every member *)
    let sets = ref [] and current = ref [] in
    let close () =
      if !current <> [] then begin
        sets := List.rev !current :: !sets;
        current := []
      end
    in
    List.iter
      (fun id ->
        let i = instrs.(id) in
        let as_pair (x : Qcircuit.Circuit.instr) = (x.gate, x.qubits) in
        if Gate.is_directive i.gate then begin
          close ();
          current := [ id ];
          close ()
        end
        else if List.for_all (fun m -> commute (as_pair instrs.(m)) (as_pair i)) !current
        then current := id :: !current
        else begin
          close ();
          current := [ id ]
        end)
      ops_on_wire;
    close ();
    let in_order = List.rev !sets in
    wire_sets.(q) <- in_order;
    List.iteri (fun si set -> List.iter (fun id -> Hashtbl.replace index (q, id) si) set) in_order
  done;
  { wire_sets; index }

let sets_on_wire t q = t.wire_sets.(q)

let set_index t ~wire ~op =
  match Hashtbl.find_opt t.index (wire, op) with
  | Some v -> v
  | None -> raise Not_found
