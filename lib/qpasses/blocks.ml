open Qgate

type segment = Single of Qcircuit.Circuit.instr | Block of block
and block = { pair : int * int; ops : Qcircuit.Circuit.instr list }

(* Open block state per wire pair; blocks close whenever a foreign op
   touches one of their wires. *)
type open_block = { b_pair : int * int; mutable rev_ops : Qcircuit.Circuit.instr list }

let c_blocks = Qobs.counter "blocks.collected"
let c_singles = Qobs.counter "blocks.singles"

let collect c =
  let n = Qcircuit.Circuit.n_qubits c in
  let out = ref [] in
  (* wire state: open block the wire belongs to, or pending 1q gates not yet
     attached to any block *)
  let open_on : open_block option array = Array.make (max n 1) None in
  let pending : Qcircuit.Circuit.instr list array = Array.make (max n 1) [] in
  let close_block (b : open_block) =
    let lo, hi = b.b_pair in
    out := Block { pair = b.b_pair; ops = List.rev b.rev_ops } :: !out;
    open_on.(lo) <- None;
    open_on.(hi) <- None
  in
  let flush_wire q =
    (match open_on.(q) with Some b -> close_block b | None -> ());
    List.iter (fun i -> out := Single i :: !out) (List.rev pending.(q));
    pending.(q) <- []
  in
  let visit (i : Qcircuit.Circuit.instr) =
    match i.gate with
    | g when Gate.is_one_qubit g -> begin
        let q = List.hd i.qubits in
        match open_on.(q) with
        | Some b -> b.rev_ops <- i :: b.rev_ops
        | None -> pending.(q) <- i :: pending.(q)
      end
    | g when Gate.is_two_qubit g -> begin
        match i.qubits with
        | [ a; b ] -> begin
            let pair = (min a b, max a b) in
            match (open_on.(a), open_on.(b)) with
            | Some ba, Some bb when ba == bb && ba.b_pair = pair ->
                ba.rev_ops <- i :: ba.rev_ops
            | _ ->
                (match open_on.(a) with Some blk -> close_block blk | None -> ());
                (match open_on.(b) with Some blk -> close_block blk | None -> ());
                (* absorb pending 1q gates (circuit order) ahead of the 2q gate *)
                let initial = List.rev pending.(a) @ List.rev pending.(b) in
                let blk = { b_pair = pair; rev_ops = i :: List.rev initial } in
                pending.(a) <- [];
                pending.(b) <- [];
                open_on.(a) <- Some blk;
                open_on.(b) <- Some blk
          end
        | _ -> assert false
      end
    | _ ->
        (* directives and >2q gates break blocks on every touched wire *)
        List.iter flush_wire i.qubits;
        out := Single i :: !out
  in
  List.iter visit (Qcircuit.Circuit.instrs c);
  for q = 0 to n - 1 do
    flush_wire q
  done;
  let segments = List.rev !out in
  if Qobs.active () then begin
    Qobs.add c_blocks
      (List.length (List.filter (function Block _ -> true | Single _ -> false) segments));
    Qobs.add c_singles
      (List.length (List.filter (function Single _ -> true | Block _ -> false) segments))
  end;
  segments

let block_unitary b =
  let lo, hi = b.pair in
  let local q = if q = lo then 0 else if q = hi then 1 else invalid_arg "block wire" in
  List.fold_left
    (fun acc (i : Qcircuit.Circuit.instr) ->
      let u = Unitary.of_gate i.gate in
      let qs = List.map local i.qubits in
      Mathkit.Mat.mul (Qcircuit.Circuit.embed ~n:2 u qs) acc)
    (Mathkit.Mat.identity 4) b.ops

let to_circuit n segments =
  let instrs =
    List.concat_map
      (function Single i -> [ i ] | Block b -> b.ops)
      segments
  in
  Qcircuit.Circuit.create n instrs

let gate_cx_cost (g : Gate.t) =
  match g with
  | Gate.CX -> 1
  | Gate.SWAP -> 3
  | Gate.Unitary2 m -> Weyl.cnot_cost m
  | g when Gate.is_two_qubit g ->
      let lowered = Decompose.to_cx_basis [ (g, [ 0; 1 ]) ] in
      List.length (List.filter (fun (x, _) -> x = Gate.CX) lowered)
  | _ -> 0

let block_cx_cost b =
  List.fold_left (fun acc (i : Qcircuit.Circuit.instr) -> acc + gate_cx_cost i.gate) 0 b.ops
