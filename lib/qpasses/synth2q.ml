open Mathkit
open Qgate

let pi = Float.pi

let ops_unitary n ops =
  List.fold_left
    (fun acc (g, qs) ->
      Mat.mul (Qcircuit.Circuit.embed ~n (Unitary.of_gate g) qs) acc)
    (Mat.identity (1 lsl n))
    ops

let one_qubit_ops m q =
  let theta, phi, lam, _ = Euler.u_params_of_unitary m in
  if Euler.is_identity_angles ~eps:1e-10 (theta, phi, lam) then []
  else [ (Gate.U (theta, phi, lam), [ q ]) ]

(* Core circuits: entangling skeletons whose canonical coordinates equal the
   target's; the single-qubit dressing is recovered by a second KAK run
   (verified in tests/two_qubit synthesis roundtrip). *)
let core_for_class (x, y, z) = function
  | 1 -> [ (Gate.CX, [ 0; 1 ]) ]
  | 2 ->
      [
        (Gate.CX, [ 0; 1 ]);
        (Gate.RX (-2.0 *. x), [ 0 ]);
        (Gate.RZ (-2.0 *. y), [ 1 ]);
        (Gate.CX, [ 0; 1 ]);
      ]
  | 3 ->
      (* Vatan-Williams style: CX(1,0) . (Rz(t1) (x) Ry(t2)) . CX(0,1)
         . (I (x) Ry(t3)) . CX(1,0), with t1 = pi/2 + 2z, t2 = pi/2 - 2x,
         t3 = pi/2 - 2y (matrix order; emitted below in circuit order). *)
      let t1 = (pi /. 2.0) +. (2.0 *. z)
      and t2 = (pi /. 2.0) -. (2.0 *. x)
      and t3 = (pi /. 2.0) -. (2.0 *. y) in
      [
        (Gate.CX, [ 1; 0 ]);
        (Gate.RY t3, [ 1 ]);
        (Gate.CX, [ 0; 1 ]);
        (Gate.RZ t1, [ 0 ]);
        (Gate.RY t2, [ 1 ]);
        (Gate.CX, [ 1; 0 ]);
      ]
  | k -> invalid_arg (Printf.sprintf "Synth2q.core_for_class: %d" k)

let classify (x, y, z) =
  let eps = 1e-8 in
  let near a b = Float.abs (a -. b) < eps in
  if near x 0.0 && near y 0.0 && near z 0.0 then 0
  else if near x (pi /. 4.0) && near y 0.0 && near z 0.0 then 1
  else if near z 0.0 then 2
  else 3

let cnot_count u = Weyl.cnot_cost u

let c_kak = Qobs.counter "synth2q.kak_decompositions"

let synthesize u =
  Qobs.incr c_kak;
  let r = Weyl.decompose u in
  let cls = classify (r.x, r.y, r.z) in
  if cls = 0 then
    one_qubit_ops (Mat.mul r.k1l r.k2l) 0 @ one_qubit_ops (Mat.mul r.k1r r.k2r) 1
  else begin
    let core = core_for_class (r.x, r.y, r.z) cls in
    let v = ops_unitary 2 core in
    let rv = Weyl.decompose v in
    let close a b = Float.abs (a -. b) < 1e-6 in
    if not (close r.x rv.x && close r.y rv.y && close r.z rv.z) then
      invalid_arg
        (Printf.sprintf
           "Synth2q.synthesize: core mismatch (%.9f %.9f %.9f) vs (%.9f %.9f %.9f)"
           r.x r.y r.z rv.x rv.y rv.z);
    (* u = e^{i(phase_u - phase_v)} (k1 . c1^dag) v (c2^dag . k2) *)
    let left_l = Mat.mul r.k1l (Mat.adjoint rv.k1l) in
    let left_r = Mat.mul r.k1r (Mat.adjoint rv.k1r) in
    let right_l = Mat.mul (Mat.adjoint rv.k2l) r.k2l in
    let right_r = Mat.mul (Mat.adjoint rv.k2r) r.k2r in
    one_qubit_ops right_l 0 @ one_qubit_ops right_r 1 @ core
    @ one_qubit_ops left_l 0 @ one_qubit_ops left_r 1
  end
