open Qgate

(* Cancellation key: ops are interchangeable (cancellable in pairs / angle
   mergeable) when they are the same gate on the same qubits and share a
   commute set on EVERY wire they touch. *)
let group_key (an : Commutation.t) id (i : Qcircuit.Circuit.instr) =
  let sets = List.map (fun q -> (q, Commutation.set_index an ~wire:q ~op:id)) i.qubits in
  (Gate.name i.gate, i.qubits, sets)

let is_z_rotation = function Gate.RZ _ | Gate.P _ | Gate.Z | Gate.S | Gate.Sdg | Gate.T | Gate.Tdg -> true | _ -> false

let z_angle = function
  | Gate.RZ a -> a
  | Gate.P a -> a
  | Gate.Z -> Float.pi
  | Gate.S -> Float.pi /. 2.0
  | Gate.Sdg -> -.Float.pi /. 2.0
  | Gate.T -> Float.pi /. 4.0
  | Gate.Tdg -> -.Float.pi /. 4.0
  | _ -> invalid_arg "Cancellation.z_angle"

let two_pi = 2.0 *. Float.pi

let c_cancelled = Qobs.counter "cancellation.gates_cancelled"
let c_merged = Qobs.counter "cancellation.z_rotations_merged"
let c_rounds = Qobs.counter "cancellation.rounds"

let norm a =
  let a = Float.rem a two_pi in
  if a > Float.pi then a -. two_pi else if a <= -.Float.pi then a +. two_pi else a

let run c =
  let an = Commutation.analyze c in
  let instrs = Array.of_list (Qcircuit.Circuit.instrs c) in
  let n_ops = Array.length instrs in
  let drop = Array.make n_ops false in
  let replace : (int, Qcircuit.Circuit.instr) Hashtbl.t = Hashtbl.create 16 in
  (* group candidate ops *)
  let groups : (string * int list * (int * int) list, int list) Hashtbl.t =
    Hashtbl.create 64
  in
  let zgroups : ((int * int) list * int list, int list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun id (i : Qcircuit.Circuit.instr) ->
      if Gate.is_self_inverse i.gate && not (Gate.is_directive i.gate) then begin
        let k = group_key an id i in
        Hashtbl.replace groups k (id :: Option.value ~default:[] (Hashtbl.find_opt groups k))
      end
      else if is_z_rotation i.gate then begin
        let sets = List.map (fun q -> (q, Commutation.set_index an ~wire:q ~op:id)) i.qubits in
        let k = (sets, i.qubits) in
        Hashtbl.replace zgroups k (id :: Option.value ~default:[] (Hashtbl.find_opt zgroups k))
      end)
    instrs;
  (* self-inverse gates: cancel in pairs (keep one when odd count) *)
  Hashtbl.iter
    (fun _ ids ->
      let ids = List.sort compare ids in
      let k = List.length ids in
      if k >= 2 then begin
        let keep = k mod 2 in
        (* drop all but the last [keep] occurrences *)
        List.iteri (fun pos id -> if pos < k - keep then drop.(id) <- true) ids
      end)
    groups;
  (* z rotations: merge angles into the last op of the group *)
  Hashtbl.iter
    (fun _ ids ->
      let ids = List.sort compare ids in
      match List.rev ids with
      | last :: (_ :: _ as earlier_rev) ->
          Qobs.incr c_merged;
          let total =
            List.fold_left (fun acc id -> acc +. z_angle instrs.(id).Qcircuit.Circuit.gate) 0.0 ids
          in
          List.iter (fun id -> drop.(id) <- true) earlier_rev;
          let total = norm total in
          if Float.abs total < 1e-10 then drop.(last) <- true
          else
            Hashtbl.replace replace last
              { instrs.(last) with Qcircuit.Circuit.gate = Gate.RZ total }
      | _ -> ())
    zgroups;
  Qobs.add c_cancelled (Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 drop);
  let out = ref [] in
  Array.iteri
    (fun id i ->
      if not drop.(id) then
        out := (match Hashtbl.find_opt replace id with Some r -> r | None -> i) :: !out)
    instrs;
  Qcircuit.Circuit.create (Qcircuit.Circuit.n_qubits c) (List.rev !out)

let rec run_fixpoint ?(max_rounds = 5) c =
  if max_rounds = 0 then c
  else begin
    Qobs.incr c_rounds;
    let c' = run c in
    if Qcircuit.Circuit.size c' = Qcircuit.Circuit.size c then c'
    else run_fixpoint ~max_rounds:(max_rounds - 1) c'
  end
