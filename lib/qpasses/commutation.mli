(** Commutation analysis (Qiskit's CommutationAnalysis analog).

    For every wire, the ops touching that wire are grouped into maximal runs
    of pairwise-commuting instructions ("commute sets", Section IV-E of the
    paper).  Two instructions commute when their embedded unitaries commute
    on the union of their qubits; results of the pairwise check are cached
    per gate pair, in a per-domain cache (no lock).

    Observability: cache traffic is counted on the current {!Qobs}
    collector as [commutation.cache_lookups] / [cache_hits] /
    [cache_misses] (hits + misses = lookups), plus
    [commutation.uncached_evals] for [Unitary2] operands that bypass the
    cache. *)

type t

val analyze : Qcircuit.Circuit.t -> t

val sets_on_wire : t -> int -> int list list
(** [sets_on_wire t q] lists the commute sets on wire [q] in circuit order;
    each set is the list of instruction indices (circuit order). *)

val set_index : t -> wire:int -> op:int -> int
(** Index of the commute set holding instruction [op] on [wire].
    @raise Not_found if [op] does not touch [wire]. *)

val commute :
  Qgate.Gate.t * int list -> Qgate.Gate.t * int list -> bool
(** Pairwise commutation check between two instructions (exact, matrix
    based).  Instructions on disjoint qubits always commute. *)

val reset_cache : unit -> unit
(** Empty the calling domain's commutation cache.  The trial engine resets
    at the start of every traced trial so the cache counters above are a
    pure function of the trial's work, independent of domain reuse. *)
