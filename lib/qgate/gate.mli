(** The gate vocabulary of the compiler.

    Gates carry their parameters; the qubits they act on live in the circuit
    instruction ({!Qcircuit.Circuit.instr}).  The hardware basis used
    throughout the evaluation is IBM's {id, rz, sx, x, cx}, matching the
    paper (Section II-A). *)

type t =
  | Id
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | SX
  | SXdg
  | RX of float
  | RY of float
  | RZ of float
  | P of float  (** phase gate: diag(1, e^{i l}) *)
  | U of float * float * float  (** Qiskit u(theta, phi, lam) *)
  | CX
  | CY
  | CZ
  | CH
  | SWAP
  | CRX of float
  | CRY of float
  | CRZ of float
  | CP of float
  | RZZ of float
  | CCX
  | CCZ
  | CSWAP
  | MCX of int  (** [MCX k]: k controls, one target; k >= 3 *)
  | MCZ of int  (** [MCZ k]: k controls, phase flip on all-ones; k >= 3 *)
  | Unitary2 of Mathkit.Mat.t  (** opaque two-qubit block unitary (4x4) *)
  | Barrier of int
  | Measure

val arity : t -> int
(** Number of qubits the gate touches. *)

val name : t -> string
(** Lower-case mnemonic, OpenQASM style. *)

val pp : Format.formatter -> t -> unit

val add_signature : Buffer.t -> t -> unit
(** Append an exact binary signature of the gate: a constructor tag byte
    plus the bit patterns of every float parameter.  Injective (distinct
    gates produce distinct signatures, with no decimal rounding) and cheap;
    the memoization caches (commutation, Weyl cost) build their keys from
    it. *)

val is_two_qubit : t -> bool
(** Arity exactly 2 and a unitary (not barrier/measure). *)

val is_one_qubit : t -> bool

val is_directive : t -> bool
(** Barrier or measure: opaque to optimizations. *)

val is_self_inverse : t -> bool
(** Gates [g] with [g . g = I] up to global phase (H, X, Y, Z, CX, CY, CZ,
    SWAP, CCX, ...); used by commutative cancellation. *)

val inverse : t -> t
(** Circuit-level inverse.  @raise Invalid_argument for [Barrier]/[Measure]. *)

val equal : t -> t -> bool
(** Structural equality; unitary payloads compared numerically. *)

val in_basis : t -> bool
(** Membership in the hardware basis {Id, RZ, SX, X, CX} (plus directives). *)
