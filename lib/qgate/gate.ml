type t =
  | Id
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | SX
  | SXdg
  | RX of float
  | RY of float
  | RZ of float
  | P of float
  | U of float * float * float
  | CX
  | CY
  | CZ
  | CH
  | SWAP
  | CRX of float
  | CRY of float
  | CRZ of float
  | CP of float
  | RZZ of float
  | CCX
  | CCZ
  | CSWAP
  | MCX of int
  | MCZ of int
  | Unitary2 of Mathkit.Mat.t
  | Barrier of int
  | Measure

let arity = function
  | Id | X | Y | Z | H | S | Sdg | T | Tdg | SX | SXdg | RX _ | RY _ | RZ _ | P _ | U _ -> 1
  | CX | CY | CZ | CH | SWAP | CRX _ | CRY _ | CRZ _ | CP _ | RZZ _ | Unitary2 _ -> 2
  | CCX | CCZ | CSWAP -> 3
  | MCX k | MCZ k -> k + 1
  | Barrier n -> n
  | Measure -> 1

let name = function
  | Id -> "id"
  | X -> "x"
  | Y -> "y"
  | Z -> "z"
  | H -> "h"
  | S -> "s"
  | Sdg -> "sdg"
  | T -> "t"
  | Tdg -> "tdg"
  | SX -> "sx"
  | SXdg -> "sxdg"
  | RX _ -> "rx"
  | RY _ -> "ry"
  | RZ _ -> "rz"
  | P _ -> "p"
  | U _ -> "u"
  | CX -> "cx"
  | CY -> "cy"
  | CZ -> "cz"
  | CH -> "ch"
  | SWAP -> "swap"
  | CRX _ -> "crx"
  | CRY _ -> "cry"
  | CRZ _ -> "crz"
  | CP _ -> "cp"
  | RZZ _ -> "rzz"
  | CCX -> "ccx"
  | CCZ -> "ccz"
  | CSWAP -> "cswap"
  | MCX _ -> "mcx"
  | MCZ _ -> "mcz"
  | Unitary2 _ -> "unitary"
  | Barrier _ -> "barrier"
  | Measure -> "measure"

let pp ppf g =
  match g with
  | RX a | RY a | RZ a | P a | CRX a | CRY a | CRZ a | CP a | RZZ a ->
      Format.fprintf ppf "%s(%.4g)" (name g) a
  | U (t, p, l) -> Format.fprintf ppf "u(%.4g,%.4g,%.4g)" t p l
  | MCX k | MCZ k -> Format.fprintf ppf "%s%d" (name g) k
  | _ -> Format.pp_print_string ppf (name g)

(* Exact binary signature: one constructor tag byte plus the bit patterns
   of every parameter ([Int64.bits_of_float], so distinct gates always get
   distinct signatures — no decimal rounding).  Used as a memoization key
   component by the commutation and Weyl-cost caches, where it must be both
   injective and cheap (no [Format]). *)
let add_float_bits buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let add_signature buf g =
  let tag i = Buffer.add_char buf (Char.chr i) in
  match g with
  | Id -> tag 0
  | X -> tag 1
  | Y -> tag 2
  | Z -> tag 3
  | H -> tag 4
  | S -> tag 5
  | Sdg -> tag 6
  | T -> tag 7
  | Tdg -> tag 8
  | SX -> tag 9
  | SXdg -> tag 10
  | RX a -> tag 11; add_float_bits buf a
  | RY a -> tag 12; add_float_bits buf a
  | RZ a -> tag 13; add_float_bits buf a
  | P a -> tag 14; add_float_bits buf a
  | U (a, b, c) ->
      tag 15;
      add_float_bits buf a;
      add_float_bits buf b;
      add_float_bits buf c
  | CX -> tag 16
  | CY -> tag 17
  | CZ -> tag 18
  | CH -> tag 19
  | SWAP -> tag 20
  | CRX a -> tag 21; add_float_bits buf a
  | CRY a -> tag 22; add_float_bits buf a
  | CRZ a -> tag 23; add_float_bits buf a
  | CP a -> tag 24; add_float_bits buf a
  | RZZ a -> tag 25; add_float_bits buf a
  | CCX -> tag 26
  | CCZ -> tag 27
  | CSWAP -> tag 28
  | MCX k -> tag 29; Buffer.add_int32_le buf (Int32.of_int k)
  | MCZ k -> tag 30; Buffer.add_int32_le buf (Int32.of_int k)
  | Unitary2 m ->
      tag 31;
      let rows = Mathkit.Mat.rows m and cols = Mathkit.Mat.cols m in
      Buffer.add_char buf (Char.chr rows);
      Buffer.add_char buf (Char.chr cols);
      for r = 0 to rows - 1 do
        for c = 0 to cols - 1 do
          let v = Mathkit.Mat.get m r c in
          add_float_bits buf v.Complex.re;
          add_float_bits buf v.Complex.im
        done
      done
  | Barrier n -> tag 32; Buffer.add_int32_le buf (Int32.of_int n)
  | Measure -> tag 33

let is_directive = function Barrier _ | Measure -> true | _ -> false
let is_two_qubit g = (not (is_directive g)) && arity g = 2
let is_one_qubit g = (not (is_directive g)) && arity g = 1

let is_self_inverse = function
  | Id | X | Y | Z | H | CX | CY | CZ | CH | SWAP | CCX | CCZ | CSWAP -> true
  | MCX _ | MCZ _ -> true
  | SX -> false
  | _ -> false

let inverse = function
  | (Id | X | Y | Z | H | CX | CY | CZ | CH | SWAP | CCX | CCZ | CSWAP) as g -> g
  | (MCX _ | MCZ _) as g -> g
  | S -> Sdg
  | Sdg -> S
  | T -> Tdg
  | Tdg -> T
  | SX -> SXdg
  | SXdg -> SX
  | RX a -> RX (-.a)
  | RY a -> RY (-.a)
  | RZ a -> RZ (-.a)
  | P a -> P (-.a)
  | U (t, p, l) -> U (-.t, -.l, -.p)
  | CRX a -> CRX (-.a)
  | CRY a -> CRY (-.a)
  | CRZ a -> CRZ (-.a)
  | CP a -> CP (-.a)
  | RZZ a -> RZZ (-.a)
  | Unitary2 m -> Unitary2 (Mathkit.Mat.adjoint m)
  | Barrier _ | Measure -> invalid_arg "Gate.inverse: directive has no inverse"

let equal a b =
  match (a, b) with
  | Unitary2 m, Unitary2 n -> Mathkit.Mat.approx_equal m n
  | _ -> a = b

let in_basis = function
  | Id | RZ _ | SX | X | CX | Barrier _ | Measure -> true
  | _ -> false
