.PHONY: all build test fmt bench ci clean

all: build

build:
	dune build @all

test:
	dune runtest

# formatting is checked only where ocamlformat is available, so `make ci`
# stays runnable in minimal containers
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

bench:
	dune exec bench/main.exe -- --only trials

ci: build test fmt

clean:
	dune clean
