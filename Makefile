.PHONY: all build test coverage fmt bench profile ci clean

all: build

build:
	dune build @all

test:
	OCAMLRUNPARAM=b dune runtest

# needs bisect_ppx (opam install bisect_ppx); the instrumentation stanzas
# are inert without --instrument-with, so regular builds don't require it
coverage:
	mkdir -p _coverage
	OCAMLRUNPARAM=b BISECT_FILE=$(CURDIR)/_coverage/bisect \
		dune runtest --instrument-with bisect_ppx --force
	bisect-ppx-report summary --coverage-path _coverage

# formatting is checked only where ocamlformat is available, so `make ci`
# stays runnable in minimal containers
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

bench:
	dune exec bench/main.exe -- --only trials

# per-pass span/counter breakdown from the observability layer
profile:
	dune exec bench/main.exe -- --only profile

ci: build test fmt

clean:
	dune clean
