.PHONY: all build test coverage fmt lint bench profile regress gap matrix scaling verify metrics trend ci clean

all: build

build:
	dune build @all

test:
	OCAMLRUNPARAM=b dune runtest

# needs bisect_ppx (opam install bisect_ppx); the instrumentation stanzas
# are inert without --instrument-with, so regular builds don't require it
coverage:
	mkdir -p _coverage
	OCAMLRUNPARAM=b BISECT_FILE=$(CURDIR)/_coverage/bisect \
		dune runtest --instrument-with bisect_ppx --force
	bisect-ppx-report summary --coverage-path _coverage

# formatting is checked only where ocamlformat is available, so `make ci`
# stays runnable in minimal containers
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

# full static-analysis sweep: pass-contract validation, the
# commutation/savings audit, and the Qlint rule set over the example QASM
# programs and the whole qbench suite; diagnostics land in lint.jsonl
lint:
	dune exec bin/nassc_cli.exe -- check --suite --jsonl lint.jsonl examples/qasm/*.qasm

bench:
	dune exec bench/main.exe -- --only trials

# per-pass span/counter breakdown from the observability layer
profile:
	dune exec bench/main.exe -- --only profile

# benchmark regression gate: runs the quick suite, writes BENCH_<sha>.json
# and compares against bench/baselines/regress-quick.json (exit 1 on breach)
regress:
	dune exec bench/main.exe -- --regress --quick

# optimality-gap harness: certifies small corpus circuits with the exact
# oracle and tables the gap per router (sabre/nassc/astar/hybrid); writes
# a BENCH_<sha>-gap.json snapshot
gap:
	dune exec bench/main.exe -- --only gap --quick

# benchmark matrix: routers x topologies x circuit families with
# cx/swaps/depth-overhead/ESP columns; writes BENCH_<sha>-matrix.json and
# a rendered markdown table next to it (drop --quick for the full sweep)
matrix:
	dune exec bench/main.exe -- --only matrix --quick

# telemetry pass: the quick regression suite with the whole registry
# exported as an OpenMetrics page (metrics.txt, linted before writing) and
# one wide event JSON line per (circuit, router) row (wide.jsonl)
metrics:
	dune exec bench/main.exe -- --regress --quick --metrics metrics.txt \
		--wide-events wide.jsonl

# cross-run trend analysis: align every BENCH_*.json snapshot in the repo
# root by (suite, circuit, topology, router), compare the newest against
# the rolling median, write TREND_<sha>.md / TREND_<sha>.json
trend:
	dune exec bench/main.exe -- --only history --dir .

# streaming scaling matrix: gates/sec and peak RSS for 10^4..10^5-gate
# lazy streams over montreal/eagle/osprey through the O(window) engine;
# writes BENCH_<sha>-scaling.json and exits non-zero if any 100k-gate
# run's peak RSS exceeds 5x its 10k-gate counterpart (drop --quick for
# the full matrix with the million-gate rows)
scaling:
	dune exec bench/main.exe -- --only scaling --quick

# semantic verification: certify the whole routing-golden corpus with the
# symbolic equivalence checker (certificates land in certs.jsonl), then
# time the certifier up to device scale (BENCH_<sha>-verify.json)
verify:
	dune exec bin/nassc_cli.exe -- verify --corpus --jsonl certs.jsonl
	dune exec bench/main.exe -- --only verify

ci: build test fmt lint

clean:
	dune clean
