OPENQASM 2.0;
include "qelib1.inc";
// 4-qubit quantum Fourier transform with final reversal swaps.
qreg q[4];
h q[0];
cp(1.5707963267948966) q[1],q[0];
cp(0.7853981633974483) q[2],q[0];
cp(0.39269908169872414) q[3],q[0];
h q[1];
cp(1.5707963267948966) q[2],q[1];
cp(0.7853981633974483) q[3],q[1];
h q[2];
cp(1.5707963267948966) q[3],q[2];
h q[3];
swap q[0],q[3];
swap q[1],q[2];
