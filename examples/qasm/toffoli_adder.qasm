OPENQASM 2.0;
include "qelib1.inc";
// One-bit full adder out of Toffolis and CNOTs: tests 3q lowering
// (ccx must be decomposed before routing) plus mixed 1q rotations.
qreg q[4];
x q[0];
rz(0.25) q[1];
ccx q[0],q[1],q[3];
cx q[0],q[1];
ccx q[1],q[2],q[3];
cx q[1],q[2];
cx q[0],q[1];
h q[2];
t q[3];
barrier q[0],q[1],q[2],q[3];
measure q[2] -> c[0];
