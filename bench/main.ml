(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (Section VI).  See DESIGN.md for the experiment index. *)

let usage () =
  print_endline
    "usage: bench/main.exe [--only EXP] [--seeds N] [--shots N] [--full] [--timing]\n\
     \       bench/main.exe --regress [--quick] [--baseline FILE] [--out FILE]\n\
     \                      [--max-cx-regress PCT] [--max-depth-regress PCT]\n\
     \                      [--metrics FILE] [--wide-events FILE]\n\
     \       bench/main.exe --only history [--dir DIR] [--out BASE] [--window N]\n\
     \       bench/main.exe --only scaling [--quick] [--out FILE]\n\
     EXP: table1 table2 table3 table4 fig9 fig11a fig11b routers trials\n\
     \     gap matrix verify profile score timing history scaling ablate-decomp\n\
     \     ablate-lookahead all  (gap/matrix/verify/scaling are opt-in only)\n\
     --seeds N   routing seeds per benchmark (default 5; heavy circuits capped at 3)\n\
     --shots N   Monte-Carlo shots for fig11b (default 2048; paper used 8192)\n\
     --full      run heavy (RevLib-scale) benchmarks everywhere (default: tables only)\n\
     --timing    run the transpilation-latency micro-benchmarks (= --only timing)\n\
     --regress   run the regression suite, write BENCH_<git-sha>.json, compare\n\
     \            against the checked-in baseline and exit non-zero on regression\n\
     --quick     with --regress (six-circuit CI subset) or --only scaling (<= 10^5 gates)\n\
     --baseline FILE        baseline snapshot (default bench/baselines/regress-<suite>.json)\n\
     --out FILE             where to write the snapshot (default BENCH_<git-sha>.json)\n\
     --max-cx-regress PCT   allowed cx_total growth in percent (default 2.0)\n\
     --max-depth-regress PCT allowed depth growth in percent (default 5.0)\n\
     --metrics FILE         with --regress: export the whole suite's observability\n\
     \            registry as a Prometheus/OpenMetrics text page\n\
     --wide-events FILE     with --regress: append one wide event JSON line per\n\
     \            (circuit, router) row\n\
     --dir DIR   with --only history: where to look for BENCH_*.json (default .)\n\
     --window N  with --only history: rolling-median window (default 5)"

let () =
  let only = ref "all" in
  let seeds = ref 5 in
  let shots = ref 2048 in
  let full = ref false in
  let timing = ref false in
  let regress = ref false in
  let quick = ref false in
  let baseline = ref None in
  let out = ref None in
  let max_cx = ref 2.0 in
  let max_depth = ref 5.0 in
  let metrics = ref None in
  let wide_events = ref None in
  let dir = ref "." in
  let window = ref 5 in
  let rec parse = function
    | [] -> ()
    | "--only" :: v :: rest ->
        only := v;
        parse rest
    | "--seeds" :: v :: rest ->
        seeds := int_of_string v;
        parse rest
    | "--shots" :: v :: rest ->
        shots := int_of_string v;
        parse rest
    | "--full" :: rest ->
        full := true;
        parse rest
    | "--timing" :: rest ->
        timing := true;
        parse rest
    | "--regress" :: rest ->
        regress := true;
        parse rest
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--baseline" :: v :: rest ->
        baseline := Some v;
        parse rest
    | "--out" :: v :: rest ->
        out := Some v;
        parse rest
    | "--max-cx-regress" :: v :: rest ->
        max_cx := float_of_string v;
        parse rest
    | "--max-depth-regress" :: v :: rest ->
        max_depth := float_of_string v;
        parse rest
    | "--metrics" :: v :: rest ->
        metrics := Some v;
        parse rest
    | "--wide-events" :: v :: rest ->
        wide_events := Some v;
        parse rest
    | "--dir" :: v :: rest ->
        dir := v;
        parse rest
    | "--window" :: v :: rest ->
        window := int_of_string v;
        parse rest
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | x :: _ ->
        Printf.eprintf "unknown argument %s\n" x;
        usage ();
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !regress then
    exit
      (Regress.run ?metrics:!metrics ?wide_events:!wide_events ~quick:!quick
         ~baseline:!baseline ~out:!out ~max_cx:!max_cx ~max_depth:!max_depth ~seed:11
         ~trials:1 ())
  else if !only = "history" then exit (History.run ~dir:!dir ~out:!out ~window:!window ())
  else if !timing || !only = "timing" then Timing.run ()
  else begin
    let seeds = !seeds in
    let quick_tables = false in
    let want x = !only = "all" || !only = x in
    if want "table1" then Tables.table1 ~seeds ~quick:quick_tables ();
    if want "table2" then Tables.table2 ~seeds ~quick:quick_tables ();
    if want "table3" then Tables.table3 ~seeds ~quick:quick_tables ();
    if want "table4" then Tables.table4 ~seeds ~quick:quick_tables ();
    (* figure 9 runs 8 router configurations per benchmark: restrict to the
       non-heavy suite unless --full *)
    if want "fig9" then Fig9.run ~seeds ~quick:(not !full) ();
    if want "fig11a" then Fig11.cnot_counts ~seeds ();
    if want "fig11b" then Fig11.success_rates ~shots:!shots ();
    if want "routers" then Routers.run ~seeds ();
    if want "trials" then Trials_sweep.run ~seed:11 ();
    (* the gap harness certifies optima with an exact solver: opt-in only *)
    if !only = "gap" then Gap.run ~quick:!quick ~out:!out ();
    (* routers x topologies x families comparison matrix: opt-in only *)
    if !only = "matrix" then Matrix.run ~quick:!quick ~out:!out ();
    (* symbolic-verification throughput up to device scale: opt-in only *)
    if !only = "verify" then Verify.run ~out:!out ();
    if !only = "profile" then Profile.run ();
    if !only = "score" then Scorebench.run ?out:!out ();
    (* streaming throughput/RSS matrix up to 433q and 10^6 gates: opt-in
       only, and the RSS gate makes it exit non-zero on a memory blow-up *)
    if !only = "scaling" then exit (Scaling.run ~quick:!quick ?out:!out ~seed:11 ());
    if want "ablate-decomp" then Ablations.ablate_decomposition ~seeds ();
    if want "ablate-lookahead" then Ablations.ablate_lookahead ~seeds ()
  end
