(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (Section VI).  See DESIGN.md for the experiment index. *)

let usage () =
  print_endline
    "usage: bench/main.exe [--only EXP] [--seeds N] [--shots N] [--full] [--timing]\n\
     EXP: table1 table2 table3 table4 fig9 fig11a fig11b routers trials scaling\n\
     \     profile ablate-decomp ablate-lookahead all\n\
     --seeds N   routing seeds per benchmark (default 5; heavy circuits capped at 3)\n\
     --shots N   Monte-Carlo shots for fig11b (default 2048; paper used 8192)\n\
     --full      run heavy (RevLib-scale) benchmarks everywhere (default: tables only)\n\
     --timing    run the Bechamel transpilation-latency micro-benchmarks"

let () =
  let only = ref "all" in
  let seeds = ref 5 in
  let shots = ref 2048 in
  let full = ref false in
  let timing = ref false in
  let rec parse = function
    | [] -> ()
    | "--only" :: v :: rest ->
        only := v;
        parse rest
    | "--seeds" :: v :: rest ->
        seeds := int_of_string v;
        parse rest
    | "--shots" :: v :: rest ->
        shots := int_of_string v;
        parse rest
    | "--full" :: rest ->
        full := true;
        parse rest
    | "--timing" :: rest ->
        timing := true;
        parse rest
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | x :: _ ->
        Printf.eprintf "unknown argument %s\n" x;
        usage ();
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !timing then Timing.run ()
  else begin
    let seeds = !seeds in
    let quick_tables = false in
    let want x = !only = "all" || !only = x in
    if want "table1" then Tables.table1 ~seeds ~quick:quick_tables ();
    if want "table2" then Tables.table2 ~seeds ~quick:quick_tables ();
    if want "table3" then Tables.table3 ~seeds ~quick:quick_tables ();
    if want "table4" then Tables.table4 ~seeds ~quick:quick_tables ();
    (* figure 9 runs 8 router configurations per benchmark: restrict to the
       non-heavy suite unless --full *)
    if want "fig9" then Fig9.run ~seeds ~quick:(not !full) ();
    if want "fig11a" then Fig11.cnot_counts ~seeds ();
    if want "fig11b" then Fig11.success_rates ~shots:!shots ();
    if want "routers" then Routers.run ~seeds ();
    if want "trials" then Trials_sweep.run ~seed:11 ();
    if !only = "profile" then Profile.run ();
    if want "scaling" then Scaling.run ~seeds ();
    if want "ablate-decomp" then Ablations.ablate_decomposition ~seeds ();
    if want "ablate-lookahead" then Ablations.ablate_lookahead ~seeds ()
  end
