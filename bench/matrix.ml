(* `bench --only matrix [--quick] [--out FILE]`: the routers x topologies x
   circuit-families comparison harness (see Qbench.Matrix).  Prints the
   markdown table, then writes the schema-versioned BENCH_<sha>-matrix.json
   snapshot plus the same table as BENCH_<sha>-matrix.md; both are pure
   functions of the seed, so CI can diff them across commits. *)

let run ~quick ~out () =
  let suite = if quick then "quick" else "full" in
  let seed = Qbench.Matrix.default_seed in
  let trials = Qbench.Matrix.default_trials in
  Printf.printf "=== bench --only matrix (%s suite, seed %d, trials %d) ===\n%!" suite
    seed trials;
  let instances = Qbench.Matrix.instances ~quick in
  let topologies =
    if quick then Qbench.Matrix.quick_topologies () else Qbench.Matrix.full_topologies ()
  in
  let obs_root = Qobs.Collector.create ~label:"matrix" () in
  let cells =
    Qobs.with_collector obs_root (fun () ->
        Qbench.Matrix.run ~seed ~trials ~instances ~topologies ())
  in
  print_string (Qbench.Matrix.markdown cells);
  let trace = Qobs.Trace.of_root obs_root in
  Printf.printf "\n%d cells (%d families x %d topologies x %d routers; %d esp \
                 evaluations, %d skipped)\n"
    (Qobs.Trace.counter_total trace "matrix.cells")
    (List.length
       (List.sort_uniq compare
          (List.map (fun (i : Qbench.Matrix.instance) -> i.family) instances)))
    (List.length topologies)
    (List.length Qbench.Matrix.routers)
    (Qobs.Trace.counter_total trace "matrix.esp_evals")
    (Qobs.Trace.counter_total trace "matrix.cells_skipped");
  let sha = Regress.git_short_sha () in
  let out_file =
    match out with Some f -> f | None -> Printf.sprintf "BENCH_%s-matrix.json" sha
  in
  let json = Qbench.Matrix.to_json ~git_sha:sha ~suite ~seed ~trials cells in
  let oc = open_out out_file in
  output_string oc (Qbench.Jsonlite.serialize ~indent:2 json);
  output_string oc "\n";
  close_out oc;
  let md_file = Filename.remove_extension out_file ^ ".md" in
  let oc = open_out md_file in
  output_string oc (Qbench.Matrix.markdown cells);
  close_out oc;
  Printf.printf "snapshot: %s\ntable: %s\n" out_file md_file
