(* Benchmark regression harness: run the fig9/tables circuits, write a
   schema-versioned BENCH_<git-sha>.json snapshot (per-circuit CNOT counts,
   depth, wall/cpu time, flight-recorder summary stats), and compare it
   against a checked-in baseline with configurable thresholds.  `bench
   --regress` exits non-zero on any breach, which is what the CI
   bench-regress job keys off. *)

let schema_version = 2
let kind = "nassc-bench-regress"

let routers =
  [
    ("sabre", Qroute.Pipeline.Sabre_router);
    ("nassc", Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config);
    (* hybrid rows are newer than the checked-in baseline; compare_baseline
       tolerates missing baseline entries ("new"), so adding the router
       needs no schema bump and no baseline regeneration *)
    ("hybrid", Qroute.Pipeline.Hybrid_router Qroute.Hybrid.default_config);
  ]

let git_short_sha () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "local"
  with _ -> "local"

type row = {
  name : string;
  router : string;
  n_qubits : int;
  cx_total : int;
  depth : int;
  n_swaps : int;
  wall_s : float;
  cpu_s : float;
  route_wall_s : float;  (** summed [trial.route] span wall time *)
  score_cache_hits : int;
  weyl_cache_hits : int;
  weyl_cache_misses : int;
  rec_totals : Qobs.Recorder.totals;
}

(* total wall time spent under spans named [name], across the root
   collector and every merged per-trial child *)
let span_wall root name =
  let rec sum c =
    List.fold_left
      (fun acc (s : Qobs.Collector.span_rec) ->
        if s.sp_name = name then acc +. s.sp_wall else acc)
      (List.fold_left (fun acc ch -> acc +. sum ch) 0.0 (Qobs.Collector.children c))
      (Qobs.Collector.spans c)
  in
  sum root

let counter_total = Qobs.Trace.counter_total

let run_suite ?session ?wide ~quick ~seed ~trials () =
  let coupling = Topology.Devices.montreal in
  let params = { Qroute.Engine.default_params with seed } in
  let entries = Qbench.Suite.regress_suite ~quick in
  List.concat_map
    (fun (e : Qbench.Suite.entry) ->
      let circuit = e.build () in
      List.map
        (fun (rname, router) ->
          Printf.printf "  %-22s %-6s ...%!" e.name rname;
          let rec_root = Qobs.Recorder.create ~label:"regress" () in
          let obs_root = Qobs.Collector.create ~label:"regress" () in
          let r =
            Qobs.with_collector obs_root (fun () ->
                Qobs.Recorder.with_recorder rec_root (fun () ->
                    Qroute.Pipeline.transpile ~params ~trials ~router coupling circuit))
          in
          let route_wall_s = span_wall obs_root "trial.route" in
          let trace = Qobs.Trace.of_root obs_root in
          (* per-job telemetry: one wide event per (circuit, router) row,
             and the row's collector merged under the session root so
             --metrics exposes the whole suite as one registry *)
          (match wide with
          | None -> ()
          | Some buf ->
              let ev =
                Qtel.Wideevent.build ~label:e.name ~router:rname ~topology:"montreal"
                  ~trials ~seed ~original:circuit ~trace
                  ~recorder:(Qobs.Recorder.totals rec_root) ~result:r ()
              in
              Buffer.add_string buf (Qtel.Wideevent.to_json ev);
              Buffer.add_char buf '\n');
          Option.iter (fun s -> Qobs.Collector.add_child s obs_root) session;
          Printf.printf " cx=%d depth=%d swaps=%d (%.2fs, route %.3fs)\n%!" r.cx_total
            r.depth r.n_swaps r.transpile_time route_wall_s;
          {
            name = e.name;
            router = rname;
            n_qubits = e.n_qubits;
            cx_total = r.cx_total;
            depth = r.depth;
            n_swaps = r.n_swaps;
            wall_s = r.transpile_time;
            cpu_s = r.cpu_time;
            route_wall_s;
            score_cache_hits = counter_total trace "engine.score_cache_hits";
            weyl_cache_hits = counter_total trace "nassc.weyl_cache_hits";
            weyl_cache_misses = counter_total trace "nassc.weyl_cache_misses";
            rec_totals = Qobs.Recorder.totals rec_root;
          })
        routers)
    entries

(* ---- snapshot writer (hand-rolled; keys in fixed order) ---- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let snapshot ~suite ~seed ~trials rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"schema_version\": %d,\n  \"kind\": \"%s\",\n  \"git_sha\": \"%s\",\n\
       \  \"suite\": \"%s\",\n  \"seed\": %d,\n  \"trials\": %d,\n\
       \  \"topology\": \"montreal\",\n  \"circuits\": [\n"
       schema_version kind (json_escape (git_short_sha ())) suite seed trials);
  List.iteri
    (fun i r ->
      let t = r.rec_totals in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"router\": \"%s\", \"n_qubits\": %d, \"cx_total\": \
            %d, \"depth\": %d, \"n_swaps\": %d, \"wall_s\": %.4f, \"cpu_s\": %.4f, \
            \"route_wall_s\": %.4f, \"score_cache_hits\": %d, \"weyl_cache_hits\": %d, \
            \"weyl_cache_misses\": %d, \
            \"recorder\": {\"steps\": %d, \"candidates\": %d, \"forced\": %d, \
            \"predicted_savings\": %.1f, \"realized_savings\": %d, \"chosen_c2q\": %d, \
            \"chosen_commute1\": %d, \"chosen_commute2\": %d}}%s\n"
           (json_escape r.name) r.router r.n_qubits r.cx_total r.depth r.n_swaps r.wall_s
           r.cpu_s r.route_wall_s r.score_cache_hits r.weyl_cache_hits
           r.weyl_cache_misses t.Qobs.Recorder.steps t.candidates t.forced t.predicted
           t.realized t.chosen_c2q t.chosen_commute1 t.chosen_commute2
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* ---- baseline comparison ---- *)

type breach = { what : string; base : int; cur : int; pct : float; limit : float }

let pct_delta base cur =
  if base = 0 then if cur = 0 then 0.0 else infinity
  else 100.0 *. float_of_int (cur - base) /. float_of_int base

let compare_baseline ~max_cx ~max_depth ~rows json =
  let open Qbench.Jsonlite in
  let fail m =
    Printf.eprintf "regress: bad baseline: %s\n" m;
    exit 2
  in
  let ver =
    match Option.bind (member "schema_version" json) to_int with
    | Some v -> v
    | None -> fail "missing schema_version"
  in
  if ver <> schema_version then
    fail
      (Printf.sprintf
         "schema_version %d does not match harness version %d; regenerate the baseline \
          with `bench --regress --out <baseline>`"
         ver schema_version);
  let base_rows =
    match Option.bind (member "circuits" json) to_list with
    | Some l -> l
    | None -> fail "missing circuits array"
  in
  let lookup name router =
    List.find_opt
      (fun c ->
        Option.bind (member "name" c) to_string = Some name
        && Option.bind (member "router" c) to_string = Some router)
      base_rows
  in
  let breaches = ref [] in
  let missing = ref 0 in
  List.iter
    (fun r ->
      match lookup r.name r.router with
      | None ->
          incr missing;
          Printf.printf "  %-22s %-6s new (no baseline entry)\n" r.name r.router
      | Some c ->
          let metric what limit base cur =
            let pct = pct_delta base cur in
            let mark =
              if pct > limit then begin
                breaches := { what; base; cur; pct; limit } :: !breaches;
                "REGRESSION"
              end
              else if pct < 0.0 then "improved"
              else "ok"
            in
            Printf.printf "  %-22s %-6s %-6s %6d -> %6d (%+.1f%%, limit +%.1f%%) %s\n"
              r.name r.router what base cur pct limit mark
          in
          let base_of key =
            match Option.bind (member key c) to_int with
            | Some v -> v
            | None -> fail (Printf.sprintf "baseline row missing %s" key)
          in
          metric "cx" max_cx (base_of "cx_total") r.cx_total;
          metric "depth" max_depth (base_of "depth") r.depth)
    rows;
  (List.rev !breaches, !missing)

let run ?metrics ?wide_events ~quick ~baseline ~out ~max_cx ~max_depth ~seed ~trials () =
  let suite = if quick then "quick" else "full" in
  Printf.printf "=== bench --regress (%s suite, montreal, seed %d, trials %d) ===\n%!"
    suite seed trials;
  if metrics <> None then Qobs.set_extended_metrics true;
  let session =
    match metrics with
    | None -> None
    | Some _ -> Some (Qobs.Collector.create ~label:"bench" ())
  in
  let wide = Option.map (fun _ -> Buffer.create 4096) wide_events in
  let rows = run_suite ?session ?wide ~quick ~seed ~trials () in
  (* telemetry artifacts are written before the baseline gate so a
     regression failure still leaves the evidence on disk *)
  (match (metrics, session) with
  | Some file, Some root ->
      let page = Qtel.Expose.to_string (Qobs.Trace.of_root root) in
      List.iter
        (fun (e : Qtel.Promlint.error) ->
          Printf.eprintf "regress: metrics lint: line %d: %s\n" e.line e.msg)
        (Qtel.Promlint.lint page);
      let oc = open_out file in
      output_string oc page;
      close_out oc;
      Printf.printf "metrics: %s\n" file
  | _ -> ());
  (match (wide_events, wide) with
  | Some file, Some buf ->
      let oc = open_out file in
      Buffer.output_buffer oc buf;
      close_out oc;
      Printf.printf "wide events: %s\n" file
  | _ -> ());
  let out_file =
    match out with Some f -> f | None -> Printf.sprintf "BENCH_%s.json" (git_short_sha ())
  in
  let oc = open_out out_file in
  output_string oc (snapshot ~suite ~seed ~trials rows);
  close_out oc;
  Printf.printf "snapshot: %s\n" out_file;
  let baseline_file =
    match baseline with
    | Some f -> Some f
    | None ->
        let default = Printf.sprintf "bench/baselines/regress-%s.json" suite in
        if Sys.file_exists default then Some default else None
  in
  match baseline_file with
  | None ->
      Printf.printf
        "no baseline found (bench/baselines/regress-%s.json); copy the snapshot there to \
         seed one\n"
        suite;
      0
  | Some file ->
      if not (Sys.file_exists file) then begin
        Printf.eprintf "regress: baseline %s does not exist\n" file;
        2
      end
      else begin
        Printf.printf "baseline: %s\n" file;
        let json =
          let ic = open_in_bin file in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          try Qbench.Jsonlite.of_string s
          with Qbench.Jsonlite.Parse_error m ->
            Printf.eprintf "regress: cannot parse %s: %s\n" file m;
            exit 2
        in
        let breaches, _missing = compare_baseline ~max_cx ~max_depth ~rows json in
        if breaches = [] then begin
          Printf.printf "regress: OK (%d rows within thresholds: cx +%.1f%%, depth +%.1f%%)\n"
            (List.length rows) max_cx max_depth;
          0
        end
        else begin
          Printf.printf "regress: FAILED (%d metric(s) over threshold)\n"
            (List.length breaches);
          1
        end
      end
