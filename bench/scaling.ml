(* Scaling experiment v2: streaming throughput and memory on mega-scale
   devices.  Each run pulls a 10^4..10^6-gate lazy stream (deep QFT, QV
   brickwork, random-density) through Pipeline.transpile_stream on
   montreal/eagle/osprey, measuring gates/sec and per-run peak RSS with
   Qtel.Sampler.  The memory gate — peak RSS at 10^5 gates must stay
   within 5x the 10^4-gate run of the same (device, family, router) —
   is what makes the O(window) claim a CI invariant rather than a code
   comment.  Rows land in a schema-versioned BENCH_<sha>-scaling.json
   snapshot (kind nassc-bench-scaling) that Qtel.Trend ingests alongside
   the regress snapshots. *)

let schema_version = 1
let kind = "nassc-bench-scaling"
let window = 4096
let rss_gate_factor = 5.0

type spec = { device : string; family : string; router : string; gates : int }

type row = {
  spec : spec;
  gates_in : int;
  gates_out : int;
  cx_total : int;
  depth : int;
  n_swaps : int;
  wall_s : float;
  gates_per_s : float;
  peak_rss_kb : int;
  peak_resident : int;
}

let size_label g =
  if g >= 1_000_000 then Printf.sprintf "%dM" (g / 1_000_000)
  else if g >= 1_000 then Printf.sprintf "%dk" (g / 1_000)
  else string_of_int g

let row_name s = Printf.sprintf "%s/%s" s.family (size_label s.gates)

let coupling_of = function
  | "montreal" -> Topology.Devices.montreal
  | "eagle" -> Topology.Devices.eagle ()
  | "osprey" -> Topology.Devices.osprey ()
  | d -> invalid_arg ("scaling: unknown device " ^ d)

let router_of = function
  | "sabre" -> Qroute.Pipeline.Sabre_router
  | "nassc" -> Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config
  | r -> invalid_arg ("scaling: unknown router " ^ r)

(* gate-budget-matched lazy sources; each family sizes its repetition
   parameter so the pre-lowering instruction count is ~spec.gates *)
let source_of ~n spec =
  match spec.family with
  | "deep-qft" ->
      let per_rep = n + (n * (n - 1) / 2) in
      Qbench.Generators.qft_stream ~reps:(max 1 ((spec.gates + per_rep - 1) / per_rep)) n
  | "qv" ->
      let per_layer = 8 * (n / 2) in
      Qbench.Generators.qv_stream ~seed:11
        ~depth:(max 1 ((spec.gates + per_layer - 1) / per_layer))
        n
  | "random-density" ->
      Qbench.Generators.random_density_stream ~seed:11 ~gates:spec.gates ~density:0.5 n
  | f -> invalid_arg ("scaling: unknown family " ^ f)

(* The run matrix.  Sizes ascend within each (device, family, router) so
   the RSS gate compares a later, larger run against an earlier, smaller
   one — the pessimistic ordering for the gate, since RSS only ever
   ratchets up within a process.  The quick subset (<= 10^5 gates, the CI
   budget) keeps every device but trims eagle/osprey to the families that
   exercise them differently; --full runs the whole matrix plus two
   million-gate rows. *)
let specs ~quick =
  let s device family router gates = { device; family; router; gates } in
  let pair device family router = [ s device family router 10_000; s device family router 100_000 ] in
  let base =
    pair "montreal" "deep-qft" "sabre"
    @ pair "montreal" "qv" "sabre"
    @ pair "montreal" "random-density" "sabre"
    @ pair "eagle" "deep-qft" "sabre"
    @ pair "eagle" "random-density" "sabre"
    @ pair "osprey" "random-density" "sabre"
    @ [ s "montreal" "random-density" "nassc" 10_000 ]
  in
  if quick then base
  else
    base
    @ pair "eagle" "qv" "sabre"
    @ pair "osprey" "deep-qft" "sabre"
    @ pair "osprey" "qv" "sabre"
    @ [
        s "eagle" "random-density" "nassc" 10_000;
        s "eagle" "deep-qft" "sabre" 1_000_000;
        s "osprey" "random-density" "sabre" 1_000_000;
      ]

(* per-run peak RSS: max of the *sampled* VmRSS values, not VmHWM (the
   process-lifetime high-water mark, which would make every run inherit
   its predecessors' peak).  Falls back to the sampled OCaml heap size
   where procfs is unavailable. *)
let peak_sampled_rss_kb samples =
  let word_kb w = w * (Sys.word_size / 8) / 1024 in
  List.fold_left
    (fun acc (s : Qtel.Sampler.sample) ->
      max acc (if s.rss_kb > 0 then s.rss_kb else word_kb s.heap_words))
    0 samples

let run_one ~seed spec =
  let coupling = coupling_of spec.device in
  let n = Topology.Coupling.n_qubits coupling in
  let source = source_of ~n spec in
  let params = { Qroute.Engine.default_params with seed } in
  let router = router_of spec.router in
  Printf.printf "  %-10s %-20s %-6s %6s ...%!" spec.device (row_name spec) spec.router
    (size_label spec.gates);
  (* start each run from a settled heap so its sampled RSS reflects the
     run, not the previous run's garbage *)
  Gc.compact ();
  let sampler = Qtel.Sampler.start ~interval_ms:5.0 ~capacity:65_536 () in
  let t0 = Unix.gettimeofday () in
  let r = Qroute.Pipeline.transpile_stream ~params ~window ~router ~sink:ignore coupling source in
  let wall_s = Unix.gettimeofday () -. t0 in
  let peak_rss_kb =
    match sampler with
    | None -> 0
    | Some s ->
        Qtel.Sampler.stop s;
        peak_sampled_rss_kb (Qtel.Sampler.samples s)
  in
  let open Qroute.Pipeline in
  let gates_per_s = float_of_int r.sr_gates_in /. Float.max wall_s 1e-9 in
  Printf.printf " %7d gates %8.0f g/s rss %6d kB resident<=%d (%.1fs)\n%!" r.sr_gates_in
    gates_per_s peak_rss_kb r.sr_peak_resident wall_s;
  {
    spec;
    gates_in = r.sr_gates_in;
    gates_out = r.sr_gates_out;
    cx_total = r.sr_cx_out;
    depth = r.sr_depth_out;
    n_swaps = r.sr_n_swaps;
    wall_s;
    gates_per_s;
    peak_rss_kb;
    peak_resident = r.sr_peak_resident;
  }

(* ---- the memory gate ---- *)

let check_rss_gate rows =
  let find device family router gates =
    List.find_opt
      (fun r ->
        r.spec.device = device && r.spec.family = family && r.spec.router = router
        && r.spec.gates = gates)
      rows
  in
  let violations = ref 0 in
  List.iter
    (fun r ->
      if r.spec.gates = 100_000 then
        match find r.spec.device r.spec.family r.spec.router 10_000 with
        | None -> ()
        | Some small when small.peak_rss_kb > 0 && r.peak_rss_kb > 0 ->
            let ratio = float_of_int r.peak_rss_kb /. float_of_int small.peak_rss_kb in
            let ok = ratio <= rss_gate_factor in
            Printf.printf "  rss gate %-10s %-16s %-6s 10k=%d kB 100k=%d kB (%.2fx <= %.0fx) %s\n"
              r.spec.device r.spec.family r.spec.router small.peak_rss_kb r.peak_rss_kb
              ratio rss_gate_factor
              (if ok then "ok" else "VIOLATION");
            if not ok then incr violations
        | Some _ ->
            Printf.printf "  rss gate %-10s %-16s %-6s skipped (no RSS samples)\n"
              r.spec.device r.spec.family r.spec.router)
    rows;
  !violations

(* ---- snapshot writer (same dialect as Regress; Trend reads both) ---- *)

let git_short_sha () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "local"
  with _ -> "local"

let snapshot ~suite ~seed rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"schema_version\": %d,\n  \"kind\": \"%s\",\n  \"git_sha\": \"%s\",\n\
       \  \"suite\": \"%s\",\n  \"seed\": %d,\n  \"window\": %d,\n  \"circuits\": [\n"
       schema_version kind (git_short_sha ()) suite seed window);
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"topology\": \"%s\", \"router\": \"%s\", \
            \"gates_requested\": %d, \"gates_in\": %d, \"gates_out\": %d, \"cx_total\": \
            %d, \"depth\": %d, \"n_swaps\": %d, \"wall_s\": %.4f, \"gates_per_s\": %.1f, \
            \"peak_rss_kb\": %d, \"peak_resident\": %d}%s\n"
           (row_name r.spec) r.spec.device r.spec.router r.spec.gates r.gates_in
           r.gates_out r.cx_total r.depth r.n_swaps r.wall_s r.gates_per_s r.peak_rss_kb
           r.peak_resident
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let run ?(quick = false) ?out ~seed () =
  let suite = if quick then "quick" else "full" in
  Printf.printf
    "=== bench --only scaling (%s suite, window %d, seed %d): streaming gates/sec and \
     peak RSS ===\n\
     %!"
    suite window seed;
  let was_enabled = Qtel.Sampler.enabled () in
  Qtel.Sampler.set_enabled true;
  let rows = List.map (run_one ~seed) (specs ~quick) in
  Qtel.Sampler.set_enabled was_enabled;
  let violations = check_rss_gate rows in
  let out_file =
    match out with
    | Some f -> f
    | None -> Printf.sprintf "BENCH_%s-scaling.json" (git_short_sha ())
  in
  let oc = open_out out_file in
  output_string oc (snapshot ~suite ~seed rows);
  close_out oc;
  Printf.printf "snapshot: %s\n" out_file;
  if violations > 0 then begin
    Printf.printf "scaling: FAILED (%d peak-RSS ratio(s) over %.0fx)\n" violations
      rss_gate_factor;
    1
  end
  else begin
    Printf.printf "scaling: OK (%d rows; 100k-gate peak RSS within %.0fx of 10k)\n"
      (List.length rows) rss_gate_factor;
    0
  end
