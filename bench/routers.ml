(* Extra experiment: all routers side by side (SABRE, NASSC, the
   Zulehner-style A* baseline from the paper's related work, and the
   hybrid windowed-exact router), montreal. *)

let run ~seeds () =
  let coupling = Topology.Devices.montreal in
  Printf.printf "=== Router comparison (added CNOTs, ibmq_montreal) ===\n";
  Printf.printf "%-22s %10s %10s %10s %10s\n" "name" "A*-layers" "SABRE" "NASSC" "Hybrid";
  Printf.printf "%s\n" (String.make 67 '-');
  List.iter
    (fun (e : Qbench.Suite.entry) ->
      let circuit = e.build () in
      let seed_list = Runs.seeds_for ~seeds e in
      let base =
        Runs.run_router ~seeds:[ 1 ] ~coupling ~router:Qroute.Pipeline.Full_connectivity
          circuit
      in
      let add router =
        (Runs.run_router ~seeds:seed_list ~coupling ~router circuit).cx -. base.cx
      in
      Printf.printf "%-22s %10.1f %10.1f %10.1f %10.1f\n%!" e.name
        (add Qroute.Pipeline.Astar_router)
        (add Qroute.Pipeline.Sabre_router)
        (add (Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config))
        (add (Qroute.Pipeline.Hybrid_router Qroute.Hybrid.default_config)))
    Qbench.Suite.small_suite;
  print_newline ()
