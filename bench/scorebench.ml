(* Candidate-scoring microbenchmark (`bench --only score`): throughput of
   the routing hot loop (steps/s, candidates/s), delta-scorer and Weyl-cache
   hit counts, and the per-step scoring-time percentiles (timing opt-in via
   Qobs.set_timing).  Emits a schema-versioned BENCH_<git-sha>.json so the
   scoring-loop perf trajectory is tracked per commit alongside the regress
   snapshots. *)

let schema_version = 1
let kind = "nassc-score-microbench"

let routers =
  [
    ("sabre", Qroute.Pipeline.Sabre_router);
    ("nassc", Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config);
  ]

let benches = [ "VQE 8-qubits"; "Adder 10-qubits"; "QFT 15-qubits" ]

type row = {
  name : string;
  router : string;
  steps : int;
  candidates : int;
  route_wall_s : float;
  steps_per_s : float;
  candidates_per_s : float;
  score_cache_hits : int;
  weyl_hits : int;
  weyl_misses : int;
  score_ms_p50 : float;
  score_ms_p90 : float;
  score_ms_p99 : float;
}

let counter_total trace n =
  match List.assoc_opt n (Qobs.Trace.counters_total trace) with Some v -> v | None -> 0

let run ?(seed = 11) ?out () =
  (* per-step scoring timestamps are off by default to keep traces
     deterministic; this harness is exactly the opt-in consumer *)
  Qobs.set_timing true;
  let coupling = Topology.Devices.montreal in
  let params = { Qroute.Engine.default_params with seed } in
  Printf.printf "=== score microbenchmark (montreal, seed %d, trials 1) ===\n%!" seed;
  let rows =
    List.concat_map
      (fun bname ->
        let entry = Qbench.Suite.find bname in
        let circuit = entry.build () in
        List.map
          (fun (rname, router) ->
            let rec_root = Qobs.Recorder.create ~label:"score" () in
            let obs_root = Qobs.Collector.create ~label:"score" () in
            ignore
              (Qobs.with_collector obs_root (fun () ->
                   Qobs.Recorder.with_recorder rec_root (fun () ->
                       Qroute.Pipeline.transpile ~params ~trials:1 ~router coupling
                         circuit)));
            let route_wall_s = Regress.span_wall obs_root "trial.route" in
            let trace = Qobs.Trace.of_root obs_root in
            let totals = Qobs.Recorder.totals rec_root in
            let steps = totals.Qobs.Recorder.steps in
            let candidates = counter_total trace "engine.swap_candidates_scored" in
            let per_s n =
              if route_wall_s > 0.0 then float_of_int n /. route_wall_s else 0.0
            in
            let p50, p90, p99 =
              match
                List.assoc_opt "engine.step_score_ms"
                  (Qobs.Trace.histograms_total trace)
              with
              | Some h when Qobs.Hist.count h > 0 ->
                  ( Qobs.Hist.percentile h 50.0,
                    Qobs.Hist.percentile h 90.0,
                    Qobs.Hist.percentile h 99.0 )
              | _ -> (0.0, 0.0, 0.0)
            in
            let r =
              {
                name = bname;
                router = rname;
                steps;
                candidates;
                route_wall_s;
                steps_per_s = per_s steps;
                candidates_per_s = per_s candidates;
                score_cache_hits = counter_total trace "engine.score_cache_hits";
                weyl_hits = counter_total trace "nassc.weyl_cache_hits";
                weyl_misses = counter_total trace "nassc.weyl_cache_misses";
                score_ms_p50 = p50;
                score_ms_p90 = p90;
                score_ms_p99 = p99;
              }
            in
            Printf.printf
              "  %-16s %-6s %5d steps, %6d cand (%.0f steps/s, %.0f cand/s), \
               score-cache %d, weyl %d/%d, score ms p50/p90/p99 %.3f/%.3f/%.3f\n\
               %!"
              bname rname steps candidates r.steps_per_s r.candidates_per_s
              r.score_cache_hits r.weyl_hits r.weyl_misses p50 p90 p99;
            r)
          routers)
      benches
  in
  Qobs.set_timing false;
  let out_file =
    match out with
    | Some f -> f
    | None -> Printf.sprintf "BENCH_%s.json" (Regress.git_short_sha ())
  in
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"schema_version\": %d,\n  \"kind\": \"%s\",\n  \"git_sha\": \"%s\",\n\
       \  \"seed\": %d,\n  \"topology\": \"montreal\",\n  \"rows\": [\n"
       schema_version kind (Regress.json_escape (Regress.git_short_sha ())) seed);
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"router\": \"%s\", \"steps\": %d, \"candidates\": \
            %d, \"route_wall_s\": %.4f, \"steps_per_s\": %.0f, \"candidates_per_s\": \
            %.0f, \"score_cache_hits\": %d, \"weyl_cache_hits\": %d, \
            \"weyl_cache_misses\": %d, \"score_ms_p50\": %.4f, \"score_ms_p90\": %.4f, \
            \"score_ms_p99\": %.4f}%s\n"
           (Regress.json_escape r.name) r.router r.steps r.candidates r.route_wall_s
           r.steps_per_s r.candidates_per_s r.score_cache_hits r.weyl_hits r.weyl_misses
           r.score_ms_p50 r.score_ms_p90 r.score_ms_p99
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out out_file in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "snapshot: %s\n%!" out_file
