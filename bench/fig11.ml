(* Figure 11: the routing algorithms under the montreal noise model.
   (a) additional CNOT count, (b) success rate (Monte-Carlo, 8192 paper
   shots; default here 2048 for runtime).  The paper's four routers plus
   the hybrid windowed-exact router as an extra column. *)

let routers =
  [
    ("SABRE", Qroute.Pipeline.Sabre_router);
    ("SABRE+HA", Qroute.Pipeline.Sabre_ha);
    ("NASSC", Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config);
    ("NASSC+HA", Qroute.Pipeline.Nassc_ha Qroute.Nassc.default_config);
    ("HYBRID", Qroute.Pipeline.Hybrid_router Qroute.Hybrid.default_config);
  ]

let entries () = List.filter (fun e -> e.Qbench.Suite.noise_subset) Qbench.Suite.paper_suite

let cnot_counts ~seeds () =
  let coupling = Topology.Devices.montreal in
  let cal = Topology.Calibration.generate coupling in
  Printf.printf "=== Figure 11a: additional CNOT count on ibmq_montreal noise setup ===\n";
  Printf.printf "%-18s" "name";
  List.iter (fun (n, _) -> Printf.printf " %10s" n) routers;
  Printf.printf "\n%s\n" (String.make 75 '-');
  List.iter
    (fun (e : Qbench.Suite.entry) ->
      let circuit = e.build () in
      let seed_list = Runs.seeds_for ~seeds e in
      let base =
        Runs.run_router ~seeds:[ 1 ] ~coupling ~router:Qroute.Pipeline.Full_connectivity
          circuit
      in
      let adds =
        List.map
          (fun (_, router) ->
            let results =
              List.map
                (fun seed ->
                  let params = { Qroute.Engine.default_params with seed } in
                  Qroute.Pipeline.transpile ~params ~calibration:cal ~router coupling
                    circuit)
                seed_list
            in
            (Runs.average_results results).cx -. base.cx)
          routers
      in
      Printf.printf "%-18s" e.name;
      List.iter (fun a -> Printf.printf " %10.1f" a) adds;
      Printf.printf "\n%!")
    (entries ());
  print_newline ()

let success_rates ~shots () =
  let coupling = Topology.Devices.montreal in
  let cal = Topology.Calibration.generate coupling in
  Printf.printf "=== Figure 11b: success rate under the montreal noise model (%d shots) ===\n"
    shots;
  Printf.printf "%-18s" "name";
  List.iter (fun (n, _) -> Printf.printf " %12s" n) routers;
  Printf.printf "   (ESP in parentheses)\n%s\n" (String.make 110 '-');
  List.iter
    (fun (e : Qbench.Suite.entry) ->
      let circuit = e.build () in
      let cells =
        List.map
          (fun (_, router) ->
            let params = { Qroute.Engine.default_params with seed = 1 } in
            let r = Qroute.Pipeline.transpile ~params ~calibration:cal ~router coupling circuit in
            match r.final_layout with
            | None -> (0.0, 0.0)
            | Some fl ->
                let o =
                  Qsim.Success.routed_success ~shots ~cal ~ideal:circuit ~routed:r.circuit
                    ~final_layout:fl ()
                in
                (o.success_rate, o.esp))
          routers
      in
      Printf.printf "%-18s" e.name;
      List.iter (fun (sr, esp) -> Printf.printf " %6.3f(%.3f)" sr esp) cells;
      Printf.printf "\n%!")
    (entries ());
  print_newline ()
