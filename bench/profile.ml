(* Observability-driven profile: where transpile time goes, per pass and per
   router — including p50/p90/p99 per-call latency from the shared Qobs.Hist
   percentile path — plus the counter totals (candidates scored, cache
   traffic, realized vs predicted CNOT savings).  This is the breakdown
   future performance PRs should quote before/after numbers from. *)

let routers =
  [
    ("sabre", Qroute.Pipeline.Sabre_router);
    ("nassc", Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config);
  ]

let run ?(seed = 11) ?(trials = 4) () =
  (* opt into the per-step scoring-time histogram for the summaries *)
  Qobs.set_timing true;
  let coupling = Topology.Devices.montreal in
  let params = { Qroute.Engine.default_params with seed } in
  let benches = [ "VQE 8-qubits"; "QFT 15-qubits"; "Adder 10-qubits" ] in
  List.iter
    (fun name ->
      let entry = Qbench.Suite.find name in
      let circuit = entry.build () in
      List.iter
        (fun (rname, router) ->
          Printf.printf "=== profile: %s / %s (montreal, seed %d, %d trials) ===\n%!" name
            rname seed trials;
          let root = Qobs.Collector.create ~label:"main" () in
          let r =
            Qobs.with_collector root (fun () ->
                Qroute.Pipeline.transpile ~params ~trials ~router coupling circuit)
          in
          Qobs.Trace.pp_summary Format.std_formatter (Qobs.Trace.of_root root);
          Printf.printf "result: cx_total %d, depth %d, swaps %d, wall %.3f s\n\n%!"
            r.cx_total r.depth r.n_swaps r.transpile_time)
        routers)
    benches
