(* `bench --only history`: cross-run trend analysis over the BENCH_*.json
   snapshots that --regress runs leave behind.  Prints the markdown report
   to stdout and writes TREND_<sha>.md / TREND_<sha>.json next to it, so a
   CI job can archive both and a human can diff the markdown. *)

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let run ~dir ~out ~window () =
  let snapshots, skipped = Qtel.Trend.load_dir dir in
  List.iter
    (fun (file, reason) -> Printf.eprintf "history: skipping %s: %s\n" file reason)
    skipped;
  if snapshots = [] then begin
    Printf.eprintf
      "history: no BENCH_*.json snapshots in %s (run `bench --regress` first)\n" dir;
    2
  end
  else begin
    let report = Qtel.Trend.analyze ~window snapshots in
    let md = Qtel.Trend.to_markdown report in
    print_string md;
    let base =
      match out with
      | Some f -> f
      | None -> Printf.sprintf "TREND_%s" (Regress.git_short_sha ())
    in
    write_file (base ^ ".md") md;
    write_file (base ^ ".json") (Qtel.Trend.to_json report);
    Printf.printf "\ntrend: wrote %s.md and %s.json\n" base base;
    (* anomalies are reported, not fatal: trend is an early-warning signal,
       the hard gate stays `--regress` vs the checked-in baseline *)
    0
  end
