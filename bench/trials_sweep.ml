(* Extra experiment: best-of-N trials — quality and wall-clock versus the
   trial count and worker count.  Reports, per benchmark:

   - cx_total and depth of the best trial for N in the sweep (the paper's
     tables correspond to N = 1);
   - wall time for N sequential trials (workers = 1) versus the same N on a
     full domain pool, and the resulting speedup.

   On a single-core container the speedup column degenerates to ~1x; the
   determinism guarantee (identical best result for any worker count) is
   what the test suite checks, and is visible here as identical cx columns
   across worker counts. *)

let sweep_ns = [ 1; 2; 4; 8 ]

let run ?(router = Qroute.Pipeline.Sabre_router) ~seed () =
  let coupling = Topology.Devices.montreal in
  let workers = Qroute.Trials.default_workers () in
  Printf.printf "=== Best-of-N trials sweep (ibmq_montreal, seed %d, %d workers) ===\n" seed
    workers;
  Printf.printf "%-22s %s %10s %10s %8s\n" "name"
    (String.concat " " (List.map (fun n -> Printf.sprintf "%7s" (Printf.sprintf "cx@%d" n)) sweep_ns))
    "seq(s)" "par(s)" "speedup";
  Printf.printf "%s\n" (String.make (22 + (8 * List.length sweep_ns) + 32) '-');
  let params = { Qroute.Engine.default_params with seed } in
  List.iter
    (fun (e : Qbench.Suite.entry) ->
      let circuit = e.build () in
      let cxs =
        List.map
          (fun n ->
            let r = Qroute.Pipeline.transpile ~params ~trials:n ~workers:1 ~router coupling circuit in
            r.cx_total)
          sweep_ns
      in
      let n_max = List.fold_left max 1 sweep_ns in
      let seq =
        (Qroute.Pipeline.transpile ~params ~trials:n_max ~workers:1 ~router coupling circuit)
          .transpile_time
      in
      let par_r = Qroute.Pipeline.transpile ~params ~trials:n_max ~workers ~router coupling circuit in
      let par = par_r.transpile_time in
      Printf.printf "%-22s %s %10.3f %10.3f %7.2fx\n%!" e.name
        (String.concat " " (List.map (Printf.sprintf "%7d") cxs))
        seq par (seq /. par)
    )
    Qbench.Suite.small_suite;
  print_newline ()
