(* Verification throughput (`bench --only verify [--out FILE]`).

   Times the symbolic equivalence certifier (Qverify.verify_routed) on
   routed output across circuit scales, up to the 27-qubit montreal
   device where the statevector oracle is out of reach and the tableau
   checker is the only equivalence evidence.  Each cell routes once with
   SABRE and reports the verification verdict, wall time (best of
   [repeats]) and throughput in routed gates per second, then writes a
   schema-versioned BENCH_<git-sha>-verify.json snapshot, the
   verification sibling of the regress and gap snapshots. *)

let schema_version = 1
let kind = "nassc-bench-verify"
let repeats = 3

type row = {
  circuit : string;
  topology : string;
  n_logical : int;
  n_physical : int;
  gates : int;  (** non-directive instructions the certifier swept *)
  verdict : string;
  wall_s : float;  (** best of [repeats] *)
  gates_per_sec : float;
}

let cells =
  [
    ( "ghz12",
      "linear13",
      Topology.Devices.linear 13,
      fun () -> Qbench.Generators.ghz_chain 12 );
    ( "dense6",
      "grid2x4",
      Topology.Devices.grid 2 4,
      fun () -> Qbench.Generators.random_density ~seed:7 ~gates:60 ~density:0.5 6 );
    ( "qaoa10",
      "ring12",
      Topology.Devices.ring 12,
      fun () -> Qbench.Generators.qaoa_erdos_renyi ~seed:7 ~p:2 ~edge_prob:0.4 10 );
    ( "dense18",
      "montreal",
      Topology.Devices.montreal,
      fun () -> Qbench.Generators.random_density ~seed:3 ~gates:120 ~density:0.35 18 );
    (* the acceptance cell: 27 physical wires, 200+ logical gates *)
    ( "dense20",
      "montreal",
      Topology.Devices.montreal,
      fun () -> Qbench.Generators.random_density ~seed:3 ~gates:220 ~density:0.35 20 );
  ]

let run ?(seed = 11) ~out () =
  Printf.printf "=== symbolic verification throughput (seed %d, best of %d) ===\n%!"
    seed repeats;
  let params = { Qroute.Engine.default_params with seed } in
  let rows =
    List.map
      (fun (cname, tname, topo, build) ->
        let c = build () in
        let r =
          Qroute.Pipeline.transpile ~params ~trials:1
            ~router:Qroute.Pipeline.Sabre_router topo c
        in
        let verify () =
          Qverify.verify_routed ~original:c ~routed:r.Qroute.Pipeline.circuit
            ?initial_layout:r.Qroute.Pipeline.initial_layout
            ?final_layout:r.Qroute.Pipeline.final_layout ()
        in
        let best = ref infinity in
        let v = ref (verify ()) in
        for _ = 1 to repeats do
          let t0 = Unix.gettimeofday () in
          v := verify ();
          let dt = Unix.gettimeofday () -. t0 in
          if dt < !best then best := dt
        done;
        let gates =
          match !v with
          | Qverify.Equivalent cert -> cert.Qverify.gates
          | _ -> Qcircuit.Circuit.size r.Qroute.Pipeline.circuit
        in
        let row =
          {
            circuit = cname;
            topology = tname;
            n_logical = Qcircuit.Circuit.n_qubits c;
            n_physical = Topology.Coupling.n_qubits topo;
            gates;
            verdict = Qverify.verdict_name !v;
            wall_s = !best;
            gates_per_sec = float_of_int gates /. !best;
          }
        in
        Printf.printf "  %-8s %-10s %3dq->%2dq %5d gates  %-12s %8.4fs %10.0f gates/s\n%!"
          row.circuit row.topology row.n_logical row.n_physical row.gates
          row.verdict row.wall_s row.gates_per_sec;
        row)
      cells
  in
  (* snapshot *)
  let out_file =
    match out with
    | Some f -> f
    | None -> Printf.sprintf "BENCH_%s-verify.json" (Regress.git_short_sha ())
  in
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"schema_version\": %d,\n  \"kind\": \"%s\",\n  \"git_sha\": \"%s\",\n\
       \  \"seed\": %d,\n  \"rows\": [\n"
       schema_version kind (Regress.git_short_sha ()) seed);
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"circuit\": \"%s\", \"topology\": \"%s\", \"n_logical\": %d, \
            \"n_physical\": %d, \"gates\": %d, \"verdict\": \"%s\", \
            \"wall_s\": %.6f, \"gates_per_sec\": %.1f}%s\n"
           r.circuit r.topology r.n_logical r.n_physical r.gates r.verdict r.wall_s
           r.gates_per_sec
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out out_file in
  Buffer.output_buffer oc b;
  close_out oc;
  Printf.printf "snapshot: %s\n" out_file;
  (* the acceptance bar: device-scale circuits certify in under a second *)
  List.iter
    (fun r ->
      if r.verdict <> "equivalent" then
        Printf.printf "WARNING: %s/%s did not certify (%s)\n" r.circuit r.topology
          r.verdict
      else if r.wall_s >= 1.0 then
        Printf.printf "WARNING: %s/%s verified in %.3fs (budget 1s)\n" r.circuit
          r.topology r.wall_s)
    rows
