(* Optimality-gap harness (`bench --only gap [--quick] [--out FILE]`).

   For every corpus circuit x small topology, the exact oracle
   (Qroute.Exact.min_swaps, free layout) certifies the true minimum SWAP
   count for the *same* pre-optimized logical circuit the routers see;
   each router is then scored by its absolute gap (inserted swaps minus
   the optimum).  The table is printed and written as a schema-versioned
   BENCH_<git-sha>-gap.json snapshot, the gap-side sibling of the
   regress snapshot. *)

let schema_version = 1
let kind = "nassc-bench-gap"

(* generous: the oracle is only consulted offline, and corpus instances
   are small enough that certified optima matter more than latency *)
let oracle_budget = { Qroute.Exact.max_nodes = 5_000_000; max_seconds = infinity }

let routers =
  [
    ("sabre", Qroute.Pipeline.Sabre_router);
    ("nassc", Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config);
    ("astar", Qroute.Pipeline.Astar_router);
    ("hybrid", Qroute.Pipeline.Hybrid_router Qroute.Hybrid.default_config);
  ]

type row = {
  circuit : string;
  topology : string;
  n_qubits : int;
  two_q : int;  (** two-qubit gates in the routed (pre-optimized) circuit *)
  optimal : int option;  (** None: oracle budget exceeded *)
  swaps : (string * int) list;  (** per router, in [routers] order *)
}

let run ?(seed = 11) ~quick ~out () =
  Printf.printf "=== optimality gap (%s corpus, seed %d, trials 1) ===\n%!"
    (if quick then "quick" else "full")
    seed;
  let params = { Qroute.Engine.default_params with seed } in
  let entries = Qbench.Gapcorpus.suite ~quick in
  let rows =
    List.concat_map
      (fun (e : Qbench.Gapcorpus.entry) ->
        (* the exact circuit the routers route: lowered then pre-optimized *)
        let logical =
          Qroute.Pipeline.pre_optimize (Qroute.Pipeline.lower_to_2q (e.build ()))
        in
        let two_q = Qcircuit.Circuit.two_qubit_count logical in
        List.map
          (fun (tname, coupling) ->
            Printf.printf "  %-10s %-8s ...%!" e.name tname;
            let optimal =
              match Qroute.Exact.min_swaps ~budget:oracle_budget coupling logical with
              | Qroute.Exact.Routed { n_swaps; _ } -> Some n_swaps
              | Qroute.Exact.Route_budget_exceeded -> None
            in
            let swaps =
              List.map
                (fun (rname, router) ->
                  let r =
                    Qroute.Pipeline.transpile ~params ~trials:1 ~router coupling
                      (e.build ())
                  in
                  (rname, r.Qroute.Pipeline.n_swaps))
                routers
            in
            let opt_str =
              match optimal with Some o -> string_of_int o | None -> "?"
            in
            Printf.printf " 2q=%d opt=%s %s\n%!" two_q opt_str
              (String.concat " "
                 (List.map (fun (n, s) -> Printf.sprintf "%s=%d" n s) swaps));
            { circuit = e.name; topology = tname; n_qubits = e.n_qubits; two_q;
              optimal; swaps })
          Qbench.Gapcorpus.topologies)
      entries
  in
  (* gap table *)
  Printf.printf "\n%-10s %-8s %4s %4s" "circuit" "topology" "2q" "opt";
  List.iter (fun (n, _) -> Printf.printf " %10s" (n ^ " gap")) routers;
  Printf.printf "\n";
  let sums = Array.make (List.length routers) 0 in
  let counted = ref 0 in
  List.iter
    (fun r ->
      let opt_str = match r.optimal with Some o -> string_of_int o | None -> "?" in
      Printf.printf "%-10s %-8s %4d %4s" r.circuit r.topology r.two_q opt_str;
      (match r.optimal with
      | Some o ->
          incr counted;
          List.iteri
            (fun i (_, s) ->
              sums.(i) <- sums.(i) + (s - o);
              Printf.printf " %10d" (s - o))
            r.swaps
      | None -> List.iter (fun _ -> Printf.printf " %10s" "-") r.swaps);
      Printf.printf "\n")
    rows;
  if !counted > 0 then begin
    Printf.printf "%-10s %-8s %4s %4s" "TOTAL" "" "" "";
    Array.iter (fun s -> Printf.printf " %10d" s) sums;
    Printf.printf "   (over %d certified instances)\n" !counted
  end;
  (* snapshot *)
  let out_file =
    match out with
    | Some f -> f
    | None -> Printf.sprintf "BENCH_%s-gap.json" (Regress.git_short_sha ())
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"schema_version\": %d,\n  \"kind\": \"%s\",\n  \"git_sha\": \"%s\",\n\
       \  \"suite\": \"%s\",\n  \"seed\": %d,\n  \"rows\": [\n"
       schema_version kind (Regress.git_short_sha ())
       (if quick then "quick" else "full")
       seed);
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"circuit\": \"%s\", \"topology\": \"%s\", \"n_qubits\": %d, \
            \"two_q\": %d, \"optimal\": %s, %s}%s\n"
           r.circuit r.topology r.n_qubits r.two_q
           (match r.optimal with Some o -> string_of_int o | None -> "null")
           (String.concat ", "
              (List.map (fun (n, s) -> Printf.sprintf "\"%s\": %d" n s) r.swaps))
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out out_file in
  Buffer.output_buffer oc b;
  close_out oc;
  Printf.printf "snapshot: %s\n" out_file
