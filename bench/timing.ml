(* Transpilation-latency micro-benchmarks, reported through the same
   Qobs.Hist log-bucketed histogram / percentile path the profile summary
   and the flight recorder use: warm up, sample repeated transpiles, print
   mean / p50 / p90 / p99 wall latency per workload.  Run with --timing or
   --only timing. *)

let transpile router coupling circuit () =
  ignore (Qroute.Pipeline.transpile ~router coupling circuit)

let workloads =
  let circuit = Qbench.Generators.grover 6 in
  List.concat_map
    (fun (tname, coupling) ->
      [
        (tname ^ "/sabre", transpile Qroute.Pipeline.Sabre_router coupling circuit);
        ( tname ^ "/nassc",
          transpile
            (Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config)
            coupling circuit );
      ])
    [
      ("table1-montreal", Topology.Devices.montreal);
      ("table3-linear", Topology.Devices.linear 25);
      ("table4-grid", Topology.Devices.grid 5 5);
    ]

let run ?(warmup = 2) ?(samples = 15) () =
  Printf.printf "%-28s %6s %10s %10s %10s %10s\n" "workload" "n" "mean(ms)" "p50(ms)"
    "p90(ms)" "p99(ms)";
  List.iter
    (fun (name, f) ->
      for _ = 1 to warmup do
        f ()
      done;
      let h = Qobs.Hist.create () in
      for _ = 1 to samples do
        let t0 = Unix.gettimeofday () in
        f ();
        Qobs.Hist.observe h (Unix.gettimeofday () -. t0)
      done;
      let ms v = v *. 1e3 in
      Printf.printf "%-28s %6d %10.3f %10.3f %10.3f %10.3f\n%!" name
        (Qobs.Hist.count h) (ms (Qobs.Hist.mean h))
        (ms (Qobs.Hist.percentile h 50.0))
        (ms (Qobs.Hist.percentile h 90.0))
        (ms (Qobs.Hist.percentile h 99.0)))
    workloads
