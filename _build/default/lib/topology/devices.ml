let montreal_edges =
  [
    (0, 1); (1, 2); (1, 4); (2, 3); (3, 5); (4, 7); (5, 8); (6, 7); (7, 10);
    (8, 9); (8, 11); (10, 12); (11, 14); (12, 13); (12, 15); (13, 14); (14, 16);
    (15, 18); (16, 19); (17, 18); (18, 21); (19, 20); (19, 22); (21, 23);
    (22, 25); (23, 24); (24, 25); (25, 26);
  ]

let montreal = Coupling.create 27 montreal_edges

let linear n = Coupling.create n (List.init (n - 1) (fun i -> (i, i + 1)))

let grid rows cols =
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (idx r c, idx r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (idx r c, idx (r + 1) c) :: !edges
    done
  done;
  Coupling.create (rows * cols) !edges

(* Brick-wall hexagonal lattice with every edge subdivided by an extra
   qubit: the "heavy-hex" family IBM projects for large error-corrected
   machines (the paper cites montreal's heavy-hex as that future shape).
   Base vertices form a rows x cols grid with horizontal edges complete and
   vertical edges present where (r + c) is even; each edge then gets a
   middle qubit. *)
let heavy_hex rows cols =
  if rows < 2 || cols < 2 then invalid_arg "Devices.heavy_hex: need a 2x2 grid at least";
  let base r c = (r * cols) + c in
  let base_edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then base_edges := (base r c, base r (c + 1)) :: !base_edges;
      if r + 1 < rows && (r + c) mod 2 = 0 then
        base_edges := (base r c, base (r + 1) c) :: !base_edges
    done
  done;
  let base_count = rows * cols in
  let edges = ref [] in
  List.iteri
    (fun i (a, b) ->
      let mid = base_count + i in
      edges := (a, mid) :: (mid, b) :: !edges)
    (List.rev !base_edges);
  Coupling.create (base_count + List.length !base_edges) !edges

let ring n =
  if n < 3 then invalid_arg "Devices.ring: need at least 3 qubits";
  Coupling.create n (List.init n (fun i -> (i, (i + 1) mod n)))

let fully_connected n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  Coupling.create n !edges

let by_name name n =
  match name with
  | "montreal" -> montreal
  | "linear" -> linear n
  | "ring" -> ring n
  | "heavy_hex" ->
      let side = max 2 (int_of_float (Float.round (sqrt (float_of_int (max 4 n) /. 2.5)))) in
      heavy_hex side side
  | "grid" ->
      let side = int_of_float (Float.round (sqrt (float_of_int n))) in
      grid side side
  | "full" -> fully_connected n
  | _ -> invalid_arg ("Devices.by_name: unknown topology " ^ name)
