lib/topology/coupling.mli: Format
