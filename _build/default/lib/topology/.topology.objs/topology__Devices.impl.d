lib/topology/devices.ml: Coupling Float List
