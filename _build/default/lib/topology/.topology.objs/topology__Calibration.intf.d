lib/topology/calibration.mli: Coupling
