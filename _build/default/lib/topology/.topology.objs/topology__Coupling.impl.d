lib/topology/coupling.ml: Array Format List Queue
