lib/topology/devices.mli: Coupling
