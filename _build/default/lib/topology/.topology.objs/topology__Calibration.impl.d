lib/topology/calibration.ml: Array Coupling Float Hashtbl List Mathkit Rng
