(** Device coupling maps.

    A coupling map is an undirected graph over physical qubits; an edge
    means a CX can be executed natively between the two qubits (we model
    bidirectional links, as on IBM heavy-hex devices). *)

type t

val create : int -> (int * int) list -> t
(** [create n edges] builds a coupling map.  Self-loops, duplicate and
    out-of-range edges are rejected. *)

val n_qubits : t -> int
val edges : t -> (int * int) list
(** Normalized (lo, hi) edge list, sorted. *)

val connected : t -> int -> int -> bool
val neighbors : t -> int -> int list
val degree : t -> int -> int

val distance : t -> int -> int -> int
(** Shortest-path hop count (precomputed all-pairs BFS).
    @raise Invalid_argument if the qubits are in different components. *)

val distance_matrix : t -> int array array
(** The full matrix; unreachable pairs hold [max_int]. *)

val is_connected_graph : t -> bool
val diameter : t -> int
val shortest_path : t -> int -> int -> int list
(** Inclusive endpoint-to-endpoint vertex path. *)

val pp : Format.formatter -> t -> unit
