(** Layer-partitioned A* routing (Zulehner, Paler, Wille - TCAD 2018), the
    exhaustive-search baseline the paper contrasts SABRE's complexity
    against (Section IV-H).

    The circuit is partitioned into layers of independently executable
    two-qubit gates; for each layer an A* search over SWAP insertions finds
    a mapping under which every layer gate is executable.  The admissible
    heuristic is the sum over layer gates of [distance - 1] (each SWAP
    reduces one gate's distance by at most one).  Search effort is bounded
    by [max_expansions]; on exhaustion the layer falls back to greedy
    shortest-path insertion, so routing always terminates. *)

type params = {
  seed : int;
  max_expansions : int;  (** A* node-expansion budget per layer *)
}

val default_params : params

val route :
  ?params:params ->
  Topology.Coupling.t ->
  Qcircuit.Circuit.t ->
  Sabre.result
(** Route a (<=2-qubit-gate) circuit.  SWAPs are emitted as [SWAP] gates
    (fixed decomposition applied downstream, as for SABRE). *)

val layers : Qcircuit.Circuit.t -> Qcircuit.Circuit.instr list list
(** The layer partition (exposed for tests): consecutive groups of gates
    with disjoint qubits, in dependency order. *)
