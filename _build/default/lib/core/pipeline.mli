(** End-to-end transpilation flows (paper Figures 2 and 5).

    The flow mirrors Qiskit level-3: decompose to {1q, CX} -> pre-routing
    optimization (1q merge, commutative cancellation, two-qubit block
    re-synthesis; NASSC moves these before routing, Section IV-A) -> layout
    + routing -> post-routing optimization -> hardware-basis emission
    ({rz, sx, x, cx}). *)

type router =
  | Full_connectivity  (** no routing: the "original circuit" baseline *)
  | Sabre_router
  | Nassc_router of Nassc.config
  | Sabre_ha  (** SABRE with the noise-aware distance matrix (eq. 3) *)
  | Nassc_ha of Nassc.config
  | Astar_router  (** Zulehner-style layered A* baseline (related work) *)

type result = {
  circuit : Qcircuit.Circuit.t;  (** final circuit in the hardware basis *)
  cx_total : int;
  depth : int;
  n_swaps : int;
  transpile_time : float;  (** seconds of CPU time *)
  initial_layout : int array option;
  final_layout : int array option;
}

val lower_to_2q : Qcircuit.Circuit.t -> Qcircuit.Circuit.t
(** Structural lowering to {one-qubit gates, CX, directives}. *)

val pre_optimize : Qcircuit.Circuit.t -> Qcircuit.Circuit.t
(** The logical-circuit optimization bundle run before routing. *)

val post_optimize : Qcircuit.Circuit.t -> Qcircuit.Circuit.t
(** The physical-circuit optimization bundle run after routing, ending in
    the hardware basis. *)

val transpile :
  ?params:Engine.params ->
  ?calibration:Topology.Calibration.t ->
  router:router ->
  Topology.Coupling.t ->
  Qcircuit.Circuit.t ->
  result
(** Full flow.  For [Full_connectivity] the coupling map is ignored and the
    circuit stays on its logical qubits. *)
