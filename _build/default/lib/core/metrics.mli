(** The comparison columns of the paper's tables.

    [CNOT_add = CNOT_total(routed) - CNOT_total(original)], and the Delta
    columns are [1 - value(NASSC)/value(SABRE)] (footnotes of Table I). *)

type row = {
  name : string;
  n_qubits : int;
  cx_original : int;
  cx_sabre : int;
  cx_nassc : int;
  depth_original : int;
  depth_sabre : int;
  depth_nassc : int;
  time_sabre : float;
  time_nassc : float;
}

val cx_add_sabre : row -> int
val cx_add_nassc : row -> int
val delta_cx_total : row -> float
(** [1 - total(NASSC)/total(SABRE)], as a fraction. *)

val delta_cx_add : row -> float
val delta_depth_total : row -> float
val delta_depth_add : row -> float
val time_ratio : row -> float

val geometric_mean : float list -> float
(** Aggregate of delta values following the paper's convention: deltas are
    [1 - ratio], so the aggregate is [1 - geomean(1 - x)].  Empty list
    yields 0. *)

val average_rows : (row -> float) -> row list -> float
(** Geometric-mean aggregate of a delta column over rows. *)
