open Topology

let check_fits ~n_log coupling =
  if n_log > Coupling.n_qubits coupling then
    invalid_arg "Layout: circuit larger than device"

let trivial ~n_log coupling =
  check_fits ~n_log coupling;
  Array.init n_log (fun i -> i)

let random ~seed ~n_log coupling =
  check_fits ~n_log coupling;
  let rng = Mathkit.Rng.create seed in
  let perm = Mathkit.Rng.permutation rng (Coupling.n_qubits coupling) in
  Array.init n_log (fun i -> perm.(i))

let dense ~n_log coupling =
  check_fits ~n_log coupling;
  let n = Coupling.n_qubits coupling in
  let placed = Array.make n false in
  let start =
    let best = ref 0 in
    for q = 1 to n - 1 do
      if Coupling.degree coupling q > Coupling.degree coupling !best then best := q
    done;
    !best
  in
  let chosen = ref [ start ] in
  placed.(start) <- true;
  for _ = 2 to n_log do
    (* frontier: unplaced neighbours of the placed set; prefer the one with
       the most placed neighbours, then highest degree *)
    let score q =
      let placed_nb =
        List.length (List.filter (fun v -> placed.(v)) (Coupling.neighbors coupling q))
      in
      (placed_nb, Coupling.degree coupling q)
    in
    let frontier =
      List.concat_map
        (fun p -> List.filter (fun v -> not placed.(v)) (Coupling.neighbors coupling p))
        !chosen
      |> List.sort_uniq compare
    in
    let pick =
      match frontier with
      | [] ->
          (* disconnected remainder: any unplaced qubit *)
          let q = ref 0 in
          while placed.(!q) do
            incr q
          done;
          !q
      | f ->
          List.fold_left
            (fun best q -> if score q > score best then q else best)
            (List.hd f) f
    in
    placed.(pick) <- true;
    chosen := pick :: !chosen
  done;
  Array.of_list (List.rev !chosen)

let average_pairwise_distance coupling layout =
  let n = Array.length layout in
  if n < 2 then 0.0
  else begin
    let acc = ref 0 and count = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        acc := !acc + Coupling.distance coupling layout.(i) layout.(j);
        incr count
      done
    done;
    float_of_int !acc /. float_of_int !count
  end
