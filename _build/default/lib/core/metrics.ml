type row = {
  name : string;
  n_qubits : int;
  cx_original : int;
  cx_sabre : int;
  cx_nassc : int;
  depth_original : int;
  depth_sabre : int;
  depth_nassc : int;
  time_sabre : float;
  time_nassc : float;
}

let cx_add_sabre r = r.cx_sabre - r.cx_original
let cx_add_nassc r = r.cx_nassc - r.cx_original

let ratio_delta a b = if b = 0 then 0.0 else 1.0 -. (float_of_int a /. float_of_int b)

let delta_cx_total r = ratio_delta r.cx_nassc r.cx_sabre
let delta_cx_add r = ratio_delta (cx_add_nassc r) (cx_add_sabre r)

let delta_depth_total r = ratio_delta r.depth_nassc r.depth_sabre

let delta_depth_add r =
  ratio_delta (r.depth_nassc - r.depth_original) (r.depth_sabre - r.depth_original)

let time_ratio r = if r.time_sabre = 0.0 then 1.0 else r.time_nassc /. r.time_sabre

(* Deltas are 1 - ratio; the paper's geometric mean averages the ratios,
   so the aggregate delta is 1 - geomean(1 - x). *)
let geometric_mean xs =
  match xs with
  | [] -> 0.0
  | _ ->
      let n = float_of_int (List.length xs) in
      let log_sum =
        List.fold_left (fun acc x -> acc +. log (Float.max 1e-9 (1.0 -. x))) 0.0 xs
      in
      1.0 -. exp (log_sum /. n)

let average_rows f rows = geometric_mean (List.map f rows)
