lib/core/sabre.ml: Array Coupling Engine Gate List Qcircuit Qgate Topology
