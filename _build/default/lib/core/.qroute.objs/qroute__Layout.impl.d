lib/core/layout.ml: Array Coupling List Mathkit Topology
