lib/core/layout.mli: Topology
