lib/core/nassc.mli: Engine Qcircuit Sabre Topology
