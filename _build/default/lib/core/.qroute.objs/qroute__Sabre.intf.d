lib/core/sabre.mli: Engine Qcircuit Topology
