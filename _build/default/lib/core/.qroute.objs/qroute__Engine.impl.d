lib/core/engine.ml: Array Coupling Float Gate Hashtbl List Mathkit Qcircuit Qgate Rng Topology
