lib/core/astar.ml: Array Coupling Gate Hashtbl List Mathkit Qcircuit Qgate Sabre Set String Topology
