lib/core/astar.mli: Qcircuit Sabre Topology
