lib/core/engine.mli: Qcircuit Qgate Topology
