lib/core/pipeline.ml: Astar Basis Cancellation Engine List Nassc Optimize_1q Option Peephole Qcircuit Qgate Qpasses Sabre Sys Topology Unitary_synthesis
