lib/core/pipeline.mli: Engine Nassc Qcircuit Topology
