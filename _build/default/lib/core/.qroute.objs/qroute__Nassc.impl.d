lib/core/nassc.ml: Engine Gate List Mathkit Qcircuit Qgate Qpasses Sabre Topology Unitary
