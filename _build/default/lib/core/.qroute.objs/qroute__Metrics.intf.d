lib/core/metrics.mli:
