open Qpasses

type router =
  | Full_connectivity
  | Sabre_router
  | Nassc_router of Nassc.config
  | Sabre_ha
  | Nassc_ha of Nassc.config
  | Astar_router

type result = {
  circuit : Qcircuit.Circuit.t;
  cx_total : int;
  depth : int;
  n_swaps : int;
  transpile_time : float;
  initial_layout : int array option;
  final_layout : int array option;
}

let lower_to_2q c =
  let lowered =
    Qcircuit.Circuit.instrs c
    |> List.map (fun (i : Qcircuit.Circuit.instr) -> (i.gate, i.qubits))
    |> Qgate.Decompose.to_cx_basis
    |> List.map (fun (g, qs) -> { Qcircuit.Circuit.gate = g; qubits = qs })
  in
  Qcircuit.Circuit.create (Qcircuit.Circuit.n_qubits c) lowered

let pre_optimize c =
  c
  |> Peephole.run
  |> Optimize_1q.run Optimize_1q.U_gate
  |> Cancellation.run_fixpoint ~max_rounds:3
  |> Unitary_synthesis.run
  |> Optimize_1q.run Optimize_1q.U_gate

let post_optimize c =
  c
  |> Peephole.run
  |> Cancellation.run_fixpoint ~max_rounds:3
  |> Unitary_synthesis.run
  |> Basis.run
  |> Cancellation.run_fixpoint ~max_rounds:2
  |> Optimize_1q.run Optimize_1q.Zsx

let noise_dist calibration coupling =
  match calibration with
  | Some cal -> Topology.Calibration.noise_distance_matrix cal
  | None -> Topology.Calibration.noise_distance_matrix (Topology.Calibration.generate coupling)

let transpile ?(params = Engine.default_params) ?calibration ~router coupling circuit =
  let t0 = Sys.time () in
  let logical = pre_optimize (lower_to_2q circuit) in
  let routed, n_swaps, layouts =
    match router with
    | Full_connectivity -> (logical, 0, None)
    | Sabre_router ->
        let r = Sabre.route ~params coupling logical in
        (Sabre.decompose_swaps r.circuit, r.n_swaps, Some (r.initial_layout, r.final_layout))
    | Nassc_router config ->
        let r = Nassc.route ~params ~config coupling logical in
        (r.circuit, r.n_swaps, Some (r.initial_layout, r.final_layout))
    | Astar_router ->
        let r = Astar.route ~params:{ Astar.default_params with seed = params.seed } coupling logical in
        (Sabre.decompose_swaps r.circuit, r.n_swaps, Some (r.initial_layout, r.final_layout))
    | Sabre_ha ->
        let dist = noise_dist calibration coupling in
        let r = Sabre.route ~params ~dist coupling logical in
        (Sabre.decompose_swaps r.circuit, r.n_swaps, Some (r.initial_layout, r.final_layout))
    | Nassc_ha config ->
        let dist = noise_dist calibration coupling in
        let r = Nassc.route ~params ~config ~dist coupling logical in
        (r.circuit, r.n_swaps, Some (r.initial_layout, r.final_layout))
  in
  let final = post_optimize routed in
  let t1 = Sys.time () in
  {
    circuit = final;
    cx_total = Qcircuit.Circuit.cx_count final;
    depth = Qcircuit.Circuit.depth final;
    n_swaps;
    transpile_time = t1 -. t0;
    initial_layout = Option.map fst layouts;
    final_layout = Option.map snd layouts;
  }
