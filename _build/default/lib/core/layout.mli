(** Initial-layout strategies.

    The paper reuses SABRE's random-init + reverse-traversal scheme (that
    lives in {!Engine.find_layout}); these simpler strategies are provided
    for baselines and ablations, mirroring Qiskit's TrivialLayout /
    DenseLayout. *)

val trivial : n_log:int -> Topology.Coupling.t -> int array
(** Logical qubit [i] on physical qubit [i]. *)

val random : seed:int -> n_log:int -> Topology.Coupling.t -> int array
(** Uniform random injection of logical into physical qubits. *)

val dense : n_log:int -> Topology.Coupling.t -> int array
(** Greedy densest-subgraph placement: BFS from the highest-degree physical
    qubit, preferring neighbours with the most already-placed neighbours,
    so the chosen region has high internal connectivity. *)

val average_pairwise_distance : Topology.Coupling.t -> int array -> float
(** Mean physical distance over all pairs of placed qubits; the figure of
    merit the dense layout optimizes (exposed for tests/benches). *)
