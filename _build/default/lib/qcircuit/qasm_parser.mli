(** Parser for the OpenQASM 2 subset emitted by {!Qasm} and produced by
    common benchmark suites (QASMBench, RevLib exports).

    Supported: one [qreg]/[creg] pair, the qelib1 gates that map onto
    {!Qgate.Gate.t} (id x y z h s sdg t tdg sx sxdg rx ry rz p u1 u2 u3 u
    cx cy cz ch swap crx cry crz cp cu1 rzz ccx ccz cswap), [barrier], and
    [measure q[i] -> c[j]].  Angle expressions may use [pi], numeric
    literals, unary minus, [* / + -] and parentheses. *)

exception Parse_error of string
(** Raised with a human-readable message and line number. *)

val parse : string -> Circuit.t
(** Parse a full OpenQASM 2 program. *)

val parse_file : string -> Circuit.t
(** Parse a file from disk. *)
