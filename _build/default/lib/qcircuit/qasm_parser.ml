exception Parse_error of string

let fail line msg = raise (Parse_error (Printf.sprintf "line %d: %s" line msg))

(* ---- angle expression evaluator (pi, literals, + - * /, parens) ---- *)

type tok = Num of float | Op of char | LPar | RPar

let lex_expr line s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '(' then begin
      toks := LPar :: !toks;
      incr i
    end
    else if c = ')' then begin
      toks := RPar :: !toks;
      incr i
    end
    else if c = '+' || c = '-' || c = '*' || c = '/' then begin
      toks := Op c :: !toks;
      incr i
    end
    else if (c >= '0' && c <= '9') || c = '.' then begin
      let j = ref !i in
      while
        !j < n
        && ((s.[!j] >= '0' && s.[!j] <= '9')
           || s.[!j] = '.' || s.[!j] = 'e' || s.[!j] = 'E'
           || (s.[!j] = '-' && !j > !i && (s.[!j - 1] = 'e' || s.[!j - 1] = 'E'))
           || (s.[!j] = '+' && !j > !i && (s.[!j - 1] = 'e' || s.[!j - 1] = 'E')))
      do
        incr j
      done;
      toks := Num (float_of_string (String.sub s !i (!j - !i))) :: !toks;
      i := !j
    end
    else if c = 'p' && !i + 1 < n && s.[!i + 1] = 'i' then begin
      toks := Num Float.pi :: !toks;
      i := !i + 2
    end
    else fail line (Printf.sprintf "unexpected character %c in expression %S" c s)
  done;
  List.rev !toks

(* recursive-descent: expr := term (('+'|'-') term)*; term := factor
   (('*'|'/') factor)*; factor := '-' factor | '(' expr ')' | number *)
let eval_expr line s =
  let toks = ref (lex_expr line s) in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () = match !toks with [] -> () | _ :: rest -> toks := rest in
  let rec expr () =
    let v = ref (term ()) in
    let rec loop () =
      match peek () with
      | Some (Op '+') ->
          advance ();
          v := !v +. term ();
          loop ()
      | Some (Op '-') ->
          advance ();
          v := !v -. term ();
          loop ()
      | _ -> ()
    in
    loop ();
    !v
  and term () =
    let v = ref (factor ()) in
    let rec loop () =
      match peek () with
      | Some (Op '*') ->
          advance ();
          v := !v *. factor ();
          loop ()
      | Some (Op '/') ->
          advance ();
          v := !v /. factor ();
          loop ()
      | _ -> ()
    in
    loop ();
    !v
  and factor () =
    match peek () with
    | Some (Op '-') ->
        advance ();
        -.factor ()
    | Some LPar ->
        advance ();
        let v = expr () in
        (match peek () with
        | Some RPar -> advance ()
        | _ -> fail line "expected )");
        v
    | Some (Num x) ->
        advance ();
        x
    | _ -> fail line ("bad expression: " ^ s)
  in
  let v = expr () in
  if !toks <> [] then fail line ("trailing tokens in expression: " ^ s);
  v

(* ---- statement parsing ---- *)

let strip s = String.trim s

let strip_comment s =
  match String.index_opt s '/' with
  | Some i when i + 1 < String.length s && s.[i + 1] = '/' -> String.sub s 0 i
  | _ -> s

(* "name(args) q[1],q[2]" -> (name, Some args, operands) *)
let split_application line stmt =
  let stmt = strip stmt in
  let head, rest =
    match String.index_opt stmt ' ' with
    | None -> (stmt, "")
    | Some i -> (String.sub stmt 0 i, strip (String.sub stmt (i + 1) (String.length stmt - i - 1)))
  in
  match String.index_opt head '(' with
  | None -> (head, None, rest)
  | Some i ->
      if head.[String.length head - 1] <> ')' then fail line "malformed parameter list";
      let name = String.sub head 0 i in
      let args = String.sub head (i + 1) (String.length head - i - 2) in
      (name, Some args, rest)

let parse_qubit line reg s =
  let s = strip s in
  let fail_q () = fail line (Printf.sprintf "bad operand %S" s) in
  match (String.index_opt s '[', String.index_opt s ']') with
  | Some i, Some j when j > i ->
      let name = String.sub s 0 i in
      if name <> reg then fail line (Printf.sprintf "unknown register %s" name);
      (try int_of_string (String.sub s (i + 1) (j - i - 1)) with _ -> fail_q ())
  | _ -> fail_q ()

let split_args line s =
  (* split on commas not inside parentheses *)
  let out = ref [] and buf = Buffer.create 8 and depth = ref 0 in
  String.iter
    (fun c ->
      if c = '(' then begin
        incr depth;
        Buffer.add_char buf c
      end
      else if c = ')' then begin
        decr depth;
        Buffer.add_char buf c
      end
      else if c = ',' && !depth = 0 then begin
        out := Buffer.contents buf :: !out;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    s;
  if Buffer.length buf > 0 then out := Buffer.contents buf :: !out;
  ignore line;
  List.rev_map strip !out

let gate_of_name line name params =
  let p k = List.nth params k in
  let arity_check n =
    if List.length params <> n then
      fail line (Printf.sprintf "%s expects %d parameters" name n)
  in
  match (name, List.length params) with
  | "id", 0 -> Qgate.Gate.Id
  | "x", 0 -> Qgate.Gate.X
  | "y", 0 -> Qgate.Gate.Y
  | "z", 0 -> Qgate.Gate.Z
  | "h", 0 -> Qgate.Gate.H
  | "s", 0 -> Qgate.Gate.S
  | "sdg", 0 -> Qgate.Gate.Sdg
  | "t", 0 -> Qgate.Gate.T
  | "tdg", 0 -> Qgate.Gate.Tdg
  | "sx", 0 -> Qgate.Gate.SX
  | "sxdg", 0 -> Qgate.Gate.SXdg
  | "rx", _ ->
      arity_check 1;
      Qgate.Gate.RX (p 0)
  | "ry", _ ->
      arity_check 1;
      Qgate.Gate.RY (p 0)
  | "rz", _ ->
      arity_check 1;
      Qgate.Gate.RZ (p 0)
  | ("p" | "u1"), _ ->
      arity_check 1;
      Qgate.Gate.P (p 0)
  | "u2", _ ->
      arity_check 2;
      Qgate.Gate.U (Float.pi /. 2.0, p 0, p 1)
  | ("u" | "u3"), _ ->
      arity_check 3;
      Qgate.Gate.U (p 0, p 1, p 2)
  | "cx", 0 -> Qgate.Gate.CX
  | "cy", 0 -> Qgate.Gate.CY
  | "cz", 0 -> Qgate.Gate.CZ
  | "ch", 0 -> Qgate.Gate.CH
  | "swap", 0 -> Qgate.Gate.SWAP
  | "crx", _ ->
      arity_check 1;
      Qgate.Gate.CRX (p 0)
  | "cry", _ ->
      arity_check 1;
      Qgate.Gate.CRY (p 0)
  | "crz", _ ->
      arity_check 1;
      Qgate.Gate.CRZ (p 0)
  | ("cp" | "cu1"), _ ->
      arity_check 1;
      Qgate.Gate.CP (p 0)
  | "rzz", _ ->
      arity_check 1;
      Qgate.Gate.RZZ (p 0)
  | "ccx", 0 -> Qgate.Gate.CCX
  | "ccz", 0 -> Qgate.Gate.CCZ
  | "cswap", 0 -> Qgate.Gate.CSWAP
  | "mcx", 0 -> Qgate.Gate.MCX 0 (* arity fixed by operand count below *)
  | _ -> fail line (Printf.sprintf "unsupported gate %s" name)

let parse text =
  let lines = String.split_on_char '\n' text in
  let qreg = ref None in
  let instrs = ref [] in
  let lineno = ref 0 in
  let handle_statement stmt =
    let line = !lineno in
    let stmt = strip stmt in
    if stmt = "" then ()
    else begin
      let name, args, operands = split_application line stmt in
      match name with
      | "OPENQASM" | "include" -> ()
      | "qreg" -> begin
          match (String.index_opt operands '[', String.index_opt operands ']') with
          | Some i, Some j when j > i ->
              let reg = String.sub operands 0 i in
              let size = int_of_string (String.sub operands (i + 1) (j - i - 1)) in
              if !qreg <> None then fail line "multiple qreg declarations unsupported";
              qreg := Some (reg, size)
          | _ -> fail line "malformed qreg"
        end
      | "creg" -> ()
      | "barrier" -> begin
          match !qreg with
          | None -> fail line "barrier before qreg"
          | Some (reg, _) ->
              let qs = List.map (parse_qubit line reg) (split_args line operands) in
              instrs := { Circuit.gate = Qgate.Gate.Barrier (List.length qs); qubits = qs } :: !instrs
        end
      | "measure" -> begin
          match !qreg with
          | None -> fail line "measure before qreg"
          | Some (reg, _) -> begin
              match String.index_opt operands '-' with
              | Some i when i + 1 < String.length operands && operands.[i + 1] = '>' ->
                  let q = parse_qubit line reg (String.sub operands 0 i) in
                  instrs := { Circuit.gate = Qgate.Gate.Measure; qubits = [ q ] } :: !instrs
              | _ -> fail line "malformed measure"
            end
        end
      | _ -> begin
          match !qreg with
          | None -> fail line "gate before qreg"
          | Some (reg, _) ->
              let params =
                match args with
                | None -> []
                | Some a -> List.map (eval_expr line) (split_args line a)
              in
              let qs = List.map (parse_qubit line reg) (split_args line operands) in
              let gate =
                match gate_of_name line name params with
                | Qgate.Gate.MCX _ -> Qgate.Gate.MCX (List.length qs - 1)
                | g -> g
              in
              instrs := { Circuit.gate; qubits = qs } :: !instrs
        end
    end
  in
  List.iter
    (fun raw ->
      incr lineno;
      let body = strip (strip_comment raw) in
      if body <> "" then
        (* several statements may share a line; they end with ';' *)
        String.split_on_char ';' body |> List.iter handle_statement)
    lines;
  match !qreg with
  | None -> raise (Parse_error "no qreg declaration found")
  | Some (_, size) -> Circuit.create size (List.rev !instrs)

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let buf = really_input_string ic n in
  close_in ic;
  parse buf
