(** Directed acyclic graph view of a circuit.

    Node [i] depends on node [j] when they share a qubit and [j] appears
    earlier on that wire (Section IV-B of the paper).  Node ids equal the
    instruction's index in the source circuit, so DAG analyses and list
    passes can exchange results by id. *)

type node = {
  id : int;
  gate : Qgate.Gate.t;
  qubits : int list;
  preds : (int * int) list;  (** (qubit, predecessor id) per input wire *)
  succs : (int * int) list;  (** (qubit, successor id) per output wire *)
}

type t

val of_circuit : Circuit.t -> t
val n_qubits : t -> int
val n_nodes : t -> int
val node : t -> int -> node
val nodes : t -> node array
val to_circuit : t -> Circuit.t

val pred_on : t -> int -> int -> int option
(** [pred_on dag id q] is the id of the previous op on wire [q], if any. *)

val succ_on : t -> int -> int -> int option
val first_on_wire : t -> int -> int option
val pred_ids : t -> int -> int list
(** Distinct predecessor ids. *)

val succ_ids : t -> int -> int list

module Traversal : sig
  (** Mutable front-layer traversal used by the routers. *)

  type dag := t
  type t

  val create : dag -> t
  val front : t -> int list
  (** Current front layer: unexecuted nodes whose predecessors have all been
      executed. *)

  val execute : t -> int -> unit
  (** Mark a front-layer node executed, promoting newly-ready successors.
      @raise Invalid_argument if the node is not ready. *)

  val finished : t -> bool
  val executed_count : t -> int

  val lookahead : t -> int -> int list
  (** [lookahead tr k] returns up to [k] two-qubit node ids that follow the
      current front layer in dependency order (the paper's extended layer
      E). *)
end
