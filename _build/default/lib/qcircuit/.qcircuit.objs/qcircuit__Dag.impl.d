lib/qcircuit/dag.ml: Array Circuit Hashtbl List Qgate Queue
