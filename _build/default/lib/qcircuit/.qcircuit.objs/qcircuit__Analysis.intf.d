lib/qcircuit/analysis.mli: Circuit Hashtbl
