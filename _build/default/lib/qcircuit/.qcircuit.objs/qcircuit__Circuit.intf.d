lib/qcircuit/circuit.mli: Format Mathkit Qgate
