lib/qcircuit/analysis.ml: Array Circuit Gate Hashtbl List Option Qgate
