lib/qcircuit/qasm_parser.ml: Buffer Circuit Float List Printf Qgate String
