lib/qcircuit/qasm.mli: Circuit
