lib/qcircuit/qasm.ml: Buffer Circuit Gate List Printf Qgate String
