lib/qcircuit/circuit.ml: Array Cx Format Gate List Mat Mathkit Printf Qgate String Unitary
