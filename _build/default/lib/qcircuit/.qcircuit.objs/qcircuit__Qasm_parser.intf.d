lib/qcircuit/qasm_parser.mli: Circuit
