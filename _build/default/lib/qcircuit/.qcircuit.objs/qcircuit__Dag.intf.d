lib/qcircuit/dag.mli: Circuit Qgate
