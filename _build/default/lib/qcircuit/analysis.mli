(** Static circuit analyses used by layout heuristics, reports and
    examples. *)

val gate_histogram : Circuit.t -> (string * int) list
(** Gate-name counts, sorted by decreasing frequency. *)

val interaction_graph : Circuit.t -> (int * int, int) Hashtbl.t
(** Two-qubit interaction multiplicities keyed by normalized (lo, hi)
    pairs: how many 2q gates act on each logical pair.  This is the
    "logical circuit topology" the paper's Section I refers to. *)

val interaction_degree : Circuit.t -> int array
(** Per-qubit count of two-qubit gates it participates in. *)

val parallelism_profile : Circuit.t -> int array
(** Number of non-barrier ops scheduled at each ASAP depth level (length =
    circuit depth). *)

val critical_path : Circuit.t -> int list
(** Instruction indices of one longest dependency chain (ASAP layering),
    earliest first. *)

val two_qubit_layers : Circuit.t -> int
(** Depth counting only two-qubit gates: a common proxy for execution time
    on hardware where CX dominates. *)
