type node = {
  id : int;
  gate : Qgate.Gate.t;
  qubits : int list;
  preds : (int * int) list;
  succs : (int * int) list;
}

type t = { n : int; arr : node array }

let of_circuit c =
  let instrs = Array.of_list (Circuit.instrs c) in
  let n = Circuit.n_qubits c in
  let last = Array.make n (-1) in
  let preds = Array.make (Array.length instrs) [] in
  let succs = Array.make (Array.length instrs) [] in
  Array.iteri
    (fun id (i : Circuit.instr) ->
      List.iter
        (fun q ->
          if last.(q) >= 0 then begin
            preds.(id) <- (q, last.(q)) :: preds.(id);
            succs.(last.(q)) <- (q, id) :: succs.(last.(q))
          end;
          last.(q) <- id)
        i.qubits)
    instrs;
  let arr =
    Array.mapi
      (fun id (i : Circuit.instr) ->
        { id; gate = i.gate; qubits = i.qubits; preds = List.rev preds.(id); succs = List.rev succs.(id) })
      instrs
  in
  { n; arr }

let n_qubits d = d.n
let n_nodes d = Array.length d.arr
let node d i = d.arr.(i)
let nodes d = d.arr

let to_circuit d =
  Circuit.create d.n
    (Array.to_list (Array.map (fun nd -> { Circuit.gate = nd.gate; qubits = nd.qubits }) d.arr))

let pred_on d id q = List.assoc_opt q d.arr.(id).preds
let succ_on d id q = List.assoc_opt q d.arr.(id).succs

let first_on_wire d q =
  let best = ref None in
  Array.iter
    (fun nd ->
      if !best = None && List.mem q nd.qubits && List.assoc_opt q nd.preds = None then
        best := Some nd.id)
    d.arr;
  !best

let distinct l = List.sort_uniq compare l
let pred_ids d id = distinct (List.map snd d.arr.(id).preds)
let succ_ids d id = distinct (List.map snd d.arr.(id).succs)

module Traversal = struct
  type dag = t

  type t = {
    dag : dag;
    indeg : int array;
    done_ : bool array;
    mutable front_ : int list;
    mutable n_done : int;
  }

  let create dag =
    let n = Array.length dag.arr in
    let indeg = Array.map (fun nd -> List.length (distinct (List.map snd nd.preds))) dag.arr in
    let front_ = ref [] in
    Array.iteri (fun i d -> if d = 0 then front_ := i :: !front_) indeg;
    { dag; indeg; done_ = Array.make n false; front_ = List.rev !front_; n_done = 0 }

  let front t = t.front_

  let execute t id =
    if not (List.mem id t.front_) then invalid_arg "Dag.Traversal.execute: node not ready";
    t.front_ <- List.filter (fun x -> x <> id) t.front_;
    t.done_.(id) <- true;
    t.n_done <- t.n_done + 1;
    let promoted = ref [] in
    List.iter
      (fun s ->
        t.indeg.(s) <- t.indeg.(s) - 1;
        if t.indeg.(s) = 0 then promoted := s :: !promoted)
      (succ_ids t.dag id);
    t.front_ <- t.front_ @ List.rev !promoted

  let finished t = t.n_done = Array.length t.dag.arr
  let executed_count t = t.n_done

  let lookahead t k =
    (* BFS forward from the front layer, collecting 2q gates in dependency
       order, without mutating traversal state. *)
    let seen = Hashtbl.create 64 in
    let out = ref [] in
    let count = ref 0 in
    let queue = Queue.create () in
    List.iter (fun id -> List.iter (fun s -> Queue.add s queue) (succ_ids t.dag id)) t.front_;
    while !count < k && not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        let nd = t.dag.arr.(id) in
        if (not t.done_.(id)) && Qgate.Gate.is_two_qubit nd.gate then begin
          out := id :: !out;
          incr count
        end;
        List.iter (fun s -> Queue.add s queue) (succ_ids t.dag id)
      end
    done;
    List.rev !out
end
