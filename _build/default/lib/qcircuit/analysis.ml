open Qgate

let is_barrier (i : Circuit.instr) = match i.gate with Gate.Barrier _ -> true | _ -> false

let gate_histogram c =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (i : Circuit.instr) ->
      let k = Gate.name i.gate in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    (Circuit.instrs c);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let interaction_graph c =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (i : Circuit.instr) ->
      if Gate.is_two_qubit i.gate then
        match i.qubits with
        | [ a; b ] ->
            let k = (min a b, max a b) in
            Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
        | _ -> ())
    (Circuit.instrs c);
  tbl

let interaction_degree c =
  let deg = Array.make (max 1 (Circuit.n_qubits c)) 0 in
  List.iter
    (fun (i : Circuit.instr) ->
      if Gate.is_two_qubit i.gate then List.iter (fun q -> deg.(q) <- deg.(q) + 1) i.qubits)
    (Circuit.instrs c);
  deg

(* ASAP level of each instruction *)
let levels c =
  let wire = Array.make (max 1 (Circuit.n_qubits c)) 0 in
  List.map
    (fun (i : Circuit.instr) ->
      if is_barrier i then -1
      else begin
        let l = 1 + List.fold_left (fun acc q -> max acc wire.(q)) 0 i.qubits in
        List.iter (fun q -> wire.(q) <- l) i.qubits;
        l
      end)
    (Circuit.instrs c)

let parallelism_profile c =
  let ls = levels c in
  let d = List.fold_left max 0 ls in
  let profile = Array.make d 0 in
  List.iter (fun l -> if l >= 1 then profile.(l - 1) <- profile.(l - 1) + 1) ls;
  profile

let critical_path c =
  let instrs = Array.of_list (Circuit.instrs c) in
  let ls = Array.of_list (levels c) in
  let depth = Array.fold_left max 0 ls in
  if depth = 0 then []
  else begin
    (* walk back from a deepest instruction through per-wire predecessors *)
    let path = ref [] in
    let target = ref (-1) in
    Array.iteri (fun idx l -> if l = depth && !target = -1 then target := idx) ls;
    let cur = ref !target in
    while !cur >= 0 do
      path := !cur :: !path;
      let want = ls.(!cur) - 1 in
      let found = ref (-1) in
      if want >= 1 then
        for j = !cur - 1 downto 0 do
          if
            !found = -1 && ls.(j) = want
            && List.exists (fun q -> List.mem q instrs.(!cur).Circuit.qubits) instrs.(j).Circuit.qubits
          then found := j
        done;
      cur := !found
    done;
    !path
  end

let two_qubit_layers c =
  let wire = Array.make (max 1 (Circuit.n_qubits c)) 0 in
  let out = ref 0 in
  List.iter
    (fun (i : Circuit.instr) ->
      if Gate.is_two_qubit i.gate then begin
        let l = 1 + List.fold_left (fun acc q -> max acc wire.(q)) 0 i.qubits in
        List.iter (fun q -> wire.(q) <- l) i.qubits;
        if l > !out then out := l
      end)
    (Circuit.instrs c);
  !out
