(** OpenQASM 2 emission, for debugging and interchange.

    High-level gates that have no OpenQASM 2 builtin (mcx, unitary blocks)
    are lowered structurally first. *)

val to_string : Circuit.t -> string
(** Render a circuit as an OpenQASM 2 program.  [Unitary2] blocks raise
    [Invalid_argument]; synthesize them before emitting. *)
