open Qgate

let gate_text (g : Gate.t) qubits =
  let qs = String.concat "," (List.map (Printf.sprintf "q[%d]") qubits) in
  match g with
  | Gate.RX a | Gate.RY a | Gate.RZ a | Gate.P a | Gate.CRX a | Gate.CRY a | Gate.CRZ a
  | Gate.CP a | Gate.RZZ a ->
      Printf.sprintf "%s(%.12g) %s;" (Gate.name g) a qs
  | Gate.U (t, p, l) -> Printf.sprintf "u(%.12g,%.12g,%.12g) %s;" t p l qs
  | Gate.Barrier _ -> Printf.sprintf "barrier %s;" qs
  | Gate.Measure ->
      let q = List.hd qubits in
      Printf.sprintf "measure q[%d] -> c[%d];" q q
  | Gate.Unitary2 _ -> invalid_arg "Qasm: synthesize unitary blocks before emission"
  | _ -> Printf.sprintf "%s %s;" (Gate.name g) qs

let to_string c =
  let lowered =
    Circuit.instrs c
    |> List.map (fun (i : Circuit.instr) -> (i.gate, i.qubits))
    |> Qgate.Decompose.to_cx_basis
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  Buffer.add_string buf (Printf.sprintf "qreg q[%d];\ncreg c[%d];\n" (Circuit.n_qubits c) (Circuit.n_qubits c));
  List.iter
    (fun (g, qs) ->
      Buffer.add_string buf (gate_text g qs);
      Buffer.add_char buf '\n')
    lowered;
  Buffer.contents buf
