let kron_factor m =
  if Mat.rows m <> 4 || Mat.cols m <> 4 then None
  else begin
    (* Locate the largest entry; it anchors a non-degenerate row/column of
       each factor (m[2a+i][2c+j] = A[a][c] * B[i][j]). *)
    let best_r = ref 0 and best_c = ref 0 in
    for i = 0 to 3 do
      for j = 0 to 3 do
        if Cx.abs (Mat.get m i j) > Cx.abs (Mat.get m !best_r !best_c) then begin
          best_r := i;
          best_c := j
        end
      done
    done;
    let r = !best_r and c = !best_c in
    if Cx.abs (Mat.get m r c) < 1e-12 then None
    else begin
      let a1 = r / 2 and b1 = r mod 2 and a2 = c / 2 and b2 = c mod 2 in
      let b_raw = Mat.init 2 2 (fun i j -> Mat.get m ((2 * a1) + i) ((2 * a2) + j)) in
      let a_raw = Mat.init 2 2 (fun i j -> Mat.get m ((2 * i) + b1) ((2 * j) + b2)) in
      let normalize x =
        let d = Mat.det x in
        if Cx.abs d < 1e-12 then None else Some (Mat.scale Cx.(one / Cx.sqrt d) x)
      in
      match (normalize a_raw, normalize b_raw) with
      | Some a, Some b -> begin
          let prod = Mat.kron a b in
          match Mat.phase_to m prod with
          | Some g ->
              if Mat.frobenius_distance m (Mat.scale g prod) < 1e-6 then Some (g, a, b)
              else None
          | None -> None
        end
      | _ -> None
    end
  end
