lib/mathkit/eig.mli:
