lib/mathkit/kronfactor.mli: Cx Mat
