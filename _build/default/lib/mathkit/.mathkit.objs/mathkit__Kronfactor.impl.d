lib/mathkit/kronfactor.ml: Cx Mat
