lib/mathkit/mat.ml: Array Cx Float Format List
