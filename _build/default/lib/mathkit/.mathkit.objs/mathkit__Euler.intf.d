lib/mathkit/euler.mli: Mat
