lib/mathkit/mat.mli: Cx Format
