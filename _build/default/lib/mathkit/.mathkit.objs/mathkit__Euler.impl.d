lib/mathkit/euler.ml: Cx Float Mat
