lib/mathkit/randmat.mli: Mat Rng
