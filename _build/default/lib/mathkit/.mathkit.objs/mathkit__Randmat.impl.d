lib/mathkit/randmat.ml: Array Complex Cx Mat Rng
