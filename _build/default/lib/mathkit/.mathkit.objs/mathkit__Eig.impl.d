lib/mathkit/eig.ml: Array Float
