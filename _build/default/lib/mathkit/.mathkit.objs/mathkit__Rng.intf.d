lib/mathkit/rng.mli:
