(** Factor a 4x4 matrix into a Kronecker product of 2x2 matrices.

    Used by the KAK synthesis to split the single-qubit "local" corrections
    [K = A (x) B] out of a 4x4 unitary known to be a tensor product. *)

val kron_factor : Mat.t -> (Cx.t * Mat.t * Mat.t) option
(** [kron_factor m] returns [Some (g, a, b)] with [m = g (a (x) b)], where
    [a] and [b] have determinant 1 (SU(2) for unitary input).  Returns
    [None] when [m] is not a Kronecker product within 1e-6. *)
