(** Dense complex matrices.

    Sizes here are tiny (2x2 and 4x4 dominate: gate unitaries and two-qubit
    blocks), so the representation is a flat row-major array with
    straightforward O(n^3) kernels.  Statevectors live in {!Qsim}, not here. *)

type t

val rows : t -> int
val cols : t -> int

val make : int -> int -> Cx.t -> t
val init : int -> int -> (int -> int -> Cx.t) -> t
val identity : int -> t
val zeros : int -> int -> t

val of_rows : Cx.t list list -> t
(** Build from row lists.  @raise Invalid_argument on ragged input. *)

val of_real_rows : float list list -> t

val get : t -> int -> int -> Cx.t
val set : t -> int -> int -> Cx.t -> unit
val copy : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : Cx.t -> t -> t
val kron : t -> t -> t
val transpose : t -> t
val conj : t -> t
val adjoint : t -> t
(** Conjugate transpose. *)

val trace : t -> Cx.t
val det : t -> Cx.t
(** Determinant by LU with partial pivoting. *)

val apply_vec : t -> Cx.t array -> Cx.t array
(** Matrix-vector product. *)

val frobenius_distance : t -> t -> float

val approx_equal : ?eps:float -> t -> t -> bool
(** Entry-wise closeness. *)

val equal_up_to_phase : ?eps:float -> t -> t -> bool
(** [equal_up_to_phase a b] holds when [a = e^{i phi} b] for some global
    phase [phi].  This is the right notion of equality for circuit
    unitaries. *)

val is_unitary : ?eps:float -> t -> bool

val phase_to : t -> t -> Cx.t option
(** [phase_to a b] returns [Some z], [z] unit modulus, when [a = z b]. *)

val pp : Format.formatter -> t -> unit
