(** Eigensolvers for small real symmetric matrices.

    The KAK decomposition needs an orthogonal matrix that simultaneously
    diagonalizes the (commuting) real and imaginary parts of a symmetric
    unitary 4x4 matrix; both routines here serve that purpose.  Real
    matrices are represented as [float array array] (rows). *)

val jacobi : float array array -> float array * float array array
(** [jacobi a] diagonalizes the real symmetric matrix [a] by cyclic Jacobi
    sweeps.  Returns [(eigenvalues, v)] with [v] orthogonal, columns being
    eigenvectors: [a = v . diag(eigenvalues) . v^T].  [a] is not modified. *)

val simultaneous_diagonalize :
  float array array -> float array array -> float array array
(** [simultaneous_diagonalize a b] returns an orthogonal [p] such that both
    [p^T a p] and [p^T b p] are diagonal.  Requires [a], [b] symmetric and
    commuting (as in the KAK construction); degenerate eigenspaces of [a]
    are re-diagonalized against [b]. *)

val off_diagonal_norm : float array array -> float
(** Frobenius norm of the strictly off-diagonal part; used in tests. *)
