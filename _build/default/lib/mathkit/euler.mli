(** Euler-angle decompositions of 2x2 unitaries.

    Convention (Qiskit-compatible):
    - [Rz a = diag(e^{-ia/2}, e^{ia/2})]
    - [Ry t = [[cos t/2, -sin t/2], [sin t/2, cos t/2]]]
    - [U(theta,phi,lam)] is Qiskit's [u] gate, equal to
      [e^{i(phi+lam)/2} Rz(phi) Ry(theta) Rz(lam)]. *)

type zyz = { theta : float; phi : float; lam : float; phase : float }
(** [u = e^{i phase} Rz(phi) Ry(theta) Rz(lam)]. *)

val rz_mat : float -> Mat.t
val ry_mat : float -> Mat.t
val rx_mat : float -> Mat.t
val u_mat : float -> float -> float -> Mat.t
(** [u_mat theta phi lam] is the Qiskit [U] gate unitary. *)

val zyz_of_unitary : Mat.t -> zyz
(** Decompose a 2x2 unitary.  Total reconstruction error is < 1e-9 for
    unitary input; raises [Invalid_argument] on wrong shape. *)

val zyz_to_mat : zyz -> Mat.t
(** Reconstruct the unitary, including global phase. *)

val u_params_of_unitary : Mat.t -> float * float * float * float
(** [(theta, phi, lam, phase)] with [input = e^{i phase} U(theta,phi,lam)]. *)

val is_identity_angles : ?eps:float -> float * float * float -> bool
(** Whether [U(theta,phi,lam)] is the identity up to global phase. *)
