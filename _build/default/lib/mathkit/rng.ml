type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64: passes BigCrush, tiny state, trivially splittable. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let split t = { state = next_int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the Int64 -> int conversion stays non-negative *)
  let v = Int64.to_int (Int64.logand (next_int64 t) 0x3FFFFFFFFFFFFFFFL) in
  v mod bound

let float t bound =
  (* 53 high bits -> uniform double in [0,1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-300 then draw () else u
  in
  let u1 = draw () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))
