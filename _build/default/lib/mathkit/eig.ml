let mat_copy a = Array.map Array.copy a

let off_diagonal_norm a =
  let n = Array.length a in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then acc := !acc +. (a.(i).(j) *. a.(i).(j))
    done
  done;
  sqrt !acc

(* One Jacobi rotation zeroing a.(p).(q), accumulating into v. *)
let rotate a v p q =
  let apq = a.(p).(q) in
  if Float.abs apq > 1e-300 then begin
    let app = a.(p).(p) and aqq = a.(q).(q) in
    let theta = (aqq -. app) /. (2.0 *. apq) in
    let t =
      let s = if theta >= 0.0 then 1.0 else -1.0 in
      s /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
    in
    let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
    let s = t *. c in
    let n = Array.length a in
    for k = 0 to n - 1 do
      let akp = a.(k).(p) and akq = a.(k).(q) in
      a.(k).(p) <- (c *. akp) -. (s *. akq);
      a.(k).(q) <- (s *. akp) +. (c *. akq)
    done;
    for k = 0 to n - 1 do
      let apk = a.(p).(k) and aqk = a.(q).(k) in
      a.(p).(k) <- (c *. apk) -. (s *. aqk);
      a.(q).(k) <- (s *. apk) +. (c *. aqk)
    done;
    for k = 0 to n - 1 do
      let vkp = v.(k).(p) and vkq = v.(k).(q) in
      v.(k).(p) <- (c *. vkp) -. (s *. vkq);
      v.(k).(q) <- (s *. vkp) +. (c *. vkq)
    done
  end

let jacobi a0 =
  let n = Array.length a0 in
  let a = mat_copy a0 in
  let v = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1.0 else 0.0)) in
  let max_sweeps = 100 in
  let rec sweep k =
    if k < max_sweeps && off_diagonal_norm a > 1e-13 then begin
      for p = 0 to n - 2 do
        for q = p + 1 to n - 1 do
          rotate a v p q
        done
      done;
      sweep (k + 1)
    end
  in
  sweep 0;
  (Array.init n (fun i -> a.(i).(i)), v)

(* p^T m p for orthogonal p. *)
let conjugate_by m p =
  let n = Array.length m in
  let tmp = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. (m.(i).(k) *. p.(k).(j))
      done;
      tmp.(i).(j) <- !acc
    done
  done;
  let out = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. (p.(k).(i) *. tmp.(k).(j))
      done;
      out.(i).(j) <- !acc
    done
  done;
  out

let simultaneous_diagonalize a b =
  let n = Array.length a in
  let vals, p = jacobi a in
  (* Group indices whose a-eigenvalues coincide; within each degenerate
     group, b (conjugated) is still symmetric and must be diagonalized. *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare vals.(i) vals.(j)) order;
  let p_sorted = Array.init n (fun i -> Array.init n (fun j -> p.(i).(order.(j)))) in
  let vals_sorted = Array.map (fun i -> vals.(i)) order in
  let b' = conjugate_by b p_sorted in
  let result = mat_copy p_sorted in
  let tol = 1e-7 in
  let i = ref 0 in
  while !i < n do
    let j = ref (!i + 1) in
    while !j < n && Float.abs (vals_sorted.(!j) -. vals_sorted.(!i)) < tol do
      incr j
    done;
    let size = !j - !i in
    if size > 1 then begin
      (* diagonalize the (size x size) block of b' at offset !i *)
      let block = Array.init size (fun r -> Array.init size (fun c -> b'.(!i + r).(!i + c))) in
      let _, q = jacobi block in
      (* result columns [!i .. !j-1] <- result_cols * q *)
      let cols = Array.init n (fun r -> Array.init size (fun c -> result.(r).(!i + c))) in
      for r = 0 to n - 1 do
        for c = 0 to size - 1 do
          let acc = ref 0.0 in
          for k = 0 to size - 1 do
            acc := !acc +. (cols.(r).(k) *. q.(k).(c))
          done;
          result.(r).(!i + c) <- !acc
        done
      done
    end;
    i := !j
  done;
  result
