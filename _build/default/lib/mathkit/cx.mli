(** Complex-number helpers on top of [Stdlib.Complex].

    The standard library provides arithmetic; this module adds the numeric
    predicates, constants and conversions the synthesis code needs. *)

type t = Complex.t

val zero : t
val one : t
val i : t
val minus_one : t

val re : float -> t
(** Real number as a complex. *)

val im : float -> t
(** Purely imaginary number. *)

val make : float -> float -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val neg : t -> t
val conj : t -> t
val abs : t -> float
val abs2 : t -> float
(** Squared modulus, avoids the sqrt of {!abs}. *)

val arg : t -> float
val sqrt : t -> t
val exp_i : float -> t
(** [exp_i theta] is e^{i theta}. *)

val scale : float -> t -> t

val approx : ?eps:float -> t -> t -> bool
(** Componentwise closeness, default [eps] = 1e-9. *)

val is_real : ?eps:float -> t -> bool
val is_zero : ?eps:float -> t -> bool
val pp : Format.formatter -> t -> unit
