type zyz = { theta : float; phi : float; lam : float; phase : float }

let rz_mat a =
  Mat.of_rows
    [ [ Cx.exp_i (-.a /. 2.0); Cx.zero ]; [ Cx.zero; Cx.exp_i (a /. 2.0) ] ]

let ry_mat t =
  let c = cos (t /. 2.0) and s = sin (t /. 2.0) in
  Mat.of_real_rows [ [ c; -.s ]; [ s; c ] ]

let rx_mat t =
  let c = Cx.re (cos (t /. 2.0)) and s = Cx.make 0.0 (-.sin (t /. 2.0)) in
  Mat.of_rows [ [ c; s ]; [ s; c ] ]

let u_mat theta phi lam =
  let c = cos (theta /. 2.0) and s = sin (theta /. 2.0) in
  Mat.of_rows
    [
      [ Cx.re c; Cx.(neg (exp_i lam * re s)) ];
      [ Cx.(exp_i phi * re s); Cx.(exp_i (phi +. lam) * re c) ];
    ]

let zyz_to_mat { theta; phi; lam; phase } =
  Mat.scale (Cx.exp_i phase) (Mat.mul (rz_mat phi) (Mat.mul (ry_mat theta) (rz_mat lam)))

let zyz_of_unitary u =
  if Mat.rows u <> 2 || Mat.cols u <> 2 then invalid_arg "Euler.zyz_of_unitary: not 2x2";
  (* Normalize to SU(2). *)
  let d = Mat.det u in
  let s = Cx.sqrt d in
  let su = Mat.scale Cx.(one / s) u in
  let m00 = Mat.get su 0 0
  and m10 = Mat.get su 1 0
  and m11 = Mat.get su 1 1 in
  let theta = 2.0 *. atan2 (Cx.abs m10) (Cx.abs m00) in
  let phi, lam =
    if Cx.abs m10 < 1e-10 then (2.0 *. Cx.arg m11, 0.0)
    else if Cx.abs m00 < 1e-10 then (2.0 *. Cx.arg m10, 0.0)
    else (Cx.arg m11 +. Cx.arg m10, Cx.arg m11 -. Cx.arg m10)
  in
  (* Recover the global phase by comparing against the reconstruction. *)
  let candidate = { theta; phi; lam; phase = 0.0 } in
  let recon = zyz_to_mat candidate in
  match Mat.phase_to u recon with
  | Some z -> { candidate with phase = Cx.arg z }
  | None ->
      (* Should not happen for unitary input; keep best effort. *)
      { candidate with phase = Cx.arg d /. 2.0 }

let u_params_of_unitary m =
  let { theta; phi; lam; phase } = zyz_of_unitary m in
  (* e^{i phase} Rz Ry Rz = e^{i (phase - (phi+lam)/2)} U(theta,phi,lam) *)
  (theta, phi, lam, phase -. ((phi +. lam) /. 2.0))

let is_identity_angles ?(eps = 1e-9) (theta, phi, lam) =
  let wrapped a =
    let t = Float.rem a (2.0 *. Float.pi) in
    let t = if t < 0.0 then t +. (2.0 *. Float.pi) else t in
    Float.min t (Float.abs ((2.0 *. Float.pi) -. t))
  in
  wrapped theta <= eps && wrapped (phi +. lam) <= eps
