type t = { r : int; c : int; m : Cx.t array }

let rows a = a.r
let cols a = a.c
let make r c v = { r; c; m = Array.make (r * c) v }
let init r c f = { r; c; m = Array.init (r * c) (fun k -> f (k / c) (k mod c)) }
let zeros r c = make r c Cx.zero
let identity n = init n n (fun i j -> if i = j then Cx.one else Cx.zero)

let of_rows rows_ =
  match rows_ with
  | [] -> invalid_arg "Mat.of_rows: empty"
  | first :: _ ->
      let c = List.length first in
      let r = List.length rows_ in
      if List.exists (fun row -> List.length row <> c) rows_ then
        invalid_arg "Mat.of_rows: ragged rows";
      let m = Array.make (r * c) Cx.zero in
      List.iteri (fun i row -> List.iteri (fun j v -> m.((i * c) + j) <- v) row) rows_;
      { r; c; m }

let of_real_rows rows_ = of_rows (List.map (List.map Cx.re) rows_)
let get a i j = a.m.((i * a.c) + j)
let set a i j v = a.m.((i * a.c) + j) <- v
let copy a = { a with m = Array.copy a.m }

let same_shape a b op =
  if a.r <> b.r || a.c <> b.c then invalid_arg ("Mat." ^ op ^ ": shape mismatch")

let add a b =
  same_shape a b "add";
  { a with m = Array.mapi (fun k v -> Cx.(v + b.m.(k))) a.m }

let sub a b =
  same_shape a b "sub";
  { a with m = Array.mapi (fun k v -> Cx.(v - b.m.(k))) a.m }

let scale z a = { a with m = Array.map (fun v -> Cx.(z * v)) a.m }

let mul a b =
  if a.c <> b.r then invalid_arg "Mat.mul: shape mismatch";
  let out = make a.r b.c Cx.zero in
  for i = 0 to a.r - 1 do
    for k = 0 to a.c - 1 do
      let aik = get a i k in
      if not (Cx.is_zero ~eps:0.0 aik) then
        for j = 0 to b.c - 1 do
          let cur = get out i j and bkj = get b k j in
          set out i j Cx.(cur + (aik * bkj))
        done
    done
  done;
  out

let kron a b =
  init (a.r * b.r) (a.c * b.c) (fun i j ->
      let x = get a (i / b.r) (j / b.c) and y = get b (i mod b.r) (j mod b.c) in
      Cx.(x * y))

let transpose a = init a.c a.r (fun i j -> get a j i)
let conj a = { a with m = Array.map Cx.conj a.m }
let adjoint a = init a.c a.r (fun i j -> Cx.conj (get a j i))

let trace a =
  let n = min a.r a.c in
  let acc = ref Cx.zero in
  for i = 0 to n - 1 do
    let d = get a i i in
    acc := Cx.(!acc + d)
  done;
  !acc

let det a =
  if a.r <> a.c then invalid_arg "Mat.det: not square";
  let n = a.r in
  let w = copy a in
  let sign = ref 1.0 in
  let result = ref Cx.one in
  (try
     for col = 0 to n - 1 do
       (* partial pivot *)
       let pivot = ref col in
       for i = col + 1 to n - 1 do
         if Cx.abs (get w i col) > Cx.abs (get w !pivot col) then pivot := i
       done;
       if Cx.abs (get w !pivot col) < 1e-300 then begin
         result := Cx.zero;
         raise Exit
       end;
       if !pivot <> col then begin
         sign := -. !sign;
         for j = 0 to n - 1 do
           let tmp = get w col j in
           set w col j (get w !pivot j);
           set w !pivot j tmp
         done
       end;
       let d = get w col col in
       result := Cx.(!result * d);
       for i = col + 1 to n - 1 do
         let num = get w i col in
         let factor = Cx.(num / d) in
         for j = col to n - 1 do
           let cur = get w i j and piv = get w col j in
           set w i j Cx.(cur - (factor * piv))
         done
       done
     done
   with Exit -> ());
  Cx.scale !sign !result

let apply_vec a v =
  if a.c <> Array.length v then invalid_arg "Mat.apply_vec: shape mismatch";
  Array.init a.r (fun i ->
      let acc = ref Cx.zero in
      for j = 0 to a.c - 1 do
        let x = get a i j and y = v.(j) in
        acc := Cx.(!acc + (x * y))
      done;
      !acc)

let frobenius_distance a b =
  same_shape a b "frobenius_distance";
  let acc = ref 0.0 in
  Array.iteri (fun k v -> acc := !acc +. Cx.abs2 Cx.(v - b.m.(k))) a.m;
  sqrt !acc

let approx_equal ?(eps = 1e-9) a b =
  a.r = b.r && a.c = b.c && frobenius_distance a b <= eps *. float_of_int (a.r * a.c)

let phase_to a b =
  if a.r <> b.r || a.c <> b.c then None
  else begin
    (* Use the largest entry of b as the phase reference to stay away from
       numerical noise. *)
    let best = ref 0 in
    Array.iteri (fun k v -> if Cx.abs v > Cx.abs b.m.(!best) then best := k) b.m;
    if Cx.abs b.m.(!best) < 1e-9 then if approx_equal a b then Some Cx.one else None
    else
      let z = Cx.(a.m.(!best) / b.m.(!best)) in
      if Float.abs (Cx.abs z -. 1.0) > 1e-6 then None
      else
        let scaled = scale z b in
        if frobenius_distance a scaled <= 1e-6 *. float_of_int (a.r * a.c) then Some z
        else None
  end

let equal_up_to_phase ?eps a b =
  ignore eps;
  match phase_to a b with Some _ -> true | None -> false

let is_unitary ?(eps = 1e-9) a =
  a.r = a.c && approx_equal ~eps (mul (adjoint a) a) (identity a.r)

let pp ppf a =
  Format.fprintf ppf "@[<v>";
  for i = 0 to a.r - 1 do
    Format.fprintf ppf "[";
    for j = 0 to a.c - 1 do
      if j > 0 then Format.fprintf ppf ", ";
      Cx.pp ppf (get a i j)
    done;
    Format.fprintf ppf "]";
    if i < a.r - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
