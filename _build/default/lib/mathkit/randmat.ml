let ginibre rng n =
  Mat.init n n (fun _ _ -> Cx.make (Rng.gaussian rng) (Rng.gaussian rng))

(* Gram-Schmidt QR; columns of q are orthonormal.  R's diagonal phases are
   divided out so the distribution is Haar (Mezzadri 2007). *)
let unitary rng n =
  let a = ginibre rng n in
  let cols = Array.init n (fun j -> Array.init n (fun i -> Mat.get a i j)) in
  let dot u v =
    let acc = ref Cx.zero in
    for i = 0 to n - 1 do
      let x = Cx.conj u.(i) and y = v.(i) in
      acc := Cx.(!acc + (x * y))
    done;
    !acc
  in
  for j = 0 to n - 1 do
    for k = 0 to j - 1 do
      let c = dot cols.(k) cols.(j) in
      for row = 0 to n - 1 do
        let p = cols.(k).(row) and v = cols.(j).(row) in
        cols.(j).(row) <- Cx.(v - (c * p))
      done
    done;
    let nrm = sqrt (dot cols.(j) cols.(j)).Complex.re in
    let nrm = if nrm = 0.0 then 1.0 else nrm in
    (* normalize and fix the phase of the leading entry *)
    let lead = cols.(j).(0) in
    let phase = if Cx.abs lead < 1e-12 then Cx.one else Cx.scale (1.0 /. Cx.abs lead) lead in
    let divisor = Cx.scale nrm phase in
    for row = 0 to n - 1 do
      let v = cols.(j).(row) in
      cols.(j).(row) <- Cx.(v / divisor)
    done
  done;
  Mat.init n n (fun i j -> cols.(j).(i))

let special u =
  let n = Mat.rows u in
  let d = Mat.det u in
  (* divide by the n-th root of the determinant *)
  let theta = Cx.arg d /. float_of_int n in
  Mat.scale (Cx.exp_i (-.theta)) u

let su2 rng = special (unitary rng 2)
let su4 rng = special (unitary rng 4)
