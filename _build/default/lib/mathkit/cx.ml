type t = Complex.t

let zero = Complex.zero
let one = Complex.one
let i = Complex.i
let minus_one = { Complex.re = -1.0; im = 0.0 }
let re x = { Complex.re = x; im = 0.0 }
let im y = { Complex.re = 0.0; im = y }
let make re im = { Complex.re; im }
let ( + ) = Complex.add
let ( - ) = Complex.sub
let ( * ) = Complex.mul
let ( / ) = Complex.div
let neg = Complex.neg
let conj = Complex.conj
let abs = Complex.norm
let abs2 = Complex.norm2
let arg = Complex.arg
let sqrt = Complex.sqrt
let exp_i theta = { Complex.re = cos theta; im = sin theta }
let scale s z = { Complex.re = s *. z.Complex.re; im = s *. z.Complex.im }

let approx ?(eps = 1e-9) a b =
  Float.abs (a.Complex.re -. b.Complex.re) <= eps
  && Float.abs (a.Complex.im -. b.Complex.im) <= eps

let is_real ?(eps = 1e-9) z = Float.abs z.Complex.im <= eps
let is_zero ?(eps = 1e-9) z = Float.abs z.Complex.re <= eps && Float.abs z.Complex.im <= eps

let pp ppf z =
  if Float.abs z.Complex.im < 1e-12 then Format.fprintf ppf "%.6g" z.Complex.re
  else Format.fprintf ppf "(%.6g%+.6gi)" z.Complex.re z.Complex.im
