(** Deterministic, splittable pseudo-random number generator (splitmix64).

    All randomness in the library flows through this module so that every
    experiment is reproducible from a single integer seed, matching the
    paper's protocol of averaging over a fixed number of seeded runs. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Equal seeds
    produce equal streams. *)

val split : t -> t
(** [split rng] derives an independent generator and advances [rng].  Used to
    hand child components their own stream without coupling draw orders. *)

val int : t -> int -> int
(** [int rng bound] draws uniformly from [0, bound).  [bound] must be > 0. *)

val float : t -> float -> float
(** [float rng bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : t -> float
(** Standard normal draw (Box-Muller). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation rng n] is a uniformly random permutation of [0..n-1]. *)

val pick : t -> 'a list -> 'a
(** Uniform draw from a non-empty list.  @raise Invalid_argument on []. *)
