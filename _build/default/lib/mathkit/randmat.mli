(** Random matrices for property-based testing and synthetic workloads. *)

val ginibre : Rng.t -> int -> Mat.t
(** Square matrix of i.i.d. standard complex Gaussians. *)

val unitary : Rng.t -> int -> Mat.t
(** Haar-distributed random unitary (QR of a Ginibre matrix with the phase
    convention fixed, Mezzadri 2007). *)

val su2 : Rng.t -> Mat.t
(** Haar-random 2x2 special unitary. *)

val su4 : Rng.t -> Mat.t
(** Haar-random 4x4 special unitary. *)
