open Qgate

let pi = Float.pi

let all_qubits n = List.init n (fun i -> i)

let mcz_or_cz b qs =
  match qs with
  | [ a; c ] -> Qcircuit.Circuit.Builder.add b Gate.CZ [ a; c ]
  | [ a ] -> Qcircuit.Circuit.Builder.add b Gate.Z [ a ]
  | qs -> Qcircuit.Circuit.Builder.add b (Gate.MCZ (List.length qs - 1)) qs

let grover n =
  let b = Qcircuit.Circuit.Builder.create n in
  let iterations = if n <= 4 then 3 else 1 in
  let layer g = List.iter (fun q -> Qcircuit.Circuit.Builder.add b g [ q ]) (all_qubits n) in
  layer Gate.H;
  for _ = 1 to iterations do
    (* oracle: phase flip on |1...1> *)
    mcz_or_cz b (all_qubits n);
    (* diffusion *)
    layer Gate.H;
    layer Gate.X;
    mcz_or_cz b (all_qubits n);
    layer Gate.X;
    layer Gate.H
  done;
  Qcircuit.Circuit.Builder.circuit b

let vqe n =
  let rng = Mathkit.Rng.create (1000 + n) in
  let b = Qcircuit.Circuit.Builder.create n in
  let ry_layer () =
    List.iter
      (fun q ->
        Qcircuit.Circuit.Builder.add b (Gate.RY (Mathkit.Rng.float rng (2.0 *. pi))) [ q ])
      (all_qubits n)
  in
  for _ = 1 to 3 do
    ry_layer ();
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        Qcircuit.Circuit.Builder.add b Gate.CX [ i; j ]
      done
    done
  done;
  ry_layer ();
  Qcircuit.Circuit.Builder.circuit b

let bernstein_vazirani n =
  let b = Qcircuit.Circuit.Builder.create n in
  let anc = n - 1 in
  List.iter (fun q -> Qcircuit.Circuit.Builder.add b Gate.H [ q ]) (all_qubits (n - 1));
  Qcircuit.Circuit.Builder.add b Gate.X [ anc ];
  Qcircuit.Circuit.Builder.add b Gate.H [ anc ];
  (* all-ones secret *)
  for q = 0 to n - 2 do
    Qcircuit.Circuit.Builder.add b Gate.CX [ q; anc ]
  done;
  List.iter (fun q -> Qcircuit.Circuit.Builder.add b Gate.H [ q ]) (all_qubits (n - 1));
  Qcircuit.Circuit.Builder.circuit b

let qft n =
  let b = Qcircuit.Circuit.Builder.create n in
  for i = 0 to n - 1 do
    Qcircuit.Circuit.Builder.add b Gate.H [ i ];
    for j = i + 1 to n - 1 do
      let angle = pi /. float_of_int (1 lsl (j - i)) in
      Qcircuit.Circuit.Builder.add b (Gate.CP angle) [ j; i ]
    done
  done;
  Qcircuit.Circuit.Builder.circuit b

let inverse_qft_on b qs =
  (* inverse of the [qft] structure restricted to the listed qubits *)
  let arr = Array.of_list qs in
  let n = Array.length arr in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      let angle = -.pi /. float_of_int (1 lsl (j - i)) in
      Qcircuit.Circuit.Builder.add b (Gate.CP angle) [ arr.(j); arr.(i) ]
    done;
    Qcircuit.Circuit.Builder.add b Gate.H [ arr.(i) ]
  done

(* With counting qubit k controlling P(theta * 2^k) and the inverse of the
   [qft] pattern above, the estimate reads out on the counting register with
   qubit 0 as the most significant bit (validated in the test suite against
   an exactly representable phase). *)
let qpe n =
  let t = n - 1 in
  let eigen = n - 1 in
  let b = Qcircuit.Circuit.Builder.create n in
  (* eigenstate |1> of P(theta) *)
  Qcircuit.Circuit.Builder.add b Gate.X [ eigen ];
  List.iter (fun q -> Qcircuit.Circuit.Builder.add b Gate.H [ q ]) (all_qubits t);
  let theta = 2.0 *. pi *. 0.3203125 in
  for k = 0 to t - 1 do
    let angle = theta *. float_of_int (1 lsl k) in
    Qcircuit.Circuit.Builder.add b (Gate.CP angle) [ k; eigen ]
  done;
  inverse_qft_on b (all_qubits t);
  Qcircuit.Circuit.Builder.circuit b

(* Cuccaro ripple-carry adder: qubits [cin; a0..ak-1; b0..bk-1; cout] *)
let adder n_qubits =
  if n_qubits < 4 || n_qubits mod 2 <> 0 then
    invalid_arg "Generators.adder: needs 2k + 2 qubits";
  let k = (n_qubits - 2) / 2 in
  let cin = 0 and cout = n_qubits - 1 in
  let a i = 1 + i and bq i = 1 + k + i in
  let b = Qcircuit.Circuit.Builder.create n_qubits in
  let maj c x y =
    Qcircuit.Circuit.Builder.add b Gate.CX [ y; x ];
    Qcircuit.Circuit.Builder.add b Gate.CX [ y; c ];
    Qcircuit.Circuit.Builder.add b Gate.CCX [ c; x; y ]
  in
  let uma c x y =
    Qcircuit.Circuit.Builder.add b Gate.CCX [ c; x; y ];
    Qcircuit.Circuit.Builder.add b Gate.CX [ y; c ];
    Qcircuit.Circuit.Builder.add b Gate.CX [ c; x ]
  in
  (* prepare some inputs so the adder computes something nontrivial *)
  for i = 0 to k - 1 do
    if i mod 2 = 0 then Qcircuit.Circuit.Builder.add b Gate.X [ a i ];
    if i mod 3 = 0 then Qcircuit.Circuit.Builder.add b Gate.X [ bq i ]
  done;
  maj cin (bq 0) (a 0);
  for i = 1 to k - 1 do
    maj (a (i - 1)) (bq i) (a i)
  done;
  Qcircuit.Circuit.Builder.add b Gate.CX [ a (k - 1); cout ];
  for i = k - 1 downto 1 do
    uma (a (i - 1)) (bq i) (a i)
  done;
  uma cin (bq 0) (a 0);
  Qcircuit.Circuit.Builder.circuit b

(* Shift-and-add multiplier with a truncated product register:
   [cin; a(k); b(k); temp(k); prod(p)] where p = n - 3k - 1. *)
let multiplier n_qubits =
  let k = (n_qubits - 1) / 5 in
  let p = n_qubits - 1 - (3 * k) in
  if k < 2 || p < k + 1 then invalid_arg "Generators.multiplier: too few qubits";
  let cin = 0 in
  let a i = 1 + i and bq i = 1 + k + i and temp i = 1 + (2 * k) + i in
  let prod i = 1 + (3 * k) + i in
  let b = Qcircuit.Circuit.Builder.create n_qubits in
  let add_cx x y = Qcircuit.Circuit.Builder.add b Gate.CX [ x; y ] in
  let add_ccx x y z = Qcircuit.Circuit.Builder.add b Gate.CCX [ x; y; z ] in
  (* inputs *)
  for i = 0 to k - 1 do
    if i mod 2 = 0 then Qcircuit.Circuit.Builder.add b Gate.X [ a i ];
    if i mod 2 = 1 then Qcircuit.Circuit.Builder.add b Gate.X [ bq i ]
  done;
  (* for each bit i of b: temp := a AND b_i; prod[i..] += temp; uncompute *)
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      add_ccx (bq i) (a j) (temp j)
    done;
    (* ripple add temp into the product window starting at bit i *)
    let width = min k (p - i - 1) in
    if width > 0 then begin
      let maj c x y =
        add_cx y x;
        add_cx y c;
        add_ccx c x y
      in
      let uma c x y =
        add_ccx c x y;
        add_cx y c;
        add_cx c x
      in
      maj cin (prod i) (temp 0);
      for j = 1 to width - 1 do
        maj (temp (j - 1)) (prod (i + j)) (temp j)
      done;
      add_cx (temp (width - 1)) (prod (i + width));
      for j = width - 1 downto 1 do
        uma (temp (j - 1)) (prod (i + j)) (temp j)
      done;
      uma cin (prod i) (temp 0)
    end;
    for j = k - 1 downto 0 do
      add_ccx (bq i) (a j) (temp j)
    done
  done;
  Qcircuit.Circuit.Builder.circuit b
