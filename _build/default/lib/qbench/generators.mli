(** The algorithmic benchmark circuits of the paper's evaluation (Table I),
    built from their textbook definitions (Nielsen-Chuang / Qiskit).

    Gate-count calibration notes (original-circuit CNOT totals after
    lowering, vs. the paper's CNOT_total column):
    - [vqe n] with full entanglement and 3 repetitions gives n(n-1)/2 * 3
      CNOTs: 84 at n=8 and 198 at n=12, matching the paper exactly.
    - [bv 19] with the all-ones secret gives 18 CNOTs, matching exactly.
    - [qft n] gives n(n-1) CNOTs: 210 at n=15 (exact) and 380 at n=20
      (paper reports 374 after optimization).
    - [grover 4] with 3 iterations gives 84 CNOTs, matching exactly;
      larger sizes use one iteration.
    - [adder] (4-bit Cuccaro, 10 qubits) gives 65 CNOTs, matching exactly. *)

val grover : int -> Qcircuit.Circuit.t
(** [grover n]: n-qubit Grover search marking the all-ones state, with
    3 iterations at n = 4 and 1 iteration for larger n. *)

val vqe : int -> Qcircuit.Circuit.t
(** Hardware-efficient ansatz, RY layers with full (all-pairs) CX
    entanglement, 3 repetitions; angles drawn from a fixed seed. *)

val bernstein_vazirani : int -> Qcircuit.Circuit.t
(** [bernstein_vazirani n]: n qubits total (n-1 data + oracle ancilla),
    all-ones secret string. *)

val qft : int -> Qcircuit.Circuit.t
(** Standard quantum Fourier transform (no final swaps). *)

val qpe : int -> Qcircuit.Circuit.t
(** [qpe n]: phase estimation with n-1 counting qubits and one eigenstate
    qubit; estimates the phase of a fixed P gate. *)

val adder : int -> Qcircuit.Circuit.t
(** [adder n_qubits]: Cuccaro ripple-carry adder; [n_qubits = 2k + 2] for
    two k-bit operands. *)

val multiplier : int -> Qcircuit.Circuit.t
(** [multiplier n_qubits]: shift-and-add multiplier (partial products via
    Toffolis, accumulation via controlled ripple adds).  25 qubits hosts
    5-bit x 5-bit with a truncated 9-bit product, as in the paper's row. *)
