(** Stand-ins for the RevLib reversible-logic benchmarks.

    The paper evaluates four RevLib circuits (sqn_258, rd84_253, co14_215,
    sym9_193), which are netlists of multi-controlled Toffoli (MCT) gates.
    The original files are not redistributable here, so each stand-in is a
    deterministic, seeded MCT netlist with the same width and with a
    CNOT_total (after lowering) within a few percent of the paper's
    original-circuit column.  Routing pressure comes from the MCT network
    structure, which these reproduce.

    Paper CNOT_total targets: sqn_258 -> 4459 (10 qubits),
    rd84_253 -> 5960 (12), co14_215 -> 7840 (15), sym9_193 -> 15232 (11). *)

val mct_netlist :
  seed:int -> n:int -> target_cx:int -> Qcircuit.Circuit.t
(** Random reversible netlist of NOT/CNOT/MCT gates whose lowered CNOT
    count approximates [target_cx] (stops when reached). *)

val sqn_258 : unit -> Qcircuit.Circuit.t
val rd84_253 : unit -> Qcircuit.Circuit.t
val co14_215 : unit -> Qcircuit.Circuit.t
val sym9_193 : unit -> Qcircuit.Circuit.t
