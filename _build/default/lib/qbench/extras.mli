(** Benchmarks beyond the paper's table (QASMBench-style extras), used by
    examples and the extended suite. *)

val ghz : int -> Qcircuit.Circuit.t
(** H + CX ladder producing (|0...0> + |1...1>)/sqrt2. *)

val qaoa_maxcut : ?p:int -> ?seed:int -> int -> Qcircuit.Circuit.t
(** [qaoa_maxcut n] builds a depth-[p] (default 2) QAOA ansatz for MaxCut
    on a random 3-regular-ish graph over [n] vertices: per layer, RZZ on
    every graph edge then RX on every qubit.  Angles and graph are seeded
    and deterministic. *)

val w_state : int -> Qcircuit.Circuit.t
(** W-state preparation |100..0> + |010..0> + ... via the standard
    CRY/CX cascade. *)

val hidden_weight : int -> Qcircuit.Circuit.t
(** A layered parity-counting circuit (CX fan-ins with interleaved T
    gates): dense two-qubit structure with low parallelism, a routing
    stress test. *)

val extended_suite : Suite.entry list
(** {!Suite.paper_suite} plus the extra circuits above. *)
