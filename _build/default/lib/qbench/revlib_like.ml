open Qgate

(* CNOT cost of an MCT with k controls when lowered by the Gray-code
   construction (see Qgate.Decompose): 2^{k+1} - 2, except plain CX. *)
let mct_cx_cost k = if k <= 1 then k else (1 lsl (k + 1)) - 2

let mct_netlist ~seed ~n ~target_cx =
  let rng = Mathkit.Rng.create seed in
  let b = Qcircuit.Circuit.Builder.create n in
  let spent = ref 0 in
  while !spent < target_cx do
    (* RevLib circuits are dominated by 2-3 control Toffolis with occasional
       wider gates and sprinkled NOT/CNOT *)
    let k =
      match Mathkit.Rng.int rng 10 with
      | 0 -> 0 (* x *)
      | 1 | 2 -> 1 (* cx *)
      | 3 | 4 | 5 | 6 -> 2
      | 7 | 8 -> 3
      | _ -> min 4 (n - 2)
    in
    let qubits = Array.to_list (Array.sub (Mathkit.Rng.permutation rng n) 0 (k + 1)) in
    (match (k, qubits) with
    | 0, [ t ] -> Qcircuit.Circuit.Builder.add b Gate.X [ t ]
    | 1, [ c; t ] -> Qcircuit.Circuit.Builder.add b Gate.CX [ c; t ]
    | 2, qs -> Qcircuit.Circuit.Builder.add b Gate.CCX qs
    | k, qs -> Qcircuit.Circuit.Builder.add b (Gate.MCX k) qs);
    spent := !spent + mct_cx_cost k
  done;
  Qcircuit.Circuit.Builder.circuit b

let sqn_258 () = mct_netlist ~seed:258 ~n:10 ~target_cx:4459
let rd84_253 () = mct_netlist ~seed:253 ~n:12 ~target_cx:5960
let co14_215 () = mct_netlist ~seed:215 ~n:15 ~target_cx:7840
let sym9_193 () = mct_netlist ~seed:193 ~n:11 ~target_cx:15232
