lib/qbench/extras.ml: Float Gate Hashtbl List Mathkit Qcircuit Qgate Suite
