lib/qbench/extras.mli: Qcircuit Suite
