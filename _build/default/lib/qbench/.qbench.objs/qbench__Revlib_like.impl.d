lib/qbench/revlib_like.ml: Array Gate Mathkit Qcircuit Qgate
