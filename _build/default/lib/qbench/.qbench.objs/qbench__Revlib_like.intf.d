lib/qbench/revlib_like.mli: Qcircuit
