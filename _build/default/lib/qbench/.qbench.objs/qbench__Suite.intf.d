lib/qbench/suite.mli: Qcircuit
