lib/qbench/suite.ml: Generators List Qcircuit Revlib_like
