lib/qbench/generators.ml: Array Float Gate List Mathkit Qcircuit Qgate
