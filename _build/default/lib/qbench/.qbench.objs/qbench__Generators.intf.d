lib/qbench/generators.mli: Qcircuit
