open Qgate

let ghz n =
  let b = Qcircuit.Circuit.Builder.create n in
  Qcircuit.Circuit.Builder.add b Gate.H [ 0 ];
  for i = 0 to n - 2 do
    Qcircuit.Circuit.Builder.add b Gate.CX [ i; i + 1 ]
  done;
  Qcircuit.Circuit.Builder.circuit b

(* random near-3-regular graph: 3n/2 distinct edges sampled uniformly *)
let random_graph rng n =
  let wanted = 3 * n / 2 in
  let edges = Hashtbl.create 32 in
  let guard = ref 0 in
  while Hashtbl.length edges < wanted && !guard < 100 * wanted do
    incr guard;
    let a = Mathkit.Rng.int rng n in
    let b = Mathkit.Rng.int rng n in
    if a <> b then Hashtbl.replace edges (min a b, max a b) ()
  done;
  Hashtbl.fold (fun k () acc -> k :: acc) edges [] |> List.sort compare

let qaoa_maxcut ?(p = 2) ?(seed = 7) n =
  let rng = Mathkit.Rng.create seed in
  let edges = random_graph rng n in
  let b = Qcircuit.Circuit.Builder.create n in
  for q = 0 to n - 1 do
    Qcircuit.Circuit.Builder.add b Gate.H [ q ]
  done;
  for _ = 1 to p do
    let gamma = Mathkit.Rng.float rng Float.pi in
    let beta = Mathkit.Rng.float rng Float.pi in
    List.iter
      (fun (u, v) -> Qcircuit.Circuit.Builder.add b (Gate.RZZ gamma) [ u; v ])
      edges;
    for q = 0 to n - 1 do
      Qcircuit.Circuit.Builder.add b (Gate.RX (2.0 *. beta)) [ q ]
    done
  done;
  Qcircuit.Circuit.Builder.circuit b

let w_state n =
  if n < 2 then invalid_arg "Extras.w_state: need at least 2 qubits";
  let b = Qcircuit.Circuit.Builder.create n in
  (* standard cascade: start from |10...0>, distribute amplitude with
     controlled rotations, then CX to shift the excitation *)
  Qcircuit.Circuit.Builder.add b Gate.X [ 0 ];
  for k = 0 to n - 2 do
    let remaining = n - k in
    let theta = 2.0 *. acos (sqrt (1.0 /. float_of_int remaining)) in
    Qcircuit.Circuit.Builder.add b (Gate.CRY theta) [ k; k + 1 ];
    Qcircuit.Circuit.Builder.add b Gate.CX [ k + 1; k ]
  done;
  Qcircuit.Circuit.Builder.circuit b

let hidden_weight n =
  let b = Qcircuit.Circuit.Builder.create n in
  for q = 0 to n - 1 do
    Qcircuit.Circuit.Builder.add b Gate.H [ q ]
  done;
  for round = 1 to 3 do
    for q = 0 to n - 1 do
      let t = (q + round) mod n in
      if t <> q then Qcircuit.Circuit.Builder.add b Gate.CX [ q; t ];
      Qcircuit.Circuit.Builder.add b Gate.T [ t ]
    done
  done;
  for q = 0 to n - 1 do
    Qcircuit.Circuit.Builder.add b Gate.H [ q ]
  done;
  Qcircuit.Circuit.Builder.circuit b

let extended_suite =
  Suite.paper_suite
  @ [
      {
        Suite.name = "GHZ 12-qubits";
        n_qubits = 12;
        build = (fun () -> ghz 12);
        heavy = false;
        noise_subset = false;
      };
      {
        Suite.name = "QAOA 10-qubits";
        n_qubits = 10;
        build = (fun () -> qaoa_maxcut 10);
        heavy = false;
        noise_subset = false;
      };
      {
        Suite.name = "W-state 8-qubits";
        n_qubits = 8;
        build = (fun () -> w_state 8);
        heavy = false;
        noise_subset = false;
      };
      {
        Suite.name = "HiddenWeight 9-qubits";
        n_qubits = 9;
        build = (fun () -> hidden_weight 9);
        heavy = false;
        noise_subset = false;
      };
    ]
