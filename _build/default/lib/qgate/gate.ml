type t =
  | Id
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | SX
  | SXdg
  | RX of float
  | RY of float
  | RZ of float
  | P of float
  | U of float * float * float
  | CX
  | CY
  | CZ
  | CH
  | SWAP
  | CRX of float
  | CRY of float
  | CRZ of float
  | CP of float
  | RZZ of float
  | CCX
  | CCZ
  | CSWAP
  | MCX of int
  | MCZ of int
  | Unitary2 of Mathkit.Mat.t
  | Barrier of int
  | Measure

let arity = function
  | Id | X | Y | Z | H | S | Sdg | T | Tdg | SX | SXdg | RX _ | RY _ | RZ _ | P _ | U _ -> 1
  | CX | CY | CZ | CH | SWAP | CRX _ | CRY _ | CRZ _ | CP _ | RZZ _ | Unitary2 _ -> 2
  | CCX | CCZ | CSWAP -> 3
  | MCX k | MCZ k -> k + 1
  | Barrier n -> n
  | Measure -> 1

let name = function
  | Id -> "id"
  | X -> "x"
  | Y -> "y"
  | Z -> "z"
  | H -> "h"
  | S -> "s"
  | Sdg -> "sdg"
  | T -> "t"
  | Tdg -> "tdg"
  | SX -> "sx"
  | SXdg -> "sxdg"
  | RX _ -> "rx"
  | RY _ -> "ry"
  | RZ _ -> "rz"
  | P _ -> "p"
  | U _ -> "u"
  | CX -> "cx"
  | CY -> "cy"
  | CZ -> "cz"
  | CH -> "ch"
  | SWAP -> "swap"
  | CRX _ -> "crx"
  | CRY _ -> "cry"
  | CRZ _ -> "crz"
  | CP _ -> "cp"
  | RZZ _ -> "rzz"
  | CCX -> "ccx"
  | CCZ -> "ccz"
  | CSWAP -> "cswap"
  | MCX _ -> "mcx"
  | MCZ _ -> "mcz"
  | Unitary2 _ -> "unitary"
  | Barrier _ -> "barrier"
  | Measure -> "measure"

let pp ppf g =
  match g with
  | RX a | RY a | RZ a | P a | CRX a | CRY a | CRZ a | CP a | RZZ a ->
      Format.fprintf ppf "%s(%.4g)" (name g) a
  | U (t, p, l) -> Format.fprintf ppf "u(%.4g,%.4g,%.4g)" t p l
  | MCX k | MCZ k -> Format.fprintf ppf "%s%d" (name g) k
  | _ -> Format.pp_print_string ppf (name g)

let is_directive = function Barrier _ | Measure -> true | _ -> false
let is_two_qubit g = (not (is_directive g)) && arity g = 2
let is_one_qubit g = (not (is_directive g)) && arity g = 1

let is_self_inverse = function
  | Id | X | Y | Z | H | CX | CY | CZ | CH | SWAP | CCX | CCZ | CSWAP -> true
  | MCX _ | MCZ _ -> true
  | SX -> false
  | _ -> false

let inverse = function
  | (Id | X | Y | Z | H | CX | CY | CZ | CH | SWAP | CCX | CCZ | CSWAP) as g -> g
  | (MCX _ | MCZ _) as g -> g
  | S -> Sdg
  | Sdg -> S
  | T -> Tdg
  | Tdg -> T
  | SX -> SXdg
  | SXdg -> SX
  | RX a -> RX (-.a)
  | RY a -> RY (-.a)
  | RZ a -> RZ (-.a)
  | P a -> P (-.a)
  | U (t, p, l) -> U (-.t, -.l, -.p)
  | CRX a -> CRX (-.a)
  | CRY a -> CRY (-.a)
  | CRZ a -> CRZ (-.a)
  | CP a -> CP (-.a)
  | RZZ a -> RZZ (-.a)
  | Unitary2 m -> Unitary2 (Mathkit.Mat.adjoint m)
  | Barrier _ | Measure -> invalid_arg "Gate.inverse: directive has no inverse"

let equal a b =
  match (a, b) with
  | Unitary2 m, Unitary2 n -> Mathkit.Mat.approx_equal m n
  | _ -> a = b

let in_basis = function
  | Id | RZ _ | SX | X | CX | Barrier _ | Measure -> true
  | _ -> false
