(** Exact unitaries for every gate in the vocabulary.

    Convention: for a gate applied to qubits [q0; q1; ...; qk] (controls
    before targets), the matrix acts on the basis |q0 q1 ... qk> with q0 as
    the MOST significant bit.  All consumers (simulator, block collection,
    KAK synthesis) share this convention. *)

val of_gate : Gate.t -> Mathkit.Mat.t
(** Unitary matrix of a gate.
    @raise Invalid_argument for [Barrier] and [Measure]. *)

val cnot_rev : Mathkit.Mat.t
(** CX with control on the LESS significant qubit (qubit order reversed);
    convenient for tests and the SWAP-orientation logic. *)

val swap_mat : Mathkit.Mat.t
(** The 4x4 SWAP matrix (cached). *)

val global_phase_free_equal : Mathkit.Mat.t -> Mathkit.Mat.t -> bool
(** Alias of {!Mathkit.Mat.equal_up_to_phase}; exported for readability. *)
