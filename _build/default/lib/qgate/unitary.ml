open Mathkit

let half = 1.0 /. sqrt 2.0

let h_mat = Mat.of_real_rows [ [ half; half ]; [ half; -.half ] ]
let x_mat = Mat.of_real_rows [ [ 0.0; 1.0 ]; [ 1.0; 0.0 ] ]

let y_mat =
  Mat.of_rows [ [ Cx.zero; Cx.im (-1.0) ]; [ Cx.im 1.0; Cx.zero ] ]

let z_mat = Mat.of_real_rows [ [ 1.0; 0.0 ]; [ 0.0; -1.0 ] ]

let p_mat l = Mat.of_rows [ [ Cx.one; Cx.zero ]; [ Cx.zero; Cx.exp_i l ] ]

let sx_mat =
  (* sqrt(X): ((1+i)/2) [[1, -i], [-i, 1]] scaled properly *)
  let a = Cx.make 0.5 0.5 and b = Cx.make 0.5 (-0.5) in
  Mat.of_rows [ [ a; b ]; [ b; a ] ]

let sxdg_mat = Mat.adjoint sx_mat

(* Two-qubit controlled gate with control = most significant qubit. *)
let controlled u2 =
  Mat.init 4 4 (fun i j ->
      if i < 2 && j < 2 then if i = j then Cx.one else Cx.zero
      else if i >= 2 && j >= 2 then Mat.get u2 (i - 2) (j - 2)
      else Cx.zero)

let swap_mat =
  Mat.of_real_rows
    [
      [ 1.0; 0.0; 0.0; 0.0 ];
      [ 0.0; 0.0; 1.0; 0.0 ];
      [ 0.0; 1.0; 0.0; 0.0 ];
      [ 0.0; 0.0; 0.0; 1.0 ];
    ]

let cnot_rev =
  Mat.of_real_rows
    [
      [ 1.0; 0.0; 0.0; 0.0 ];
      [ 0.0; 0.0; 0.0; 1.0 ];
      [ 0.0; 0.0; 1.0; 0.0 ];
      [ 0.0; 1.0; 0.0; 0.0 ];
    ]

let rzz_mat a =
  let e_m = Cx.exp_i (-.a /. 2.0) and e_p = Cx.exp_i (a /. 2.0) in
  Mat.init 4 4 (fun i j ->
      if i <> j then Cx.zero else if i = 0 || i = 3 then e_m else e_p)

let permutation_mat n perm =
  Mat.init n n (fun i j -> if i = perm j then Cx.one else Cx.zero)

(* Multi-controlled X on k+1 qubits; target is the LEAST significant bit
   (the last qubit in the instruction's qubit list). *)
let mcx_mat k =
  let n = 1 lsl (k + 1) in
  let ctrl_mask = n - 2 in
  permutation_mat n (fun j -> if j land ctrl_mask = ctrl_mask then j lxor 1 else j)

let mcz_mat k =
  let n = 1 lsl (k + 1) in
  Mat.init n n (fun i j ->
      if i <> j then Cx.zero else if i = n - 1 then Cx.minus_one else Cx.one)

let of_gate (g : Gate.t) =
  match g with
  | Id -> Mat.identity 2
  | X -> x_mat
  | Y -> y_mat
  | Z -> z_mat
  | H -> h_mat
  | S -> p_mat (Float.pi /. 2.0)
  | Sdg -> p_mat (-.Float.pi /. 2.0)
  | T -> p_mat (Float.pi /. 4.0)
  | Tdg -> p_mat (-.Float.pi /. 4.0)
  | SX -> sx_mat
  | SXdg -> sxdg_mat
  | RX a -> Euler.rx_mat a
  | RY a -> Euler.ry_mat a
  | RZ a -> Euler.rz_mat a
  | P l -> p_mat l
  | U (t, p, l) -> Euler.u_mat t p l
  | CX -> controlled x_mat
  | CY -> controlled y_mat
  | CZ -> controlled z_mat
  | CH -> controlled h_mat
  | SWAP -> swap_mat
  | CRX a -> controlled (Euler.rx_mat a)
  | CRY a -> controlled (Euler.ry_mat a)
  | CRZ a -> controlled (Euler.rz_mat a)
  | CP l -> controlled (p_mat l)
  | RZZ a -> rzz_mat a
  | CCX -> mcx_mat 2
  | CCZ -> mcz_mat 2
  | CSWAP ->
      (* control = bit 2, swap bits 1 and 0 *)
      permutation_mat 8 (fun j ->
          if j land 4 = 0 then j
          else (j land 4) lor ((j land 1) lsl 1) lor ((j land 2) lsr 1))
  | MCX k -> mcx_mat k
  | MCZ k -> mcz_mat k
  | Unitary2 m -> m
  | Barrier _ | Measure -> invalid_arg "Unitary.of_gate: directive has no unitary"

let global_phase_free_equal a b = Mat.equal_up_to_phase a b
