let pi = Float.pi

let ntz n =
  (* number of trailing zeros; n > 0 *)
  let rec go n acc = if n land 1 = 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let multiplexed_rz controls target alpha =
  let k = List.length controls in
  let m = 1 lsl k in
  if Array.length alpha <> m then invalid_arg "Decompose.multiplexed_rz: angle count";
  if k = 0 then [ (Gate.RZ alpha.(0), [ target ]) ]
  else begin
    let ctrl = Array.of_list controls in
    (* Control-toggle schedule: after rotation i, CNOT from control c(i).
       s.(i) = subset of controls XORed onto the target before rotation i. *)
    let c_index i = if i = m - 1 then k - 1 else ntz (i + 1) in
    let s = Array.make m 0 in
    let cur = ref 0 in
    for i = 0 to m - 1 do
      s.(i) <- !cur;
      cur := !cur lxor (1 lsl c_index i)
    done;
    (* Branch j sees total angle sum_i beta_i * (-1)^popcount(j land s_i);
       the schedule matrix is orthogonal so beta = (1/m) A^T alpha. *)
    (* alpha is indexed with control 0 as the MOST significant bit (matching
       the qubit-ordering convention), while the schedule subsets s.(i) use
       control index = bit position; bridge the two when computing parity. *)
    let branch_bit j b = (j lsr (k - 1 - b)) land 1 in
    let parity j i =
      let acc = ref 0 in
      for b = 0 to k - 1 do
        if (s.(i) lsr b) land 1 = 1 then acc := !acc lxor branch_bit j b
      done;
      !acc
    in
    let sign j i = if parity j i = 1 then -1.0 else 1.0 in
    let beta =
      Array.init m (fun i ->
          let acc = ref 0.0 in
          for j = 0 to m - 1 do
            acc := !acc +. (sign j i *. alpha.(j))
          done;
          !acc /. float_of_int m)
    in
    let ops = ref [] in
    for i = 0 to m - 1 do
      if Float.abs beta.(i) > 1e-12 then ops := (Gate.RZ beta.(i), [ target ]) :: !ops;
      ops := (Gate.CX, [ ctrl.(c_index i); target ]) :: !ops
    done;
    List.rev !ops
  end

let rec mcphase theta qubits =
  match qubits with
  | [] -> []
  | [ q ] -> [ (Gate.P theta, [ q ]) ]
  | _ ->
      let rec split_last acc = function
        | [] -> assert false
        | [ t ] -> (List.rev acc, t)
        | x :: rest -> split_last (x :: acc) rest
      in
      let controls, target = split_last [] qubits in
      let k = List.length controls in
      let alpha = Array.make (1 lsl k) 0.0 in
      alpha.((1 lsl k) - 1) <- theta;
      multiplexed_rz controls target alpha @ mcphase (theta /. 2.0) controls

let rec lower ((g : Gate.t), qs) =
  match (g, qs) with
  | Gate.CY, [ c; t ] -> [ (Gate.Sdg, [ t ]); (Gate.CX, [ c; t ]); (Gate.S, [ t ]) ]
  | Gate.CZ, [ c; t ] -> [ (Gate.H, [ t ]); (Gate.CX, [ c; t ]); (Gate.H, [ t ]) ]
  | Gate.CH, [ c; t ] ->
      [
        (Gate.S, [ t ]);
        (Gate.H, [ t ]);
        (Gate.T, [ t ]);
        (Gate.CX, [ c; t ]);
        (Gate.Tdg, [ t ]);
        (Gate.H, [ t ]);
        (Gate.Sdg, [ t ]);
      ]
  | Gate.SWAP, [ a; b ] -> [ (Gate.CX, [ a; b ]); (Gate.CX, [ b; a ]); (Gate.CX, [ a; b ]) ]
  | Gate.CP l, [ c; t ] ->
      [
        (Gate.P (l /. 2.0), [ c ]);
        (Gate.CX, [ c; t ]);
        (Gate.P (-.l /. 2.0), [ t ]);
        (Gate.CX, [ c; t ]);
        (Gate.P (l /. 2.0), [ t ]);
      ]
  | Gate.CRZ a, [ c; t ] ->
      [
        (Gate.RZ (a /. 2.0), [ t ]);
        (Gate.CX, [ c; t ]);
        (Gate.RZ (-.a /. 2.0), [ t ]);
        (Gate.CX, [ c; t ]);
      ]
  | Gate.CRY a, [ c; t ] ->
      [
        (Gate.RY (a /. 2.0), [ t ]);
        (Gate.CX, [ c; t ]);
        (Gate.RY (-.a /. 2.0), [ t ]);
        (Gate.CX, [ c; t ]);
      ]
  | Gate.CRX a, [ c; t ] ->
      [ (Gate.H, [ t ]) ] @ lower (Gate.CRZ a, [ c; t ]) @ [ (Gate.H, [ t ]) ]
  | Gate.RZZ a, [ c; t ] ->
      [ (Gate.CX, [ c; t ]); (Gate.RZ a, [ t ]); (Gate.CX, [ c; t ]) ]
  | Gate.CCZ, [ a; b; c ] ->
      [
        (Gate.CX, [ b; c ]);
        (Gate.Tdg, [ c ]);
        (Gate.CX, [ a; c ]);
        (Gate.T, [ c ]);
        (Gate.CX, [ b; c ]);
        (Gate.Tdg, [ c ]);
        (Gate.CX, [ a; c ]);
        (Gate.T, [ c ]);
        (Gate.T, [ b ]);
        (Gate.CX, [ a; b ]);
        (Gate.T, [ a ]);
        (Gate.Tdg, [ b ]);
        (Gate.CX, [ a; b ]);
      ]
  | Gate.CCX, [ a; b; c ] ->
      ((Gate.H, [ c ]) :: lower (Gate.CCZ, [ a; b; c ])) @ [ (Gate.H, [ c ]) ]
  | Gate.CSWAP, [ c; a; b ] ->
      ((Gate.CX, [ b; a ]) :: lower (Gate.CCX, [ c; a; b ])) @ [ (Gate.CX, [ b; a ]) ]
  | Gate.MCZ _, qs -> mcphase pi qs
  | Gate.MCX _, qs -> begin
      match List.rev qs with
      | t :: _ -> ((Gate.H, [ t ]) :: mcphase pi qs) @ [ (Gate.H, [ t ]) ]
      | [] -> invalid_arg "Decompose.lower: empty mcx"
    end
  | _ -> [ (g, qs) ]

let rec to_cx_basis ops =
  let step (g, qs) =
    match (g : Gate.t) with
    | CX | Barrier _ | Measure -> [ (g, qs) ]
    | _ when Gate.arity g = 1 -> [ (g, qs) ]
    | Unitary2 _ -> [ (g, qs) ]
    | _ -> lower (g, qs)
  in
  let out = List.concat_map step ops in
  let still_high (g, _) =
    match (g : Gate.t) with
    | CX | Unitary2 _ | Barrier _ | Measure -> false
    | _ -> Gate.arity g > 1
  in
  if List.exists still_high out then to_cx_basis out else out
