lib/qgate/gate.ml: Format Mathkit
