lib/qgate/decompose.mli: Gate
