lib/qgate/unitary.ml: Cx Euler Float Gate Mat Mathkit
