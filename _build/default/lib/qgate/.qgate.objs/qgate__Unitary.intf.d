lib/qgate/unitary.mli: Gate Mathkit
