lib/qgate/gate.mli: Format Mathkit
