lib/qgate/decompose.ml: Array Float Gate List
