(** Structural lowering of multi-qubit gates to {CX + one-qubit gates}.

    One-qubit gates are left symbolic (h, t, rz, ...); merging them into the
    hardware's {rz, sx, x} basis is the job of the 1q-optimization pass.
    Multi-controlled gates use the Gray-code multiplexed-Rz construction
    (Moettoenen et al.), which is ancilla-free and CNOT-optimal at
    [2^{k+1} - 2] CNOTs for k controls. *)

val lower : Gate.t * int list -> (Gate.t * int list) list
(** One lowering step: rewrite a gate as a sequence over the same qubits.
    Returns the input unchanged when the gate is CX or one-qubit. *)

val to_cx_basis : (Gate.t * int list) list -> (Gate.t * int list) list
(** Fixpoint of {!lower} over a gate sequence: output contains only CX,
    one-qubit gates and directives.  [Unitary2] blocks are NOT handled here
    (they are synthesized by the KAK pass). *)

val multiplexed_rz : int list -> int -> float array -> (Gate.t * int list) list
(** [multiplexed_rz controls target alpha] emits the uniformly-controlled
    Rz: on control branch [j] the target undergoes [Rz alpha.(j)].
    [Array.length alpha] must be [2^(List.length controls)].
    Exposed for tests. *)

val mcphase : float -> int list -> (Gate.t * int list) list
(** [mcphase theta qubits] applies phase [theta] to the all-ones state of
    [qubits] (so [mcphase pi] is a multi-controlled Z).  Exposed for tests. *)
