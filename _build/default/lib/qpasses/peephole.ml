open Qgate

let two_pi = 2.0 *. Float.pi

let norm a =
  let a = Float.rem a two_pi in
  if a > Float.pi then a -. two_pi else if a <= -.Float.pi then a +. two_pi else a

(* merge rule for two same-shape rotations; None when not mergeable *)
let merge_rotations (g1 : Gate.t) (g2 : Gate.t) =
  let combine build a b =
    let total = norm (a +. b) in
    if Float.abs total < 1e-12 then Some [] else Some [ build total ]
  in
  match (g1, g2) with
  | Gate.RZ a, Gate.RZ b -> combine (fun x -> Gate.RZ x) a b
  | Gate.RX a, Gate.RX b -> combine (fun x -> Gate.RX x) a b
  | Gate.RY a, Gate.RY b -> combine (fun x -> Gate.RY x) a b
  | Gate.P a, Gate.P b -> combine (fun x -> Gate.P x) a b
  | Gate.CP a, Gate.CP b -> combine (fun x -> Gate.CP x) a b
  | Gate.RZZ a, Gate.RZZ b -> combine (fun x -> Gate.RZZ x) a b
  | Gate.CRZ a, Gate.CRZ b -> combine (fun x -> Gate.CRZ x) a b
  | Gate.CRX a, Gate.CRX b -> combine (fun x -> Gate.CRX x) a b
  | Gate.CRY a, Gate.CRY b -> combine (fun x -> Gate.CRY x) a b
  | _ -> None

let inverse_pair (g1 : Gate.t) (g2 : Gate.t) =
  match (g1, g2) with
  | Gate.Barrier _, _ | _, Gate.Barrier _ | Gate.Measure, _ | _, Gate.Measure -> false
  | _ -> Gate.equal (Gate.inverse g1) g2

(* One pass over the instruction sequence.  [slots] holds the surviving
   instructions (None = removed); [last_on] maps each wire to the slot of
   the latest surviving op touching it. *)
let one_pass instrs n =
  let slots = Array.map (fun i -> Some i) instrs in
  let last_on = Array.make n (-1) in
  let changed = ref false in
  Array.iteri
    (fun idx maybe ->
      match maybe with
      | None -> ()
      | Some (i : Qcircuit.Circuit.instr) ->
          let preds = List.map (fun q -> last_on.(q)) i.qubits in
          let adjacent_same_op =
            match preds with
            | [] -> None
            | p :: rest ->
                if p >= 0 && List.for_all (( = ) p) rest then
                  match slots.(p) with
                  | Some (j : Qcircuit.Circuit.instr) when j.qubits = i.qubits -> Some (p, j)
                  | _ -> None
                else None
          in
          let handled =
            match adjacent_same_op with
            | Some (p, j) when inverse_pair j.gate i.gate ->
                (* both vanish; wires fall back to whatever preceded j,
                   conservatively reset to -1 (prevents chained rewrites
                   this pass; the fixpoint loop catches them next pass) *)
                slots.(p) <- None;
                slots.(idx) <- None;
                List.iter (fun q -> last_on.(q) <- -1) i.qubits;
                changed := true;
                true
            | Some (p, j) -> begin
                match merge_rotations j.gate i.gate with
                | Some [] ->
                    slots.(p) <- None;
                    slots.(idx) <- None;
                    List.iter (fun q -> last_on.(q) <- -1) i.qubits;
                    changed := true;
                    true
                | Some [ merged ] ->
                    slots.(p) <- None;
                    slots.(idx) <- Some { i with gate = merged };
                    List.iter (fun q -> last_on.(q) <- idx) i.qubits;
                    changed := true;
                    true
                | _ -> false
              end
            | None -> false
          in
          if not handled then List.iter (fun q -> last_on.(q) <- idx) i.qubits)
    slots;
  let out =
    Array.to_list slots |> List.filter_map (fun x -> x)
  in
  (out, !changed)

let run c =
  let n = Qcircuit.Circuit.n_qubits c in
  let rec go instrs rounds =
    let out, changed = one_pass (Array.of_list instrs) n in
    if changed && rounds < 20 then go out (rounds + 1) else out
  in
  Qcircuit.Circuit.create n (go (Qcircuit.Circuit.instrs c) 0)
