(** Cartan (KAK) decomposition of two-qubit unitaries.

    Any [u] in U(4) factors as

      [u = e^{i phase} (k1l (x) k1r) . N(x,y,z) . (k2l (x) k2r)]

    where [N(x,y,z) = exp(i (x XX + y YY + z ZZ))] is the canonical gate and
    the [k]s are single-qubit unitaries ([k1l] acts on the first / most
    significant qubit).  Coordinates are canonicalized into the Weyl chamber
    [pi/4 >= x >= y >= |z|], with [z >= 0] whenever [x = pi/4], so two
    unitaries are locally equivalent iff their coordinates agree.  The
    chamber position determines the minimal CNOT count (Vidal-Dawson /
    Shende-Bullock-Markov):

    - (0,0,0): 0 CNOTs (local product)
    - (pi/4,0,0): 1 CNOT
    - z = 0: 2 CNOTs
    - otherwise: 3 CNOTs *)

type t = {
  phase : float;
  k1l : Mathkit.Mat.t;
  k1r : Mathkit.Mat.t;
  x : float;
  y : float;
  z : float;
  k2l : Mathkit.Mat.t;
  k2r : Mathkit.Mat.t;
}

val magic_basis : Mathkit.Mat.t
(** The magic basis change E (columns are the magic Bell states). *)

val canonical_gate : float -> float -> float -> Mathkit.Mat.t
(** [canonical_gate x y z] is [N(x,y,z)]. *)

val decompose : Mathkit.Mat.t -> t
(** Full KAK decomposition with chamber-canonical coordinates.
    @raise Invalid_argument if the input is not a 4x4 unitary. *)

val reconstruct : t -> Mathkit.Mat.t
(** Multiply the factors back together (inverse of {!decompose}). *)

val coords : Mathkit.Mat.t -> float * float * float
(** Just the canonical coordinates. *)

val cnot_cost : Mathkit.Mat.t -> int
(** Minimal CNOT count (0-3) by chamber position. *)

val cnot_cost_fast : Mathkit.Mat.t -> int
(** Same classification as {!cnot_cost} but via the gamma-trace invariants
    (no eigendecomposition): 0 iff |tr| = 4; 1 iff tr = 0 and tr gamma^2 =
    -4; 2 iff tr is real; else 3.  Used in NASSC's hot scoring path. *)

val gamma_invariants : Mathkit.Mat.t -> Mathkit.Cx.t * Mathkit.Cx.t
(** Makhlin-style local invariants [(tr^2(gamma)/16, (tr^2 - tr gamma^2)/4)]
    of the det-normalized input, where
    [gamma(u) = u (Y(x)Y) u^T (Y(x)Y)].  Used as an independent
    cross-check of the chamber classification in tests. *)
