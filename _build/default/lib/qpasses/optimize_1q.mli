(** Merge runs of single-qubit gates (Qiskit's Optimize1qGates analog).

    Consecutive one-qubit gates on the same wire are multiplied together and
    re-emitted either as one [U] gate or in the hardware's {rz, sx} basis.
    Runs that multiply to the identity disappear entirely. *)

type mode =
  | U_gate  (** emit a single [U(theta,phi,lam)] per run *)
  | Zsx  (** emit [rz.sx.rz.sx.rz] (or shorter special cases): hardware basis *)

val run : mode -> Qcircuit.Circuit.t -> Qcircuit.Circuit.t

val zsx_ops : float -> float -> float -> Qgate.Gate.t list
(** [zsx_ops theta phi lam] rewrites [U(theta,phi,lam)] over {rz, sx} (all
    gates act on the same wire, listed in circuit order).  Uses the one-sx
    form when [theta = pi/2] and plain rz when [theta = 0].  Exposed for
    tests. *)
