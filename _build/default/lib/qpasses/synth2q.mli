(** Two-qubit unitary synthesis into {1q gates + CX} with the minimal CNOT
    count (Qiskit's [TwoQubitBasisDecomposer] analog).

    Emitted ops act on local qubits 0 (most significant) and 1; the caller
    maps them onto circuit qubits.  Output is correct up to global phase. *)

val synthesize : Mathkit.Mat.t -> (Qgate.Gate.t * int list) list
(** Synthesize a 4x4 unitary with 0-3 CNOTs according to its Weyl chamber
    position.  One-qubit factors are emitted as [U(theta,phi,lam)] gates
    (identities dropped).
    @raise Invalid_argument if the input is not a 4x4 unitary. *)

val cnot_count : Mathkit.Mat.t -> int
(** Same as {!Weyl.cnot_cost}. *)

val ops_unitary : int -> (Qgate.Gate.t * int list) list -> Mathkit.Mat.t
(** Dense unitary of an op list over [n] qubits; exposed for reuse in tests
    and in block resynthesis. *)
