(** Commutation analysis (Qiskit's CommutationAnalysis analog).

    For every wire, the ops touching that wire are grouped into maximal runs
    of pairwise-commuting instructions ("commute sets", Section IV-E of the
    paper).  Two instructions commute when their embedded unitaries commute
    on the union of their qubits; results of the pairwise check are cached
    per gate pair. *)

type t

val analyze : Qcircuit.Circuit.t -> t

val sets_on_wire : t -> int -> int list list
(** [sets_on_wire t q] lists the commute sets on wire [q] in circuit order;
    each set is the list of instruction indices (circuit order). *)

val set_index : t -> wire:int -> op:int -> int
(** Index of the commute set holding instruction [op] on [wire].
    @raise Not_found if [op] does not touch [wire]. *)

val commute :
  Qgate.Gate.t * int list -> Qgate.Gate.t * int list -> bool
(** Pairwise commutation check between two instructions (exact, matrix
    based).  Instructions on disjoint qubits always commute. *)
