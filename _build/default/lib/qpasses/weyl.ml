open Mathkit

type t = {
  phase : float;
  k1l : Mat.t;
  k1r : Mat.t;
  x : float;
  y : float;
  z : float;
  k2l : Mat.t;
  k2r : Mat.t;
}

let pi = Float.pi
let half_pi = pi /. 2.0
let quarter_pi = pi /. 4.0

let magic_basis =
  let s = 1.0 /. sqrt 2.0 in
  Mat.of_rows
    [
      [ Cx.re s; Cx.zero; Cx.zero; Cx.im s ];
      [ Cx.zero; Cx.im s; Cx.re s; Cx.zero ];
      [ Cx.zero; Cx.im s; Cx.re (-.s); Cx.zero ];
      [ Cx.re s; Cx.zero; Cx.zero; Cx.im (-.s) ];
    ]

let magic_dag = Mat.adjoint magic_basis

(* Diagonal signatures of XX, YY, ZZ in the magic basis (verified against a
   direct computation in the test suite). *)
let sig_xx = [| 1.0; 1.0; -1.0; -1.0 |]
let sig_yy = [| -1.0; 1.0; -1.0; 1.0 |]
let sig_zz = [| 1.0; -1.0; -1.0; 1.0 |]

let canonical_gate x y z =
  let d =
    Mat.init 4 4 (fun i j ->
        if i <> j then Cx.zero
        else Cx.exp_i ((x *. sig_xx.(i)) +. (y *. sig_yy.(i)) +. (z *. sig_zz.(i))))
  in
  Mat.mul magic_basis (Mat.mul d magic_dag)

let reconstruct r =
  let locals1 = Mat.kron r.k1l r.k1r and locals2 = Mat.kron r.k2l r.k2r in
  Mat.scale (Cx.exp_i r.phase)
    (Mat.mul locals1 (Mat.mul (canonical_gate r.x r.y r.z) locals2))

(* ---- canonicalization moves (each preserves reconstruct r) ---- *)

let x_mat = Mat.of_real_rows [ [ 0.0; 1.0 ]; [ 1.0; 0.0 ] ]
let y_mat = Mat.of_rows [ [ Cx.zero; Cx.im (-1.0) ]; [ Cx.im 1.0; Cx.zero ] ]
let z_mat = Mat.of_real_rows [ [ 1.0; 0.0 ]; [ 0.0; -1.0 ] ]

let s_mat = Mat.of_rows [ [ Cx.one; Cx.zero ]; [ Cx.zero; Cx.i ] ]
let h_mat =
  let s = 1.0 /. sqrt 2.0 in
  Mat.of_real_rows [ [ s; s ]; [ s; -.s ] ]

let sx_mat =
  let a = Cx.make 0.5 0.5 and b = Cx.make 0.5 (-0.5) in
  Mat.of_rows [ [ a; b ]; [ b; a ] ]

let coord_get r = function 0 -> r.x | 1 -> r.y | _ -> r.z
let coord_set r k v =
  match k with 0 -> { r with x = v } | 1 -> { r with y = v } | _ -> { r with z = v }

(* v_k -= s * pi/2, compensated by (sigma_k (x) sigma_k) on the left and a
   global phase bump of s*pi/2 (exp(i pi/2 PP) = i P(x)P). *)
let shift r k s =
  if s = 0 then r
  else begin
    let sigma = match k with 0 -> x_mat | 1 -> y_mat | _ -> z_mat in
    let r = coord_set r k (coord_get r k -. (float_of_int s *. half_pi)) in
    let r = { r with phase = r.phase +. (float_of_int s *. half_pi) } in
    if s mod 2 <> 0 then
      { r with k1l = Mat.mul r.k1l sigma; k1r = Mat.mul r.k1r sigma }
    else r
  end

(* swap coordinates k and l by conjugating N with (v (x) v) *)
let swap r k l =
  if k = l then r
  else begin
    let v =
      match (min k l, max k l) with
      | 0, 1 -> s_mat
      | 0, 2 -> h_mat
      | _ -> sx_mat
    in
    let vd = Mat.adjoint v in
    let a = coord_get r k and b = coord_get r l in
    let r = coord_set (coord_set r k b) l a in
    {
      r with
      k1l = Mat.mul r.k1l vd;
      k1r = Mat.mul r.k1r vd;
      k2l = Mat.mul v r.k2l;
      k2r = Mat.mul v r.k2r;
    }
  end

(* negate the two coordinates OTHER than [spared] by conjugating with
   (sigma_spared (x) I) *)
let negate_pair r spared =
  let sigma = match spared with 0 -> x_mat | 1 -> y_mat | _ -> z_mat in
  let neg k r = coord_set r k (-.coord_get r k) in
  let r = List.fold_right neg (List.filter (( <> ) spared) [ 0; 1; 2 ]) r in
  { r with k1l = Mat.mul r.k1l sigma; k2l = Mat.mul sigma r.k2l }

let canonicalize r =
  (* 1. bring every coordinate into [-pi/4, pi/4] *)
  let reduce r k =
    let v = coord_get r k in
    let s = Float.round (v /. half_pi) in
    shift r k (int_of_float s)
  in
  let r = List.fold_left reduce r [ 0; 1; 2 ] in
  (* 2. sort by absolute value, descending *)
  let r =
    let by_abs r =
      let vs = [ (Float.abs r.x, 0); (Float.abs r.y, 1); (Float.abs r.z, 2) ] in
      List.sort (fun (a, _) (b, _) -> compare b a) vs
    in
    match by_abs r with
    | [ (_, i0); (_, i1); (_, _) ] ->
        (* selection sort on three elements via swaps *)
        let r = if i0 = 0 then r else swap r 0 i0 in
        (* recompute position of the second-largest after the first swap *)
        let vs = [ (Float.abs r.y, 1); (Float.abs r.z, 2) ] in
        let _, j = List.hd (List.sort (fun (a, _) (b, _) -> compare b a) vs) in
        let r = if j = 1 then r else swap r 1 j in
        ignore i1;
        r
    | _ -> assert false
  in
  (* 3. make x and y non-negative *)
  let r = if r.x < 0.0 then negate_pair r 1 else r in
  let r = if r.y < 0.0 then negate_pair r 0 else r in
  (* 4. boundary identification: at x = pi/4 the classes (x,y,z) and
     (x,y,-z) coincide; prefer z >= 0 there *)
  let r =
    if r.z < -1e-12 && Float.abs (r.x -. quarter_pi) < 1e-9 then begin
      (* shift x by pi/2 (x -> -pi/4), then negate (x, z) *)
      let r = shift r 0 1 in
      negate_pair r 1
    end
    else r
  in
  r

(* ---- eigenstructure of m^T m ---- *)

let decompose u =
  if Mat.rows u <> 4 || Mat.cols u <> 4 || not (Mat.is_unitary ~eps:1e-7 u) then
    invalid_arg "Weyl.decompose: input must be a 4x4 unitary";
  let det = Mat.det u in
  let phase0 = Cx.arg det /. 4.0 in
  let su = Mat.scale (Cx.exp_i (-.phase0)) u in
  let m = Mat.mul magic_dag (Mat.mul su magic_basis) in
  let m2 = Mat.mul (Mat.transpose m) m in
  let re = Array.init 4 (fun i -> Array.init 4 (fun j -> (Mat.get m2 i j).Complex.re)) in
  let im = Array.init 4 (fun i -> Array.init 4 (fun j -> (Mat.get m2 i j).Complex.im)) in
  let p_real = Eig.simultaneous_diagonalize re im in
  (* determinant of the real orthogonal p: fix to +1 by flipping a column *)
  let p_mat () = Mat.init 4 4 (fun i j -> Cx.re p_real.(i).(j)) in
  let detp = (Mat.det (p_mat ())).Complex.re in
  if detp < 0.0 then
    for i = 0 to 3 do
      p_real.(i).(0) <- -.p_real.(i).(0)
    done;
  let p = p_mat () in
  let pt = Mat.transpose p in
  let d = Mat.mul pt (Mat.mul m2 p) in
  let theta = Array.init 4 (fun j -> Cx.arg (Mat.get d j j) /. 2.0) in
  (* branch fix: product of the d_j must be +1 so that k1 lands in SO(4) *)
  let total = theta.(0) +. theta.(1) +. theta.(2) +. theta.(3) in
  if Cx.abs Cx.(exp_i total - one) > 0.5 then theta.(0) <- theta.(0) +. pi;
  let a_inv =
    Mat.init 4 4 (fun i j -> if i = j then Cx.exp_i (-.theta.(i)) else Cx.zero)
  in
  let k1 = Mat.mul m (Mat.mul p a_inv) in
  let k2 = pt in
  let g = (theta.(0) +. theta.(1) +. theta.(2) +. theta.(3)) /. 4.0 in
  let x = (theta.(0) +. theta.(1) -. theta.(2) -. theta.(3)) /. 4.0 in
  let y = (-.theta.(0) +. theta.(1) -. theta.(2) +. theta.(3)) /. 4.0 in
  let z = (theta.(0) -. theta.(1) -. theta.(2) +. theta.(3)) /. 4.0 in
  let left = Mat.mul magic_basis (Mat.mul k1 magic_dag) in
  let right = Mat.mul magic_basis (Mat.mul k2 magic_dag) in
  let fac what mtx =
    match Kronfactor.kron_factor mtx with
    | Some (gph, a, b) -> (Cx.arg gph, a, b)
    | None -> invalid_arg ("Weyl.decompose: " ^ what ^ " factor is not local")
  in
  let gl, k1l, k1r = fac "left" left in
  let gr, k2l, k2r = fac "right" right in
  canonicalize
    { phase = phase0 +. g +. gl +. gr; k1l; k1r; x; y; z; k2l; k2r }

let coords u =
  let r = decompose u in
  (r.x, r.y, r.z)

let cnot_cost u =
  let x, y, z = coords u in
  let eps = 1e-8 in
  let near a b = Float.abs (a -. b) < eps in
  if near x 0.0 && near y 0.0 && near z 0.0 then 0
  else if near x quarter_pi && near y 0.0 && near z 0.0 then 1
  else if near z 0.0 then 2
  else 3

let cnot_cost_fast u =
  let det = Mat.det u in
  let phase0 = Cx.arg det /. 4.0 in
  let su = Mat.scale (Cx.exp_i (-.phase0)) u in
  let yy = Mat.kron y_mat y_mat in
  let gamma = Mat.mul su (Mat.mul yy (Mat.mul (Mat.transpose su) yy)) in
  let tr = Mat.trace gamma in
  let tr2 = Mat.trace (Mat.mul gamma gamma) in
  let eps = 1e-7 in
  (* local class: gamma = +/-I, i.e. trace +/-4 and REAL (gamma = +/-i I,
     trace +/-4i, is the SWAP class and needs 3) *)
  if Cx.abs Cx.(tr - re 4.0) < eps || Cx.abs Cx.(tr + re 4.0) < eps then 0
  else if Cx.abs tr < eps && Cx.abs Cx.(tr2 + re 4.0) < eps then 1
  else if Float.abs tr.Complex.im < eps then 2
  else 3

let gamma_invariants u =
  let det = Mat.det u in
  let phase0 = Cx.arg det /. 4.0 in
  let su = Mat.scale (Cx.exp_i (-.phase0)) u in
  let yy = Mat.kron y_mat y_mat in
  let gamma = Mat.mul su (Mat.mul yy (Mat.mul (Mat.transpose su) yy)) in
  let tr = Mat.trace gamma in
  let tr2 = Mat.trace (Mat.mul gamma gamma) in
  let g1 = Cx.scale (1.0 /. 16.0) Cx.(tr * tr) in
  let g2 = Cx.scale 0.25 Cx.((tr * tr) - tr2) in
  (g1, g2)
