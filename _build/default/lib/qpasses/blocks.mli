(** Two-qubit block collection (Qiskit's Collect2qBlocks analog).

    A block is a maximal contiguous run of instructions confined to one pair
    of wires: two-qubit gates on exactly that pair plus interleaved
    one-qubit gates on either wire.  Blocks are what the re-synthesis pass
    (and NASSC's [C_2q] estimate) operate on. *)

type segment =
  | Single of Qcircuit.Circuit.instr
  | Block of block

and block = {
  pair : int * int;  (** wire pair (lo, hi) *)
  ops : Qcircuit.Circuit.instr list;  (** in circuit order *)
}

val collect : Qcircuit.Circuit.t -> segment list
(** Segments in a valid topological order of the source circuit. *)

val block_unitary : block -> Mathkit.Mat.t
(** 4x4 unitary of a block, with [fst pair] as the most significant qubit. *)

val to_circuit : int -> segment list -> Qcircuit.Circuit.t
(** Reassemble segments into a circuit over [n] qubits. *)

val block_cx_cost : block -> int
(** CNOTs currently spent inside the block (2q gates counted by their
    CX-basis cost: cx=1, swap=3, other 2q = their lowered cx count). *)

val gate_cx_cost : Qgate.Gate.t -> int
(** CX-basis cost of one gate (0 for one-qubit gates and directives). *)
