(** Adjacent-window peephole optimization (Maslov et al. style, Section
    II-C of the paper's related work).

    Cheaper than {!Cancellation} (no commutation analysis): it only looks
    at gates that are directly adjacent on all shared wires.  Rules:
    - [g . g^{-1}] pairs vanish (same gate qubits, inverse gates);
    - same-axis rotations merge ([rz+rz], [rx+rx], [ry+ry], [p+p],
      [cp+cp], [rzz+rzz], [crz+crz] on identical qubit tuples), dropping
      merges that sum to the identity angle;
    - adjacent duplicate self-inverse gates vanish (special case of the
      first rule).

    Used as a fast clean-up stage; the unitary is preserved exactly. *)

val run : Qcircuit.Circuit.t -> Qcircuit.Circuit.t
(** One fixpoint run (internally iterates until no rule fires). *)
