open Qgate

let lower_instr (i : Qcircuit.Circuit.instr) =
  match i.gate with
  | Gate.Unitary2 m -> begin
      match i.qubits with
      | [ a; b ] ->
          List.map
            (fun (g, qs) ->
              {
                Qcircuit.Circuit.gate = g;
                qubits = List.map (fun q -> if q = 0 then a else b) qs;
              })
            (Synth2q.synthesize m)
      | _ -> assert false
    end
  | _ ->
      List.map
        (fun (g, qs) -> { Qcircuit.Circuit.gate = g; qubits = qs })
        (Decompose.to_cx_basis [ (i.gate, i.qubits) ])

let run c =
  let lowered =
    Qcircuit.Circuit.create (Qcircuit.Circuit.n_qubits c)
      (List.concat_map lower_instr (Qcircuit.Circuit.instrs c))
  in
  (* merge 1q runs and land on {rz, sx, x} *)
  let merged = Optimize_1q.run Optimize_1q.Zsx lowered in
  (* Optimize_1q emits rz/sx only; X appears when a run equals X exactly, in
     which case U = (pi, ...) still lowers to rz/sx, so the basis holds. *)
  merged

let check c =
  List.for_all
    (fun (i : Qcircuit.Circuit.instr) -> Gate.in_basis i.gate)
    (Qcircuit.Circuit.instrs c)

