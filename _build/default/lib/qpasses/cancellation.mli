(** Commutative gate cancellation (Qiskit's CommutativeCancellation analog).

    Within each commute set, pairs of identical self-inverse gates acting on
    the same qubits annihilate, and z-rotations on the same wire merge.
    This is the pass that turns the paper's "the first CNOT of a SWAP
    cancels a neighbouring CNOT through commutation" insight into actual
    gate-count reductions after routing. *)

val run : Qcircuit.Circuit.t -> Qcircuit.Circuit.t

val run_fixpoint : ?max_rounds:int -> Qcircuit.Circuit.t -> Qcircuit.Circuit.t
(** Iterate {!run} until no more gates are removed (at most [max_rounds],
    default 5). *)
