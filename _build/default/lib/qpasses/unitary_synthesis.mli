(** Two-qubit block re-synthesis (Qiskit's Collect2qBlocks +
    UnitarySynthesis, Section III of the paper).

    Each collected block's 4x4 unitary is re-synthesized by the KAK
    decomposer; the new body replaces the block when it spends fewer CNOTs
    (or the same CNOTs with fewer total gates).  This is the optimization
    that can make an inserted SWAP cost 2, 1 or even 0 extra CNOTs. *)

val run : Qcircuit.Circuit.t -> Qcircuit.Circuit.t

val resynth_gain : Blocks.block -> int
(** CNOTs saved by re-synthesizing the block ([current - optimal], >= 0). *)
