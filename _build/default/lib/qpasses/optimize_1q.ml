open Mathkit
open Qgate

type mode = U_gate | Zsx

let two_pi = 2.0 *. Float.pi

let norm_angle a =
  (* wrap into (-pi, pi] *)
  let a = Float.rem a two_pi in
  if a > Float.pi then a -. two_pi else if a <= -.Float.pi then a +. two_pi else a

let is_zero_angle a = Float.abs (norm_angle a) < 1e-10

(* Circuit order: first-applied gate first.
   U(theta,phi,lam) ~ rz(lam) . sx . rz(theta+pi) . sx . rz(phi+pi) read
   left-to-right as a circuit; one-sx and zero-sx special cases below. *)
let zsx_ops theta phi lam =
  let theta_n = norm_angle theta in
  let rz a = if is_zero_angle a then [] else [ Gate.RZ (norm_angle a) ] in
  if Float.abs theta_n < 1e-10 then rz (phi +. lam)
  else if Float.abs (theta_n -. (Float.pi /. 2.0)) < 1e-10 then
    rz (lam -. (Float.pi /. 2.0)) @ [ Gate.SX ] @ rz (phi +. (Float.pi /. 2.0))
  else rz lam @ [ Gate.SX ] @ rz (theta +. Float.pi) @ [ Gate.SX ] @ rz (phi +. Float.pi)

let emit mode q product =
  let theta, phi, lam, _ = Euler.u_params_of_unitary product in
  if Euler.is_identity_angles ~eps:1e-10 (theta, phi, lam) then []
  else
    match mode with
    | U_gate -> [ { Qcircuit.Circuit.gate = Gate.U (theta, phi, lam); qubits = [ q ] } ]
    | Zsx ->
        List.map
          (fun g -> { Qcircuit.Circuit.gate = g; qubits = [ q ] })
          (zsx_ops theta phi lam)

let run mode c =
  let n = Qcircuit.Circuit.n_qubits c in
  let pending : Mat.t option array = Array.make (max n 1) None in
  let out = ref [] in
  let flush q =
    (match pending.(q) with
    | None -> ()
    | Some m -> List.iter (fun i -> out := i :: !out) (emit mode q m));
    pending.(q) <- None
  in
  let visit (i : Qcircuit.Circuit.instr) =
    match i.gate with
    | g when Gate.is_one_qubit g && g <> Gate.Id ->
        let q = List.hd i.qubits in
        let u = Unitary.of_gate g in
        pending.(q) <-
          Some (match pending.(q) with None -> u | Some acc -> Mat.mul u acc)
    | Gate.Id -> ()
    | _ ->
        List.iter flush i.qubits;
        out := i :: !out
  in
  List.iter visit (Qcircuit.Circuit.instrs c);
  for q = 0 to n - 1 do
    flush q
  done;
  Qcircuit.Circuit.create n (List.rev !out)
