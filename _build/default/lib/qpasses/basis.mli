(** Final translation into the hardware basis {rz, sx, x, cx}.

    Multi-qubit structure is lowered first ({!Qgate.Decompose}), opaque
    [Unitary2] blocks are synthesized by KAK, then single-qubit runs are
    merged and emitted over {rz, sx} — exactly the IBM basis the paper
    counts gates in. *)

val run : Qcircuit.Circuit.t -> Qcircuit.Circuit.t
(** The output contains only rz/sx/x/cx plus barriers and measures. *)

val check : Qcircuit.Circuit.t -> bool
(** Whether every instruction is already in the hardware basis. *)
