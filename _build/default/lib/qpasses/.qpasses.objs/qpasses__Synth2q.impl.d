lib/qpasses/synth2q.ml: Euler Float Gate List Mat Mathkit Printf Qcircuit Qgate Unitary Weyl
