lib/qpasses/cancellation.ml: Array Commutation Float Gate Hashtbl List Option Qcircuit Qgate
