lib/qpasses/unitary_synthesis.ml: Blocks List Qcircuit Qgate Synth2q Weyl
