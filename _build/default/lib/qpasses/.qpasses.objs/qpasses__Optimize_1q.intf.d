lib/qpasses/optimize_1q.mli: Qcircuit Qgate
