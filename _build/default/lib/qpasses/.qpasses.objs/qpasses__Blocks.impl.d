lib/qpasses/blocks.ml: Array Decompose Gate List Mathkit Qcircuit Qgate Unitary Weyl
