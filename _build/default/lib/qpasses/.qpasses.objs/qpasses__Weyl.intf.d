lib/qpasses/weyl.mli: Mathkit
