lib/qpasses/unitary_synthesis.mli: Blocks Qcircuit
