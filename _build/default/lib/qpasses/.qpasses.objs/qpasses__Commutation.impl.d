lib/qpasses/commutation.ml: Array Format Gate Hashtbl List Mat Mathkit Option Qcircuit Qgate Seq String Unitary
