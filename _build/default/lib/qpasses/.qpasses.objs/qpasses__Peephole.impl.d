lib/qpasses/peephole.ml: Array Float Gate List Qcircuit Qgate
