lib/qpasses/basis.mli: Qcircuit
