lib/qpasses/basis.ml: Decompose Gate List Optimize_1q Qcircuit Qgate Synth2q
