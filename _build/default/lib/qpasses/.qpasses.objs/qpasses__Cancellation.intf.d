lib/qpasses/cancellation.mli: Qcircuit
