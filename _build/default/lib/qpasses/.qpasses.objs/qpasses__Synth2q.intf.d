lib/qpasses/synth2q.mli: Mathkit Qgate
