lib/qpasses/optimize_1q.ml: Array Euler Float Gate List Mat Mathkit Qcircuit Qgate Unitary
