lib/qpasses/weyl.ml: Array Complex Cx Eig Float Kronfactor List Mat Mathkit
