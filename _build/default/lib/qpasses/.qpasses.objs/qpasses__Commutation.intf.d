lib/qpasses/commutation.mli: Qcircuit Qgate
