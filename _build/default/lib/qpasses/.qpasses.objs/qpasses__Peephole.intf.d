lib/qpasses/peephole.mli: Qcircuit
