lib/qpasses/blocks.mli: Mathkit Qcircuit Qgate
