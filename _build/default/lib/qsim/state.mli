(** Dense statevector simulator.

    Qubit 0 is the MOST significant bit of the basis index, matching the
    convention of {!Qcircuit.Circuit.embed}.  Amplitudes are stored as
    separate re/im float arrays for cache behaviour. *)

type t

val create : int -> t
(** [create n] is |0...0> on [n] qubits.  [n] <= 24. *)

val n_qubits : t -> int

val apply_gate : t -> Qgate.Gate.t -> int list -> unit
(** In-place gate application.  One- and two-qubit gates take fast paths;
    wider gates use a generic gather/scatter kernel.
    @raise Invalid_argument for [Measure] (see {!sample}). *)

val apply_circuit : t -> Qcircuit.Circuit.t -> unit
(** Applies all unitary instructions; barriers and measures are skipped. *)

val amplitude : t -> int -> Mathkit.Cx.t
val probability : t -> int -> float
val probabilities : t -> float array
val norm : t -> float
(** Should stay 1 up to rounding; used as a test invariant. *)

val sample : t -> Mathkit.Rng.t -> int
(** Draw a basis index from the measurement distribution. *)

val most_likely : t -> int
(** Basis index with the highest probability. *)

val copy : t -> t
