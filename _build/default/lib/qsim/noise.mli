(** Monte-Carlo Pauli noise model driven by device calibration data.

    Gate errors are modeled as depolarizing channels (a uniformly random
    Pauli on the gate's qubits with the calibrated error probability), and
    measurement as independent bit flips with the calibrated readout error -
    the standard stochastic approximation of the noise models Qiskit builds
    from IBM backend properties (paper Section VI-D). *)

type t

val of_calibration : Topology.Calibration.t -> t

val trivial : n:int -> t
(** Noise-free model (every error rate zero); useful in tests. *)

val remap : t -> (int -> int) -> t
(** [remap model f] views the model through relabeled wires: wire [q] of
    the new model uses the error rates of wire [f q].  Needed after
    {!Success.compact}, which renames physical wires. *)

val gate_error : t -> Qgate.Gate.t -> int list -> float
(** Error probability charged to one instruction. *)

val readout_error : t -> int -> float

val esp : t -> Qcircuit.Circuit.t -> measured:int list -> float
(** Estimated success probability: product over instructions of
    [1 - error], times [1 - readout] over measured wires.  The standard
    analytic fidelity proxy. *)

val sample :
  t -> Qcircuit.Circuit.t -> shots:int -> ?max_error_sims:int -> Mathkit.Rng.t ->
  int array
(** [sample model circuit ~shots rng] draws [shots] noisy measurement
    outcomes (full basis indices, before readout error is applied to
    non-measured wires is irrelevant - readout flips are applied to every
    wire; project as needed).  Error-free shots reuse one noiseless
    simulation; shots with injected Paulis re-simulate, up to
    [max_error_sims] distinct re-simulations (default 400), after which
    error shots cycle through the cached noisy results. *)
