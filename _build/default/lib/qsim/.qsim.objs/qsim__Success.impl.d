lib/qsim/success.ml: Array List Mathkit Noise Qcircuit Rng State
