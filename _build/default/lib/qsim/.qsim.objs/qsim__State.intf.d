lib/qsim/state.mli: Mathkit Qcircuit Qgate
