lib/qsim/equiv.mli: Qcircuit
