lib/qsim/state.ml: Array Complex Cx Gate List Mat Mathkit Qcircuit Qgate Rng Unitary
