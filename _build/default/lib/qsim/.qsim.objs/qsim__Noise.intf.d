lib/qsim/noise.mli: Mathkit Qcircuit Qgate Topology
