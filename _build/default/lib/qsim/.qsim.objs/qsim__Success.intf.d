lib/qsim/success.mli: Qcircuit Topology
