lib/qsim/noise.ml: Array Gate List Mathkit Qcircuit Qgate Rng State Topology
