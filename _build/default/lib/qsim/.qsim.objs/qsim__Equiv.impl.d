lib/qsim/equiv.ml: Array Cx Float Mat Mathkit Qcircuit State
