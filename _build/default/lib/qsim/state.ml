open Mathkit
open Qgate

type t = { n : int; re : float array; im : float array }

let create n =
  if n < 1 || n > 24 then invalid_arg "State.create: supported range is 1..24 qubits";
  let dim = 1 lsl n in
  let re = Array.make dim 0.0 and im = Array.make dim 0.0 in
  re.(0) <- 1.0;
  { n; re; im }

let n_qubits s = s.n
let copy s = { s with re = Array.copy s.re; im = Array.copy s.im }

(* bit position of qubit q (qubit 0 = most significant) *)
let bitpos s q = s.n - 1 - q

let apply_1q s u q =
  let b = bitpos s q in
  let mask = 1 lsl b in
  let dim = 1 lsl s.n in
  let u00 = Mat.get u 0 0 and u01 = Mat.get u 0 1 in
  let u10 = Mat.get u 1 0 and u11 = Mat.get u 1 1 in
  let a_re = u00.Complex.re and a_im = u00.Complex.im in
  let b_re = u01.Complex.re and b_im = u01.Complex.im in
  let c_re = u10.Complex.re and c_im = u10.Complex.im in
  let d_re = u11.Complex.re and d_im = u11.Complex.im in
  let i = ref 0 in
  while !i < dim do
    if !i land mask = 0 then begin
      let j = !i lor mask in
      let xr = s.re.(!i) and xi = s.im.(!i) in
      let yr = s.re.(j) and yi = s.im.(j) in
      s.re.(!i) <- (a_re *. xr) -. (a_im *. xi) +. (b_re *. yr) -. (b_im *. yi);
      s.im.(!i) <- (a_re *. xi) +. (a_im *. xr) +. (b_re *. yi) +. (b_im *. yr);
      s.re.(j) <- (c_re *. xr) -. (c_im *. xi) +. (d_re *. yr) -. (d_im *. yi);
      s.im.(j) <- (c_re *. xi) +. (c_im *. xr) +. (d_re *. yi) +. (d_im *. yr)
    end;
    incr i
  done

let apply_cx s c t =
  let bc = bitpos s c and bt = bitpos s t in
  let mc = 1 lsl bc and mt = 1 lsl bt in
  let dim = 1 lsl s.n in
  let i = ref 0 in
  while !i < dim do
    (* swap amplitudes of |c=1,t=0> and |c=1,t=1> *)
    if !i land mc <> 0 && !i land mt = 0 then begin
      let j = !i lor mt in
      let tr = s.re.(!i) and ti = s.im.(!i) in
      s.re.(!i) <- s.re.(j);
      s.im.(!i) <- s.im.(j);
      s.re.(j) <- tr;
      s.im.(j) <- ti
    end;
    incr i
  done

(* generic k-qubit kernel *)
let apply_generic s u qs =
  let k = List.length qs in
  let bits = Array.of_list (List.map (bitpos s) qs) in
  let dim = 1 lsl s.n in
  let sub = 1 lsl k in
  let qmask = Array.fold_left (fun acc b -> acc lor (1 lsl b)) 0 bits in
  let gather = Array.make sub 0 in
  (* local index l: bit (k-1-pos) corresponds to qs[pos] (qubit order, first
     qubit most significant locally) *)
  let idx_of base l =
    let x = ref base in
    for pos = 0 to k - 1 do
      if (l lsr (k - 1 - pos)) land 1 = 1 then x := !x lor (1 lsl bits.(pos))
    done;
    !x
  in
  let tmp_re = Array.make sub 0.0 and tmp_im = Array.make sub 0.0 in
  let base = ref 0 in
  while !base < dim do
    if !base land qmask = 0 then begin
      for l = 0 to sub - 1 do
        gather.(l) <- idx_of !base l
      done;
      for r = 0 to sub - 1 do
        let acc_re = ref 0.0 and acc_im = ref 0.0 in
        for ccol = 0 to sub - 1 do
          let m = Mat.get u r ccol in
          let vr = s.re.(gather.(ccol)) and vi = s.im.(gather.(ccol)) in
          acc_re := !acc_re +. (m.Complex.re *. vr) -. (m.Complex.im *. vi);
          acc_im := !acc_im +. (m.Complex.re *. vi) +. (m.Complex.im *. vr)
        done;
        tmp_re.(r) <- !acc_re;
        tmp_im.(r) <- !acc_im
      done;
      for r = 0 to sub - 1 do
        s.re.(gather.(r)) <- tmp_re.(r);
        s.im.(gather.(r)) <- tmp_im.(r)
      done
    end;
    incr base
  done

let apply_gate s (g : Gate.t) qs =
  match (g, qs) with
  | Gate.Measure, _ -> invalid_arg "State.apply_gate: measure is handled by sampling"
  | Gate.Barrier _, _ | Gate.Id, _ -> ()
  | Gate.CX, [ c; t ] -> apply_cx s c t
  | g, [ q ] -> apply_1q s (Unitary.of_gate g) q
  | g, qs -> apply_generic s (Unitary.of_gate g) qs

let apply_circuit s c =
  if Qcircuit.Circuit.n_qubits c <> s.n then
    invalid_arg "State.apply_circuit: qubit-count mismatch";
  List.iter
    (fun (i : Qcircuit.Circuit.instr) ->
      match i.gate with
      | Gate.Measure | Gate.Barrier _ -> ()
      | g -> apply_gate s g i.qubits)
    (Qcircuit.Circuit.instrs c)

let amplitude s idx = Cx.make s.re.(idx) s.im.(idx)
let probability s idx = (s.re.(idx) *. s.re.(idx)) +. (s.im.(idx) *. s.im.(idx))
let probabilities s = Array.init (1 lsl s.n) (probability s)

let norm s =
  let acc = ref 0.0 in
  for i = 0 to (1 lsl s.n) - 1 do
    acc := !acc +. probability s i
  done;
  sqrt !acc

let sample s rng =
  let r = Rng.float rng 1.0 in
  let acc = ref 0.0 and out = ref 0 in
  (try
     for i = 0 to (1 lsl s.n) - 1 do
       acc := !acc +. probability s i;
       if !acc >= r then begin
         out := i;
         raise Exit
       end
     done;
     out := (1 lsl s.n) - 1
   with Exit -> ());
  !out

let most_likely s =
  let best = ref 0 in
  for i = 1 to (1 lsl s.n) - 1 do
    if probability s i > probability s !best then best := i
  done;
  !best
