open Mathkit
open Qgate

type t = {
  gate_err : Gate.t -> int list -> float;
  ro_err : int -> float;
}

let of_calibration cal =
  let gate_err (g : Gate.t) qs =
    match (g, qs) with
    | Gate.CX, [ a; b ] -> Topology.Calibration.cx_error cal a b
    | (Gate.Barrier _ | Gate.Measure | Gate.Id), _ -> 0.0
    | _, [ q ] -> Topology.Calibration.sq_error cal q
    | _, qs ->
        (* multi-qubit gates: charge a cx-like error per touched pair *)
        float_of_int (List.length qs - 1) *. 0.01
  in
  { gate_err; ro_err = (fun q -> Topology.Calibration.readout_error cal q) }

let trivial ~n =
  ignore n;
  { gate_err = (fun _ _ -> 0.0); ro_err = (fun _ -> 0.0) }

let remap t f =
  {
    gate_err = (fun g qs -> t.gate_err g (List.map f qs));
    ro_err = (fun q -> t.ro_err (f q));
  }

let gate_error t g qs = t.gate_err g qs
let readout_error t q = t.ro_err q

let esp t c ~measured =
  let gate_part =
    List.fold_left
      (fun acc (i : Qcircuit.Circuit.instr) -> acc *. (1.0 -. t.gate_err i.gate i.qubits))
      1.0 (Qcircuit.Circuit.instrs c)
  in
  List.fold_left (fun acc q -> acc *. (1.0 -. t.ro_err q)) gate_part measured

let paulis = [| Gate.X; Gate.Y; Gate.Z |]

(* simulate with a Pauli injected after each faulty instruction *)
let simulate_with_errors c faulty rng =
  let s = State.create (Qcircuit.Circuit.n_qubits c) in
  List.iteri
    (fun idx (i : Qcircuit.Circuit.instr) ->
      (match i.gate with
      | Gate.Measure | Gate.Barrier _ -> ()
      | g -> State.apply_gate s g i.qubits);
      if List.mem idx faulty then
        List.iter
          (fun q ->
            (* uniformly random Pauli, identity excluded on at least one
               qubit is not enforced: a global identity draw is harmless *)
            if Rng.int rng 4 > 0 then
              State.apply_gate s paulis.(Rng.int rng 3) [ q ])
          i.qubits)
    (Qcircuit.Circuit.instrs c);
  s

let apply_readout t n rng outcome =
  let out = ref outcome in
  for q = 0 to n - 1 do
    if Rng.float rng 1.0 < t.ro_err q then out := !out lxor (1 lsl (n - 1 - q))
  done;
  !out

let sample t c ~shots ?(max_error_sims = 400) rng =
  let n = Qcircuit.Circuit.n_qubits c in
  let instrs = Array.of_list (Qcircuit.Circuit.instrs c) in
  let err = Array.map (fun (i : Qcircuit.Circuit.instr) -> t.gate_err i.gate i.qubits) instrs in
  let clean = State.create n in
  State.apply_circuit clean c;
  let error_cache : State.t list ref = ref [] in
  let n_sims = ref 0 in
  let draw_faulty () =
    let f = ref [] in
    Array.iteri (fun idx e -> if e > 0.0 && Rng.float rng 1.0 < e then f := idx :: !f) err;
    !f
  in
  Array.init shots (fun _ ->
      let faulty = draw_faulty () in
      let state =
        if faulty = [] then clean
        else if !n_sims < max_error_sims then begin
          let s = simulate_with_errors c faulty rng in
          incr n_sims;
          error_cache := s :: !error_cache;
          s
        end
        else begin
          match !error_cache with
          | [] -> clean
          | cache -> List.nth cache (Rng.int rng (List.length cache))
        end
      in
      apply_readout t n rng (State.sample state rng))
