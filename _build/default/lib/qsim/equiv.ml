open Mathkit

let unitary_equal a b =
  Mat.equal_up_to_phase (Qcircuit.Circuit.unitary a) (Qcircuit.Circuit.unitary b)

let states ~logical ~routed =
  let s_log = State.create (Qcircuit.Circuit.n_qubits logical) in
  State.apply_circuit s_log (Qcircuit.Circuit.drop_measures logical);
  let s_phys = State.create (Qcircuit.Circuit.n_qubits routed) in
  State.apply_circuit s_phys (Qcircuit.Circuit.drop_measures routed);
  (s_log, s_phys)

(* physical basis index carrying logical index x on the layout wires *)
let scatter ~n_log ~n_phys final_layout x =
  let idx = ref 0 in
  for l = 0 to n_log - 1 do
    if (x lsr (n_log - 1 - l)) land 1 = 1 then
      idx := !idx lor (1 lsl (n_phys - 1 - final_layout.(l)))
  done;
  !idx

let routed_equal ~logical ~routed ~final_layout =
  let n_log = Qcircuit.Circuit.n_qubits logical in
  let n_phys = Qcircuit.Circuit.n_qubits routed in
  if Array.length final_layout < n_log then false
  else begin
    let s_log, s_phys = states ~logical ~routed in
    let scatter = scatter ~n_log ~n_phys final_layout in
    (* phase reference: the largest logical amplitude *)
    let best = ref 0 in
    for x = 1 to (1 lsl n_log) - 1 do
      if State.probability s_log x > State.probability s_log !best then best := x
    done;
    let za = State.amplitude s_phys (scatter !best) in
    let zb = State.amplitude s_log !best in
    if Cx.abs zb < 1e-9 then false
    else begin
      let phase = Cx.(za / zb) in
      if Float.abs (Cx.abs phase -. 1.0) > 1e-6 then false
      else begin
        let ok = ref true in
        let data_prob = ref 0.0 in
        for x = 0 to (1 lsl n_log) - 1 do
          let expected = Cx.(phase * State.amplitude s_log x) in
          if not (Cx.approx ~eps:1e-6 (State.amplitude s_phys (scatter x)) expected) then
            ok := false;
          data_prob := !data_prob +. State.probability s_phys (scatter x)
        done;
        !ok && Float.abs (!data_prob -. 1.0) < 1e-6
      end
    end
  end

let distribution_distance ~logical ~routed ~final_layout =
  let n_log = Qcircuit.Circuit.n_qubits logical in
  let n_phys = Qcircuit.Circuit.n_qubits routed in
  let s_log, s_phys = states ~logical ~routed in
  let scatter = scatter ~n_log ~n_phys final_layout in
  (* marginalize the physical distribution onto the layout wires *)
  let marg = Array.make (1 lsl n_log) 0.0 in
  for idx = 0 to (1 lsl n_phys) - 1 do
    let x = ref 0 in
    for l = 0 to n_log - 1 do
      if (idx lsr (n_phys - 1 - final_layout.(l))) land 1 = 1 then
        x := !x lor (1 lsl (n_log - 1 - l))
    done;
    marg.(!x) <- marg.(!x) +. State.probability s_phys idx
  done;
  ignore scatter;
  let acc = ref 0.0 in
  for x = 0 to (1 lsl n_log) - 1 do
    acc := !acc +. Float.abs (marg.(x) -. State.probability s_log x)
  done;
  !acc /. 2.0
