open Mathkit
open Qgate

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Dense operator of an op list over n qubits, via Qcircuit.Circuit.embed. *)
let ops_unitary n ops =
  List.fold_left
    (fun acc (g, qs) ->
      Mat.mul (Qcircuit.Circuit.embed ~n (Unitary.of_gate g) qs) acc)
    (Mat.identity (1 lsl n))
    ops

let all_simple_gates =
  [
    Gate.Id; Gate.X; Gate.Y; Gate.Z; Gate.H; Gate.S; Gate.Sdg; Gate.T; Gate.Tdg;
    Gate.SX; Gate.SXdg; Gate.RX 0.7; Gate.RY (-1.2); Gate.RZ 2.9; Gate.P 0.3;
    Gate.U (0.5, 1.0, -0.4); Gate.CX; Gate.CY; Gate.CZ; Gate.CH; Gate.SWAP;
    Gate.CRX 0.9; Gate.CRY 1.4; Gate.CRZ (-0.6); Gate.CP 2.2; Gate.RZZ 0.8;
    Gate.CCX; Gate.CCZ; Gate.CSWAP; Gate.MCX 3; Gate.MCZ 3;
  ]

let test_all_unitaries_are_unitary () =
  List.iter
    (fun g ->
      check (Format.asprintf "%a unitary" Gate.pp g) true
        (Mat.is_unitary (Unitary.of_gate g)))
    all_simple_gates

let test_inverse_is_inverse () =
  List.iter
    (fun g ->
      let u = Unitary.of_gate g and v = Unitary.of_gate (Gate.inverse g) in
      let n = Mat.rows u in
      check
        (Format.asprintf "%a inverse" Gate.pp g)
        true
        (Mat.equal_up_to_phase (Mat.mul u v) (Mat.identity n)))
    all_simple_gates

let test_self_inverse_flag_sound () =
  List.iter
    (fun g ->
      if Gate.is_self_inverse g then
        let u = Unitary.of_gate g in
        check
          (Format.asprintf "%a self-inverse" Gate.pp g)
          true
          (Mat.equal_up_to_phase (Mat.mul u u) (Mat.identity (Mat.rows u))))
    all_simple_gates

let test_arity_consistent () =
  List.iter
    (fun g ->
      let u = Unitary.of_gate g in
      checki (Format.asprintf "%a arity" Gate.pp g) (1 lsl Gate.arity g) (Mat.rows u))
    all_simple_gates

let test_known_matrices () =
  (* CX: |10> -> |11>, control = most significant *)
  let cx = Unitary.of_gate Gate.CX in
  check "cx flips target" true (Cx.approx (Mat.get cx 3 2) Cx.one);
  check "cx keeps 01" true (Cx.approx (Mat.get cx 1 1) Cx.one);
  (* SWAP exchanges 01 and 10 *)
  let sw = Unitary.of_gate Gate.SWAP in
  check "swap 01->10" true (Cx.approx (Mat.get sw 2 1) Cx.one);
  (* S = sqrt Z, T = sqrt S *)
  let s = Unitary.of_gate Gate.S and z = Unitary.of_gate Gate.Z in
  check "s^2 = z" true (Mat.approx_equal (Mat.mul s s) z);
  let t = Unitary.of_gate Gate.T in
  check "t^2 = s" true (Mat.approx_equal (Mat.mul t t) s);
  let sx = Unitary.of_gate Gate.SX and x = Unitary.of_gate Gate.X in
  check "sx^2 = x" true (Mat.equal_up_to_phase (Mat.mul sx sx) x)

let test_swap_conjugates_cx () =
  (* SWAP . CX(a,b) . SWAP = CX(b,a) *)
  let sw = Unitary.of_gate Gate.SWAP in
  let cx = Unitary.of_gate Gate.CX in
  check "swap conjugation" true
    (Mat.approx_equal (Mat.mul sw (Mat.mul cx sw)) Unitary.cnot_rev)

(* ---------- decomposition ---------- *)

let decomposition_preserves g n_qubits =
  let qs = List.init (Gate.arity g) (fun i -> i) in
  let lowered = Decompose.to_cx_basis [ (g, qs) ] in
  let u_orig = Qcircuit.Circuit.embed ~n:n_qubits (Unitary.of_gate g) qs in
  let u_low = ops_unitary n_qubits lowered in
  Mat.equal_up_to_phase u_orig u_low

let test_lowering_2q () =
  List.iter
    (fun g ->
      check (Format.asprintf "%a lowering" Gate.pp g) true (decomposition_preserves g 2))
    [
      Gate.CY; Gate.CZ; Gate.CH; Gate.SWAP; Gate.CP 1.1; Gate.CRZ 0.7; Gate.CRY (-0.9);
      Gate.CRX 2.3; Gate.RZZ 0.5;
    ]

let test_lowering_3q () =
  List.iter
    (fun g ->
      check (Format.asprintf "%a lowering" Gate.pp g) true (decomposition_preserves g 3))
    [ Gate.CCX; Gate.CCZ; Gate.CSWAP ]

let test_lowering_mcx () =
  for k = 3 to 5 do
    check
      (Printf.sprintf "mcx %d lowering" k)
      true
      (decomposition_preserves (Gate.MCX k) (k + 1));
    check
      (Printf.sprintf "mcz %d lowering" k)
      true
      (decomposition_preserves (Gate.MCZ k) (k + 1))
  done

let test_lowering_only_basis_ops () =
  let lowered = Decompose.to_cx_basis [ (Gate.MCX 4, [ 0; 1; 2; 3; 4 ]) ] in
  List.iter
    (fun (g, _) ->
      check "only cx and 1q" true (g = Gate.CX || Gate.arity g = 1))
    lowered

let test_mcx_cnot_count () =
  (* gray-code construction: 2^{k+1} - 2 CNOTs for k controls *)
  for k = 2 to 6 do
    let lowered = Decompose.to_cx_basis [ (Gate.MCZ k, List.init (k + 1) (fun i -> i)) ] in
    let cxs = List.length (List.filter (fun (g, _) -> g = Gate.CX) lowered) in
    checki (Printf.sprintf "mcz %d cx count" k) ((1 lsl (k + 1)) - 2) cxs
  done

let test_multiplexed_rz () =
  (* directly verify branch angles of the multiplexer *)
  let rng = Rng.create 99 in
  for k = 1 to 4 do
    let m = 1 lsl k in
    let alpha = Array.init m (fun _ -> Rng.float rng 6.28 -. 3.14) in
    let controls = List.init k (fun i -> i) in
    let ops = Decompose.multiplexed_rz controls k alpha in
    let u = ops_unitary (k + 1) ops in
    (* expected: block-diagonal rz(alpha_j) on target for each control branch *)
    let expected =
      Mat.init (1 lsl (k + 1)) (1 lsl (k + 1)) (fun i j ->
          if i <> j then Cx.zero
          else
            let branch = i lsr 1 and tbit = i land 1 in
            let a = alpha.(branch) in
            Cx.exp_i ((if tbit = 1 then 1.0 else -1.0) *. a /. 2.0))
    in
    check (Printf.sprintf "multiplexed rz k=%d" k) true (Mat.equal_up_to_phase u expected)
  done

let test_mcphase_matrix () =
  for n = 1 to 5 do
    let qs = List.init n (fun i -> i) in
    let theta = 0.77 in
    let u = ops_unitary n (Decompose.to_cx_basis (Decompose.mcphase theta qs)) in
    let dim = 1 lsl n in
    let expected =
      Mat.init dim dim (fun i j ->
          if i <> j then Cx.zero else if i = dim - 1 then Cx.exp_i theta else Cx.one)
    in
    check (Printf.sprintf "mcphase n=%d" n) true (Mat.equal_up_to_phase u expected)
  done

let qcheck_props =
  let gen_seed = QCheck.Gen.int_range 0 1_000_000 in
  let prop_u_gate =
    QCheck.Test.make ~name:"u gate is unitary for random angles" ~count:100
      (QCheck.make gen_seed) (fun seed ->
        let rng = Rng.create seed in
        let g =
          Gate.U (Rng.float rng 6.3, Rng.float rng 6.3 -. 3.15, Rng.float rng 6.3 -. 3.15)
        in
        Mat.is_unitary (Unitary.of_gate g))
  in
  let prop_crz =
    QCheck.Test.make ~name:"crz lowering preserves unitary" ~count:50
      (QCheck.make gen_seed) (fun seed ->
        let rng = Rng.create seed in
        let a = Rng.float rng 6.3 -. 3.15 in
        let g = Gate.CRZ a in
        let lowered = Decompose.to_cx_basis [ (g, [ 0; 1 ]) ] in
        Mat.equal_up_to_phase
          (ops_unitary 2 lowered)
          (Unitary.of_gate g))
  in
  List.map QCheck_alcotest.to_alcotest [ prop_u_gate; prop_crz ]

let () =
  Alcotest.run "qgate"
    [
      ( "unitaries",
        [
          Alcotest.test_case "all unitary" `Quick test_all_unitaries_are_unitary;
          Alcotest.test_case "inverses" `Quick test_inverse_is_inverse;
          Alcotest.test_case "self-inverse flags" `Quick test_self_inverse_flag_sound;
          Alcotest.test_case "arity" `Quick test_arity_consistent;
          Alcotest.test_case "known matrices" `Quick test_known_matrices;
          Alcotest.test_case "swap conjugates cx" `Quick test_swap_conjugates_cx;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "two-qubit gates" `Quick test_lowering_2q;
          Alcotest.test_case "three-qubit gates" `Quick test_lowering_3q;
          Alcotest.test_case "mcx/mcz" `Quick test_lowering_mcx;
          Alcotest.test_case "basis only" `Quick test_lowering_only_basis_ops;
          Alcotest.test_case "mcz cx count" `Quick test_mcx_cnot_count;
          Alcotest.test_case "multiplexed rz" `Quick test_multiplexed_rz;
          Alcotest.test_case "mcphase matrix" `Quick test_mcphase_matrix;
        ] );
      ("properties", qcheck_props);
    ]
