open Qcircuit
open Qgate

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let parse = Qasm_parser.parse

let test_minimal_program () =
  let c =
    parse
      "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\n"
  in
  checki "qubits" 2 (Circuit.n_qubits c);
  checki "ops" 2 (Circuit.size c);
  match Circuit.instrs c with
  | [ { gate = Gate.H; qubits = [ 0 ] }; { gate = Gate.CX; qubits = [ 0; 1 ] } ] -> ()
  | _ -> Alcotest.fail "wrong parse"

let test_angle_expressions () =
  let c = parse "qreg q[1];\nrz(pi/2) q[0];\nrz(-pi/4) q[0];\nrz(3*pi/8) q[0];\nrz(0.5) q[0];\nrz(2e-3) q[0];\nrz((pi+1)/2) q[0];\n" in
  match List.map (fun (i : Circuit.instr) -> i.gate) (Circuit.instrs c) with
  | [ Gate.RZ a; Gate.RZ b; Gate.RZ c'; Gate.RZ d; Gate.RZ e; Gate.RZ f ] ->
      checkf "pi/2" (Float.pi /. 2.0) a;
      checkf "-pi/4" (-.Float.pi /. 4.0) b;
      checkf "3*pi/8" (3.0 *. Float.pi /. 8.0) c';
      checkf "0.5" 0.5 d;
      checkf "2e-3" 0.002 e;
      checkf "(pi+1)/2" ((Float.pi +. 1.0) /. 2.0) f
  | _ -> Alcotest.fail "wrong gates"

let test_u_gates () =
  let c = parse "qreg q[1];\nu3(0.1,0.2,0.3) q[0];\nu2(0.4,0.5) q[0];\nu1(0.6) q[0];\n" in
  match List.map (fun (i : Circuit.instr) -> i.gate) (Circuit.instrs c) with
  | [ Gate.U (a, b, c'); Gate.U (t, p, l); Gate.P x ] ->
      checkf "u3 theta" 0.1 a;
      checkf "u3 phi" 0.2 b;
      checkf "u3 lam" 0.3 c';
      checkf "u2 is u(pi/2)" (Float.pi /. 2.0) t;
      checkf "u2 phi" 0.4 p;
      checkf "u2 lam" 0.5 l;
      checkf "u1 is p" 0.6 x
  | _ -> Alcotest.fail "wrong gates"

let test_multi_qubit_and_measure () =
  let c =
    parse
      "qreg q[4];\ncreg c[4];\nccx q[0],q[1],q[2];\ncswap q[0],q[1],q[2];\nswap q[2],q[3];\nbarrier q[0],q[1];\nmeasure q[3] -> c[3];\n"
  in
  match Circuit.instrs c with
  | [
   { gate = Gate.CCX; qubits = [ 0; 1; 2 ] };
   { gate = Gate.CSWAP; qubits = [ 0; 1; 2 ] };
   { gate = Gate.SWAP; qubits = [ 2; 3 ] };
   { gate = Gate.Barrier 2; qubits = [ 0; 1 ] };
   { gate = Gate.Measure; qubits = [ 3 ] };
  ] ->
      ()
  | _ -> Alcotest.fail "wrong parse"

let test_comments_and_whitespace () =
  let c = parse "qreg q[1]; // register\n// full comment line\n  x q[0];  \n\n" in
  checki "one op" 1 (Circuit.size c)

let test_errors () =
  let raises s =
    try
      ignore (parse s);
      false
    with Qasm_parser.Parse_error _ -> true
  in
  check "no qreg" true (raises "x q[0];\n");
  check "unknown gate" true (raises "qreg q[1];\nfoo q[0];\n");
  check "bad operand" true (raises "qreg q[1];\nx r[0];\n");
  check "bad angle" true (raises "qreg q[1];\nrz(pi**2) q[0];\n");
  check "wrong params" true (raises "qreg q[1];\nrz(1,2) q[0];\n")

let test_roundtrip_with_emitter () =
  (* Qasm.to_string output must parse back to a circuit with the same
     unitary *)
  let rng = Mathkit.Rng.create 77 in
  for _ = 1 to 10 do
    let b = Circuit.Builder.create 3 in
    for _ = 1 to 15 do
      match Mathkit.Rng.int rng 5 with
      | 0 -> Circuit.Builder.add b Gate.H [ Mathkit.Rng.int rng 3 ]
      | 1 -> Circuit.Builder.add b (Gate.RZ (Mathkit.Rng.float rng 6.0)) [ Mathkit.Rng.int rng 3 ]
      | 2 -> Circuit.Builder.add b (Gate.CP (Mathkit.Rng.float rng 3.0)) [ 0; 2 ]
      | 3 -> Circuit.Builder.add b Gate.CX [ 1; 2 ]
      | _ -> Circuit.Builder.add b Gate.T [ Mathkit.Rng.int rng 3 ]
    done;
    let c = Circuit.Builder.circuit b in
    let parsed = parse (Qasm.to_string c) in
    check "roundtrip unitary" true
      (Mathkit.Mat.equal_up_to_phase (Circuit.unitary parsed) (Circuit.unitary c))
  done

let test_parse_then_transpile () =
  (* external QASM input flows through the whole stack *)
  let qasm =
    "OPENQASM 2.0;\nqreg q[4];\nh q[0];\ncp(pi/2) q[1],q[0];\ncp(pi/4) q[2],q[0];\n\
     h q[1];\ncp(pi/2) q[2],q[1];\nh q[2];\nccx q[1],q[2],q[3];\n"
  in
  let c = parse qasm in
  let r =
    Qroute.Pipeline.transpile
      ~router:(Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config)
      (Topology.Devices.linear 5) c
  in
  check "parses and routes" true (r.cx_total > 0);
  check "valid on device" true (Qroute.Sabre.check_routed (Topology.Devices.linear 5) r.circuit)

let () =
  Alcotest.run "qasm_parser"
    [
      ( "parser",
        [
          Alcotest.test_case "minimal" `Quick test_minimal_program;
          Alcotest.test_case "angles" `Quick test_angle_expressions;
          Alcotest.test_case "u gates" `Quick test_u_gates;
          Alcotest.test_case "multi-qubit + measure" `Quick test_multi_qubit_and_measure;
          Alcotest.test_case "comments" `Quick test_comments_and_whitespace;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "emitter roundtrip" `Quick test_roundtrip_with_emitter;
          Alcotest.test_case "parse then transpile" `Quick test_parse_then_transpile;
        ] );
    ]
