test/test_qroute.ml: Alcotest Array Circuit Engine Gate Hashtbl List Mat Mathkit Metrics Nassc Pipeline Qbench Qcircuit Qgate Qpasses Qroute Qsim Rng Sabre Topology
