test/test_qcircuit.ml: Alcotest Array Circuit Cx Dag Gate Hashtbl List Mat Mathkit Qasm Qcircuit Qgate String Unitary
