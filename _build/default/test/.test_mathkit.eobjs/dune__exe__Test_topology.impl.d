test/test_topology.ml: Alcotest Array Calibration Coupling Devices Float List Mathkit Topology
