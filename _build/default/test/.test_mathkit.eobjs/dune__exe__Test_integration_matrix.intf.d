test/test_integration_matrix.mli:
