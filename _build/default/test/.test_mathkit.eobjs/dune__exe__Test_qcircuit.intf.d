test/test_qcircuit.mli:
