test/test_weyl_boundary.ml: Alcotest Cx Float Gate List Mat Mathkit Qgate Qpasses Randmat Rng Synth2q Unitary Weyl
