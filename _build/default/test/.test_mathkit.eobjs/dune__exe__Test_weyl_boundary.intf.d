test/test_weyl_boundary.mli:
