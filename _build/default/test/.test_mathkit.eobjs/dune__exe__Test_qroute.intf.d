test/test_qroute.mli:
