test/test_qsim.ml: Alcotest Array Circuit Cx Float Gate Mat Mathkit Noise Qbench Qcircuit Qgate Qroute Qsim Rng State Success Topology
