test/test_qbench.ml: Alcotest Circuit Float Generators List Printf Qbench Qcircuit Qroute Qsim Revlib_like Suite
