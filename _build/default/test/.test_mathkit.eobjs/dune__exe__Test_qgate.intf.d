test/test_qgate.mli:
