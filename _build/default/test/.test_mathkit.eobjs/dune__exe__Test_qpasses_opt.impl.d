test/test_qpasses_opt.ml: Alcotest Basis Blocks Cancellation Circuit Commutation Euler Float Gate List Mat Mathkit Optimize_1q Qcircuit Qgate Qpasses Randmat Rng Unitary Unitary_synthesis
