test/test_qbench.mli:
