test/test_qpasses_opt.mli:
