test/test_paper_scenarios.mli:
