test/test_qasm.ml: Alcotest Circuit Float Gate List Mathkit Qasm Qasm_parser Qcircuit Qgate Qroute Topology
