test/test_mathkit.ml: Alcotest Array Cx Eig Euler Float Kronfactor List Mat Mathkit Printf QCheck QCheck_alcotest Randmat Rng
