test/test_robustness.ml: Alcotest Array Circuit Dag Gate List Mathkit QCheck QCheck_alcotest Qasm Qasm_parser Qbench Qcircuit Qgate Qpasses Qroute Qsim Rng Topology
