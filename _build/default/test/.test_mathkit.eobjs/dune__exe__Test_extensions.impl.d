test/test_extensions.ml: Alcotest Analysis Array Circuit Float Gate Hashtbl List Mat Mathkit Printf Qbench Qcircuit Qgate Qpasses Qroute Qsim Rng Topology
