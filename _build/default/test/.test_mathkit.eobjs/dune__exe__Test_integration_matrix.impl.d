test/test_integration_matrix.ml: Alcotest Array Circuit List Printf Qbench Qcircuit Qpasses Qroute Topology
