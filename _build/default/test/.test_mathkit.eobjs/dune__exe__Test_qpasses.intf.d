test/test_qpasses.mli:
