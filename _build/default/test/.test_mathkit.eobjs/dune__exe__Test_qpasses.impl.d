test/test_qpasses.ml: Alcotest Array Cx Float Format Gate List Mat Mathkit QCheck QCheck_alcotest Qgate Qpasses Randmat Rng Synth2q Unitary Weyl
