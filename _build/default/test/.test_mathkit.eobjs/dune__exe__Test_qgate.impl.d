test/test_qgate.ml: Alcotest Array Cx Decompose Format Gate List Mat Mathkit Printf QCheck QCheck_alcotest Qcircuit Qgate Rng Unitary
