test/test_paper_scenarios.ml: Alcotest Circuit Engine Float Gate List Mathkit Nassc Pipeline Qbench Qcircuit Qgate Qpasses Qroute Sabre Sys Topology Unitary
