open Mathkit

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    checki "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    check "in range" true (v >= 0 && v < 17);
    let f = Rng.float rng 2.5 in
    check "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_permutation () =
  let rng = Rng.create 3 in
  let p = Rng.permutation rng 20 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check "is permutation" true (sorted = Array.init 20 (fun i -> i))

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int a 1000) in
  let ys = List.init 10 (fun _ -> Rng.int b 1000) in
  check "split streams differ" true (xs <> ys)

let test_rng_gaussian_moments () =
  let rng = Rng.create 11 in
  let n = 20000 in
  let acc = ref 0.0 and acc2 = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.gaussian rng in
    acc := !acc +. x;
    acc2 := !acc2 +. (x *. x)
  done;
  let mean = !acc /. float_of_int n in
  let var = (!acc2 /. float_of_int n) -. (mean *. mean) in
  check "mean near 0" true (Float.abs mean < 0.05);
  check "variance near 1" true (Float.abs (var -. 1.0) < 0.05)

(* ---------- Mat ---------- *)

let rng0 () = Rng.create 12345

let test_mat_identity_mul () =
  let rng = rng0 () in
  let u = Randmat.unitary rng 4 in
  check "I*u = u" true (Mat.approx_equal (Mat.mul (Mat.identity 4) u) u);
  check "u*I = u" true (Mat.approx_equal (Mat.mul u (Mat.identity 4)) u)

let test_mat_unitary_random () =
  let rng = rng0 () in
  for n = 1 to 6 do
    let u = Randmat.unitary rng n in
    check (Printf.sprintf "unitary %dx%d" n n) true (Mat.is_unitary u)
  done

let test_mat_det_identity () =
  checkf "det I4" 1.0 (Cx.abs (Mat.det (Mat.identity 4)))

let test_mat_det_unitary_modulus () =
  let rng = rng0 () in
  for n = 2 to 5 do
    let u = Randmat.unitary rng n in
    checkf "det modulus 1" 1.0 (Cx.abs (Mat.det u))
  done

let test_mat_det_multiplicative () =
  let rng = rng0 () in
  let a = Randmat.ginibre rng 3 and b = Randmat.ginibre rng 3 in
  let d1 = Mat.det (Mat.mul a b) and d2 = Cx.(Mat.det a * Mat.det b) in
  check "det(ab) = det a det b" true (Cx.approx ~eps:1e-6 d1 d2)

let test_mat_kron_shape () =
  let a = Mat.identity 2 and b = Mat.identity 3 in
  let k = Mat.kron a b in
  checki "kron rows" 6 (Mat.rows k);
  check "kron of ids is id" true (Mat.approx_equal k (Mat.identity 6))

let test_mat_kron_mixed_product () =
  (* (A kron B)(C kron D) = AC kron BD *)
  let rng = rng0 () in
  let a = Randmat.ginibre rng 2
  and b = Randmat.ginibre rng 2
  and c = Randmat.ginibre rng 2
  and d = Randmat.ginibre rng 2 in
  let lhs = Mat.mul (Mat.kron a b) (Mat.kron c d) in
  let rhs = Mat.kron (Mat.mul a c) (Mat.mul b d) in
  check "mixed product" true (Mat.frobenius_distance lhs rhs < 1e-9)

let test_mat_adjoint_involution () =
  let rng = rng0 () in
  let a = Randmat.ginibre rng 4 in
  check "adj adj = id" true (Mat.approx_equal (Mat.adjoint (Mat.adjoint a)) a)

let test_mat_trace_cyclic () =
  let rng = rng0 () in
  let a = Randmat.ginibre rng 3 and b = Randmat.ginibre rng 3 in
  let t1 = Mat.trace (Mat.mul a b) and t2 = Mat.trace (Mat.mul b a) in
  check "tr(ab)=tr(ba)" true (Cx.approx ~eps:1e-8 t1 t2)

let test_mat_phase_to () =
  let rng = rng0 () in
  let u = Randmat.unitary rng 4 in
  let z = Cx.exp_i 0.7 in
  (match Mat.phase_to (Mat.scale z u) u with
  | Some w -> check "phase recovered" true (Cx.approx ~eps:1e-8 w z)
  | None -> Alcotest.fail "phase_to found nothing");
  check "equal_up_to_phase" true (Mat.equal_up_to_phase (Mat.scale z u) u);
  let v = Randmat.unitary rng 4 in
  check "different unitaries" false (Mat.equal_up_to_phase u v)

(* ---------- Eig ---------- *)

let random_symmetric rng n =
  let a = Array.init n (fun _ -> Array.init n (fun _ -> Rng.gaussian rng)) in
  Array.init n (fun i -> Array.init n (fun j -> (a.(i).(j) +. a.(j).(i)) /. 2.0))

let test_jacobi_diagonalizes () =
  let rng = rng0 () in
  for n = 2 to 6 do
    let a = random_symmetric rng n in
    let vals, v = Eig.jacobi a in
    (* check A v_k = lambda_k v_k *)
    for k = 0 to n - 1 do
      for i = 0 to n - 1 do
        let av = ref 0.0 in
        for j = 0 to n - 1 do
          av := !av +. (a.(i).(j) *. v.(j).(k))
        done;
        check "eigenpair" true (Float.abs (!av -. (vals.(k) *. v.(i).(k))) < 1e-8)
      done
    done
  done

let test_jacobi_orthogonal () =
  let rng = rng0 () in
  let a = random_symmetric rng 5 in
  let _, v = Eig.jacobi a in
  for i = 0 to 4 do
    for j = 0 to 4 do
      let dot = ref 0.0 in
      for k = 0 to 4 do
        dot := !dot +. (v.(k).(i) *. v.(k).(j))
      done;
      let expect = if i = j then 1.0 else 0.0 in
      check "orthonormal columns" true (Float.abs (!dot -. expect) < 1e-9)
    done
  done

let test_simultaneous_diag () =
  let rng = rng0 () in
  (* Build two commuting symmetric matrices: same eigenbasis, different
     (degenerate) spectra. *)
  for _ = 1 to 10 do
    let n = 4 in
    let s = random_symmetric rng n in
    let _, p = Eig.jacobi s in
    let diag vals =
      Array.init n (fun i ->
          Array.init n (fun j ->
              let acc = ref 0.0 in
              for k = 0 to n - 1 do
                acc := !acc +. (p.(i).(k) *. vals.(k) *. p.(j).(k))
              done;
              !acc))
    in
    (* a has a degenerate pair so b is needed to split it *)
    let a = diag [| 1.0; 1.0; 2.0; 3.0 |] in
    let b = diag [| 5.0; -1.0; 0.5; 0.5 |] in
    let q = Eig.simultaneous_diagonalize a b in
    let conj m =
      Array.init n (fun i ->
          Array.init n (fun j ->
              let acc = ref 0.0 in
              for k = 0 to n - 1 do
                for l = 0 to n - 1 do
                  acc := !acc +. (q.(k).(i) *. m.(k).(l) *. q.(l).(j))
                done
              done;
              !acc))
    in
    check "a diagonalized" true (Eig.off_diagonal_norm (conj a) < 1e-7);
    check "b diagonalized" true (Eig.off_diagonal_norm (conj b) < 1e-7)
  done

(* ---------- Euler ---------- *)

let test_euler_roundtrip () =
  let rng = rng0 () in
  for _ = 1 to 50 do
    let u = Randmat.unitary rng 2 in
    let z = Euler.zyz_of_unitary u in
    let r = Euler.zyz_to_mat z in
    check "zyz roundtrip" true (Mat.frobenius_distance u r < 1e-8)
  done

let test_euler_special_cases () =
  let cases =
    [
      Mat.identity 2;
      Euler.rz_mat 1.3;
      Euler.ry_mat 0.4;
      Euler.rx_mat (-2.0);
      Mat.of_real_rows [ [ 0.0; 1.0 ]; [ 1.0; 0.0 ] ];
    ]
  in
  List.iter
    (fun u ->
      let z = Euler.zyz_of_unitary u in
      check "special case roundtrip" true (Mat.frobenius_distance u (Euler.zyz_to_mat z) < 1e-8))
    cases

let test_u_params () =
  let rng = rng0 () in
  for _ = 1 to 30 do
    let u = Randmat.unitary rng 2 in
    let theta, phi, lam, phase = Euler.u_params_of_unitary u in
    let r = Mat.scale (Cx.exp_i phase) (Euler.u_mat theta phi lam) in
    check "u params roundtrip" true (Mat.frobenius_distance u r < 1e-8)
  done

(* ---------- Kronfactor ---------- *)

let test_kron_factor_roundtrip () =
  let rng = rng0 () in
  for _ = 1 to 50 do
    let a = Randmat.su2 rng and b = Randmat.su2 rng in
    let m = Mat.scale (Cx.exp_i (Rng.float rng 6.28)) (Mat.kron a b) in
    match Kronfactor.kron_factor m with
    | None -> Alcotest.fail "kron_factor failed on a kron product"
    | Some (g, a', b') ->
        let r = Mat.scale g (Mat.kron a' b') in
        check "kron roundtrip" true (Mat.frobenius_distance m r < 1e-7)
  done

let test_kron_factor_rejects () =
  let rng = rng0 () in
  (* CNOT is maximally non-local among permutations: not a kron product *)
  let cnot =
    Mat.of_real_rows
      [
        [ 1.0; 0.0; 0.0; 0.0 ];
        [ 0.0; 1.0; 0.0; 0.0 ];
        [ 0.0; 0.0; 0.0; 1.0 ];
        [ 0.0; 0.0; 1.0; 0.0 ];
      ]
  in
  check "cnot is not a kron product" true (Kronfactor.kron_factor cnot = None);
  let u = Randmat.su4 rng in
  (* generic su4 should essentially never factor *)
  check "random su4 does not factor" true (Kronfactor.kron_factor u = None)

(* ---------- QCheck properties ---------- *)

let qcheck_props =
  let gen_seed = QCheck.Gen.int_range 0 1_000_000 in
  let prop_unitary =
    QCheck.Test.make ~name:"random unitary is unitary" ~count:50
      (QCheck.make gen_seed) (fun seed ->
        let u = Randmat.unitary (Rng.create seed) 4 in
        Mat.is_unitary ~eps:1e-7 u)
  in
  let prop_det_su4 =
    QCheck.Test.make ~name:"su4 has det one" ~count:50 (QCheck.make gen_seed)
      (fun seed ->
        let u = Randmat.su4 (Rng.create seed) in
        Cx.approx ~eps:1e-6 (Mat.det u) Cx.one)
  in
  let prop_euler =
    QCheck.Test.make ~name:"zyz reconstructs" ~count:100 (QCheck.make gen_seed)
      (fun seed ->
        let u = Randmat.unitary (Rng.create seed) 2 in
        Mat.frobenius_distance u (Euler.zyz_to_mat (Euler.zyz_of_unitary u)) < 1e-7)
  in
  let prop_kron =
    QCheck.Test.make ~name:"kron_factor reconstructs" ~count:100
      (QCheck.make gen_seed) (fun seed ->
        let rng = Rng.create seed in
        let m = Mat.kron (Randmat.su2 rng) (Randmat.su2 rng) in
        match Kronfactor.kron_factor m with
        | Some (g, a, b) -> Mat.frobenius_distance m (Mat.scale g (Mat.kron a b)) < 1e-6
        | None -> false)
  in
  List.map QCheck_alcotest.to_alcotest [ prop_unitary; prop_det_su4; prop_euler; prop_kron ]

let () =
  Alcotest.run "mathkit"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "permutation" `Quick test_rng_permutation;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        ] );
      ( "mat",
        [
          Alcotest.test_case "identity mul" `Quick test_mat_identity_mul;
          Alcotest.test_case "random unitary" `Quick test_mat_unitary_random;
          Alcotest.test_case "det identity" `Quick test_mat_det_identity;
          Alcotest.test_case "det unitary modulus" `Quick test_mat_det_unitary_modulus;
          Alcotest.test_case "det multiplicative" `Quick test_mat_det_multiplicative;
          Alcotest.test_case "kron shape" `Quick test_mat_kron_shape;
          Alcotest.test_case "kron mixed product" `Quick test_mat_kron_mixed_product;
          Alcotest.test_case "adjoint involution" `Quick test_mat_adjoint_involution;
          Alcotest.test_case "trace cyclic" `Quick test_mat_trace_cyclic;
          Alcotest.test_case "phase_to" `Quick test_mat_phase_to;
        ] );
      ( "eig",
        [
          Alcotest.test_case "jacobi eigenpairs" `Quick test_jacobi_diagonalizes;
          Alcotest.test_case "jacobi orthogonal" `Quick test_jacobi_orthogonal;
          Alcotest.test_case "simultaneous diag" `Quick test_simultaneous_diag;
        ] );
      ( "euler",
        [
          Alcotest.test_case "roundtrip" `Quick test_euler_roundtrip;
          Alcotest.test_case "special cases" `Quick test_euler_special_cases;
          Alcotest.test_case "u params" `Quick test_u_params;
        ] );
      ( "kronfactor",
        [
          Alcotest.test_case "roundtrip" `Quick test_kron_factor_roundtrip;
          Alcotest.test_case "rejects entangling" `Quick test_kron_factor_rejects;
        ] );
      ("properties", qcheck_props);
    ]
