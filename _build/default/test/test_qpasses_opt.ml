open Mathkit
open Qcircuit
open Qgate
open Qpasses

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let preserves_unitary pass c =
  let u = Circuit.unitary c and u' = Circuit.unitary (pass c) in
  Mat.equal_up_to_phase u u'

(* random circuit generator over a small gate set *)
let random_circuit rng n len =
  let b = Circuit.Builder.create n in
  for _ = 1 to len do
    match Rng.int rng 8 with
    | 0 -> Circuit.Builder.add b Gate.H [ Rng.int rng n ]
    | 1 -> Circuit.Builder.add b (Gate.RZ (Rng.float rng 6.28)) [ Rng.int rng n ]
    | 2 -> Circuit.Builder.add b Gate.T [ Rng.int rng n ]
    | 3 -> Circuit.Builder.add b Gate.X [ Rng.int rng n ]
    | 4 -> Circuit.Builder.add b Gate.SX [ Rng.int rng n ]
    | 5 | 6 ->
        let a = Rng.int rng n in
        let c = (a + 1 + Rng.int rng (n - 1)) mod n in
        Circuit.Builder.add b Gate.CX [ a; c ]
    | _ ->
        let a = Rng.int rng n in
        let c = (a + 1 + Rng.int rng (n - 1)) mod n in
        Circuit.Builder.add b (Gate.CP (Rng.float rng 3.0)) [ a; c ]
  done;
  Circuit.Builder.circuit b

(* ---------- Optimize_1q ---------- *)

let test_zsx_identity () =
  (* the zsx rewrite must reproduce the U gate exactly up to phase *)
  let rng = Rng.create 5 in
  for _ = 1 to 50 do
    let theta = Rng.float rng 6.28
    and phi = Rng.float rng 6.28 -. 3.14
    and lam = Rng.float rng 6.28 -. 3.14 in
    let u = Euler.u_mat theta phi lam in
    let ops = Optimize_1q.zsx_ops theta phi lam in
    let v =
      List.fold_left (fun acc g -> Mat.mul (Unitary.of_gate g) acc) (Mat.identity 2) ops
    in
    check "zsx reproduces u" true (Mat.equal_up_to_phase u v)
  done

let test_zsx_special_cases () =
  (* theta = 0 costs no sx; theta = pi/2 costs one *)
  let count_sx ops = List.length (List.filter (( = ) Gate.SX) ops) in
  checki "theta=0 no sx" 0 (count_sx (Optimize_1q.zsx_ops 0.0 0.4 0.3));
  checki "theta=pi/2 one sx" 1 (count_sx (Optimize_1q.zsx_ops (Float.pi /. 2.0) 0.4 0.3));
  checki "generic two sx" 2 (count_sx (Optimize_1q.zsx_ops 1.0 0.4 0.3))

let test_optimize_1q_merges () =
  let c =
    Circuit.create 1
      [
        { gate = Gate.H; qubits = [ 0 ] };
        { gate = Gate.T; qubits = [ 0 ] };
        { gate = Gate.H; qubits = [ 0 ] };
        { gate = Gate.S; qubits = [ 0 ] };
      ]
  in
  let c' = Optimize_1q.run Optimize_1q.U_gate c in
  checki "merged into one u" 1 (Circuit.size c');
  check "unitary preserved" true (preserves_unitary (Optimize_1q.run Optimize_1q.U_gate) c)

let test_optimize_1q_cancels_inverse () =
  let c =
    Circuit.create 1
      [ { gate = Gate.H; qubits = [ 0 ] }; { gate = Gate.H; qubits = [ 0 ] } ]
  in
  checki "hh vanishes" 0 (Circuit.size (Optimize_1q.run Optimize_1q.U_gate c))

let test_optimize_1q_stops_at_2q () =
  let c =
    Circuit.create 2
      [
        { gate = Gate.H; qubits = [ 0 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.H; qubits = [ 0 ] };
      ]
  in
  let c' = Optimize_1q.run Optimize_1q.U_gate c in
  checki "h cx h stays 3 ops" 3 (Circuit.size c')

let test_optimize_1q_random () =
  let rng = Rng.create 77 in
  for _ = 1 to 15 do
    let c = random_circuit rng 3 25 in
    check "1q merge preserves unitary (U)" true
      (preserves_unitary (Optimize_1q.run Optimize_1q.U_gate) c);
    check "1q merge preserves unitary (zsx)" true
      (preserves_unitary (Optimize_1q.run Optimize_1q.Zsx) c)
  done

(* ---------- Commutation ---------- *)

let test_commute_pairs () =
  check "cx shares control" true (Commutation.commute (Gate.CX, [ 0; 1 ]) (Gate.CX, [ 0; 2 ]));
  check "cx shares target" true (Commutation.commute (Gate.CX, [ 0; 2 ]) (Gate.CX, [ 1; 2 ]));
  check "cx chained do not commute" false
    (Commutation.commute (Gate.CX, [ 0; 1 ]) (Gate.CX, [ 1; 2 ]));
  check "rz on control commutes" true (Commutation.commute (Gate.RZ 0.3, [ 0 ]) (Gate.CX, [ 0; 1 ]));
  check "rz on target does not" false
    (Commutation.commute (Gate.RZ 0.3, [ 1 ]) (Gate.CX, [ 0; 1 ]));
  check "x on target commutes" true (Commutation.commute (Gate.X, [ 1 ]) (Gate.CX, [ 0; 1 ]));
  check "x on control does not" false (Commutation.commute (Gate.X, [ 0 ]) (Gate.CX, [ 0; 1 ]));
  check "disjoint always" true (Commutation.commute (Gate.H, [ 0 ]) (Gate.CX, [ 1; 2 ]));
  check "cz diagonal chain commutes" true (Commutation.commute (Gate.CZ, [ 0; 1 ]) (Gate.CZ, [ 1; 2 ]));
  check "cz same pair" true (Commutation.commute (Gate.CZ, [ 0; 1 ]) (Gate.CZ, [ 1; 0 ]))

let test_commutation_sets () =
  (* cx(0,1); cx(0,2); cx(0,1): all share control 0 -> one set on wire 0 *)
  let c =
    Circuit.create 3
      [
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.CX; qubits = [ 0; 2 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
      ]
  in
  let an = Commutation.analyze c in
  checki "one set on control wire" 1 (List.length (Commutation.sets_on_wire an 0));
  (* wire 1 sees ops 0 and 2, which commute (same gate) -> one set *)
  checki "one set on wire 1" 1 (List.length (Commutation.sets_on_wire an 1));
  (* h breaks the set *)
  let c2 =
    Circuit.create 2
      [
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.H; qubits = [ 0 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
      ]
  in
  let an2 = Commutation.analyze c2 in
  checki "h splits sets" 3 (List.length (Commutation.sets_on_wire an2 0))

(* ---------- Cancellation ---------- *)

let test_cancel_adjacent_cx () =
  let c =
    Circuit.create 2
      [ { gate = Gate.CX; qubits = [ 0; 1 ] }; { gate = Gate.CX; qubits = [ 0; 1 ] } ]
  in
  checki "cx cx cancels" 0 (Circuit.size (Cancellation.run c))

let test_cancel_through_commuting_cx () =
  (* the motivating example: cx(0,1) and cx(0,1) separated by cx(0,2)
     (shared control) still cancel *)
  let c =
    Circuit.create 3
      [
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.CX; qubits = [ 0; 2 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
      ]
  in
  let c' = Cancellation.run c in
  checki "one cx survives" 1 (Circuit.cx_count c');
  check "unitary preserved" true (preserves_unitary Cancellation.run c)

let test_cancel_through_shared_target () =
  (* paper Figure 4: cx(1,2); cx(0,2) commute (same target) *)
  let c =
    Circuit.create 3
      [
        { gate = Gate.CX; qubits = [ 1; 2 ] };
        { gate = Gate.CX; qubits = [ 0; 2 ] };
        { gate = Gate.CX; qubits = [ 1; 2 ] };
      ]
  in
  checki "shared target cancel" 1 (Circuit.cx_count (Cancellation.run c))

let test_cancel_blocked () =
  (* cx(0,1); h 0; cx(0,1) must NOT cancel *)
  let c =
    Circuit.create 2
      [
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.H; qubits = [ 0 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
      ]
  in
  checki "blocked by h" 2 (Circuit.cx_count (Cancellation.run c))

let test_cancel_rz_merge () =
  let c =
    Circuit.create 2
      [
        { gate = Gate.RZ 0.3; qubits = [ 0 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.RZ 0.4; qubits = [ 0 ] };
      ]
  in
  (* rz commutes with cx control: both rz merge into one *)
  let c' = Cancellation.run c in
  checki "rz merged" 1 (Circuit.gate_count c' "rz");
  check "unitary preserved" true (preserves_unitary Cancellation.run c)

let test_cancel_t_gates_merge () =
  let c =
    Circuit.create 1
      [
        { gate = Gate.T; qubits = [ 0 ] };
        { gate = Gate.T; qubits = [ 0 ] };
        { gate = Gate.T; qubits = [ 0 ] };
        { gate = Gate.T; qubits = [ 0 ] };
      ]
  in
  let c' = Cancellation.run c in
  (* four T = S^2 = Z: merged into a single rz *)
  checki "t gates merged" 1 (Circuit.size c');
  check "unitary preserved" true (preserves_unitary Cancellation.run c)

let test_cancel_random_preserves () =
  let rng = Rng.create 123 in
  for _ = 1 to 15 do
    let c = random_circuit rng 4 30 in
    check "cancellation preserves unitary" true
      (preserves_unitary (Cancellation.run_fixpoint ~max_rounds:4) c)
  done

(* ---------- Blocks ---------- *)

let test_collect_single_block () =
  let c =
    Circuit.create 3
      [
        { gate = Gate.H; qubits = [ 0 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.RZ 0.3; qubits = [ 1 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.CX; qubits = [ 1; 2 ] };
      ]
  in
  let segs = Blocks.collect c in
  let blocks = List.filter_map (function Blocks.Block b -> Some b | _ -> None) segs in
  checki "two blocks" 2 (List.length blocks);
  (match blocks with
  | [ b1; b2 ] ->
      check "first pair" true (b1.pair = (0, 1));
      checki "first block ops (h cx rz cx)" 4 (List.length b1.ops);
      check "second pair" true (b2.pair = (1, 2))
  | _ -> Alcotest.fail "expected two blocks");
  check "roundtrip" true
    (Mat.equal_up_to_phase
       (Circuit.unitary (Blocks.to_circuit 3 segs))
       (Circuit.unitary c))

let test_collect_roundtrip_random () =
  let rng = Rng.create 321 in
  for _ = 1 to 15 do
    let c = random_circuit rng 4 25 in
    let segs = Blocks.collect c in
    check "collect preserves unitary" true
      (Mat.equal_up_to_phase
         (Circuit.unitary (Blocks.to_circuit 4 segs))
         (Circuit.unitary c))
  done

let test_block_unitary () =
  let c =
    Circuit.create 2
      [ { gate = Gate.H; qubits = [ 0 ] }; { gate = Gate.CX; qubits = [ 0; 1 ] } ]
  in
  match Blocks.collect c with
  | [ Blocks.Block b ] ->
      check "block unitary equals circuit" true
        (Mat.equal_up_to_phase (Blocks.block_unitary b) (Circuit.unitary c))
  | _ -> Alcotest.fail "expected a single block"

(* ---------- Unitary synthesis ---------- *)

let test_resynth_swap_absorption () =
  (* cx cx cx (= swap) followed by cx: block is cx-equivalent: resynthesize
     to <= 2 cx.  swap . cx = 2-cx class *)
  let c =
    Circuit.create 2
      [
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.CX; qubits = [ 1; 0 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
      ]
  in
  let c' = Unitary_synthesis.run c in
  check "unitary preserved" true (preserves_unitary Unitary_synthesis.run c);
  check "cx reduced" true (Circuit.cx_count c' <= 2)

let test_resynth_free_swap () =
  (* paper: "some SWAP gates can be inserted for free" - a generic 3-cx
     block followed by a swap still needs only 3 cx *)
  let rng = Rng.create 55 in
  let u = Randmat.su4 rng in
  let c =
    Circuit.create 2
      [
        { gate = Gate.Unitary2 u; qubits = [ 0; 1 ] };
        { gate = Gate.SWAP; qubits = [ 0; 1 ] };
      ]
  in
  let c' = Unitary_synthesis.run c in
  let final = Basis.run c' in
  check "unitary preserved" true
    (Mat.equal_up_to_phase (Circuit.unitary final) (Circuit.unitary c));
  check "swap absorbed for free" true (Circuit.cx_count final <= 3)

let test_resynth_gain () =
  (* swap . cx block: 4 cx spent, 2 needed -> gain 2 *)
  let b =
    {
      Blocks.pair = (0, 1);
      ops =
        [
          { Circuit.gate = Gate.SWAP; qubits = [ 0; 1 ] };
          { Circuit.gate = Gate.CX; qubits = [ 0; 1 ] };
        ];
    }
  in
  checki "gain swap+cx" 2 (Unitary_synthesis.resynth_gain b)

let test_resynth_random_preserves () =
  let rng = Rng.create 99 in
  for _ = 1 to 10 do
    let c = random_circuit rng 4 30 in
    check "resynthesis preserves unitary" true (preserves_unitary Unitary_synthesis.run c)
  done

(* ---------- Basis ---------- *)

let test_basis_output_is_basis () =
  let rng = Rng.create 1010 in
  for _ = 1 to 10 do
    let c = random_circuit rng 3 20 in
    let c' = Basis.run c in
    check "all ops in basis" true (Basis.check c');
    check "unitary preserved" true
      (Mat.equal_up_to_phase (Circuit.unitary c') (Circuit.unitary c))
  done

let test_basis_handles_high_level () =
  let c =
    Circuit.create 4
      [
        { gate = Gate.CCX; qubits = [ 0; 1; 2 ] };
        { gate = Gate.MCZ 3; qubits = [ 0; 1; 2; 3 ] };
        { gate = Gate.CP 0.7; qubits = [ 2; 3 ] };
      ]
  in
  let c' = Basis.run c in
  check "basis" true (Basis.check c');
  check "unitary preserved" true
    (Mat.equal_up_to_phase (Circuit.unitary c') (Circuit.unitary c))

let () =
  Alcotest.run "qpasses_opt"
    [
      ( "optimize_1q",
        [
          Alcotest.test_case "zsx identity" `Quick test_zsx_identity;
          Alcotest.test_case "zsx special cases" `Quick test_zsx_special_cases;
          Alcotest.test_case "merges runs" `Quick test_optimize_1q_merges;
          Alcotest.test_case "cancels inverses" `Quick test_optimize_1q_cancels_inverse;
          Alcotest.test_case "stops at 2q" `Quick test_optimize_1q_stops_at_2q;
          Alcotest.test_case "random preserves" `Quick test_optimize_1q_random;
        ] );
      ( "commutation",
        [
          Alcotest.test_case "pairs" `Quick test_commute_pairs;
          Alcotest.test_case "sets" `Quick test_commutation_sets;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "adjacent cx" `Quick test_cancel_adjacent_cx;
          Alcotest.test_case "through commuting cx" `Quick test_cancel_through_commuting_cx;
          Alcotest.test_case "shared target" `Quick test_cancel_through_shared_target;
          Alcotest.test_case "blocked" `Quick test_cancel_blocked;
          Alcotest.test_case "rz merge" `Quick test_cancel_rz_merge;
          Alcotest.test_case "t merge" `Quick test_cancel_t_gates_merge;
          Alcotest.test_case "random preserves" `Quick test_cancel_random_preserves;
        ] );
      ( "blocks",
        [
          Alcotest.test_case "single block" `Quick test_collect_single_block;
          Alcotest.test_case "random roundtrip" `Quick test_collect_roundtrip_random;
          Alcotest.test_case "block unitary" `Quick test_block_unitary;
        ] );
      ( "unitary_synthesis",
        [
          Alcotest.test_case "swap absorption" `Quick test_resynth_swap_absorption;
          Alcotest.test_case "free swap" `Quick test_resynth_free_swap;
          Alcotest.test_case "gain" `Quick test_resynth_gain;
          Alcotest.test_case "random preserves" `Quick test_resynth_random_preserves;
        ] );
      ( "basis",
        [
          Alcotest.test_case "random output basis" `Quick test_basis_output_is_basis;
          Alcotest.test_case "high level gates" `Quick test_basis_handles_high_level;
        ] );
    ]
