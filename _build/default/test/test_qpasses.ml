open Mathkit
open Qgate
open Qpasses

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let rng0 () = Rng.create 20220704

(* ---------- Weyl / KAK ---------- *)

let test_magic_signatures () =
  (* the hardcoded diagonal signatures must match a direct computation *)
  let e = Weyl.magic_basis in
  let ed = Mat.adjoint e in
  let pauli = function
    | `X -> Unitary.of_gate Gate.X
    | `Y -> Unitary.of_gate Gate.Y
    | `Z -> Unitary.of_gate Gate.Z
  in
  let diag_of p expected =
    let pp = Mat.kron (pauli p) (pauli p) in
    let d = Mat.mul ed (Mat.mul pp e) in
    for i = 0 to 3 do
      for j = 0 to 3 do
        if i <> j then check "off-diagonal zero" true (Cx.abs (Mat.get d i j) < 1e-12)
      done;
      check "signature" true (Cx.approx (Mat.get d i i) (Cx.re expected.(i)))
    done
  in
  diag_of `X [| 1.0; 1.0; -1.0; -1.0 |];
  diag_of `Y [| -1.0; 1.0; -1.0; 1.0 |];
  diag_of `Z [| 1.0; -1.0; -1.0; 1.0 |]

let test_canonical_gate_unitary () =
  let n = Weyl.canonical_gate 0.3 0.2 0.1 in
  check "canonical gate unitary" true (Mat.is_unitary n);
  check "canonical gate at origin" true
    (Mat.equal_up_to_phase (Weyl.canonical_gate 0.0 0.0 0.0) (Mat.identity 4))

let test_decompose_reconstruct_random () =
  let rng = rng0 () in
  for _ = 1 to 40 do
    let u = Randmat.unitary rng 4 in
    let r = Weyl.decompose u in
    check "reconstruct" true (Mat.equal_up_to_phase (Weyl.reconstruct r) u);
    (* exact phase too *)
    check "reconstruct exact" true (Mat.frobenius_distance (Weyl.reconstruct r) u < 1e-6)
  done

let test_decompose_standard_gates () =
  let cases =
    [ Gate.CX; Gate.CZ; Gate.SWAP; Gate.CY; Gate.CH; Gate.CP 0.7; Gate.CRX 1.1;
      Gate.RZZ 0.4 ]
  in
  List.iter
    (fun g ->
      let u = Unitary.of_gate g in
      let r = Weyl.decompose u in
      check
        (Format.asprintf "%a reconstruct" Gate.pp g)
        true
        (Mat.frobenius_distance (Weyl.reconstruct r) u < 1e-6))
    cases

let test_chamber_membership () =
  let rng = rng0 () in
  let q = Float.pi /. 4.0 in
  for _ = 1 to 40 do
    let u = Randmat.unitary rng 4 in
    let x, y, z = Weyl.coords u in
    check "x <= pi/4" true (x <= q +. 1e-9);
    check "x >= y" true (x >= y -. 1e-9);
    check "y >= |z|" true (y >= Float.abs z -. 1e-9);
    check "y >= 0" true (y >= -1e-9)
  done

let test_known_coords () =
  let q = Float.pi /. 4.0 in
  let close3 (a, b, c) (a', b', c') =
    Float.abs (a -. a') < 1e-7 && Float.abs (b -. b') < 1e-7 && Float.abs (c -. c') < 1e-7
  in
  check "cx coords" true (close3 (Weyl.coords (Unitary.of_gate Gate.CX)) (q, 0.0, 0.0));
  check "cz coords" true (close3 (Weyl.coords (Unitary.of_gate Gate.CZ)) (q, 0.0, 0.0));
  check "swap coords" true (close3 (Weyl.coords (Unitary.of_gate Gate.SWAP)) (q, q, q));
  check "iswap-like dcx?" true
    (close3 (Weyl.coords (Mat.identity 4)) (0.0, 0.0, 0.0));
  (* local products have zero coords *)
  let rng = rng0 () in
  let local = Mat.kron (Randmat.su2 rng) (Randmat.su2 rng) in
  check "local coords" true (close3 (Weyl.coords local) (0.0, 0.0, 0.0))

let test_coords_local_invariance () =
  let rng = rng0 () in
  for _ = 1 to 20 do
    let u = Randmat.unitary rng 4 in
    let l = Mat.kron (Randmat.su2 rng) (Randmat.su2 rng) in
    let r = Mat.kron (Randmat.su2 rng) (Randmat.su2 rng) in
    let u' = Mat.mul l (Mat.mul u r) in
    let x, y, z = Weyl.coords u and x', y', z' = Weyl.coords u' in
    check "coords invariant under locals" true
      (Float.abs (x -. x') < 1e-6 && Float.abs (y -. y') < 1e-6 && Float.abs (z -. z') < 1e-6)
  done

let test_cnot_cost_known () =
  checki "identity" 0 (Weyl.cnot_cost (Mat.identity 4));
  checki "cx" 1 (Weyl.cnot_cost (Unitary.of_gate Gate.CX));
  checki "cz" 1 (Weyl.cnot_cost (Unitary.of_gate Gate.CZ));
  checki "swap" 3 (Weyl.cnot_cost (Unitary.of_gate Gate.SWAP));
  checki "cp partial rotation" 2 (Weyl.cnot_cost (Unitary.of_gate (Gate.CP 0.9)));
  checki "cp pi is cz" 1 (Weyl.cnot_cost (Unitary.of_gate (Gate.CP Float.pi)));
  (* two cx on the same pair, differing orientation: entangling power of 2 *)
  let cx01 = Unitary.of_gate Gate.CX in
  let cx10 = Unitary.cnot_rev in
  checki "cx.cx same" 0 (Weyl.cnot_cost (Mat.mul cx01 cx01));
  checki "cx.cx rev" 2 (Weyl.cnot_cost (Mat.mul cx01 cx10));
  let rng = rng0 () in
  let generic = Randmat.su4 rng in
  checki "generic su4" 3 (Weyl.cnot_cost generic)

let test_cnot_cost_vs_gamma () =
  (* cross-validate the chamber classification against the
     Shende-Bullock-Markov gamma invariants *)
  let rng = rng0 () in
  let classify_gamma u =
    let g1, g2 = Weyl.gamma_invariants u in
    ignore g2;
    (* 0 CNOT: g1 = 1; 1 CNOT: g1 = 0 and g2 real... use simple known points *)
    g1
  in
  ignore classify_gamma;
  (* For unitaries built with k cnots and random locals, cost must be <= k *)
  for _ = 1 to 15 do
    let local () = Mat.kron (Randmat.su2 rng) (Randmat.su2 rng) in
    let cx = Unitary.of_gate Gate.CX in
    let u1 = Mat.mul (local ()) (Mat.mul cx (local ())) in
    check "1cx build cost" true (Weyl.cnot_cost u1 <= 1);
    let u2 = Mat.mul u1 (Mat.mul cx (local ())) in
    check "2cx build cost" true (Weyl.cnot_cost u2 <= 2);
    let u3 = Mat.mul u2 (Mat.mul cx (local ())) in
    check "3cx build cost" true (Weyl.cnot_cost u3 <= 3)
  done

let test_cnot_cost_fast_agrees () =
  (* the gamma-trace classifier must agree with the chamber classifier *)
  let rng = rng0 () in
  let check_agree u label =
    checki label (Weyl.cnot_cost u) (Weyl.cnot_cost_fast u)
  in
  check_agree (Mat.identity 4) "identity";
  check_agree (Unitary.of_gate Gate.CX) "cx";
  check_agree (Unitary.of_gate Gate.SWAP) "swap";
  check_agree (Unitary.of_gate (Gate.CP 0.8)) "cp";
  check_agree (Unitary.of_gate (Gate.RZZ 1.1)) "rzz";
  for _ = 1 to 30 do
    check_agree (Randmat.unitary rng 4) "random"
  done;
  (* structured cases: canonical gates across classes *)
  for _ = 1 to 20 do
    let x = Rng.float rng (Float.pi /. 4.0) in
    let y = Rng.float rng x in
    check_agree (Weyl.canonical_gate x y 0.0) "canonical z=0"
  done

(* ---------- Synth2q ---------- *)

let count_cx ops = List.length (List.filter (fun (g, _) -> g = Gate.CX) ops)

let roundtrip u =
  let ops = Synth2q.synthesize u in
  let v = Synth2q.ops_unitary 2 ops in
  (Mat.equal_up_to_phase u v, count_cx ops)

let test_synth_random () =
  let rng = rng0 () in
  for _ = 1 to 40 do
    let u = Randmat.unitary rng 4 in
    let ok, k = roundtrip u in
    check "synth roundtrip" true ok;
    checki "generic uses 3 cx" 3 k
  done

let test_synth_standard () =
  List.iter
    (fun (g, expect) ->
      let u = Unitary.of_gate g in
      let ok, k = roundtrip u in
      check (Format.asprintf "%a synth" Gate.pp g) true ok;
      checki (Format.asprintf "%a cx count" Gate.pp g) expect k)
    [
      (Gate.CX, 1); (Gate.CZ, 1); (Gate.CY, 1); (Gate.CH, 1); (Gate.SWAP, 3);
      (Gate.CP 1.3, 2); (Gate.CRZ 0.8, 2); (Gate.RZZ 0.6, 2); (Gate.CP Float.pi, 1);
    ]

let test_synth_local () =
  let rng = rng0 () in
  let u = Mat.kron (Randmat.su2 rng) (Randmat.su2 rng) in
  let ok, k = roundtrip u in
  check "local synth" true ok;
  checki "local needs no cx" 0 k

let test_synth_two_cx_class () =
  let rng = rng0 () in
  (* canonical gates with z = 0 need exactly 2 cx *)
  for _ = 1 to 10 do
    let x = Rng.float rng 0.7 and y = Rng.float rng 0.7 in
    let x, y = (Float.max x y /. 1.0, Float.min x y) in
    let u = Weyl.canonical_gate (x /. 4.0) (y /. 4.0) 0.0 in
    let ok, k = roundtrip u in
    check "2cx roundtrip" true ok;
    check "2cx count" true (k <= 2)
  done

let test_synth_canonical_gates () =
  let rng = rng0 () in
  for _ = 1 to 25 do
    let x = Rng.float rng (Float.pi /. 4.0) in
    let y = Rng.float rng x in
    let z = Rng.float rng (2.0 *. y) -. y in
    let u = Weyl.canonical_gate x y z in
    let ok, k = roundtrip u in
    check "canonical synth roundtrip" true ok;
    check "canonical cx count" true (k <= 3)
  done

let test_synth_swap_like () =
  (* swap composed with locals is still 3 *)
  let rng = rng0 () in
  let local () = Mat.kron (Randmat.su2 rng) (Randmat.su2 rng) in
  let u = Mat.mul (local ()) (Mat.mul (Unitary.of_gate Gate.SWAP) (local ())) in
  let ok, k = roundtrip u in
  check "swap-like roundtrip" true ok;
  checki "swap-like count" 3 k

let test_synth_parameter_sweeps () =
  (* controlled-phase-like families across the angle range.  Classes follow
     the canonical x-coordinate: controlled rotations reach the 1-cx class
     only at angle pi; rzz(theta) = exp(-i theta/2 ZZ) hits 1-cx at pi/2
     and becomes LOCAL at pi (rzz(pi) ~ Z(x)Z up to phase). *)
  let sweep build expected_by_frac =
    List.iter2
      (fun frac expected ->
        let angle = frac *. Float.pi in
        let u = Unitary.of_gate (build angle) in
        let ok, k = roundtrip u in
        check "sweep roundtrip" true ok;
        checki (Format.asprintf "%a cx count" Gate.pp (build angle)) expected k)
      [ 0.0; 0.25; 0.5; 0.75; 1.0 ]
      expected_by_frac
  in
  sweep (fun a -> Gate.CP a) [ 0; 2; 2; 2; 1 ];
  sweep (fun a -> Gate.CRX a) [ 0; 2; 2; 2; 1 ];
  sweep (fun a -> Gate.CRY a) [ 0; 2; 2; 2; 1 ];
  sweep (fun a -> Gate.RZZ a) [ 0; 2; 1; 2; 0 ]

let test_synth_compositions () =
  (* products of standard gates land in the right class and resynthesize:
     cx.cz is still a controlled pi-rotation (1 cx); swap composed with one
     cx or cz drops to the 2-cx class ("free" cnot absorption). *)
  let u g = Unitary.of_gate g in
  let cases =
    [
      (Mat.mul (u Gate.CX) (u Gate.CZ), 1);
      (Mat.mul (u Gate.SWAP) (u Gate.CX), 2);
      (Mat.mul (u Gate.SWAP) (u Gate.CZ), 2);
      (Mat.mul (u Gate.CX) (Mat.mul (u Gate.CZ) (u Gate.CX)), 1);
    ]
  in
  List.iter
    (fun (m, expected) ->
      let ok, k = roundtrip m in
      check "composition roundtrip" true ok;
      checki "composition class" expected k)
    cases

let qcheck_props =
  let gen_seed = QCheck.Gen.int_range 0 1_000_000 in
  let prop_synth =
    QCheck.Test.make ~name:"synthesize reconstructs random su4" ~count:60
      (QCheck.make gen_seed) (fun seed ->
        let u = Randmat.su4 (Rng.create seed) in
        let ops = Synth2q.synthesize u in
        Mat.equal_up_to_phase (Synth2q.ops_unitary 2 ops) u)
  in
  let prop_coords_chamber =
    QCheck.Test.make ~name:"coords always in chamber" ~count:80
      (QCheck.make gen_seed) (fun seed ->
        let u = Randmat.unitary (Rng.create seed) 4 in
        let x, y, z = Weyl.coords u in
        x <= (Float.pi /. 4.0) +. 1e-9 && x >= y -. 1e-9 && y >= Float.abs z -. 1e-9)
  in
  List.map QCheck_alcotest.to_alcotest [ prop_synth; prop_coords_chamber ]

let () =
  Alcotest.run "qpasses"
    [
      ( "weyl",
        [
          Alcotest.test_case "magic signatures" `Quick test_magic_signatures;
          Alcotest.test_case "canonical gate" `Quick test_canonical_gate_unitary;
          Alcotest.test_case "decompose random" `Quick test_decompose_reconstruct_random;
          Alcotest.test_case "decompose standard" `Quick test_decompose_standard_gates;
          Alcotest.test_case "chamber membership" `Quick test_chamber_membership;
          Alcotest.test_case "known coords" `Quick test_known_coords;
          Alcotest.test_case "local invariance" `Quick test_coords_local_invariance;
          Alcotest.test_case "cnot cost known" `Quick test_cnot_cost_known;
          Alcotest.test_case "cnot cost vs construction" `Quick test_cnot_cost_vs_gamma;
          Alcotest.test_case "fast classifier agrees" `Quick test_cnot_cost_fast_agrees;
        ] );
      ( "synth2q",
        [
          Alcotest.test_case "random su4" `Quick test_synth_random;
          Alcotest.test_case "standard gates" `Quick test_synth_standard;
          Alcotest.test_case "local" `Quick test_synth_local;
          Alcotest.test_case "two-cx class" `Quick test_synth_two_cx_class;
          Alcotest.test_case "canonical gates" `Quick test_synth_canonical_gates;
          Alcotest.test_case "swap-like" `Quick test_synth_swap_like;
          Alcotest.test_case "parameter sweeps" `Quick test_synth_parameter_sweeps;
          Alcotest.test_case "compositions" `Quick test_synth_compositions;
        ] );
      ("properties", qcheck_props);
    ]
