(* Numerical stress tests for the KAK decomposition at Weyl-chamber
   boundaries and degenerate spectra - the places eigensolvers break. *)

open Mathkit
open Qgate
open Qpasses

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let q = Float.pi /. 4.0

let roundtrip_ok u =
  let r = Weyl.decompose u in
  Mat.frobenius_distance (Weyl.reconstruct r) u < 1e-6

let coords_close u (x, y, z) =
  let x', y', z' = Weyl.coords u in
  Float.abs (x -. x') < 1e-6 && Float.abs (y -. y') < 1e-6 && Float.abs (z -. z') < 1e-6

(* chamber faces and edges *)
let boundary_points =
  [
    ("origin", (0.0, 0.0, 0.0));
    ("cx vertex", (q, 0.0, 0.0));
    ("swap vertex", (q, q, q));
    ("iswap edge", (q, q, 0.0));
    ("x=y face", (0.3, 0.3, 0.1));
    ("y=|z| face", (0.5, 0.2, 0.2));
    ("y=-z mirror", (q, 0.2, -0.2));
    ("x=pi/4 face", (q, 0.3, 0.1));
    ("tiny coords", (1e-4, 5e-5, 1e-5));
    ("near swap", (q -. 1e-5, q -. 1e-5, q -. 2e-5));
  ]

let test_boundary_roundtrips () =
  List.iter
    (fun (name, (x, y, z)) ->
      let u = Weyl.canonical_gate x y z in
      check (name ^ " roundtrip") true (roundtrip_ok u))
    boundary_points

let test_boundary_coords_recovered () =
  (* canonical gates built from chamber points must report those points
     back (the canonicalizer must not move interior/face representatives,
     except the mirror identification at x = pi/4 where z >= 0 is chosen) *)
  List.iter
    (fun (name, (x, y, z)) ->
      let u = Weyl.canonical_gate x y z in
      let expected = if Float.abs (x -. q) < 1e-9 && z < 0.0 then (x, y, -.z) else (x, y, z) in
      check (name ^ " coords") true (coords_close u expected))
    boundary_points

let test_boundary_dressed_with_locals () =
  (* the same points survive random local dressing *)
  let rng = Rng.create 777 in
  List.iter
    (fun (name, (x, y, z)) ->
      let u = Weyl.canonical_gate x y z in
      let l = Mat.kron (Randmat.su2 rng) (Randmat.su2 rng) in
      let r = Mat.kron (Randmat.su2 rng) (Randmat.su2 rng) in
      let dressed = Mat.mul l (Mat.mul u r) in
      check (name ^ " dressed roundtrip") true (roundtrip_ok dressed);
      let expected = if Float.abs (x -. q) < 1e-9 && z < 0.0 then (x, y, -.z) else (x, y, z) in
      check (name ^ " dressed coords") true (coords_close dressed expected))
    boundary_points

let test_boundary_synthesis () =
  List.iter
    (fun (name, (x, y, z)) ->
      let u = Weyl.canonical_gate x y z in
      let ops = Synth2q.synthesize u in
      check (name ^ " synthesis") true
        (Mat.equal_up_to_phase (Synth2q.ops_unitary 2 ops) u))
    boundary_points

let test_degenerate_spectra () =
  (* unitaries whose m^T m has degenerate eigenvalues exercise the
     simultaneous-diagonalization path *)
  let cases =
    [
      ("identity", Mat.identity 4);
      ("cx", Unitary.of_gate Gate.CX);
      ("cz", Unitary.of_gate Gate.CZ);
      ("swap", Unitary.of_gate Gate.SWAP);
      ("cx.swap", Mat.mul (Unitary.of_gate Gate.CX) (Unitary.of_gate Gate.SWAP));
      ("x(x)x", Mat.kron (Unitary.of_gate Gate.X) (Unitary.of_gate Gate.X));
      ("h(x)h", Mat.kron (Unitary.of_gate Gate.H) (Unitary.of_gate Gate.H));
      ("z(x)i", Mat.kron (Unitary.of_gate Gate.Z) (Mat.identity 2));
    ]
  in
  List.iter (fun (name, u) -> check (name ^ " roundtrip") true (roundtrip_ok u)) cases

let test_phase_insensitivity () =
  (* global phases must not move the coordinates *)
  let rng = Rng.create 31337 in
  for _ = 1 to 15 do
    let u = Randmat.unitary rng 4 in
    let x, y, z = Weyl.coords u in
    let phi = Rng.float rng 6.28 in
    check "phase invariant" true (coords_close (Mat.scale (Cx.exp_i phi) u) (x, y, z))
  done

let test_transpose_and_adjoint_classes () =
  (* U and U^dagger need the same CNOT count (inverse circuits) *)
  let rng = Rng.create 4242 in
  for _ = 1 to 15 do
    let u = Randmat.unitary rng 4 in
    checki "adjoint same class" (Weyl.cnot_cost u) (Weyl.cnot_cost (Mat.adjoint u))
  done

let test_fast_classifier_on_boundaries () =
  (* the two classifiers use different numeric scales (angles vs traces);
     within ~1e-5 of a class boundary they may legitimately disagree, so
     exact agreement is only required at points clear of boundaries *)
  let clear_of_boundary (x, _y, z) =
    let margin v = Float.abs v > 1e-3 || Float.abs v < 1e-9 in
    margin z && (Float.abs (x -. q) > 1e-3 || Float.abs (x -. q) < 1e-9)
  in
  List.iter
    (fun (name, (x, y, z)) ->
      if clear_of_boundary (x, y, z) then
        let u = Weyl.canonical_gate x y z in
        checki (name ^ " fast=chamber") (Weyl.cnot_cost u) (Weyl.cnot_cost_fast u))
    boundary_points

let test_synthesis_count_optimality_spotchecks () =
  (* the emitted count equals the class, never more *)
  let count u =
    List.length (List.filter (fun (g, _) -> g = Gate.CX) (Synth2q.synthesize u))
  in
  List.iter
    (fun (_, (x, y, z)) ->
      let u = Weyl.canonical_gate x y z in
      checki "count = class" (Weyl.cnot_cost u) (count u))
    boundary_points

let () =
  Alcotest.run "weyl_boundary"
    [
      ( "chamber boundaries",
        [
          Alcotest.test_case "roundtrips" `Quick test_boundary_roundtrips;
          Alcotest.test_case "coords recovered" `Quick test_boundary_coords_recovered;
          Alcotest.test_case "with locals" `Quick test_boundary_dressed_with_locals;
          Alcotest.test_case "synthesis" `Quick test_boundary_synthesis;
        ] );
      ( "degenerate",
        [
          Alcotest.test_case "spectra" `Quick test_degenerate_spectra;
          Alcotest.test_case "phase invariance" `Quick test_phase_insensitivity;
          Alcotest.test_case "adjoint class" `Quick test_transpose_and_adjoint_classes;
          Alcotest.test_case "fast classifier" `Quick test_fast_classifier_on_boundaries;
          Alcotest.test_case "count optimality" `Quick test_synthesis_count_optimality_spotchecks;
        ] );
    ]
