open Mathkit
open Qcircuit
open Qgate
open Qsim

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* ---------- statevector ---------- *)

let test_initial_state () =
  let s = State.create 3 in
  checkf "all zeros prob" 1.0 (State.probability s 0);
  checkf "norm" 1.0 (State.norm s)

let test_bell () =
  let s = State.create 2 in
  State.apply_gate s Gate.H [ 0 ];
  State.apply_gate s Gate.CX [ 0; 1 ];
  checkf "p(00)" 0.5 (State.probability s 0b00);
  checkf "p(11)" 0.5 (State.probability s 0b11);
  checkf "p(01)" 0.0 (State.probability s 0b01)

let test_ghz () =
  let n = 6 in
  let s = State.create n in
  State.apply_gate s Gate.H [ 0 ];
  for i = 0 to n - 2 do
    State.apply_gate s Gate.CX [ i; i + 1 ]
  done;
  checkf "p(0...0)" 0.5 (State.probability s 0);
  checkf "p(1...1)" 0.5 (State.probability s ((1 lsl n) - 1));
  checkf "norm" 1.0 (State.norm s)

let test_x_flips () =
  let s = State.create 3 in
  State.apply_gate s Gate.X [ 1 ];
  (* qubit 1 is the middle bit (qubit 0 = msb) *)
  checkf "p(010)" 1.0 (State.probability s 0b010)

let test_against_dense_unitary () =
  (* the simulator must agree with the dense-matrix semantics *)
  let rng = Rng.create 2024 in
  for _ = 1 to 10 do
    let n = 4 in
    let b = Circuit.Builder.create n in
    for _ = 1 to 20 do
      match Rng.int rng 5 with
      | 0 -> Circuit.Builder.add b Gate.H [ Rng.int rng n ]
      | 1 -> Circuit.Builder.add b (Gate.RY (Rng.float rng 6.0)) [ Rng.int rng n ]
      | 2 -> Circuit.Builder.add b Gate.T [ Rng.int rng n ]
      | 3 ->
          let a = Rng.int rng n in
          let c = (a + 1 + Rng.int rng (n - 1)) mod n in
          Circuit.Builder.add b Gate.CX [ a; c ]
      | _ ->
          let a = Rng.int rng n in
          let c = (a + 1 + Rng.int rng (n - 1)) mod n in
          Circuit.Builder.add b (Gate.CP (Rng.float rng 3.0)) [ a; c ]
    done;
    let c = Circuit.Builder.circuit b in
    let s = State.create n in
    State.apply_circuit s c;
    let u = Circuit.unitary c in
    let v0 = Array.init (1 lsl n) (fun i -> if i = 0 then Cx.one else Cx.zero) in
    let expected = Mat.apply_vec u v0 in
    for i = 0 to (1 lsl n) - 1 do
      check "amplitude matches dense" true (Cx.approx ~eps:1e-8 (State.amplitude s i) expected.(i))
    done
  done

let test_generic_kernel_ccx () =
  let s = State.create 3 in
  State.apply_gate s Gate.X [ 0 ];
  State.apply_gate s Gate.X [ 1 ];
  State.apply_gate s Gate.CCX [ 0; 1; 2 ];
  checkf "toffoli fires" 1.0 (State.probability s 0b111);
  let s2 = State.create 3 in
  State.apply_gate s2 Gate.X [ 0 ];
  State.apply_gate s2 Gate.CCX [ 0; 1; 2 ];
  checkf "toffoli blocked" 1.0 (State.probability s2 0b100)

let test_adder_computes_sum () =
  (* drive the Cuccaro adder classically: check a + b appears on the b
     register.  Layout: [cin; a(4); b(4); cout], inputs prepared by the
     generator: a = 0b0101 (bits 0,2 set -> value 5), b = 0b1001-> bits 0,3
     (values in little-endian bit index) *)
  let c = Qbench.Generators.adder 10 in
  let s = State.create 10 in
  State.apply_circuit s c;
  let outcome = State.most_likely s in
  checkf "classical outcome deterministic" 1.0 (State.probability s outcome);
  (* decode: qubit q is bit (9 - q) of the index *)
  let bit q = (outcome lsr (9 - q)) land 1 in
  let a_val = ref 0 and b_val = ref 0 in
  for i = 0 to 3 do
    (* generator sets a_i for even i, b_i for i mod 3 = 0 *)
    if i mod 2 = 0 then a_val := !a_val lor (1 lsl i);
    if i mod 3 = 0 then b_val := !b_val lor (1 lsl i)
  done;
  let sum = !a_val + !b_val in
  let result = ref 0 in
  for i = 0 to 3 do
    result := !result lor (bit (1 + 4 + i) lsl i)
  done;
  result := !result lor (bit 9 lsl 4);
  checki "cuccaro adds" sum !result;
  (* the a register must be restored *)
  let a_after = ref 0 in
  for i = 0 to 3 do
    a_after := !a_after lor (bit (1 + i) lsl i)
  done;
  checki "a register restored" !a_val !a_after

let test_sampling_statistics () =
  let s = State.create 1 in
  State.apply_gate s Gate.H [ 0 ];
  let rng = Rng.create 5 in
  let ones = ref 0 in
  let n = 4000 in
  for _ = 1 to n do
    if State.sample s rng = 1 then incr ones
  done;
  let f = float_of_int !ones /. float_of_int n in
  check "roughly half ones" true (Float.abs (f -. 0.5) < 0.05)

(* ---------- noise ---------- *)

let coupling5 = Topology.Devices.linear 5
let cal5 = Topology.Calibration.generate coupling5

let test_esp_decreases_with_gates () =
  let model = Noise.of_calibration cal5 in
  let mk k =
    let b = Circuit.Builder.create 5 in
    for _ = 1 to k do
      Circuit.Builder.add b Gate.CX [ 0; 1 ]
    done;
    Circuit.Builder.circuit b
  in
  let e1 = Noise.esp model (mk 5) ~measured:[ 0; 1 ]
  and e2 = Noise.esp model (mk 50) ~measured:[ 0; 1 ] in
  check "more gates, lower esp" true (e2 < e1);
  check "esp in (0,1)" true (e1 > 0.0 && e1 < 1.0)

let test_trivial_noise_is_noiseless () =
  let model = Noise.trivial ~n:3 in
  let b = Circuit.Builder.create 3 in
  Circuit.Builder.add b Gate.X [ 0 ];
  Circuit.Builder.add b Gate.CX [ 0; 1 ];
  let c = Circuit.Builder.circuit b in
  checkf "esp is one" 1.0 (Noise.esp model c ~measured:[ 0; 1; 2 ]);
  let rng = Rng.create 3 in
  let outcomes = Noise.sample model c ~shots:200 rng in
  check "every outcome is 110" true (Array.for_all (( = ) 0b110) outcomes)

let test_noisy_sampling_degrades () =
  let model = Noise.of_calibration cal5 in
  let b = Circuit.Builder.create 5 in
  for _ = 1 to 10 do
    Circuit.Builder.add b Gate.X [ 0 ];
    Circuit.Builder.add b Gate.X [ 0 ]
  done;
  Circuit.Builder.add b Gate.X [ 0 ];
  let c = Circuit.Builder.circuit b in
  let rng = Rng.create 9 in
  let outcomes = Noise.sample model c ~shots:2000 rng in
  let hits = Array.fold_left (fun acc o -> if o = 0b10000 then acc + 1 else acc) 0 outcomes in
  let rate = float_of_int hits /. 2000.0 in
  check "mostly correct" true (rate > 0.5);
  check "noise visible" true (rate < 0.999)

(* ---------- success experiments ---------- *)

let test_compact () =
  let c =
    Circuit.create 10
      [ { gate = Gate.H; qubits = [ 3 ] }; { gate = Gate.CX; qubits = [ 3; 7 ] } ]
  in
  let small, where = Success.compact c in
  checki "two wires" 2 (Circuit.n_qubits small);
  checki "wire 3 -> 0" 0 where.(3);
  checki "wire 7 -> 1" 1 where.(7);
  checki "untouched" (-1) where.(0)

let test_ideal_outcome_bv () =
  (* BV with all-ones secret must output all-ones on the data qubits *)
  let c = Qbench.Generators.bernstein_vazirani 5 in
  let out = Success.ideal_outcome c in
  (* data qubits 0..3 all 1 *)
  for l = 0 to 3 do
    checki "bv data bit" 1 ((out lsr (4 - l)) land 1)
  done

let test_routed_success_end_to_end () =
  let coupling = Topology.Devices.montreal in
  let cal = Topology.Calibration.generate coupling in
  let logical = Qbench.Generators.bernstein_vazirani 5 in
  let r =
    Qroute.Pipeline.transpile ~router:Qroute.Pipeline.Sabre_router coupling logical
  in
  match r.final_layout with
  | None -> Alcotest.fail "expected layout"
  | Some fl ->
      let o =
        Success.routed_success ~shots:512 ~cal ~ideal:logical ~routed:r.circuit
          ~final_layout:fl ()
      in
      check "success rate sane" true (o.success_rate > 0.3 && o.success_rate <= 1.0);
      check "esp sane" true (o.esp > 0.0 && o.esp < 1.0)

let test_routed_success_noiseless_perfect () =
  (* with a noise-free calibration... closest: compare against trivial model
     via esp=1 path is not exposed; instead check BV on full connectivity
     where routing is the identity *)
  let coupling = Topology.Devices.fully_connected 5 in
  let cal = Topology.Calibration.generate coupling in
  ignore cal;
  let logical = Qbench.Generators.bernstein_vazirani 5 in
  let r =
    Qroute.Pipeline.transpile ~router:Qroute.Pipeline.Sabre_router coupling logical
  in
  check "no swaps" true (r.n_swaps = 0)

let () =
  Alcotest.run "qsim"
    [
      ( "state",
        [
          Alcotest.test_case "initial" `Quick test_initial_state;
          Alcotest.test_case "bell" `Quick test_bell;
          Alcotest.test_case "ghz" `Quick test_ghz;
          Alcotest.test_case "x flips" `Quick test_x_flips;
          Alcotest.test_case "matches dense" `Quick test_against_dense_unitary;
          Alcotest.test_case "generic kernel" `Quick test_generic_kernel_ccx;
          Alcotest.test_case "cuccaro adder" `Quick test_adder_computes_sum;
          Alcotest.test_case "sampling stats" `Quick test_sampling_statistics;
        ] );
      ( "noise",
        [
          Alcotest.test_case "esp monotone" `Quick test_esp_decreases_with_gates;
          Alcotest.test_case "trivial noiseless" `Quick test_trivial_noise_is_noiseless;
          Alcotest.test_case "noisy degrades" `Quick test_noisy_sampling_degrades;
        ] );
      ( "success",
        [
          Alcotest.test_case "compact" `Quick test_compact;
          Alcotest.test_case "bv ideal outcome" `Quick test_ideal_outcome_bv;
          Alcotest.test_case "routed success" `Quick test_routed_success_end_to_end;
          Alcotest.test_case "full connectivity" `Quick test_routed_success_noiseless_perfect;
        ] );
    ]
