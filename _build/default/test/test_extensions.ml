(* Tests for the extension modules: A* router, layout strategies, peephole
   optimization, circuit analysis, extra benchmarks, and their integration
   with the pipeline. *)

open Mathkit
open Qcircuit
open Qgate

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let random_2q_circuit rng n len =
  let b = Circuit.Builder.create n in
  for _ = 1 to len do
    match Rng.int rng 5 with
    | 0 -> Circuit.Builder.add b Gate.H [ Rng.int rng n ]
    | 1 -> Circuit.Builder.add b (Gate.RZ (Rng.float rng 6.28)) [ Rng.int rng n ]
    | 2 -> Circuit.Builder.add b Gate.T [ Rng.int rng n ]
    | _ ->
        let a = Rng.int rng n in
        let c = (a + 1 + Rng.int rng (n - 1)) mod n in
        Circuit.Builder.add b Gate.CX [ a; c ]
  done;
  Circuit.Builder.circuit b

(* ---------- A* router ---------- *)

let test_astar_layers () =
  let c =
    Circuit.create 4
      [
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.CX; qubits = [ 2; 3 ] };
        { gate = Gate.CX; qubits = [ 1; 2 ] };
        { gate = Gate.H; qubits = [ 0 ] };
      ]
  in
  match Qroute.Astar.layers c with
  | [ l1; l2 ] ->
      checki "first layer parallel" 2 (List.length l1);
      checki "second layer" 2 (List.length l2)
  | ls -> Alcotest.fail (Printf.sprintf "expected 2 layers, got %d" (List.length ls))

let test_astar_validity_and_semantics () =
  let rng = Rng.create 9 in
  for trial = 1 to 5 do
    let c = random_2q_circuit rng 4 20 in
    let coupling = Topology.Devices.linear 5 in
    let params = { Qroute.Astar.default_params with seed = trial } in
    let r = Qroute.Astar.route ~params coupling c in
    check "astar valid" true (Qroute.Sabre.check_routed coupling r.circuit);
    (* semantic check via statevector, as for the other routers *)
    let expanded = Qroute.Sabre.decompose_swaps r.circuit in
    let s_log = Qsim.State.create 4 in
    Qsim.State.apply_circuit s_log c;
    let s_phys = Qsim.State.create 5 in
    Qsim.State.apply_circuit s_phys expanded;
    let scatter x =
      let idx = ref 0 in
      for l = 0 to 3 do
        if (x lsr (3 - l)) land 1 = 1 then idx := !idx lor (1 lsl (4 - r.final_layout.(l)))
      done;
      !idx
    in
    let total = ref 0.0 in
    let ok = ref true in
    for x = 0 to 15 do
      let p_log = Qsim.State.probability s_log x in
      let p_phys = Qsim.State.probability s_phys (scatter x) in
      total := !total +. p_phys;
      if Float.abs (p_log -. p_phys) > 1e-6 then ok := false
    done;
    check "astar preserves distribution" true (!ok && Float.abs (!total -. 1.0) < 1e-6)
  done

let test_astar_no_swaps_when_trivially_routable () =
  (* a circuit already matching the line needs no swaps from the identity
     layout; with a random initial layout swaps may appear, so force via a
     fully-connected device instead *)
  let c = Qbench.Extras.ghz 5 in
  let r = Qroute.Astar.route (Topology.Devices.fully_connected 5) c in
  checki "no swaps" 0 r.n_swaps

let test_astar_in_pipeline () =
  let c = Qbench.Generators.vqe 8 in
  let coupling = Topology.Devices.montreal in
  let r = Qroute.Pipeline.transpile ~router:Qroute.Pipeline.Astar_router coupling c in
  check "pipeline astar basis" true (Qpasses.Basis.check r.circuit);
  check "pipeline astar valid" true (Qroute.Sabre.check_routed coupling r.circuit);
  (* literature shape: per-layer search without lookahead loses to SABRE *)
  let s = Qroute.Pipeline.transpile ~router:Qroute.Pipeline.Sabre_router coupling c in
  check "sabre beats astar on vqe8" true (s.cx_total <= r.cx_total)

(* ---------- layouts ---------- *)

let test_layout_trivial () =
  let l = Qroute.Layout.trivial ~n_log:5 Topology.Devices.montreal in
  check "identity" true (l = [| 0; 1; 2; 3; 4 |])

let test_layout_random_injective () =
  let l = Qroute.Layout.random ~seed:3 ~n_log:10 Topology.Devices.montreal in
  checki "distinct placements" 10 (List.length (List.sort_uniq compare (Array.to_list l)))

let test_layout_dense_beats_random () =
  let coupling = Topology.Devices.montreal in
  let dense = Qroute.Layout.dense ~n_log:8 coupling in
  checki "dense distinct" 8 (List.length (List.sort_uniq compare (Array.to_list dense)));
  let dense_score = Qroute.Layout.average_pairwise_distance coupling dense in
  (* dense placement must beat the average random placement *)
  let rand_score =
    let acc = ref 0.0 in
    for seed = 1 to 10 do
      acc :=
        !acc
        +. Qroute.Layout.average_pairwise_distance coupling
             (Qroute.Layout.random ~seed ~n_log:8 coupling)
    done;
    !acc /. 10.0
  in
  check "dense tighter than random" true (dense_score < rand_score)

let test_layout_too_big_rejected () =
  check "raises" true
    (try
       ignore (Qroute.Layout.trivial ~n_log:30 Topology.Devices.montreal);
       false
     with Invalid_argument _ -> true)

(* ---------- peephole ---------- *)

let test_peephole_cancels_inverse_pairs () =
  let c =
    Circuit.create 2
      [
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.T; qubits = [ 0 ] };
        { gate = Gate.Tdg; qubits = [ 0 ] };
        { gate = Gate.S; qubits = [ 1 ] };
      ]
  in
  let c' = Qpasses.Peephole.run c in
  checki "only s survives" 1 (Circuit.size c')

let test_peephole_merges_rotations () =
  let c =
    Circuit.create 2
      [
        { gate = Gate.RZ 0.3; qubits = [ 0 ] };
        { gate = Gate.RZ 0.4; qubits = [ 0 ] };
        { gate = Gate.CP 0.2; qubits = [ 0; 1 ] };
        { gate = Gate.CP (-0.2); qubits = [ 0; 1 ] };
      ]
  in
  let c' = Qpasses.Peephole.run c in
  checki "one rz survives" 1 (Circuit.size c');
  match Circuit.instrs c' with
  | [ { gate = Gate.RZ a; _ } ] -> Alcotest.(check (float 1e-9)) "merged angle" 0.7 a
  | _ -> Alcotest.fail "expected merged rz"

let test_peephole_respects_blocking () =
  (* h between the two cx prevents cancellation *)
  let c =
    Circuit.create 2
      [
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.H; qubits = [ 0 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
      ]
  in
  checki "nothing removed" 3 (Circuit.size (Qpasses.Peephole.run c))

let test_peephole_chain_collapse () =
  (* removal exposes a new pair: cx h h cx collapses entirely *)
  let c =
    Circuit.create 2
      [
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.H; qubits = [ 0 ] };
        { gate = Gate.H; qubits = [ 0 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
      ]
  in
  checki "all removed" 0 (Circuit.size (Qpasses.Peephole.run c))

let test_peephole_preserves_unitary () =
  let rng = Rng.create 33 in
  for _ = 1 to 15 do
    let c = random_2q_circuit rng 3 25 in
    let c' = Qpasses.Peephole.run c in
    check "unitary preserved" true
      (Mat.equal_up_to_phase (Circuit.unitary c') (Circuit.unitary c));
    check "never grows" true (Circuit.size c' <= Circuit.size c)
  done

(* ---------- heavy-hex devices ---------- *)

let test_heavy_hex_structure () =
  let h = Topology.Devices.heavy_hex 3 3 in
  check "connected" true (Topology.Coupling.is_connected_graph h);
  let max_deg =
    List.fold_left max 0
      (List.init (Topology.Coupling.n_qubits h) (Topology.Coupling.degree h))
  in
  checki "heavy-hex max degree 3" 3 max_deg;
  check "too small rejected" true
    (try
       ignore (Topology.Devices.heavy_hex 1 5);
       false
     with Invalid_argument _ -> true)

let test_heavy_hex_routable () =
  let h = Topology.Devices.heavy_hex 4 4 in
  let c = Qbench.Generators.qft 10 in
  let r =
    Qroute.Pipeline.transpile
      ~router:(Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config) h c
  in
  check "valid" true (Qroute.Sabre.check_routed h r.circuit)

(* ---------- equivalence checker ---------- *)

let test_equiv_unitary () =
  let bell =
    Circuit.create 2 [ { gate = Gate.H; qubits = [ 0 ] }; { gate = Gate.CX; qubits = [ 0; 1 ] } ]
  in
  check "self equal" true (Qsim.Equiv.unitary_equal bell bell);
  let other = Circuit.create 2 [ { gate = Gate.CX; qubits = [ 0; 1 ] } ] in
  check "different" false (Qsim.Equiv.unitary_equal bell other)

let test_equiv_routed_detects_errors () =
  let rng = Rng.create 91 in
  let c = random_2q_circuit rng 4 20 in
  let coupling = Topology.Devices.linear 5 in
  let r = Qroute.Sabre.route coupling c in
  let routed = Qroute.Sabre.decompose_swaps r.circuit in
  check "correct routing accepted" true
    (Qsim.Equiv.routed_equal ~logical:c ~routed ~final_layout:r.final_layout);
  (* corrupt the routed circuit: flip a data wire at the very end (always
     observable, unlike dropping a gate whose control happens to be |0>) *)
  let broken = Circuit.append routed Gate.X [ r.final_layout.(0) ] in
  check "corruption detected" false
    (Qsim.Equiv.routed_equal ~logical:c ~routed:broken ~final_layout:r.final_layout);
  (* wrong layout detected, on a state that is asymmetric in the swapped
     wires (|1100>) so the mix-up is observable *)
  let asym =
    Circuit.create 4
      [
        { gate = Gate.X; qubits = [ 0 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.CX; qubits = [ 2; 3 ] };
      ]
  in
  let ra = Qroute.Sabre.route coupling asym in
  let routed_a = Qroute.Sabre.decompose_swaps ra.circuit in
  check "asym routing correct" true
    (Qsim.Equiv.routed_equal ~logical:asym ~routed:routed_a ~final_layout:ra.final_layout);
  let wrong = Array.copy ra.final_layout in
  let tmp = wrong.(0) in
  wrong.(0) <- wrong.(3);
  wrong.(3) <- tmp;
  check "wrong layout detected" false
    (Qsim.Equiv.routed_equal ~logical:asym ~routed:routed_a ~final_layout:wrong)

let test_equiv_distribution_distance () =
  let rng = Rng.create 92 in
  let c = random_2q_circuit rng 3 15 in
  let coupling = Topology.Devices.linear 4 in
  let r = Qroute.Nassc.route coupling c in
  let d =
    Qsim.Equiv.distribution_distance ~logical:c ~routed:r.circuit
      ~final_layout:r.final_layout
  in
  check "zero distance for correct routing" true (d < 1e-9)

(* ---------- analysis ---------- *)

let test_histogram () =
  let c = Qbench.Extras.ghz 5 in
  match Analysis.gate_histogram c with
  | (top, cnt) :: _ ->
      check "cx dominates" true (top = "cx");
      checki "cx count" 4 cnt
  | [] -> Alcotest.fail "empty histogram"

let test_interaction_graph () =
  let c = Qbench.Generators.vqe 8 in
  let g = Analysis.interaction_graph c in
  (* full entanglement, 3 reps: every pair appears 3 times *)
  checki "pairs" 28 (Hashtbl.length g);
  Hashtbl.iter (fun _ v -> checki "each pair thrice" 3 v) g;
  let deg = Analysis.interaction_degree c in
  Array.iter (fun d -> checki "per-qubit interactions" 21 d) deg

let test_parallelism_profile () =
  let c =
    Circuit.create 4
      [
        { gate = Gate.H; qubits = [ 0 ] };
        { gate = Gate.H; qubits = [ 1 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
      ]
  in
  let p = Analysis.parallelism_profile c in
  check "profile" true (p = [| 2; 1 |])

let test_critical_path () =
  let c = Qbench.Extras.ghz 6 in
  let path = Analysis.critical_path c in
  checki "path length = depth" (Circuit.depth c) (List.length path);
  check "monotone indices" true
    (List.sort compare path = path)

let test_two_qubit_layers () =
  let c =
    Circuit.create 4
      [
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.CX; qubits = [ 2; 3 ] };
        { gate = Gate.CX; qubits = [ 1; 2 ] };
      ]
  in
  checki "2q depth" 2 (Analysis.two_qubit_layers c)

(* ---------- extra benchmarks ---------- *)

let test_ghz_state () =
  let s = Qsim.State.create 5 in
  Qsim.State.apply_circuit s (Qbench.Extras.ghz 5);
  Alcotest.(check (float 1e-9)) "p(00000)" 0.5 (Qsim.State.probability s 0);
  Alcotest.(check (float 1e-9)) "p(11111)" 0.5 (Qsim.State.probability s 31)

let test_w_state () =
  let n = 5 in
  let s = Qsim.State.create n in
  Qsim.State.apply_circuit s (Qbench.Extras.w_state n);
  (* exactly the n single-excitation states, each with probability 1/n *)
  let total_single = ref 0.0 in
  for q = 0 to n - 1 do
    let idx = 1 lsl (n - 1 - q) in
    let p = Qsim.State.probability s idx in
    check "uniform single excitation" true (Float.abs (p -. (1.0 /. float_of_int n)) < 1e-9);
    total_single := !total_single +. p
  done;
  Alcotest.(check (float 1e-9)) "all weight on singles" 1.0 !total_single

let test_qaoa_structure () =
  let c = Qbench.Extras.qaoa_maxcut ~p:2 10 in
  checki "qubits" 10 (Circuit.n_qubits c);
  checki "rzz count" 30 (Circuit.gate_count c "rzz");
  check "deterministic" true (Circuit.equal c (Qbench.Extras.qaoa_maxcut ~p:2 10))

let test_extended_suite_routable () =
  List.iter
    (fun (e : Qbench.Suite.entry) ->
      if not e.heavy then begin
        let c = e.build () in
        let r =
          Qroute.Pipeline.transpile
            ~router:(Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config)
            Topology.Devices.montreal c
        in
        check (e.name ^ " routable") true
          (Qroute.Sabre.check_routed Topology.Devices.montreal r.circuit)
      end)
    (List.filteri (fun i _ -> i >= List.length Qbench.Suite.paper_suite)
       Qbench.Extras.extended_suite)

let () =
  Alcotest.run "extensions"
    [
      ( "astar",
        [
          Alcotest.test_case "layers" `Quick test_astar_layers;
          Alcotest.test_case "validity + semantics" `Quick test_astar_validity_and_semantics;
          Alcotest.test_case "trivially routable" `Quick test_astar_no_swaps_when_trivially_routable;
          Alcotest.test_case "pipeline integration" `Quick test_astar_in_pipeline;
        ] );
      ( "layout",
        [
          Alcotest.test_case "trivial" `Quick test_layout_trivial;
          Alcotest.test_case "random injective" `Quick test_layout_random_injective;
          Alcotest.test_case "dense beats random" `Quick test_layout_dense_beats_random;
          Alcotest.test_case "too big rejected" `Quick test_layout_too_big_rejected;
        ] );
      ( "peephole",
        [
          Alcotest.test_case "inverse pairs" `Quick test_peephole_cancels_inverse_pairs;
          Alcotest.test_case "rotation merge" `Quick test_peephole_merges_rotations;
          Alcotest.test_case "blocking" `Quick test_peephole_respects_blocking;
          Alcotest.test_case "chain collapse" `Quick test_peephole_chain_collapse;
          Alcotest.test_case "preserves unitary" `Quick test_peephole_preserves_unitary;
        ] );
      ( "heavy_hex",
        [
          Alcotest.test_case "structure" `Quick test_heavy_hex_structure;
          Alcotest.test_case "routable" `Quick test_heavy_hex_routable;
        ] );
      ( "equiv",
        [
          Alcotest.test_case "unitary" `Quick test_equiv_unitary;
          Alcotest.test_case "detects errors" `Quick test_equiv_routed_detects_errors;
          Alcotest.test_case "distribution distance" `Quick test_equiv_distribution_distance;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "interaction graph" `Quick test_interaction_graph;
          Alcotest.test_case "parallelism" `Quick test_parallelism_profile;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "2q layers" `Quick test_two_qubit_layers;
        ] );
      ( "extras",
        [
          Alcotest.test_case "ghz" `Quick test_ghz_state;
          Alcotest.test_case "w state" `Quick test_w_state;
          Alcotest.test_case "qaoa" `Quick test_qaoa_structure;
          Alcotest.test_case "extended suite" `Quick test_extended_suite_routable;
        ] );
    ]
