(* Full benchmark x router x topology integration matrix: every non-heavy
   paper benchmark through every router on every evaluated topology, with
   validity and metric-sanity oracles.  This is the "does the whole stack
   hold together" net under the experiment harness. *)

open Qcircuit

let check = Alcotest.(check bool)

let topologies =
  [
    ("montreal", Topology.Devices.montreal);
    ("linear25", Topology.Devices.linear 25);
    ("grid5x5", Topology.Devices.grid 5 5);
  ]

let routers =
  [
    ("sabre", Qroute.Pipeline.Sabre_router);
    ("nassc", Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config);
    ("astar", Qroute.Pipeline.Astar_router);
  ]

let entries = Qbench.Suite.small_suite

let test_matrix () =
  List.iter
    (fun (topo_name, coupling) ->
      List.iter
        (fun (e : Qbench.Suite.entry) ->
          let circuit = e.build () in
          let base =
            Qroute.Pipeline.transpile ~router:Qroute.Pipeline.Full_connectivity coupling
              circuit
          in
          check
            (Printf.sprintf "%s baseline positive depth" e.name)
            true (base.depth > 0 || Circuit.size circuit = 0);
          List.iter
            (fun (router_name, router) ->
              let label = Printf.sprintf "%s/%s/%s" topo_name router_name e.name in
              let r = Qroute.Pipeline.transpile ~router coupling circuit in
              check (label ^ " valid") true (Qroute.Sabre.check_routed coupling r.circuit);
              check (label ^ " basis") true (Qpasses.Basis.check r.circuit);
              check (label ^ " no fewer cx than baseline") true
                (r.cx_total >= base.cx_total - 2);
              check (label ^ " layouts present") true
                (r.initial_layout <> None && r.final_layout <> None);
              (* final layout must be an injection into the device *)
              match r.final_layout with
              | Some fl ->
                  let distinct = List.sort_uniq compare (Array.to_list fl) in
                  check (label ^ " layout injective") true
                    (List.length distinct = Array.length fl
                    && List.for_all
                         (fun p -> p >= 0 && p < Topology.Coupling.n_qubits coupling)
                         distinct)
              | None -> Alcotest.fail (label ^ " missing layout"))
            routers)
        entries)
    topologies

(* seed stability: same seed, same result; different seed, usually different *)
let test_determinism () =
  let coupling = Topology.Devices.montreal in
  let c = Qbench.Generators.vqe 8 in
  let run seed =
    let params = { Qroute.Engine.default_params with seed } in
    (Qroute.Pipeline.transpile ~params
       ~router:(Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config)
       coupling c)
      .cx_total
  in
  Alcotest.(check int) "seed 5 deterministic" (run 5) (run 5);
  Alcotest.(check int) "seed 9 deterministic" (run 9) (run 9)

(* the calibration exactness claims of Generators must survive the whole
   optimizing pipeline on full connectivity (the table's CNOT_total column) *)
let test_baseline_counts_stable () =
  let expect =
    [ ("VQE 8-qubits", 84); ("VQE 12-qubits", 198); ("BV 19-qubits", 18);
      ("QFT 15-qubits", 210); ("Grover 4-qubits", 84); ("Adder 10-qubits", 65) ]
  in
  List.iter
    (fun (name, cx) ->
      let e = Qbench.Suite.find name in
      let r =
        Qroute.Pipeline.transpile ~router:Qroute.Pipeline.Full_connectivity
          Topology.Devices.montreal (e.build ())
      in
      check
        (Printf.sprintf "%s baseline %d ~ paper %d" name r.cx_total cx)
        true
        (abs (r.cx_total - cx) <= max 3 (cx / 10)))
    expect

let () =
  Alcotest.run "integration_matrix"
    [
      ( "matrix",
        [
          Alcotest.test_case "benchmark x router x topology" `Slow test_matrix;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "baseline counts" `Quick test_baseline_counts_stable;
        ] );
    ]
