open Qcircuit
open Qbench

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let lowered_cx c =
  Circuit.cx_count (Qroute.Pipeline.lower_to_2q c)

(* paper Table I CNOT_total calibration points that our generators match
   exactly (see Generators doc) *)
let test_vqe_cx_counts () =
  checki "vqe8 = 84" 84 (lowered_cx (Generators.vqe 8));
  checki "vqe12 = 198" 198 (lowered_cx (Generators.vqe 12))

let test_bv_cx_count () = checki "bv19 = 18" 18 (lowered_cx (Generators.bernstein_vazirani 19))

let test_qft_cx_counts () =
  checki "qft15 = 210" 210 (lowered_cx (Generators.qft 15));
  checki "qft20 = 380 (paper 374 post-opt)" 380 (lowered_cx (Generators.qft 20))

let test_grover4_cx_count () = checki "grover4 = 84" 84 (lowered_cx (Generators.grover 4))

let test_adder_cx_count () = checki "adder10 = 65" 65 (lowered_cx (Generators.adder 10))

let test_qubit_counts () =
  List.iter
    (fun (e : Suite.entry) ->
      checki (e.name ^ " qubits") e.n_qubits (Circuit.n_qubits (e.build ())))
    Suite.paper_suite

let test_suite_complete () =
  checki "15 benchmarks" 15 (List.length Suite.paper_suite);
  check "has heavy entries" true (List.exists (fun e -> e.Suite.heavy) Suite.paper_suite);
  check "has noise subset" true
    (List.exists (fun e -> e.Suite.noise_subset) Suite.paper_suite)

let test_find () =
  let e = Suite.find "QFT 15-qubits" in
  checki "qft15 qubits" 15 e.n_qubits;
  check "unknown raises" true
    (try
       ignore (Suite.find "nope");
       false
     with Not_found -> true)

let test_revlib_targets () =
  (* lowered CNOT totals approximate the paper's originals (within 2%) *)
  let close name target c =
    let cx = lowered_cx c in
    let err = Float.abs (float_of_int (cx - target)) /. float_of_int target in
    check (Printf.sprintf "%s cx %d within 2%% of %d" name cx target) true (err < 0.02)
  in
  close "sqn_258" 4459 (Revlib_like.sqn_258 ());
  close "rd84_253" 5960 (Revlib_like.rd84_253 ());
  close "co14_215" 7840 (Revlib_like.co14_215 ());
  close "sym9_193" 15232 (Revlib_like.sym9_193 ())

let test_revlib_deterministic () =
  check "same seed, same netlist" true
    (Circuit.equal (Revlib_like.sqn_258 ()) (Revlib_like.sqn_258 ()));
  check "different seeds differ" false
    (Circuit.equal (Revlib_like.sqn_258 ()) (Revlib_like.mct_netlist ~seed:1 ~n:10 ~target_cx:4459))

let test_grover_finds_marked_state () =
  (* grover-4 must concentrate probability on |1111> *)
  let c = Generators.grover 4 in
  let s = Qsim.State.create 4 in
  Qsim.State.apply_circuit s c;
  let p_marked = Qsim.State.probability s 0b1111 in
  check "marked state amplified" true (p_marked > 0.5);
  checki "most likely is marked" 0b1111 (Qsim.State.most_likely s)

let test_qpe_estimates_phase () =
  (* phase 0.3203125 = 0.0101001b exactly representable on 8 counting bits *)
  let c = Generators.qpe 9 in
  let s = Qsim.State.create 9 in
  Qsim.State.apply_circuit s c;
  let out = Qsim.State.most_likely s in
  (* counting register = qubits 0..7, qubit 0 the most significant bit of
     the estimate; the eigen qubit is the least significant index bit *)
  let counting = out lsr 1 in
  let est = float_of_int counting /. 256.0 in
  let target = 0.3203125 in
  check "qpe phase recovered exactly" true (Float.abs (est -. target) < 1e-9);
  check "estimate deterministic" true (Qsim.State.probability s out > 0.99)

let test_multiplier_structure () =
  let c = Generators.multiplier 25 in
  checki "25 qubits" 25 (Circuit.n_qubits c);
  let cx = lowered_cx c in
  check "multiplier size plausible (paper 670)" true (cx > 300 && cx < 1400)

let () =
  Alcotest.run "qbench"
    [
      ( "calibration",
        [
          Alcotest.test_case "vqe counts" `Quick test_vqe_cx_counts;
          Alcotest.test_case "bv count" `Quick test_bv_cx_count;
          Alcotest.test_case "qft counts" `Quick test_qft_cx_counts;
          Alcotest.test_case "grover4 count" `Quick test_grover4_cx_count;
          Alcotest.test_case "adder count" `Quick test_adder_cx_count;
          Alcotest.test_case "revlib targets" `Quick test_revlib_targets;
        ] );
      ( "suite",
        [
          Alcotest.test_case "qubit counts" `Quick test_qubit_counts;
          Alcotest.test_case "complete" `Quick test_suite_complete;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "revlib deterministic" `Quick test_revlib_deterministic;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "grover amplifies" `Quick test_grover_finds_marked_state;
          Alcotest.test_case "qpe phase" `Quick test_qpe_estimates_phase;
          Alcotest.test_case "multiplier structure" `Quick test_multiplier_structure;
        ] );
    ]
