(* Tables I-IV: CNOT and depth comparisons on the three coupling maps. *)

let header_cx () =
  Printf.printf "%-22s %8s | %10s %9s %8s | %10s %9s %8s | %8s %8s %7s\n" "name" "CNOTtot"
    "SABREtot" "SABREadd" "time(s)" "NASSCtot" "NASSCadd" "time(s)" "dCNOTtot" "dCNOTadd"
    "t_ratio";
  Printf.printf "%s\n" (String.make 132 '-')

let row_cx (r : Runs.row) =
  let cx0 = r.original.cx in
  let add_s = r.sabre.cx -. cx0 and add_n = r.nassc.cx -. cx0 in
  let d_tot = Runs.delta r.nassc.cx r.sabre.cx in
  let d_add = Runs.delta add_n add_s in
  let t_ratio = if r.sabre.time = 0.0 then 1.0 else r.nassc.time /. r.sabre.time in
  Printf.printf "%-22s %8.0f | %10.1f %9.1f %8.2f | %10.1f %9.1f %8.2f | %7.2f%% %7.2f%% %7.2f\n%!"
    r.entry.name cx0 r.sabre.cx add_s r.sabre.time r.nassc.cx add_n r.nassc.time
    (Runs.pct d_tot) (Runs.pct d_add) t_ratio;
  (d_tot, d_add, t_ratio)

let footer_cx stats =
  let d_tots, d_adds, ratios =
    List.fold_left
      (fun (a, b, c) (x, y, z) -> (x :: a, y :: b, z :: c))
      ([], [], []) stats
  in
  let avg_ratio = List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios) in
  Printf.printf "%s\n" (String.make 132 '-');
  Printf.printf "%-22s geometric means: dCNOT_total = %.2f%%   dCNOT_add = %.2f%%   avg t_ratio = %.2f\n\n"
    "" (Runs.pct (Runs.geo d_tots)) (Runs.pct (Runs.geo d_adds)) avg_ratio

let cnot_table ~label ~coupling ~seeds entries =
  Printf.printf "=== %s ===\n" label;
  header_cx ();
  let stats =
    List.map (fun e -> row_cx (Runs.run_entry ~seeds ~coupling e)) entries
  in
  footer_cx stats

let depth_table ~label ~coupling ~seeds entries =
  Printf.printf "=== %s ===\n" label;
  Printf.printf "%-22s %9s | %9s %9s | %9s %9s | %9s %9s\n" "name" "depth_tot" "SABREtot"
    "SABREadd" "NASSCtot" "NASSCadd" "d_tot" "d_add";
  Printf.printf "%s\n" (String.make 104 '-');
  let stats =
    List.map
      (fun e ->
        let r = Runs.run_entry ~seeds ~coupling e in
        let d0 = r.original.depth in
        let add_s = r.sabre.depth -. d0 and add_n = r.nassc.depth -. d0 in
        let d_tot = Runs.delta r.nassc.depth r.sabre.depth in
        let d_add = Runs.delta add_n add_s in
        Printf.printf "%-22s %9.0f | %9.1f %9.1f | %9.1f %9.1f | %8.2f%% %8.2f%%\n%!"
          r.entry.name d0 r.sabre.depth add_s r.nassc.depth add_n (Runs.pct d_tot)
          (Runs.pct d_add);
        (d_tot, d_add))
      entries
  in
  let d_tots = List.map fst stats and d_adds = List.map snd stats in
  Printf.printf "%s\n" (String.make 104 '-');
  Printf.printf "%-22s geometric means: ddepth_total = %.2f%%   ddepth_add = %.2f%%\n\n" ""
    (Runs.pct (Runs.geo d_tots)) (Runs.pct (Runs.geo d_adds))

let entries ~quick = if quick then Qbench.Suite.small_suite else Qbench.Suite.paper_suite

let table1 ~seeds ~quick () =
  cnot_table ~label:"Table I: additional CNOT gates, ibmq_montreal"
    ~coupling:Topology.Devices.montreal ~seeds (entries ~quick)

let table2 ~seeds ~quick () =
  depth_table ~label:"Table II: circuit depth, ibmq_montreal"
    ~coupling:Topology.Devices.montreal ~seeds (entries ~quick)

let table3 ~seeds ~quick () =
  cnot_table ~label:"Table III: additional CNOT gates, 25-qubit linear topology"
    ~coupling:(Topology.Devices.linear 25) ~seeds (entries ~quick)

let table4 ~seeds ~quick () =
  cnot_table ~label:"Table IV: additional CNOT gates, 5x5 grid topology"
    ~coupling:(Topology.Devices.grid 5 5) ~seeds (entries ~quick)
