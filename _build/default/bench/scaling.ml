(* Scaling experiment: NASSC's advantage on growing heavy-hex lattices (the
   paper motivates heavy-hex as IBM's scaling architecture; this checks the
   optimization-aware advantage persists as the device grows). *)

let run ~seeds () =
  Printf.printf "=== Scaling: heavy-hex lattice sizes (VQE-12 and QFT-15 added CNOTs) ===\n";
  Printf.printf "%-14s %7s | %10s %10s %8s | %10s %10s %8s\n" "device" "qubits" "SABRE"
    "NASSC" "saving" "SABRE" "NASSC" "saving";
  Printf.printf "%-14s %7s | %30s | %30s\n" "" "" "VQE 12-qubits" "QFT 15-qubits";
  Printf.printf "%s\n" (String.make 92 '-');
  let sizes = [ (3, 4); (4, 4); (4, 5); (5, 6) ] in
  let vqe = Qbench.Generators.vqe 12 and qft = Qbench.Generators.qft 15 in
  List.iter
    (fun (r, c) ->
      let coupling = Topology.Devices.heavy_hex r c in
      let n = Topology.Coupling.n_qubits coupling in
      if n >= 15 then begin
        let seed_list = List.init seeds (fun i -> i + 1) in
        let measure circuit =
          let base =
            Runs.run_router ~seeds:[ 1 ] ~coupling
              ~router:Qroute.Pipeline.Full_connectivity circuit
          in
          let s =
            (Runs.run_router ~seeds:seed_list ~coupling ~router:Qroute.Pipeline.Sabre_router
               circuit)
              .cx
            -. base.cx
          in
          let nas =
            (Runs.run_router ~seeds:seed_list ~coupling
               ~router:(Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config)
               circuit)
              .cx
            -. base.cx
          in
          (s, nas, 100.0 *. (1.0 -. (nas /. s)))
        in
        let s1, n1, d1 = measure vqe in
        let s2, n2, d2 = measure qft in
        Printf.printf "heavy_hex %dx%d %7d | %10.1f %10.1f %7.1f%% | %10.1f %10.1f %7.1f%%\n%!"
          r c n s1 n1 d1 s2 n2 d2
      end)
    sizes;
  print_newline ()
