(* Bechamel micro-benchmarks: transpilation latency per table workload.
   One Test.make per table; run with --timing. *)

open Bechamel
open Toolkit

let transpile router coupling circuit () =
  ignore (Qroute.Pipeline.transpile ~router coupling circuit)

let test_for_table ~name ~coupling =
  let circuit = Qbench.Generators.grover 6 in
  Test.make_grouped ~name
    [
      Test.make ~name:"sabre"
        (Staged.stage (transpile Qroute.Pipeline.Sabre_router coupling circuit));
      Test.make ~name:"nassc"
        (Staged.stage
           (transpile
              (Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config)
              coupling circuit));
    ]

let tests =
  Test.make_grouped ~name:"transpile"
    [
      test_for_table ~name:"table1-montreal" ~coupling:Topology.Devices.montreal;
      test_for_table ~name:"table3-linear" ~coupling:(Topology.Devices.linear 25);
      test_for_table ~name:"table4-grid" ~coupling:(Topology.Devices.grid 5 5);
    ]

let run () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 2.0) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instance raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instances results in
  Hashtbl.iter
    (fun name tbl ->
      Hashtbl.iter
        (fun test result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "%-40s %-16s %12.3f ms/run\n" test name (est /. 1e6)
          | _ -> ())
        tbl)
    results
