(* Shared experiment runner: seed-averaged pipeline results per benchmark,
   producing the paper's table rows. *)

type averaged = {
  cx : float;
  depth : float;
  time : float;
  swaps : float;
}

let average_results rs =
  let n = float_of_int (List.length rs) in
  let fold f = List.fold_left (fun acc r -> acc +. f r) 0.0 rs /. n in
  {
    cx = fold (fun (r : Qroute.Pipeline.result) -> float_of_int r.cx_total);
    depth = fold (fun r -> float_of_int r.depth);
    time = fold (fun r -> r.transpile_time);
    swaps = fold (fun r -> float_of_int r.n_swaps);
  }

let run_router ~seeds ~coupling ~router circuit =
  let results =
    List.map
      (fun seed ->
        let params = { Qroute.Engine.default_params with seed } in
        Qroute.Pipeline.transpile ~params ~router coupling circuit)
      seeds
  in
  average_results results

type row = {
  entry : Qbench.Suite.entry;
  original : averaged;
  sabre : averaged;
  nassc : averaged;
}

let seeds_for ~seeds (entry : Qbench.Suite.entry) =
  let n = if entry.heavy then min 3 seeds else seeds in
  List.init n (fun i -> i + 1)

let run_entry ~seeds ~coupling (entry : Qbench.Suite.entry) =
  let circuit = entry.build () in
  let seed_list = seeds_for ~seeds entry in
  let original =
    run_router ~seeds:[ 1 ] ~coupling ~router:Qroute.Pipeline.Full_connectivity circuit
  in
  let sabre = run_router ~seeds:seed_list ~coupling ~router:Qroute.Pipeline.Sabre_router circuit in
  let nassc =
    run_router ~seeds:seed_list ~coupling
      ~router:(Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config)
      circuit
  in
  { entry; original; sabre; nassc }

let pct x = 100.0 *. x
let delta nassc sabre = if sabre = 0.0 then 0.0 else 1.0 -. (nassc /. sabre)

let geo xs = Qroute.Metrics.geometric_mean xs
