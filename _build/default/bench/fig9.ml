(* Figure 9: CNOT reduction of the best of the 8 optimization combinations
   vs. enabling all three, on three coupling maps. *)

let combos =
  let b v = v in
  List.concat_map
    (fun e2q ->
      List.concat_map
        (fun c1 ->
          List.map
            (fun c2 ->
              {
                Qroute.Nassc.enable_2q = b e2q;
                enable_commute1 = b c1;
                enable_commute2 = b c2;
                orient_swaps = true;
                scan_limit = 20;
              })
            [ false; true ])
        [ false; true ])
    [ false; true ]

let combo_name (c : Qroute.Nassc.config) =
  Printf.sprintf "%c%c%c"
    (if c.enable_2q then '2' else '-')
    (if c.enable_commute1 then 'a' else '-')
    (if c.enable_commute2 then 'b' else '-')

let run ~seeds ~quick () =
  let maps =
    [
      ("ibmq_montreal", Topology.Devices.montreal);
      ("linear-25", Topology.Devices.linear 25);
      ("grid-5x5", Topology.Devices.grid 5 5);
    ]
  in
  let entries = if quick then Qbench.Suite.small_suite else Qbench.Suite.paper_suite in
  List.iter
    (fun (map_name, coupling) ->
      Printf.printf "=== Figure 9 (%s): CNOT reduction vs SABRE, best-of-8 combos vs all-enabled ===\n"
        map_name;
      Printf.printf "%-22s %10s %12s %12s %8s\n" "name" "SABRE add" "best-of-8" "all-enabled"
        "best=?";
      Printf.printf "%s\n" (String.make 72 '-');
      List.iter
        (fun (e : Qbench.Suite.entry) ->
          let circuit = e.build () in
          let seed_list = Runs.seeds_for ~seeds e in
          let base =
            Runs.run_router ~seeds:[ 1 ] ~coupling ~router:Qroute.Pipeline.Full_connectivity
              circuit
          in
          let sabre =
            Runs.run_router ~seeds:seed_list ~coupling ~router:Qroute.Pipeline.Sabre_router
              circuit
          in
          let sabre_add = sabre.cx -. base.cx in
          let reductions =
            List.map
              (fun cfg ->
                let r =
                  Runs.run_router ~seeds:seed_list ~coupling
                    ~router:(Qroute.Pipeline.Nassc_router cfg) circuit
                in
                let add = r.cx -. base.cx in
                (combo_name cfg, Runs.delta add sabre_add))
              combos
          in
          let best_name, best =
            List.fold_left
              (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
              ("", neg_infinity) reductions
          in
          let all_enabled = List.assoc "2ab" reductions in
          Printf.printf "%-22s %10.1f %10.2f%% %11.2f%% %8s\n%!" e.name sabre_add
            (Runs.pct best) (Runs.pct all_enabled)
            (if best_name = "2ab" then "yes" else best_name))
        entries;
      print_newline ())
    maps
