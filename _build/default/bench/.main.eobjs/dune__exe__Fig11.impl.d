bench/fig11.ml: List Printf Qbench Qroute Qsim Runs String Topology
