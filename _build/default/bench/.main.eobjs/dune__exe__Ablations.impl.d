bench/ablations.ml: List Printf Qbench Qroute Runs String Topology
