bench/main.mli:
