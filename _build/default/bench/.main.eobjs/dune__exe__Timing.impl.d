bench/timing.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Printf Qbench Qroute Staged Test Time Toolkit Topology
