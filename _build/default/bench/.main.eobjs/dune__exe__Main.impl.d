bench/main.ml: Ablations Array Fig11 Fig9 List Printf Routers Scaling Sys Tables Timing
