bench/tables.ml: List Printf Qbench Runs String Topology
