bench/routers.ml: List Printf Qbench Qroute Runs String Topology
