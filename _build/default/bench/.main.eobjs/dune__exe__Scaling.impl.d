bench/scaling.ml: List Printf Qbench Qroute Runs String Topology
