bench/fig9.ml: List Printf Qbench Qroute Runs String Topology
