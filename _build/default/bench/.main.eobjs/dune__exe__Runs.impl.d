bench/runs.ml: List Qbench Qroute
