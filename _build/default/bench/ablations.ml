(* Design-choice ablations called out in DESIGN.md:
   - optimization-aware SWAP decomposition on/off (keeps the cost model);
   - extended-layer size/weight sweep for the lookahead heuristic. *)

let ablate_decomposition ~seeds () =
  let coupling = Topology.Devices.montreal in
  Printf.printf "=== Ablation: optimization-aware SWAP decomposition ===\n";
  Printf.printf "%-22s %12s %14s %14s\n" "name" "SABRE add" "NASSC add" "NASSC-no-orient";
  Printf.printf "%s\n" (String.make 68 '-');
  List.iter
    (fun (e : Qbench.Suite.entry) ->
      let circuit = e.build () in
      let seed_list = Runs.seeds_for ~seeds e in
      let base =
        Runs.run_router ~seeds:[ 1 ] ~coupling ~router:Qroute.Pipeline.Full_connectivity
          circuit
      in
      let add router =
        (Runs.run_router ~seeds:seed_list ~coupling ~router circuit).cx -. base.cx
      in
      let sabre = add Qroute.Pipeline.Sabre_router in
      let nassc = add (Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config) in
      let no_orient =
        add
          (Qroute.Pipeline.Nassc_router
             { Qroute.Nassc.default_config with orient_swaps = false })
      in
      Printf.printf "%-22s %12.1f %14.1f %14.1f\n%!" e.name sabre nassc no_orient)
    Qbench.Suite.small_suite;
  print_newline ()

let ablate_lookahead ~seeds () =
  let coupling = Topology.Devices.montreal in
  let configs = [ (0, 0.0); (10, 0.5); (20, 0.5); (40, 0.5); (20, 0.0); (20, 1.0) ] in
  Printf.printf "=== Ablation: extended-layer size |E| and weight W (NASSC added CNOTs) ===\n";
  Printf.printf "%-22s" "name";
  List.iter (fun (s, w) -> Printf.printf " |E|=%-2d W=%-3.1f" s w) configs;
  print_newline ();
  Printf.printf "%s\n" (String.make (22 + (13 * List.length configs)) '-');
  let picks =
    [ "Grover 6-qubits"; "VQE 8-qubits"; "QFT 15-qubits"; "Adder 10-qubits" ]
  in
  List.iter
    (fun name ->
      let e = Qbench.Suite.find name in
      let circuit = e.build () in
      let seed_list = Runs.seeds_for ~seeds e in
      let base =
        Runs.run_router ~seeds:[ 1 ] ~coupling ~router:Qroute.Pipeline.Full_connectivity
          circuit
      in
      Printf.printf "%-22s" name;
      List.iter
        (fun (ext_size, ext_weight) ->
          let results =
            List.map
              (fun seed ->
                let params =
                  { Qroute.Engine.default_params with seed; ext_size; ext_weight }
                in
                Qroute.Pipeline.transpile ~params
                  ~router:(Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config)
                  coupling circuit)
              seed_list
          in
          Printf.printf " %12.1f" ((Runs.average_results results).cx -. base.cx))
        configs;
      Printf.printf "\n%!")
    picks;
  print_newline ()
