(* Static analysis and interchange: inspect a benchmark's structure, route
   it, compare before/after profiles, and round-trip through OpenQASM 2.

   Run with: dune exec examples/circuit_analysis.exe *)

open Qcircuit

let show_profile label c =
  Printf.printf "%s: %d qubits, %d ops, depth %d, 2q-depth %d\n" label
    (Circuit.n_qubits c) (Circuit.size c) (Circuit.depth c)
    (Analysis.two_qubit_layers c);
  print_string "  gate histogram: ";
  List.iter (fun (g, n) -> Printf.printf "%s:%d " g n) (Analysis.gate_histogram c);
  print_newline ();
  let profile = Analysis.parallelism_profile c in
  let avg =
    Array.fold_left ( + ) 0 profile |> fun t ->
    float_of_int t /. float_of_int (max 1 (Array.length profile))
  in
  Printf.printf "  avg parallelism: %.2f ops/layer, critical path %d ops\n" avg
    (List.length (Analysis.critical_path c))

let () =
  let circuit = Qbench.Generators.adder 10 in
  show_profile "Cuccaro adder (logical)" circuit;

  (* which logical pairs talk the most?  (what routing has to respect) *)
  print_endline "\nHottest logical interactions:";
  let g = Analysis.interaction_graph circuit in
  Hashtbl.fold (fun k v acc -> (v, k) :: acc) g []
  |> List.sort compare |> List.rev
  |> List.filteri (fun i _ -> i < 5)
  |> List.iter (fun (n, (a, b)) -> Printf.printf "  (%d,%d): %d two-qubit gates\n" a b n);

  (* route and compare *)
  let coupling = Topology.Devices.montreal in
  let r =
    Qroute.Pipeline.transpile
      ~router:(Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config)
      coupling circuit
  in
  print_newline ();
  show_profile "After NASSC routing to ibmq_montreal" r.circuit;

  (* interchange: emit QASM, parse it back, verify equality of metrics *)
  let qasm = Qasm.to_string r.circuit in
  let parsed = Qasm_parser.parse qasm in
  Printf.printf "\nQASM round trip: %d ops emitted, %d parsed back, cx %d = %d: %b\n"
    (Circuit.size r.circuit) (Circuit.size parsed) (Circuit.cx_count r.circuit)
    (Circuit.cx_count parsed)
    (Circuit.cx_count r.circuit = Circuit.cx_count parsed)
