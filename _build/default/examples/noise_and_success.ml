(* Noise-aware compilation: route a benchmark on a noisy montreal snapshot,
   then estimate the circuit's success rate with the Monte-Carlo noise
   simulator (the paper's Figure 11 experiment, single benchmark).

   Run with: dune exec examples/noise_and_success.exe *)

let () =
  let coupling = Topology.Devices.montreal in
  let cal = Topology.Calibration.generate coupling in
  let circuit = Qbench.Generators.grover 4 in
  Printf.printf "Grover-4 under the synthetic montreal calibration\n\n";
  (* show a slice of the calibration snapshot *)
  print_endline "Worst five CX edges by error rate:";
  Topology.Coupling.edges coupling
  |> List.map (fun (a, b) -> (Topology.Calibration.cx_error cal a b, (a, b)))
  |> List.sort (fun (x, _) (y, _) -> compare y x)
  |> List.filteri (fun i _ -> i < 5)
  |> List.iter (fun (e, (a, b)) -> Printf.printf "  (%2d,%2d)  %.4f\n" a b e);
  print_newline ();
  Printf.printf "%-10s %8s %8s %13s %8s\n" "router" "CNOTs" "depth" "success-rate" "ESP";
  Printf.printf "%s\n" (String.make 52 '-');
  List.iter
    (fun (label, router) ->
      let r = Qroute.Pipeline.transpile ~calibration:cal ~router coupling circuit in
      match r.final_layout with
      | None -> ()
      | Some fl ->
          let o =
            Qsim.Success.routed_success ~shots:4096 ~cal ~ideal:circuit ~routed:r.circuit
              ~final_layout:fl ()
          in
          Printf.printf "%-10s %8d %8d %13.3f %8.3f\n%!" label r.cx_total r.depth
            o.success_rate o.esp)
    [
      ("SABRE", Qroute.Pipeline.Sabre_router);
      ("SABRE+HA", Qroute.Pipeline.Sabre_ha);
      ("NASSC", Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config);
      ("NASSC+HA", Qroute.Pipeline.Nassc_ha Qroute.Nassc.default_config);
    ];
  print_newline ();
  print_endline
    "Fewer CNOTs means fewer noisy two-qubit gates, which is why the paper\n\
     (and this reproduction) find optimization-aware routing improves the\n\
     success rate more than noise-aware distance matrices do."
