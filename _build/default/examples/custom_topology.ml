(* Bring-your-own device: define a custom coupling map, inspect its
   distance structure, and route a QFT onto it.  Also demonstrates the
   KAK synthesis API directly on a random two-qubit unitary.

   Run with: dune exec examples/custom_topology.exe *)

open Mathkit

let () =
  (* A 12-qubit ring with one chord: not one of the built-in devices. *)
  let ring_edges = List.init 12 (fun i -> (i, (i + 1) mod 12)) @ [ (0, 6) ] in
  let coupling = Topology.Coupling.create 12 ring_edges in
  Printf.printf "Custom device: %d qubits, %d edges, diameter %d\n"
    (Topology.Coupling.n_qubits coupling)
    (List.length (Topology.Coupling.edges coupling))
    (Topology.Coupling.diameter coupling);
  Printf.printf "Shortest path 2 -> 9: %s\n\n"
    (String.concat " -> "
       (List.map string_of_int (Topology.Coupling.shortest_path coupling 2 9)));

  (* Route an 8-qubit QFT onto the ring with both routers. *)
  let circuit = Qbench.Generators.qft 8 in
  let base = Qroute.Pipeline.transpile ~router:Qroute.Pipeline.Full_connectivity coupling circuit in
  Printf.printf "QFT-8: %d CNOTs unrouted\n" base.cx_total;
  List.iter
    (fun (label, router) ->
      let r = Qroute.Pipeline.transpile ~router coupling circuit in
      Printf.printf "  %-6s -> %3d CNOTs (+%d), depth %d, %d swaps\n" label r.cx_total
        (r.cx_total - base.cx_total) r.depth r.n_swaps)
    [
      ("SABRE", Qroute.Pipeline.Sabre_router);
      ("NASSC", Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config);
    ];

  (* Direct use of the synthesis layer: decompose a Haar-random two-qubit
     unitary and verify it numerically. *)
  print_newline ();
  let rng = Rng.create 2022 in
  let u = Randmat.su4 rng in
  let x, y, z = Qpasses.Weyl.coords u in
  Printf.printf "Random SU(4): Weyl coordinates (%.4f, %.4f, %.4f), CNOT cost %d\n" x y z
    (Qpasses.Weyl.cnot_cost u);
  let ops = Qpasses.Synth2q.synthesize u in
  let cx = List.length (List.filter (fun (g, _) -> g = Qgate.Gate.CX) ops) in
  let exact =
    Mat.equal_up_to_phase (Qpasses.Synth2q.ops_unitary 2 ops) u
  in
  Printf.printf "Synthesized with %d gates (%d CNOTs); reconstruction exact: %b\n"
    (List.length ops) cx exact
