(* Quickstart: build a circuit, transpile it for a real device topology with
   the NASSC router, and inspect the result.

   Run with: dune exec examples/quickstart.exe *)

open Qcircuit

let () =
  (* 1. Build a logical circuit with the builder API: a 5-qubit GHZ state
     followed by a round of phase rotations and a ripple of CNOTs. *)
  let b = Circuit.Builder.create 5 in
  Circuit.Builder.add b Qgate.Gate.H [ 0 ];
  for i = 0 to 3 do
    Circuit.Builder.add b Qgate.Gate.CX [ i; i + 1 ]
  done;
  for i = 0 to 4 do
    Circuit.Builder.add b (Qgate.Gate.RZ (0.1 *. float_of_int (i + 1))) [ i ]
  done;
  Circuit.Builder.add b Qgate.Gate.CX [ 0; 4 ];
  Circuit.Builder.add b Qgate.Gate.CX [ 4; 0 ];
  let circuit = Circuit.Builder.circuit b in
  Format.printf "Logical circuit:@.%a@." Circuit.pp circuit;

  (* 2. Pick the target device: the 27-qubit ibmq_montreal heavy-hex
     lattice.  Qubits 0 and 4 are not adjacent there, so routing must
     insert SWAPs. *)
  let coupling = Topology.Devices.montreal in
  Format.printf "Device: %a, diameter %d@.@." Topology.Coupling.pp coupling
    (Topology.Coupling.diameter coupling);

  (* 3. Transpile with the full NASSC flow (lower -> optimize -> route ->
     optimize -> hardware basis {rz, sx, x, cx}). *)
  let result =
    Qroute.Pipeline.transpile
      ~router:(Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config)
      coupling circuit
  in
  Printf.printf "Transpiled: %d CNOTs, depth %d, %d SWAPs inserted (%.3f s)\n"
    result.cx_total result.depth result.n_swaps result.transpile_time;
  (match (result.initial_layout, result.final_layout) with
  | Some init, Some final ->
      Printf.printf "Initial layout (logical -> physical): %s\n"
        (String.concat " " (Array.to_list (Array.map string_of_int init)));
      Printf.printf "Final layout   (logical -> physical): %s\n"
        (String.concat " " (Array.to_list (Array.map string_of_int final)))
  | _ -> ());

  (* 4. Export OpenQASM 2 for interchange with other toolchains. *)
  print_endline "\nOpenQASM 2 output (first 12 lines):";
  let qasm = Qasm.to_string result.circuit in
  String.split_on_char '\n' qasm
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter print_endline;
  print_endline "..."
