examples/noise_and_success.mli:
