examples/custom_topology.ml: List Mat Mathkit Printf Qbench Qgate Qpasses Qroute Randmat Rng String Topology
