examples/noise_and_success.ml: List Printf Qbench Qroute Qsim String Topology
