examples/circuit_analysis.ml: Analysis Array Circuit Hashtbl List Printf Qasm Qasm_parser Qbench Qcircuit Qroute Topology
