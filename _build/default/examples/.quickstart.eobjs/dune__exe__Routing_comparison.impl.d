examples/routing_comparison.ml: Array List Printf Qbench Qroute String Sys Topology
