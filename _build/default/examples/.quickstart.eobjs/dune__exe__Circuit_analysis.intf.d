examples/circuit_analysis.mli:
