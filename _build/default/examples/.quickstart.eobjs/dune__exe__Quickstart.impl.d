examples/quickstart.ml: Array Circuit Format List Printf Qasm Qcircuit Qgate Qroute String Topology
