examples/quickstart.mli:
