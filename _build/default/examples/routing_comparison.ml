(* Routing-cost comparison: the paper's headline experiment in miniature.
   For one benchmark, compare SABRE and NASSC added-CNOT counts across the
   three device topologies of Figure 10, averaged over seeds.

   Run with: dune exec examples/routing_comparison.exe [benchmark-name]
   (default "VQE 8-qubits"; see Qbench.Suite for names) *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "VQE 8-qubits" in
  let entry =
    try Qbench.Suite.find name
    with Not_found ->
      Printf.eprintf "unknown benchmark %S; available:\n" name;
      List.iter (fun e -> Printf.eprintf "  %s\n" e.Qbench.Suite.name) Qbench.Suite.paper_suite;
      exit 1
  in
  let circuit = entry.build () in
  Printf.printf "Benchmark %s (%d qubits)\n\n" entry.name entry.n_qubits;
  let topologies =
    [
      ("ibmq_montreal (heavy-hex)", Topology.Devices.montreal);
      ("linear-25", Topology.Devices.linear 25);
      ("grid-5x5", Topology.Devices.grid 5 5);
    ]
  in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  Printf.printf "%-28s %10s %12s %12s %8s\n" "topology" "original" "SABRE add" "NASSC add"
    "saving";
  Printf.printf "%s\n" (String.make 76 '-');
  List.iter
    (fun (label, coupling) ->
      let base =
        Qroute.Pipeline.transpile ~router:Qroute.Pipeline.Full_connectivity coupling circuit
      in
      let avg router =
        let total =
          List.fold_left
            (fun acc seed ->
              let params = { Qroute.Engine.default_params with seed } in
              let r = Qroute.Pipeline.transpile ~params ~router coupling circuit in
              acc + r.cx_total - base.cx_total)
            0 seeds
        in
        float_of_int total /. float_of_int (List.length seeds)
      in
      let sabre = avg Qroute.Pipeline.Sabre_router in
      let nassc = avg (Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config) in
      Printf.printf "%-28s %10d %12.1f %12.1f %7.1f%%\n%!" label base.cx_total sabre nassc
        (100.0 *. (1.0 -. (nassc /. sabre))))
    topologies
