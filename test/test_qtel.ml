(* The Qtel observability layer: exposition round-trips against the Qobs
   registry and survives its own linter, wide events are byte-identical
   across worker counts, the resource sampler is silent when disabled, and
   trend analysis flags injected regressions without false positives. *)

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let coupling = Topology.Devices.montreal
let circuit () = (Qbench.Suite.find "Grover 4-qubits").build ()

(* one traced + recorded transpile; the recorder turns on the engine's
   deterministic histograms, so the trace exercises every metric kind *)
let traced_transpile ?(trials = 2) ?(workers = 1) () =
  let root = Qobs.Collector.create ~label:"test" () in
  let rec_root = Qobs.Recorder.create ~label:"test" () in
  let params = { Qroute.Engine.default_params with seed = 7 } in
  let r =
    Qobs.with_collector root (fun () ->
        Qobs.Recorder.with_recorder rec_root (fun () ->
            Qroute.Pipeline.transpile ~params ~trials ~workers
              ~router:(Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config) coupling
              (circuit ())))
  in
  (r, Qobs.Trace.of_root root, rec_root)

(* ---------- metric names ---------- *)

let test_metric_name () =
  checks "dots become underscores" "nassc_engine_swaps_emitted"
    (Qtel.Expose.metric_name "engine.swaps_emitted");
  checks "custom prefix" "x_a_b" (Qtel.Expose.metric_name ~prefix:"x_" "a-b")

(* ---------- exposition round-trip ---------- *)

let test_expose_roundtrip () =
  let _, trace, _ = traced_transpile () in
  let page = Qtel.Expose.to_string trace in
  check "page is terminated" true
    (String.length page > 6 && String.sub page (String.length page - 6) 6 = "# EOF\n");
  (* the exporter's own output must satisfy the exporter's own linter *)
  (match Qtel.Promlint.lint page with
  | [] -> ()
  | e :: _ -> Alcotest.failf "lint error on own page: line %d: %s" e.line e.msg);
  let series = Qtel.Promlint.parse_series page in
  let value name labels =
    match
      List.find_opt (fun (n, l, _) -> n = name && l = labels) series
    with
    | Some (_, _, v) -> v
    | None -> Alcotest.failf "series %s missing from page" name
  in
  (* every registry counter total survives the text round-trip *)
  let counters = Qobs.Trace.counters_total trace in
  check "trace has counters" true (counters <> []);
  check "a cache counter fired" true
    (Qobs.Trace.counter_total trace "engine.swap_candidates_scored" > 0);
  List.iter
    (fun (name, total) ->
      let m = Qtel.Expose.metric_name name ^ "_total" in
      check (m ^ " round-trips") true (value m [] = float_of_int total))
    counters;
  (* every histogram's _count, _sum and +Inf bucket line up with Hist *)
  let hists = Qobs.Trace.histograms_total trace in
  check "recorder enabled the engine histograms" true
    (List.mem_assoc "engine.front_size" hists);
  List.iter
    (fun (name, h) ->
      let m = Qtel.Expose.metric_name name in
      let count = float_of_int (Qobs.Hist.count h) in
      check (m ^ "_count") true (value (m ^ "_count") [] = count);
      check (m ^ " +Inf bucket = count") true
        (value (m ^ "_bucket") [ ("le", "+Inf") ] = count);
      check (m ^ "_sum") true
        (Float.abs (value (m ^ "_sum") [] -. Qobs.Hist.sum h) < 1e-9))
    hists

let test_expose_gauges_labelled_by_trial () =
  let _, trace, _ = traced_transpile ~trials:2 () in
  let page = Qtel.Expose.to_string trace in
  let series = Qtel.Promlint.parse_series page in
  (* per-trial gauges (e.g. trial.cx_total) appear once per trial label *)
  let trial_series =
    List.filter
      (fun (n, l, _) -> n = "nassc_trial_cx_total" && List.mem_assoc "trial" l)
      series
  in
  checki "one series per trial" 2 (List.length trial_series)

(* ---------- promlint negatives ---------- *)

let expect_errors name page =
  check name true (Qtel.Promlint.lint page <> [])

let test_promlint_catches () =
  expect_errors "missing TYPE" "# HELP m help\nm 1\n";
  expect_errors "missing HELP" "# TYPE m counter\nm 1\n";
  expect_errors "bad metric name"
    "# HELP bad-name h\n# TYPE bad-name counter\nbad-name 1\n";
  expect_errors "unknown kind" "# HELP m h\n# TYPE m exotic\nm 1\n";
  expect_errors "duplicate TYPE"
    "# HELP m h\n# TYPE m counter\n# TYPE m counter\nm 1\n";
  expect_errors "duplicate series" "# HELP m h\n# TYPE m counter\nm 1\nm 2\n";
  expect_errors "unparsable value" "# HELP m h\n# TYPE m counter\nm pretzel\n";
  expect_errors "non-cumulative histogram"
    "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
     h_bucket{le=\"+Inf\"} 5\nh_sum 4\nh_count 5\n";
  expect_errors "+Inf <> count"
    "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 4\nh_count 5\n";
  expect_errors "histogram without +Inf"
    "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 4\nh_count 5\n";
  checki "clean page is clean" 0
    (List.length (Qtel.Promlint.lint "# HELP m h\n# TYPE m counter\nm 1\n# EOF\n"))

(* ---------- wide events ---------- *)

let wide_event ~workers () =
  let r, trace, rec_root = traced_transpile ~trials:4 ~workers () in
  let ev =
    Qtel.Wideevent.build ~label:"ghz" ~router:"nassc" ~topology:"montreal" ~trials:4
      ~workers ~seed:7 ~original:(circuit ()) ~trace
      ~recorder:(Qobs.Recorder.totals rec_root) ~result:r ()
  in
  ev

let test_wide_event_deterministic_across_workers () =
  let j1 = Qtel.Wideevent.to_json (wide_event ~workers:1 ()) in
  let j4 = Qtel.Wideevent.to_json (wide_event ~workers:4 ()) in
  checks "workers 1 vs 4 byte-identical" j1 j4;
  (* the json is one object with the deterministic core only *)
  check "no rt object by default" true
    (not
       (String.length j1 > 5
       && List.exists
            (fun i -> String.sub j1 i 5 = "\"rt\":")
            (List.init (String.length j1 - 5) Fun.id)))

let test_wide_event_times_adds_rt () =
  let j = Qtel.Wideevent.to_json ~times:true (wide_event ~workers:2 ()) in
  let contains hay needle =
    let nl = String.length needle in
    List.exists
      (fun i -> String.sub hay i nl = needle)
      (List.init (String.length hay - nl + 1) Fun.id)
  in
  check "rt object present" true (contains j "\"rt\":");
  check "workers only inside rt" true (contains j "\"workers\":");
  check "stage durations present" true (contains j "\"stage_ms\":")

let test_wide_event_parses_and_counts () =
  let j = Qtel.Wideevent.to_json (wide_event ~workers:2 ()) in
  let open Qbench.Jsonlite in
  let v = of_string j in
  check "kind" true (Option.bind (member "kind" v) to_string = Some "wide_event");
  checki "trials_run" 4
    (Option.value ~default:(-1) (Option.bind (member "trials_run" v) to_int));
  checki "trials_failed" 0
    (Option.value ~default:(-1) (Option.bind (member "trials_failed" v) to_int));
  check "has recorder totals" true (member "recorder" v <> None);
  check "has cache hit rate" true (member "weyl_cache_hit_rate" v <> None)

(* ---------- sampler ---------- *)

let test_sampler_disabled_is_silent () =
  Qtel.Sampler.set_enabled false;
  check "start yields None when disabled" true (Qtel.Sampler.start () = None)

let test_sampler_runs_and_attaches () =
  Qtel.Sampler.set_enabled true;
  Fun.protect ~finally:(fun () -> Qtel.Sampler.set_enabled false) @@ fun () ->
  match Qtel.Sampler.start ~interval_ms:2.0 () with
  | None -> Alcotest.fail "sampler did not start"
  | Some s ->
      (* do a little real work so GC counters move *)
      let _, _, _ = traced_transpile ~trials:1 () in
      Qtel.Sampler.stop s;
      let samples = Qtel.Sampler.samples s in
      check "baseline + final samples retained" true (List.length samples >= 2);
      List.iter
        (fun (x : Qtel.Sampler.sample) -> check "time monotone-ish" true (x.t_s >= 0.0))
        samples;
      let c = Qobs.Collector.create ~label:"sampler" () in
      Qtel.Sampler.attach s c;
      let gauges = Qobs.Collector.gauges c in
      check "qtel.samples gauge" true (List.mem_assoc "qtel.samples" gauges);
      check "qtel.peak_rss_kb gauge" true (List.mem_assoc "qtel.peak_rss_kb" gauges);
      check "sample count matches gauge" true
        (List.assoc "qtel.samples" gauges = float_of_int (List.length samples));
      (* stop is idempotent *)
      Qtel.Sampler.stop s

(* ---------- trace stability: qtel features off => historical bytes ---------- *)

let deterministic_trace () =
  let root = Qobs.Collector.create ~label:"test" () in
  let params = { Qroute.Engine.default_params with seed = 7 } in
  let _ =
    Qobs.with_collector root (fun () ->
        Qroute.Pipeline.transpile ~params ~trials:2 ~workers:2
          ~router:(Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config) coupling
          (circuit ()))
  in
  Qobs.Trace.to_jsonl (Qobs.Trace.of_root root)

let contains hay needle =
  let nl = String.length needle in
  String.length hay >= nl
  && List.exists
       (fun i -> String.sub hay i nl = needle)
       (List.init (String.length hay - nl + 1) Fun.id)

let test_extended_metrics_gated () =
  check "extended metrics default off" true (not (Qobs.extended_metrics_enabled ()));
  let plain = deterministic_trace () in
  check "no extended pipeline gauges by default" true
    (not (contains plain "pipeline.gates_in"));
  Qobs.set_extended_metrics true;
  Fun.protect ~finally:(fun () -> Qobs.set_extended_metrics false) @@ fun () ->
  let extended = deterministic_trace () in
  check "extended gauges present when opted in" true
    (contains extended "pipeline.gates_in");
  check "extended gauges deterministic too" true
    (String.equal extended (deterministic_trace ()))

let test_trace_bytes_stable_across_runs () =
  checks "same run, same bytes" (deterministic_trace ()) (deterministic_trace ())

(* --metrics reads the same collectors --trace exports: rendering the page
   must not perturb the trace bytes, and vice versa *)
let test_expose_does_not_perturb_trace () =
  let _, trace, _ = traced_transpile () in
  let before = Qobs.Trace.to_jsonl trace in
  let page1 = Qtel.Expose.to_string trace in
  let after = Qobs.Trace.to_jsonl trace in
  checks "trace bytes unchanged by exposition" before after;
  checks "page bytes unchanged by trace export" page1 (Qtel.Expose.to_string trace)

(* ---------- trend analysis ---------- *)

let snapshot_json ?(wall_scale = 1.0) sha =
  Printf.sprintf
    {|{"schema_version": 2, "kind": "nassc-bench-regress", "git_sha": "%s",
      "suite": "quick", "seed": 11, "trials": 1, "topology": "montreal",
      "circuits": [
        {"name": "ghz", "router": "nassc", "n_qubits": 12, "cx_total": 41,
         "depth": 41, "n_swaps": 10, "wall_s": %s},
        {"name": "ghz", "router": "sabre", "n_qubits": 12, "cx_total": 44,
         "depth": 43, "n_swaps": 12, "wall_s": %s}
      ]}|}
    sha
    (Qbench.Jsonlite.number_to_string (0.02 *. wall_scale))
    (Qbench.Jsonlite.number_to_string (0.03 *. wall_scale))

let with_snapshot_dir snapshots f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "qtel_trend_%d_%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      List.iteri
        (fun i (name, body) ->
          let path = Filename.concat dir name in
          let oc = open_out path in
          output_string oc body;
          close_out oc;
          (* strictly increasing mtimes make the chronology unambiguous *)
          let t = 1_000_000_000.0 +. (60.0 *. float_of_int i) in
          Unix.utimes path t t)
        snapshots;
      f dir)

let test_trend_clean_history_no_anomalies () =
  with_snapshot_dir
    (List.map
       (fun i -> (Printf.sprintf "BENCH_s%d.json" i, snapshot_json (Printf.sprintf "s%d" i)))
       [ 1; 2; 3; 4 ])
    (fun dir ->
      let snaps, skipped = Qtel.Trend.load_dir dir in
      checki "no skipped files" 0 (List.length skipped);
      checki "four snapshots" 4 (List.length snaps);
      checks "chronological order" "s1"
        (match snaps with s :: _ -> s.Qtel.Trend.sha | [] -> "none");
      let report = Qtel.Trend.analyze snaps in
      checki "two series" 2 (List.length report.Qtel.Trend.series);
      checki "zero anomalies on flat history" 0
        (List.length (Qtel.Trend.anomalies report)))

let test_trend_flags_injected_regression () =
  let clean i =
    (Printf.sprintf "BENCH_s%d.json" i, snapshot_json (Printf.sprintf "s%d" i))
  in
  with_snapshot_dir
    (List.map clean [ 1; 2; 3; 4 ] @ [ ("BENCH_bad.json", snapshot_json ~wall_scale:1.5 "bad") ])
    (fun dir ->
      let snaps, _ = Qtel.Trend.load_dir dir in
      let report = Qtel.Trend.analyze snaps in
      let an = Qtel.Trend.anomalies report in
      checki "both series flag the +50% wall time" 2 (List.length an);
      List.iter
        (fun ((_ : Qtel.Trend.key), (d : Qtel.Trend.delta)) ->
          checks "only wall_s flagged" "wall_s" d.metric;
          check "delta is ~+50%" true (d.pct > 45.0 && d.pct < 55.0))
        an)

let test_trend_needs_history () =
  (* one prior point is not enough evidence to call an anomaly *)
  with_snapshot_dir
    [ ("BENCH_a.json", snapshot_json "a"); ("BENCH_b.json", snapshot_json ~wall_scale:3.0 "b") ]
    (fun dir ->
      let snaps, _ = Qtel.Trend.load_dir dir in
      let report = Qtel.Trend.analyze snaps in
      checki "series still reported" 2 (List.length report.Qtel.Trend.series);
      checki "no anomaly with a single prior run" 0
        (List.length (Qtel.Trend.anomalies report)))

let test_trend_skips_garbage () =
  with_snapshot_dir
    [
      ("BENCH_ok.json", snapshot_json "ok");
      ("BENCH_bad.json", "{ not json");
      ("BENCH_wrongkind.json", {|{"kind": "other", "circuits": []}|});
      ("unrelated.txt", "hello");
    ]
    (fun dir ->
      let snaps, skipped = Qtel.Trend.load_dir dir in
      checki "only the valid snapshot loads" 1 (List.length snaps);
      checki "both bad files reported" 2 (List.length skipped))

let test_trend_markdown_and_json () =
  with_snapshot_dir
    (List.map
       (fun i -> (Printf.sprintf "BENCH_s%d.json" i, snapshot_json (Printf.sprintf "s%d" i)))
       [ 1; 2; 3 ])
    (fun dir ->
      let snaps, _ = Qtel.Trend.load_dir dir in
      let report = Qtel.Trend.analyze snaps in
      let md = Qtel.Trend.to_markdown report in
      check "markdown has header" true (contains md "# Bench trend report");
      check "markdown lists snapshots" true (contains md "BENCH_s1.json");
      let j = Qbench.Jsonlite.of_string (Qtel.Trend.to_json report) in
      let open Qbench.Jsonlite in
      check "json kind" true (Option.bind (member "kind" j) to_string = Some "nassc-trend");
      checki "json snapshot count" 3
        (List.length
           (Option.value ~default:[] (Option.bind (member "snapshots" j) to_list))))

let () =
  Alcotest.run "qtel"
    [
      ( "expose",
        [
          Alcotest.test_case "metric_name" `Quick test_metric_name;
          Alcotest.test_case "roundtrip vs registry" `Quick test_expose_roundtrip;
          Alcotest.test_case "per-trial gauge labels" `Quick
            test_expose_gauges_labelled_by_trial;
        ] );
      ("promlint", [ Alcotest.test_case "catches violations" `Quick test_promlint_catches ]);
      ( "wide-events",
        [
          Alcotest.test_case "byte-identical across workers" `Quick
            test_wide_event_deterministic_across_workers;
          Alcotest.test_case "times adds rt" `Quick test_wide_event_times_adds_rt;
          Alcotest.test_case "parses with expected fields" `Quick
            test_wide_event_parses_and_counts;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "disabled is silent" `Quick test_sampler_disabled_is_silent;
          Alcotest.test_case "runs and attaches" `Quick test_sampler_runs_and_attaches;
        ] );
      ( "trace-stability",
        [
          Alcotest.test_case "extended gauges gated" `Quick test_extended_metrics_gated;
          Alcotest.test_case "bytes stable across runs" `Quick
            test_trace_bytes_stable_across_runs;
          Alcotest.test_case "exposition does not perturb trace" `Quick
            test_expose_does_not_perturb_trace;
        ] );
      ( "trend",
        [
          Alcotest.test_case "clean history" `Quick test_trend_clean_history_no_anomalies;
          Alcotest.test_case "flags injected regression" `Quick
            test_trend_flags_injected_regression;
          Alcotest.test_case "needs history" `Quick test_trend_needs_history;
          Alcotest.test_case "skips garbage" `Quick test_trend_skips_garbage;
          Alcotest.test_case "markdown and json" `Quick test_trend_markdown_and_json;
        ] );
    ]
