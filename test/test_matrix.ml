(* The benchmark-matrix harness (Qbench.Matrix):
   - the quick-subset golden corpus (test/goldens/matrix.golden) is
     byte-identical for worker counts 1 and 4,
   - every cell agrees with a direct Pipeline.transpile run of the same
     (circuit, topology, router, seed, trials) tuple, and its ESP column
     with a direct Qsim.Success.routed_esp evaluation,
   - the JSON export round-trips through Qbench.Jsonlite exactly,
   - the markdown table covers every cell. *)

open Qbench

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* dune runtest materializes the dep next to the test binary; dune exec
   runs from the project root *)
let golden_path =
  if Sys.file_exists "goldens/matrix.golden" then "goldens/matrix.golden"
  else "test/goldens/matrix.golden"

let quick_cells ~workers =
  Matrix.run ~workers
    ~instances:(Matrix.instances ~quick:true)
    ~topologies:(Matrix.golden_topologies ())
    ()

let test_golden_workers_1_vs_4 () =
  let expected = read_file golden_path in
  let w1 = Matrix.golden_lines (quick_cells ~workers:1) in
  let w4 = Matrix.golden_lines (quick_cells ~workers:4) in
  checks "workers=1 matches checked-in golden" expected w1;
  checks "workers=4 matches checked-in golden" expected w4

let test_cell_coverage () =
  let cells = quick_cells ~workers:2 in
  (* one instance per family x 2 golden topologies x all 6 routers *)
  let families = List.sort_uniq compare (List.map (fun c -> c.Matrix.family) cells) in
  checki "five families" 5 (List.length families);
  checki "full cross product" (5 * 2 * 6) (List.length cells);
  List.iter
    (fun (rname, _) ->
      checki
        (Printf.sprintf "%s appears once per (instance, topology)" rname)
        (5 * 2)
        (List.length (List.filter (fun c -> c.Matrix.router = rname) cells)))
    Matrix.routers

(* every matrix row must be reproducible by a direct pipeline run of the
   same (circuit, topology, router, seed, trials) tuple *)
let test_rows_agree_with_pipeline () =
  let cells = quick_cells ~workers:2 in
  let params = { Qroute.Engine.default_params with seed = Matrix.default_seed } in
  List.iter
    (fun (c : Matrix.cell) ->
      let i =
        List.find
          (fun (i : Matrix.instance) -> i.family = c.family && i.instance = c.instance)
          (Matrix.instances ~quick:true)
      in
      let coupling = List.assoc c.topology (Matrix.golden_topologies ()) in
      let router = List.assoc c.router Matrix.routers in
      let r =
        Qroute.Pipeline.transpile ~params ~trials:Matrix.default_trials ~router coupling
          (i.build ())
      in
      let tag = Printf.sprintf "%s/%s/%s/%s" c.family c.instance c.topology c.router in
      checki (tag ^ " cx") r.cx_total c.cx_total;
      checki (tag ^ " depth") r.depth c.depth;
      checki (tag ^ " swaps") r.n_swaps c.n_swaps;
      match r.final_layout with
      | None -> Alcotest.fail (tag ^ ": no final layout")
      | Some fl ->
          let cal = Topology.Calibration.generate coupling in
          let esp = Qsim.Success.routed_esp ~cal ~routed:r.circuit ~final_layout:fl in
          check (tag ^ " esp") true (esp = c.esp))
    cells

let test_json_roundtrip () =
  let cells = quick_cells ~workers:2 in
  let json =
    Matrix.to_json ~git_sha:"test" ~suite:"quick" ~seed:Matrix.default_seed
      ~trials:Matrix.default_trials cells
  in
  let reparsed = Jsonlite.of_string (Jsonlite.serialize ~indent:2 json) in
  let open Jsonlite in
  checki "schema version"
    Matrix.schema_version
    (Option.get (Option.bind (member "schema_version" reparsed) to_int));
  let rows = Option.get (Option.bind (member "cells" reparsed) to_list) in
  checki "all cells exported" (List.length cells) (List.length rows);
  List.iter2
    (fun (c : Matrix.cell) row ->
      let f key = Option.get (Option.bind (member key row) to_float) in
      check "depth_overhead round-trips exactly" true (f "depth_overhead" = c.depth_overhead);
      check "esp round-trips exactly" true (f "esp" = c.esp);
      checki "cx" c.cx_total (int_of_float (f "cx_total")))
    cells rows

let test_markdown () =
  let cells = quick_cells ~workers:2 in
  let md = Matrix.markdown cells in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' md) in
  checki "header + separator + one row per cell" (2 + List.length cells)
    (List.length lines);
  check "has esp column" true
    (match lines with
    | header :: _ ->
        let contains s sub =
          let n = String.length sub in
          let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        contains header "esp" && contains header "depth_overhead"
    | [] -> false)

let () =
  Alcotest.run "matrix"
    [
      ( "golden",
        [
          Alcotest.test_case "workers 1 and 4 byte-identical to corpus" `Quick
            test_golden_workers_1_vs_4;
          Alcotest.test_case "cell coverage" `Quick test_cell_coverage;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "cells reproduce direct pipeline runs" `Quick
            test_rows_agree_with_pipeline;
        ] );
      ( "export",
        [
          Alcotest.test_case "json round-trip exact" `Quick test_json_roundtrip;
          Alcotest.test_case "markdown table" `Quick test_markdown;
        ] );
    ]
