(* The incremental (delta) candidate scorer against a reference full-rescan
   implementation — the scorer the engine used before the incremental
   rework.  The engine's seed-compatibility rests on base + delta being
   (bit-)equal to the full rescan for hop metrics and within the 1e-12 tie
   tolerance for the noise-aware metric; this file checks exactly that,
   plus the per-wire window semantics of the NASSC bonus scans. *)

open Qgate
module Engine = Qroute.Engine
module Nassc = Qroute.Nassc

(* ---- reference scorer: the old O(|F| + |E|) full rescan ---- *)

let ref_sum dist p1 p2 pairs =
  List.fold_left
    (fun acc (a, b) ->
      let m q = if q = p1 then p2 else if q = p2 then p1 else q in
      acc +. Topology.Distmat.get dist (m a) (m b))
    0.0 pairs

(* the four topology families of the paper's evaluation *)
let topologies =
  [
    ("linear7", Topology.Devices.linear 7);
    ("ring7", Topology.Devices.ring 7);
    ("grid2x4", Topology.Devices.grid 2 4);
    ("heavyhex2x2", Topology.Devices.heavy_hex 2 2);
  ]

(* hop and noise-aware metrics per topology, plus a reusable scratch so the
   property also exercises the scratch's dirty-reset path across samples *)
let instances =
  List.concat_map
    (fun (tname, coupling) ->
      let n_phys = Topology.Coupling.n_qubits coupling in
      let scratch = Engine.Scoring.make_scratch ~n_phys in
      [
        (tname ^ "/hop", n_phys, Qroute.Sabre.hop_distance coupling, true, scratch);
        ( tname ^ "/noise",
          n_phys,
          Topology.Calibration.noise_distmat (Topology.Calibration.generate coupling),
          false,
          scratch );
      ])
    topologies

let gen_case =
  QCheck.Gen.(
    let* inst = int_range 0 (List.length instances - 1) in
    let _, n_phys, _, _, _ = List.nth instances inst in
    let pair = map2 (fun a b -> (a, b)) (int_range 0 (n_phys - 1)) (int_range 0 (n_phys - 1)) in
    let* front = list_size (int_range 0 5) pair in
    let* ext = list_size (int_range 0 20) pair in
    let* p1 = int_range 0 (n_phys - 1) in
    let* p2 = int_range 0 (n_phys - 1) in
    return (inst, front, ext, p1, if p2 = p1 then (p1 + 1) mod n_phys else p2))

let prop_delta_equals_full (inst, front, ext, p1, p2) =
  let name, _, dist, integral, scratch = List.nth instances inst in
  let sc = Engine.Scoring.prepare scratch ~dist ~front ~ext in
  let fa = Engine.Scoring.front_after sc p1 p2 in
  let ea = Engine.Scoring.ext_after sc p1 p2 in
  let fa_ref = ref_sum dist p1 p2 front in
  let ea_ref = ref_sum dist p1 p2 ext in
  let ok got want =
    if integral then got = want (* exact small integers: bit-identical *)
    else Float.abs (got -. want) <= 1e-12
  in
  if ok fa fa_ref && ok ea ea_ref then true
  else
    QCheck.Test.fail_reportf "%s: front %.17g vs ref %.17g, ext %.17g vs ref %.17g" name
      fa fa_ref ea ea_ref

(* the full heuristic H assembled from scorer outputs, as route_once does,
   against the same formula over the reference sums *)
let prop_h_equals_reference (inst, front, ext, p1, p2) =
  let _, _, dist, integral, scratch = List.nth instances inst in
  let params = Engine.default_params in
  let sc = Engine.Scoring.prepare scratch ~dist ~front ~ext in
  let h_of fa ea =
    let nf = float_of_int (max 1 (List.length front)) in
    let ne = float_of_int (max 1 (List.length ext)) in
    let h_basic = 3.0 *. fa /. nf in
    let h_ext = if ext = [] then 0.0 else params.Engine.ext_weight /. ne *. ea in
    h_basic +. h_ext
  in
  let h = h_of (Engine.Scoring.front_after sc p1 p2) (Engine.Scoring.ext_after sc p1 p2) in
  let h_ref = h_of (ref_sum dist p1 p2 front) (ref_sum dist p1 p2 ext) in
  if integral then h = h_ref else Float.abs (h -. h_ref) <= 1e-12

let qcheck_props =
  [
    QCheck.Test.make ~name:"delta scorer = full rescan (4 topologies x 2 metrics)"
      ~count:500 (QCheck.make gen_case) prop_delta_equals_full;
    QCheck.Test.make ~name:"assembled H = reference H" ~count:500 (QCheck.make gen_case)
      prop_h_equals_reference;
  ]

(* ---- NASSC bonus window semantics over the op stream ---- *)

let push stream gate qubits =
  Engine.stream_push stream { Engine.gate; op_qubits = qubits; tag = Engine.Not_swap }

let c2q_only = { Nassc.default_config with enable_commute1 = false; enable_commute2 = false }

(* a trailing CX on the pair, pushed out of reach by filler ops elsewhere:
   the C_2q block scan must honor config.scan_limit (it was once hard-coded
   to 24), counting *all* emitted ops against the window, not just ops on
   the scanned wires *)
let test_scan_limit_shrinks_window () =
  let stream = Engine.stream_create ~n_phys:4 () in
  push stream Gate.CX [ 0; 1 ];
  for _ = 1 to 6 do
    push stream Gate.H [ 2 ]
  done;
  let mapping = Engine.mapping_of_layout ~n_phys:4 [| 0; 1; 2; 3 |] in
  let bonus_with limit =
    fst ((Nassc.bonus { c2q_only with scan_limit = limit }) ~stream ~mapping 0 1)
  in
  Alcotest.(check (float 1e-9)) "wide window sees the trailing CX" 2.0 (bonus_with 24);
  Alcotest.(check (float 1e-9)) "window of 7 still reaches it" 2.0 (bonus_with 7);
  Alcotest.(check (float 1e-9)) "tiny window excludes it" 0.0 (bonus_with 2)

let counter_of trace name =
  match List.assoc_opt name (Qobs.Trace.counters_total trace) with
  | Some v -> v
  | None -> 0

(* identical trailing blocks must hit the memoized Weyl-cost cache *)
let test_weyl_cache_counters () =
  let root = Qobs.Collector.create ~label:"scoring-test" () in
  Qobs.with_collector root (fun () ->
      Nassc.reset_weyl_cache ();
      let stream = Engine.stream_create ~n_phys:4 () in
      push stream Gate.CX [ 0; 1 ];
      let mapping = Engine.mapping_of_layout ~n_phys:4 [| 0; 1; 2; 3 |] in
      let b1 = fst ((Nassc.bonus c2q_only) ~stream ~mapping 0 1) in
      let b2 = fst ((Nassc.bonus c2q_only) ~stream ~mapping 0 1) in
      Alcotest.(check (float 1e-9)) "cached result identical" b1 b2);
  let trace = Qobs.Trace.of_root root in
  Alcotest.(check int) "one miss (first eval)" 1 (counter_of trace "nassc.weyl_cache_misses");
  Alcotest.(check int) "one hit (second eval)" 1 (counter_of trace "nassc.weyl_cache_hits")

(* the engine's delta scorer skips most pair evaluations; the saved work is
   surfaced as engine.score_cache_hits on any traced route *)
let test_score_cache_counter_surfaces () =
  let root = Qobs.Collector.create ~label:"scoring-test" () in
  let circuit = Qbench.Generators.qft 5 in
  let coupling = Topology.Devices.linear 7 in
  ignore
    (Qobs.with_collector root (fun () ->
         Qroute.Pipeline.transpile ~router:Qroute.Pipeline.Sabre_router coupling circuit));
  let trace = Qobs.Trace.of_root root in
  Alcotest.(check bool)
    "score_cache_hits positive" true
    (counter_of trace "engine.score_cache_hits" > 0)

let () =
  Alcotest.run "scoring"
    [
      ("equivalence", List.map QCheck_alcotest.to_alcotest qcheck_props);
      ( "windows",
        [
          Alcotest.test_case "scan_limit honors config" `Quick
            test_scan_limit_shrinks_window;
          Alcotest.test_case "weyl cache hit/miss counters" `Quick
            test_weyl_cache_counters;
          Alcotest.test_case "score cache counter surfaces" `Quick
            test_score_cache_counter_surfaces;
        ] );
    ]
