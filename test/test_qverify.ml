(* Tests for Qverify: tableau correctness against dense matrices,
   verify_pair/verify_routed verdicts, golden-corpus certification,
   mutation detection, agreement with Qsim.Equiv, and device scale. *)

open Qcircuit
module G = Qgate.Gate
module P = Qverify.Pauli
module T = Qverify.Tableau
module Mat = Mathkit.Mat
module Cx = Mathkit.Cx

let check name b = Alcotest.(check bool) name true b

(* ---- dense reference for Pauli / Tableau ---- *)

let mat_of_code = function
  | 0 -> Mat.identity 2
  | 1 -> Mat.of_real_rows [ [ 0.; 1. ]; [ 1.; 0. ] ]
  | 2 -> Mat.of_real_rows [ [ 1.; 0. ]; [ 0.; -1. ] ]
  | _ ->
      Mat.of_rows
        [ [ Cx.zero; Cx.make 0. (-1.) ]; [ Cx.make 0. 1.; Cx.zero ] ]

let mat_of_pauli p =
  let n = P.n_wires p in
  let m = ref (Mat.identity 1) in
  for w = 0 to n - 1 do
    m := Mat.kron !m (mat_of_code (P.code p w))
  done;
  let ph =
    match P.phase p with
    | 0 -> Cx.one
    | 1 -> Cx.make 0. 1.
    | 2 -> Cx.make (-1.) 0.
    | _ -> Cx.make 0. (-1.)
  in
  Mat.scale ph !m

let approx_mat a b = Mat.approx_equal ~eps:1e-9 a b

let test_pauli_mul () =
  let n = 3 in
  let x0 = P.single ~n 0 1 and z0 = P.single ~n 0 2 in
  (* X.Z = -iY *)
  let p = P.mul x0 z0 in
  check "X.Z phase" (P.phase p = 3);
  check "X.Z letter" (P.code p 0 = 3);
  check "Z.X phase" (P.phase (P.mul z0 x0) = 1);
  (* dense agreement on random products *)
  let st = Random.State.make [| 7 |] in
  for _ = 1 to 50 do
    let rand_p () =
      P.of_codes ~n
        ~phase:(Random.State.int st 4)
        (List.init n (fun w -> (w, Random.State.int st 4)))
    in
    let a = rand_p () and b = rand_p () in
    check "dense mul" (approx_mat (mat_of_pauli (P.mul a b)) (Mat.mul (mat_of_pauli a) (mat_of_pauli b)));
    check "commutes"
      (P.commutes a b
      = approx_mat
          (Mat.mul (mat_of_pauli a) (mat_of_pauli b))
          (Mat.mul (mat_of_pauli b) (mat_of_pauli a)))
  done

(* gate matrices for the tableau vocabulary *)
let gate_mat n (g : T.gate) qs =
  let u2 rows = Mat.of_rows rows in
  let s2 = u2 [ [ Cx.one; Cx.zero ]; [ Cx.zero; Cx.make 0. 1. ] ] in
  let h = Cx.re (1.0 /. sqrt 2.0) in
  let local =
    match g with
    | T.X -> mat_of_code 1
    | T.Y -> mat_of_code 3
    | T.Z -> mat_of_code 2
    | T.H -> Mat.scale h (Mat.add (mat_of_code 1) (mat_of_code 2))
    | T.S -> s2
    | T.Sdg -> Mat.adjoint s2
    | T.SX ->
        Mat.scale (Cx.make 0.5 0.5)
          (u2
             [
               [ Cx.one; Cx.make 0. (-1.) ]; [ Cx.make 0. (-1.) ; Cx.one ];
             ])
    | T.SXdg ->
        Mat.adjoint
          (Mat.scale (Cx.make 0.5 0.5)
             (u2 [ [ Cx.one; Cx.make 0. (-1.) ]; [ Cx.make 0. (-1.); Cx.one ] ]))
    | T.SY ->
        (* exp(-i pi/4 Y) = [[c, -s],[s, c]] with c=s=1/sqrt2 *)
        Mat.of_real_rows [ [ 1. /. sqrt 2.; -1. /. sqrt 2. ]; [ 1. /. sqrt 2.; 1. /. sqrt 2. ] ]
    | T.SYdg ->
        Mat.of_real_rows [ [ 1. /. sqrt 2.; 1. /. sqrt 2. ]; [ -1. /. sqrt 2.; 1. /. sqrt 2. ] ]
    | T.CX -> Qgate.Unitary.of_gate G.CX
    | T.CY -> Qgate.Unitary.of_gate G.CY
    | T.CZ -> Qgate.Unitary.of_gate G.CZ
    | T.SWAP -> Qgate.Unitary.of_gate G.SWAP
  in
  Circuit.embed ~n local qs

let test_tableau_vs_dense () =
  (* random Clifford words: check row_x/row_z = C^dag X_w C / C^dag Z_w C *)
  let n = 3 in
  let st = Random.State.make [| 23 |] in
  let gates_1q = [| T.X; T.Y; T.Z; T.H; T.S; T.Sdg; T.SX; T.SXdg; T.SY; T.SYdg |] in
  let gates_2q = [| T.CX; T.CY; T.CZ; T.SWAP |] in
  for _trial = 1 to 25 do
    let tab = T.create n in
    let c = ref (Mat.identity (1 lsl n)) in
    for _g = 1 to 12 do
      let g, qs =
        if Random.State.bool st then
          (gates_1q.(Random.State.int st (Array.length gates_1q)), [ Random.State.int st n ])
        else begin
          let a = Random.State.int st n in
          let b = (a + 1 + Random.State.int st (n - 1)) mod n in
          (gates_2q.(Random.State.int st (Array.length gates_2q)), [ a; b ])
        end
      in
      T.apply tab g qs;
      (* C <- g C *)
      c := Mat.mul (gate_mat n g qs) !c
    done;
    let cd = Mat.adjoint !c in
    for w = 0 to n - 1 do
      check "row_x dense"
        (approx_mat (mat_of_pauli (T.row_x tab w))
           (Mat.mul cd (Mat.mul (mat_of_pauli (P.single ~n w 1)) !c)));
      check "row_z dense"
        (approx_mat (mat_of_pauli (T.row_z tab w))
           (Mat.mul cd (Mat.mul (mat_of_pauli (P.single ~n w 2)) !c)))
    done
  done

let test_fold_vs_dense () =
  (* fold_local and fold_frame against dense conjugation *)
  let n = 2 in
  let st = Random.State.make [| 5 |] in
  for _trial = 1 to 20 do
    let tab = T.create n in
    let c = ref (Mat.identity (1 lsl n)) in
    let push g qs =
      T.apply tab g qs;
      c := Mat.mul (gate_mat n g qs) !c
    in
    push T.H [ 0 ];
    push T.CX [ 0; 1 ];
    if Random.State.bool st then push T.S [ 1 ];
    let quarters = 1 + Random.State.int st 3 in
    let codes = [ (0, 1 + Random.State.int st 3); (1, 1 + Random.State.int st 3) ] in
    (* dense rotation exp(-i (q pi/2)/2 Q) *)
    let qmat =
      Circuit.embed ~n (mat_of_code (List.assoc 0 codes)) [ 0 ]
      |> Mat.mul (Circuit.embed ~n (mat_of_code (List.assoc 1 codes)) [ 1 ])
    in
    let th = float_of_int quarters *. Float.pi /. 2.0 in
    let e =
      Mat.add
        (Mat.scale (Cx.re (cos (th /. 2.))) (Mat.identity (1 lsl n)))
        (Mat.scale (Cx.make 0. (-.sin (th /. 2.))) qmat)
    in
    T.fold_local tab ~quarters codes;
    let cm = Mat.mul e !c in
    let cd = Mat.adjoint cm in
    for w = 0 to n - 1 do
      check "fold_local row_x"
        (approx_mat (mat_of_pauli (T.row_x tab w))
           (Mat.mul cd (Mat.mul (mat_of_pauli (P.single ~n w 1)) cm)));
      check "fold_local row_z"
        (approx_mat (mat_of_pauli (T.row_z tab w))
           (Mat.mul cd (Mat.mul (mat_of_pauli (P.single ~n w 2)) cm)))
    done
  done

(* ---- verify_pair on hand-written cases ---- *)

let circ n l =
  Circuit.create n
    (List.map (fun (g, qs) -> { Circuit.gate = g; qubits = qs }) l)

let is_equiv = function Qverify.Equivalent _ -> true | _ -> false
let is_not_equiv = function Qverify.Not_equivalent _ -> true | _ -> false

let test_pair_basic () =
  (* identical circuits *)
  let a = circ 2 [ (G.H, [ 0 ]); (G.CX, [ 0; 1 ]); (G.T, [ 1 ]) ] in
  check "same circuit" (is_equiv (Qverify.verify_pair a a));
  (* HZH = X *)
  let hzh = circ 1 [ (G.H, [ 0 ]); (G.Z, [ 0 ]); (G.H, [ 0 ]) ] in
  let x = circ 1 [ (G.X, [ 0 ]) ] in
  check "HZH = X" (is_equiv (Qverify.verify_pair hzh x));
  (* H RZ(a) H = RX(a): exercises the merge scan through a frame change *)
  let a1 = circ 1 [ (G.H, [ 0 ]); (G.RZ 0.4, [ 0 ]); (G.H, [ 0 ]) ] in
  let b1 = circ 1 [ (G.RX 0.4, [ 0 ]) ] in
  check "H RZ H = RX" (is_equiv (Qverify.verify_pair a1 b1));
  (* global phase: P(a) vs RZ(a) differ by exp(ia/2) and must still pass *)
  let pa = circ 1 [ (G.P 0.7, [ 0 ]) ] in
  let rz = circ 1 [ (G.RZ 0.7, [ 0 ]) ] in
  check "P = RZ up to phase" (is_equiv (Qverify.verify_pair pa rz));
  (* T^2 = S: Clifford-angle merge folds into the frame *)
  let tt = circ 1 [ (G.T, [ 0 ]); (G.T, [ 0 ]) ] in
  let s = circ 1 [ (G.S, [ 0 ]) ] in
  check "TT = S" (is_equiv (Qverify.verify_pair tt s));
  (* different rotation angles: dense residue, provably non-Clifford *)
  let r1 = circ 1 [ (G.RZ 0.4, [ 0 ]) ] in
  let r2 = circ 1 [ (G.RZ 0.9, [ 0 ]) ] in
  check "RZ 0.4 /= RZ 0.9" (is_not_equiv (Qverify.verify_pair r1 r2));
  (* Clifford mismatch *)
  let cx = circ 2 [ (G.CX, [ 0; 1 ]) ] in
  let cx' = circ 2 [ (G.CX, [ 1; 0 ]) ] in
  check "CX operand swap" (is_not_equiv (Qverify.verify_pair cx cx'))

let test_pair_u_gate () =
  (* U(t,p,l) against its RZ/RY expansion and against KAK-style re-synthesis *)
  let t, p, l = (0.7, 1.1, -0.3) in
  let u = circ 1 [ (G.U (t, p, l), [ 0 ]) ] in
  let expanded =
    circ 1 [ (G.RZ l, [ 0 ]); (G.RY t, [ 0 ]); (G.RZ p, [ 0 ]) ]
  in
  check "U = RZ RY RZ" (is_equiv (Qverify.verify_pair u expanded));
  (* RX via its U form: dense residue cluster spanning {X, Y, Z} *)
  let rx = circ 1 [ (G.RX 0.7, [ 0 ]) ] in
  let rx_u = circ 1 [ (G.U (0.7, -.Float.pi /. 2., Float.pi /. 2.), [ 0 ]) ] in
  check "RX = U form" (is_equiv (Qverify.verify_pair rx rx_u));
  let rx_wrong = circ 1 [ (G.U (0.8, -.Float.pi /. 2., Float.pi /. 2.), [ 0 ]) ] in
  check "wrong U form" (is_not_equiv (Qverify.verify_pair rx rx_wrong))

let test_routed_swap () =
  (* U = CX(0,1) routed as CX(0,1); SWAP(1,2) with final layout [0;2] *)
  let original = circ 2 [ (G.CX, [ 0; 1 ]) ] in
  let routed = circ 3 [ (G.CX, [ 0; 1 ]); (G.SWAP, [ 1; 2 ]) ] in
  let v =
    Qverify.verify_routed ~original ~routed ~initial_layout:[| 0; 1 |]
      ~final_layout:[| 0; 2 |] ()
  in
  check "routed swap ok" (is_equiv v);
  (* the wrong final layout must be rejected *)
  let v' =
    Qverify.verify_routed ~original ~routed ~initial_layout:[| 0; 1 |]
      ~final_layout:[| 0; 1 |] ()
  in
  check "wrong layout flagged" (is_not_equiv v')

(* ---- pipeline results over the golden corpus axes ---- *)

let routers = Golden_defs.routers

let transpile ?(seed = Golden_defs.seed) ~router coupling c =
  let params = { Qroute.Engine.default_params with seed } in
  Qroute.Pipeline.transpile ~params ~router coupling c

let test_pipeline_cells () =
  let topos = Golden_defs.topologies () in
  let circs = Golden_defs.circuits () in
  List.iter
    (fun (tname, topo) ->
      List.iter
        (fun (cname, c) ->
          List.iter
            (fun (rname, router) ->
              let r = transpile ~router topo c in
              let il = Option.get r.Qroute.Pipeline.initial_layout in
              let fl = Option.get r.Qroute.Pipeline.final_layout in
              let v =
                Qverify.verify_routed ~original:c ~routed:r.Qroute.Pipeline.circuit
                  ~initial_layout:il ~final_layout:fl ()
              in
              check
                (Printf.sprintf "certify %s/%s/%s: %s" tname cname rname
                   (Qverify.to_json v))
                (is_equiv v))
            routers)
        circs)
    topos

(* ---- mutation detection ---- *)

(* decisive mutations of a routed circuit: perturb / retarget / delete /
   duplicate a non-Clifford rotation.  Each provably changes the unitary,
   so Qverify must answer Not_equivalent. *)
let mutate st (c : Circuit.t) =
  let instrs = Array.of_list (Circuit.instrs c) in
  let n = Circuit.n_qubits c in
  let quarter a =
    let r = Float.rem (Float.abs a) (Float.pi /. 2.0) in
    Float.min r (Float.pi /. 2.0 -. r) < 1e-3
  in
  let rot_sites =
    Array.to_list instrs
    |> List.mapi (fun i (ins : Circuit.instr) -> (i, ins))
    |> List.filter (fun (_, (ins : Circuit.instr)) ->
           match ins.Circuit.gate with
           | G.RZ a | G.P a -> not (quarter a)
           | _ -> false)
  in
  match rot_sites with
  | [] -> None
  | sites ->
      let i, (ins : Circuit.instr) = List.nth sites (Random.State.int st (List.length sites)) in
      let a = match ins.Circuit.gate with G.RZ a | G.P a -> a | _ -> 0.0 in
      let kind = Random.State.int st 4 in
      let rebuild f =
        let out = ref [] in
        Array.iteri
          (fun j (it : Circuit.instr) ->
            List.iter
              (fun (g, qs) -> out := { Circuit.gate = g; qubits = qs } :: !out)
              (f j it))
          instrs;
        Some (Circuit.create n (List.rev !out))
      in
      (match kind with
      | 0 ->
          (* perturb the angle by 0.3..0.7: far above every tolerance *)
          let d = 0.3 +. Random.State.float st 0.4 in
          rebuild (fun j it ->
              if j = i then [ (G.RZ (a +. d), it.Circuit.qubits) ]
              else [ (it.Circuit.gate, it.Circuit.qubits) ])
      | 1 when n > 1 ->
          (* retarget to another wire *)
          let q = List.hd ins.Circuit.qubits in
          let q' = (q + 1 + Random.State.int st (n - 1)) mod n in
          rebuild (fun j it ->
              if j = i then [ (it.Circuit.gate, [ q' ]) ]
              else [ (it.Circuit.gate, it.Circuit.qubits) ])
      | 2 ->
          (* delete *)
          rebuild (fun j it ->
              if j = i then [] else [ (it.Circuit.gate, it.Circuit.qubits) ])
      | _ ->
          (* duplicate (2a is not a multiple of pi/2 when a is decisive,
             unless a is pi/4-like; re-randomize by perturbing instead) *)
          if quarter (2.0 *. a) then
            rebuild (fun j it ->
                if j = i then [ (G.RZ (a +. 0.37), it.Circuit.qubits) ]
                else [ (it.Circuit.gate, it.Circuit.qubits) ])
          else
            rebuild (fun j it ->
                if j = i then
                  [ (it.Circuit.gate, it.Circuit.qubits); (it.Circuit.gate, it.Circuit.qubits) ]
                else [ (it.Circuit.gate, it.Circuit.qubits) ]))

let test_mutation_detection () =
  let st = Random.State.make [| 91 |] in
  let topos = Golden_defs.topologies () in
  let circs = Golden_defs.circuits () in
  let tried = ref 0 in
  List.iter
    (fun (_, topo) ->
      List.iter
        (fun (_, c) ->
          let r = transpile ~router:Qroute.Pipeline.Sabre_router topo c in
          let il = Option.get r.Qroute.Pipeline.initial_layout in
          let fl = Option.get r.Qroute.Pipeline.final_layout in
          for _ = 1 to 4 do
            match mutate st r.Qroute.Pipeline.circuit with
            | None -> ()
            | Some bad ->
                incr tried;
                let v =
                  Qverify.verify_routed ~original:c ~routed:bad ~initial_layout:il
                    ~final_layout:fl ()
                in
                check (Printf.sprintf "mutation flagged: %s" (Qverify.to_json v))
                  (is_not_equiv v)
          done)
        circs)
    topos;
  check "mutations exercised" (!tried > 10)

let test_clifford_mutation () =
  (* all-Clifford circuit: swapped CX operands diverge in the tableau *)
  let ghz = circ 3 [ (G.H, [ 0 ]); (G.CX, [ 0; 1 ]); (G.CX, [ 1; 2 ]) ] in
  let bad = circ 3 [ (G.H, [ 0 ]); (G.CX, [ 1; 0 ]); (G.CX, [ 1; 2 ]) ] in
  check "clifford mutation" (is_not_equiv (Qverify.verify_pair ghz bad));
  let dropped = circ 3 [ (G.H, [ 0 ]); (G.CX, [ 0; 1 ]) ] in
  check "dropped CX" (is_not_equiv (Qverify.verify_pair ghz dropped))

(* ---- agreement with Qsim.Equiv on small circuits ---- *)

let test_qsim_agreement () =
  let st = Random.State.make [| 17 |] in
  let topo = Topology.Devices.linear 6 in
  for trial = 1 to 12 do
    let c = Golden_defs.random_circuit (100 + trial) in
    let router =
      List.nth routers (Random.State.int st (List.length routers)) |> snd
    in
    let r = transpile ~seed:(11 + trial) ~router topo c in
    let il = Option.get r.Qroute.Pipeline.initial_layout in
    let fl = Option.get r.Qroute.Pipeline.final_layout in
    let dense =
      Qsim.Equiv.routed_equal ~logical:c ~routed:r.Qroute.Pipeline.circuit
        ~final_layout:fl
    in
    let sym =
      Qverify.verify_routed ~original:c ~routed:r.Qroute.Pipeline.circuit
        ~initial_layout:il ~final_layout:fl ()
    in
    (* Qverify may abstain, but must never contradict the dense oracle *)
    (match sym with
    | Qverify.Equivalent _ -> check "agree ok" dense
    | Qverify.Not_equivalent _ -> check "agree bad" (not dense)
    | Qverify.Unknown _ -> ());
    check "no abstention on corpus"
      (match sym with Qverify.Unknown _ -> false | _ -> true)
  done

(* ---- device scale: montreal-27 ---- *)

let test_montreal_scale () =
  let topo = Topology.Devices.montreal in
  let c = Qbench.Generators.random_density ~seed:3 ~gates:220 ~density:0.35 20 in
  let r = transpile ~router:Qroute.Pipeline.Sabre_router topo c in
  let il = Option.get r.Qroute.Pipeline.initial_layout in
  let fl = Option.get r.Qroute.Pipeline.final_layout in
  let t0 = Unix.gettimeofday () in
  let v =
    Qverify.verify_routed ~original:c ~routed:r.Qroute.Pipeline.circuit
      ~initial_layout:il ~final_layout:fl ()
  in
  let dt = Unix.gettimeofday () -. t0 in
  check (Printf.sprintf "montreal certify: %s" (Qverify.to_json v)) (is_equiv v);
  check (Printf.sprintf "montreal under 1s (%.3fs)" dt) (dt < 1.0)

let test_json () =
  let a = circ 1 [ (G.T, [ 0 ]) ] in
  let j = Qverify.to_json (Qverify.verify_pair a a) in
  check "json shape"
    (String.length j > 0
    && j.[0] = '{'
    && String.sub j 0 34 = "{\"kind\":\"verdict\",\"verdict\":\"equiv")

let () =
  Alcotest.run "qverify"
    [
      ( "tableau",
        [
          Alcotest.test_case "pauli-mul-dense" `Quick test_pauli_mul;
          Alcotest.test_case "tableau-vs-dense" `Quick test_tableau_vs_dense;
          Alcotest.test_case "fold-vs-dense" `Quick test_fold_vs_dense;
        ] );
      ( "verify",
        [
          Alcotest.test_case "pair-basic" `Quick test_pair_basic;
          Alcotest.test_case "pair-u-gate" `Quick test_pair_u_gate;
          Alcotest.test_case "routed-swap" `Quick test_routed_swap;
          Alcotest.test_case "json" `Quick test_json;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "corpus-cells" `Slow test_pipeline_cells;
          Alcotest.test_case "mutation-detection" `Slow test_mutation_detection;
          Alcotest.test_case "clifford-mutation" `Quick test_clifford_mutation;
          Alcotest.test_case "qsim-agreement" `Slow test_qsim_agreement;
          Alcotest.test_case "montreal-scale" `Slow test_montreal_scale;
        ] );
    ]
