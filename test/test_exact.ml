(* Property tests for the exact SWAP-minimization oracle (Qroute.Exact).

   The oracle's claim is strong — *provably minimal* SWAP counts — so the
   checks here are independent re-derivations, not fixtures:
   - the returned SWAP sequence must be executable (edges of the coupling)
     and must actually bring every requested pair to adjacency;
   - its length must equal an independent brute-force BFS over
     token-permutation states, written from scratch below with none of the
     oracle's pruning;
   - the admissible distance bound must never exceed the BFS optimum
     (admissibility is what makes IDA* exact, so it gets its own check);
   - whole-circuit minima must match a brute-force BFS over
     (mapping, executed-set) states, and the free-layout optimum must never
     exceed any fixed-layout optimum. *)

open Mathkit
open Qcircuit
open Qgate

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------- independent brute-force references ---------- *)

(* minimal swaps to make [pairs] simultaneously adjacent: plain BFS over
   logical->physical placements of the tracked qubits, no heuristics *)
let bfs_window coupling pairs =
  let n = Topology.Coupling.n_qubits coupling in
  let qubits = List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) pairs) in
  let index = List.mapi (fun i q -> (q, i)) qubits in
  let start = Array.of_list qubits in
  let tok_pairs = List.map (fun (a, b) -> (List.assoc a index, List.assoc b index)) pairs in
  let goal loc =
    List.for_all (fun (ta, tb) -> Topology.Coupling.connected coupling loc.(ta) loc.(tb)) tok_pairs
  in
  let key loc = String.concat "," (Array.to_list (Array.map string_of_int loc)) in
  let seen = Hashtbl.create 1024 in
  let q = Queue.create () in
  Queue.add (start, 0) q;
  Hashtbl.replace seen (key start) ();
  let result = ref None in
  while !result = None && not (Queue.is_empty q) do
    let loc, depth = Queue.pop q in
    if goal loc then result := Some depth
    else
      List.iter
        (fun (u, v) ->
          let loc' = Array.copy loc in
          Array.iteri
            (fun t p -> if p = u then loc'.(t) <- v else if p = v then loc'.(t) <- u)
            loc;
          let k = key loc' in
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.replace seen k ();
            Queue.add (loc', depth + 1) q
          end)
        (Topology.Coupling.edges coupling)
  done;
  match !result with Some d -> d | None -> Alcotest.fail (Printf.sprintf "bfs_window: no solution on %d qubits" n)

(* minimal swaps to route a whole circuit from a fixed layout: BFS over
   (l2p, executed set) with greedy gate execution, mirroring none of the
   oracle's code *)
let bfs_circuit coupling circuit init_layout =
  let gates =
    List.filter_map
      (fun (i : Circuit.instr) ->
        if Gate.is_two_qubit i.gate then
          match i.qubits with [ a; b ] -> Some (a, b) | _ -> None
        else None)
      (Circuit.instrs circuit)
    |> Array.of_list
  in
  let n_gates = Array.length gates in
  let n_log = Circuit.n_qubits circuit in
  let last = Array.make n_log (-1) in
  let prev =
    Array.mapi
      (fun i (a, b) ->
        let pa = last.(a) and pb = last.(b) in
        last.(a) <- i;
        last.(b) <- i;
        (pa, pb))
      gates
  in
  let rec drain l2p mask =
    let next = ref mask in
    Array.iteri
      (fun i (pa, pb) ->
        let a, b = gates.(i) in
        if
          !next land (1 lsl i) = 0
          && (pa < 0 || !next land (1 lsl pa) <> 0)
          && (pb < 0 || !next land (1 lsl pb) <> 0)
          && Topology.Coupling.connected coupling l2p.(a) l2p.(b)
        then next := !next lor (1 lsl i))
      prev;
    if !next <> mask then drain l2p !next else mask
  in
  let all_done = (1 lsl n_gates) - 1 in
  let key l2p mask =
    String.concat "," (Array.to_list (Array.map string_of_int l2p)) ^ "#" ^ string_of_int mask
  in
  let seen = Hashtbl.create 4096 in
  let q = Queue.create () in
  let m0 = drain init_layout 0 in
  Queue.add (Array.copy init_layout, m0, 0) q;
  Hashtbl.replace seen (key init_layout m0) ();
  let result = ref None in
  while !result = None && not (Queue.is_empty q) do
    let l2p, mask, depth = Queue.pop q in
    if mask = all_done then result := Some depth
    else
      List.iter
        (fun (u, v) ->
          let l2p' = Array.copy l2p in
          Array.iteri
            (fun l p -> if p = u then l2p'.(l) <- v else if p = v then l2p'.(l) <- u)
            l2p;
          let mask' = drain l2p' mask in
          let k = key l2p' mask' in
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.replace seen k ();
            Queue.add (l2p', mask', depth + 1) q
          end)
        (Topology.Coupling.edges coupling)
  done;
  match !result with Some d -> d | None -> Alcotest.fail "bfs_circuit: no solution"

(* ---------- generators ---------- *)

let couplings =
  [
    ("line4", Topology.Devices.linear 4);
    ("line5", Topology.Devices.linear 5);
    ("line6", Topology.Devices.linear 6);
    ("ring5", Topology.Devices.ring 5);
    ("ring6", Topology.Devices.ring 6);
    ("grid2x3", Topology.Devices.grid 2 3);
  ]

let coupling_for seed = List.nth couplings (seed mod List.length couplings)

(* up to 2 disjoint random pairs on the device *)
let random_pairs rng n =
  let perm = Rng.permutation rng n in
  let k = 1 + Rng.int rng (min 2 (n / 2)) in
  List.init k (fun i -> (perm.(2 * i), perm.((2 * i) + 1)))

let random_circuit seed =
  let rng = Rng.create seed in
  let n = 3 + Rng.int rng 3 in
  let b = Circuit.Builder.create n in
  let len = 3 + Rng.int rng 5 in
  for _ = 1 to len do
    let a = Rng.int rng n in
    let c = (a + 1 + Rng.int rng (n - 1)) mod n in
    Circuit.Builder.add b Gate.CX [ a; c ]
  done;
  Circuit.Builder.circuit b

(* ---------- window properties ---------- *)

let apply_swap_positions map (u, v) =
  Array.iteri (fun i p -> if p = u then map.(i) <- v else if p = v then map.(i) <- u) map

let qcheck_window =
  let gen_seed = QCheck.Gen.int_range 0 1_000_000 in
  QCheck.Test.make ~name:"solve_window: valid, adjacent, and BFS-minimal" ~count:60
    (QCheck.make gen_seed)
    (fun seed ->
      let rng = Rng.create seed in
      let _name, coupling = coupling_for seed in
      let n = Topology.Coupling.n_qubits coupling in
      let pairs = random_pairs rng n in
      let dist = Topology.Distmat.hops coupling in
      match Qroute.Exact.solve_window coupling ~dist ~pairs with
      | Budget_exceeded -> false
      | Optimal swaps ->
          (* (i) every step is a device edge *)
          let edges_ok =
            List.for_all (fun (u, v) -> Topology.Coupling.connected coupling u v) swaps
          in
          (* (i) replaying the sequence really routes every pair to adjacency *)
          let where = Array.init n (fun i -> i) in
          List.iter (apply_swap_positions where) swaps;
          let adjacent_ok =
            List.for_all
              (fun (a, b) -> Topology.Coupling.connected coupling where.(a) where.(b))
              pairs
          in
          (* (ii) the length matches the independent brute force *)
          let bfs = bfs_window coupling pairs in
          (* (iii) the admissible bound never exceeds the optimum *)
          let lb = Qroute.Exact.lower_bound ~dist pairs in
          edges_ok && adjacent_ok && List.length swaps = bfs && lb <= bfs)

(* ---------- whole-circuit properties ---------- *)

let qcheck_circuit_fixed =
  let gen_seed = QCheck.Gen.int_range 0 1_000_000 in
  QCheck.Test.make ~name:"min_swaps (fixed layout) = brute-force BFS" ~count:25
    (QCheck.make gen_seed)
    (fun seed ->
      let c = random_circuit seed in
      let n_log = Circuit.n_qubits c in
      let _name, coupling = coupling_for seed in
      let n = Topology.Coupling.n_qubits coupling in
      QCheck.assume (n_log <= n);
      let rng = Rng.create (seed + 1) in
      let perm = Rng.permutation rng n in
      let layout = Array.init n_log (fun l -> perm.(l)) in
      match Qroute.Exact.min_swaps ~init_layout:layout coupling c with
      | Route_budget_exceeded -> false
      | Routed { n_swaps; _ } -> n_swaps = bfs_circuit coupling c layout)

let qcheck_circuit_free =
  let gen_seed = QCheck.Gen.int_range 0 1_000_000 in
  QCheck.Test.make ~name:"min_swaps (free layout) <= every fixed layout" ~count:10
    (QCheck.make gen_seed)
    (fun seed ->
      let c = random_circuit seed in
      let n_log = Circuit.n_qubits c in
      let _name, coupling = coupling_for seed in
      let n = Topology.Coupling.n_qubits coupling in
      QCheck.assume (n_log <= n);
      match Qroute.Exact.min_swaps coupling c with
      | Route_budget_exceeded -> false
      | Routed { n_swaps = free; initial_layout } ->
          (* the reported layout must reproduce the reported optimum... *)
          let fixed_at l =
            match Qroute.Exact.min_swaps ~init_layout:l coupling c with
            | Routed { n_swaps; _ } -> n_swaps
            | Route_budget_exceeded -> max_int
          in
          let reproduced = fixed_at initial_layout = free in
          (* ...and no sampled layout may beat it *)
          let rng = Rng.create (seed + 2) in
          let beaten = ref false in
          for _ = 1 to 5 do
            let perm = Rng.permutation rng n in
            let l = Array.init n_log (fun i -> perm.(i)) in
            if fixed_at l < free then beaten := true
          done;
          reproduced && not !beaten)

(* ---------- deterministic units ---------- *)

let test_already_adjacent () =
  let coupling = Topology.Devices.linear 4 in
  let dist = Topology.Distmat.hops coupling in
  match Qroute.Exact.solve_window coupling ~dist ~pairs:[ (0, 1); (2, 3) ] with
  | Optimal [] -> ()
  | Optimal _ -> Alcotest.fail "already-adjacent pairs need no swaps"
  | Budget_exceeded -> Alcotest.fail "trivial window exceeded budget"

let test_line_end_to_end () =
  (* on a 4-line, making (0,3) adjacent takes exactly 2 swaps *)
  let coupling = Topology.Devices.linear 4 in
  let dist = Topology.Distmat.hops coupling in
  match Qroute.Exact.solve_window coupling ~dist ~pairs:[ (0, 3) ] with
  | Optimal swaps -> checki "two swaps" 2 (List.length swaps)
  | Budget_exceeded -> Alcotest.fail "budget on 4-line"

let test_budget_trips () =
  (* a 1-node budget cannot finish a nontrivial window *)
  let coupling = Topology.Devices.linear 6 in
  let dist = Topology.Distmat.hops coupling in
  match
    Qroute.Exact.solve_window
      ~budget:{ Qroute.Exact.max_nodes = 1; max_seconds = infinity }
      coupling ~dist ~pairs:[ (0, 5) ]
  with
  | Budget_exceeded -> ()
  | Optimal _ -> Alcotest.fail "1-node budget should trip"

let test_rejects_overlap () =
  let coupling = Topology.Devices.linear 4 in
  let dist = Topology.Distmat.hops coupling in
  check "overlapping pairs rejected" true
    (try
       ignore (Qroute.Exact.solve_window coupling ~dist ~pairs:[ (0, 2); (2, 3) ]);
       false
     with Invalid_argument _ -> true)

let test_qft4_line_known_optimum () =
  (* QFT-4 lowered on a 4-line: the free-layout optimum is stable and small;
     pin it so oracle regressions are loud.  The value is derived by the
     oracle itself but cross-checked by the BFS property above on the same
     state space. *)
  let c = Qroute.Pipeline.lower_to_2q (Qbench.Generators.qft 4) in
  let coupling = Topology.Devices.linear 4 in
  match Qroute.Exact.min_swaps coupling c with
  | Routed { n_swaps; _ } ->
      let id = Array.init 4 (fun i -> i) in
      checki "free <= identity layout" n_swaps (min n_swaps (bfs_circuit coupling c id));
      check "free-layout optimum in sane range" true (n_swaps <= bfs_circuit coupling c id)
  | Route_budget_exceeded -> Alcotest.fail "qft4/line4 exceeded budget"

let () =
  Alcotest.run "exact"
    [
      ( "window",
        [
          QCheck_alcotest.to_alcotest qcheck_window;
          Alcotest.test_case "already adjacent" `Quick test_already_adjacent;
          Alcotest.test_case "line end-to-end" `Quick test_line_end_to_end;
          Alcotest.test_case "budget trips" `Quick test_budget_trips;
          Alcotest.test_case "overlap rejected" `Quick test_rejects_overlap;
        ] );
      ( "circuit",
        [
          QCheck_alcotest.to_alcotest qcheck_circuit_fixed;
          QCheck_alcotest.to_alcotest qcheck_circuit_free;
          Alcotest.test_case "qft4 on line4" `Quick test_qft4_line_known_optimum;
        ] );
    ]
