(* The routing golden corpus: a fixed set of (circuit, topology, router,
   trials) cells whose transpiled outputs are fingerprinted and checked
   into test/goldens/routing.golden.  The corpus is shared between the
   regeneration tool (tools/golden_gen) and the byte-identity test
   (test/test_goldens.ml) so both always agree on what is being pinned.

   These fingerprints capture the pre-incremental-engine outputs: any
   change to candidate enumeration order, tie-breaking, heuristic
   arithmetic, or SWAP decomposition at a fixed seed shows up as a digest
   mismatch.  Perf reworks must keep every cell byte-identical. *)

open Mathkit
open Qcircuit
open Qgate

(* same shape as the test_trials generator: 3-5 logical qubits, mixed
   1q/2q traffic, deterministic per seed *)
let random_circuit seed =
  let rng = Rng.create seed in
  let n = 3 + Rng.int rng 3 in
  let b = Circuit.Builder.create n in
  let len = 6 + Rng.int rng 20 in
  for _ = 1 to len do
    match Rng.int rng 6 with
    | 0 -> Circuit.Builder.add b Gate.H [ Rng.int rng n ]
    | 1 -> Circuit.Builder.add b (Gate.RZ (Rng.float rng 6.28)) [ Rng.int rng n ]
    | 2 -> Circuit.Builder.add b Gate.SX [ Rng.int rng n ]
    | 3 -> Circuit.Builder.add b Gate.T [ Rng.int rng n ]
    | _ ->
        let a = Rng.int rng n in
        let c = (a + 1 + Rng.int rng (n - 1)) mod n in
        Circuit.Builder.add b Gate.CX [ a; c ]
  done;
  Circuit.Builder.circuit b

let circuits () =
  [
    ("qft5", Qbench.Generators.qft 5);
    ("rand3", random_circuit 3);
    ("rand17", random_circuit 17);
  ]

(* the four topology families of the paper's evaluation, each sized to
   hold the <=5-qubit corpus circuits *)
let topologies () =
  [
    ("linear7", Topology.Devices.linear 7);
    ("ring7", Topology.Devices.ring 7);
    ("grid2x4", Topology.Devices.grid 2 4);
    ("heavyhex2x2", Topology.Devices.heavy_hex 2 2);
  ]

let routers =
  [
    ("sabre", Qroute.Pipeline.Sabre_router);
    ("nassc", Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config);
    ("astar", Qroute.Pipeline.Astar_router);
    ("sabre-ha", Qroute.Pipeline.Sabre_ha);
    ("nassc-ha", Qroute.Pipeline.Nassc_ha Qroute.Nassc.default_config);
    ("hybrid", Qroute.Pipeline.Hybrid_router Qroute.Hybrid.default_config);
  ]

let trials_axis = [ 1; 8 ]
let seed = 11

let layout_str = function
  | None -> "-"
  | Some a -> String.concat "," (Array.to_list (Array.map string_of_int a))

(* byte-level fingerprint of everything routing determines: the emitted
   QASM plus both layouts *)
let fingerprint (r : Qroute.Pipeline.result) =
  Digest.to_hex
    (Digest.string
       (Qasm.to_string r.circuit ^ "|" ^ layout_str r.initial_layout ^ "|"
      ^ layout_str r.final_layout))

let cell_line cname tname rname trials (r : Qroute.Pipeline.result) =
  Printf.sprintf "%s %s %s trials=%d cx=%d depth=%d swaps=%d %s" cname tname
    rname trials r.cx_total r.depth r.n_swaps (fingerprint r)

let lines () =
  List.concat_map
    (fun (cname, circuit) ->
      List.concat_map
        (fun (tname, coupling) ->
          List.concat_map
            (fun (rname, router) ->
              List.map
                (fun trials ->
                  let params = { Qroute.Engine.default_params with seed } in
                  let r =
                    Qroute.Pipeline.transpile ~params ~trials ~workers:2 ~router
                      coupling circuit
                  in
                  cell_line cname tname rname trials r)
                trials_axis)
            routers)
        (topologies ()))
    (circuits ())

let generate () = String.concat "\n" (lines ()) ^ "\n"

(* ---- the optimality-gap golden corpus (test/goldens/gap.golden) ----

   One line per (corpus circuit, small topology): the certified optimal
   SWAP count from the exact oracle plus each router's inserted-swap
   count at the canonical seed.  The gap test re-runs the routers (cheap)
   against the recorded optima (expensive to certify), asserting gaps
   never grow and the oracle invariant router >= optimal holds. *)

let gap_oracle_budget = { Qroute.Exact.max_nodes = 5_000_000; max_seconds = infinity }

let gap_routers =
  [
    ("sabre", Qroute.Pipeline.Sabre_router);
    ("nassc", Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config);
    ("astar", Qroute.Pipeline.Astar_router);
    ("hybrid", Qroute.Pipeline.Hybrid_router Qroute.Hybrid.default_config);
  ]

let gap_line (e : Qbench.Gapcorpus.entry) tname coupling =
  let logical = Qroute.Pipeline.pre_optimize (Qroute.Pipeline.lower_to_2q (e.build ())) in
  let two_q = Qcircuit.Circuit.two_qubit_count logical in
  let opt =
    match Qroute.Exact.min_swaps ~budget:gap_oracle_budget coupling logical with
    | Qroute.Exact.Routed { n_swaps; _ } -> string_of_int n_swaps
    | Qroute.Exact.Route_budget_exceeded -> "?"
  in
  let params = { Qroute.Engine.default_params with seed } in
  let swaps =
    List.map
      (fun (rname, router) ->
        let r = Qroute.Pipeline.transpile ~params ~trials:1 ~router coupling (e.build ()) in
        Printf.sprintf "%s=%d" rname r.Qroute.Pipeline.n_swaps)
      gap_routers
  in
  Printf.sprintf "%s %s 2q=%d opt=%s %s" e.name tname two_q opt
    (String.concat " " swaps)

(* ---- the benchmark-matrix golden corpus (test/goldens/matrix.golden) ----

   The quick subset of `bench --only matrix`: one small instance per
   family x {line5, grid2x3} x all six routers, one line per cell with
   cx/swaps/depth plus the depth-overhead and ESP columns in exact
   (shortest-round-trip) float form.  Cells are deterministic for any
   worker count; the matrix test checks workers 1 and 4 against the same
   bytes. *)

let generate_matrix ?(workers = 2) () =
  Qbench.Matrix.golden_lines
    (Qbench.Matrix.run ~workers
       ~instances:(Qbench.Matrix.instances ~quick:true)
       ~topologies:(Qbench.Matrix.golden_topologies ())
       ())

let generate_gap () =
  String.concat "\n"
    (List.concat_map
       (fun (e : Qbench.Gapcorpus.entry) ->
         List.map
           (fun (tname, coupling) -> gap_line e tname coupling)
           Qbench.Gapcorpus.topologies)
       Qbench.Gapcorpus.circuits)
  ^ "\n"
