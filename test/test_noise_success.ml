(* Edge cases for the noise model, the success-rate experiment, and the
   paper's eq. 3 noise-aware distance: a zero-error device must succeed with
   certainty, a fully-decohered qubit must drive ESP to zero, and the
   (alpha1, alpha2, alpha3) weights must reduce to hop counts when only the
   constant term is on. *)

open Qcircuit
open Qgate

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let linear3 = Topology.Devices.linear 3

let zero_error_cal =
  Topology.Calibration.create ~coupling:linear3 ~cx_error:(fun _ _ -> 0.0) ()

let ghz3 =
  let b = Circuit.Builder.create 3 in
  Circuit.Builder.add b Gate.H [ 0 ];
  Circuit.Builder.add b Gate.CX [ 0; 1 ];
  Circuit.Builder.add b Gate.CX [ 1; 2 ];
  Circuit.Builder.circuit b

(* ---------- zero-error device ---------- *)

let test_zero_error_esp_is_one () =
  let model = Qsim.Noise.of_calibration zero_error_cal in
  checkf "esp = 1 with no error anywhere" 1.0
    (Qsim.Noise.esp model ghz3 ~measured:[ 0; 1; 2 ])

let test_zero_error_success_is_certain () =
  (* deterministic logical circuit (X then CX chain): the ideal outcome has
     probability 1, so every noiseless shot must match it *)
  let b = Circuit.Builder.create 3 in
  Circuit.Builder.add b Gate.X [ 0 ];
  Circuit.Builder.add b Gate.CX [ 0; 1 ];
  Circuit.Builder.add b Gate.CX [ 1; 2 ];
  let c = Circuit.Builder.circuit b in
  let o =
    Qsim.Success.routed_success ~shots:256 ~cal:zero_error_cal ~ideal:c ~routed:c
      ~final_layout:[| 0; 1; 2 |] ()
  in
  checkf "success rate 1.0" 1.0 o.success_rate;
  checkf "esp 1.0" 1.0 o.esp

let test_trivial_noise_matches_calibrated_zero () =
  let trivial = Qsim.Noise.trivial ~n:3 in
  let calibrated = Qsim.Noise.of_calibration zero_error_cal in
  List.iter
    (fun (i : Circuit.instr) ->
      checkf "gate error agrees"
        (Qsim.Noise.gate_error trivial i.gate i.qubits)
        (Qsim.Noise.gate_error calibrated i.gate i.qubits))
    (Circuit.instrs ghz3);
  (* sampling under trivial noise only ever produces the noiseless
     distribution; for a deterministic circuit, only the ideal outcome *)
  let b = Circuit.Builder.create 2 in
  Circuit.Builder.add b Gate.X [ 0 ];
  Circuit.Builder.add b Gate.CX [ 0; 1 ];
  let c = Circuit.Builder.circuit b in
  let ideal = Qsim.Success.ideal_outcome c in
  let shots = Qsim.Noise.sample trivial c ~shots:64 (Mathkit.Rng.create 5) in
  Array.iter (fun s -> check "every shot is the ideal outcome" true (s = ideal)) shots

(* ---------- fully-decohered qubit ---------- *)

let test_decohered_qubit_kills_esp () =
  let cal =
    Topology.Calibration.create ~coupling:linear3
      ~cx_error:(fun _ _ -> 0.0)
      ~sq_error:(fun q -> if q = 0 then 1.0 else 0.0)
      ()
  in
  let model = Qsim.Noise.of_calibration cal in
  let b = Circuit.Builder.create 3 in
  Circuit.Builder.add b Gate.H [ 0 ];
  let touches_bad = Circuit.Builder.circuit b in
  checkf "gate on decohered qubit always errors" 1.0
    (Qsim.Noise.gate_error model Gate.H [ 0 ]);
  checkf "esp collapses to zero" 0.0 (Qsim.Noise.esp model touches_bad ~measured:[ 0 ]);
  let b = Circuit.Builder.create 3 in
  Circuit.Builder.add b Gate.H [ 1 ];
  let avoids_bad = Circuit.Builder.circuit b in
  checkf "avoiding the dead qubit restores esp" 1.0
    (Qsim.Noise.esp model avoids_bad ~measured:[ 1 ])

let test_coin_flip_readout () =
  let cal =
    Topology.Calibration.create ~coupling:linear3
      ~cx_error:(fun _ _ -> 0.0)
      ~readout_error:(fun q -> if q = 2 then 0.5 else 0.0)
      ()
  in
  let model = Qsim.Noise.of_calibration cal in
  checkf "readout passthrough" 0.5 (Qsim.Noise.readout_error model 2);
  let b = Circuit.Builder.create 3 in
  Circuit.Builder.add b Gate.X [ 2 ];
  let c = Circuit.Builder.circuit b in
  checkf "esp pays the readout factor" 0.5 (Qsim.Noise.esp model c ~measured:[ 2 ]);
  checkf "unmeasured wires don't pay it" 1.0 (Qsim.Noise.esp model c ~measured:[ 0 ])

(* ---------- eq. 3 weights ---------- *)

let ring5_cal =
  (* distinguishable per-edge errors so alpha1 actually matters *)
  Topology.Calibration.create ~coupling:(Topology.Devices.ring 5)
    ~cx_error:(fun a b -> 0.01 +. (0.004 *. float_of_int (min a b)))
    ()

let test_default_weights_are_paper_defaults () =
  let d = Topology.Calibration.noise_distance_matrix ring5_cal in
  let e =
    Topology.Calibration.noise_distance_matrix ~alpha1:0.5 ~alpha2:0.0 ~alpha3:0.5
      ring5_cal
  in
  check "defaults = (0.5, 0, 0.5)" true (d = e)

let test_constant_weight_reproduces_hop_distance () =
  let d =
    Topology.Calibration.noise_distance_matrix ~alpha1:0.0 ~alpha2:0.0 ~alpha3:1.0
      ring5_cal
  in
  let coupling = Topology.Calibration.coupling ring5_cal in
  for a = 0 to 4 do
    for b = 0 to 4 do
      checkf
        (Printf.sprintf "hops %d-%d" a b)
        (float_of_int (Topology.Coupling.distance coupling a b))
        d.(a).(b)
    done
  done

let test_error_weight_prefers_quiet_path () =
  (* alpha = (1, 0, 0): path cost is summed normalized error, so the
     noisiest edge is avoided when a quieter detour has lower total *)
  let d =
    Topology.Calibration.noise_distance_matrix ~alpha1:1.0 ~alpha2:0.0 ~alpha3:0.0
      ring5_cal
  in
  let eps a b =
    Topology.Calibration.cx_error ring5_cal a b
    /. Topology.Calibration.cx_error ring5_cal 3 4
    (* edge (3,4) carries the max error: min a b = 3 *)
  in
  (* 0 and 4 are adjacent on the ring; direct hop weight must match *)
  checkf "adjacent noise distance is the edge weight" (eps 0 4) d.(0).(4);
  check "triangle inequality" true (d.(0).(2) <= d.(0).(1) +. d.(1).(2) +. 1e-12)

let () =
  Alcotest.run "noise_success"
    [
      ( "zero-error device",
        [
          Alcotest.test_case "esp = 1" `Quick test_zero_error_esp_is_one;
          Alcotest.test_case "success certain" `Quick test_zero_error_success_is_certain;
          Alcotest.test_case "trivial model agrees" `Quick
            test_trivial_noise_matches_calibrated_zero;
        ] );
      ( "decohered qubit",
        [
          Alcotest.test_case "esp collapses" `Quick test_decohered_qubit_kills_esp;
          Alcotest.test_case "coin-flip readout" `Quick test_coin_flip_readout;
        ] );
      ( "eq. 3 weights",
        [
          Alcotest.test_case "paper defaults" `Quick test_default_weights_are_paper_defaults;
          Alcotest.test_case "alpha3 only = hop count" `Quick
            test_constant_weight_reproduces_hop_distance;
          Alcotest.test_case "alpha1 only follows error" `Quick
            test_error_weight_prefers_quiet_path;
        ] );
    ]
