OPENQASM 2.0;
include "qelib1.inc";
qreg q[;
h q[0];
