(* The observability layer: span-tree well-nestedness, counter consistency
   (cache hits + misses = lookups), zero recording when disabled, and the
   headline acceptance property - the exported trace is byte-identical
   whatever the worker count. *)

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let find name assoc =
  match List.assoc_opt name assoc with
  | Some v -> v
  | None -> Alcotest.failf "missing entry %s" name

(* ---------- spans ---------- *)

let test_span_tree_well_nested () =
  let root = Qobs.Collector.create ~label:"test" () in
  Qobs.with_collector root (fun () ->
      Qobs.span "a" (fun () ->
          Qobs.span "b" (fun () -> ());
          Qobs.span "c" (fun () -> Qobs.span "d" (fun () -> ())));
      Qobs.span "e" (fun () -> ()));
  checki "all spans closed" 0 (Qobs.Collector.open_spans root);
  let spans = Qobs.Collector.spans root in
  checki "five spans" 5 (List.length spans);
  List.iteri
    (fun i (s : Qobs.Collector.span_rec) -> checki "preorder seq" i s.sp_seq)
    spans;
  let by_seq seq = List.nth spans seq in
  List.iter
    (fun (s : Qobs.Collector.span_rec) ->
      if s.sp_parent = -1 then checki "root depth" 0 s.sp_depth
      else begin
        check "parent opened before child" true (s.sp_parent < s.sp_seq);
        checki "depth is parent + 1" ((by_seq s.sp_parent).sp_depth + 1) s.sp_depth
      end)
    spans;
  let name seq = (by_seq seq).sp_name in
  let parent seq = (by_seq seq).sp_parent in
  check "a is a root" true (parent 0 = -1 && name 0 = "a");
  check "b under a" true (name 1 = "b" && name (parent 1) = "a");
  check "d under c under a" true
    (name 3 = "d" && name (parent 3) = "c" && name (parent (parent 3)) = "a");
  check "e is a root" true (name 4 = "e" && parent 4 = -1)

let test_span_closes_on_exception () =
  let root = Qobs.Collector.create () in
  (try
     Qobs.with_collector root (fun () ->
         Qobs.span "outer" (fun () -> Qobs.span "boom" (fun () -> failwith "boom")))
   with Failure _ -> ());
  checki "no span left open" 0 (Qobs.Collector.open_spans root);
  checki "both spans recorded" 2 (List.length (Qobs.Collector.spans root))

(* ---------- counters and gauges ---------- *)

let c_test = Qobs.counter "test.counter"
let g_test = Qobs.gauge "test.gauge"

let test_disabled_records_nothing () =
  check "inactive outside with_collector" false (Qobs.active ());
  (* probes must be no-ops, not crashes *)
  Qobs.incr c_test;
  Qobs.add c_test 41;
  Qobs.gauge_set g_test 3.0;
  Qobs.span "ignored" (fun () -> ());
  let root = Qobs.Collector.create () in
  Qobs.with_collector root (fun () -> check "active inside" true (Qobs.active ()));
  checki "no spans recorded while uninstalled" 0 (List.length (Qobs.Collector.spans root));
  checki "counter untouched" 0 (find "test.counter" (Qobs.Collector.counters root));
  check "gauge untouched" true
    (List.assoc_opt "test.gauge" (Qobs.Collector.gauges root) = None)

let test_counter_and_gauge_recording () =
  let root = Qobs.Collector.create () in
  Qobs.with_collector root (fun () ->
      Qobs.incr c_test;
      Qobs.add c_test 9;
      Qobs.gauge_set g_test 2.0;
      Qobs.gauge_add g_test 0.5);
  checki "incr + add" 10 (find "test.counter" (Qobs.Collector.counters root));
  Alcotest.(check (float 1e-12)) "set + add" 2.5 (find "test.gauge" (Qobs.Collector.gauges root))

(* ---------- consistency of the real pipeline counters ---------- *)

let transpile_traced ?(workers = 1) () =
  let c = Qbench.Generators.qft 6 in
  let coupling = Topology.Devices.linear 8 in
  let params = { Qroute.Engine.default_params with seed = 11 } in
  let root = Qobs.Collector.create ~label:"main" () in
  let r =
    Qobs.with_collector root (fun () ->
        Qroute.Pipeline.transpile ~params ~trials:4 ~workers
          ~router:(Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config)
          coupling c)
  in
  (root, r)

let test_cache_counters_consistent () =
  let root, _ = transpile_traced () in
  let totals = Qobs.Trace.counters_total (Qobs.Trace.of_root root) in
  let lookups = find "commutation.cache_lookups" totals in
  let hits = find "commutation.cache_hits" totals in
  let misses = find "commutation.cache_misses" totals in
  check "cache exercised" true (lookups > 0);
  checki "hits + misses = lookups" lookups (hits + misses)

let test_engine_counters_present () =
  let root, r = transpile_traced () in
  let totals = Qobs.Trace.counters_total (Qobs.Trace.of_root root) in
  check "candidates scored" true (find "engine.swap_candidates_scored" totals > 0);
  check "h_basic evaluated" true (find "engine.h_basic_evals" totals > 0);
  checki "swaps counted = reported swaps (best trial <= total)" r.n_swaps
    (match
       List.find_opt (fun (s : Qroute.Trials.stat) -> s.cx_total = r.cx_total) r.trial_stats
     with
    | Some s -> s.n_swaps
    | None -> -1);
  checki "one ok outcome per trial" 4 (find "trials.ok" totals);
  checki "no failed trials" 0 (find "trials.failed" totals)

(* ---------- determinism across worker counts ---------- *)

let test_trace_identical_across_workers () =
  let jsonl workers =
    let root, _ = transpile_traced ~workers () in
    Qobs.Trace.to_jsonl ~times:false (Qobs.Trace.of_root root)
  in
  let a = jsonl 1 and b = jsonl 4 in
  check "trace bytes identical, workers 1 vs 4" true (String.equal a b);
  check "trace non-trivial" true (String.length a > 1000)

let test_trial_children_in_order () =
  let root, _ = transpile_traced ~workers:4 () in
  let trials =
    List.filter_map Qobs.Collector.trial (Qobs.Collector.children root)
  in
  check "children merged in trial order" true (trials = [ 0; 1; 2; 3 ])

(* ---------- realized vs predicted savings gauges ---------- *)

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0

(* ---------- histograms ---------- *)

let samples seed n =
  let state = ref seed in
  List.init n (fun _ ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      float_of_int !state /. 1e6)

let hist_of xs =
  let h = Qobs.Hist.create () in
  List.iter (Qobs.Hist.observe h) xs;
  h

let test_hist_merge_associative () =
  let a = hist_of (samples 1 300)
  and b = hist_of (samples 2 500)
  and c = hist_of (samples 3 200) in
  let ab_c = Qobs.Hist.merge (Qobs.Hist.merge a b) c in
  let a_bc = Qobs.Hist.merge a (Qobs.Hist.merge b c) in
  check "merge associative" true (Qobs.Hist.equal ab_c a_bc);
  check "merge commutative" true
    (Qobs.Hist.equal (Qobs.Hist.merge a b) (Qobs.Hist.merge b a));
  checki "counts add" 1000 (Qobs.Hist.count ab_c);
  check "originals untouched" true (Qobs.Hist.count a = 300 && Qobs.Hist.count b = 500)

let test_hist_percentiles_sane () =
  let h = hist_of (List.init 1000 (fun i -> float_of_int (i + 1))) in
  let p50 = Qobs.Hist.percentile h 50.0 in
  let p99 = Qobs.Hist.percentile h 99.0 in
  (* log-bucketed: the representative is within one bucket ratio (2^1/4) *)
  check "p50 within a bucket of 500" true (p50 >= 500.0 /. 1.2 && p50 <= 500.0 *. 1.2);
  check "p99 within a bucket of 990" true (p99 >= 990.0 /. 1.2 && p99 <= 990.0 *. 1.2);
  check "p0 clamped to min" true (Qobs.Hist.percentile h 0.0 >= 1.0);
  check "p100 clamped to max" true (Qobs.Hist.percentile h 100.0 <= 1000.0);
  check "monotone" true (p50 <= p99)

let test_hist_percentile_edges () =
  let checkf = Alcotest.(check (float 1e-9)) in
  (* empty: every percentile is nan, min/max are the identity elements *)
  let empty = Qobs.Hist.create () in
  check "empty p50 is nan" true (Float.is_nan (Qobs.Hist.percentile empty 50.0));
  check "empty p0 is nan" true (Float.is_nan (Qobs.Hist.percentile empty 0.0));
  check "empty p100 is nan" true (Float.is_nan (Qobs.Hist.percentile empty 100.0));
  (* single observation: reports itself everywhere *)
  let one = hist_of [ 42.0 ] in
  List.iter
    (fun p -> checkf "single obs at every p" 42.0 (Qobs.Hist.percentile one p))
    [ 0.0; 1.0; 50.0; 99.0; 100.0 ];
  (* exact endpoints: p<=0 is min_value, p>=100 is max_value, out-of-range
     clamps instead of crashing, NaN p answers nan *)
  let h = hist_of [ 1.0; 10.0; 100.0 ] in
  checkf "p0 = min" (Qobs.Hist.min_value h) (Qobs.Hist.percentile h 0.0);
  checkf "p100 = max" (Qobs.Hist.max_value h) (Qobs.Hist.percentile h 100.0);
  checkf "p<0 clamps to min" (Qobs.Hist.min_value h) (Qobs.Hist.percentile h (-7.0));
  checkf "p>100 clamps to max" (Qobs.Hist.max_value h) (Qobs.Hist.percentile h 250.0);
  check "nan p is nan" true (Float.is_nan (Qobs.Hist.percentile h Float.nan))

(* pp_summary renders counters, gauges and histograms in name order so two
   runs (or two readers) always see the same layout *)
let test_pp_summary_deterministic_order () =
  let ga = Qobs.gauge "test.pp.alpha" in
  let gz = Qobs.gauge "test.pp.zeta" in
  let gm = Qobs.gauge "test.pp.middle" in
  let root = Qobs.Collector.create ~label:"pp" () in
  Qobs.with_collector root (fun () ->
      (* written in non-sorted order on purpose *)
      Qobs.gauge_set gz 3.0;
      Qobs.gauge_set ga 1.0;
      Qobs.gauge_set gm 2.0);
  let render () =
    let buf = Buffer.create 256 in
    let fmt = Format.formatter_of_buffer buf in
    Qobs.Trace.pp_summary fmt (Qobs.Trace.of_root root);
    Format.pp_print_flush fmt ();
    Buffer.contents buf
  in
  let out = render () in
  let pos affix =
    let n = String.length affix in
    let rec find i =
      if i + n > String.length out then Alcotest.failf "missing %s in summary" affix
      else if String.sub out i n = affix then i
      else find (i + 1)
    in
    find 0
  in
  check "gauges sorted by name" true
    (pos "test.pp.alpha" < pos "test.pp.middle" && pos "test.pp.middle" < pos "test.pp.zeta");
  check "summary stable across renders" true (String.equal out (render ()))

(* the engine histograms only fire under a flight recorder; with one
   installed, the exported trace (spans + counters + hist lines) must stay
   byte-identical whatever the worker count *)
let transpile_recorded ?(workers = 1) () =
  let c = Qbench.Generators.qft 6 in
  let coupling = Topology.Devices.linear 8 in
  let params = { Qroute.Engine.default_params with seed = 11 } in
  let root = Qobs.Collector.create ~label:"main" () in
  let rec_root = Qobs.Recorder.create ~label:"main" () in
  let r =
    Qobs.with_collector root (fun () ->
        Qobs.Recorder.with_recorder rec_root (fun () ->
            Qroute.Pipeline.transpile ~params ~trials:4 ~workers
              ~router:(Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config)
              coupling c))
  in
  (root, rec_root, r)

let test_hists_identical_across_workers () =
  let jsonl workers =
    let root, _, _ = transpile_recorded ~workers () in
    Qobs.Trace.to_jsonl (Qobs.Trace.of_root root)
  in
  let a = jsonl 1 and b = jsonl 4 in
  check "hist lines present under recorder" true (contains ~affix:"\"type\":\"hist\"" a);
  check "engine.candidate_h exported" true (contains ~affix:"engine.candidate_h" a);
  check "trace + hists identical, workers 1 vs 4" true (String.equal a b)

let test_savings_gauges_exported () =
  let root, _ = transpile_traced () in
  let jsonl = Qobs.Trace.to_jsonl (Qobs.Trace.of_root root) in
  check "predicted savings exported" true
    (contains ~affix:"engine.predicted_cnot_savings" jsonl);
  check "realized savings exported" true
    (contains ~affix:"trial.realized_cnot_savings" jsonl);
  check "per-pass spans exported" true (contains ~affix:"\"pass.cancellation\"" jsonl);
  check "no timing fields by default" false (contains ~affix:"wall_ms" jsonl)

let () =
  Alcotest.run "qobs"
    [
      ( "spans",
        [
          Alcotest.test_case "well-nested tree" `Quick test_span_tree_well_nested;
          Alcotest.test_case "closes on exception" `Quick test_span_closes_on_exception;
        ] );
      ( "counters",
        [
          Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
          Alcotest.test_case "counter and gauge recording" `Quick
            test_counter_and_gauge_recording;
          Alcotest.test_case "cache hits + misses = lookups" `Quick
            test_cache_counters_consistent;
          Alcotest.test_case "engine counters present" `Quick test_engine_counters_present;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "trace identical workers 1 vs 4" `Quick
            test_trace_identical_across_workers;
          Alcotest.test_case "children merged in trial order" `Quick
            test_trial_children_in_order;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "merge associative and commutative" `Quick
            test_hist_merge_associative;
          Alcotest.test_case "percentiles sane" `Quick test_hist_percentiles_sane;
          Alcotest.test_case "percentile edge cases" `Quick test_hist_percentile_edges;
          Alcotest.test_case "hists identical workers 1 vs 4" `Quick
            test_hists_identical_across_workers;
        ] );
      ( "export",
        [
          Alcotest.test_case "savings gauges exported" `Quick test_savings_gauges_exported;
          Alcotest.test_case "pp_summary deterministic order" `Quick
            test_pp_summary_deterministic_order;
        ] );
    ]
