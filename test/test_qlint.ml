(* The static-analysis layer: rules trip exactly on their intended
   violations, the contract validator accepts every shipped pipeline and
   rejects illegal orderings, checked mode catches contract-breaking
   stages at runtime, and the commutation/savings audit holds against
   ground truth. *)

open Qgate
open Qlint

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let instr gate qubits = { Qcircuit.Circuit.gate; qubits }
let rules_of diags = List.map (fun (d : Diagnostic.t) -> d.rule) diags

let trips_exactly what expected diags =
  let errs = Diagnostic.errors diags in
  check (what ^ " trips") true (errs <> []);
  List.iter
    (fun (d : Diagnostic.t) ->
      Alcotest.(check string) (what ^ " rule") expected d.rule)
    errs

(* random circuit over a gate set that exercises lowering (ccx, cp) *)
let random_circuit rng n len =
  let b = Qcircuit.Circuit.Builder.create n in
  for _ = 1 to len do
    let q () = Mathkit.Rng.int rng n in
    let distinct2 () =
      let a = q () in
      let d = 1 + Mathkit.Rng.int rng (n - 1) in
      (a, (a + d) mod n)
    in
    match Mathkit.Rng.int rng 6 with
    | 0 -> Qcircuit.Circuit.Builder.add b Gate.H [ q () ]
    | 1 -> Qcircuit.Circuit.Builder.add b (Gate.RZ (Mathkit.Rng.float rng 6.0)) [ q () ]
    | 2 | 3 ->
        let a, c = distinct2 () in
        Qcircuit.Circuit.Builder.add b Gate.CX [ a; c ]
    | 4 ->
        let a, c = distinct2 () in
        Qcircuit.Circuit.Builder.add b (Gate.CP (Mathkit.Rng.float rng 3.0)) [ a; c ]
    | _ ->
        if n >= 3 then begin
          let a = q () in
          let c = (a + 1) mod n in
          let d = (a + 2) mod n in
          Qcircuit.Circuit.Builder.add b Gate.CCX [ a; c; d ]
        end
        else Qcircuit.Circuit.Builder.add b Gate.T [ q () ]
  done;
  Qcircuit.Circuit.Builder.circuit b

(* ---------- every router x topology result passes the full rule set ---------- *)

let routers =
  [
    ("none", Qroute.Pipeline.Full_connectivity);
    ("sabre", Qroute.Pipeline.Sabre_router);
    ("nassc", Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config);
    ("sabre-ha", Qroute.Pipeline.Sabre_ha);
    ("nassc-ha", Qroute.Pipeline.Nassc_ha Qroute.Nassc.default_config);
    ("astar", Qroute.Pipeline.Astar_router);
    ("hybrid", Qroute.Pipeline.Hybrid_router Qroute.Hybrid.default_config);
  ]

let topologies =
  [
    ("linear6", Topology.Devices.linear 6);
    ("ring6", Topology.Devices.ring 6);
    ("grid2x3", Topology.Devices.grid 2 3);
    ("heavy_hex3x3", Topology.Devices.heavy_hex 3 3);
  ]

let test_transpile_passes_lint () =
  let rng = Mathkit.Rng.create 404 in
  List.iter
    (fun (tname, coupling) ->
      let circuit = random_circuit rng 5 14 in
      List.iter
        (fun (rname, router) ->
          let cal = Topology.Calibration.generate coupling in
          match Checked.transpile ~calibration:cal ~router coupling circuit with
          | Ok r ->
              (* Checked.transpile already ran check_result; re-run it
                 explicitly so a regression there cannot hide *)
              let diags = Checked.check_result ~coupling r in
              check
                (Printf.sprintf "%s on %s lints clean" rname tname)
                true
                (not (Diagnostic.has_errors diags))
          | Error ds ->
              Alcotest.failf "%s on %s: %s" rname tname
                (String.concat "; "
                   (List.map (fun (d : Diagnostic.t) -> d.message) ds)))
        routers)
    topologies

(* ---------- known-bad fixtures trip exactly their intended rule ---------- *)

let test_bad_fixtures () =
  let linear4 = Topology.Devices.linear 4 in
  (* uncoupled CX *)
  let c = Qcircuit.Circuit.create 4 [ instr Gate.CX [ 0; 3 ] ] in
  trips_exactly "uncoupled cx" "route.check-map" (Rules.check_map linear4 c);
  (* circuit larger than the device *)
  let big = Qcircuit.Circuit.create 6 [ instr Gate.CX [ 4; 5 ] ] in
  trips_exactly "oversized circuit" "route.check-map" (Rules.check_map linear4 big);
  (* non-hardware gate *)
  let c = Qcircuit.Circuit.create 2 [ instr Gate.H [ 0 ]; instr Gate.CX [ 0; 1 ] ] in
  trips_exactly "h gate" "basis.hardware" (Rules.hardware_basis c);
  (* >2q gate against the lowered contract *)
  let c3 = Qcircuit.Circuit.create 3 [ instr Gate.CCX [ 0; 1; 2 ] ] in
  trips_exactly "ccx" "basis.two-qubit" (Rules.lowered_2q c3);
  (* raw-instruction structural violations (cannot exist as Circuit.t) *)
  trips_exactly "out-of-range" "qubit.bounds"
    (Rules.structural ~n:2 [ instr Gate.X [ 5 ] ]);
  trips_exactly "arity" "gate.arity" (Rules.structural ~n:2 [ instr Gate.CX [ 0 ] ]);
  trips_exactly "repeated" "gate.repeated-qubit"
    (Rules.structural ~n:2 [ instr Gate.CX [ 1; 1 ] ]);
  (* bad layouts *)
  trips_exactly "duplicate layout" "route.layout" (Rules.layout linear4 [| 0; 0 |]);
  trips_exactly "layout out of range" "route.layout" (Rules.layout linear4 [| 0; 9 |]);
  check "good layout" true (Rules.layout linear4 [| 2; 0; 1 |] = []);
  (* a healthy circuit is clean end to end *)
  let good =
    Qcircuit.Circuit.create 2 [ instr Gate.X [ 0 ]; instr Gate.CX [ 0; 1 ] ]
  in
  check "clean circuit" true
    (Rules.check_circuit good ~coupling:linear4
       ~props:[ Contract.Lowered_2q; Contract.Hardware_basis; Contract.Routed_for ]
    = []);
  check "dag consistent" true (Rules.dag_consistency good = [])

(* ---------- legacy distance-matrix provenance ---------- *)

let test_distmat_rule () =
  let linear4 = Topology.Devices.linear 4 in
  let flat = Topology.Distmat.hops linear4 in
  check "flat-native matrix clean" true (Rules.distmat flat = []);
  let legacy = Topology.Distmat.of_rows (Topology.Distmat.to_rows flat) in
  (match Rules.distmat legacy with
  | [ d ] ->
      Alcotest.(check string) "legacy rule" "distmat.legacy" d.rule;
      check "warning, not error" true (d.severity = Diagnostic.Warning)
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds));
  (* the runtime twin: routing with a legacy matrix bumps the engine counter *)
  let root = Qobs.Collector.create ~label:"qlint-test" () in
  let c = Qcircuit.Circuit.create 4 [ instr Gate.CX [ 0; 3 ] ] in
  Qobs.with_collector root (fun () ->
      ignore
        (Qroute.Sabre.route ~dist:legacy linear4 c));
  let counters = Qobs.Trace.counters_total (Qobs.Trace.of_root root) in
  check "legacy routes counted" true
    (match List.assoc_opt "engine.legacy_distmat_routes" counters with
    | Some v -> v > 0
    | None -> false)

let test_lint_qasm () =
  (match Rules.lint_qasm "qreg q[2];\nfoo q[0];\n" with
  | Ok _ -> Alcotest.fail "should not parse"
  | Error d ->
      Alcotest.(check string) "qasm rule" "qasm.parse" d.rule;
      (match d.loc with
      | Some (Diagnostic.Source { line; col }) ->
          checki "line" 2 line;
          checki "col" 1 col
      | _ -> Alcotest.fail "expected source location"));
  match Rules.lint_qasm "qreg q[2];\nh q[0];\ncx q[0],q[1];\n" with
  | Ok c -> checki "parsed ops" 2 (Qcircuit.Circuit.size c)
  | Error d -> Alcotest.failf "unexpected: %s" d.message

(* ---------- dead-gate rule ---------- *)

let fixture file =
  let local = Filename.concat "fixtures" file in
  if Sys.file_exists local then local else Filename.concat "test/fixtures" file

(* the fixture trips exactly gate.dead, three times: rz(0.0) (identity),
   the adjacent cx;cx pair, u(0,0,0) (identity).  h;t;h at the tail is NOT
   dead: t intervenes on the shared wire.  The rule only ever warns, so
   `nassc_cli check` exits 0 on a circuit that trips nothing else. *)
let test_dead_gates () =
  match Rules.lint_qasm_file (fixture "dead_gate.qasm") with
  | Error d -> Alcotest.failf "fixture should parse: %s" d.message
  | Ok c ->
      let diags = Rules.dead_gates c in
      checki "dead gates found" 3 (List.length diags);
      List.iter
        (fun (d : Diagnostic.t) ->
          Alcotest.(check string) "rule" "gate.dead" d.rule;
          check "warning severity" true (d.severity = Diagnostic.Warning))
        diags;
      let insts =
        List.map
          (fun (d : Diagnostic.t) ->
            match d.loc with Some (Diagnostic.Instr i) -> i | _ -> -1)
          diags
      in
      check "locations" true (List.sort compare insts = [ 1; 3; 4 ]);
      (* warnings alone never fail a check run: exit-code semantics of
         `nassc_cli check` hinge on Diagnostic.has_errors *)
      check "warnings are not errors" true (not (Diagnostic.has_errors diags));
      check "full rule set stays warning-only" true
        (not (Diagnostic.has_errors (Rules.check_circuit c)));
      (* --jsonl schema, pinned: one golden line byte-for-byte *)
      Alcotest.(check string) "jsonl golden line"
        "{\"kind\":\"diagnostic\",\"severity\":\"warning\",\"rule\":\"gate.dead\",\
         \"message\":\"gate rz is the identity (dead gate)\",\"instr\":1}"
        (Diagnostic.to_json (List.hd diags));
      (* counting semantics: X X X is one pair, X X X X is two *)
      let xs k =
        Qcircuit.Circuit.create 1 (List.init k (fun _ -> instr Gate.X [ 0 ]))
      in
      checki "xxx one pair" 1 (List.length (Rules.dead_gates (xs 3)));
      checki "xxxx two pairs" 2 (List.length (Rules.dead_gates (xs 4)))

(* ---------- static contract validation ---------- *)

let test_validator_accepts_canonical () =
  List.iter
    (fun (rname, router) ->
      check (rname ^ " pipeline legal") true (Checked.validate_pipeline ~router = []))
    routers

let test_validator_rejects () =
  let has rule diags = List.mem rule (rules_of diags) in
  (* routing after hardware-basis emission: the Figure 5 ordering violation *)
  let d = Contract.validate [ "lower_to_2q"; "basis"; "route" ] in
  check "emission-then-route rejected" true (has "contract.conflict" d);
  (* 2q-block passes before lowering *)
  let d = Contract.validate [ "cancellation"; "lower_to_2q" ] in
  check "cancellation-first rejected" true (has "contract.requires" d);
  let d = Contract.validate [ "unitary_synthesis" ] in
  check "synthesis unlowered rejected" true (has "contract.requires" d);
  (* unknown pass name *)
  let d = Contract.validate [ "lower_to_2q"; "nonsense" ] in
  check "unknown pass rejected" true (has "contract.unknown-pass" d);
  (* pipeline that never reaches its goal *)
  let d = Contract.validate ~goal:[ Contract.Hardware_basis ] [ "lower_to_2q" ] in
  check "missed goal rejected" true (has "contract.goal" d);
  (* the same legal sequence stays clean *)
  check "legal sequence" true
    (Contract.validate ~goal:[ Contract.Hardware_basis ]
       [ "lower_to_2q"; "peephole"; "cancellation"; "route"; "basis" ]
    = [])

let test_guarded_transpile_rejects_statically () =
  (* the guarded transpile of a broken ordering must refuse before running *)
  let d = Contract.validate (Qroute.Pipeline.stage_names ~router:Qroute.Pipeline.Sabre_router) in
  check "canonical names validate" true (d = [])

(* ---------- checked (dynamic) mode ---------- *)

let test_checked_clean_pipeline () =
  let rng = Mathkit.Rng.create 99 in
  let c = Qroute.Pipeline.lower_to_2q (random_circuit rng 4 12) in
  let stages = Qroute.Pipeline.pre_stages @ Qroute.Pipeline.post_stages in
  let final, diags = Checked.run_stages ~check_semantics:true stages c in
  check "no diagnostics" true (not (Diagnostic.has_errors diags));
  check "ends in hardware basis" true (Rules.hardware_basis final = [])

let test_checked_catches_broken_stage () =
  let c =
    Qcircuit.Circuit.create 3 [ instr Gate.X [ 0 ]; instr Gate.CX [ 0; 1 ] ]
  in
  (* a "peephole" that smuggles in a 3-qubit gate breaks Lowered_2q *)
  let evil_3q cir =
    Qcircuit.Circuit.concat cir (Qcircuit.Circuit.create 3 [ instr Gate.CCX [ 0; 1; 2 ] ])
  in
  let _, diags = Checked.run_stages [ ("peephole", evil_3q) ] c in
  check "3q violation caught" true (List.mem "basis.two-qubit" (rules_of diags));
  (* a "cancellation" that adds a CX breaks Size_preserving (and, under
     check_semantics, Semantics_preserved) *)
  let evil_cx cir =
    Qcircuit.Circuit.concat cir (Qcircuit.Circuit.create 3 [ instr Gate.CX [ 1; 2 ] ])
  in
  let _, diags = Checked.run_stages ~check_semantics:true [ ("cancellation", evil_cx) ] c in
  let errs = rules_of (Diagnostic.errors diags) in
  check "cost increase caught" true (List.mem "contract.ensures" errs);
  (* requires-violations surface even in dynamic mode *)
  let unlowered = Qcircuit.Circuit.create 3 [ instr Gate.CCX [ 0; 1; 2 ] ] in
  let _, diags =
    Checked.run_stages ~initial:[] [ ("cancellation", fun x -> x) ] unlowered
  in
  check "requires caught" true (List.mem "contract.requires" (rules_of diags))

(* ---------- typed routing-stuck error ---------- *)

let test_routing_stuck () =
  let edgeless = Topology.Coupling.create 2 [] in
  let c = Qcircuit.Circuit.create 2 [ instr Gate.CX [ 0; 1 ] ] in
  let params = Qroute.Engine.default_params in
  (match
     Qroute.Engine.route_once params edgeless
       ~rng:(Qroute.Engine.route_rng params)
       ~dist:(Qroute.Sabre.hop_distance edgeless)
       ~bonus:Qroute.Engine.zero_bonus c [| 0; 1 |]
   with
  | _ -> Alcotest.fail "expected Routing_stuck"
  | exception Qroute.Engine.Routing_stuck { front; l2p } ->
      check "front carries the blocked gate" true (front = [ (0, 1) ]);
      check "mapping snapshot" true (l2p = [| 0; 1 |]));
  (* the registered printer renders the payload *)
  (try
     ignore
       (Qroute.Engine.route_once params edgeless
          ~rng:(Qroute.Engine.route_rng params)
          ~dist:(Qroute.Sabre.hop_distance edgeless)
          ~bonus:Qroute.Engine.zero_bonus c [| 0; 1 |])
   with e ->
     let s = Printexc.to_string e in
     check "printer names the front" true
       (String.length s > 0
       && String.sub s 0 (min 20 (String.length s)) = "Engine.Routing_stuck"))

(* ---------- commutation / savings audit ---------- *)

let test_audit () =
  let rep = Audit.run ~seed:5 () in
  List.iter (fun (d : Diagnostic.t) -> Printf.printf "audit: %s\n" d.message) rep.diags;
  check "audit sound" true (rep.diags = []);
  check "swept the vocabulary" true (rep.pairs_checked > 1000);
  check "covered the scenarios" true (rep.scenarios_checked > 15)

(* ---------- diagnostics plumbing ---------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_diagnostic_format () =
  let d =
    Diagnostic.error ~loc:(Diagnostic.Instr 3) ~rule:"route.check-map" "cx on \"bad\" pair"
  in
  let json = Diagnostic.to_json d in
  check "json has rule" true (contains json "\"rule\":\"route.check-map\"");
  check "json escapes quotes" true (contains json "\\\"bad\\\"");
  let s = Format.asprintf "%a" Diagnostic.pp d in
  check "pp names severity" true (contains s "error[");
  checki "counter counts" 2
    (List.length
       (Diagnostic.errors
          [ d; Diagnostic.warning ~rule:"x" "w"; Diagnostic.error ~rule:"y" "e" ]))

let () =
  Alcotest.run "qlint"
    [
      ( "rules",
        [
          Alcotest.test_case "bad fixtures trip their rule" `Quick test_bad_fixtures;
          Alcotest.test_case "qasm lint" `Quick test_lint_qasm;
          Alcotest.test_case "legacy distmat provenance" `Quick test_distmat_rule;
          Alcotest.test_case "dead gates warn, never error" `Quick test_dead_gates;
          Alcotest.test_case "diagnostic format" `Quick test_diagnostic_format;
        ] );
      ( "contracts",
        [
          Alcotest.test_case "canonical pipelines legal" `Quick
            test_validator_accepts_canonical;
          Alcotest.test_case "illegal orderings rejected" `Quick test_validator_rejects;
          Alcotest.test_case "stage names validate" `Quick
            test_guarded_transpile_rejects_statically;
          Alcotest.test_case "checked mode clean" `Quick test_checked_clean_pipeline;
          Alcotest.test_case "checked mode catches violations" `Quick
            test_checked_catches_broken_stage;
        ] );
      ( "routing",
        [
          Alcotest.test_case "transpile results lint clean" `Slow
            test_transpile_passes_lint;
          Alcotest.test_case "routing stuck is typed" `Quick test_routing_stuck;
        ] );
      ("audit", [ Alcotest.test_case "tables vs ground truth" `Slow test_audit ]);
    ]
