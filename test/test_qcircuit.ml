open Qcircuit
open Qgate

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let bell () =
  Circuit.create 2 [ { gate = Gate.H; qubits = [ 0 ] }; { gate = Gate.CX; qubits = [ 0; 1 ] } ]

let ghz n =
  let b = Circuit.Builder.create n in
  Circuit.Builder.add b Gate.H [ 0 ];
  for i = 0 to n - 2 do
    Circuit.Builder.add b Gate.CX [ i; i + 1 ]
  done;
  Circuit.Builder.circuit b

let test_create_validates () =
  let bad_arity () = ignore (Circuit.create 2 [ { gate = Gate.CX; qubits = [ 0 ] } ]) in
  let out_of_range () = ignore (Circuit.create 2 [ { gate = Gate.H; qubits = [ 5 ] } ]) in
  let repeated () = ignore (Circuit.create 2 [ { gate = Gate.CX; qubits = [ 1; 1 ] } ]) in
  Alcotest.check_raises "arity" (Invalid_argument "Circuit: gate cx expects 2 qubits, got 1")
    bad_arity;
  Alcotest.check_raises "range"
    (Invalid_argument "Circuit: qubit index 5 out of range for 2-qubit circuit")
    out_of_range;
  Alcotest.check_raises "repeat" (Invalid_argument "Circuit: repeated qubit in cx 1,1")
    repeated;
  Alcotest.check_raises "concat"
    (Invalid_argument "Circuit.concat: qubit-count mismatch (2 vs 3)") (fun () ->
      ignore (Circuit.concat (bell ()) (Circuit.create 3 [])));
  Alcotest.check_raises "remap"
    (Invalid_argument "Circuit.remap: permutation size 3 does not match 2 qubits")
    (fun () -> ignore (Circuit.remap (bell ()) [| 0; 1; 2 |]))

let test_metrics () =
  let c = ghz 4 in
  checki "size" 4 (Circuit.size c);
  checki "cx count" 3 (Circuit.cx_count c);
  checki "depth" 4 (Circuit.depth c);
  checki "2q count" 3 (Circuit.two_qubit_count c)

let test_depth_parallel () =
  let c =
    Circuit.create 4
      [
        { gate = Gate.H; qubits = [ 0 ] };
        { gate = Gate.H; qubits = [ 1 ] };
        { gate = Gate.H; qubits = [ 2 ] };
        { gate = Gate.H; qubits = [ 3 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.CX; qubits = [ 2; 3 ] };
      ]
  in
  checki "parallel depth" 2 (Circuit.depth c)

let test_barrier_not_counted () =
  let c =
    Circuit.create 2
      [
        { gate = Gate.H; qubits = [ 0 ] };
        { gate = Gate.Barrier 2; qubits = [ 0; 1 ] };
        { gate = Gate.X; qubits = [ 1 ] };
      ]
  in
  checki "size skips barrier" 2 (Circuit.size c);
  checki "depth skips barrier" 1 (Circuit.depth c)

let test_unitary_bell () =
  let u = Circuit.unitary (bell ()) in
  (* Bell circuit maps |00> to (|00> + |11>)/sqrt2 *)
  let v = Mathkit.Mat.apply_vec u [| Mathkit.Cx.one; Mathkit.Cx.zero; Mathkit.Cx.zero; Mathkit.Cx.zero |] in
  let h = 1.0 /. sqrt 2.0 in
  check "bell 00 amp" true (Mathkit.Cx.approx v.(0) (Mathkit.Cx.re h));
  check "bell 11 amp" true (Mathkit.Cx.approx v.(3) (Mathkit.Cx.re h));
  check "bell 01 amp" true (Mathkit.Cx.approx v.(1) Mathkit.Cx.zero)

let test_inverse_property () =
  let rng = Mathkit.Rng.create 4242 in
  for _ = 1 to 20 do
    let n = 3 in
    let b = Circuit.Builder.create n in
    for _ = 1 to 15 do
      match Mathkit.Rng.int rng 4 with
      | 0 -> Circuit.Builder.add b Gate.H [ Mathkit.Rng.int rng n ]
      | 1 -> Circuit.Builder.add b (Gate.RZ (Mathkit.Rng.float rng 6.0)) [ Mathkit.Rng.int rng n ]
      | 2 ->
          let a = Mathkit.Rng.int rng n in
          let bq = (a + 1 + Mathkit.Rng.int rng (n - 1)) mod n in
          Circuit.Builder.add b Gate.CX [ a; bq ]
      | _ -> Circuit.Builder.add b Gate.T [ Mathkit.Rng.int rng n ]
    done;
    let c = Circuit.Builder.circuit b in
    let ci = Circuit.inverse c in
    let u = Circuit.unitary (Circuit.concat c ci) in
    check "c . c^-1 = I" true
      (Mathkit.Mat.equal_up_to_phase u (Mathkit.Mat.identity (1 lsl n)))
  done

let test_remap () =
  let c = bell () in
  let r = Circuit.remap c [| 1; 0 |] in
  (match Circuit.instrs r with
  | [ { gate = Gate.H; qubits = [ 1 ] }; { gate = Gate.CX; qubits = [ 1; 0 ] } ] -> ()
  | _ -> Alcotest.fail "remap wrong");
  check "remap identity roundtrip" true (Circuit.equal c (Circuit.remap r [| 1; 0 |]))

let test_embed_positions () =
  (* CX embedded on qubits (2,0) of a 3-qubit register *)
  let open Mathkit in
  let cx = Unitary.of_gate Gate.CX in
  let u = Circuit.embed ~n:3 cx [ 2; 0 ] in
  (* state |001> (q2=1 control) should map to |101> *)
  let v = Array.make 8 Cx.zero in
  v.(0b001) <- Cx.one;
  let w = Mat.apply_vec u v in
  check "control q2 flips q0" true (Cx.approx w.(0b101) Cx.one)

(* ---------- DAG ---------- *)

let test_dag_roundtrip () =
  let c = ghz 5 in
  let d = Dag.of_circuit c in
  check "roundtrip" true (Circuit.equal c (Dag.to_circuit d))

let test_dag_structure () =
  let c =
    Circuit.create 3
      [
        { gate = Gate.H; qubits = [ 0 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.CX; qubits = [ 1; 2 ] };
        { gate = Gate.X; qubits = [ 0 ] };
      ]
  in
  let d = Dag.of_circuit c in
  checki "n nodes" 4 (Dag.n_nodes d);
  check "h has no preds" true (Dag.pred_ids d 0 = []);
  check "cx01 preds" true (Dag.pred_ids d 1 = [ 0 ]);
  check "cx12 pred is cx01" true (Dag.pred_ids d 2 = [ 1 ]);
  check "x pred is cx01" true (Dag.pred_ids d 3 = [ 1 ]);
  check "succ on wire" true (Dag.succ_on d 1 0 = Some 3);
  check "pred on wire" true (Dag.pred_on d 2 1 = Some 1)

let test_traversal_executes_all () =
  let c = ghz 6 in
  let d = Dag.of_circuit c in
  let tr = Dag.Traversal.create d in
  let steps = ref 0 in
  while not (Dag.Traversal.finished tr) do
    match Dag.Traversal.front tr with
    | [] -> Alcotest.fail "empty front before finish"
    | id :: _ ->
        Dag.Traversal.execute tr id;
        incr steps
  done;
  checki "executed all" (Dag.n_nodes d) !steps

let test_traversal_order_respects_deps () =
  let c = ghz 6 in
  let d = Dag.of_circuit c in
  let tr = Dag.Traversal.create d in
  let seen = Hashtbl.create 16 in
  while not (Dag.Traversal.finished tr) do
    match Dag.Traversal.front tr with
    | [] -> Alcotest.fail "stuck"
    | id :: _ ->
        List.iter
          (fun p -> check "pred executed first" true (Hashtbl.mem seen p))
          (Dag.pred_ids d id);
        Hashtbl.add seen id ();
        Dag.Traversal.execute tr id
  done

let test_lookahead () =
  let c = ghz 6 in
  let d = Dag.of_circuit c in
  let tr = Dag.Traversal.create d in
  (* front is [h]; lookahead should surface the upcoming cx gates in order *)
  let ahead = Dag.Traversal.lookahead tr 3 in
  checki "lookahead count" 3 (List.length ahead);
  check "lookahead are 2q" true
    (List.for_all (fun id -> Gate.is_two_qubit (Dag.node d id).gate) ahead)

(* ---------- QASM ---------- *)

let test_qasm_contains () =
  let s = Qasm.to_string (bell ()) in
  check "header" true (String.length s > 0 && String.sub s 0 12 = "OPENQASM 2.0");
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check "has h" true (has "h q[0];");
  check "has cx" true (has "cx q[0],q[1];")

let () =
  Alcotest.run "qcircuit"
    [
      ( "circuit",
        [
          Alcotest.test_case "validation" `Quick test_create_validates;
          Alcotest.test_case "metrics" `Quick test_metrics;
          Alcotest.test_case "parallel depth" `Quick test_depth_parallel;
          Alcotest.test_case "barrier skipped" `Quick test_barrier_not_counted;
          Alcotest.test_case "bell unitary" `Quick test_unitary_bell;
          Alcotest.test_case "inverse property" `Quick test_inverse_property;
          Alcotest.test_case "remap" `Quick test_remap;
          Alcotest.test_case "embed positions" `Quick test_embed_positions;
        ] );
      ( "dag",
        [
          Alcotest.test_case "roundtrip" `Quick test_dag_roundtrip;
          Alcotest.test_case "structure" `Quick test_dag_structure;
          Alcotest.test_case "traversal completes" `Quick test_traversal_executes_all;
          Alcotest.test_case "traversal respects deps" `Quick test_traversal_order_respects_deps;
          Alcotest.test_case "lookahead" `Quick test_lookahead;
        ] );
      ("qasm", [ Alcotest.test_case "emission" `Quick test_qasm_contains ]);
    ]
