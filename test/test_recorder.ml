(* The routing flight recorder: the decision trail is deterministic across
   worker counts for a fixed seed, every chosen SWAP appears in its own
   recorded candidate set (all routers, several topologies), the nassc
   summary carries realized savings, and with no recorder installed the
   pipeline output is identical to an unrecorded run. *)

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let nassc_router = Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config

let transpile ?recorder ?(workers = 1) ?(trials = 1) ?(router = nassc_router) coupling
    circuit =
  let params = { Qroute.Engine.default_params with seed = 11 } in
  let run () =
    Qroute.Pipeline.transpile ~params ~trials ~workers ~router coupling circuit
  in
  match recorder with
  | None -> run ()
  | Some r -> Qobs.Recorder.with_recorder r run

(* trials always land in per-trial child recorders; flatten them *)
let all_steps r =
  Qobs.Recorder.steps r
  @ List.concat_map Qobs.Recorder.steps (Qobs.Recorder.children r)

let norm (a, b) = (min a b, max a b)

(* ---------- determinism ---------- *)

let test_jsonl_identical_across_workers () =
  let jsonl workers =
    let r = Qobs.Recorder.create ~label:"main" () in
    ignore
      (transpile ~recorder:r ~workers ~trials:4 (Topology.Devices.linear 8)
         (Qbench.Generators.qft 6));
    Qobs.Recorder.to_jsonl r
  in
  let a = jsonl 1 and b = jsonl 4 in
  check "recorder jsonl identical, workers 1 vs 4" true (String.equal a b);
  check "non-trivial" true (String.length a > 1000)

let test_children_in_trial_order () =
  let r = Qobs.Recorder.create ~label:"main" () in
  ignore
    (transpile ~recorder:r ~workers:4 ~trials:4 (Topology.Devices.linear 8)
       (Qbench.Generators.qft 6));
  let trials = List.filter_map Qobs.Recorder.trial (Qobs.Recorder.children r) in
  check "children merged in trial order" true (trials = [ 0; 1; 2; 3 ])

(* ---------- the chosen SWAP is always a recorded candidate ---------- *)

let routers =
  [
    ("sabre", Qroute.Pipeline.Sabre_router);
    ("nassc", nassc_router);
    ("astar", Qroute.Pipeline.Astar_router);
    ("sabre-ha", Qroute.Pipeline.Sabre_ha);
    ("nassc-ha", Qroute.Pipeline.Nassc_ha Qroute.Nassc.default_config);
  ]

let topologies =
  [
    ("linear 8", Topology.Devices.linear 8);
    ("ring 8", Topology.Devices.ring 8);
    ("grid 3x3", Topology.Devices.grid 3 3);
    ("montreal", Topology.Devices.montreal);
  ]

let test_chosen_among_candidates () =
  let circuit = Qbench.Generators.qft 6 in
  let some_steps = ref 0 in
  List.iter
    (fun (rname, router) ->
      List.iter
        (fun (tname, coupling) ->
          let r = Qobs.Recorder.create ~label:"main" () in
          ignore (transpile ~recorder:r ~router coupling circuit);
          List.iter
            (fun (s : Qobs.Recorder.step) ->
              incr some_steps;
              let cands =
                List.map
                  (fun (c : Qobs.Recorder.candidate) -> norm (c.cd.p1, c.cd.p2))
                  s.st_candidates
              in
              check
                (Printf.sprintf "%s/%s: chosen in candidates (step %d)" rname tname
                   s.st_seq)
                true
                (List.mem (norm s.st_chosen) cands);
              check
                (Printf.sprintf "%s/%s: candidates non-empty" rname tname)
                true (cands <> []);
              check
                (Printf.sprintf "%s/%s: router label" rname tname)
                true
                (s.st_router = rname || s.st_router = String.sub rname 0 5))
            (all_steps r))
        topologies)
    routers;
  check "swept a non-trivial number of steps" true (!some_steps > 100)

(* ---------- summary / totals ---------- *)

let test_nassc_summary_populated () =
  let r = Qobs.Recorder.create ~label:"main" () in
  ignore
    (transpile ~recorder:r ~trials:2 (Topology.Devices.linear 8)
       (Qbench.Generators.qft 6));
  let t = Qobs.Recorder.totals r in
  checki "one summary per trial" 2 t.Qobs.Recorder.trials_summarized;
  check "steps recorded" true (t.steps > 0);
  check "candidates recorded" true (t.candidates >= t.steps);
  check "cx_routed positive" true (t.cx_routed > 0);
  check "realized = routed - final" true (t.realized = t.cx_routed - t.cx_final);
  check "jsonl carries trial_summary" true
    (let s = Qobs.Recorder.to_jsonl r in
     let n = String.length s and m = "trial_summary" in
     let ml = String.length m in
     let rec go i = i + ml <= n && (String.sub s i ml = m || go (i + 1)) in
     go 0)

(* ---------- disabled-recorder compatibility ---------- *)

let test_disabled_identical_results () =
  check "no recorder active outside with_recorder" false (Qobs.Recorder.active ());
  (* hooks must be no-ops, not crashes *)
  Qobs.Recorder.note_bucket ~p1:0 ~p2:1 Qobs.Recorder.C2q;
  Qobs.Recorder.record_step ~front:1
    ~candidates:[ { Qobs.Recorder.p1 = 0; p2 = 1; h_basic = 0.; h_lookahead = 0.; h = 0.; bonus = 0. } ]
    ~chosen:(0, 1) ~chosen_bonus:0.0 ();
  Qobs.Recorder.record_result ~cx_routed:1 ~cx_final:1;
  let coupling = Topology.Devices.linear 8 in
  let circuit = Qbench.Generators.qft 6 in
  let plain = transpile ~trials:2 coupling circuit in
  let r = Qobs.Recorder.create ~label:"main" () in
  let recorded = transpile ~recorder:r ~trials:2 coupling circuit in
  checki "cx_total unchanged by recording" plain.Qroute.Pipeline.cx_total
    recorded.Qroute.Pipeline.cx_total;
  checki "depth unchanged" plain.depth recorded.depth;
  checki "swaps unchanged" plain.n_swaps recorded.n_swaps;
  check "recorder saw the run" true (all_steps r <> [])

let test_no_hist_lines_without_recorder () =
  let root = Qobs.Collector.create ~label:"main" () in
  ignore
    (Qobs.with_collector root (fun () ->
         transpile ~trials:2 (Topology.Devices.linear 8) (Qbench.Generators.qft 6)));
  let jsonl = Qobs.Trace.to_jsonl (Qobs.Trace.of_root root) in
  let contains affix s =
    let n = String.length s and m = String.length affix in
    let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
    go 0
  in
  check "no hist lines when the recorder is off" false
    (contains "\"type\":\"hist\"" jsonl)

let () =
  Alcotest.run "recorder"
    [
      ( "determinism",
        [
          Alcotest.test_case "jsonl identical workers 1 vs 4" `Quick
            test_jsonl_identical_across_workers;
          Alcotest.test_case "children in trial order" `Quick test_children_in_trial_order;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "chosen SWAP among candidates" `Quick
            test_chosen_among_candidates;
          Alcotest.test_case "nassc summary populated" `Quick test_nassc_summary_populated;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "results identical without recorder" `Quick
            test_disabled_identical_results;
          Alcotest.test_case "no hist lines without recorder" `Quick
            test_no_hist_lines_without_recorder;
        ] );
    ]
