(* Integration tests reproducing the paper's worked examples (Figures 1, 3,
   4, 7) and its qualitative claims on small, fully deterministic cases. *)

open Qcircuit
open Qgate
open Qroute

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------- Figure 1: not all SWAPs have the same CNOT cost ---------- *)

let figure1_circuit () =
  (* pairwise 2-qubit ops: (1,2), (0,1), (0,2) on a 3-qubit line *)
  Circuit.create 3
    [
      { gate = Gate.CX; qubits = [ 1; 2 ] };
      { gate = Gate.CX; qubits = [ 0; 1 ] };
      { gate = Gate.CX; qubits = [ 0; 2 ] };
    ]

let route_with_identity_layout router_bonus circuit =
  let coupling = Topology.Devices.linear 3 in
  let dist = Sabre.hop_distance coupling in
  let params = { Engine.default_params with seed = 1 } in
  Engine.route_once params coupling ~rng:(Engine.route_rng params) ~dist ~bonus:router_bonus
    circuit [| 0; 1; 2 |]

let test_figure1_swap_costs_differ () =
  (* Evaluate both SWAP options by hand: insert swap(0,1) or swap(1,2)
     before the blocked cx(0,2), then run the post-routing optimizations
     and count CNOTs.  The paper's Figure 1: option A costs 3 extra CNOTs,
     option B only 1. *)
  let build swap_pair =
    Circuit.create 3
      [
        { gate = Gate.CX; qubits = [ 1; 2 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.SWAP; qubits = swap_pair };
        (* after swapping, the logical cx(0,2) lands on coupled wires *)
        (match swap_pair with
        | [ 0; 1 ] -> { gate = Gate.CX; qubits = [ 1; 2 ] }
        | _ -> { gate = Gate.CX; qubits = [ 0; 1 ] });
      ]
  in
  let final c = Pipeline.post_optimize (Sabre.decompose_swaps c) in
  let cost_a = Circuit.cx_count (final (build [ 0; 1 ])) in
  let cost_b = Circuit.cx_count (final (build [ 1; 2 ])) in
  (* both must implement the same computation with different costs *)
  check "option costs differ" true (cost_a <> cost_b);
  checki "cheap option total" 4 (min cost_a cost_b);
  (* 3 original + 1 extra = 4 for the good option, 3 + 3 = 6 for the bad *)
  checki "expensive option total" 6 (max cost_a cost_b)

let test_figure1_nassc_picks_cheap_swap () =
  (* From the identity layout the engine must pick the swap that leads to
     the cheaper final circuit when the NASSC bonus is active. *)
  let c = figure1_circuit () in
  let r_nassc = route_with_identity_layout (Nassc.bonus Nassc.default_config) c in
  let finalized = Circuit.create 3 (Nassc.finalize r_nassc.routed) in
  let optimized = Pipeline.post_optimize finalized in
  checki "one swap inserted" 1 r_nassc.n_swaps;
  check "nassc reaches the cheap decomposition" true (Circuit.cx_count optimized <= 4)

(* ---------- Figure 3: re-synthesis absorbs SWAP CNOTs ---------- *)

let test_figure3_swap_into_block () =
  (* a 2-qubit block with >= 3 CNOT-equivalents followed by a SWAP costs no
     extra CNOTs after re-synthesis ("some SWAP gates can be inserted at no
     cost!") *)
  let rng = Mathkit.Rng.create 15 in
  let u = Mathkit.Randmat.su4 rng in
  checki "generic block costs 3" 3 (Qpasses.Weyl.cnot_cost u);
  let with_swap = Mathkit.Mat.mul (Unitary.of_gate Gate.SWAP) u in
  check "block + swap still costs 3" true (Qpasses.Weyl.cnot_cost with_swap <= 3)

(* ---------- Figure 4: commutation-based cancellation ---------- *)

let test_figure4_cancellation_through_shared_target () =
  (* cx(1,2); cx(0,2) commute (shared target); inserting swap(1,2) after
     them lets one of its CNOTs cancel: 1 + 3 -> net +1 on that pair *)
  let c =
    Circuit.create 3
      [
        { gate = Gate.CX; qubits = [ 1; 2 ] };
        { gate = Gate.CX; qubits = [ 0; 2 ] };
        (* oriented swap decomposition, first cx = (1,2) *)
        { gate = Gate.CX; qubits = [ 1; 2 ] };
        { gate = Gate.CX; qubits = [ 2; 1 ] };
        { gate = Gate.CX; qubits = [ 1; 2 ] };
      ]
  in
  let c' = Qpasses.Cancellation.run c in
  checki "two cnots cancel" 3 (Circuit.cx_count c');
  check "unitary preserved" true
    (Mathkit.Mat.equal_up_to_phase (Circuit.unitary c') (Circuit.unitary c))

(* ---------- Figure 7: single-qubit gates must not block ---------- *)

let test_figure7_1q_gate_blocks_fixed_decomposition () =
  (* with the fixed decomposition and a u3 in the way, no cancellation *)
  let blocked =
    Circuit.create 3
      [
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.U (0.3, 0.2, 0.1); qubits = [ 0 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.CX; qubits = [ 1; 0 ] };
        { gate = Gate.CX; qubits = [ 0; 1 ] };
      ]
  in
  checki "nothing cancels" 4 (Circuit.cx_count (Qpasses.Cancellation.run blocked))

let test_figure7_moving_1q_through_swap_unblocks () =
  (* NASSC's finalize moves the u3 through the oriented swap, after which
     cancellation fires *)
  let ops =
    [
      { Engine.gate = Gate.CX; op_qubits = [ 0; 1 ]; tag = Engine.Not_swap };
      { Engine.gate = Gate.U (0.3, 0.2, 0.1); op_qubits = [ 0 ]; tag = Engine.Not_swap };
      { Engine.gate = Gate.SWAP; op_qubits = [ 0; 1 ]; tag = Engine.Swap_orient (0, 1) };
    ]
  in
  let c = Circuit.create 2 (Nassc.finalize ops) in
  let c' = Qpasses.Cancellation.run c in
  check "cancellation fires after moving" true (Circuit.cx_count c' <= 2);
  let reference =
    Circuit.create 2
      [
        { gate = Gate.CX; qubits = [ 0; 1 ] };
        { gate = Gate.U (0.3, 0.2, 0.1); qubits = [ 0 ] };
        { gate = Gate.SWAP; qubits = [ 0; 1 ] };
      ]
  in
  check "semantics preserved" true
    (Mathkit.Mat.equal_up_to_phase (Circuit.unitary c') (Circuit.unitary reference))

(* ---------- headline claims on deterministic small cases ---------- *)

let test_claim_nassc_not_slower_than_4x () =
  (* paper: transpilation time ratio 1.02x-1.72x; allow generous slack *)
  let coupling = Topology.Devices.montreal in
  let c = Qbench.Generators.vqe 8 in
  let time router =
    let t0 = Sys.time () in
    for seed = 1 to 3 do
      let params = { Engine.default_params with seed } in
      ignore (Pipeline.transpile ~params ~router coupling c)
    done;
    Sys.time () -. t0
  in
  let ts = time Pipeline.Sabre_router in
  let tn = time (Pipeline.Nassc_router Nassc.default_config) in
  check "nassc within 4x of sabre" true (tn <= Float.max 0.5 (4.0 *. ts))

let test_claim_linear_has_more_room () =
  (* the linear map leaves more optimization opportunities: NASSC's saving
     on vqe-8 must be at least as large there as on montreal (seeds
     averaged) *)
  let saving coupling =
    let c = Qbench.Generators.vqe 8 in
    let base = Pipeline.transpile ~router:Pipeline.Full_connectivity coupling c in
    let avg router =
      List.fold_left
        (fun acc seed ->
          let params = { Engine.default_params with seed } in
          acc + (Pipeline.transpile ~params ~router coupling c).cx_total - base.cx_total)
        0 [ 1; 2; 3 ]
    in
    let s = avg Pipeline.Sabre_router and n = avg (Pipeline.Nassc_router Nassc.default_config) in
    1.0 -. (float_of_int n /. float_of_int s)
  in
  let lin = saving (Topology.Devices.linear 25) in
  check "linear saving positive" true (lin > 0.0)

let () =
  Alcotest.run "paper_scenarios"
    [
      ( "figure1",
        [
          Alcotest.test_case "swap costs differ" `Quick test_figure1_swap_costs_differ;
          Alcotest.test_case "nassc picks cheap" `Quick test_figure1_nassc_picks_cheap_swap;
        ] );
      ("figure3", [ Alcotest.test_case "free swap" `Quick test_figure3_swap_into_block ]);
      ( "figure4",
        [ Alcotest.test_case "cancellation" `Quick test_figure4_cancellation_through_shared_target ]
      );
      ( "figure7",
        [
          Alcotest.test_case "1q blocks fixed decomposition" `Quick
            test_figure7_1q_gate_blocks_fixed_decomposition;
          Alcotest.test_case "moving 1q unblocks" `Quick
            test_figure7_moving_1q_through_swap_unblocks;
        ] );
      ( "claims",
        [
          Alcotest.test_case "transpile time" `Quick test_claim_nassc_not_slower_than_4x;
          Alcotest.test_case "linear topology room" `Quick test_claim_linear_has_more_room;
        ] );
    ]
