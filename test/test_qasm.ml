open Qcircuit
open Qgate

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let parse = Qasm_parser.parse

let test_minimal_program () =
  let c =
    parse
      "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\n"
  in
  checki "qubits" 2 (Circuit.n_qubits c);
  checki "ops" 2 (Circuit.size c);
  match Circuit.instrs c with
  | [ { gate = Gate.H; qubits = [ 0 ] }; { gate = Gate.CX; qubits = [ 0; 1 ] } ] -> ()
  | _ -> Alcotest.fail "wrong parse"

let test_angle_expressions () =
  let c = parse "qreg q[1];\nrz(pi/2) q[0];\nrz(-pi/4) q[0];\nrz(3*pi/8) q[0];\nrz(0.5) q[0];\nrz(2e-3) q[0];\nrz((pi+1)/2) q[0];\n" in
  match List.map (fun (i : Circuit.instr) -> i.gate) (Circuit.instrs c) with
  | [ Gate.RZ a; Gate.RZ b; Gate.RZ c'; Gate.RZ d; Gate.RZ e; Gate.RZ f ] ->
      checkf "pi/2" (Float.pi /. 2.0) a;
      checkf "-pi/4" (-.Float.pi /. 4.0) b;
      checkf "3*pi/8" (3.0 *. Float.pi /. 8.0) c';
      checkf "0.5" 0.5 d;
      checkf "2e-3" 0.002 e;
      checkf "(pi+1)/2" ((Float.pi +. 1.0) /. 2.0) f
  | _ -> Alcotest.fail "wrong gates"

let test_u_gates () =
  let c = parse "qreg q[1];\nu3(0.1,0.2,0.3) q[0];\nu2(0.4,0.5) q[0];\nu1(0.6) q[0];\n" in
  match List.map (fun (i : Circuit.instr) -> i.gate) (Circuit.instrs c) with
  | [ Gate.U (a, b, c'); Gate.U (t, p, l); Gate.P x ] ->
      checkf "u3 theta" 0.1 a;
      checkf "u3 phi" 0.2 b;
      checkf "u3 lam" 0.3 c';
      checkf "u2 is u(pi/2)" (Float.pi /. 2.0) t;
      checkf "u2 phi" 0.4 p;
      checkf "u2 lam" 0.5 l;
      checkf "u1 is p" 0.6 x
  | _ -> Alcotest.fail "wrong gates"

let test_multi_qubit_and_measure () =
  let c =
    parse
      "qreg q[4];\ncreg c[4];\nccx q[0],q[1],q[2];\ncswap q[0],q[1],q[2];\nswap q[2],q[3];\nbarrier q[0],q[1];\nmeasure q[3] -> c[3];\n"
  in
  match Circuit.instrs c with
  | [
   { gate = Gate.CCX; qubits = [ 0; 1; 2 ] };
   { gate = Gate.CSWAP; qubits = [ 0; 1; 2 ] };
   { gate = Gate.SWAP; qubits = [ 2; 3 ] };
   { gate = Gate.Barrier 2; qubits = [ 0; 1 ] };
   { gate = Gate.Measure; qubits = [ 3 ] };
  ] ->
      ()
  | _ -> Alcotest.fail "wrong parse"

let test_comments_and_whitespace () =
  let c = parse "qreg q[1]; // register\n// full comment line\n  x q[0];  \n\n" in
  checki "one op" 1 (Circuit.size c)

let test_errors () =
  let raises s =
    try
      ignore (parse s);
      false
    with Qasm_parser.Parse_error _ -> true
  in
  check "no qreg" true (raises "x q[0];\n");
  check "unknown gate" true (raises "qreg q[1];\nfoo q[0];\n");
  check "bad operand" true (raises "qreg q[1];\nx r[0];\n");
  check "bad angle" true (raises "qreg q[1];\nrz(pi**2) q[0];\n");
  check "wrong params" true (raises "qreg q[1];\nrz(1,2) q[0];\n")

let test_error_positions () =
  (* structured errors carry the 1-based line and the column of the
     offending statement *)
  let err s =
    match Qasm_parser.parse_result s with
    | Ok _ -> Alcotest.failf "%S should not parse" s
    | Error e -> e
  in
  let e = err "qreg q[2];\nfoo q[0];\n" in
  checki "unknown gate line" 2 e.line;
  checki "unknown gate col" 1 e.col;
  check "unknown gate msg" true
    (String.length e.msg > 0 && e.msg = "unsupported gate foo");
  let e = err "qreg q[2];\nh q[0]; cx q[0],q[5];\n" in
  checki "mid-line line" 2 e.line;
  checki "mid-line col" 9 e.col;
  check "out-of-range msg" true (e.msg = "qubit index 5 out of range for q[2]");
  let e = err "qreg q[2];\ncx q[1],q[1];\n" in
  checki "repeated line" 2 e.line;
  let e = err "qreg q[2];\ncx q[0];\n" in
  checki "arity line" 2 e.line;
  let e = err "x q[0];\n" in
  check "gate before qreg msg" true (e.msg = "gate before qreg");
  let e = err "OPENQASM 2.0;\ncreg c[2];\n" in
  check "no qreg msg" true (e.msg = "no qreg declaration found");
  (* Parse_error carries the rendered position *)
  (try
     ignore (parse "qreg q[2];\nfoo q[0];\n");
     Alcotest.fail "should raise"
   with Qasm_parser.Parse_error m ->
     check "rendered position" true (m = "line 2, col 1: unsupported gate foo"))

let test_roundtrip_with_emitter () =
  (* Qasm.to_string output must parse back to a circuit with the same
     unitary *)
  let rng = Mathkit.Rng.create 77 in
  for _ = 1 to 10 do
    let b = Circuit.Builder.create 3 in
    for _ = 1 to 15 do
      match Mathkit.Rng.int rng 5 with
      | 0 -> Circuit.Builder.add b Gate.H [ Mathkit.Rng.int rng 3 ]
      | 1 -> Circuit.Builder.add b (Gate.RZ (Mathkit.Rng.float rng 6.0)) [ Mathkit.Rng.int rng 3 ]
      | 2 -> Circuit.Builder.add b (Gate.CP (Mathkit.Rng.float rng 3.0)) [ 0; 2 ]
      | 3 -> Circuit.Builder.add b Gate.CX [ 1; 2 ]
      | _ -> Circuit.Builder.add b Gate.T [ Mathkit.Rng.int rng 3 ]
    done;
    let c = Circuit.Builder.circuit b in
    let parsed = parse (Qasm.to_string c) in
    check "roundtrip unitary" true
      (Mathkit.Mat.equal_up_to_phase (Circuit.unitary parsed) (Circuit.unitary c))
  done

(* ---------- structural roundtrip: parse (to_string c) = c ---------- *)

(* circuits drawn from the gate set the emitter passes through verbatim
   (1q gates, CX, barrier, measure are fixpoints of Decompose.to_cx_basis),
   so the roundtrip must preserve the instruction list itself, not just the
   unitary.  Angles go through %.12g, hence the tolerance. *)
let gen_printable_circuit =
  let open QCheck.Gen in
  let gate n =
    oneof
      [
        map (fun q -> (Gate.H, [ q ])) (int_bound (n - 1));
        map (fun q -> (Gate.X, [ q ])) (int_bound (n - 1));
        map (fun q -> (Gate.Sdg, [ q ])) (int_bound (n - 1));
        map (fun q -> (Gate.SX, [ q ])) (int_bound (n - 1));
        map2 (fun q a -> (Gate.RZ a, [ q ])) (int_bound (n - 1)) (float_bound_inclusive 6.28);
        map2 (fun q a -> (Gate.RX a, [ q ])) (int_bound (n - 1)) (float_bound_inclusive 6.28);
        map2
          (fun q (t, p, l) -> (Gate.U (t, p, l), [ q ]))
          (int_bound (n - 1))
          (triple (float_bound_inclusive 3.0) (float_bound_inclusive 3.0)
             (float_bound_inclusive 3.0));
        map2
          (fun a d ->
            let b = (a + 1 + d) mod n in
            (Gate.CX, [ a; b ]))
          (int_bound (n - 1))
          (int_bound (n - 2));
      ]
  in
  let* n = int_range 2 4 in
  let* len = int_range 1 20 in
  let+ gates = list_repeat len (gate n) in
  let b = Circuit.Builder.create n in
  List.iter (fun (g, qs) -> Circuit.Builder.add b g qs) gates;
  Circuit.Builder.circuit b

let same_gate tol (a : Gate.t) (b : Gate.t) =
  let f x y = Float.abs (x -. y) <= tol in
  match (a, b) with
  | Gate.RZ x, Gate.RZ y | Gate.RX x, Gate.RX y | Gate.RY x, Gate.RY y | Gate.P x, Gate.P y
    ->
      f x y
  | Gate.U (t, p, l), Gate.U (t', p', l') -> f t t' && f p p' && f l l'
  | _ -> a = b

let structurally_equal c c' =
  Circuit.n_qubits c = Circuit.n_qubits c'
  && List.length (Circuit.instrs c) = List.length (Circuit.instrs c')
  && List.for_all2
       (fun (i : Circuit.instr) (j : Circuit.instr) ->
         same_gate 1e-10 i.gate j.gate && i.qubits = j.qubits)
       (Circuit.instrs c) (Circuit.instrs c')

let roundtrip_prop =
  QCheck.Test.make ~name:"parse (print c) = c on the printable gate set" ~count:60
    (QCheck.make gen_printable_circuit)
    (fun c -> structurally_equal c (parse (Qasm.to_string c)))

(* ---------- parser error paths from fixture files ---------- *)

let test_error_fixtures () =
  (* dune runtest runs in test/, dune exec in the workspace root *)
  let locate file =
    let local = Filename.concat "fixtures" file in
    if Sys.file_exists local then local else Filename.concat "test/fixtures" file
  in
  let rejects file =
    try
      ignore (Qasm_parser.parse_file (locate file));
      Alcotest.failf "%s should not parse" file
    with Qasm_parser.Parse_error _ -> ()
  in
  rejects "bad_qreg.qasm";
  rejects "unknown_gate.qasm";
  rejects "malformed_args.qasm";
  rejects "out_of_range.qasm"

let test_parse_then_transpile () =
  (* external QASM input flows through the whole stack *)
  let qasm =
    "OPENQASM 2.0;\nqreg q[4];\nh q[0];\ncp(pi/2) q[1],q[0];\ncp(pi/4) q[2],q[0];\n\
     h q[1];\ncp(pi/2) q[2],q[1];\nh q[2];\nccx q[1],q[2],q[3];\n"
  in
  let c = parse qasm in
  let r =
    Qroute.Pipeline.transpile
      ~router:(Qroute.Pipeline.Nassc_router Qroute.Nassc.default_config)
      (Topology.Devices.linear 5) c
  in
  check "parses and routes" true (r.cx_total > 0);
  check "valid on device" true (Qroute.Sabre.check_routed (Topology.Devices.linear 5) r.circuit)

let () =
  Alcotest.run "qasm_parser"
    [
      ( "parser",
        [
          Alcotest.test_case "minimal" `Quick test_minimal_program;
          Alcotest.test_case "angles" `Quick test_angle_expressions;
          Alcotest.test_case "u gates" `Quick test_u_gates;
          Alcotest.test_case "multi-qubit + measure" `Quick test_multi_qubit_and_measure;
          Alcotest.test_case "comments" `Quick test_comments_and_whitespace;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "error positions" `Quick test_error_positions;
          Alcotest.test_case "emitter roundtrip" `Quick test_roundtrip_with_emitter;
          Alcotest.test_case "parse then transpile" `Quick test_parse_then_transpile;
          Alcotest.test_case "error fixtures" `Quick test_error_fixtures;
          QCheck_alcotest.to_alcotest roundtrip_prop;
        ] );
    ]
